/**
 * @file
 * Tests for config space semantics: BAR sizing probes, ROM BAR,
 * bridge registers, and routing-register classification.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "pcie/config_space.h"

namespace hix::pcie
{
namespace
{

TEST(ConfigSpaceTest, IdentityRegisters)
{
    ConfigSpace cs(HeaderType::Endpoint, 0x10de, 0x1080, 0x030000);
    EXPECT_EQ(cs.vendorId(), 0x10de);
    EXPECT_EQ(cs.deviceId(), 0x1080);
    auto id = cs.read32(cfg::VendorId);
    ASSERT_TRUE(id.isOk());
    EXPECT_EQ(*id, 0x108010deu);
}

TEST(ConfigSpaceTest, HeaderTypeField)
{
    ConfigSpace ep(HeaderType::Endpoint, 1, 2, 0);
    ConfigSpace br(HeaderType::Bridge, 1, 2, 0);
    auto ep_ht = ep.read32(0x0c);
    auto br_ht = br.read32(0x0c);
    ASSERT_TRUE(ep_ht.isOk());
    ASSERT_TRUE(br_ht.isOk());
    EXPECT_EQ((*ep_ht >> 16) & 0x7f, 0u);
    EXPECT_EQ((*br_ht >> 16) & 0x7f, 1u);
}

TEST(ConfigSpaceTest, BarProgramAndReadBack)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    ASSERT_TRUE(cs.declareBar(0, 16 * MiB).isOk());
    ASSERT_TRUE(cs.write32(cfg::Bar0, 0xe1000000).isOk());
    EXPECT_EQ(cs.barBase(0), 0xe1000000u);
    auto v = cs.read32(cfg::Bar0);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(*v & ~0xfu, 0xe1000000u);
}

TEST(ConfigSpaceTest, BarAddressAlignedToSize)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    ASSERT_TRUE(cs.declareBar(0, 1 * MiB).isOk());
    ASSERT_TRUE(cs.write32(cfg::Bar0, 0xe1234567).isOk());
    EXPECT_EQ(cs.barBase(0), 0xe1200000u);
}

TEST(ConfigSpaceTest, BarSizingProbe)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    ASSERT_TRUE(cs.declareBar(0, 16 * MiB).isOk());
    ASSERT_TRUE(cs.write32(cfg::Bar0, 0xe1000000).isOk());
    // Probe: write all-ones, read back size mask.
    ASSERT_TRUE(cs.write32(cfg::Bar0, 0xffffffff).isOk());
    auto probe = cs.read32(cfg::Bar0);
    ASSERT_TRUE(probe.isOk());
    EXPECT_EQ(*probe, ~std::uint32_t(16 * MiB - 1));
    // Restoring the address ends the probe.
    ASSERT_TRUE(cs.write32(cfg::Bar0, 0xe1000000).isOk());
    auto restored = cs.read32(cfg::Bar0);
    ASSERT_TRUE(restored.isOk());
    EXPECT_EQ(*restored & ~0xfu, 0xe1000000u);
}

TEST(ConfigSpaceTest, UnimplementedBarReadsZero)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    ASSERT_TRUE(cs.write32(cfg::Bar0 + 4, 0xffffffff).isOk());
    auto v = cs.read32(cfg::Bar0 + 4);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(*v, 0u);
}

TEST(ConfigSpaceTest, ExpansionRomEnableBit)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    ASSERT_TRUE(cs.declareExpansionRom(64 * KiB).isOk());
    ASSERT_TRUE(cs.write32(cfg::ExpansionRom, 0xe2000000).isOk());
    EXPECT_EQ(cs.expansionRomBase(), 0xe2000000u);
    EXPECT_FALSE(cs.expansionRomEnabled());
    ASSERT_TRUE(cs.write32(cfg::ExpansionRom, 0xe2000000 | 1).isOk());
    EXPECT_TRUE(cs.expansionRomEnabled());
}

TEST(ConfigSpaceTest, BadBarDeclarations)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    EXPECT_FALSE(cs.declareBar(-1, 4096).isOk());
    EXPECT_FALSE(cs.declareBar(6, 4096).isOk());
    EXPECT_FALSE(cs.declareBar(0, 12345).isOk());  // not a power of two
    ConfigSpace bridge(HeaderType::Bridge, 1, 2, 0);
    EXPECT_FALSE(bridge.declareBar(2, 4096).isOk());
}

TEST(ConfigSpaceTest, BridgeBusNumbers)
{
    ConfigSpace cs(HeaderType::Bridge, 1, 2, 0);
    cs.setBusNumbers(0, 3, 5);
    EXPECT_EQ(cs.secondaryBus(), 3);
    EXPECT_EQ(cs.subordinateBus(), 5);
}

TEST(ConfigSpaceTest, BridgeMemoryWindowRoundTrip)
{
    ConfigSpace cs(HeaderType::Bridge, 1, 2, 0);
    cs.setMemoryWindow(0xe0000000, 0xe0ffffff);
    EXPECT_EQ(cs.memoryWindowBase(), 0xe0000000u);
    EXPECT_EQ(cs.memoryWindowLimit(), 0xe0ffffffu);
}

TEST(ConfigSpaceTest, RoutingRegisterClassification)
{
    ConfigSpace ep(HeaderType::Endpoint, 1, 2, 0);
    EXPECT_TRUE(ep.isRoutingRegister(cfg::Bar0));
    EXPECT_TRUE(ep.isRoutingRegister(cfg::Bar0 + 20));
    EXPECT_TRUE(ep.isRoutingRegister(cfg::ExpansionRom));
    EXPECT_FALSE(ep.isRoutingRegister(cfg::VendorId));
    EXPECT_FALSE(ep.isRoutingRegister(cfg::Command));

    ConfigSpace br(HeaderType::Bridge, 1, 2, 0);
    EXPECT_TRUE(br.isRoutingRegister(cfg::BusNumbers));
    EXPECT_TRUE(br.isRoutingRegister(cfg::MemoryWindow));
    EXPECT_TRUE(br.isRoutingRegister(cfg::MemoryWindow + 4));
    EXPECT_TRUE(br.isRoutingRegister(cfg::Bar0));
    EXPECT_FALSE(br.isRoutingRegister(cfg::VendorId));
}

TEST(ConfigSpaceTest, MisalignedAccessRejected)
{
    ConfigSpace cs(HeaderType::Endpoint, 1, 2, 0);
    EXPECT_FALSE(cs.read32(0x01).isOk());
    EXPECT_FALSE(cs.write32(0x02, 0).isOk());
    EXPECT_FALSE(cs.read32(0x100).isOk());
}

}  // namespace
}  // namespace hix::pcie
