/**
 * @file
 * Unit tests for TLP construction and BDF formatting.
 */

#include <gtest/gtest.h>

#include "common/byte_utils.h"
#include "pcie/tlp.h"

namespace hix::pcie
{
namespace
{

TEST(BdfTest, Formatting)
{
    EXPECT_EQ((Bdf{1, 0, 0}).toString(), "01:00.0");
    EXPECT_EQ((Bdf{0x1f, 0x12, 7}).toString(), "1f:12.7");
}

TEST(BdfTest, Ordering)
{
    EXPECT_TRUE((Bdf{0, 0, 0}) < (Bdf{0, 0, 1}));
    EXPECT_TRUE((Bdf{0, 0, 7}) < (Bdf{0, 1, 0}));
    EXPECT_TRUE((Bdf{0, 31, 7}) < (Bdf{1, 0, 0}));
    EXPECT_TRUE((Bdf{1, 2, 3}) == (Bdf{1, 2, 3}));
    EXPECT_FALSE((Bdf{1, 2, 3}) == (Bdf{1, 2, 4}));
}

TEST(TlpTest, MemReadCarriesAddressAndLength)
{
    Tlp t = Tlp::memRead(0xe0001000, 64);
    EXPECT_EQ(t.kind, TlpKind::MemRead);
    EXPECT_EQ(t.addr, 0xe0001000u);
    EXPECT_EQ(t.length, 64u);
    EXPECT_TRUE(t.data.empty());
}

TEST(TlpTest, MemWriteCarriesPayload)
{
    Tlp t = Tlp::memWrite(0x1000, {1, 2, 3});
    EXPECT_EQ(t.kind, TlpKind::MemWrite);
    EXPECT_EQ(t.length, 3u);
    EXPECT_EQ(t.data, (Bytes{1, 2, 3}));
}

TEST(TlpTest, CfgWriteSerializesLittleEndian)
{
    Tlp t = Tlp::cfgWrite(Bdf{1, 0, 0}, 0x10, 0xdeadbeef);
    EXPECT_EQ(t.kind, TlpKind::CfgWrite);
    EXPECT_EQ(t.reg, 0x10);
    ASSERT_EQ(t.data.size(), 4u);
    EXPECT_EQ(loadLE32(t.data.data()), 0xdeadbeefu);
}

TEST(TlpTest, KindNames)
{
    EXPECT_STREQ(tlpKindName(TlpKind::MemRead), "MRd");
    EXPECT_STREQ(tlpKindName(TlpKind::MemWrite), "MWr");
    EXPECT_STREQ(tlpKindName(TlpKind::CfgRead), "CfgRd");
    EXPECT_STREQ(tlpKindName(TlpKind::CfgWrite), "CfgWr");
}

}  // namespace
}  // namespace hix::pcie
