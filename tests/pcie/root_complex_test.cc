/**
 * @file
 * Tests for root complex enumeration, TLP routing, DMA, and the HIX
 * MMIO lockdown filter — including the routing-rewrite attacks of
 * Section 5.5 of the paper.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.h"
#include "mem/phys_mem.h"
#include "pcie/root_complex.h"

namespace hix::pcie
{
namespace
{

/** A scratch endpoint with one 64KiB register BAR backed by memory. */
class ScratchDevice : public PcieDevice
{
  public:
    ScratchDevice()
        : PcieDevice("scratch", 0x10de, 0x1080, 0x030000),
          regs_(64 * KiB, 0)
    {
        EXPECT_TRUE(config().declareBar(0, 64 * KiB).isOk());
        EXPECT_TRUE(config().declareExpansionRom(64 * KiB).isOk());
        Bytes rom(64 * KiB, 0);
        rom[0] = 0x55;
        rom[1] = 0xaa;
        setExpansionRomImage(std::move(rom));
    }

    Status
    mmioRead(int bar, std::uint64_t offset, std::uint8_t *data,
             std::size_t len) override
    {
        EXPECT_EQ(bar, 0);
        std::memcpy(data, regs_.data() + offset, len);
        return Status::ok();
    }

    Status
    mmioWrite(int bar, std::uint64_t offset, const std::uint8_t *data,
              std::size_t len) override
    {
        EXPECT_EQ(bar, 0);
        std::memcpy(regs_.data() + offset, data, len);
        return Status::ok();
    }

    Bytes regs_;
};

class RootComplexTest : public ::testing::Test
{
  protected:
    RootComplexTest()
        : ram_("ram", 64 * MiB),
          rc_(AddrRange(0xe0000000, 256 * MiB), &ram_bus_, &iommu_)
    {
        EXPECT_TRUE(
            ram_bus_.attach(AddrRange(0, 64 * MiB), &ram_).isOk());
        EXPECT_TRUE(rc_.attachDevice(0, &dev_).isOk());
        EXPECT_TRUE(rc_.enumerate().isOk());
    }

    mem::PhysicalBus ram_bus_;
    mem::PhysMem ram_;
    mem::Iommu iommu_;
    ScratchDevice dev_;
    RootComplex rc_;
};

TEST_F(RootComplexTest, EnumerationAssignsBdfAndBars)
{
    EXPECT_EQ(dev_.bdf().bus, 1);
    EXPECT_EQ(dev_.bdf().device, 0);
    EXPECT_NE(dev_.config().barBase(0), 0u);
    EXPECT_TRUE(rc_.isRealDevice(dev_.bdf()));
    EXPECT_FALSE(rc_.isRealDevice(Bdf{7, 0, 0}));

    auto ranges = rc_.deviceBarRanges(dev_.bdf());
    ASSERT_TRUE(ranges.isOk());
    ASSERT_EQ(ranges->size(), 1u);
    EXPECT_EQ((*ranges)[0].size(), 64 * KiB);
}

TEST_F(RootComplexTest, MemTlpReachesDeviceBar)
{
    const Addr bar = dev_.config().barBase(0);
    Bytes data = {0x11, 0x22, 0x33, 0x44};
    ASSERT_TRUE(rc_.routeTlp(Tlp::memWrite(bar + 0x100, data)).isOk());
    Bytes out;
    ASSERT_TRUE(rc_.routeTlp(Tlp::memRead(bar + 0x100, 4), &out).isOk());
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev_.regs_[0x100], 0x11);
}

TEST_F(RootComplexTest, BusTargetInterfaceRoutesMmio)
{
    const Addr bar = dev_.config().barBase(0);
    const std::uint64_t offset = bar - rc_.mmioWindow().start();
    Bytes data = {0xab};
    ASSERT_TRUE(rc_.writeAt(offset, data.data(), 1).isOk());
    EXPECT_EQ(dev_.regs_[0], 0xab);
}

TEST_F(RootComplexTest, UnroutableMemTlpFails)
{
    Bytes out;
    auto st = rc_.routeTlp(Tlp::memRead(0xefff0000, 4), &out);
    EXPECT_EQ(st.code(), StatusCode::NotFound);
    EXPECT_EQ(rc_.stats().unroutable, 1u);
}

TEST_F(RootComplexTest, ExpansionRomReadable)
{
    const Addr rom = dev_.config().expansionRomBase();
    ASSERT_NE(rom, 0u);
    Bytes out;
    ASSERT_TRUE(rc_.routeTlp(Tlp::memRead(rom, 2), &out).isOk());
    EXPECT_EQ(out[0], 0x55);
    EXPECT_EQ(out[1], 0xaa);
    // ROM is read-only.
    EXPECT_FALSE(rc_.routeTlp(Tlp::memWrite(rom, {0})).isOk());
}

TEST_F(RootComplexTest, ConfigReadWriteRoundTrip)
{
    auto id = rc_.configRead(dev_.bdf(), cfg::VendorId);
    ASSERT_TRUE(id.isOk());
    EXPECT_EQ(*id & 0xffff, 0x10deu);

    // Rewriting a BAR while unlocked is allowed (the OS can do this
    // pre-HIX).
    ASSERT_TRUE(
        rc_.configWrite(dev_.bdf(), cfg::Bar0, 0xe8000000).isOk());
    EXPECT_EQ(dev_.config().barBase(0), 0xe8000000u);
}

TEST_F(RootComplexTest, ConfigAccessToAbsentFunctionFails)
{
    EXPECT_FALSE(rc_.configRead(Bdf{9, 0, 0}, cfg::VendorId).isOk());
}

TEST_F(RootComplexTest, LockdownBlocksEndpointBarRewrite)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    const Addr before = dev_.config().barBase(0);

    auto st = rc_.configWrite(dev_.bdf(), cfg::Bar0, 0xe8000000);
    EXPECT_EQ(st.code(), StatusCode::LockdownViolation);
    EXPECT_EQ(dev_.config().barBase(0), before);
    EXPECT_EQ(rc_.stats().lockdownDrops, 1u);
}

TEST_F(RootComplexTest, LockdownBlocksRomBarRewrite)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    EXPECT_EQ(
        rc_.configWrite(dev_.bdf(), cfg::ExpansionRom, 0).code(),
        StatusCode::LockdownViolation);
}

TEST_F(RootComplexTest, LockdownBlocksBridgeRegisters)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    const Bdf port_bdf{0, 0, 0};
    EXPECT_EQ(
        rc_.configWrite(port_bdf, cfg::BusNumbers, 0x00050500).code(),
        StatusCode::LockdownViolation);
    EXPECT_EQ(
        rc_.configWrite(port_bdf, cfg::MemoryWindow, 0).code(),
        StatusCode::LockdownViolation);
}

TEST_F(RootComplexTest, LockdownBlocksSizingProbe)
{
    // Section 5.6: the all-ones sizing write is also rejected once
    // locked.
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    EXPECT_EQ(
        rc_.configWrite(dev_.bdf(), cfg::Bar0, 0xffffffff).code(),
        StatusCode::LockdownViolation);
}

TEST_F(RootComplexTest, LockdownAllowsBenignRegisters)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    // A non-routing register (e.g. a scratch write to 0x40) passes.
    EXPECT_TRUE(rc_.configWrite(dev_.bdf(), 0x40, 0x1234).isOk());
    // Reads are never blocked.
    EXPECT_TRUE(rc_.configRead(dev_.bdf(), cfg::Bar0).isOk());
}

TEST_F(RootComplexTest, LockPathRejectsEmulatedDevice)
{
    EXPECT_EQ(rc_.lockPath(Bdf{9, 0, 0}).code(), StatusCode::NotFound);
}

TEST_F(RootComplexTest, LockPathIdempotenceRejected)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    EXPECT_EQ(rc_.lockPath(dev_.bdf()).code(),
              StatusCode::AlreadyExists);
}

TEST_F(RootComplexTest, UnlockRestoresWritability)
{
    ASSERT_TRUE(rc_.lockPath(dev_.bdf()).isOk());
    rc_.unlockAll();
    EXPECT_TRUE(
        rc_.configWrite(dev_.bdf(), cfg::Bar0, 0xe8000000).isOk());
}

TEST_F(RootComplexTest, MeasurePathChangesWithRouting)
{
    auto m1 = rc_.measurePath(dev_.bdf());
    ASSERT_TRUE(m1.isOk());
    // Rewrite a BAR (unlocked) and re-measure: digest must change.
    ASSERT_TRUE(
        rc_.configWrite(dev_.bdf(), cfg::Bar0, 0xe8000000).isOk());
    auto m2 = rc_.measurePath(dev_.bdf());
    ASSERT_TRUE(m2.isOk());
    EXPECT_NE(*m1, *m2);
}

TEST_F(RootComplexTest, DmaReadWrite)
{
    Bytes data = {9, 8, 7, 6};
    ASSERT_TRUE(rc_.dmaWrite(0x1000, data.data(), data.size()).isOk());
    Bytes back(4);
    ASSERT_TRUE(rc_.dmaRead(0x1000, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);

    Bytes ram_view(4);
    ASSERT_TRUE(ram_.readAt(0x1000, ram_view.data(), 4).isOk());
    EXPECT_EQ(ram_view, data);
}

TEST_F(RootComplexTest, DmaHonoursIommu)
{
    iommu_.setEnabled(true);
    ASSERT_TRUE(iommu_.map(0x10000, 0x20000).isOk());
    Bytes data = {1, 2, 3};
    ASSERT_TRUE(rc_.dmaWrite(0x10000, data.data(), data.size()).isOk());
    Bytes ram_view(3);
    ASSERT_TRUE(ram_.readAt(0x20000, ram_view.data(), 3).isOk());
    EXPECT_EQ(ram_view, data);
    // Unmapped device address faults.
    EXPECT_FALSE(rc_.dmaWrite(0x30000, data.data(), 3).isOk());
}

TEST_F(RootComplexTest, PeerToPeerDmaRejected)
{
    Bytes data = {1};
    EXPECT_EQ(rc_.dmaWrite(rc_.mmioWindow().start() + 0x100,
                           data.data(), 1)
                  .code(),
              StatusCode::PermissionDenied);
}

TEST_F(RootComplexTest, DuplicatePortRejected)
{
    ScratchDevice other;
    EXPECT_EQ(rc_.attachDevice(0, &other).code(),
              StatusCode::FailedPrecondition);
}

TEST(RootComplexMultiDeviceTest, TwoDevicesGetDisjointWindows)
{
    mem::PhysicalBus ram_bus;
    mem::PhysMem ram("ram", 16 * MiB);
    ASSERT_TRUE(ram_bus.attach(AddrRange(0, 16 * MiB), &ram).isOk());

    ScratchDevice a, b;
    RootComplex rc(AddrRange(0xe0000000, 256 * MiB), &ram_bus, nullptr);
    ASSERT_TRUE(rc.attachDevice(0, &a).isOk());
    ASSERT_TRUE(rc.attachDevice(1, &b).isOk());
    ASSERT_TRUE(rc.enumerate().isOk());

    EXPECT_EQ(a.bdf().bus, 1);
    EXPECT_EQ(b.bdf().bus, 2);
    AddrRange ra(a.config().barBase(0), a.config().barSize(0));
    AddrRange rb(b.config().barBase(0), b.config().barSize(0));
    EXPECT_FALSE(ra.overlaps(rb));

    // Each routed write lands on the right device.
    Bytes da = {0xaa}, db = {0xbb};
    ASSERT_TRUE(rc.routeTlp(Tlp::memWrite(ra.start(), da)).isOk());
    ASSERT_TRUE(rc.routeTlp(Tlp::memWrite(rb.start(), db)).isOk());
    EXPECT_EQ(a.regs_[0], 0xaa);
    EXPECT_EQ(b.regs_[0], 0xbb);

    // Locking device A leaves device B's registers writable.
    ASSERT_TRUE(rc.lockPath(a.bdf()).isOk());
    EXPECT_FALSE(rc.configWrite(a.bdf(), cfg::Bar0, 0).isOk());
    EXPECT_TRUE(
        rc.configWrite(b.bdf(), cfg::Bar0, 0xe9000000).isOk());
}

}  // namespace
}  // namespace hix::pcie
