/**
 * @file
 * Multi-GPU routing regressions on the full machine: with N GPUs on
 * the PCIe fabric, TLPs and DMA for device k touch only device k's
 * BAR windows, VRAM, and IOMMU protection domain. Cross-device DMA
 * faults cleanly instead of resolving through a sibling's mappings.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "os/machine.h"

namespace hix::pcie
{
namespace
{

os::MachineConfig
pool(int gpus, bool iommu)
{
    os::MachineConfig config;
    config.gpuCount = gpus;
    config.iommuEnabled = iommu;
    return config;
}

TEST(MultiGpuRoutingTest, EveryDeviceGetsDisjointBarWindows)
{
    os::Machine machine(pool(4, false));
    std::vector<std::vector<AddrRange>> bars;
    for (int d = 0; d < 4; ++d) {
        auto ranges = machine.rootComplex().deviceBarRanges(
            machine.gpuAt(d).bdf());
        ASSERT_TRUE(ranges.isOk()) << ranges.status().message();
        ASSERT_GE(ranges->size(), 2u);
        for (const AddrRange &range : *ranges)
            EXPECT_TRUE(
                machine.rootComplex().mmioWindow().containsRange(range));
        bars.push_back(*ranges);
    }
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            for (const AddrRange &ra : bars[a])
                for (const AddrRange &rb : bars[b])
                    EXPECT_FALSE(ra.overlaps(rb))
                        << "device " << a << " and " << b
                        << " share MMIO space";
}

TEST(MultiGpuRoutingTest, Bar1WriteLandsOnlyInItsDeviceVram)
{
    os::Machine machine(pool(3, false));
    const Bytes marker = {0xca, 0xfe, 0xf0, 0x0d};
    constexpr std::uint64_t Offset = 0x1200;

    for (int k = 0; k < 3; ++k) {
        auto bars = machine.rootComplex().deviceBarRanges(
            machine.gpuAt(k).bdf());
        ASSERT_TRUE(bars.isOk());
        const Addr bar1 = (*bars)[1].start();
        ASSERT_TRUE(machine.rootComplex()
                        .routeTlp(Tlp::memWrite(
                            bar1 + Offset + 0x100 * k, marker))
                        .isOk());
    }
    // Each device sees exactly its own marker at its own offset.
    for (int k = 0; k < 3; ++k) {
        for (int writer = 0; writer < 3; ++writer) {
            std::uint8_t got[4] = {};
            ASSERT_TRUE(machine.gpuAt(k)
                            .debugReadVram(Offset + 0x100 * writer,
                                           got, sizeof(got))
                            .isOk());
            if (writer == k) {
                EXPECT_EQ(std::memcmp(got, marker.data(), 4), 0);
            } else {
                const std::uint8_t zero[4] = {};
                EXPECT_EQ(std::memcmp(got, zero, 4), 0)
                    << "device " << writer << "'s BAR1 write leaked "
                    << "into device " << k << "'s VRAM";
            }
        }
    }
}

TEST(MultiGpuRoutingTest, DmaResolvesThroughTheRequesterDomainOnly)
{
    os::Machine machine(pool(3, true));
    constexpr Addr DevPage = 0x8000;
    // The same device address maps to a different physical page in
    // every device's domain.
    const Addr phys[3] = {0x40000, 0x50000, 0x60000};
    for (int k = 0; k < 3; ++k) {
        ASSERT_TRUE(machine.iommu().map(k, DevPage, phys[k]).isOk());
        const Bytes tag = {static_cast<std::uint8_t>(0xd0 + k)};
        ASSERT_TRUE(machine.ram()
                        .writeAt(phys[k], tag.data(), tag.size())
                        .isOk());
    }
    for (int k = 0; k < 3; ++k) {
        EXPECT_EQ(machine.rootComplex().dmaDomainOf(
                      machine.gpuAt(k).bdf()),
                  static_cast<mem::IommuDomain>(k));
        std::uint8_t got = 0;
        ASSERT_TRUE(machine.rootComplex()
                        .dmaRead(machine.gpuAt(k).bdf(), DevPage,
                                 &got, 1)
                        .isOk());
        EXPECT_EQ(got, 0xd0 + k)
            << "device " << k << " read through a sibling's domain";
    }
}

TEST(MultiGpuRoutingTest, CrossDeviceDmaFaultsCleanly)
{
    os::Machine machine(pool(2, true));
    constexpr Addr DevPage = 0xc000;
    ASSERT_TRUE(machine.iommu().map(0, DevPage, 0x40000).isOk());

    // Device 1 addresses the page mapped only for device 0: both
    // directions fault, and the fault changes nothing.
    std::uint8_t buf[8] = {0x11, 0x22, 0x33, 0x44};
    EXPECT_FALSE(machine.rootComplex()
                     .dmaRead(machine.gpuAt(1).bdf(), DevPage, buf, 4)
                     .isOk());
    EXPECT_FALSE(machine.rootComplex()
                     .dmaWrite(machine.gpuAt(1).bdf(), DevPage, buf, 4)
                     .isOk());
    std::uint8_t ram_byte = 0xff;
    ASSERT_TRUE(machine.ram().readAt(0x40000, &ram_byte, 1).isOk());
    EXPECT_EQ(ram_byte, 0x00);  // the faulted write never landed
    // Device 0 still works.
    EXPECT_TRUE(machine.rootComplex()
                    .dmaWrite(machine.gpuAt(0).bdf(), DevPage, buf, 4)
                    .isOk());
    ASSERT_TRUE(machine.ram().readAt(0x40000, &ram_byte, 1).isOk());
    EXPECT_EQ(ram_byte, 0x11);
}

TEST(MultiGpuRoutingTest, UnknownRequesterFallsBackToDomainZero)
{
    os::Machine machine(pool(2, true));
    EXPECT_EQ(machine.rootComplex().dmaDomainOf(Bdf{0x1f, 0, 0}), 0);
    // The legacy identity-less DMA entry point is domain 0 too: it
    // resolves through device 0's mappings.
    constexpr Addr DevPage = 0x2000;
    ASSERT_TRUE(machine.iommu().map(0, DevPage, 0x70000).isOk());
    const Bytes tag = {0x99};
    ASSERT_TRUE(
        machine.ram().writeAt(0x70000, tag.data(), tag.size()).isOk());
    std::uint8_t got = 0;
    ASSERT_TRUE(
        machine.rootComplex().dmaRead(DevPage, &got, 1).isOk());
    EXPECT_EQ(got, 0x99);
}

}  // namespace
}  // namespace hix::pcie
