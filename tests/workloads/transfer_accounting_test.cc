/**
 * @file
 * Transfer accounting: the timed bytes each workload moves must match
 * the Table 5 / Table 4 volumes the paper reports (that is what the
 * timing model charges). Guards the padding logic and the
 * timing-scale plumbing against regressions.
 */

#include <gtest/gtest.h>

#include "hix/baseline_runtime.h"
#include "os/machine.h"
#include "workloads/workload.h"

namespace hix::workloads
{
namespace
{

struct AccountingCase
{
    const char *app;
    /** Acceptable relative deviation (PF's tiny DtoH rounds up). */
    double dtohTolerance;
};

class TransferAccountingTest
    : public ::testing::TestWithParam<AccountingCase>
{
};

TEST_P(TransferAccountingTest, TimedBytesMatchTable5)
{
    const AccountingCase param = GetParam();
    auto workload = makeRodinia(param.app);
    ASSERT_NE(workload, nullptr);
    const TransferSpec nominal = workload->nominalTransfers();

    os::Machine machine;
    workload->registerKernels(machine.gpu());
    core::BaselineRuntime user(&machine, "u", workload->timingScale());
    ASSERT_TRUE(user.init().isOk());
    machine.clearTrace();
    BaselineApi api(&user);
    ASSERT_TRUE(workload->run(api).isOk());

    // Split recorded transfer bytes by direction.
    std::uint64_t h2d = 0, d2h = 0;
    for (const auto &op : machine.trace().ops()) {
        if (op.kind != sim::OpKind::Transfer)
            continue;
        if (op.resource.unit == sim::ResUnit::DmaHtoD)
            h2d += op.bytes;
        else if (op.resource.unit == sim::ResUnit::DmaDtoH)
            d2h += op.bytes;
    }

    EXPECT_NEAR(double(h2d), double(nominal.htodBytes),
                double(nominal.htodBytes) * 0.02)
        << param.app << " HtoD";
    EXPECT_NEAR(double(d2h), double(nominal.dtohBytes),
                double(nominal.dtohBytes) * param.dtohTolerance +
                    double(mem::PageSize) * workload->timingScale())
        << param.app << " DtoH";
}

INSTANTIATE_TEST_SUITE_P(
    Rodinia, TransferAccountingTest,
    ::testing::Values(AccountingCase{"BP", 0.05},
                      AccountingCase{"BFS", 0.10},
                      AccountingCase{"GS", 0.02},
                      AccountingCase{"HS", 0.02},
                      AccountingCase{"LUD", 0.02},
                      AccountingCase{"NW", 0.02},
                      AccountingCase{"NN", 0.02},
                      AccountingCase{"PF", 4.0},
                      AccountingCase{"SRAD", 0.02}),
    [](const ::testing::TestParamInfo<AccountingCase> &info) {
        return info.param.app;
    });

TEST(TransferAccountingTest, MatrixVolumesMatchTable4)
{
    auto workload = makeMatrixAdd(4096);
    const TransferSpec nominal = workload->nominalTransfers();
    EXPECT_EQ(nominal.htodBytes, 128ull * MiB);
    EXPECT_EQ(nominal.dtohBytes, 64ull * MiB);

    os::Machine machine;
    workload->registerKernels(machine.gpu());
    core::BaselineRuntime user(&machine, "u", workload->timingScale());
    ASSERT_TRUE(user.init().isOk());
    machine.clearTrace();
    BaselineApi api(&user);
    ASSERT_TRUE(workload->run(api).isOk());

    EXPECT_EQ(machine.trace().totalBytes(sim::OpKind::Transfer),
              nominal.htodBytes + nominal.dtohBytes);
}

}  // namespace
}  // namespace hix::workloads
