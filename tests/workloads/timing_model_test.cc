/**
 * @file
 * Timing-model consistency tests: the scheduled simulated times must
 * obey the analytic relationships the evaluation depends on —
 * linearity in transfer size, the pipelining bound
 * max(crypto, transfer) per direction, baseline transfer time
 * matching bandwidth, and determinism across repeated runs.
 */

#include <gtest/gtest.h>

#include "hix/baseline_runtime.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/machine.h"
#include "workloads/runner.h"

namespace hix::workloads
{
namespace
{

/** Simulated time for one HtoD transfer of @p bytes. */
Tick
baselineHtoD(std::uint64_t bytes)
{
    os::Machine machine;
    core::BaselineRuntime user(&machine, "u");
    EXPECT_TRUE(user.init().isOk());
    auto va = user.memAlloc(bytes);
    EXPECT_TRUE(va.isOk());
    machine.clearTrace();
    EXPECT_TRUE(user.memcpyHtoD(*va, Bytes(bytes, 1)).isOk());
    return machine.scheduleTrace().makespan;
}

Tick
hixHtoD(std::uint64_t bytes, bool pipeline = true)
{
    os::Machine machine;
    core::HixConfig config;
    config.pipeline = pipeline;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest(), config);
    EXPECT_TRUE(ge.isOk());
    core::TrustedRuntime user(&machine, ge->get(), "u");
    EXPECT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(bytes);
    EXPECT_TRUE(va.isOk());
    machine.clearTrace();
    EXPECT_TRUE(user.memcpyHtoD(*va, Bytes(bytes, 1)).isOk());
    return machine.scheduleTrace().makespan;
}

TEST(TimingModelTest, BaselineTransferMatchesBandwidth)
{
    const std::uint64_t bytes = 64 * MiB;
    const Tick t = baselineHtoD(bytes);
    const auto &cfg = sim::PlatformConfig::paper();
    const Tick ideal = transferTicks(bytes, cfg.dmaHtoDBps);
    // Within 5% of the raw DMA time (setup + control are small).
    EXPECT_GE(t, ideal);
    EXPECT_LE(t, ideal + ideal / 20 + 100 * US);
}

TEST(TimingModelTest, BaselineScalesLinearly)
{
    const Tick t1 = baselineHtoD(16 * MiB);
    const Tick t4 = baselineHtoD(64 * MiB);
    const double ratio = double(t4) / double(t1);
    EXPECT_GT(ratio, 3.6);
    EXPECT_LT(ratio, 4.4);
}

TEST(TimingModelTest, PipelinedHixApproachesCryptoBound)
{
    // Crypto (1.7 GB/s) is the bottleneck; the pipelined transfer
    // should take ~bytes/cryptoBw, not crypto + transfer.
    const std::uint64_t bytes = 64 * MiB;
    const auto &cfg = sim::PlatformConfig::paper();
    const Tick crypto = transferTicks(bytes, cfg.cpuOcbBps);
    const Tick dma = transferTicks(bytes, cfg.dmaHtoDBps);
    const Tick t = hixHtoD(bytes, /*pipeline=*/true);
    EXPECT_GE(t, crypto);  // cannot beat the bottleneck
    // Well below the fully serialized sum.
    EXPECT_LT(t, crypto + dma);
    // And within 25% of the bound (chunk fill/drain + GPU decrypt).
    EXPECT_LT(double(t) / double(crypto), 1.25);
}

TEST(TimingModelTest, SerializedHixNearSumOfStages)
{
    const std::uint64_t bytes = 64 * MiB;
    const auto &cfg = sim::PlatformConfig::paper();
    const Tick crypto = transferTicks(bytes, cfg.cpuOcbBps);
    const Tick dma = transferTicks(bytes, cfg.dmaHtoDBps);
    const Tick t = hixHtoD(bytes, /*pipeline=*/false);
    EXPECT_GT(t, crypto + dma);
}

TEST(TimingModelTest, DeterministicAcrossRuns)
{
    auto factory = [] { return makeRodinia("HS"); };
    auto a = runHix(factory);
    auto b = runHix(factory);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(a->ticks, b->ticks);
    EXPECT_EQ(a->gpuCtxSwitches, b->gpuCtxSwitches);
}

TEST(TimingModelTest, TimingScaleInvariance)
{
    // The same nominal transfer, modelled at two functional scales,
    // must land within a few percent (chunk-boundary residue only).
    struct Probe : public Workload
    {
        std::uint64_t scale;
        explicit Probe(std::uint64_t s) : Workload("probe"), scale(s) {}
        std::uint64_t timingScale() const override { return scale; }
        TransferSpec
        nominalTransfers() const override
        {
            return {64 * MiB, 0};
        }
        void registerKernels(gpu::GpuDevice &) override {}
        Status
        run(GpuApi &api) override
        {
            const std::uint64_t func = 64 * MiB / scale;
            HIX_ASSIGN_OR_RETURN(Addr va, api.memAlloc(func));
            HIX_RETURN_IF_ERROR(api.memcpyHtoD(va, Bytes(func, 1)));
            return api.memFree(va);
        }
    };

    auto t4 = runHix([] { return std::make_unique<Probe>(4); });
    auto t64 = runHix([] { return std::make_unique<Probe>(64); });
    ASSERT_TRUE(t4.isOk());
    ASSERT_TRUE(t64.isOk());
    const double ratio = double(t4->ticks) / double(t64->ticks);
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.05);
}

TEST(TimingModelTest, VoltaModeRemovesContextSwitches)
{
    RunConfig fermi;
    fermi.factory = [] { return makeRodinia("HS"); };
    fermi.users = 4;
    RunConfig volta = fermi;
    volta.machine.timing.gpuConcurrentContexts = 8;
    auto f = runWorkload(fermi);
    auto v = runWorkload(volta);
    ASSERT_TRUE(f.isOk());
    ASSERT_TRUE(v.isOk());
    EXPECT_GT(f->gpuCtxSwitches, 0u);
    EXPECT_EQ(v->gpuCtxSwitches, 0u);
    EXPECT_LE(v->ticks, f->ticks);
}

}  // namespace
}  // namespace hix::workloads
