/**
 * @file
 * The determinism wall for the streaming schedule-while-recording
 * pipeline: runWorkloadStreaming() must be *bit-identical* to the
 * two-phase path — same merged traceDigest(), same ScheduleResult in
 * every field (makespan, per-op start/finish, per-resource usage,
 * kindBusy, gpuCtxSwitches) — across user counts, runtimes, recording
 * thread counts, and two-phase scheduler engines, at any shard queue
 * capacity. Also pins repeat stability under real thread
 * interleavings, the lowest-user-index error contract with a draining
 * queue, and the intake/join work counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "sim/trace.h"
#include "workloads/runner.h"

namespace hix::workloads
{
namespace
{

RunConfig
makeConfig(bool use_hix, int users, int record_threads, bool streaming)
{
    RunConfig config;
    config.factory = [] { return makeRodinia("NN"); };
    config.users = users;
    config.useHix = use_hix;
    config.parallelRecording = true;
    // record_threads: 0 = auto pool (min(users, hardware)), else the
    // forced width. Forcing 1 with parallelRecording still runs the
    // queue path with a single producer — the consumer and reorder
    // buffer must behave identically there too.
    config.recordThreads = record_threads;
    config.keepTrace = true;
    config.streaming = streaming;
    return config;
}

void
expectScheduleEqual(const sim::ScheduleResult &got,
                    const sim::ScheduleResult &want)
{
    EXPECT_EQ(got.makespan, want.makespan);
    EXPECT_EQ(got.gpuCtxSwitches, want.gpuCtxSwitches);
    ASSERT_EQ(got.start.size(), want.start.size());
    ASSERT_EQ(got.finish.size(), want.finish.size());
    for (std::size_t i = 0; i < want.start.size(); ++i) {
        ASSERT_EQ(got.start[i], want.start[i]) << "op " << i;
        ASSERT_EQ(got.finish[i], want.finish[i]) << "op " << i;
    }
    ASSERT_EQ(got.usage.size(), want.usage.size());
    for (const auto &[res, use] : want.usage) {
        const auto it = got.usage.find(res);
        ASSERT_NE(it, got.usage.end()) << res.toString();
        EXPECT_EQ(it->second.busy, use.busy) << res.toString();
        EXPECT_EQ(it->second.lastFree, use.lastFree) << res.toString();
        EXPECT_EQ(it->second.ops, use.ops) << res.toString();
    }
    ASSERT_EQ(got.kindBusy.size(), want.kindBusy.size());
    for (const auto &[kind, busy] : want.kindBusy) {
        const auto it = got.kindBusy.find(kind);
        ASSERT_NE(it, got.kindBusy.end());
        EXPECT_EQ(it->second, busy)
            << sim::opKindName(kind);
    }
}

class StreamingWallTest
    : public ::testing::TestWithParam<std::tuple<bool, int, int>>
{
};

TEST_P(StreamingWallTest, StreamingIsBitIdenticalToTwoPhase)
{
    const auto [use_hix, users, record_threads] = GetParam();

    auto streaming = runWorkload(
        makeConfig(use_hix, users, record_threads, /*streaming=*/true));
    ASSERT_TRUE(streaming.isOk()) << streaming.status().message();
    ASSERT_GT(streaming->trace->size(), 0u);

    // The streaming front-end must match the two-phase path under
    // *every* engine the latter can score with (they are all
    // bit-identical to each other; the wall closes the triangle).
    for (auto engine : {sim::SchedulerEngine::Fast,
                        sim::SchedulerEngine::Parallel}) {
        RunConfig two_phase_config =
            makeConfig(use_hix, users, record_threads,
                       /*streaming=*/false);
        two_phase_config.schedulerEngine = engine;
        auto two_phase = runWorkload(two_phase_config);
        ASSERT_TRUE(two_phase.isOk()) << two_phase.status().message();

        EXPECT_EQ(sim::traceDigest(*streaming->trace),
                  sim::traceDigest(*two_phase->trace));
        EXPECT_EQ(streaming->ticks, two_phase->ticks);
        EXPECT_EQ(streaming->gpuCtxSwitches, two_phase->gpuCtxSwitches);
        EXPECT_EQ(streaming->tlbHits, two_phase->tlbHits);
        EXPECT_EQ(streaming->tlbMisses, two_phase->tlbMisses);
        EXPECT_EQ(streaming->iotlbHits, two_phase->iotlbHits);
        expectScheduleEqual(streaming->schedule, two_phase->schedule);
    }

    // Work-counter invariants: every shard was accepted, and every op
    // was scheduled exactly once — either a surviving intake result or
    // the final join, never both, never neither.
    const auto &st = streaming->streamStats;
    EXPECT_EQ(st.shards, static_cast<std::uint64_t>(users));
    EXPECT_EQ(st.reusedOps + st.joinOps, streaming->trace->size());
    EXPECT_GE(st.earlyComps, st.reusedComps);
}

TEST_P(StreamingWallTest, StreamingIsStableAcrossRepeats)
{
    // Shard completion order differs run to run (real thread timing);
    // the reorder buffer must erase it completely.
    const auto [use_hix, users, record_threads] = GetParam();
    const RunConfig config =
        makeConfig(use_hix, users, record_threads, /*streaming=*/true);
    auto first = runWorkload(config);
    auto second = runWorkload(config);
    ASSERT_TRUE(first.isOk()) << first.status().message();
    ASSERT_TRUE(second.isOk()) << second.status().message();
    EXPECT_EQ(sim::traceDigest(*first->trace),
              sim::traceDigest(*second->trace));
    EXPECT_EQ(first->ticks, second->ticks);
    expectScheduleEqual(first->schedule, second->schedule);
}

INSTANTIATE_TEST_SUITE_P(
    UsersByRuntimeByThreads, StreamingWallTest,
    ::testing::Combine(::testing::Bool(),  // useHix
                       ::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1, 2, 0)),  // record threads
    [](const auto &info) {
        const int threads = std::get<2>(info.param);
        return std::string(std::get<0>(info.param) ? "hix" : "gdev") +
               "_users" + std::to_string(std::get<1>(info.param)) +
               (threads == 0 ? "_auto"
                             : "_rt" + std::to_string(threads));
    });

TEST(StreamingQueueTest, CapacityOneIsBitIdentical)
{
    // The smallest legal queue maximizes producer blocking; results
    // must not notice. Also pins the high-water-mark plumbing: a
    // capacity-1 queue can never report a deeper high-water mark.
    RunConfig reference = makeConfig(/*use_hix=*/true, /*users=*/8,
                                     /*record_threads=*/8,
                                     /*streaming=*/false);
    auto two_phase = runWorkload(reference);
    ASSERT_TRUE(two_phase.isOk()) << two_phase.status().message();

    RunConfig config = makeConfig(/*use_hix=*/true, /*users=*/8,
                                  /*record_threads=*/8,
                                  /*streaming=*/true);
    config.streamingQueueCap = 1;
    auto streaming = runWorkload(config);
    ASSERT_TRUE(streaming.isOk()) << streaming.status().message();
    EXPECT_EQ(sim::traceDigest(*streaming->trace),
              sim::traceDigest(*two_phase->trace));
    expectScheduleEqual(streaming->schedule, two_phase->schedule);
    EXPECT_LE(streaming->streamQueueDepthMax, 1u);
}

TEST(StreamingQueueTest, SerialModeFeedsInlineWithoutAQueue)
{
    RunConfig config = makeConfig(/*use_hix=*/false, /*users=*/4,
                                  /*record_threads=*/0,
                                  /*streaming=*/true);
    config.parallelRecording = false;
    auto streaming = runWorkload(config);
    ASSERT_TRUE(streaming.isOk()) << streaming.status().message();
    EXPECT_EQ(streaming->streamQueueDepthMax, 0u);

    auto two_phase =
        runWorkload(makeConfig(/*use_hix=*/false, /*users=*/4,
                               /*record_threads=*/0,
                               /*streaming=*/false));
    ASSERT_TRUE(two_phase.isOk()) << two_phase.status().message();
    EXPECT_EQ(sim::traceDigest(*streaming->trace),
              sim::traceDigest(*two_phase->trace));
    expectScheduleEqual(streaming->schedule, two_phase->schedule);
}

/** Fails in run() for selected users; succeeds (doing nothing) for
 * the rest. */
class FailingWorkload : public Workload
{
  public:
    FailingWorkload(int user, bool fail)
        : Workload("failing"), user_(user), fail_(fail)
    {
    }
    std::uint64_t timingScale() const override { return 1; }
    TransferSpec nominalTransfers() const override { return {}; }
    void registerKernels(gpu::GpuDevice &) override {}
    Status
    run(GpuApi &) override
    {
        if (fail_)
            return errInternal("workload failed for user " +
                               std::to_string(user_));
        return Status::ok();
    }

  private:
    int user_;
    bool fail_;
};

TEST(StreamingErrorTest, LowestUserIndexErrorWinsAndQueueDrains)
{
    // Mid-stream recording failure: user 0 succeeds, users 1..7 fail.
    // The streaming consumer must report user 1's error — the same
    // deterministic choice the two-phase path makes — while still
    // draining every later completion so no producer blocks on a full
    // queue (capacity 1 with one thread per user is the worst case;
    // a stuck producer would hang the test).
    for (int cap : {1, 0}) {
        int next_user = 0;
        RunConfig config;
        config.factory = [&next_user] {
            const int user = next_user++;
            return std::unique_ptr<Workload>(
                new FailingWorkload(user, user >= 1));
        };
        config.users = 8;
        config.useHix = false;
        config.streaming = true;
        config.recordThreads = 8;
        config.streamingQueueCap = cap;
        auto outcome = runWorkload(config);
        ASSERT_FALSE(outcome.isOk());
        EXPECT_NE(outcome.status().message().find("user 1"),
                  std::string::npos)
            << outcome.status().message();
    }
}

TEST(StreamingErrorTest, SerialStreamingKeepsTheSameErrorContract)
{
    int next_user = 0;
    RunConfig config;
    config.factory = [&next_user] {
        const int user = next_user++;
        return std::unique_ptr<Workload>(
            new FailingWorkload(user, user >= 2));
    };
    config.users = 4;
    config.useHix = false;
    config.streaming = true;
    config.parallelRecording = false;
    auto outcome = runWorkload(config);
    ASSERT_FALSE(outcome.isOk());
    EXPECT_NE(outcome.status().message().find("user 2"),
              std::string::npos)
        << outcome.status().message();
}

TEST(StreamingStatsTest, SingleUserSchedulesEverythingAtIntakeOrJoin)
{
    // One user, Fermi preset: the whole trace is one resource-connected
    // component containing the shared GPU/DMA resources, so nothing is
    // invalidated by later shards — the intake result must survive and
    // the join must reuse it wholesale.
    auto outcome = runWorkload(makeConfig(/*use_hix=*/true, /*users=*/1,
                                          /*record_threads=*/0,
                                          /*streaming=*/true));
    ASSERT_TRUE(outcome.isOk()) << outcome.status().message();
    const auto &st = outcome->streamStats;
    EXPECT_EQ(st.shards, 1u);
    EXPECT_EQ(st.joinOps, 0u);
    EXPECT_EQ(st.reusedOps, outcome->trace->size());
    EXPECT_EQ(st.reusedComps, st.earlyComps);
}

TEST(StreamingStatsTest, SharedResourcesForceTheJoinToReschedule)
{
    // Multi-user on the Fermi preset: every user's shard touches the
    // global DMA engines and the single compute engine, so intake
    // results are all invalidated and the join rescores everything —
    // joinOps is pinned at the full trace size. This is the regime
    // where the streaming win is pipelining, not result reuse.
    for (bool use_hix : {false, true}) {
        auto outcome = runWorkload(makeConfig(use_hix, /*users=*/4,
                                              /*record_threads=*/2,
                                              /*streaming=*/true));
        ASSERT_TRUE(outcome.isOk()) << outcome.status().message();
        const auto &st = outcome->streamStats;
        EXPECT_EQ(st.shards, 4u);
        EXPECT_EQ(st.joinOps, outcome->trace->size());
        EXPECT_EQ(st.reusedOps, 0u);
    }
}

/**
 * The Volta wall: with every per-device engine bank per-context
 * (compute queues, DMA channels, enclave lanes all >= the user
 * count), each user shard's resource-connected components touch only
 * that shard's resources, so the streaming join must reuse every
 * intake result wholesale — joinOps == 0 at any user count — while
 * staying bit-identical to the two-phase path, cold-booted or forked.
 */
class VoltaStreamingWallTest
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
  protected:
    RunConfig
    makeVoltaConfig(bool use_hix, int users, bool streaming, bool fork)
    {
        RunConfig config =
            makeConfig(use_hix, users, /*record_threads=*/0, streaming);
        // The true Volta preset is 8 queues/channels; 16 users need a
        // 16-wide config for all sessions to stay channel-private
        // (pigeonhole). Widths are powers of two.
        const auto width =
            static_cast<std::uint32_t>(std::max(8, users));
        config.machine.timing.gpuConcurrentContexts = width;
        config.machine.timing.gpuDmaChannels = width;
        config.machine.timing.gpuEnclaveLanes = width;
        config.forkSessions = fork;
        return config;
    }
};

TEST_P(VoltaStreamingWallTest, JoinFreeAndBitIdenticalToTwoPhase)
{
    const auto [use_hix, users] = GetParam();

    auto two_phase = runWorkload(makeVoltaConfig(
        use_hix, users, /*streaming=*/false, /*fork=*/false));
    ASSERT_TRUE(two_phase.isOk()) << two_phase.status().message();
    ASSERT_GT(two_phase->trace->size(), 0u);

    for (bool fork : {false, true}) {
        auto streaming = runWorkload(makeVoltaConfig(
            use_hix, users, /*streaming=*/true, fork));
        ASSERT_TRUE(streaming.isOk()) << streaming.status().message();

        EXPECT_EQ(sim::traceDigest(*streaming->trace),
                  sim::traceDigest(*two_phase->trace));
        EXPECT_EQ(streaming->ticks, two_phase->ticks);
        expectScheduleEqual(streaming->schedule, two_phase->schedule);

        // The tentpole: shard-private engine channels keep every
        // intake result valid, so the join reschedules nothing.
        const auto &st = streaming->streamStats;
        EXPECT_EQ(st.shards, static_cast<std::uint64_t>(users));
        EXPECT_EQ(st.joinOps, 0u)
            << (fork ? "fork" : "cold") << " streaming rescheduled "
            << st.joinOps << " of " << streaming->trace->size()
            << " ops at the join";
        EXPECT_EQ(st.reusedOps, streaming->trace->size());
    }

    // Fork-mode two-phase must also match the cold two-phase run.
    auto forked = runWorkload(makeVoltaConfig(
        use_hix, users, /*streaming=*/false, /*fork=*/true));
    ASSERT_TRUE(forked.isOk()) << forked.status().message();
    EXPECT_EQ(sim::traceDigest(*forked->trace),
              sim::traceDigest(*two_phase->trace));
    EXPECT_EQ(forked->ticks, two_phase->ticks);
    expectScheduleEqual(forked->schedule, two_phase->schedule);
}

INSTANTIATE_TEST_SUITE_P(
    UsersByRuntime, VoltaStreamingWallTest,
    ::testing::Combine(::testing::Bool(),  // useHix
                       ::testing::Values(1, 2, 4, 8, 16)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "hix" : "gdev") +
               "_users" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hix::workloads
