/**
 * @file
 * Parameterized correctness tests: every workload must run and
 * verify on both the unprotected baseline and the HIX secure path,
 * plus sanity checks of the timing shape (HIX overhead present for
 * transfer-heavy apps, baseline wins there; small apps faster on
 * HIX).
 */

#include <gtest/gtest.h>

#include "workloads/runner.h"

namespace hix::workloads
{
namespace
{

struct Case
{
    const char *name;
    bool hix;
};

class WorkloadRunTest
    : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadRunTest, RunsAndVerifies)
{
    const Case c = GetParam();
    auto factory = [&] { return makeRodinia(c.name); };
    auto outcome = c.hix ? runHix(factory) : runBaseline(factory);
    ASSERT_TRUE(outcome.isOk()) << outcome.status().toString();
    EXPECT_GT(outcome->ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Rodinia, WorkloadRunTest,
    ::testing::Values(
        Case{"BP", false}, Case{"BP", true}, Case{"BFS", false},
        Case{"BFS", true}, Case{"GS", false}, Case{"GS", true},
        Case{"HS", false}, Case{"HS", true}, Case{"LUD", false},
        Case{"LUD", true}, Case{"NW", false}, Case{"NW", true},
        Case{"NN", false}, Case{"NN", true}, Case{"PF", false},
        Case{"PF", true}, Case{"SRAD", false}, Case{"SRAD", true}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(info.param.name) +
               (info.param.hix ? "_hix" : "_gdev");
    });

TEST(MatrixWorkloadTest, AddRunsBothPaths)
{
    auto factory = [] { return makeMatrixAdd(2048); };
    auto base = runBaseline(factory);
    ASSERT_TRUE(base.isOk()) << base.status().toString();
    auto hix = runHix(factory);
    ASSERT_TRUE(hix.isOk()) << hix.status().toString();
    // Matrix addition is transfer-dominated: HIX pays crypto.
    EXPECT_GT(hix->ticks, base->ticks);
}

TEST(MatrixWorkloadTest, MulOverheadShrinksWithSize)
{
    auto t = [](std::uint32_t n, bool use_hix) {
        auto factory = [n] { return makeMatrixMul(n); };
        auto r = use_hix ? runHix(factory) : runBaseline(factory);
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return r->ticks;
    };
    const double small_overhead =
        double(t(2048, true)) / double(t(2048, false));
    const double large_overhead =
        double(t(8192, true)) / double(t(8192, false));
    EXPECT_GT(small_overhead, 1.0);
    EXPECT_LT(large_overhead, small_overhead);
}

TEST(ShapeTest, PathfinderIsWorstCase)
{
    // PF (256 MB in, tiny kernel) must show a larger HIX overhead
    // than GS (compute-heavy) — the paper's headline contrast.
    auto ratio = [](const char *name) {
        auto factory = [name] { return makeRodinia(name); };
        auto base = runBaseline(factory);
        auto hix = runHix(factory);
        EXPECT_TRUE(base.isOk());
        EXPECT_TRUE(hix.isOk());
        return double(hix->ticks) / double(base->ticks);
    };
    const double pf = ratio("PF");
    const double gs = ratio("GS");
    EXPECT_GT(pf, 2.0);   // paper: +154%
    EXPECT_LT(gs, 1.15);  // paper: near parity
}

TEST(ShapeTest, SmallAppsFasterUnderHix)
{
    // HS/LUD/NN benefit from HIX's cheaper task init (Section 5.3.2).
    auto factory = [] { return makeRodinia("NN"); };
    auto base = runBaseline(factory);
    auto hix = runHix(factory);
    ASSERT_TRUE(base.isOk());
    ASSERT_TRUE(hix.isOk());
    EXPECT_LT(hix->ticks, base->ticks);
}

TEST(MultiUserTest, TwoUsersShareTheGpu)
{
    auto factory = [] { return makeRodinia("HS"); };
    auto one = runHix(factory, 1);
    auto two = runHix(factory, 2);
    ASSERT_TRUE(one.isOk()) << one.status().toString();
    ASSERT_TRUE(two.isOk()) << two.status().toString();
    // Two users take longer than one but less than twice (overlap).
    EXPECT_GT(two->ticks, one->ticks);
    EXPECT_LT(two->ticks, 2 * one->ticks);
}

TEST(MultiUserTest, HixPaysContextSwitchesBaselineDoesNot)
{
    auto factory = [] { return makeRodinia("HS"); };
    auto hix = runHix(factory, 2);
    auto base = runBaseline(factory, 2);
    ASSERT_TRUE(hix.isOk());
    ASSERT_TRUE(base.isOk());
    // Pre-Volta MPS merges baseline users into one context.
    EXPECT_EQ(base->gpuCtxSwitches, 0u);
    EXPECT_GT(hix->gpuCtxSwitches, 0u);
}

TEST(AblationTest, PipeliningHelpsTransfers)
{
    RunConfig with;
    with.factory = [] { return makeRodinia("PF"); };
    RunConfig without = with;
    without.pipeline = false;
    auto fast = runWorkload(with);
    auto slow = runWorkload(without);
    ASSERT_TRUE(fast.isOk());
    ASSERT_TRUE(slow.isOk());
    EXPECT_LT(fast->ticks, slow->ticks);
}

TEST(AblationTest, SingleCopyBeatsNaiveDoubleCopy)
{
    RunConfig single;
    single.factory = [] { return makeRodinia("PF"); };
    RunConfig naive = single;
    naive.singleCopy = false;
    auto fast = runWorkload(single);
    auto slow = runWorkload(naive);
    ASSERT_TRUE(fast.isOk());
    ASSERT_TRUE(slow.isOk());
    EXPECT_LT(fast->ticks, slow->ticks);
}

}  // namespace
}  // namespace hix::workloads
