/**
 * @file
 * Golden-equivalence wall for the parallel scheduler engine:
 * scheduleParallel() must produce a bit-identical ScheduleResult to
 * schedule() at every thread count, on every trace shape the engine
 * can encounter — recorded Rodinia runs (including multi-user traces
 * with real context-switch pressure), synthetic multi-user pipelines,
 * merged multi-trace DAGs, component-disjoint traces, the
 * window-eligible wide-and-coarse shape, and the all-one-resource
 * pathological case — across context-switch costs. The TSan CI job
 * runs this suite under -fsanitize=thread (ctest -R
 * SchedulerParallel); do not rename it.
 */

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace hix::workloads
{
namespace
{

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8, 16};

/** Field-by-field, bit-for-bit comparison against the fast engine. */
void
expectIdentical(const sim::ScheduleResult &fast,
                const sim::ScheduleResult &par, const char *what)
{
    EXPECT_EQ(fast.makespan, par.makespan) << what;
    EXPECT_EQ(fast.gpuCtxSwitches, par.gpuCtxSwitches) << what;
    EXPECT_EQ(fast.start, par.start) << what;
    EXPECT_EQ(fast.finish, par.finish) << what;
    EXPECT_EQ(fast.kindBusy, par.kindBusy) << what;
    ASSERT_EQ(fast.usage.size(), par.usage.size()) << what;
    for (const auto &[res, use] : fast.usage) {
        auto it = par.usage.find(res);
        ASSERT_NE(it, par.usage.end()) << what << " " << res.toString();
        EXPECT_EQ(it->second.busy, use.busy) << what;
        EXPECT_EQ(it->second.lastFree, use.lastFree) << what;
        EXPECT_EQ(it->second.ops, use.ops) << what;
    }
}

/** scheduleParallel across every thread count vs schedule(). */
void
expectParallelEquivalence(const sim::Trace &trace,
                          const sim::SchedulerConfig &cfg)
{
    const sim::ScheduleResult fast = sim::schedule(trace, cfg);
    for (unsigned threads : kThreadCounts) {
        const sim::ScheduleResult par =
            sim::scheduleParallel(trace, cfg, threads);
        expectIdentical(
            fast, par,
            ("threads=" + std::to_string(threads)).c_str());
    }
    // The SchedulerConfig::threads knob must behave like the explicit
    // argument.
    sim::SchedulerConfig knob = cfg;
    knob.threads = 3;
    expectIdentical(fast, sim::scheduleParallel(trace, knob),
                    "config.threads=3");
}

/** The bench's multi-user pipeline shape, CI-sized. */
sim::Trace
makePipeline(int users, int lanes, std::size_t total_ops)
{
    sim::Trace trace;
    trace.reserve(total_ops);
    Rng rng(0x5ced);
    const sim::ResourceId dma{sim::ResUnit::DmaHtoD, 0};
    const sim::ResourceId gpu{sim::ResUnit::GpuCompute, 0};
    std::vector<std::vector<sim::OpId>> tails(
        users, std::vector<sim::OpId>(lanes, sim::InvalidOpId));
    std::size_t added = 0;
    for (std::size_t i = 0; added + 3 <= total_ops; ++i) {
        const int u = static_cast<int>(i % users);
        const int l = static_cast<int>((i / users) % lanes);
        const sim::ResourceId cpu{sim::ResUnit::UserCpu,
                                  static_cast<std::uint16_t>(u)};
        const sim::OpId tail = tails[u][l];
        const sim::OpId enc = trace.add(
            cpu, 50 + rng.nextBelow(200),
            std::span<const sim::OpId>(
                &tail, tail != sim::InvalidOpId ? 1 : 0),
            sim::OpKind::CryptoCpu, 4096, "enc");
        const sim::OpId xfer =
            trace.add(dma, 20 + rng.nextBelow(80), {enc},
                      sim::OpKind::Transfer, 4096, "xfer");
        tails[u][l] = trace.add(
            gpu, 100 + rng.nextBelow(400), {xfer},
            sim::OpKind::Compute, 0, "kernel",
            static_cast<GpuContextId>(u));
        added += 3;
    }
    return trace;
}

sim::Trace
recordRodinia(const std::string &app, int users, bool use_hix,
              sim::SchedulerConfig *cfg_out)
{
    RunConfig config;
    config.factory = [app] { return makeRodinia(app); };
    config.users = users;
    config.useHix = use_hix;
    config.keepTrace = true;
    auto outcome = runWorkload(config);
    EXPECT_TRUE(outcome.isOk()) << outcome.status().toString();
    if (!outcome.isOk() || !outcome->trace)
        return {};
    if (cfg_out)
        *cfg_out = outcome->schedulerConfig;
    return *outcome->trace;
}

TEST(SchedulerParallelTest, RecordedRodiniaTraces)
{
    for (const char *app : {"BP", "BFS"}) {
        sim::SchedulerConfig cfg;
        const sim::Trace trace = recordRodinia(app, 1, true, &cfg);
        ASSERT_GT(trace.size(), 0u);
        expectParallelEquivalence(trace, cfg);
    }
}

TEST(SchedulerParallelTest, RecordedMultiUserContextSwitchTrace)
{
    // LUD with four isolated users carries real context-switch
    // pressure; the parallel engine must reproduce the switch count
    // and the switch-inflated start times exactly.
    sim::SchedulerConfig cfg;
    const sim::Trace trace = recordRodinia("LUD", 4, true, &cfg);
    ASSERT_GT(trace.size(), 0u);
    const sim::ScheduleResult fast = sim::schedule(trace, cfg);
    EXPECT_GT(fast.gpuCtxSwitches, 0u);
    expectParallelEquivalence(trace, cfg);
}

TEST(SchedulerParallelTest, SyntheticPipelineAcrossCtxCosts)
{
    const sim::Trace trace = makePipeline(8, 16, 30'000);
    for (Tick cost : {Tick(0), Tick(50), Tick(1000)}) {
        sim::SchedulerConfig cfg;
        cfg.gpuCtxSwitchTicks = cost;
        expectParallelEquivalence(trace, cfg);
    }
}

TEST(SchedulerParallelTest, MergedMultiUserTraces)
{
    sim::SchedulerConfig cfg;
    const sim::Trace a = recordRodinia("BP", 2, false, &cfg);
    const sim::Trace b = recordRodinia("BFS", 2, true, nullptr);
    ASSERT_GT(a.size(), 0u);
    ASSERT_GT(b.size(), 0u);
    sim::Trace merged;
    merged.append(a);
    merged.append(b);
    merged.append(a);
    expectParallelEquivalence(merged, cfg);
}

TEST(SchedulerParallelTest, DisjointComponentsFanOut)
{
    // Users that never share a resource: one component per user, the
    // shape the component worker pool parallelises perfectly.
    sim::Trace trace;
    Rng rng(0xd15);
    const int users = 6;
    std::vector<sim::OpId> tails(users, sim::InvalidOpId);
    for (int round = 0; round < 500; ++round) {
        for (int u = 0; u < users; ++u) {
            const sim::ResourceId cpu{sim::ResUnit::UserCpu,
                                      static_cast<std::uint16_t>(u)};
            const sim::OpId tail = tails[u];
            tails[u] = trace.add(
                cpu, 10 + rng.nextBelow(90),
                std::span<const sim::OpId>(
                    &tail, tail != sim::InvalidOpId ? 1 : 0),
                sim::OpKind::Compute, 0, "w");
        }
    }
    EXPECT_EQ(trace.components().count,
              static_cast<std::uint32_t>(users));
    sim::SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;
    expectParallelEquivalence(trace, cfg);
}

TEST(SchedulerParallelTest, WindowEligibleWideCoarseTrace)
{
    // 128 equally-loaded resources, every op feeding a neighbouring
    // resource with uniform coarse durations: cross-resource lookahead
    // equals the op duration and each window carries ~128 commits, so
    // this single-component trace satisfies the window-synchronized
    // engine's profitability gate at thread counts >= 2. Uniform
    // durations also maximise cross-resource dispatch ties, stressing
    // the determinism argument. Resource 0 is the GPU compute engine
    // with rotating contexts so window commits exercise residency and
    // switch accounting too.
    sim::Trace trace;
    const int nres = 128;
    const std::size_t n = 25'600;
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>(i % nres);
        const sim::ResourceId res =
            r == 0 ? sim::ResourceId{sim::ResUnit::GpuCompute, 0}
                   : sim::ResourceId{sim::ResUnit::UserCpu,
                                     static_cast<std::uint16_t>(r)};
        std::vector<sim::OpId> deps;
        if (i >= static_cast<std::size_t>(nres))
            deps.push_back(static_cast<sim::OpId>(i - nres + 1));
        const GpuContextId ctx =
            r == 0 ? static_cast<GpuContextId>(1 + (i / nres) % 4)
                   : sim::NoGpuContext;
        trace.add(res, 100, deps, sim::OpKind::Compute, 0, "", ctx);
    }
    EXPECT_EQ(trace.components().count, 1u);
    for (Tick cost : {Tick(0), Tick(50)}) {
        sim::SchedulerConfig cfg;
        cfg.gpuCtxSwitchTicks = cost;
        expectParallelEquivalence(trace, cfg);
    }
}

TEST(SchedulerParallelTest, AllOpsOneResourcePathological)
{
    // Degenerate single-resource trace: no component or window
    // parallelism available at any thread count; every path must
    // still agree.
    sim::Trace trace;
    Rng rng(0x1);
    sim::OpId tail = sim::InvalidOpId;
    const sim::ResourceId gpu{sim::ResUnit::GpuCompute, 0};
    for (int i = 0; i < 2'000; ++i) {
        const bool chained = (i % 3) != 0 && tail != sim::InvalidOpId;
        tail = trace.add(
            gpu, 1 + rng.nextBelow(50),
            std::span<const sim::OpId>(&tail, chained ? 1 : 0),
            sim::OpKind::Compute, 0, "",
            static_cast<GpuContextId>(i % 5));
    }
    sim::SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 25;
    expectParallelEquivalence(trace, cfg);
}

TEST(SchedulerParallelTest, RepeatRunsAreStable)
{
    // Thread scheduling must never leak into the result: repeated
    // parallel runs of the same trace are bit-identical.
    const sim::Trace trace = makePipeline(4, 8, 12'000);
    sim::SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;
    const sim::ScheduleResult first =
        sim::scheduleParallel(trace, cfg, 8);
    for (int rep = 0; rep < 4; ++rep)
        expectIdentical(first, sim::scheduleParallel(trace, cfg, 8),
                        "repeat");
}

TEST(SchedulerParallelTest, EmptyAndTinyTraces)
{
    sim::Trace empty;
    const sim::ScheduleResult none =
        sim::scheduleParallel(empty, {}, 8);
    EXPECT_EQ(none.makespan, 0u);
    EXPECT_TRUE(none.start.empty());
    EXPECT_TRUE(none.finish.empty());

    sim::Trace one;
    one.add({sim::ResUnit::UserCpu, 0}, 7, {}, sim::OpKind::Control);
    expectParallelEquivalence(one, {});
}

}  // namespace
}  // namespace hix::workloads
