/**
 * @file
 * The determinism wall for parallel per-user trace recording: a
 * parallel (thread-per-user) recording must be *bit-identical* to a
 * serial recording of the same configuration — same merged trace
 * digest, same scheduled ticks — across user counts, runtimes, and
 * pipeline ablations. Also pins the recording-thread contract for
 * per-shard TraceRecorder observers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/trace.h"
#include "workloads/runner.h"

namespace hix::workloads
{
namespace
{

RunConfig
makeConfig(bool use_hix, int users, bool pipeline, bool parallel)
{
    RunConfig config;
    config.factory = [] { return makeRodinia("NN"); };
    config.users = users;
    config.useHix = use_hix;
    config.pipeline = pipeline;
    config.parallelRecording = parallel;
    // Force one recording thread per user (the auto pool sizes to the
    // host and may collapse to one worker on small CI machines): the
    // wall must exercise — and TSan must observe — the maximally
    // parallel interleaving regardless of where it runs.
    if (parallel)
        config.recordThreads = users;
    config.keepTrace = true;
    return config;
}

struct Recording
{
    std::uint64_t digest = 0;
    Tick ticks = 0;
    std::uint64_t ctxSwitches = 0;
    std::size_t ops = 0;
};

Recording
record(bool use_hix, int users, bool pipeline, bool parallel)
{
    auto outcome =
        runWorkload(makeConfig(use_hix, users, pipeline, parallel));
    EXPECT_TRUE(outcome.isOk()) << outcome.status().message();
    Recording r;
    r.digest = sim::traceDigest(*outcome->trace);
    r.ticks = outcome->ticks;
    r.ctxSwitches = outcome->gpuCtxSwitches;
    r.ops = outcome->trace->size();
    return r;
}

class ParallelRecordTest
    : public ::testing::TestWithParam<std::tuple<bool, int, bool>>
{
};

TEST_P(ParallelRecordTest, ParallelRecordingIsBitIdenticalToSerial)
{
    const auto [use_hix, users, pipeline] = GetParam();
    const Recording serial = record(use_hix, users, pipeline, false);
    const Recording parallel = record(use_hix, users, pipeline, true);

    ASSERT_GT(serial.ops, 0u);
    EXPECT_EQ(parallel.ops, serial.ops);
    EXPECT_EQ(parallel.digest, serial.digest);
    EXPECT_EQ(parallel.ticks, serial.ticks);
    EXPECT_EQ(parallel.ctxSwitches, serial.ctxSwitches);
}

TEST_P(ParallelRecordTest, ParallelRecordingIsStableAcrossRepeats)
{
    // Thread interleavings differ run to run; recordings must not.
    const auto [use_hix, users, pipeline] = GetParam();
    const Recording first = record(use_hix, users, pipeline, true);
    const Recording second = record(use_hix, users, pipeline, true);
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.ticks, second.ticks);
}

INSTANTIATE_TEST_SUITE_P(
    UsersByRuntimeByPipeline, ParallelRecordTest,
    ::testing::Combine(::testing::Bool(),  // useHix
                       ::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Bool()),  // pipeline
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "hix" : "gdev") +
               "_users" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_pipeline" : "_nopipeline");
    });

TEST(ParallelRecordTestAutoPool, AutoSizedPoolIsBitIdenticalToo)
{
    // recordThreads = 0 sizes the pool to min(users, hardware
    // threads) and statically round-robins users over the workers; a
    // worker recording several shards back to back must change
    // nothing.
    RunConfig config = makeConfig(/*use_hix=*/true, /*users=*/8,
                                  /*pipeline=*/true, /*parallel=*/true);
    config.recordThreads = 0;
    auto autoPool = runWorkload(config);
    ASSERT_TRUE(autoPool.isOk()) << autoPool.status().message();

    const Recording serial =
        record(/*use_hix=*/true, 8, /*pipeline=*/true, false);
    EXPECT_EQ(sim::traceDigest(*autoPool->trace), serial.digest);
    EXPECT_EQ(autoPool->ticks, serial.ticks);

    config.recordThreads = 3;  // users % workers != 0: uneven strides
    auto uneven = runWorkload(config);
    ASSERT_TRUE(uneven.isOk()) << uneven.status().message();
    EXPECT_EQ(sim::traceDigest(*uneven->trace), serial.digest);
    EXPECT_EQ(uneven->ticks, serial.ticks);
}

TEST(ParallelRecordObserverTest, ObserversFireOnTheRecordingThread)
{
    // Per-shard observers are the security harness's attack hook;
    // under parallel recording they must fire synchronously on their
    // own shard's recording thread, with labels already resolved.
    constexpr int kUsers = 4;
    struct ShardLog
    {
        std::thread::id hookThread;
        std::vector<std::thread::id> notifyThreads;
        std::vector<std::string> labels;
    };
    std::vector<ShardLog> logs(kUsers);

    RunConfig config = makeConfig(/*use_hix=*/true, kUsers,
                                  /*pipeline=*/true, /*parallel=*/true);
    config.shardHook = [&logs](int user, os::Machine &machine) {
        logs[user].hookThread = std::this_thread::get_id();
        machine.recorder().addObserver(
            [&logs, user](const sim::Op &,
                          const std::string &label) {
                logs[user].notifyThreads.push_back(
                    std::this_thread::get_id());
                logs[user].labels.push_back(label);
            });
    };
    auto outcome = runWorkload(config);
    ASSERT_TRUE(outcome.isOk()) << outcome.status().message();

    std::set<std::thread::id> shard_threads;
    for (int u = 0; u < kUsers; ++u) {
        const ShardLog &log = logs[u];
        ASSERT_FALSE(log.notifyThreads.empty());
        shard_threads.insert(log.hookThread);
        // Every notification on this shard's own recording thread.
        for (const auto &tid : log.notifyThreads)
            EXPECT_EQ(tid, log.hookThread);
        // Labels arrive resolved (the data path records named ops).
        EXPECT_NE(std::count(log.labels.begin(), log.labels.end(),
                             "h2d_encrypt"),
                  0);
        EXPECT_NE(std::count(log.labels.begin(), log.labels.end(),
                             "hix_task_init"),
                  0);
    }
    // Shards really ran on distinct threads (and none on the caller).
    EXPECT_EQ(shard_threads.size(), std::size_t(kUsers));
    EXPECT_EQ(shard_threads.count(std::this_thread::get_id()), 0u);
}

TEST(ParallelRecordObserverTest, SerialModeRunsShardsOnCallingThread)
{
    constexpr int kUsers = 2;
    std::vector<std::thread::id> hook_threads(kUsers);
    RunConfig config = makeConfig(/*use_hix=*/false, kUsers,
                                  /*pipeline=*/true, /*parallel=*/false);
    config.shardHook = [&hook_threads](int user, os::Machine &) {
        hook_threads[user] = std::this_thread::get_id();
    };
    ASSERT_TRUE(runWorkload(config).isOk());
    for (const auto &tid : hook_threads)
        EXPECT_EQ(tid, std::this_thread::get_id());
}

/** Fails in run() for selected users; succeeds (doing nothing) for
 * the rest. */
class FailingWorkload : public Workload
{
  public:
    FailingWorkload(int user, bool fail)
        : Workload("failing"), user_(user), fail_(fail)
    {
    }
    std::uint64_t timingScale() const override { return 1; }
    TransferSpec nominalTransfers() const override { return {}; }
    void registerKernels(gpu::GpuDevice &) override {}
    Status
    run(GpuApi &) override
    {
        if (fail_)
            return errInternal("workload failed for user " +
                               std::to_string(user_));
        return Status::ok();
    }

  private:
    int user_;
    bool fail_;
};

TEST(ParallelRecordErrorTest, LowestUserIndexErrorWins)
{
    // Error propagation must be deterministic under parallelism: the
    // lowest failing user's error is reported no matter which shard
    // thread happened to fail first. User 0 succeeds; 1..3 fail.
    for (bool parallel : {false, true}) {
        int next_user = 0;
        RunConfig config;
        config.factory = [&next_user] {
            const int user = next_user++;
            return std::unique_ptr<Workload>(
                new FailingWorkload(user, user >= 1));
        };
        config.users = 4;
        config.useHix = false;
        config.parallelRecording = parallel;
        auto outcome = runWorkload(config);
        ASSERT_FALSE(outcome.isOk());
        EXPECT_NE(outcome.status().message().find("user 1"),
                  std::string::npos)
            << outcome.status().message();
    }
}

}  // namespace
}  // namespace hix::workloads
