/**
 * @file
 * Golden-equivalence suite for the two scheduler engines: every real
 * recorded trace — Rodinia applications, the HIX chunked crypto
 * pipeline, multi-user runs, and multi-trace merges — must produce a
 * bit-identical ScheduleResult from the O(n log n) engine and the
 * O(n^2) reference engine. CI gates on this suite by name
 * (ctest -R SchedulerGolden); do not rename it.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace hix::workloads
{
namespace
{

/** Both engines, field by field, bit for bit. */
void
expectEngineEquivalence(const sim::Trace &trace,
                        const sim::SchedulerConfig &cfg)
{
    const sim::ScheduleResult fast = sim::schedule(trace, cfg);
    const sim::ScheduleResult ref = sim::scheduleReference(trace, cfg);

    EXPECT_EQ(fast.makespan, ref.makespan);
    EXPECT_EQ(fast.gpuCtxSwitches, ref.gpuCtxSwitches);
    EXPECT_EQ(fast.start, ref.start);
    EXPECT_EQ(fast.finish, ref.finish);
    EXPECT_EQ(fast.kindBusy, ref.kindBusy);

    ASSERT_EQ(fast.usage.size(), ref.usage.size());
    for (const auto &[res, use] : ref.usage) {
        auto it = fast.usage.find(res);
        ASSERT_NE(it, fast.usage.end()) << res.toString();
        EXPECT_EQ(it->second.busy, use.busy) << res.toString();
        EXPECT_EQ(it->second.lastFree, use.lastFree)
            << res.toString();
        EXPECT_EQ(it->second.ops, use.ops) << res.toString();
    }
}

/** Run a workload with trace capture and check both engines on it. */
RunOutcome
runAndCheck(RunConfig config)
{
    config.keepTrace = true;
    auto outcome = runWorkload(config);
    EXPECT_TRUE(outcome.isOk()) << outcome.status().toString();
    if (!outcome.isOk())
        return {};
    EXPECT_TRUE(outcome->trace != nullptr);
    EXPECT_GT(outcome->trace->size(), 0u);
    expectEngineEquivalence(*outcome->trace,
                            outcome->schedulerConfig);
    // The kept trace must be the one the run was scored with.
    const auto replay =
        sim::schedule(*outcome->trace, outcome->schedulerConfig);
    EXPECT_EQ(replay.makespan, outcome->ticks);
    return std::move(*outcome);
}

RunConfig
rodiniaConfig(const std::string &app, int users, bool use_hix)
{
    RunConfig config;
    config.factory = [app] { return makeRodinia(app); };
    config.users = users;
    config.useHix = use_hix;
    return config;
}

TEST(SchedulerGoldenTest, RodiniaBaselineSingleUser)
{
    for (const char *app : {"BP", "BFS", "NW", "SRAD"})
        runAndCheck(rodiniaConfig(app, 1, false));
}

TEST(SchedulerGoldenTest, RodiniaHixPipelineSingleUser)
{
    // The HIX secure data path: chunked encrypt/transfer/decrypt
    // pipeline traces with GPU crypto kernels.
    for (const char *app : {"BP", "GS", "HS", "NN"})
        runAndCheck(rodiniaConfig(app, 1, true));
}

TEST(SchedulerGoldenTest, RodiniaBaselineMpsMultiUser)
{
    // Pre-Volta MPS: users share one merged GPU context.
    runAndCheck(rodiniaConfig("BFS", 2, false));
    runAndCheck(rodiniaConfig("PF", 4, false));
}

TEST(SchedulerGoldenTest, RodiniaHixMultiUserContextSwitches)
{
    // One isolated GPU context per enclave user: these traces carry
    // real context-switch pressure on the compute engine.
    runAndCheck(rodiniaConfig("BP", 2, true));
    auto four = runAndCheck(rodiniaConfig("LUD", 4, true));
    EXPECT_GT(four.gpuCtxSwitches, 0u);
}

TEST(SchedulerGoldenTest, HixDataPathAblations)
{
    // Two-copy, unpipelined, and PIO ablations exercise distinct
    // recorded op shapes.
    RunConfig two_copy = rodiniaConfig("BP", 1, true);
    two_copy.singleCopy = false;
    runAndCheck(two_copy);

    RunConfig unpipelined = rodiniaConfig("BP", 1, true);
    unpipelined.pipeline = false;
    runAndCheck(unpipelined);

    RunConfig pio = rodiniaConfig("BP", 1, true);
    pio.usePio = true;
    runAndCheck(pio);
}

TEST(SchedulerGoldenTest, MatrixWorkloads)
{
    RunConfig config;
    config.factory = [] { return makeMatrixMul(64); };
    config.users = 1;
    config.useHix = true;
    runAndCheck(config);

    config.factory = [] { return makeMatrixAdd(128); };
    config.useHix = false;
    runAndCheck(config);
}

TEST(SchedulerGoldenTest, MergedMultiUserTraces)
{
    // Merge independently recorded runs into one trace (the shape the
    // scheduler bench uses for its 16-user preset): append() remaps
    // op ids, spilled deps, and interned labels across traces.
    auto base = runAndCheck(rodiniaConfig("BP", 2, false));
    auto secure = runAndCheck(rodiniaConfig("BFS", 2, true));
    ASSERT_TRUE(base.trace && secure.trace);

    sim::Trace merged;
    merged.append(*base.trace);
    merged.append(*secure.trace);
    merged.append(*base.trace);
    ASSERT_EQ(merged.size(), 2 * base.trace->size() +
                                 secure.trace->size());
    expectEngineEquivalence(merged, base.schedulerConfig);
}

}  // namespace
}  // namespace hix::workloads
