/**
 * @file
 * The Service determinism wall for the GPU-pool runtime: a service
 * run is a pure function of its ServiceConfig. For every placement
 * policy, both runtimes, and pools of 1/2/4 devices serving 1/8/32
 * sessions, running the same seeded open-loop stream twice must
 * produce identical placement maps, admission times, per-session
 * finish ticks, latency percentiles, and merged trace digests — at
 * any recording worker count (TSan runs this wall to observe the
 * concurrent shard recording).
 *
 * Also pins the pool's collapse property: a closed-batch pool on one
 * device is bit-identical — digest and ticks — to the plain
 * runWorkload() path, so the service runtime strictly generalizes
 * the existing runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "sim/trace.h"
#include "svc/service.h"

namespace hix::svc
{
namespace
{

ServiceConfig
makeServiceConfig(Policy policy, bool use_hix, int devices,
                  int sessions)
{
    ServiceConfig cfg;
    cfg.devices = devices;
    cfg.policy = policy;
    cfg.useHix = use_hix;
    cfg.seed = 0xd1ce;
    cfg.sessions = sessions;
    cfg.meanInterarrivalTicks = 3'000'000;
    cfg.tableCap = 8;
    cfg.appMix = {"NN"};
    cfg.userPopulation = 4;
    cfg.run.keepTrace = true;
    cfg.run.forkSessions = true;
    // Force a multi-worker recording pool (the auto pool may collapse
    // to one worker on small CI machines) so the wall — and TSan —
    // sees concurrent shard recording against the shared templates.
    if (sessions > 1) {
        cfg.run.parallelRecording = true;
        cfg.run.recordThreads = std::min(sessions, 8);
    }
    return cfg;
}

struct Fingerprint
{
    std::vector<std::tuple<int, int, Tick, Tick, int>> placement;
    std::vector<Tick> finish;
    std::vector<std::uint64_t> ops;
    std::uint64_t digest = 0;
    Tick ticks = 0;
    Tick p50 = 0, p95 = 0, p99 = 0;

    bool
    operator==(const Fingerprint &other) const
    {
        return placement == other.placement &&
               finish == other.finish && ops == other.ops &&
               digest == other.digest && ticks == other.ticks &&
               p50 == other.p50 && p95 == other.p95 &&
               p99 == other.p99;
    }
};

Fingerprint
fingerprint(const ServiceConfig &cfg)
{
    auto out = runService(cfg);
    EXPECT_TRUE(out.isOk()) << out.status().message();
    Fingerprint fp;
    if (!out.isOk())
        return fp;
    for (const SessionPlan &s : out->plan.sessions)
        fp.placement.emplace_back(s.user, s.appIndex, s.arrival,
                                  s.admit, s.device);
    fp.finish = out->pool.sessionFinish;
    fp.ops = out->pool.sessionOps;
    fp.digest = sim::traceDigest(*out->pool.run.trace);
    fp.ticks = out->pool.run.ticks;
    fp.p50 = out->p50;
    fp.p95 = out->p95;
    fp.p99 = out->p99;
    return fp;
}

class ServiceRecordTest
    : public ::testing::TestWithParam<
          std::tuple<Policy, bool, int, int>>
{
};

TEST_P(ServiceRecordTest, SameSeedSameServiceRun)
{
    const auto [policy, use_hix, devices, sessions] = GetParam();
    const ServiceConfig cfg =
        makeServiceConfig(policy, use_hix, devices, sessions);
    const Fingerprint first = fingerprint(cfg);
    const Fingerprint second = fingerprint(cfg);

    ASSERT_EQ(first.placement.size(),
              static_cast<std::size_t>(sessions));
    ASSERT_NE(first.digest, 0u);
    EXPECT_TRUE(first == second);

    // Placement sanity: every session landed on a pool device and
    // every finish is at or after the session's admission.
    for (std::size_t i = 0; i < first.placement.size(); ++i) {
        const auto &[user, app, arrival, admit, device] =
            first.placement[i];
        EXPECT_GE(device, 0);
        EXPECT_LT(device, devices);
        EXPECT_GE(admit, arrival);
        EXPECT_GE(first.finish[i], admit);
        EXPECT_GT(first.ops[i], 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ServiceWall, ServiceRecordTest,
    ::testing::Combine(
        ::testing::Values(Policy::RoundRobin, Policy::LeastLoaded,
                          Policy::Affinity),
        ::testing::Bool(), ::testing::Values(1, 2, 4),
        ::testing::Values(1, 8, 32)),
    [](const auto &info) {
        return std::string(policyName(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_hix" : "_gdev") + "_d" +
               std::to_string(std::get<2>(info.param)) + "_s" +
               std::to_string(std::get<3>(info.param));
    });

/** Mixed app mix: sessions on one device fork different templates
 * (per-(device, appId) snapshots); the run must stay deterministic
 * and every session must finish. */
TEST(ServiceMixedAppTest, MixedAppPoolIsDeterministic)
{
    ServiceConfig cfg = makeServiceConfig(Policy::LeastLoaded, true,
                                          2, 8);
    cfg.appMix = {"NN", "BFS"};
    const Fingerprint first = fingerprint(cfg);
    const Fingerprint second = fingerprint(cfg);
    ASSERT_NE(first.digest, 0u);
    EXPECT_TRUE(first == second);
    // The seeded mix draws both apps: op counts differ per session.
    const bool mixed =
        std::adjacent_find(first.ops.begin(), first.ops.end(),
                           std::not_equal_to<>()) != first.ops.end();
    EXPECT_TRUE(mixed);
}

class ServiceCollapseTest
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

/** Closed batch on one device == runWorkload(), bit for bit. */
TEST_P(ServiceCollapseTest, OneDeviceClosedBatchMatchesRunWorkload)
{
    const auto [use_hix, users] = GetParam();

    ServiceConfig cfg;
    cfg.devices = 1;
    cfg.policy = Policy::RoundRobin;
    cfg.useHix = use_hix;
    cfg.sessions = users;
    cfg.meanInterarrivalTicks = 0;  // closed batch: no admit ops
    cfg.appMix = {"NN"};
    cfg.run.keepTrace = true;
    auto service = runService(cfg);
    ASSERT_TRUE(service.isOk()) << service.status().message();

    workloads::RunConfig direct = cfg.run;
    direct.factory = [] { return workloads::makeRodinia("NN"); };
    direct.users = users;
    direct.useHix = use_hix;
    auto reference = workloads::runWorkload(direct);
    ASSERT_TRUE(reference.isOk()) << reference.status().message();

    EXPECT_EQ(sim::traceDigest(*service->pool.run.trace),
              sim::traceDigest(*reference->trace));
    EXPECT_EQ(service->pool.run.ticks, reference->ticks);
    EXPECT_EQ(service->pool.run.gpuCtxSwitches,
              reference->gpuCtxSwitches);
}

INSTANTIATE_TEST_SUITE_P(
    ServiceWall, ServiceCollapseTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 2, 8)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "hix" : "gdev") +
               "_u" + std::to_string(std::get<1>(info.param));
    });

TEST(SessionPoolEdgeTest, EmptySessionSetIsRejected)
{
    workloads::RunConfig config;
    config.factory = [] { return workloads::makeRodinia("NN"); };
    auto out = workloads::runSessionPool(config, {});
    EXPECT_FALSE(out.isOk());
}

TEST(SessionPoolEdgeTest, SessionOnMissingDeviceIsRejected)
{
    workloads::RunConfig config;
    config.factory = [] { return workloads::makeRodinia("NN"); };
    config.machine.gpuCount = 2;
    workloads::PoolSession bad;
    bad.device = 2;
    auto out = workloads::runSessionPool(config, {bad});
    EXPECT_FALSE(out.isOk());
}

}  // namespace
}  // namespace hix::svc
