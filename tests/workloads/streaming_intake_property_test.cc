/**
 * @file
 * Property tests for the sim::StreamingScheduler front-end: randomized
 * synthetic shards — disjoint and resource-sharing, GPU-context
 * remapped, spilled dep lists, occasionally empty — fed through a
 * reorder buffer in randomized completion orders must produce results
 * bit-identical to appending everything and scheduling the merged
 * trace, at every worker-thread count, including the packed-field
 * fallback path. This is the sim-layer half of the streaming wall;
 * tests/workloads/streaming_record_schedule_test.cc covers the
 * runner-layer half on real recorded workloads.
 */

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace hix::sim
{
namespace
{

struct SynthShard
{
    Trace trace;
    Trace::AppendRemap remap;
};

/**
 * A random shard for user @p user: a private CPU resource always, a
 * second private resource sometimes, and — with probability
 * @p share_pct — ops on the globally shared DMA/compute resources that
 * entangle this shard with every other one (the Fermi regime). Ops on
 * the compute engine carry a shard-local GPU context id remapped to
 * the canonical 1 + user at merge, mirroring the multi-user runner.
 */
SynthShard
randomShard(Rng &rng, int user, std::size_t n_ops, unsigned share_pct)
{
    const GpuContextId local_ctx = 0x10000 + GpuContextId(user);
    const ResourceId priv_cpu{ResUnit::UserCpu,
                              static_cast<std::uint16_t>(user)};
    const ResourceId priv_alt{ResUnit::UserCpu,
                              static_cast<std::uint16_t>(100 + user)};
    const ResourceId shared_dma{ResUnit::DmaHtoD, 0};
    const ResourceId shared_gpu{ResUnit::GpuCompute, 0};

    SynthShard shard;
    shard.remap.gpuCtx = {{local_ctx, 1 + GpuContextId(user)}};
    for (std::size_t i = 0; i < n_ops; ++i) {
        ResourceId res = priv_cpu;
        GpuContextId ctx = NoGpuContext;
        const std::uint64_t roll = rng.nextBelow(100);
        if (roll < share_pct) {
            res = rng.nextBelow(2) == 0 ? shared_dma : shared_gpu;
            if (res.unit == ResUnit::GpuCompute)
                ctx = local_ctx;
        } else if (roll < share_pct + 20) {
            res = priv_alt;
        }
        std::vector<OpId> deps;
        if (i > 0) {
            // Up to 4 deps: beyond Op::InlineDeps (2) spills.
            const std::size_t want = rng.nextBelow(5);
            for (std::size_t d = 0; d < want; ++d)
                deps.push_back(static_cast<OpId>(rng.nextBelow(i)));
        }
        shard.trace.add(res, rng.nextBelow(500), deps,
                        static_cast<OpKind>(rng.nextBelow(OpKindCount)),
                        rng.nextBelow(1 << 16), "", ctx);
    }
    return shard;
}

void
expectScheduleEqual(const ScheduleResult &got,
                    const ScheduleResult &want)
{
    EXPECT_EQ(got.makespan, want.makespan);
    EXPECT_EQ(got.gpuCtxSwitches, want.gpuCtxSwitches);
    ASSERT_EQ(got.start, want.start);
    ASSERT_EQ(got.finish, want.finish);
    ASSERT_EQ(got.usage.size(), want.usage.size());
    for (const auto &[res, use] : want.usage) {
        const auto it = got.usage.find(res);
        ASSERT_NE(it, got.usage.end()) << res.toString();
        EXPECT_EQ(it->second.busy, use.busy) << res.toString();
        EXPECT_EQ(it->second.lastFree, use.lastFree) << res.toString();
        EXPECT_EQ(it->second.ops, use.ops) << res.toString();
    }
    EXPECT_EQ(got.kindBusy, want.kindBusy);
}

/**
 * Feed shards to a StreamingScheduler in the given completion order
 * through a reorder buffer that restores merge (index) order — the
 * runner's consumer loop, distilled. Returns the finished result.
 */
ScheduleResult
feedInOrder(const std::vector<SynthShard> &shards,
            const std::vector<std::size_t> &arrival,
            const SchedulerConfig &config, unsigned threads,
            std::uint64_t *merged_digest = nullptr)
{
    StreamingScheduler streamer(config, threads);
    std::map<std::size_t, const SynthShard *> reorder;
    std::size_t next = 0;
    for (std::size_t idx : arrival) {
        reorder.emplace(idx, &shards[idx]);
        while (!reorder.empty() && reorder.begin()->first == next) {
            const SynthShard *s = reorder.begin()->second;
            streamer.addShard(s->trace, s->remap);
            reorder.erase(reorder.begin());
            ++next;
        }
    }
    EXPECT_EQ(next, shards.size());
    ScheduleResult res = streamer.finish();
    if (merged_digest)
        *merged_digest = traceDigest(streamer.merged());
    return res;
}

std::vector<std::size_t>
shuffledOrder(Rng &rng, std::size_t n)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    for (std::size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.nextBelow(i)]);
    return order;
}

TEST(StreamingIntakeProperty, ArrivalOrderNeverChangesTheResult)
{
    Rng rng(0x57bea301);
    for (int iter = 0; iter < 40; ++iter) {
        const std::size_t n_shards = 1 + rng.nextBelow(6);
        // Sweep the sharing regime: 0 keeps every shard a private
        // component (intake results survive the join); higher values
        // entangle shards through the global DMA/compute resources so
        // the join reschedules cross-shard groups.
        const unsigned share_pct =
            static_cast<unsigned>(rng.nextBelow(4)) * 15;
        std::vector<SynthShard> shards;
        for (std::size_t u = 0; u < n_shards; ++u) {
            // Occasionally empty: a user whose workload recorded
            // nothing must not perturb ids or stats of later shards.
            const std::size_t n_ops =
                rng.nextBelow(10) == 0 ? 0 : 1 + rng.nextBelow(80);
            shards.push_back(randomShard(rng, static_cast<int>(u),
                                         n_ops, share_pct));
        }

        SchedulerConfig config;
        config.gpuCtxSwitchTicks = rng.nextBelow(2) == 0 ? 0 : 37;
        Trace merged;
        for (const SynthShard &s : shards)
            merged.append(s.trace, s.remap);
        const ScheduleResult want = schedule(merged, config);
        const std::uint64_t want_digest = traceDigest(merged);

        for (unsigned threads : {1u, 2u, 4u}) {
            // In-order arrival plus two random completion orders.
            std::vector<std::size_t> in_order(n_shards);
            std::iota(in_order.begin(), in_order.end(),
                      std::size_t(0));
            for (int perm = 0; perm < 3; ++perm) {
                const auto arrival =
                    perm == 0 ? in_order
                              : shuffledOrder(rng, n_shards);
                std::uint64_t digest = 0;
                const ScheduleResult got = feedInOrder(
                    shards, arrival, config, threads, &digest);
                EXPECT_EQ(digest, want_digest)
                    << "iter " << iter << " threads " << threads;
                expectScheduleEqual(got, want);
            }
        }
    }
}

TEST(StreamingIntakeProperty, PackedFieldFallbackStaysBitIdentical)
{
    // An op whose duration exceeds the lean core's packed 32-bit field
    // flips the whole streaming run onto the schedule() fallback; the
    // result must not change. The oversized shard arrives *after*
    // earlier shards were already eagerly scheduled, so the fallback
    // must also discard those intake results.
    Rng rng(0x57bea302);
    std::vector<SynthShard> shards;
    for (int u = 0; u < 3; ++u)
        shards.push_back(randomShard(rng, u, 40, 30));
    SynthShard big;
    big.trace.add(ResourceId{ResUnit::UserCpu, 3}, Tick(0x1'0000'0001),
                  {}, OpKind::Compute, 0, "oversized");
    shards.push_back(std::move(big));
    shards.push_back(randomShard(rng, 4, 40, 30));

    SchedulerConfig config;
    config.gpuCtxSwitchTicks = 37;
    Trace merged;
    for (const SynthShard &s : shards)
        merged.append(s.trace, s.remap);
    const ScheduleResult want = schedule(merged, config);

    std::vector<std::size_t> in_order(shards.size());
    std::iota(in_order.begin(), in_order.end(), std::size_t(0));
    for (unsigned threads : {1u, 4u})
        expectScheduleEqual(
            feedInOrder(shards, in_order, config, threads), want);
}

TEST(StreamingIntakeProperty, FinishWithoutShardsMatchesEmptyTrace)
{
    StreamingScheduler streamer;
    const ScheduleResult got = streamer.finish();
    const ScheduleResult want = schedule(Trace{});
    expectScheduleEqual(got, want);
    EXPECT_EQ(streamer.stats().shards, 0u);
    EXPECT_EQ(streamer.merged().size(), 0u);
}

TEST(StreamingIntakeProperty, StatsPartitionOpsBetweenReuseAndJoin)
{
    Rng rng(0x57bea303);
    for (int iter = 0; iter < 10; ++iter) {
        const unsigned share_pct =
            static_cast<unsigned>(rng.nextBelow(3)) * 25;
        std::vector<SynthShard> shards;
        std::size_t total = 0;
        for (int u = 0; u < 4; ++u) {
            shards.push_back(randomShard(rng, u, 30, share_pct));
            total += shards.back().trace.size();
        }
        StreamingScheduler streamer;
        for (const SynthShard &s : shards)
            streamer.addShard(s.trace, s.remap);
        streamer.finish();
        const StreamingStats &st = streamer.stats();
        EXPECT_EQ(st.shards, 4u);
        EXPECT_EQ(st.reusedOps + st.joinOps, total);
        EXPECT_GE(st.earlyComps, st.reusedComps);
        if (share_pct == 0) {
            // Fully disjoint shards: every intake result survives.
            EXPECT_EQ(st.joinOps, 0u);
            EXPECT_EQ(st.reusedOps, total);
        }
    }
}

}  // namespace
}  // namespace hix::sim
