/**
 * @file
 * The Fork determinism wall for the RunConfig::forkSessions session
 * fast path: a run whose user shards fork a copy-on-write template
 * snapshot must be *bit-identical* to a run that cold-boots a private
 * machine per user — same merged trace digest, same scheduled ticks,
 * same context switches — at every user count, for both runtimes,
 * streaming on or off. Also pins the copy-on-write isolation
 * properties the fast path rests on: writes in one fork are invisible
 * to its siblings and to the snapshot, the snapshot outlives the
 * machine it was taken of, and a forked machine owns zero private
 * pages until it writes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "os/machine.h"
#include "sim/trace.h"
#include "workloads/runner.h"

namespace hix::workloads
{
namespace
{

RunConfig
makeConfig(bool use_hix, int users, bool streaming, bool fork_sessions)
{
    RunConfig config;
    config.factory = [] { return makeRodinia("NN"); };
    config.users = users;
    config.useHix = use_hix;
    config.streaming = streaming;
    config.forkSessions = fork_sessions;
    // Force one recording thread per user (the auto pool sizes to the
    // host and may collapse to one worker on small CI machines): the
    // wall must exercise — and TSan must observe — concurrent forks
    // off the shared template snapshot regardless of where it runs.
    if (users > 1) {
        config.parallelRecording = true;
        config.recordThreads = users;
    }
    config.keepTrace = true;
    return config;
}

struct Recording
{
    std::uint64_t digest = 0;
    Tick ticks = 0;
    std::uint64_t ctxSwitches = 0;
    std::size_t ops = 0;
    double bootMs = 0;
    std::uint64_t residentPages = 0;
};

Recording
record(bool use_hix, int users, bool streaming, bool fork_sessions)
{
    auto outcome = runWorkload(
        makeConfig(use_hix, users, streaming, fork_sessions));
    EXPECT_TRUE(outcome.isOk()) << outcome.status().message();
    Recording r;
    r.digest = sim::traceDigest(*outcome->trace);
    r.ticks = outcome->ticks;
    r.ctxSwitches = outcome->gpuCtxSwitches;
    r.ops = outcome->trace->size();
    r.bootMs = outcome->hostBootMs;
    r.residentPages = outcome->residentPages;
    return r;
}

class ForkRecordTest
    : public ::testing::TestWithParam<std::tuple<bool, int, bool>>
{
};

TEST_P(ForkRecordTest, ForkedSessionsAreBitIdenticalToColdBoot)
{
    const auto [use_hix, users, streaming] = GetParam();
    const Recording cold = record(use_hix, users, streaming, false);
    const Recording forked = record(use_hix, users, streaming, true);

    ASSERT_GT(cold.ops, 0u);
    EXPECT_EQ(forked.ops, cold.ops);
    EXPECT_EQ(forked.digest, cold.digest);
    EXPECT_EQ(forked.ticks, cold.ticks);
    EXPECT_EQ(forked.ctxSwitches, cold.ctxSwitches);

    // Session startup accounting: both paths spend measurable host
    // time before the windows open, and a forked session owns no
    // private pages at window-open (everything is shared with the
    // template snapshot) while a cold HIX session has already paid
    // the enclave's boot-time writes.
    EXPECT_GT(cold.bootMs, 0.0);
    EXPECT_GT(forked.bootMs, 0.0);
    EXPECT_EQ(forked.residentPages, 0u);
    EXPECT_LE(forked.residentPages, cold.residentPages);
    if (use_hix) {
        EXPECT_GE(cold.residentPages,
                  static_cast<std::uint64_t>(users));
    }
}

INSTANTIATE_TEST_SUITE_P(
    ForkWall, ForkRecordTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "hix" : "gdev") +
               "_u" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "_streaming" : "_twophase");
    });

TEST(ForkCowIsolationTest, ForkWritesAreInvisibleToSiblingsAndSource)
{
    os::Machine source;
    const Bytes original = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(source.ram()
                    .writeAt(0x1000, original.data(), original.size())
                    .isOk());
    const os::MachineSnapshot snap = source.snapshot();

    auto fork_a = os::Machine::fork(snap);
    auto fork_b = os::Machine::fork(snap);
    const Bytes scribble = {0x11, 0x22, 0x33, 0x44};
    ASSERT_TRUE(fork_a->ram()
                    .writeAt(0x1000, scribble.data(), scribble.size())
                    .isOk());

    Bytes got(original.size());
    ASSERT_TRUE(
        fork_b->ram().readAt(0x1000, got.data(), got.size()).isOk());
    EXPECT_EQ(got, original);
    ASSERT_TRUE(
        source.ram().readAt(0x1000, got.data(), got.size()).isOk());
    EXPECT_EQ(got, original);
    ASSERT_TRUE(
        fork_a->ram().readAt(0x1000, got.data(), got.size()).isOk());
    EXPECT_EQ(got, scribble);
}

TEST(ForkCowIsolationTest, SnapshotOutlivesItsSourceMachine)
{
    const Bytes original = {0x42, 0x24, 0x99, 0x77};
    std::optional<os::MachineSnapshot> snap;
    {
        os::Machine source;
        ASSERT_TRUE(
            source.ram()
                .writeAt(0x2000, original.data(), original.size())
                .isOk());
        snap = source.snapshot();
    }  // source destroyed; the snapshot keeps the pages alive

    auto fork = os::Machine::fork(*snap);
    Bytes got(original.size());
    ASSERT_TRUE(
        fork->ram().readAt(0x2000, got.data(), got.size()).isOk());
    EXPECT_EQ(got, original);
}

TEST(ForkCowIsolationTest, ForkOwnsPagesOnlyOnceItWrites)
{
    os::Machine source;
    const Bytes data(4096, 0xa5);
    ASSERT_TRUE(
        source.ram().writeAt(0x3000, data.data(), data.size()).isOk());
    const os::MachineSnapshot snap = source.snapshot();

    auto fork = os::Machine::fork(snap);
    EXPECT_EQ(fork->residentPages(), 0u);

    const Bytes one = {0x01};
    ASSERT_TRUE(
        fork->ram().writeAt(0x3000, one.data(), one.size()).isOk());
    EXPECT_GE(fork->residentPages(), 1u);
    // The write cloned the page first: the source still reads its own
    // bytes.
    Bytes got(2);
    ASSERT_TRUE(
        source.ram().readAt(0x3000, got.data(), got.size()).isOk());
    EXPECT_EQ(got[0], 0xa5);
}

TEST(ForkCowIsolationTest, RestoreSnapshotRewindsAReusedMachine)
{
    os::Machine source;
    const Bytes original = {0x10, 0x20, 0x30};
    ASSERT_TRUE(
        source.ram()
            .writeAt(0x4000, original.data(), original.size())
            .isOk());
    const os::MachineSnapshot snap = source.snapshot();

    auto fork = os::Machine::fork(snap);
    const Bytes scribble = {0xff, 0xee, 0xdd};
    ASSERT_TRUE(fork->ram()
                    .writeAt(0x4000, scribble.data(), scribble.size())
                    .isOk());
    fork->restoreSnapshot(snap);
    EXPECT_EQ(fork->residentPages(), 0u);
    Bytes got(original.size());
    ASSERT_TRUE(
        fork->ram().readAt(0x4000, got.data(), got.size()).isOk());
    EXPECT_EQ(got, original);
}

}  // namespace
}  // namespace hix::workloads
