/**
 * @file
 * Unit tests for the privileged-attacker primitives (paper Section
 * 3.1): each one is exercised directly against a machine, independent
 * of any runtime, so the conformance matrix builds on verified tools.
 */

#include <gtest/gtest.h>

#include "mem/mmu.h"
#include "os/attacker.h"
#include "os/machine.h"
#include "pcie/config_space.h"
#include "pcie/tlp.h"

namespace hix::os
{
namespace
{

class AttackerTest : public ::testing::Test
{
  protected:
    Machine machine_;
    Attacker attacker_{&machine_};
};

TEST_F(AttackerTest, ReadDramSeesWrittenBytes)
{
    const Addr paddr = 0x40000;
    Bytes data = {0x10, 0x20, 0x30, 0x40, 0x50};
    ASSERT_TRUE(
        machine_.ram().writeAt(paddr, data.data(), data.size()).isOk());
    auto seen = attacker_.readDram(paddr, data.size());
    ASSERT_TRUE(seen.isOk());
    EXPECT_EQ(*seen, data);
}

TEST_F(AttackerTest, TamperDramFlipsExactlyOneByte)
{
    const Addr paddr = 0x41000;
    Bytes data(8, 0x11);
    ASSERT_TRUE(
        machine_.ram().writeAt(paddr, data.data(), data.size()).isOk());
    ASSERT_TRUE(attacker_.tamperDram(paddr + 3, 0x0f).isOk());
    auto seen = attacker_.readDram(paddr, data.size());
    ASSERT_TRUE(seen.isOk());
    for (std::size_t i = 0; i < seen->size(); ++i)
        EXPECT_EQ((*seen)[i], i == 3 ? 0x11 ^ 0x0f : 0x11) << i;
    // XOR-ing again restores the original.
    ASSERT_TRUE(attacker_.tamperDram(paddr + 3, 0x0f).isOk());
    seen = attacker_.readDram(paddr, data.size());
    ASSERT_TRUE(seen.isOk());
    EXPECT_EQ(*seen, data);
}

TEST_F(AttackerTest, ReadDramOutOfRangeRejected)
{
    const std::uint64_t ram_size = machine_.config().ramSize;
    EXPECT_FALSE(attacker_.readDram(ram_size, 16).isOk());
    // Regression: an offset near 2^64 used to wrap `offset + len`
    // past the bounds check and read through the sparse store.
    EXPECT_FALSE(attacker_.readDram(~std::uint64_t(0) - 4, 16).isOk());
    EXPECT_FALSE(attacker_.tamperDram(~std::uint64_t(0), 0xff).isOk());
}

TEST_F(AttackerTest, RemapPteRedirectsVictimTranslation)
{
    auto frame_a = machine_.os().allocFrames(mem::PageSize);
    auto frame_b = machine_.os().allocFrames(mem::PageSize);
    ASSERT_TRUE(frame_a.isOk());
    ASSERT_TRUE(frame_b.isOk());
    Bytes a(16, 0xaa), b(16, 0xbb);
    ASSERT_TRUE(
        machine_.ram().writeAt(*frame_a, a.data(), a.size()).isOk());
    ASSERT_TRUE(
        machine_.ram().writeAt(*frame_b, b.data(), b.size()).isOk());

    const ProcessId pid = machine_.os().createProcess("victim");
    auto va = machine_.os().mapPhysical(
        pid, *frame_a, mem::PageSize, mem::PermRead | mem::PermWrite);
    ASSERT_TRUE(va.isOk());

    mem::ExecContext ctx{pid, InvalidEnclaveId};
    Bytes seen(16);
    ASSERT_TRUE(
        machine_.mmu().read(ctx, *va, seen.data(), seen.size()).isOk());
    EXPECT_EQ(seen, a);

    // The attack: rewrite the PTE; the victim's next access now lands
    // in the attacker-chosen frame.
    ASSERT_TRUE(attacker_.remapPte(pid, *va, *frame_b).isOk());
    ASSERT_TRUE(
        machine_.mmu().read(ctx, *va, seen.data(), seen.size()).isOk());
    EXPECT_EQ(seen, b);
}

TEST_F(AttackerTest, RemapPteUnknownProcessRejected)
{
    EXPECT_EQ(attacker_.remapPte(9999, 0x1000, 0x2000).code(),
              StatusCode::NotFound);
}

TEST_F(AttackerTest, MapAndReadHandlesUnalignedPaddr)
{
    const Addr paddr = 0x42003;  // deliberately not page-aligned
    Bytes data = {9, 8, 7, 6, 5, 4, 3, 2, 1};
    ASSERT_TRUE(
        machine_.ram().writeAt(paddr, data.data(), data.size()).isOk());
    const ProcessId evil = machine_.os().createProcess("evil");
    auto seen = attacker_.mapAndRead(evil, paddr, data.size());
    ASSERT_TRUE(seen.isOk());
    EXPECT_EQ(*seen, data);
}

TEST_F(AttackerTest, MapAndWriteCorruptsPhysicalMemory)
{
    const Addr paddr = 0x43080;
    const ProcessId evil = machine_.os().createProcess("evil");
    Bytes payload = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(attacker_.mapAndWrite(evil, paddr, payload).isOk());
    Bytes back(payload.size());
    ASSERT_TRUE(
        machine_.ram().readAt(paddr, back.data(), back.size()).isOk());
    EXPECT_EQ(back, payload);
}

TEST_F(AttackerTest, RedirectDmaRewritesIommuMapping)
{
    machine_.iommu().setEnabled(true);
    ASSERT_TRUE(machine_.iommu().map(0x10000, 0x20000).isOk());
    ASSERT_TRUE(attacker_.redirectDma(0x10000, 0x30000).isOk());
    auto pa = machine_.iommu().translate(0x10000);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x30000u);
}

TEST_F(AttackerTest, RewriteConfigSucceedsWithoutLockdown)
{
    // On a machine with no GPU enclave there is no PCIe lockdown, so
    // privileged config writes go through — the baseline posture.
    EXPECT_TRUE(attacker_
                    .rewriteConfig(machine_.gpu().bdf(),
                                   pcie::cfg::Bar0, 0xdead0000)
                    .isOk());
}

TEST_F(AttackerTest, KillProcessMarksItDead)
{
    const ProcessId pid = machine_.os().createProcess("victim");
    ASSERT_TRUE(machine_.os().process(pid)->alive);
    ASSERT_TRUE(
        attacker_.killProcessAndEnclave(pid, InvalidEnclaveId).isOk());
    EXPECT_FALSE(machine_.os().process(pid)->alive);
    EXPECT_EQ(attacker_.killProcessAndEnclave(9999, InvalidEnclaveId)
                  .code(),
              StatusCode::NotFound);
}

TEST_F(AttackerTest, FlashGpuBiosReplacesRomContent)
{
    const Addr rom_base = machine_.gpu().config().expansionRomBase();
    const std::uint64_t rom_size =
        machine_.gpu().config().expansionRomSize();
    ASSERT_GT(rom_size, 0u);

    Bytes before;
    ASSERT_TRUE(machine_.rootComplex()
                    .routeTlp(pcie::Tlp::memRead(rom_base, 4), &before)
                    .isOk());
    EXPECT_EQ(before[0], 0x55);  // option-ROM signature
    EXPECT_EQ(before[1], 0xaa);

    attacker_.flashGpuBios(Bytes(rom_size, 0xeb));
    Bytes after;
    ASSERT_TRUE(machine_.rootComplex()
                    .routeTlp(pcie::Tlp::memRead(rom_base, 4), &after)
                    .isOk());
    EXPECT_EQ(after, Bytes(4, 0xeb));
}

}  // namespace
}  // namespace hix::os
