/**
 * @file
 * Full-machine tests: assembly invariants, cold boot, the multi-GPU
 * configuration (one GPU enclave per device, independent lockdown),
 * and the Section 5.6 sizing-probe exception knob.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/byte_utils.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/attacker.h"
#include "os/machine.h"

namespace hix::os
{
namespace
{

TEST(MachineTest, DefaultAssembly)
{
    Machine machine;
    EXPECT_EQ(machine.gpuCount(), 1);
    EXPECT_TRUE(
        machine.rootComplex().isRealDevice(machine.gpu().bdf()));
    // The MMIO window is claimed on the bus.
    EXPECT_EQ(machine.bus().targetAt(machine.config().mmioBase),
              &machine.rootComplex());
    // The GPU BAR lives inside the window.
    EXPECT_TRUE(AddrRange(machine.config().mmioBase,
                          machine.config().mmioSize)
                    .contains(machine.gpu().config().barBase(0)));
}

TEST(MachineTest, DumpStatsContainsCounters)
{
    Machine machine;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    std::ostringstream oss;
    machine.dumpStats(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("gpu0.commands"), std::string::npos);
    EXPECT_NE(out.find("pcie.mem_writes"), std::string::npos);
    EXPECT_NE(out.find("tlb.hits"), std::string::npos);
}

TEST(MachineTest, ColdBootResetsGpuAndSgx)
{
    Machine machine;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    machine.coldBoot();
    EXPECT_FALSE(machine.rootComplex().isLocked(machine.gpu().bdf()));
    EXPECT_EQ(machine.vram().freeBytes(), machine.vram().totalBytes());
}

TEST(MultiGpuTest, TwoGpusEnumerateDisjoint)
{
    MachineConfig config;
    config.gpuCount = 2;
    Machine machine(config);
    ASSERT_EQ(machine.gpuCount(), 2);
    AddrRange a(machine.gpuAt(0).config().barBase(0),
                machine.gpuAt(0).config().barSize(0));
    AddrRange b(machine.gpuAt(1).config().barBase(0),
                machine.gpuAt(1).config().barSize(0));
    EXPECT_FALSE(a.overlaps(b));
    EXPECT_NE(machine.gpuAt(0).bdf().bus, machine.gpuAt(1).bdf().bus);
}

TEST(MultiGpuTest, OneEnclavePerGpu)
{
    MachineConfig config;
    config.gpuCount = 2;
    Machine machine(config);

    auto ge0 = core::GpuEnclave::create(
        &machine, machine.gpuAt(0).factoryBiosDigest(),
        core::HixConfig{}, 0);
    ASSERT_TRUE(ge0.isOk()) << ge0.status().toString();
    auto ge1 = core::GpuEnclave::create(
        &machine, machine.gpuAt(1).factoryBiosDigest(),
        core::HixConfig{}, 1);
    ASSERT_TRUE(ge1.isOk()) << ge1.status().toString();

    EXPECT_TRUE(machine.rootComplex().isLocked(machine.gpuAt(0).bdf()));
    EXPECT_TRUE(machine.rootComplex().isLocked(machine.gpuAt(1).bdf()));

    // End-to-end sessions against both GPUs.
    machine.gpuAt(0).kernels().add(
        "inc0",
        [](const gpu::GpuMemAccessor &mem,
           const gpu::KernelArgs &args) -> Status {
            auto v = mem.read32(args[0]);
            if (!v.isOk())
                return v.status();
            return mem.write32(args[0], *v + 1);
        },
        [](const gpu::KernelArgs &) { return Tick(100); });
    machine.gpuAt(1).kernels().add(
        "inc1",
        [](const gpu::GpuMemAccessor &mem,
           const gpu::KernelArgs &args) -> Status {
            auto v = mem.read32(args[0]);
            if (!v.isOk())
                return v.status();
            return mem.write32(args[0], *v + 2);
        },
        [](const gpu::KernelArgs &) { return Tick(100); });

    core::TrustedRuntime user0(&machine, ge0->get(), "u0", 0);
    core::TrustedRuntime user1(&machine, ge1->get(), "u1", 1);
    ASSERT_TRUE(user0.connect().isOk());
    ASSERT_TRUE(user1.connect().isOk());

    for (auto [user, kernel, delta] :
         {std::tuple{&user0, "inc0", 1u}, {&user1, "inc1", 2u}}) {
        auto va = user->memAlloc(4096);
        ASSERT_TRUE(va.isOk());
        Bytes init(4, 0);
        storeLE32(init.data(), 40);
        ASSERT_TRUE(user->memcpyHtoD(*va, init).isOk());
        auto kid = user->loadModule(kernel);
        ASSERT_TRUE(kid.isOk());
        ASSERT_TRUE(user->launchKernel(*kid, {*va}).isOk());
        auto out = user->memcpyDtoH(*va, 4);
        ASSERT_TRUE(out.isOk());
        EXPECT_EQ(loadLE32(out->data()), 40u + delta);
    }
}

TEST(MultiGpuTest, SameGpuCannotBeDoubleBound)
{
    MachineConfig config;
    config.gpuCount = 2;
    Machine machine(config);
    auto ge0 = core::GpuEnclave::create(
        &machine, machine.gpuAt(0).factoryBiosDigest(),
        core::HixConfig{}, 0);
    ASSERT_TRUE(ge0.isOk());
    auto again = core::GpuEnclave::create(
        &machine, machine.gpuAt(0).factoryBiosDigest(),
        core::HixConfig{}, 0);
    EXPECT_FALSE(again.isOk());
    // The second GPU stays unlocked and free.
    EXPECT_FALSE(machine.rootComplex().isLocked(machine.gpuAt(1).bdf()));
}

TEST(MultiGpuTest, KillingOneEnclaveLeavesOtherGpuUsable)
{
    MachineConfig config;
    config.gpuCount = 2;
    Machine machine(config);
    auto ge0 = core::GpuEnclave::create(
        &machine, machine.gpuAt(0).factoryBiosDigest(),
        core::HixConfig{}, 0);
    auto ge1 = core::GpuEnclave::create(
        &machine, machine.gpuAt(1).factoryBiosDigest(),
        core::HixConfig{}, 1);
    ASSERT_TRUE(ge0.isOk());
    ASSERT_TRUE(ge1.isOk());

    Attacker attacker(&machine);
    ASSERT_TRUE(attacker
                    .killProcessAndEnclave((*ge0)->pid(),
                                           (*ge0)->enclaveId())
                    .isOk());

    // GPU 0 locked out; GPU 1's enclave still works.
    core::TrustedRuntime user(&machine, ge1->get(), "u", 0);
    EXPECT_TRUE(user.connect().isOk());
}

TEST(SizingExceptionTest, ProbeAllowedAddressRewriteStillBlocked)
{
    Machine machine;
    machine.rootComplex().setSizingProbeException(true);
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());

    auto &rc = machine.rootComplex();
    const pcie::Bdf bdf = machine.gpu().bdf();
    const Addr original = machine.gpu().config().barBase(0);

    // Sizing sequence: all-ones write, size readback, restore.
    ASSERT_TRUE(rc.configWrite(bdf, pcie::cfg::Bar0, 0xffffffff).isOk());
    auto probe = rc.configRead(bdf, pcie::cfg::Bar0);
    ASSERT_TRUE(probe.isOk());
    EXPECT_EQ(*probe,
              ~std::uint32_t(machine.gpu().config().barSize(0) - 1));
    ASSERT_TRUE(rc.configWrite(bdf, pcie::cfg::Bar0,
                               static_cast<std::uint32_t>(original))
                    .isOk());
    EXPECT_EQ(machine.gpu().config().barBase(0), original);

    // A write that would actually move the aperture stays blocked.
    EXPECT_EQ(
        rc.configWrite(bdf, pcie::cfg::Bar0, 0xdead0000).code(),
        StatusCode::LockdownViolation);
}

TEST(SizingExceptionTest, DefaultOffRejectsProbe)
{
    Machine machine;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    EXPECT_EQ(machine.rootComplex()
                  .configWrite(machine.gpu().bdf(), pcie::cfg::Bar0,
                               0xffffffff)
                  .code(),
              StatusCode::LockdownViolation);
}

}  // namespace
}  // namespace hix::os
