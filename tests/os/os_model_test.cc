/**
 * @file
 * Tests for the OS model: process lifecycle, frame allocation honouring
 * reserved carve-outs (the EPC), anonymous/physical mappings, pinned
 * DMA buffers, and cross-process shared mappings.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "os/os_model.h"

namespace hix::os
{
namespace
{

TEST(OsModelTest, ProcessLifecycle)
{
    OsModel os(1 * GiB, {});
    ProcessId a = os.createProcess("a");
    ProcessId b = os.createProcess("b");
    EXPECT_NE(a, b);
    ASSERT_NE(os.process(a), nullptr);
    EXPECT_EQ(os.process(a)->name, "a");
    EXPECT_TRUE(os.process(a)->alive);
    ASSERT_TRUE(os.killProcess(a).isOk());
    EXPECT_FALSE(os.process(a)->alive);
    EXPECT_FALSE(os.killProcess(999).isOk());
}

TEST(OsModelTest, FrameAllocatorSkipsReservedRanges)
{
    const AddrRange epc(64 * MiB, 32 * MiB);
    OsModel os(256 * MiB, {epc});
    // Allocate until well past the EPC; no frame may fall inside it.
    for (int i = 0; i < 40; ++i) {
        auto pa = os.allocFrames(4 * MiB);
        ASSERT_TRUE(pa.isOk());
        AddrRange frame(*pa, 4 * MiB);
        EXPECT_FALSE(frame.overlaps(epc))
            << "frame " << frame.toString() << " inside EPC";
    }
}

TEST(OsModelTest, FrameExhaustion)
{
    OsModel os(16 * MiB, {});
    ASSERT_TRUE(os.allocFrames(12 * MiB).isOk());
    EXPECT_EQ(os.allocFrames(8 * MiB).status().code(),
              StatusCode::ResourceExhausted);
}

TEST(OsModelTest, AllocFramesOverflowRejected)
{
    // Regression: a size near 2^64 used to wrap during page round-up
    // (yielding 0) or wrap `base + size` past the capacity check.
    OsModel os(16 * MiB, {});
    EXPECT_EQ(os.allocFrames(~std::uint64_t(0)).status().code(),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(
        os.allocFrames(~std::uint64_t(0) - mem::PageSize).status().code(),
        StatusCode::ResourceExhausted);
    EXPECT_EQ(os.allocFrames(1ull << 60).status().code(),
              StatusCode::ResourceExhausted);
    // The failed attempts must not have advanced the frame cursor
    // past its initial position (low memory is always skipped).
    auto pa = os.allocFrames(8 * MiB);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 1 * MiB);
}

TEST(OsModelTest, MapAnonymousInstallsPtes)
{
    OsModel os(256 * MiB, {});
    ProcessId pid = os.createProcess("p");
    auto va = os.mapAnonymous(pid, 3 * mem::PageSize,
                              mem::PermRead | mem::PermWrite);
    ASSERT_TRUE(va.isOk());
    mem::PageTable *pt = os.pageTableOf(pid);
    ASSERT_NE(pt, nullptr);
    for (int i = 0; i < 3; ++i) {
        auto pte = pt->lookup(*va + i * mem::PageSize);
        ASSERT_TRUE(pte.isOk());
        EXPECT_NE(pte->paddr, 0u);
    }
    // Guard page after the mapping.
    EXPECT_FALSE(pt->lookup(*va + 3 * mem::PageSize).isOk());
}

TEST(OsModelTest, DistinctMappingsDistinctVa)
{
    OsModel os(256 * MiB, {});
    ProcessId pid = os.createProcess("p");
    auto a = os.mapAnonymous(pid, 64 * KiB, mem::PermRead);
    auto b = os.mapAnonymous(pid, 64 * KiB, mem::PermRead);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_FALSE(AddrRange(*a, 64 * KiB).overlaps(
        AddrRange(*b, 64 * KiB)));
}

TEST(OsModelTest, DmaBufferIsMappedAndPinned)
{
    OsModel os(256 * MiB, {});
    ProcessId pid = os.createProcess("p");
    auto buf = os.allocDmaBuffer(pid, 100000);
    ASSERT_TRUE(buf.isOk());
    EXPECT_EQ(buf->size % mem::PageSize, 0u);
    auto pte = os.pageTableOf(pid)->lookup(buf->vaddr);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, buf->paddr);
}

TEST(OsModelTest, MapSharedIntoSecondProcess)
{
    OsModel os(256 * MiB, {});
    ProcessId a = os.createProcess("a");
    ProcessId b = os.createProcess("b");
    auto buf = os.allocDmaBuffer(a, 64 * KiB);
    ASSERT_TRUE(buf.isOk());
    auto vb = os.mapShared(b, *buf, mem::PermRead);
    ASSERT_TRUE(vb.isOk());
    auto pte = os.pageTableOf(b)->lookup(*vb);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, buf->paddr);
}

TEST(OsModelTest, MapPhysicalRejectsUnaligned)
{
    OsModel os(256 * MiB, {});
    ProcessId pid = os.createProcess("p");
    EXPECT_FALSE(
        os.mapPhysical(pid, 0x1234, 4096, mem::PermRead).isOk());
}

TEST(OsModelTest, OperationsOnUnknownProcessFail)
{
    OsModel os(256 * MiB, {});
    EXPECT_FALSE(os.mapAnonymous(42, 4096, mem::PermRead).isOk());
    EXPECT_EQ(os.pageTableOf(42), nullptr);
}

}  // namespace
}  // namespace hix::os
