/**
 * @file
 * Placement-policy property suite for the GPU-pool service planner.
 * planService() is a pure queueing model, so the suite drives it
 * with randomized (seeded) arrival streams and synthetic per-app
 * demand estimates and checks the policy invariants directly:
 * round-robin is session_index mod devices; least-loaded never
 * dispatches to a device while a strictly lighter one exists;
 * affinity keeps a returning user on its prior device. Saturation
 * and drain of the bounded session table and the zero-device /
 * zero-session edges are pinned alongside.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "svc/service.h"

namespace hix::svc
{
namespace
{

/** Three synthetic apps with distinct demands, so least-loaded
 * decisions actually depend on what ran before. */
const std::vector<std::string> kApps = {"light", "mid", "heavy"};
const std::vector<Tick> kDemand = {2'000'000, 5'000'000, 9'000'000};

ServiceConfig
makeStream(Policy policy, int devices, int sessions,
           std::uint64_t seed)
{
    ServiceConfig cfg;
    cfg.devices = devices;
    cfg.policy = policy;
    cfg.seed = seed;
    cfg.sessions = sessions;
    cfg.meanInterarrivalTicks = 1'500'000;
    cfg.appMix = kApps;
    cfg.userPopulation = 6;
    return cfg;
}

TEST(PolicyPropertyTest, RoundRobinIsSessionIndexModuloDevices)
{
    for (int devices : {1, 2, 4, 5}) {
        for (std::uint64_t seed : {1u, 77u, 4242u}) {
            ServiceConfig cfg =
                makeStream(Policy::RoundRobin, devices, 64, seed);
            cfg.tableCap = 4;  // admission waits must not change it
            auto plan = planService(cfg, kDemand);
            ASSERT_TRUE(plan.isOk());
            for (int i = 0; i < cfg.sessions; ++i)
                EXPECT_EQ(plan->sessions[i].device, i % devices)
                    << "session " << i << " devices " << devices;
        }
    }
}

TEST(PolicyPropertyTest, LeastLoadedNeverPicksAStrictlyHeavierDevice)
{
    for (int devices : {2, 3, 4}) {
        for (std::uint64_t seed : {3u, 99u, 51515u}) {
            const ServiceConfig cfg =
                makeStream(Policy::LeastLoaded, devices, 96, seed);
            auto plan = planService(cfg, kDemand);
            ASSERT_TRUE(plan.isOk());

            // Replay the planner's backlog model and check each
            // decision: the chosen device's outstanding work at
            // admission is minimal, ties broken toward index 0.
            std::vector<Tick> freeAt(devices, 0);
            for (const SessionPlan &s : plan->sessions) {
                auto backlog = [&](int d) {
                    return freeAt[d] > s.admit ? freeAt[d] - s.admit
                                               : Tick(0);
                };
                for (int d = 0; d < devices; ++d) {
                    EXPECT_LE(backlog(s.device), backlog(d));
                    if (d < s.device)
                        EXPECT_LT(backlog(s.device), backlog(d))
                            << "tie must go to the lower index";
                }
                const Tick start =
                    std::max(s.admit, freeAt[s.device]);
                freeAt[s.device] = start + kDemand[s.appIndex];
            }
        }
    }
}

TEST(PolicyPropertyTest, AffinityKeepsReturningUsersOnTheirDevice)
{
    for (std::uint64_t seed : {7u, 1234u, 90210u}) {
        ServiceConfig cfg =
            makeStream(Policy::Affinity, 4, 96, seed);
        cfg.userPopulation = 5;  // users return often
        auto plan = planService(cfg, kDemand);
        ASSERT_TRUE(plan.isOk());

        std::map<int, int> homeOf;
        int returning = 0;
        for (const SessionPlan &s : plan->sessions) {
            auto [it, first] = homeOf.emplace(s.user, s.device);
            if (!first) {
                EXPECT_EQ(s.device, it->second)
                    << "user " << s.user << " moved devices";
                ++returning;
            }
        }
        EXPECT_GT(returning, 0);
    }
}

TEST(AdmissionTest, SaturatedUnitTableSerializesAdmissions)
{
    // Closed batch, one device, table of one: session i cannot be
    // admitted before session i-1's estimated completion, so admits
    // are exactly i * demand and everyone else queues.
    ServiceConfig cfg;
    cfg.devices = 1;
    cfg.policy = Policy::RoundRobin;
    cfg.sessions = 6;
    cfg.tableCap = 1;
    cfg.appMix = {"only"};
    const Tick demand = 3'000'000;
    auto plan = planService(cfg, {demand});
    ASSERT_TRUE(plan.isOk());
    for (int i = 0; i < cfg.sessions; ++i) {
        EXPECT_EQ(plan->sessions[i].arrival, 0u);
        EXPECT_EQ(plan->sessions[i].admit,
                  static_cast<Tick>(i) * demand);
    }
    EXPECT_EQ(plan->admitQueueDepthMax, cfg.sessions - 1);
}

TEST(AdmissionTest, LightLoadDrainsWithoutQueueing)
{
    // Demands far below the inter-arrival gap: nobody ever waits,
    // for a slot or for the device.
    ServiceConfig cfg = makeStream(Policy::LeastLoaded, 2, 64, 11);
    cfg.tableCap = 2;
    cfg.meanInterarrivalTicks = 1'000'000;
    auto plan = planService(cfg, {10, 20, 30});
    ASSERT_TRUE(plan.isOk());
    for (const SessionPlan &s : plan->sessions)
        EXPECT_EQ(s.admit, s.arrival);
    EXPECT_EQ(plan->admitQueueDepthMax, 0);
    for (int depth : plan->queueDepthMax)
        EXPECT_EQ(depth, 0);
}

TEST(AdmissionTest, ArrivalsAndAdmissionsAreMonotone)
{
    for (Policy policy : {Policy::RoundRobin, Policy::LeastLoaded,
                          Policy::Affinity}) {
        ServiceConfig cfg = makeStream(policy, 3, 80, 21);
        cfg.tableCap = 3;
        auto plan = planService(cfg, kDemand);
        ASSERT_TRUE(plan.isOk());
        for (int i = 1; i < cfg.sessions; ++i) {
            EXPECT_LT(plan->sessions[i - 1].arrival,
                      plan->sessions[i].arrival);
            EXPECT_LE(plan->sessions[i - 1].admit,
                      plan->sessions[i].admit);
        }
        int placed = 0;
        for (int count : plan->perDeviceSessions)
            placed += count;
        EXPECT_EQ(placed, cfg.sessions);
    }
}

TEST(EdgePinTest, ZeroSessionsYieldEmptyPlan)
{
    ServiceConfig cfg = makeStream(Policy::RoundRobin, 2, 0, 1);
    auto plan = planService(cfg, kDemand);
    ASSERT_TRUE(plan.isOk());
    EXPECT_TRUE(plan->sessions.empty());
    EXPECT_TRUE(plan->perDeviceSessions.empty());

    cfg.devices = 0;  // zero sessions need no devices
    EXPECT_TRUE(planService(cfg, kDemand).isOk());
}

TEST(EdgePinTest, ZeroDevicePoolIsRejected)
{
    ServiceConfig cfg = makeStream(Policy::RoundRobin, 0, 4, 1);
    EXPECT_FALSE(planService(cfg, kDemand).isOk());
    EXPECT_FALSE(runService(cfg).isOk());
}

TEST(EdgePinTest, MismatchedDemandVectorIsRejected)
{
    ServiceConfig cfg = makeStream(Policy::RoundRobin, 2, 4, 1);
    EXPECT_FALSE(planService(cfg, {1, 2}).isOk());
}

TEST(EdgePinTest, UnknownAppIsRejectedBeforeAnyRun)
{
    ServiceConfig cfg = makeStream(Policy::RoundRobin, 2, 4, 1);
    cfg.appMix = {"NN", "NOPE"};
    EXPECT_FALSE(runService(cfg).isOk());
}

TEST(UtilityTest, PercentilesUseNearestRank)
{
    std::vector<Tick> sample;
    for (Tick t = 1; t <= 100; ++t)
        sample.push_back(t * 10);
    EXPECT_EQ(percentileTick(sample, 50), 500u);
    EXPECT_EQ(percentileTick(sample, 95), 950u);
    EXPECT_EQ(percentileTick(sample, 99), 990u);
    EXPECT_EQ(percentileTick(sample, 100), 1000u);
    EXPECT_EQ(percentileTick({42}, 99), 42u);
    EXPECT_EQ(percentileTick({}, 50), 0u);
}

}  // namespace
}  // namespace hix::svc
