/**
 * @file
 * Tests for the SGX model: enclave lifecycle, measurement, EPCM
 * enforcement at TLB-fill time, and local attestation.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/phys_mem.h"
#include "sgx/sgx_unit.h"

namespace hix::sgx
{
namespace
{

constexpr Addr RamBase = 0;
constexpr std::uint64_t RamSize = 64 * MiB;
constexpr Addr EpcBase = 32 * MiB;
constexpr std::uint64_t EpcSize = 8 * MiB;

class SgxUnitTest : public ::testing::Test
{
  protected:
    SgxUnitTest()
        : ram_("ram", RamSize),
          mmu_(&bus_, 32),
          sgx_(AddrRange(EpcBase, EpcSize), &mmu_, /*seed=*/1)
    {
        EXPECT_TRUE(
            bus_.attach(AddrRange(RamBase, RamSize), &ram_).isOk());
        mmu_.setPageTableProvider([this](ProcessId pid) {
            return &tables_[pid];
        });
    }

    /** Create, populate (1 page), and init an enclave for @p pid. */
    EnclaveId
    makeEnclave(ProcessId pid, Addr elbase = 0x10000000)
    {
        auto id = sgx_.ecreate(pid, AddrRange(elbase, 1 * MiB));
        EXPECT_TRUE(id.isOk());
        Bytes code(mem::PageSize, 0x90);
        auto page = sgx_.eadd(*id, elbase, mem::PermRead | mem::PermWrite,
                              code);
        EXPECT_TRUE(page.isOk());
        EXPECT_TRUE(tables_[pid]
                        .map(elbase, *page,
                             mem::PermRead | mem::PermWrite)
                        .isOk());
        EXPECT_TRUE(sgx_.einit(*id).isOk());
        return *id;
    }

    mem::PhysicalBus bus_;
    mem::PhysMem ram_;
    mem::Mmu mmu_;
    SgxUnit sgx_;
    std::unordered_map<ProcessId, mem::PageTable> tables_;
};

TEST_F(SgxUnitTest, EcreateAssignsIds)
{
    auto a = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    auto b = sgx_.ecreate(2, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_NE(*a, *b);
    EXPECT_NE(*a, InvalidEnclaveId);
}

TEST_F(SgxUnitTest, EcreateRejectsUnalignedRange)
{
    EXPECT_FALSE(sgx_.ecreate(1, AddrRange(0x10000100, 1 * MiB)).isOk());
    EXPECT_FALSE(sgx_.ecreate(1, AddrRange(0x10000000, 12345)).isOk());
}

TEST_F(SgxUnitTest, EaddOutsideElrangeRejected)
{
    auto id = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(id.isOk());
    EXPECT_FALSE(
        sgx_.eadd(*id, 0x20000000, mem::PermRead, {}).isOk());
}

TEST_F(SgxUnitTest, EaddAfterEinitRejected)
{
    EnclaveId id = makeEnclave(1);
    EXPECT_EQ(sgx_.eadd(id, 0x10001000, mem::PermRead, {}).status().code(),
              StatusCode::FailedPrecondition);
}

TEST_F(SgxUnitTest, MeasurementDependsOnContent)
{
    auto a = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    auto b = sgx_.ecreate(2, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    ASSERT_TRUE(
        sgx_.eadd(*a, 0x10000000, mem::PermRead, {1, 2, 3}).isOk());
    ASSERT_TRUE(
        sgx_.eadd(*b, 0x10000000, mem::PermRead, {1, 2, 4}).isOk());
    EXPECT_NE(sgx_.secs(*a)->mrenclave, sgx_.secs(*b)->mrenclave);
}

TEST_F(SgxUnitTest, IdenticalEnclavesMeasureIdentically)
{
    auto a = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    auto b = sgx_.ecreate(2, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(sgx_.eadd(*a, 0x10000000, mem::PermRead, {5}).isOk());
    ASSERT_TRUE(sgx_.eadd(*b, 0x10000000, mem::PermRead, {5}).isOk());
    EXPECT_EQ(sgx_.secs(*a)->mrenclave, sgx_.secs(*b)->mrenclave);
}

TEST_F(SgxUnitTest, EenterChecks)
{
    auto id = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(id.isOk());
    // Before EINIT.
    EXPECT_EQ(sgx_.eenter(1, *id).status().code(),
              StatusCode::FailedPrecondition);
    ASSERT_TRUE(sgx_.einit(*id).isOk());
    // Wrong pid.
    EXPECT_EQ(sgx_.eenter(2, *id).status().code(),
              StatusCode::PermissionDenied);
    auto ctx = sgx_.eenter(1, *id);
    ASSERT_TRUE(ctx.isOk());
    EXPECT_EQ(ctx->enclave, *id);
}

TEST_F(SgxUnitTest, EnclaveCanAccessItsEpcPage)
{
    EnclaveId id = makeEnclave(1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    Bytes buf(16);
    EXPECT_TRUE(mmu_.read(*ctx, 0x10000000, buf.data(), 16).isOk());
    EXPECT_EQ(buf[0], 0x90);  // the EADD content landed in EPC DRAM
}

TEST_F(SgxUnitTest, NonEnclaveAccessToEpcDenied)
{
    EnclaveId id = makeEnclave(1);
    (void)id;
    // The OS (pid 1 outside the enclave) maps a VA straight at the
    // EPC page and tries to read it.
    const Secs *secs = sgx_.secs(id);
    ASSERT_NE(secs, nullptr);
    ASSERT_TRUE(tables_[1].map(0x30000000,
                               EpcBase + 2 * mem::PageSize,
                               mem::PermRead).isOk());
    mem::ExecContext os_ctx{1, InvalidEnclaveId};
    Bytes buf(8);
    EXPECT_EQ(mmu_.read(os_ctx, 0x30000000, buf.data(), 8).code(),
              StatusCode::AccessFault);
}

TEST_F(SgxUnitTest, OtherEnclaveAccessToEpcDenied)
{
    EnclaveId a = makeEnclave(1, 0x10000000);
    EnclaveId b = makeEnclave(2, 0x10000000);
    (void)a;
    // Process 2's OS-controlled table maps enclave B's VA onto
    // enclave A's EPC page (find it: first REG page of enclave A).
    // Attack: map B's fresh VA outside ELRANGE to A's EPC page.
    auto ctx_b = sgx_.eenter(2, b);
    ASSERT_TRUE(ctx_b.isOk());
    // Locate A's page by scanning the EPC for a page owned by A.
    Addr a_page = 0;
    for (Addr p = EpcBase; p < EpcBase + EpcSize; p += mem::PageSize) {
        const EpcmEntry *e = sgx_.epc().entryFor(p);
        if (e && e->owner == a && e->type == EpcPageType::Regular)
            a_page = p;
    }
    ASSERT_NE(a_page, 0u);
    ASSERT_TRUE(
        tables_[2].map(0x40000000, a_page, mem::PermRead).isOk());
    Bytes buf(8);
    EXPECT_EQ(mmu_.read(*ctx_b, 0x40000000, buf.data(), 8).code(),
              StatusCode::AccessFault);
}

TEST_F(SgxUnitTest, EpcPageAtWrongVaddrDenied)
{
    EnclaveId id = makeEnclave(1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    // The OS remaps a *different* ELRANGE VA onto the same EPC page.
    auto pte = tables_[1].lookup(0x10000000);
    ASSERT_TRUE(pte.isOk());
    ASSERT_TRUE(
        tables_[1].map(0x10002000, pte->paddr, mem::PermRead).isOk());
    Bytes buf(8);
    EXPECT_EQ(mmu_.read(*ctx, 0x10002000, buf.data(), 8).code(),
              StatusCode::AccessFault);
}

TEST_F(SgxUnitTest, ElrangeRedirectionToDramDenied)
{
    // MMIO address-translation attack analogue for regular memory:
    // the OS points an ELRANGE page at ordinary DRAM to intercept
    // enclave data. The walker must refuse the fill.
    EnclaveId id = makeEnclave(1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    tables_[1].overwrite(0x10000000, 0x100000, mem::PermRead);
    mmu_.tlb().flushAll();
    Bytes buf(8);
    EXPECT_EQ(mmu_.read(*ctx, 0x10000000, buf.data(), 8).code(),
              StatusCode::AccessFault);
}

TEST_F(SgxUnitTest, HiddenSecsPageInaccessible)
{
    EnclaveId id = makeEnclave(1);
    const Secs *secs = sgx_.secs(id);
    ASSERT_NE(secs, nullptr);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    ASSERT_TRUE(tables_[1]
                    .map(0x10004000, secs->secs_page, mem::PermRead)
                    .isOk());
    Bytes buf(8);
    EXPECT_EQ(mmu_.read(*ctx, 0x10004000, buf.data(), 8).code(),
              StatusCode::AccessFault);
}

TEST_F(SgxUnitTest, KilledEnclaveCannotRun)
{
    EnclaveId id = makeEnclave(1);
    ASSERT_TRUE(sgx_.killEnclave(id).isOk());
    EXPECT_EQ(sgx_.eenter(1, id).status().code(),
              StatusCode::Unavailable);
}

TEST_F(SgxUnitTest, DestroyFreesEpcPages)
{
    const std::size_t before = sgx_.epc().freePages();
    EnclaveId id = makeEnclave(1);
    EXPECT_LT(sgx_.epc().freePages(), before);
    ASSERT_TRUE(sgx_.destroyEnclave(id).isOk());
    EXPECT_EQ(sgx_.epc().freePages(), before);
}

TEST_F(SgxUnitTest, EpcExhaustionReported)
{
    AddrRange tiny(EpcBase, 2 * mem::PageSize);
    mem::Mmu mmu(&bus_, 8);
    SgxUnit small(tiny, &mmu, 3);
    auto id = small.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(id.isOk());  // SECS took one page
    ASSERT_TRUE(
        small.eadd(*id, 0x10000000, mem::PermRead, {}).isOk());
    auto fail = small.eadd(*id, 0x10001000, mem::PermRead, {});
    EXPECT_EQ(fail.status().code(), StatusCode::ResourceExhausted);
}

TEST_F(SgxUnitTest, LocalAttestationRoundTrip)
{
    EnclaveId a = makeEnclave(1, 0x10000000);
    EnclaveId b = makeEnclave(2, 0x10000000);
    ReportData data{};
    data[0] = 0x42;
    auto report = sgx_.ereport(a, b, data);
    ASSERT_TRUE(report.isOk());
    EXPECT_TRUE(sgx_.verifyReport(b, *report).isOk());
}

TEST_F(SgxUnitTest, TamperedReportRejected)
{
    EnclaveId a = makeEnclave(1, 0x10000000);
    EnclaveId b = makeEnclave(2, 0x10000000);
    auto report = sgx_.ereport(a, b, ReportData{});
    ASSERT_TRUE(report.isOk());

    Report bad = *report;
    bad.data[0] ^= 1;
    EXPECT_EQ(sgx_.verifyReport(b, bad).code(),
              StatusCode::AttestationFailure);

    bad = *report;
    bad.mrenclave[0] ^= 1;
    EXPECT_FALSE(sgx_.verifyReport(b, bad).isOk());
}

TEST_F(SgxUnitTest, ReportForWrongTargetRejected)
{
    EnclaveId a = makeEnclave(1, 0x10000000);
    EnclaveId b = makeEnclave(2, 0x10000000);
    EnclaveId c = makeEnclave(3, 0x10000000);
    auto report = sgx_.ereport(a, b, ReportData{});
    ASSERT_TRUE(report.isOk());
    // c cannot verify a report MACed for b.
    EXPECT_FALSE(sgx_.verifyReport(c, *report).isOk());
}

TEST_F(SgxUnitTest, SealKeysBoundToMeasurement)
{
    EnclaveId a = makeEnclave(1, 0x10000000);
    EnclaveId b = makeEnclave(2, 0x10000000);
    auto ka = sgx_.sealKey(a, "disk");
    auto kb = sgx_.sealKey(b, "disk");
    ASSERT_TRUE(ka.isOk());
    ASSERT_TRUE(kb.isOk());
    // Identical enclaves (same measurement) share seal keys; a
    // different label diverges.
    EXPECT_EQ(*ka, *kb);
    auto ka2 = sgx_.sealKey(a, "net");
    ASSERT_TRUE(ka2.isOk());
    EXPECT_NE(*ka, *ka2);
}

TEST_F(SgxUnitTest, PlatformResetClearsEverything)
{
    EnclaveId id = makeEnclave(1);
    sgx_.platformReset();
    EXPECT_EQ(sgx_.secs(id), nullptr);
    EXPECT_EQ(sgx_.epc().freePages(), sgx_.epc().totalPages());
}

}  // namespace
}  // namespace hix::sgx
