/**
 * @file
 * Remote attestation tests: the quoting-enclave flow of Section 5.5
 * — a remote user verifies that the GPU enclave runs the vendor's
 * unmodified driver on a genuine platform.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/machine.h"
#include "sgx/quote.h"

namespace hix::sgx
{
namespace
{

class QuoteTest : public ::testing::Test
{
  protected:
    QuoteTest()
    {
        ge_result_ = core::GpuEnclave::create(
            &machine_, machine_.gpu().factoryBiosDigest());
        EXPECT_TRUE(ge_result_.isOk());
        ProcessId qe_pid = machine_.os().createProcess("aesm");
        auto qe = QuotingEnclave::create(&machine_.sgx(), qe_pid);
        EXPECT_TRUE(qe.isOk());
        qe_ = std::make_unique<QuotingEnclave>(std::move(*qe));
    }

    core::GpuEnclave *ge() { return ge_result_->get(); }

    const Secs *
    geSecs()
    {
        return machine_.sgx().secs(ge()->enclaveId());
    }

    os::Machine machine_;
    Result<std::unique_ptr<core::GpuEnclave>> ge_result_{
        errInternal("unset")};
    std::unique_ptr<QuotingEnclave> qe_;
};

TEST_F(QuoteTest, RemoteAttestationOfGpuEnclave)
{
    // The GPU enclave reports to the quoting enclave, binding its
    // routing-config measurement into the report data.
    ReportData data{};
    std::memcpy(data.data(), ge()->configMeasurement().data(), 32);
    auto report = machine_.sgx().ereport(ge()->enclaveId(),
                                         qe_->enclaveId(), data);
    ASSERT_TRUE(report.isOk());
    auto quote = qe_->quote(*report);
    ASSERT_TRUE(quote.isOk());

    // A remote user holding the vendor's reference measurement and
    // the attestation verification key accepts the quote.
    RemoteVerifier verifier(qe_->verificationKey(),
                            geSecs()->mrenclave);
    EXPECT_TRUE(verifier.verify(*quote).isOk());
    // And can read the routing-config measurement out of it.
    EXPECT_EQ(0, std::memcmp(quote->data.data(),
                             ge()->configMeasurement().data(), 32));
}

TEST_F(QuoteTest, TamperedQuoteRejected)
{
    auto report = machine_.sgx().ereport(ge()->enclaveId(),
                                         qe_->enclaveId(), ReportData{});
    ASSERT_TRUE(report.isOk());
    auto quote = qe_->quote(*report);
    ASSERT_TRUE(quote.isOk());
    RemoteVerifier verifier(qe_->verificationKey(),
                            geSecs()->mrenclave);

    Quote bad = *quote;
    bad.mrenclave[0] ^= 1;
    EXPECT_FALSE(verifier.verify(bad).isOk());

    bad = *quote;
    bad.data[0] ^= 1;
    EXPECT_FALSE(verifier.verify(bad).isOk());

    bad = *quote;
    bad.signature[0] ^= 1;
    EXPECT_FALSE(verifier.verify(bad).isOk());
}

TEST_F(QuoteTest, WrongMeasurementRejected)
{
    // An impostor enclave (different code) cannot pass as the GPU
    // enclave even with a genuine quote.
    ProcessId pid = machine_.os().createProcess("impostor");
    auto impostor =
        machine_.sgx().ecreate(pid, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(impostor.isOk());
    ASSERT_TRUE(machine_.sgx()
                    .eadd(*impostor, 0x10000000, mem::PermRead,
                          {0xde, 0xad})
                    .isOk());
    ASSERT_TRUE(machine_.sgx().einit(*impostor).isOk());

    auto report = machine_.sgx().ereport(*impostor, qe_->enclaveId(),
                                         ReportData{});
    ASSERT_TRUE(report.isOk());
    auto quote = qe_->quote(*report);
    ASSERT_TRUE(quote.isOk());

    RemoteVerifier verifier(qe_->verificationKey(),
                            geSecs()->mrenclave);
    EXPECT_EQ(verifier.verify(*quote).code(),
              StatusCode::AttestationFailure);
}

TEST_F(QuoteTest, UnverifiableReportNotQuotable)
{
    // A report MACed for a different target cannot be quoted.
    ProcessId pid = machine_.os().createProcess("other");
    auto other =
        machine_.sgx().ecreate(pid, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(other.isOk());
    ASSERT_TRUE(machine_.sgx().einit(*other).isOk());
    auto report = machine_.sgx().ereport(ge()->enclaveId(), *other,
                                         ReportData{});
    ASSERT_TRUE(report.isOk());
    EXPECT_FALSE(qe_->quote(*report).isOk());
}

TEST_F(QuoteTest, MeasurementPinningInRuntime)
{
    // A user that pins the genuine measurement connects fine.
    core::TrustedRuntime good(&machine_, ge(), "good");
    good.pinGpuEnclaveMeasurement(geSecs()->mrenclave);
    EXPECT_TRUE(good.connect().isOk());

    // Pinning a different (vendor-mismatched) measurement refuses
    // the session even though the transport-level attestation holds.
    core::TrustedRuntime strict(&machine_, ge(), "strict");
    crypto::Sha256Digest wrong = geSecs()->mrenclave;
    wrong[5] ^= 0x10;
    strict.pinGpuEnclaveMeasurement(wrong);
    EXPECT_EQ(strict.connect().code(),
              StatusCode::AttestationFailure);
}

}  // namespace
}  // namespace hix::sgx
