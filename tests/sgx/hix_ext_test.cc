/**
 * @file
 * Tests for the HIX extension: EGCREATE/EGADD semantics, the four
 * TGMR checks on MMIO TLB fills, lockdown integration, termination
 * lockout, and cold-boot recovery — the Section 5.5 attack classes.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.h"
#include "mem/phys_mem.h"
#include "pcie/root_complex.h"
#include "sgx/hix_ext.h"
#include "sgx/sgx_unit.h"

namespace hix::sgx
{
namespace
{

constexpr std::uint64_t RamSize = 64 * MiB;
constexpr Addr EpcBase = 32 * MiB;
constexpr std::uint64_t EpcSize = 8 * MiB;
constexpr Addr MmioBase = 0xe0000000;

/** Minimal GPU-like endpoint with a 1MiB register BAR. */
class FakeGpu : public pcie::PcieDevice
{
  public:
    FakeGpu()
        : PcieDevice("fakegpu", 0x10de, 0x1080, 0x030000),
          regs_(1 * MiB, 0)
    {
        EXPECT_TRUE(config().declareBar(0, 1 * MiB).isOk());
    }

    Status
    mmioRead(int, std::uint64_t offset, std::uint8_t *data,
             std::size_t len) override
    {
        std::memcpy(data, regs_.data() + offset, len);
        return Status::ok();
    }

    Status
    mmioWrite(int, std::uint64_t offset, const std::uint8_t *data,
              std::size_t len) override
    {
        std::memcpy(regs_.data() + offset, data, len);
        return Status::ok();
    }

    Bytes regs_;
};

class HixExtTest : public ::testing::Test
{
  protected:
    HixExtTest()
        : ram_("ram", RamSize),
          rc_(AddrRange(MmioBase, 256 * MiB), &bus_, nullptr),
          mmu_(&bus_, 32),
          sgx_(AddrRange(EpcBase, EpcSize), &mmu_, 1),
          ext_(&sgx_, &rc_)
    {
        EXPECT_TRUE(bus_.attach(AddrRange(0, RamSize), &ram_).isOk());
        EXPECT_TRUE(rc_.attachDevice(0, &gpu_).isOk());
        EXPECT_TRUE(rc_.enumerate().isOk());
        EXPECT_TRUE(
            bus_.attach(AddrRange(MmioBase, 256 * MiB), &rc_).isOk());
        mmu_.setPageTableProvider([this](ProcessId pid) {
            return &tables_[pid];
        });
    }

    EnclaveId
    makeEnclave(ProcessId pid)
    {
        auto id = sgx_.ecreate(pid, AddrRange(0x10000000, 16 * MiB));
        EXPECT_TRUE(id.isOk());
        EXPECT_TRUE(sgx_.einit(*id).isOk());
        return *id;
    }

    /** EGCREATE + EGADD one MMIO page + OS PTE install. */
    void
    bindGpu(EnclaveId id, ProcessId pid, Addr vaddr = 0x10100000)
    {
        ASSERT_TRUE(ext_.egcreate(id, gpu_.bdf()).isOk());
        ASSERT_TRUE(
            ext_.egadd(id, vaddr, gpu_.config().barBase(0)).isOk());
        ASSERT_TRUE(tables_[pid]
                        .map(vaddr, gpu_.config().barBase(0),
                             mem::PermRead | mem::PermWrite)
                        .isOk());
    }

    mem::PhysicalBus bus_;
    mem::PhysMem ram_;
    FakeGpu gpu_;
    pcie::RootComplex rc_;
    mem::Mmu mmu_;
    SgxUnit sgx_;
    HixExtension ext_;
    std::unordered_map<ProcessId, mem::PageTable> tables_;
};

TEST_F(HixExtTest, EgcreateBindsAndLocks)
{
    EnclaveId id = makeEnclave(1);
    ASSERT_TRUE(ext_.egcreate(id, gpu_.bdf()).isOk());
    EXPECT_TRUE(ext_.enclaveOwnsGpu(id));
    EXPECT_TRUE(ext_.gpuBound(gpu_.bdf()));
    EXPECT_TRUE(rc_.isLocked(gpu_.bdf()));
    auto m = ext_.configMeasurement(id);
    ASSERT_TRUE(m.isOk());
}

TEST_F(HixExtTest, EgcreateRequiresInitializedEnclave)
{
    auto id = sgx_.ecreate(1, AddrRange(0x10000000, 1 * MiB));
    ASSERT_TRUE(id.isOk());
    EXPECT_EQ(ext_.egcreate(*id, gpu_.bdf()).code(),
              StatusCode::FailedPrecondition);
}

TEST_F(HixExtTest, EgcreateRejectsEmulatedGpu)
{
    // Attack (6): a privileged adversary advertises a software GPU at
    // a BDF the root complex never enumerated.
    EnclaveId id = makeEnclave(1);
    EXPECT_EQ(ext_.egcreate(id, pcie::Bdf{7, 0, 0}).code(),
              StatusCode::NotFound);
}

TEST_F(HixExtTest, OneGpuOneEnclaveInvariant)
{
    EnclaveId a = makeEnclave(1);
    EnclaveId b = makeEnclave(2);
    ASSERT_TRUE(ext_.egcreate(a, gpu_.bdf()).isOk());
    EXPECT_EQ(ext_.egcreate(b, gpu_.bdf()).code(),
              StatusCode::AlreadyExists);
}

TEST_F(HixExtTest, EgaddValidatesAddresses)
{
    EnclaveId id = makeEnclave(1);
    ASSERT_TRUE(ext_.egcreate(id, gpu_.bdf()).isOk());
    const Addr bar = gpu_.config().barBase(0);

    // Unaligned.
    EXPECT_FALSE(ext_.egadd(id, 0x10100010, bar).isOk());
    // vaddr outside ELRANGE.
    EXPECT_FALSE(ext_.egadd(id, 0x50000000, bar).isOk());
    // paddr outside the GPU BAR apertures (attack: register DRAM).
    EXPECT_FALSE(ext_.egadd(id, 0x10100000, 0x100000).isOk());
    // Valid registration.
    EXPECT_TRUE(ext_.egadd(id, 0x10100000, bar).isOk());
    // Duplicate vaddr.
    EXPECT_EQ(ext_.egadd(id, 0x10100000, bar + mem::PageSize).code(),
              StatusCode::AlreadyExists);
}

TEST_F(HixExtTest, EgaddWithoutGpuRejected)
{
    EnclaveId id = makeEnclave(1);
    EXPECT_EQ(
        ext_.egadd(id, 0x10100000, gpu_.config().barBase(0)).code(),
        StatusCode::FailedPrecondition);
}

TEST_F(HixExtTest, GpuEnclaveCanTouchRegisteredMmio)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());

    Bytes data = {0xca, 0xfe};
    ASSERT_TRUE(
        mmu_.write(*ctx, 0x10100000, data.data(), data.size()).isOk());
    EXPECT_EQ(gpu_.regs_[0], 0xca);
    EXPECT_EQ(gpu_.regs_[1], 0xfe);
}

TEST_F(HixExtTest, OsCannotTouchProtectedMmio)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    // The OS maps the GPU BAR into its own space (pid 9).
    ASSERT_TRUE(tables_[9]
                    .map(0x70000000, gpu_.config().barBase(0),
                         mem::PermRead | mem::PermWrite)
                    .isOk());
    mem::ExecContext os_ctx{9, InvalidEnclaveId};
    Bytes data = {1};
    EXPECT_EQ(mmu_.write(os_ctx, 0x70000000, data.data(), 1).code(),
              StatusCode::AccessFault);
}

TEST_F(HixExtTest, OtherEnclaveCannotTouchProtectedMmio)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    EnclaveId other = makeEnclave(2);
    ASSERT_TRUE(tables_[2]
                    .map(0x10100000, gpu_.config().barBase(0),
                         mem::PermRead | mem::PermWrite)
                    .isOk());
    auto ctx = sgx_.eenter(2, other);
    ASSERT_TRUE(ctx.isOk());
    Bytes data = {1};
    EXPECT_EQ(mmu_.write(*ctx, 0x10100000, data.data(), 1).code(),
              StatusCode::AccessFault);
}

TEST_F(HixExtTest, UnregisteredVaddrDeniedEvenForOwner)
{
    // Check 2/3: the GPU enclave itself must use the registered VA.
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1, 0x10100000);
    ASSERT_TRUE(tables_[1]
                    .map(0x10200000, gpu_.config().barBase(0),
                         mem::PermRead | mem::PermWrite)
                    .isOk());
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    Bytes data = {1};
    EXPECT_EQ(mmu_.write(*ctx, 0x10200000, data.data(), 1).code(),
              StatusCode::AccessFault);
}

TEST_F(HixExtTest, PteRemapOfMmioDenied)
{
    // MMIO address-translation attack (Section 5.5 (3)): after
    // registration, the OS rewrites the PTE to point the registered
    // VA at a different MMIO page. Check 4 must catch it.
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    Bytes data = {1};
    ASSERT_TRUE(mmu_.write(*ctx, 0x10100000, data.data(), 1).isOk());

    tables_[1].overwrite(0x10100000,
                         gpu_.config().barBase(0) + mem::PageSize,
                         mem::PermRead | mem::PermWrite);
    mmu_.tlb().flushAll();
    EXPECT_EQ(mmu_.write(*ctx, 0x10100000, data.data(), 1).code(),
              StatusCode::AccessFault);
}

TEST_F(HixExtTest, PteRemapToDramDenied)
{
    // Variant: redirect the registered VA to attacker DRAM so the
    // enclave's doorbells land in attacker-visible memory.
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    auto ctx = sgx_.eenter(1, id);
    ASSERT_TRUE(ctx.isOk());
    tables_[1].overwrite(0x10100000, 0x200000,
                         mem::PermRead | mem::PermWrite);
    mmu_.tlb().flushAll();
    Bytes data = {1};
    EXPECT_EQ(mmu_.write(*ctx, 0x10100000, data.data(), 1).code(),
              StatusCode::AccessFault);
}

TEST_F(HixExtTest, KilledGpuEnclaveLocksGpuForever)
{
    // Section 4.2.3 / Section 5.5 termination attack: killing the
    // GPU enclave must not free the GPU for anyone.
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    ASSERT_TRUE(sgx_.killEnclave(id).isOk());

    // The dead owner cannot access.
    mem::ExecContext stale{1, id};
    Bytes data = {1};
    EXPECT_EQ(mmu_.write(stale, 0x10100000, data.data(), 1).code(),
              StatusCode::AccessFault);

    // A fresh GPU enclave cannot rebind the GPU.
    EnclaveId fresh = makeEnclave(2);
    EXPECT_EQ(ext_.egcreate(fresh, gpu_.bdf()).code(),
              StatusCode::AlreadyExists);

    // The OS cannot release the binding by destroying the enclave.
    EXPECT_EQ(sgx_.destroyEnclave(id).code(),
              StatusCode::FailedPrecondition);
}

TEST_F(HixExtTest, ColdBootResetFreesGpu)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    ASSERT_TRUE(sgx_.killEnclave(id).isOk());

    sgx_.platformReset();
    EXPECT_FALSE(ext_.gpuBound(gpu_.bdf()));
    EXPECT_FALSE(rc_.isLocked(gpu_.bdf()));

    // A new GPU enclave can now bind.
    EnclaveId fresh = makeEnclave(3);
    EXPECT_TRUE(ext_.egcreate(fresh, gpu_.bdf()).isOk());
}

TEST_F(HixExtTest, GracefulReleaseReturnsGpuToOs)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    ASSERT_TRUE(ext_.egrelease(id).isOk());
    EXPECT_FALSE(ext_.enclaveOwnsGpu(id));
    EXPECT_FALSE(rc_.isLocked(gpu_.bdf()));
    EXPECT_EQ(ext_.tgmrSize(), 0u);

    // Now the OS can touch the GPU MMIO again.
    ASSERT_TRUE(tables_[9]
                    .map(0x70000000, gpu_.config().barBase(0),
                         mem::PermRead | mem::PermWrite)
                    .isOk());
    mem::ExecContext os_ctx{9, InvalidEnclaveId};
    Bytes data = {1};
    EXPECT_TRUE(mmu_.write(os_ctx, 0x70000000, data.data(), 1).isOk());
}

TEST_F(HixExtTest, DeadEnclaveCannotRelease)
{
    EnclaveId id = makeEnclave(1);
    bindGpu(id, 1);
    ASSERT_TRUE(sgx_.killEnclave(id).isOk());
    EXPECT_EQ(ext_.egrelease(id).code(), StatusCode::Unavailable);
}

TEST_F(HixExtTest, LockdownActiveAfterEgcreate)
{
    EnclaveId id = makeEnclave(1);
    ASSERT_TRUE(ext_.egcreate(id, gpu_.bdf()).isOk());
    EXPECT_EQ(rc_.configWrite(gpu_.bdf(), pcie::cfg::Bar0, 0).code(),
              StatusCode::LockdownViolation);
}

TEST_F(HixExtTest, MeasurementStableWhileLocked)
{
    EnclaveId id = makeEnclave(1);
    ASSERT_TRUE(ext_.egcreate(id, gpu_.bdf()).isOk());
    auto m1 = ext_.configMeasurement(id);
    ASSERT_TRUE(m1.isOk());
    // Attacker attempts (and fails) to rewrite routing; measurement
    // of live config still matches the GECS snapshot.
    (void)rc_.configWrite(gpu_.bdf(), pcie::cfg::Bar0, 0xdead0000);
    auto live = rc_.measurePath(gpu_.bdf());
    ASSERT_TRUE(live.isOk());
    EXPECT_EQ(*m1, *live);
}

}  // namespace
}  // namespace hix::sgx
