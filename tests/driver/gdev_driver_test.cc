/**
 * @file
 * Tests for the Gdev-like driver on the full machine: contexts,
 * memory, DMA and PIO copies, kernels, scrub-on-free semantics, and
 * the timing trace the driver records.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "driver/gdev_driver.h"
#include "os/machine.h"

namespace hix::driver
{
namespace
{

class GdevDriverTest : public ::testing::Test
{
  protected:
    GdevDriverTest() : machine_()
    {
        pid_ = machine_.os().createProcess("app");
        GdevConfig cfg;
        cfg.actor = machine_.nextActor();
        driver_ = std::make_unique<GdevDriver>(
            &machine_.gpu(), makeHostPort(), &machine_.recorder(), cfg);
    }

    std::unique_ptr<MmioPort>
    makeHostPort()
    {
        const auto &config = machine_.gpu().config();
        return std::make_unique<HostMmioPort>(&machine_.rootComplex(),
                                              config.barBase(0),
                                              config.barBase(1));
    }

    os::DmaBuffer
    hostBuffer(std::uint64_t size)
    {
        auto buf = machine_.os().allocDmaBuffer(pid_, size);
        EXPECT_TRUE(buf.isOk());
        return *buf;
    }

    os::Machine machine_;
    ProcessId pid_ = 0;
    std::unique_ptr<GdevDriver> driver_;
};

TEST_F(GdevDriverTest, ContextCreateDestroy)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    EXPECT_EQ(machine_.gpu().contextCount(), 1u);
    ASSERT_TRUE(driver_->destroyContext(*ctx).isOk());
    EXPECT_EQ(machine_.gpu().contextCount(), 0u);
}

TEST_F(GdevDriverTest, MemAllocFree)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 1 * MiB);
    ASSERT_TRUE(va.isOk());
    auto pa = driver_->vramAddrOf(*ctx, *va + 123);
    ASSERT_TRUE(pa.isOk());
    ASSERT_TRUE(driver_->memFree(*ctx, *va).isOk());
    EXPECT_FALSE(driver_->vramAddrOf(*ctx, *va).isOk());
}

TEST_F(GdevDriverTest, DmaCopyRoundTrip)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 64 * KiB);
    ASSERT_TRUE(va.isOk());

    os::DmaBuffer src = hostBuffer(64 * KiB);
    os::DmaBuffer dst = hostBuffer(64 * KiB);
    Bytes payload(64 * KiB);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 13);
    ASSERT_TRUE(machine_.ram()
                    .writeAt(src.paddr, payload.data(), payload.size())
                    .isOk());

    ASSERT_TRUE(
        driver_->memcpyHtoD(*ctx, src.paddr, *va, payload.size()).isOk());
    ASSERT_TRUE(
        driver_->memcpyDtoH(*ctx, *va, dst.paddr, payload.size()).isOk());

    Bytes back(payload.size());
    ASSERT_TRUE(machine_.ram()
                    .readAt(dst.paddr, back.data(), back.size())
                    .isOk());
    EXPECT_EQ(back, payload);
}

TEST_F(GdevDriverTest, PioCopyRoundTrip)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 64 * KiB);
    ASSERT_TRUE(va.isOk());

    Bytes payload(10000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    ASSERT_TRUE(driver_->writeVramPio(*ctx, *va, payload).isOk());
    auto back = driver_->readVramPio(*ctx, *va, payload.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, payload);
}

TEST_F(GdevDriverTest, KernelLaunch)
{
    gpu::KernelId kid = machine_.gpu().kernels().add(
        "fill7",
        [](const gpu::GpuMemAccessor &mem,
           const gpu::KernelArgs &args) -> Status {
            for (std::uint64_t i = 0; i < args[1]; ++i)
                HIX_RETURN_IF_ERROR(mem.write32(args[0] + 4 * i, 7));
            return Status::ok();
        },
        [](const gpu::KernelArgs &) { return Tick(1000); });

    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 4096);
    ASSERT_TRUE(va.isOk());

    auto loaded = driver_->loadModule("fill7");
    ASSERT_TRUE(loaded.isOk());
    EXPECT_EQ(*loaded, kid);

    ASSERT_TRUE(driver_->launchKernel(*ctx, kid, {*va, 8}).isOk());
    auto out = driver_->readVramPio(*ctx, *va, 32);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ((*out)[0], 7);
    EXPECT_EQ((*out)[28], 7);
}

TEST_F(GdevDriverTest, ScrubOnFreePolicy)
{
    // Baseline Gdev leaves residual data; a scrubbing driver does not.
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 4096);
    ASSERT_TRUE(va.isOk());
    auto pa = driver_->vramAddrOf(*ctx, *va);
    ASSERT_TRUE(pa.isOk());
    ASSERT_TRUE(driver_->writeVramPio(*ctx, *va, Bytes(16, 0x5a)).isOk());
    ASSERT_TRUE(driver_->memFree(*ctx, *va).isOk());

    Bytes residual(16);
    ASSERT_TRUE(
        machine_.gpu().debugReadVram(*pa, residual.data(), 16).isOk());
    EXPECT_EQ(residual[0], 0x5a);  // leak! (stock Gdev behaviour)

    // Now with scrubOnFree (the HIX GPU enclave's policy).
    GdevConfig cfg;
    cfg.scrubOnFree = true;
    cfg.actor = machine_.nextActor();
    GdevDriver scrubbing(&machine_.gpu(), makeHostPort(),
                         &machine_.recorder(), cfg);
    auto ctx2 = scrubbing.createContext();
    ASSERT_TRUE(ctx2.isOk());
    auto va2 = scrubbing.memAlloc(*ctx2, 4096);
    ASSERT_TRUE(va2.isOk());
    auto pa2 = scrubbing.vramAddrOf(*ctx2, *va2);
    ASSERT_TRUE(pa2.isOk());
    ASSERT_TRUE(
        scrubbing.writeVramPio(*ctx2, *va2, Bytes(16, 0x77)).isOk());
    ASSERT_TRUE(scrubbing.memFree(*ctx2, *va2).isOk());
    ASSERT_TRUE(
        machine_.gpu().debugReadVram(*pa2, residual.data(), 16).isOk());
    EXPECT_EQ(residual[0], 0x00);
}

TEST_F(GdevDriverTest, TraceRecordsCopyAndKernel)
{
    gpu::KernelId kid = machine_.gpu().kernels().add(
        "noop",
        [](const gpu::GpuMemAccessor &, const gpu::KernelArgs &) {
            return Status::ok();
        },
        [](const gpu::KernelArgs &) { return Tick(12345); });

    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 64 * KiB);
    ASSERT_TRUE(va.isOk());
    os::DmaBuffer buf = hostBuffer(64 * KiB);

    machine_.clearTrace();
    GdevConfig cfg;
    cfg.actor = machine_.nextActor();
    GdevDriver traced(&machine_.gpu(), makeHostPort(),
                      &machine_.recorder(), cfg);
    ASSERT_TRUE(
        traced.memcpyHtoD(*ctx, buf.paddr, *va, 64 * KiB).isOk());
    ASSERT_TRUE(traced.launchKernel(*ctx, kid, {}).isOk());

    const auto &trace = machine_.trace();
    EXPECT_EQ(trace.totalBytes(sim::OpKind::Transfer), 64 * KiB);
    EXPECT_EQ(trace.totalDuration(sim::OpKind::Compute),
              Tick(12345) + sim::PlatformConfig::paper().gpuKernelLaunch);

    // The schedule serializes: copy before kernel (program order).
    auto result = machine_.scheduleTrace();
    EXPECT_GT(result.makespan, Tick(12345));
}

TEST_F(GdevDriverTest, TimingScaleMultipliesBytes)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 64 * KiB);
    ASSERT_TRUE(va.isOk());
    os::DmaBuffer buf = hostBuffer(64 * KiB);

    machine_.clearTrace();
    GdevConfig cfg;
    cfg.timingScale = 16;
    cfg.actor = machine_.nextActor();
    GdevDriver scaled(&machine_.gpu(), makeHostPort(),
                      &machine_.recorder(), cfg);
    ASSERT_TRUE(scaled.memcpyHtoD(*ctx, buf.paddr, *va, 4096).isOk());
    EXPECT_EQ(machine_.trace().totalBytes(sim::OpKind::Transfer),
              16u * 4096u);
}

TEST_F(GdevDriverTest, AsyncCopyDoesNotBlockCpuChain)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    auto va = driver_->memAlloc(*ctx, 1 * MiB);
    ASSERT_TRUE(va.isOk());
    os::DmaBuffer buf = hostBuffer(1 * MiB);

    machine_.clearTrace();
    GdevConfig cfg;
    cfg.actor = machine_.nextActor();
    GdevDriver traced(&machine_.gpu(), makeHostPort(),
                      &machine_.recorder(), cfg);

    auto r1 = traced.memcpyHtoD(*ctx, buf.paddr, *va, 1 * MiB,
                                /*async=*/true);
    ASSERT_TRUE(r1.isOk());
    auto r2 = traced.memcpyHtoD(*ctx, buf.paddr, *va, 1 * MiB,
                                /*async=*/true);
    ASSERT_TRUE(r2.isOk());
    traced.sync(r2->gpuOp);

    auto result = machine_.scheduleTrace();
    // Two DMA ops serialize on the copy engine, but the CPU-side
    // submits overlap with the first DMA: makespan is well below
    // 2 * (submit + dma) fully serialized.
    const Tick dma = result.kindBusy.at(sim::OpKind::Transfer);
    EXPECT_GE(result.makespan, dma);
    EXPECT_LE(result.makespan,
              dma + 100 * US);
}

TEST_F(GdevDriverTest, FailedCommandSurfacesError)
{
    auto ctx = driver_->createContext();
    ASSERT_TRUE(ctx.isOk());
    // Copy into unmapped GPU VA.
    os::DmaBuffer buf = hostBuffer(4096);
    auto r = driver_->memcpyHtoD(*ctx, buf.paddr, 0xdead0000, 4096);
    EXPECT_FALSE(r.isOk());
}

}  // namespace
}  // namespace hix::driver
