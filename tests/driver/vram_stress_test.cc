/**
 * @file
 * Randomized stress test of the buddy allocator with invariant
 * checking after every operation: no overlapping live blocks, exact
 * free-byte accounting, and full coalescing back to one max block
 * after everything is freed.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/units.h"
#include "driver/vram_allocator.h"

namespace hix::driver
{
namespace
{

struct StressCase
{
    std::uint64_t seed;
    int operations;
};

class VramStressTest : public ::testing::TestWithParam<StressCase>
{
};

TEST_P(VramStressTest, RandomAllocFreeKeepsInvariants)
{
    const StressCase param = GetParam();
    Rng rng(param.seed);
    VramAllocator alloc(16 * MiB, 64 * MiB, 4096);

    std::map<Addr, std::uint64_t> live;  // base -> block size
    std::uint64_t live_bytes = 0;

    for (int op = 0; op < param.operations; ++op) {
        const bool do_alloc =
            live.empty() || rng.nextBelow(100) < 55;
        if (do_alloc) {
            const std::uint64_t size = 1 + rng.nextBelow(512 * KiB);
            auto block = alloc.alloc(size);
            if (!block.isOk()) {
                EXPECT_EQ(block.status().code(),
                          StatusCode::ResourceExhausted);
                continue;
            }
            const std::uint64_t rounded = alloc.blockSize(*block);
            ASSERT_GE(rounded, size);

            // Must lie in the arena and not overlap any live block.
            ASSERT_GE(*block, 16 * MiB);
            ASSERT_LE(*block + rounded, 16 * MiB + 64 * MiB);
            auto next = live.lower_bound(*block);
            if (next != live.end())
                ASSERT_LE(*block + rounded, next->first);
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, *block);
            }
            live[*block] = rounded;
            live_bytes += rounded;
        } else {
            auto victim = live.begin();
            std::advance(victim,
                         rng.nextBelow(live.size()));
            ASSERT_TRUE(alloc.free(victim->first).isOk());
            live_bytes -= victim->second;
            live.erase(victim);
        }
        ASSERT_EQ(alloc.freeBytes(), 64 * MiB - live_bytes);
    }

    for (const auto &[base, size] : live)
        ASSERT_TRUE(alloc.free(base).isOk());
    EXPECT_EQ(alloc.freeBytes(), 64 * MiB);
    // Fully coalesced: one maximal allocation succeeds.
    EXPECT_TRUE(alloc.alloc(64 * MiB).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, VramStressTest,
    ::testing::Values(StressCase{1, 500}, StressCase{2, 1000},
                      StressCase{3, 2000}, StressCase{42, 1500},
                      StressCase{0xdead, 800}),
    [](const ::testing::TestParamInfo<StressCase> &info) {
        return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace hix::driver
