/**
 * @file
 * Tests for the engine-to-timing-resource mapping: the device-blocked
 * per-context index layout (compute queues, DMA channels, PIO lanes),
 * its injectivity across (device, channel) pairs, the exact pre-knob
 * identity at channels == 1, and the checked uint16_t overflow.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "common/rng.h"
#include "driver/gdev_driver.h"
#include "sim/resource.h"

namespace hix::driver
{
namespace
{

const sim::ResourceId kCpu{sim::ResUnit::UserCpu, 7};

sim::PlatformConfig
timingWith(std::uint32_t queues, std::uint32_t channels)
{
    sim::PlatformConfig t = sim::PlatformConfig::paper();
    t.gpuConcurrentContexts = queues;
    t.gpuDmaChannels = channels;
    return t;
}

TEST(ResourceMapTest, SingleChannelReproducesLegacyIds)
{
    // channels == queues == 1 must give exactly the pre-knob resource
    // ids: one copy engine per direction per device, one compute
    // engine per device, one PIO path per device — independent of ctx.
    const sim::PlatformConfig t = timingWith(1, 1);
    for (std::uint16_t device : {0, 1, 3, 7}) {
        for (GpuContextId ctx :
             {GpuContextId(0), GpuContextId(1), GpuContextId(0x10000),
              GpuContextId(1) << 20, (GpuContextId(5) << 20) + 13}) {
            EXPECT_EQ(engineResource(gpu::GpuEngine::CopyHtoD, ctx, t,
                                     device, kCpu),
                      (sim::ResourceId{sim::ResUnit::DmaHtoD, device}));
            EXPECT_EQ(engineResource(gpu::GpuEngine::CopyDtoH, ctx, t,
                                     device, kCpu),
                      (sim::ResourceId{sim::ResUnit::DmaDtoH, device}));
            EXPECT_EQ(engineResource(gpu::GpuEngine::Compute, ctx, t,
                                     device, kCpu),
                      (sim::ResourceId{sim::ResUnit::GpuCompute,
                                       device}));
            EXPECT_EQ(pioResource(ctx, t, device),
                      (sim::ResourceId{sim::ResUnit::PcieMmio,
                                       device}));
            EXPECT_EQ(engineResource(gpu::GpuEngine::Control, ctx, t,
                                     device, kCpu),
                      kCpu);
        }
    }
}

TEST(ResourceMapTest, ControlAlwaysLandsOnTheCallerCpu)
{
    const sim::PlatformConfig t = timingWith(8, 8);
    EXPECT_EQ(engineResource(gpu::GpuEngine::Control, 42, t, 3, kCpu),
              kCpu);
}

TEST(ResourceMapTest, DeviceBlockedLayout)
{
    // Channel c of device d is index d * channels + c, for every
    // engine bank.
    const sim::PlatformConfig t = timingWith(4, 8);
    EXPECT_EQ(engineResource(gpu::GpuEngine::CopyHtoD, 11, t, 2, kCpu),
              (sim::ResourceId{sim::ResUnit::DmaHtoD, 2 * 8 + 3}));
    EXPECT_EQ(engineResource(gpu::GpuEngine::CopyDtoH, 16, t, 1, kCpu),
              (sim::ResourceId{sim::ResUnit::DmaDtoH, 1 * 8 + 0}));
    EXPECT_EQ(engineResource(gpu::GpuEngine::Compute, 7, t, 3, kCpu),
              (sim::ResourceId{sim::ResUnit::GpuCompute, 3 * 4 + 3}));
    EXPECT_EQ(pioResource(9, t, 2),
              (sim::ResourceId{sim::ResUnit::PcieMmio, 2 * 8 + 1}));
}

TEST(ResourceMapTest, InjectiveAcrossDeviceChannelPairs)
{
    // Property: under one platform config, distinct (device,
    // ctx % channels) pairs never collide on the same ResourceId, and
    // equal pairs always agree — i.e. the index encodes exactly the
    // (device, channel) pair.
    Rng rng(0xdbf1);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint32_t channels =
            1u << rng.nextBelow(5);  // 1..16, power of two
        const std::uint32_t queues = 1u << rng.nextBelow(5);
        const sim::PlatformConfig t = timingWith(queues, channels);
        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::uint16_t>
            seen_dma;
        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::uint16_t>
            seen_compute;
        std::map<std::uint16_t,
                 std::pair<std::uint32_t, std::uint32_t>>
            index_owner;
        for (int draw = 0; draw < 64; ++draw) {
            const auto device =
                static_cast<std::uint16_t>(rng.nextBelow(16));
            const GpuContextId ctx =
                (GpuContextId(rng.nextBelow(8)) << 20) +
                rng.nextBelow(1 << 16);

            const auto h2d = engineResource(gpu::GpuEngine::CopyHtoD,
                                            ctx, t, device, kCpu);
            const auto d2h = engineResource(gpu::GpuEngine::CopyDtoH,
                                            ctx, t, device, kCpu);
            const auto pio = pioResource(ctx, t, device);
            ASSERT_EQ(h2d.unit, sim::ResUnit::DmaHtoD);
            ASSERT_EQ(d2h.unit, sim::ResUnit::DmaDtoH);
            // Both directions and the PIO path share one channel
            // layout.
            ASSERT_EQ(h2d.index, d2h.index);
            ASSERT_EQ(h2d.index, pio.index);

            const std::pair<std::uint32_t, std::uint32_t> key{
                device, static_cast<std::uint32_t>(ctx % channels)};
            auto [it, fresh] = seen_dma.emplace(key, h2d.index);
            if (!fresh) {
                ASSERT_EQ(it->second, h2d.index)
                    << "same (device, channel) mapped twice";
            }
            auto [owner, claimed] =
                index_owner.emplace(h2d.index, key);
            if (!claimed) {
                ASSERT_EQ(owner->second, key)
                    << "distinct (device, channel) pairs collided on "
                    << h2d.toString();
            }

            const auto comp = engineResource(gpu::GpuEngine::Compute,
                                             ctx, t, device, kCpu);
            ASSERT_EQ(comp.unit, sim::ResUnit::GpuCompute);
            const std::pair<std::uint32_t, std::uint32_t> ckey{
                device, static_cast<std::uint32_t>(ctx % queues)};
            auto [cit, cfresh] = seen_compute.emplace(ckey, comp.index);
            if (!cfresh) {
                ASSERT_EQ(cit->second, comp.index);
            }
            ASSERT_EQ(comp.index, device * queues + ctx % queues);
        }
    }
}

TEST(ResourceMapDeathTest, OverflowPanicsInsteadOfWrapping)
{
    // device * perDevice + ctx % perDevice beyond 65535 used to wrap
    // silently in the uint16_t cast, aliasing high devices onto low
    // resource indices. It must panic.
    EXPECT_EQ(sim::deviceBlockedResourceIndex(0xFFFF, 1, 12345),
              0xFFFF);
    EXPECT_DEATH(sim::deviceBlockedResourceIndex(0x10000, 1, 0),
                 "overflow");
    EXPECT_DEATH(sim::deviceBlockedResourceIndex(8192, 8, 3),
                 "overflow");
    const sim::PlatformConfig t = timingWith(8, 8);
    EXPECT_DEATH(engineResource(gpu::GpuEngine::Compute, 5, t, 8192,
                                kCpu),
                 "overflow");
    EXPECT_DEATH(engineResource(gpu::GpuEngine::CopyHtoD, 5, t, 8192,
                                kCpu),
                 "overflow");
}

}  // namespace
}  // namespace hix::driver
