/**
 * @file
 * Tests for the buddy VRAM allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "driver/vram_allocator.h"

namespace hix::driver
{
namespace
{

TEST(VramAllocatorTest, AllocatesAligned)
{
    VramAllocator a(0x1000000, 16 * MiB);
    auto p = a.alloc(4096);
    ASSERT_TRUE(p.isOk());
    EXPECT_GE(*p, 0x1000000u);
    EXPECT_EQ(*p % 4096, 0u);
    EXPECT_EQ(a.blockSize(*p), 4096u);
}

TEST(VramAllocatorTest, RoundsUpToPow2)
{
    VramAllocator a(0, 16 * MiB);
    auto p = a.alloc(5000);
    ASSERT_TRUE(p.isOk());
    EXPECT_EQ(a.blockSize(*p), 8192u);
    EXPECT_EQ(a.freeBytes(), 16 * MiB - 8192);
}

TEST(VramAllocatorTest, DistinctBlocksDoNotOverlap)
{
    VramAllocator a(0, 1 * MiB);
    std::set<Addr> bases;
    for (int i = 0; i < 16; ++i) {
        auto p = a.alloc(64 * KiB);
        ASSERT_TRUE(p.isOk());
        EXPECT_TRUE(bases.insert(*p).second);
    }
    // 16 * 64KiB = the whole megabyte.
    EXPECT_EQ(a.freeBytes(), 0u);
    EXPECT_FALSE(a.alloc(1).isOk());
}

TEST(VramAllocatorTest, FreeAndCoalesce)
{
    VramAllocator a(0, 1 * MiB);
    std::vector<Addr> blocks;
    for (int i = 0; i < 16; ++i) {
        auto p = a.alloc(64 * KiB);
        ASSERT_TRUE(p.isOk());
        blocks.push_back(*p);
    }
    for (Addr b : blocks)
        ASSERT_TRUE(a.free(b).isOk());
    EXPECT_EQ(a.freeBytes(), 1 * MiB);
    // After full coalescing, a max-size block is allocatable again.
    EXPECT_TRUE(a.alloc(1 * MiB).isOk());
}

TEST(VramAllocatorTest, DoubleFreeRejected)
{
    VramAllocator a(0, 1 * MiB);
    auto p = a.alloc(4096);
    ASSERT_TRUE(p.isOk());
    ASSERT_TRUE(a.free(*p).isOk());
    EXPECT_FALSE(a.free(*p).isOk());
}

TEST(VramAllocatorTest, FreeOfInteriorAddressRejected)
{
    VramAllocator a(0, 1 * MiB);
    auto p = a.alloc(8192);
    ASSERT_TRUE(p.isOk());
    EXPECT_FALSE(a.free(*p + 4096).isOk());
}

TEST(VramAllocatorTest, OversizeRejected)
{
    VramAllocator a(0, 1 * MiB);
    EXPECT_FALSE(a.alloc(2 * MiB).isOk());
    EXPECT_FALSE(a.alloc(0).isOk());
}

TEST(VramAllocatorTest, ReuseAfterFree)
{
    VramAllocator a(0, 1 * MiB);
    auto p1 = a.alloc(512 * KiB);
    ASSERT_TRUE(p1.isOk());
    ASSERT_TRUE(a.free(*p1).isOk());
    auto p2 = a.alloc(512 * KiB);
    ASSERT_TRUE(p2.isOk());
    EXPECT_EQ(*p1, *p2);
}

}  // namespace
}  // namespace hix::driver
