/**
 * @file
 * Executes the full attack-matrix conformance suite: every
 * os::Attacker primitive crossed with {baseline, HIX} and a lifecycle
 * phase, asserting the per-cell expected outcome and emitting the
 * markdown matrix report artifact.
 *
 * Registered with ctest under the fixed name `security_matrix`, so
 * `ctest -R security_matrix` runs the complete matrix in one process.
 * Set HIX_MATRIX_REPORT to override the report path (default
 * security_matrix.md in the working directory).
 */

#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "testing/attack_matrix.h"

using namespace hix;
using namespace hix::harness;

namespace
{

std::string
reportPath()
{
    const char *env = std::getenv("HIX_MATRIX_REPORT");
    return env ? env : "security_matrix.md";
}

/** Builds, runs, and caches the matrix once for every test below. */
class MatrixFixture : public ::testing::Test
{
  protected:
    static AttackMatrix &
    matrix()
    {
        static AttackMatrix *m = [] {
            auto *matrix = new AttackMatrix;
            registerBuiltinCells(*matrix);
            return matrix;
        }();
        return *m;
    }

    static int
    failures()
    {
        static int n = matrix().runAll(&std::cout);
        return n;
    }
};

TEST_F(MatrixFixture, CoversAtLeastTwentyCells)
{
    EXPECT_GE(matrix().size(), 20u);
}

TEST_F(MatrixFixture, EveryAttackRowCoversBothRuntimes)
{
    std::set<std::string> baseline_rows;
    std::set<std::string> hix_rows;
    for (const AttackCell &cell : matrix().cells()) {
        if (cell.runtime == RuntimeKind::Baseline)
            baseline_rows.insert(cell.attack);
        else
            hix_rows.insert(cell.attack);
    }
    EXPECT_EQ(baseline_rows, hix_rows);
}

TEST_F(MatrixFixture, ExpectationsPartitionByRuntime)
{
    // The matrix's contract: baseline cells demonstrate the breach,
    // HIX cells assert the wall that stops it.
    for (const AttackCell &cell : matrix().cells()) {
        const bool breach = outcomeIsBreach(cell.expected);
        if (cell.runtime == RuntimeKind::Baseline)
            EXPECT_TRUE(breach) << cell.attack;
        else
            EXPECT_FALSE(breach) << cell.attack;
    }
}

TEST_F(MatrixFixture, EveryCellCitesThePaper)
{
    for (const AttackCell &cell : matrix().cells()) {
        EXPECT_FALSE(cell.paperRef.empty()) << cell.attack;
        EXPECT_FALSE(cell.primitive.empty()) << cell.attack;
    }
}

TEST_F(MatrixFixture, AllCellsMatchExpectedOutcome)
{
    ASSERT_EQ(failures(), 0);
    const auto &cells = matrix().cells();
    const auto &results = matrix().results();
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const AttackCell &cell = cells[i];
        const CellRun &run = results[i];
        EXPECT_TRUE(run.error.empty())
            << cell.attack << " [" << runtimeKindName(cell.runtime)
            << "]: " << run.error;
        EXPECT_TRUE(run.pass)
            << cell.attack << " [" << runtimeKindName(cell.runtime)
            << "]: expected " << outcomeName(cell.expected)
            << ", observed " << outcomeName(run.observed.outcome)
            << " (" << run.observed.detail << ")";
    }
}

TEST_F(MatrixFixture, WritesMarkdownReportArtifact)
{
    failures();  // ensure the matrix has executed
    const std::string path = reportPath();
    ASSERT_TRUE(matrix().writeMarkdown(path).isOk());
    std::cout << "matrix report written to " << path << "\n";

    const std::string md = matrix().toMarkdown();
    EXPECT_NE(md.find("| Attack |"), std::string::npos);
    // One table row per cell.
    std::size_t rows = 0;
    for (const AttackCell &cell : matrix().cells())
        rows += md.find("| " + cell.attack + " |") != std::string::npos;
    EXPECT_GE(rows, 20u);
}

}  // namespace
