/**
 * @file
 * Deterministic fuzz runner: determinism witnesses (same seed =>
 * identical traces, digest, and verdict), the full 10k-iteration
 * budget over every built-in target, and shrinker minimality on
 * synthetic failing targets.
 *
 * Set HIX_FUZZ_SEED to re-run the budget under a different seed; the
 * documented default is 0x5ec2e7.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include <gtest/gtest.h>

#include "testing/fuzz.h"
#include "testing/fuzz_targets.h"

using namespace hix;
using namespace hix::harness;

namespace
{

constexpr std::uint64_t DefaultSeed = 0x5ec2e7;
constexpr std::uint64_t BudgetIterations = 10000;

std::uint64_t
seedFromEnv()
{
    const char *env = std::getenv("HIX_FUZZ_SEED");
    return env ? std::strtoull(env, nullptr, 0) : DefaultSeed;
}

TEST(FuzzRunner, TraceDerivationIsDeterministic)
{
    FuzzRunner a(DefaultSeed, 32);
    FuzzRunner b(DefaultSeed, 32);
    registerBuiltinFuzzTargets(a);
    registerBuiltinFuzzTargets(b);
    ASSERT_EQ(a.targets().size(), b.targets().size());
    for (std::size_t t = 0; t < a.targets().size(); ++t)
        for (std::uint64_t i = 0; i < 32; ++i)
            EXPECT_EQ(a.traceFor(a.targets()[t], i),
                      b.traceFor(b.targets()[t], i));
}

TEST(FuzzRunner, TracesRespectLengthBounds)
{
    FuzzRunner runner(DefaultSeed, 1);
    registerBuiltinFuzzTargets(runner);
    for (const FuzzTarget &target : runner.targets())
        for (std::uint64_t i = 0; i < 64; ++i) {
            const auto ops = runner.traceFor(target, i);
            EXPECT_GE(ops.size(), target.minOps) << target.name;
            EXPECT_LE(ops.size(), target.maxOps) << target.name;
        }
}

TEST(FuzzRunner, TargetsGetIndependentStreams)
{
    FuzzRunner runner(DefaultSeed, 1);
    registerBuiltinFuzzTargets(runner);
    ASSERT_GE(runner.targets().size(), 2u);
    EXPECT_NE(runner.traceFor(runner.targets()[0], 0),
              runner.traceFor(runner.targets()[1], 0));
}

TEST(FuzzRunner, SameSeedSameDigestDifferentSeedDifferentDigest)
{
    FuzzRunner a(DefaultSeed, 64);
    FuzzRunner b(DefaultSeed, 64);
    FuzzRunner c(DefaultSeed + 1, 64);
    registerBuiltinFuzzTargets(a);
    registerBuiltinFuzzTargets(b);
    registerBuiltinFuzzTargets(c);
    const auto va = a.runAll();
    const auto vb = b.runAll();
    const auto vc = c.runAll();
    ASSERT_EQ(va.size(), vb.size());
    ASSERT_EQ(va.size(), vc.size());
    for (std::size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(va[i].digest, vb[i].digest) << va[i].target;
        EXPECT_EQ(va[i].failed, vb[i].failed) << va[i].target;
        EXPECT_EQ(va[i].trace, vb[i].trace) << va[i].target;
        EXPECT_NE(va[i].digest, vc[i].digest) << va[i].target;
    }
}

TEST(FuzzRunner, FullBudgetPassesOnEveryBuiltinTarget)
{
    const std::uint64_t seed = seedFromEnv();
    FuzzRunner runner(seed, BudgetIterations);
    registerBuiltinFuzzTargets(runner);
    std::cout << "fuzzing with seed 0x" << std::hex << seed
              << std::dec << "\n";
    const auto verdicts = runner.runAll(&std::cout);
    ASSERT_EQ(verdicts.size(), 6u);
    for (const FuzzVerdict &v : verdicts) {
        EXPECT_FALSE(v.failed)
            << v.target << " failed at iteration "
            << v.failingIteration << ": " << v.message << " ("
            << v.trace.size() << "-op trace)";
        EXPECT_EQ(v.iterations, BudgetIterations) << v.target;
    }
}

TEST(FuzzShrinker, ReducesToSingleCulpritOp)
{
    // Synthetic target: fails iff any op has low byte 0x2A. The
    // minimal failing trace is exactly one such op.
    FuzzTarget target;
    target.name = "synthetic_single";
    target.minOps = 16;
    target.maxOps = 48;
    target.run = [](const std::vector<std::uint64_t> &ops) -> Status {
        for (std::uint64_t op : ops)
            if ((op & 0xff) == 0x2A)
                return errInternal("culprit byte present");
        return Status::ok();
    };
    FuzzRunner runner(DefaultSeed, 2000);
    const FuzzVerdict v = runner.runTarget(target);
    ASSERT_TRUE(v.failed) << "no failing trace found in budget";
    ASSERT_EQ(v.trace.size(), 1u);
    EXPECT_EQ(v.trace[0] & 0xff, 0x2Au);
    // The shrunk trace replays directly through the target.
    EXPECT_FALSE(target.run(v.trace).isOk());
}

TEST(FuzzShrinker, KeepsBothHalvesOfAConjunction)
{
    // Fails iff the trace contains an op with low byte 0x11 AND one
    // with low byte 0x22 — the minimum is two ops, which greedy
    // span-removal must not collapse further.
    FuzzTarget target;
    target.name = "synthetic_pair";
    target.minOps = 24;
    target.maxOps = 48;
    target.run = [](const std::vector<std::uint64_t> &ops) -> Status {
        bool a = false;
        bool b = false;
        for (std::uint64_t op : ops) {
            a = a || (op & 0xff) == 0x11;
            b = b || (op & 0xff) == 0x22;
        }
        return a && b ? errInternal("pair present") : Status::ok();
    };
    FuzzRunner runner(DefaultSeed, 5000);
    const FuzzVerdict v = runner.runTarget(target);
    ASSERT_TRUE(v.failed) << "no failing trace found in budget";
    ASSERT_EQ(v.trace.size(), 2u);
    EXPECT_FALSE(target.run(v.trace).isOk());
}

TEST(FuzzShrinker, ShrunkTraceDetectsRealBoundsBug)
{
    // Regression companion for the PhysMem bounds fix: a trace built
    // from a single crafted op drives the mapping_state target into
    // the huge-offset read that used to wrap `offset + len` and pass
    // the bounds check. With the overflow-safe check the target
    // accepts it; the hand-undone predicate rejects it.
    FuzzTarget target = mappingStateFuzzTarget();
    // op % 8 == 7 selects the PhysMem action; selector nibble 0xf at
    // bits [4,8) forces the near-2^64 offset.
    const std::uint64_t op = 0xffull << 4 | 0x7;
    EXPECT_TRUE(target.run({op}).isOk());
}

}  // namespace
