/**
 * @file
 * Attack-matrix pool coverage: on a multi-GPU machine the victim's
 * session lives on one pool device, and every HIX wall must hold
 * *there* — while the same attacker primitives aimed at a sibling
 * device find no channel to the victim at all. Cross-device cells
 * therefore expect no-channel outcomes (zero bytes, no-op redirects,
 * clean sibling VRAM), not just "denied".
 */

#include <gtest/gtest.h>

#include "mem/phys_mem.h"
#include "testing/scenario.h"

namespace hix::harness
{
namespace
{

/** Thresholds separating "recovered the data" from "noise" (same
 *  values the built-in matrix cells use). */
constexpr double LeakThreshold = 0.9;
constexpr double NoiseThreshold = 0.2;
constexpr std::uint64_t ScanBytes = 64 * 1024 * 1024;

ScenarioOptions
poolVictim(RuntimeKind kind, int gpus, int device, bool iommu = false)
{
    ScenarioOptions opts;
    opts.runtime = kind;
    opts.iommu = iommu;
    opts.gpuCount = gpus;
    opts.victimDevice = device;
    return opts;
}

Bytes
needleOf(const VictimScenario &s)
{
    return Bytes(s.secret().begin(), s.secret().begin() + 64);
}

// The dram-snoop wall is device-independent DRAM, but the victim's
// staging traffic originates from its own device: HIX must leave
// only ciphertext there even when the session runs on device 1.
TEST(PoolSecurityTest, HixDramSnoopStaysCiphertextOnANonZeroDevice)
{
    VictimScenario s(poolVictim(RuntimeKind::Hix, 2, 1));
    ASSERT_TRUE(s.setup().isOk());

    Bytes captured;
    s.onOp(s.htodChunkLabel(), 2, [&] {
        auto r = s.attacker().readDram(s.stagingPaddr(),
                                       s.chunkBytes());
        if (r.isOk())
            captured = std::move(*r);
    });
    ASSERT_TRUE(s.upload().isOk());
    ASSERT_FALSE(captured.empty()) << "mid-transfer hook never fired";

    const double ratio = VictimScenario::bestChunkMatch(
        captured, s.secret(), s.chunkBytes());
    EXPECT_LE(ratio, NoiseThreshold)
        << "staging DRAM of a device-1 session leaked plaintext";
}

// Same-device channel exists (baseline leaks by design), but only on
// the device actually hosting the session: a sibling's VRAM never
// holds a byte of the victim's data.
TEST(PoolSecurityTest, BaselineSecretLandsOnlyOnItsOwnDeviceVram)
{
    VictimScenario s(poolVictim(RuntimeKind::Baseline, 2, 1));
    ASSERT_TRUE(s.setup().isOk());
    ASSERT_TRUE(s.upload().isOk());

    const Bytes needle = needleOf(s);
    EXPECT_TRUE(s.vramContains(needle, ScanBytes, 1))
        << "secret missing from the victim's own device";
    EXPECT_FALSE(s.vramContains(needle, ScanBytes, 0))
        << "secret crossed to a sibling device's VRAM";
}

// BAR1 theft through the aperture of the *wrong* device reads that
// device's (empty) VRAM: a working attack primitive, but no channel.
TEST(PoolSecurityTest, SiblingBar1ApertureCarriesNoVictimData)
{
    VictimScenario s(poolVictim(RuntimeKind::Baseline, 2, 1));
    ASSERT_TRUE(s.setup().isOk());
    ASSERT_TRUE(s.upload().isOk());

    auto vram_pa = s.vramPaddr();
    ASSERT_TRUE(vram_pa.isOk());
    const ProcessId evil = s.makeEvilProcess();

    // Positive control: through the victim device's own aperture the
    // unprotected baseline leaks plaintext.
    auto own = s.attacker().mapAndRead(evil, s.bar1Base(1) + *vram_pa,
                                       s.chunkBytes());
    ASSERT_TRUE(own.isOk()) << own.status().message();
    EXPECT_GE(VictimScenario::bestChunkMatch(*own, s.secret(),
                                             s.chunkBytes()),
              LeakThreshold);

    // Cross-device cell: same offset through device 0's aperture.
    auto sibling = s.attacker().mapAndRead(
        evil, s.bar1Base(0) + *vram_pa, s.chunkBytes());
    ASSERT_TRUE(sibling.isOk()) << sibling.status().message();
    EXPECT_LE(VictimScenario::bestChunkMatch(*sibling, s.secret(),
                                             s.chunkBytes()),
              NoiseThreshold)
        << "device 0's BAR1 window exposed device 1's VRAM";
}

// The GECS/TGMR aperture lock protects the enclave's own device; a
// sibling aperture may map, but there is nothing of the victim's
// behind it.
TEST(PoolSecurityTest, HixApertureLockHoldsOnItsDeviceMidKernel)
{
    VictimScenario s(poolVictim(RuntimeKind::Hix, 2, 1));
    ASSERT_TRUE(s.setup().isOk());
    ASSERT_TRUE(s.upload().isOk());

    const ProcessId evil = s.makeEvilProcess();
    Result<Bytes> own = errUnavailable("hook did not fire");
    Result<Bytes> sibling = errUnavailable("hook did not fire");
    s.onOp("submit", 1, [&] {
        own = s.attacker().mapAndRead(evil, s.bar1Base(1),
                                      s.chunkBytes());
        sibling = s.attacker().mapAndRead(evil, s.bar1Base(0),
                                          s.chunkBytes());
    });
    ASSERT_TRUE(s.launchKernel().isOk());

    EXPECT_FALSE(own.isOk())
        << "enclave-owned aperture mapped on device 1";
    if (sibling.isOk()) {
        EXPECT_LE(VictimScenario::bestChunkMatch(*sibling, s.secret(),
                                                 s.chunkBytes()),
                  NoiseThreshold)
            << "sibling aperture somehow held victim plaintext";
    }
}

// Rewriting the IOMMU table of a *sibling's* protection domain is a
// no-op for the victim: its DMA resolves through its own domain, the
// transfer completes untouched, and the attacker frame stays empty.
TEST(PoolSecurityTest, DmaRedirectInASiblingDomainIsANoOp)
{
    VictimScenario s(poolVictim(RuntimeKind::Baseline, 2, 1, true));
    ASSERT_TRUE(s.setup().isOk());

    auto frame = s.evilFrame(mem::PageSize, 0x00);
    ASSERT_TRUE(frame.isOk());
    const Addr staged_page = mem::pageBase(s.stagingPaddr());
    s.onOp(s.htodChunkLabel(), 2, [&] {
        // Domain 0 belongs to device 0; the victim runs on device 1.
        (void)s.attacker().redirectDma(staged_page, *frame, 0);
    });
    ASSERT_TRUE(s.upload().isOk())
        << "sibling-domain rewrite broke the victim's own DMA";
    ASSERT_TRUE(s.launchKernel().isOk());
    auto back = s.download();
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, s.secret());

    auto diverted = s.attacker().readDram(*frame, s.chunkBytes());
    ASSERT_TRUE(diverted.isOk());
    EXPECT_EQ(*diverted, Bytes(s.chunkBytes(), 0x00))
        << "victim bytes were DMA-ed through a sibling's domain";
}

// The in-GPU MAC wall holds per-device: redirecting the victim's
// staging page in its *own* domain is still caught on device 1, and
// the sibling device never even sees a MAC event.
TEST(PoolSecurityTest, HixDetectsDmaRedirectOnItsOwnDevice)
{
    VictimScenario s(poolVictim(RuntimeKind::Hix, 2, 1, true));
    ASSERT_TRUE(s.setup().isOk());

    auto frame = s.evilFrame(mem::PageSize, 0x00);
    ASSERT_TRUE(frame.isOk());
    const Addr staged_page = mem::pageBase(s.stagingPaddr());
    s.onOp(s.htodChunkLabel(), 1, [&] {
        (void)s.attacker().redirectDma(staged_page, *frame, 1);
    });
    Status upload = s.upload();
    ASSERT_FALSE(upload.isOk())
        << "redirected chunk was ingested without complaint";
    EXPECT_GT(s.machine().gpuAt(1).stats().macFailures, 0u)
        << "victim device never ran its MAC check";
    EXPECT_EQ(s.machine().gpuAt(0).stats().macFailures, 0u)
        << "sibling device saw MAC traffic it should never get";
}

// Session-teardown scrubbing is a per-device property: the secret
// lives (in plaintext) only in the victim device's VRAM while the
// session runs, and is gone from that device after teardown.
TEST(PoolSecurityTest, HixVramScrubIsPerDevice)
{
    VictimScenario s(poolVictim(RuntimeKind::Hix, 2, 1));
    ASSERT_TRUE(s.setup().isOk());
    ASSERT_TRUE(s.upload().isOk());
    ASSERT_TRUE(s.launchKernel().isOk());

    const Bytes needle = needleOf(s);
    ASSERT_TRUE(s.vramContains(needle, ScanBytes, 1))
        << "secret never reached the victim device";
    EXPECT_FALSE(s.vramContains(needle, ScanBytes, 0));
    ASSERT_TRUE(s.teardown().isOk());
    EXPECT_FALSE(s.vramContains(needle, ScanBytes, 1))
        << "secret survived teardown on the victim device";
    EXPECT_FALSE(s.vramContains(needle, ScanBytes, 0));
}

// A pooled HIX victim on device 0 must behave exactly like the
// single-GPU scenario the rest of the matrix pins: the pool refactor
// may not weaken the default column.
TEST(PoolSecurityTest, DeviceZeroPoolVictimMatchesSingleGpuWalls)
{
    VictimScenario s(poolVictim(RuntimeKind::Hix, 2, 0));
    ASSERT_TRUE(s.setup().isOk());

    Bytes captured;
    s.onOp(s.htodChunkLabel(), 2, [&] {
        auto r = s.attacker().readDram(s.stagingPaddr(),
                                       s.chunkBytes());
        if (r.isOk())
            captured = std::move(*r);
    });
    ASSERT_TRUE(s.upload().isOk());
    ASSERT_FALSE(captured.empty());
    EXPECT_LE(VictimScenario::bestChunkMatch(captured, s.secret(),
                                             s.chunkBytes()),
              NoiseThreshold);
    ASSERT_TRUE(s.launchKernel().isOk());
    auto back = s.download();
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, s.secret());
    ASSERT_TRUE(s.teardown().isOk());
}

}  // namespace
}  // namespace hix::harness
