/**
 * @file
 * Tests for GPU enclave bring-up and the protections it activates:
 * BIOS attestation, MMIO lockdown engagement, exclusive MMIO access,
 * termination semantics.
 */

#include <gtest/gtest.h>

#include "hix/gpu_enclave.h"
#include "os/attacker.h"
#include "os/machine.h"

namespace hix::core
{
namespace
{

class GpuEnclaveTest : public ::testing::Test
{
  protected:
    os::Machine machine_;
};

TEST_F(GpuEnclaveTest, CreateSucceedsOnGenuineBios)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk()) << ge.status().toString();
    EXPECT_NE((*ge)->enclaveId(), InvalidEnclaveId);
    EXPECT_TRUE(machine_.hixExt().enclaveOwnsGpu((*ge)->enclaveId()));
    EXPECT_TRUE(machine_.rootComplex().isLocked(machine_.gpu().bdf()));
    // The GPU was reset during bring-up.
    EXPECT_GE(machine_.gpu().stats().resets, 1u);
}

TEST_F(GpuEnclaveTest, CreateFailsOnFlashedBios)
{
    // Attack (Section 5.5, code integrity / GPU BIOS): the adversary
    // flashes a malicious BIOS before the GPU enclave starts.
    os::Attacker attacker(&machine_);
    attacker.flashGpuBios(Bytes(64, 0x66));
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_FALSE(ge.isOk());
    EXPECT_EQ(ge.status().code(), StatusCode::AttestationFailure);
}

TEST_F(GpuEnclaveTest, ConfigMeasurementAvailable)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    auto live = machine_.rootComplex().measurePath(machine_.gpu().bdf());
    ASSERT_TRUE(live.isOk());
    EXPECT_EQ((*ge)->configMeasurement(), *live);
}

TEST_F(GpuEnclaveTest, OsCannotTouchGpuMmioAfterBringup)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());

    os::Attacker attacker(&machine_);
    ProcessId evil = machine_.os().createProcess("evil");
    auto leak = attacker.mapAndRead(
        evil, machine_.gpu().config().barBase(0), 4);
    EXPECT_EQ(leak.status().code(), StatusCode::AccessFault);
    EXPECT_FALSE(
        attacker.mapAndWrite(evil, machine_.gpu().config().barBase(0),
                             {1, 2, 3, 4})
            .isOk());
}

TEST_F(GpuEnclaveTest, RoutingRewriteBlockedAfterBringup)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    os::Attacker attacker(&machine_);
    EXPECT_EQ(attacker
                  .rewriteConfig(machine_.gpu().bdf(), pcie::cfg::Bar0,
                                 0xdead0000)
                  .code(),
              StatusCode::LockdownViolation);
}

TEST_F(GpuEnclaveTest, SecondGpuEnclaveRejected)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    auto second = GpuEnclave::create(
        &machine_, machine_.gpu().factoryBiosDigest());
    EXPECT_FALSE(second.isOk());
}

TEST_F(GpuEnclaveTest, GracefulShutdownReturnsGpu)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    ASSERT_TRUE((*ge)->shutdown().isOk());
    EXPECT_FALSE(machine_.rootComplex().isLocked(machine_.gpu().bdf()));
    // A fresh GPU enclave can bind again without a reboot.
    auto again = GpuEnclave::create(&machine_,
                                    machine_.gpu().factoryBiosDigest());
    EXPECT_TRUE(again.isOk()) << again.status().toString();
}

TEST_F(GpuEnclaveTest, ForcedKillLocksGpuUntilColdBoot)
{
    auto ge = GpuEnclave::create(&machine_,
                                 machine_.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());

    os::Attacker attacker(&machine_);
    ASSERT_TRUE(attacker
                    .killProcessAndEnclave((*ge)->pid(),
                                           (*ge)->enclaveId())
                    .isOk());

    // Nobody can bind or touch the GPU now.
    auto rebind = GpuEnclave::create(&machine_,
                                     machine_.gpu().factoryBiosDigest());
    EXPECT_FALSE(rebind.isOk());
    ProcessId evil = machine_.os().createProcess("evil");
    EXPECT_FALSE(attacker
                     .mapAndRead(evil,
                                 machine_.gpu().config().barBase(1), 4)
                     .isOk());

    // Cold boot recovers the platform.
    machine_.coldBoot();
    auto fresh = GpuEnclave::create(&machine_,
                                    machine_.gpu().factoryBiosDigest());
    EXPECT_TRUE(fresh.isOk()) << fresh.status().toString();
}

}  // namespace
}  // namespace hix::core
