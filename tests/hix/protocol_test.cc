/**
 * @file
 * Wire-protocol tests: round trips, malformed-input rejection, and a
 * deterministic mutation fuzz over encoded requests (the GPU enclave
 * must never crash or misparse attacker-supplied plaintext — even
 * though OCB normally filters it, defense in depth matters when the
 * channel key is shared with the user).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hix/protocol.h"

namespace hix::core
{
namespace
{

TEST(ProtocolTest, RequestRoundTrip)
{
    Request req;
    req.type = ReqType::LaunchKernel;
    req.args = {1, 0xdeadbeef, 0xffffffffffffffffull};
    req.blob = {0x41, 0x42};
    auto back = decodeRequest(encodeRequest(req));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->type, req.type);
    EXPECT_EQ(back->args, req.args);
    EXPECT_EQ(back->blob, req.blob);
}

TEST(ProtocolTest, EmptyRequestRoundTrip)
{
    Request req;
    req.type = ReqType::CloseSession;
    auto back = decodeRequest(encodeRequest(req));
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back->args.empty());
    EXPECT_TRUE(back->blob.empty());
}

TEST(ProtocolTest, ResponseRoundTrip)
{
    Response resp;
    resp.code = static_cast<std::uint32_t>(StatusCode::NotFound);
    resp.vals = {7, 8, 9};
    auto back = decodeResponse(encodeResponse(resp));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back->code, resp.code);
    EXPECT_EQ(back->vals, resp.vals);
    EXPECT_FALSE(back->isOk());
}

TEST(ProtocolTest, TruncatedInputsRejected)
{
    Request req;
    req.type = ReqType::MemAlloc;
    req.args = {4096};
    Bytes wire = encodeRequest(req);
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        Bytes truncated(wire.begin(), wire.begin() + cut);
        EXPECT_FALSE(decodeRequest(truncated).isOk())
            << "accepted truncation at " << cut;
    }
}

TEST(ProtocolTest, TrailingGarbageRejected)
{
    Request req;
    req.type = ReqType::MemFree;
    req.args = {1};
    Bytes wire = encodeRequest(req);
    wire.push_back(0x00);
    EXPECT_FALSE(decodeRequest(wire).isOk());
}

TEST(ProtocolTest, LengthFieldMutationFuzz)
{
    // Mutate each header byte through several values; the decoder
    // must either reject or return a self-consistent request, never
    // read out of bounds (ASAN-grade property; here we assert no
    // crash and consistency).
    Request req;
    req.type = ReqType::HtoDBegin;
    req.args = {0x1000, 0x2000, 0x400, 0x40000};
    req.blob = Bytes(5, 0x61);
    const Bytes wire = encodeRequest(req);

    Rng rng(0xf422);
    for (std::size_t pos = 0; pos < 12; ++pos) {
        for (int trial = 0; trial < 8; ++trial) {
            Bytes mutated = wire;
            mutated[pos] ^= static_cast<std::uint8_t>(
                1 + rng.nextBelow(255));
            auto decoded = decodeRequest(mutated);
            if (decoded.isOk()) {
                EXPECT_EQ(12 + 8 * decoded->args.size() +
                              decoded->blob.size(),
                          mutated.size());
            }
        }
    }
}

TEST(ProtocolTest, RandomBytesNeverCrashDecoder)
{
    Rng rng(0xfa11);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes junk = rng.bytes(rng.nextBelow(200));
        (void)decodeRequest(junk);
        (void)decodeResponse(junk);
    }
    SUCCEED();
}

TEST(ProtocolTest, ErrorResponseCarriesCode)
{
    Response resp = errorResponse(errIntegrityFailure("x"));
    EXPECT_EQ(resp.code,
              static_cast<std::uint32_t>(StatusCode::IntegrityFailure));
    EXPECT_FALSE(resp.isOk());
}

}  // namespace
}  // namespace hix::core
