/**
 * @file
 * Tests for HIX-protected demand paging (the Section 5.6 future
 * work): oversubscription correctness, LRU behaviour, swap
 * confidentiality, tamper/replay detection on page-in, and kernel
 * interaction via prefetch.
 */

#include <gtest/gtest.h>

#include "common/byte_utils.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/attacker.h"
#include "os/machine.h"

namespace hix::core
{
namespace
{

constexpr std::uint64_t Page = 64 * KiB;

Bytes
patternBytes(std::size_t n, std::uint8_t seed)
{
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<std::uint8_t>(i * 13 + seed);
    return b;
}

class ManagedMemoryTest : public ::testing::Test
{
  protected:
    ManagedMemoryTest()
    {
        machine_.gpu().kernels().add(
            "sum_page",
            [](const gpu::GpuMemAccessor &mem,
               const gpu::KernelArgs &args) -> Status {
                std::uint64_t sum = 0;
                for (std::uint64_t i = 0; i < args[1]; i += 4096) {
                    auto v = mem.read32(args[0] + i);
                    if (!v.isOk())
                        return v.status();
                    sum += *v;
                }
                return mem.write32(args[2],
                                   static_cast<std::uint32_t>(sum));
            },
            [](const gpu::KernelArgs &) { return Tick(1000); });

        ge_result_ = GpuEnclave::create(
            &machine_, machine_.gpu().factoryBiosDigest());
        EXPECT_TRUE(ge_result_.isOk());
        user_ = std::make_unique<TrustedRuntime>(
            &machine_, ge_result_->get(), "app");
        EXPECT_TRUE(user_->connect().isOk());
    }

    os::Machine machine_;
    Result<std::unique_ptr<GpuEnclave>> ge_result_{
        errInternal("unset")};
    std::unique_ptr<TrustedRuntime> user_;
};

TEST_F(ManagedMemoryTest, OversubscribedRoundTrip)
{
    // 8 pages of data, quota of 2 resident pages: every chunk forces
    // paging, and the data must still round-trip exactly.
    auto va = user_->memAllocManaged(8 * Page, Page,
                                     /*max_resident=*/2);
    ASSERT_TRUE(va.isOk()) << va.status().toString();

    Bytes data = patternBytes(8 * Page, 1);
    ASSERT_TRUE(user_->memcpyHtoD(*va, data).isOk());
    auto back = user_->memcpyDtoH(*va, data.size());
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(*back, data);
}

TEST_F(ManagedMemoryTest, UntouchedPagesReadZero)
{
    auto va = user_->memAllocManaged(4 * Page, Page, 2);
    ASSERT_TRUE(va.isOk());
    auto back = user_->memcpyDtoH(*va + 2 * Page, 100);
    ASSERT_TRUE(back.isOk());
    for (auto b : *back)
        EXPECT_EQ(b, 0);
}

TEST_F(ManagedMemoryTest, SwapHoldsOnlyCiphertext)
{
    auto va = user_->memAllocManaged(4 * Page, Page, 1);
    ASSERT_TRUE(va.isOk());
    Bytes secret(4 * Page, 0x5a);
    ASSERT_TRUE(user_->memcpyHtoD(*va, secret).isOk());
    // Quota 1: at least 3 pages now live in host swap. Scan all of
    // DRAM-resident swap content for the plaintext byte pattern; the
    // pages must be encrypted.
    os::Attacker attacker(&machine_);
    // The swap buffer was the most recent large DMA allocation; we
    // can't see its address via the runtime, so scan a window of
    // recently allocated frames for a plaintext page.
    bool plaintext_page_found = false;
    for (Addr pa = 0x100000; pa < 0x8000000; pa += Page) {
        auto window = attacker.readDram(pa, 256);
        if (!window.isOk())
            continue;
        int run = 0;
        for (auto b : *window)
            run = (b == 0x5a) ? run + 1 : 0;
        if (run >= 256) {
            plaintext_page_found = true;
            break;
        }
    }
    // The user's own staging ring briefly held ciphertext only; the
    // plaintext exists in VRAM, never in DRAM.
    EXPECT_FALSE(plaintext_page_found);
}

TEST_F(ManagedMemoryTest, KernelOnPrefetchedManagedBuffer)
{
    auto va = user_->memAllocManaged(2 * Page, Page, 4);
    ASSERT_TRUE(va.isOk());
    auto out = user_->memAlloc(4096);
    ASSERT_TRUE(out.isOk());

    Bytes data(2 * Page, 0);
    for (std::size_t off = 0; off < data.size(); off += 4096)
        storeLE32(data.data() + off, 3);
    ASSERT_TRUE(user_->memcpyHtoD(*va, data).isOk());
    ASSERT_TRUE(user_->prefetch(*va).isOk());

    auto kid = user_->loadModule("sum_page");
    ASSERT_TRUE(kid.isOk());
    ASSERT_TRUE(
        user_->launchKernel(*kid, {*va, 2 * Page, *out}).isOk());
    auto result = user_->memcpyDtoH(*out, 4);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(loadLE32(result->data()), 3u * (2 * Page / 4096));
}

TEST_F(ManagedMemoryTest, KernelOnNonResidentPageFaultsCleanly)
{
    // Quota 1 page; after writing 2 pages, page 0 is evicted. A
    // kernel touching the whole buffer without prefetch must fault.
    auto va = user_->memAllocManaged(2 * Page, Page, 1);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(
        user_->memcpyHtoD(*va, patternBytes(2 * Page, 2)).isOk());
    auto out = user_->memAlloc(4096);
    ASSERT_TRUE(out.isOk());
    auto kid = user_->loadModule("sum_page");
    ASSERT_TRUE(kid.isOk());
    EXPECT_FALSE(
        user_->launchKernel(*kid, {*va, 2 * Page, *out}).isOk());
}

TEST_F(ManagedMemoryTest, PrefetchBeyondQuotaRejected)
{
    auto va = user_->memAllocManaged(8 * Page, Page, 2);
    ASSERT_TRUE(va.isOk());
    EXPECT_EQ(user_->prefetch(*va).code(),
              StatusCode::ResourceExhausted);
}

TEST_F(ManagedMemoryTest, TamperedSwapDetectedOnPageIn)
{
    auto va = user_->memAllocManaged(4 * Page, Page, 1);
    ASSERT_TRUE(va.isOk());
    Bytes data = patternBytes(4 * Page, 3);
    ASSERT_TRUE(user_->memcpyHtoD(*va, data).isOk());

    // Corrupt the entire plausible swap region: flip one byte every
    // page-sized stride across recently allocated DRAM. Page 3 is
    // resident; pages 0-2 are in swap somewhere in that region.
    os::Attacker attacker(&machine_);
    for (Addr pa = 0x100000; pa < 0x8000000; pa += 4096)
        (void)attacker.tamperDram(pa, 0x01);

    // Reading back forces page-ins of the tampered pages: the MAC
    // must catch it and fail the transfer.
    auto back = user_->memcpyDtoH(*va, data.size());
    EXPECT_FALSE(back.isOk());
    EXPECT_GE(machine_.gpu().stats().macFailures, 1u);
}

TEST_F(ManagedMemoryTest, EvictionAndPageInCountsGrow)
{
    auto va = user_->memAllocManaged(6 * Page, Page, 2);
    ASSERT_TRUE(va.isOk());
    Bytes data = patternBytes(6 * Page, 4);
    ASSERT_TRUE(user_->memcpyHtoD(*va, data).isOk());
    // Re-reading from the front forces more paging traffic; the data
    // survives multiple full sweeps.
    for (int sweep = 0; sweep < 3; ++sweep) {
        auto back = user_->memcpyDtoH(*va, data.size());
        ASSERT_TRUE(back.isOk());
        EXPECT_EQ(*back, data);
    }
    EXPECT_GT(machine_.gpu().stats().cryptoKernels, 12u);
}

TEST_F(ManagedMemoryTest, CloseSessionTearsDownManagedState)
{
    auto va = user_->memAllocManaged(4 * Page, Page, 2);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(
        user_->memcpyHtoD(*va, patternBytes(4 * Page, 5)).isOk());
    const std::uint64_t vram_free_low = machine_.vram().freeBytes();
    ASSERT_TRUE(user_->close().isOk());
    // Resident managed pages (and the session's buffers) returned.
    EXPECT_GT(machine_.vram().freeBytes(), vram_free_low);
}

TEST_F(ManagedMemoryTest, BadGeometryRejected)
{
    EXPECT_FALSE(user_->memAllocManaged(0, Page, 2).isOk());
    EXPECT_FALSE(user_->memAllocManaged(Page, 1000, 2).isOk());
    EXPECT_FALSE(user_->memAllocManaged(Page, Page, 0).isOk());
    EXPECT_FALSE(user_->prefetch(0xdead0000).isOk());
}

}  // namespace
}  // namespace hix::core
