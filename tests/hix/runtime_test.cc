/**
 * @file
 * End-to-end tests of the trusted runtime against the GPU enclave:
 * session setup, encrypted transfers (single- and multi-chunk),
 * kernel execution on decrypted data, multi-session isolation,
 * data-path variants, and attacker-facing properties.
 */

#include <gtest/gtest.h>

#include "common/byte_utils.h"
#include "hix/baseline_runtime.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/attacker.h"
#include "os/machine.h"

namespace hix::core
{
namespace
{

/** Register the test kernels on a machine's GPU. */
void
registerKernels(os::Machine &machine)
{
    machine.gpu().kernels().add(
        "add_one_u32",
        [](const gpu::GpuMemAccessor &mem,
           const gpu::KernelArgs &args) -> Status {
            for (std::uint64_t i = 0; i < args[1]; ++i) {
                auto v = mem.read32(args[0] + 4 * i);
                if (!v.isOk())
                    return v.status();
                HIX_RETURN_IF_ERROR(mem.write32(args[0] + 4 * i, *v + 1));
            }
            return Status::ok();
        },
        [](const gpu::KernelArgs &args) { return Tick(args[1]); });
}

Bytes
patternBytes(std::size_t n, std::uint8_t seed = 0)
{
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<std::uint8_t>(i * 31 + seed);
    return b;
}

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeTest()
    {
        registerKernels(machine_);
        auto ge = GpuEnclave::create(&machine_,
                                     machine_.gpu().factoryBiosDigest(),
                                     config_);
        EXPECT_TRUE(ge.isOk()) << ge.status().toString();
        ge_ = std::move(*ge);
    }

    HixConfig config_{};
    os::Machine machine_;
    std::unique_ptr<GpuEnclave> ge_;
};

TEST_F(RuntimeTest, ConnectEstablishesSession)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    EXPECT_EQ(ge_->sessionCount(), 1u);
    EXPECT_NE(user.sessionId(), 0u);
}

TEST_F(RuntimeTest, SmallRoundTrip)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());

    Bytes data = patternBytes(1000);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());
    auto back = user.memcpyDtoH(*va, data.size());
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(*back, data);
}

TEST_F(RuntimeTest, MultiChunkRoundTrip)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    // > 2 chunks of 4 MiB to exercise the ring and nonce counters.
    const std::size_t total = 9 * MiB + 12345;
    auto va = user.memAlloc(total);
    ASSERT_TRUE(va.isOk());
    Bytes data = patternBytes(total);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());
    auto back = user.memcpyDtoH(*va, total);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, data);
}

TEST_F(RuntimeTest, KernelSeesDecryptedDataAndResultsReturn)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    const int n = 256;
    auto va = user.memAlloc(4 * n);
    ASSERT_TRUE(va.isOk());

    Bytes data(4 * n);
    for (int i = 0; i < n; ++i)
        storeLE32(data.data() + 4 * i, i);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());

    auto kid = user.loadModule("add_one_u32");
    ASSERT_TRUE(kid.isOk());
    ASSERT_TRUE(user.launchKernel(*kid, {*va, n}).isOk());

    auto back = user.memcpyDtoH(*va, 4 * n);
    ASSERT_TRUE(back.isOk());
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(loadLE32(back->data() + 4 * i),
                  static_cast<std::uint32_t>(i + 1));
}

TEST_F(RuntimeTest, SharedMemoryHoldsOnlyCiphertext)
{
    // Section 5.5 attack (1): the adversary inspects the
    // inter-enclave shared memory. It must see ciphertext.
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());
    Bytes secret(600, 0x5a);
    ASSERT_TRUE(user.memcpyHtoD(*va, secret).isOk());

    os::Attacker attacker(&machine_);
    auto snooped =
        attacker.readDram(user.sharedRing().paddr, secret.size());
    ASSERT_TRUE(snooped.isOk());
    // Count positions matching the plaintext: should look random.
    int matches = 0;
    for (std::size_t i = 0; i < secret.size(); ++i)
        if ((*snooped)[i] == secret[i])
            ++matches;
    EXPECT_LT(matches, 30);  // ~600/256 expected by chance
}

TEST_F(RuntimeTest, TamperedDmaDataDetected)
{
    // Section 5.5 DMA attack (5): corrupt the staged ciphertext; the
    // in-GPU integrity check must reject it.
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());

    // Stage garbage directly in the ring and push it as a chunk.
    os::Attacker attacker(&machine_);
    ASSERT_TRUE(attacker.tamperDram(user.sharedRing().paddr, 0xff).isOk());
    auto result = ge_->pushChunkHtoD(user.sessionId(), 0, 100, *va,
                                     /*counter=*/999,
                                     sim::InvalidOpId);
    EXPECT_FALSE(result.isOk());
    EXPECT_GE(machine_.gpu().stats().macFailures, 1u);
}

TEST_F(RuntimeTest, ForgedRequestRejected)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());

    crypto::SealedMessage forged;
    forged.stream = 0;
    forged.sequence = 1000;
    forged.body = Bytes(64, 0x41);
    auto outcome =
        ge_->request(user.sessionId(), forged, sim::InvalidOpId);
    EXPECT_FALSE(outcome.isOk());
    EXPECT_EQ(outcome.status().code(), StatusCode::IntegrityFailure);
}

TEST_F(RuntimeTest, TwoSessionsAreIsolated)
{
    TrustedRuntime alice(&machine_, ge_.get(), "alice", 0);
    TrustedRuntime bob(&machine_, ge_.get(), "bob", 1);
    ASSERT_TRUE(alice.connect().isOk());
    ASSERT_TRUE(bob.connect().isOk());
    EXPECT_EQ(ge_->sessionCount(), 2u);

    auto va_a = alice.memAlloc(4096);
    auto va_b = bob.memAlloc(4096);
    ASSERT_TRUE(va_a.isOk());
    ASSERT_TRUE(va_b.isOk());

    Bytes data_a = patternBytes(512, 1);
    Bytes data_b = patternBytes(512, 2);
    ASSERT_TRUE(alice.memcpyHtoD(*va_a, data_a).isOk());
    ASSERT_TRUE(bob.memcpyHtoD(*va_b, data_b).isOk());

    auto back_a = alice.memcpyDtoH(*va_a, 512);
    auto back_b = bob.memcpyDtoH(*va_b, 512);
    ASSERT_TRUE(back_a.isOk());
    ASSERT_TRUE(back_b.isOk());
    EXPECT_EQ(*back_a, data_a);
    EXPECT_EQ(*back_b, data_b);

    // Bob cannot read Alice's buffer: the GPU VAs live in different
    // GPU contexts, so Bob's context faults on Alice's address.
    auto stolen = bob.memcpyDtoH(*va_a, 512);
    if (stolen.isOk()) {
        // Same VA may exist in Bob's context only if it is his own
        // allocation; the data must not be Alice's.
        EXPECT_NE(*stolen, data_a);
    }
}

TEST_F(RuntimeTest, CloseSessionScrubsAndReleases)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(user.memcpyHtoD(*va, patternBytes(4096)).isOk());

    const std::uint64_t scrubbed_before =
        machine_.gpu().stats().scrubbedBytes;
    ASSERT_TRUE(user.close().isOk());
    EXPECT_EQ(ge_->sessionCount(), 0u);
    EXPECT_GT(machine_.gpu().stats().scrubbedBytes, scrubbed_before);

    // Requests after close fail cleanly.
    EXPECT_FALSE(user.memAlloc(4096).isOk());
}

TEST_F(RuntimeTest, HixTraceContainsCryptoAndTransferOps)
{
    TrustedRuntime user(&machine_, ge_.get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(1 * MiB);
    ASSERT_TRUE(va.isOk());

    machine_.clearTrace();
    // NB: clearTrace resets actors; acceptable for trace inspection.
    ASSERT_TRUE(user.memcpyHtoD(*va, patternBytes(1 * MiB)).isOk());

    const auto &trace = machine_.trace();
    EXPECT_GT(trace.totalDuration(sim::OpKind::CryptoCpu), 0u);
    EXPECT_GT(trace.totalDuration(sim::OpKind::CryptoGpu), 0u);
    EXPECT_GT(trace.totalDuration(sim::OpKind::Transfer), 0u);
    EXPECT_EQ(trace.totalBytes(sim::OpKind::CryptoCpu), 1 * MiB);
}

class NaiveCopyTest : public ::testing::Test
{
};

TEST_F(NaiveCopyTest, DoubleCopyPathStillCorrect)
{
    os::Machine machine;
    registerKernels(machine);
    HixConfig config;
    config.singleCopy = false;
    auto ge = GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest(), config);
    ASSERT_TRUE(ge.isOk());

    TrustedRuntime user(&machine, ge->get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(5 * MiB);
    ASSERT_TRUE(va.isOk());
    Bytes data = patternBytes(5 * MiB);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());
    auto back = user.memcpyDtoH(*va, data.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, data);
}

TEST_F(NaiveCopyTest, PioPathStillCorrect)
{
    os::Machine machine;
    registerKernels(machine);
    HixConfig config;
    config.usePio = true;
    auto ge = GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest(), config);
    ASSERT_TRUE(ge.isOk());

    TrustedRuntime user(&machine, ge->get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(1 * MiB);
    ASSERT_TRUE(va.isOk());
    Bytes data = patternBytes(300000);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());
    auto back = user.memcpyDtoH(*va, data.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, data);
}

TEST(BaselineRuntimeTest, PlainRoundTripAndKernel)
{
    os::Machine machine;
    registerKernels(machine);
    BaselineRuntime user(&machine, "plain");
    ASSERT_TRUE(user.init().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());

    Bytes data(4 * 64);
    for (int i = 0; i < 64; ++i)
        storeLE32(data.data() + 4 * i, 100 + i);
    ASSERT_TRUE(user.memcpyHtoD(*va, data).isOk());
    auto kid = user.loadModule("add_one_u32");
    ASSERT_TRUE(kid.isOk());
    ASSERT_TRUE(user.launchKernel(*kid, {*va, 64}).isOk());
    auto back = user.memcpyDtoH(*va, data.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(loadLE32(back->data()), 101u);
    ASSERT_TRUE(user.close().isOk());
}

TEST(BaselineRuntimeTest, BaselineLeaksPlaintextToAttacker)
{
    // The motivating contrast: in the unprotected system the
    // privileged adversary reads the user's data straight out of the
    // staging buffer (and could do the same via the GPU BAR).
    os::Machine machine;
    registerKernels(machine);
    BaselineRuntime user(&machine, "victim");
    ASSERT_TRUE(user.init().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());
    Bytes secret(128, 0x77);
    ASSERT_TRUE(user.memcpyHtoD(*va, secret).isOk());

    os::Attacker attacker(&machine);
    auto leaked = attacker.readDram(user.hostBuffer().paddr, 128);
    ASSERT_TRUE(leaked.isOk());
    EXPECT_EQ(*leaked, secret);  // full plaintext recovery
}

TEST(HixVsBaselineTest, HixCostsMoreOnTransfers)
{
    os::Machine machine;
    registerKernels(machine);

    // Baseline 1 MiB HtoD.
    BaselineRuntime base(&machine, "base");
    ASSERT_TRUE(base.init().isOk());
    auto bva = base.memAlloc(1 * MiB);
    ASSERT_TRUE(bva.isOk());
    machine.clearTrace();
    ASSERT_TRUE(base.memcpyHtoD(*bva, Bytes(1 * MiB, 1)).isOk());
    const Tick base_time = machine.scheduleTrace().makespan;

    // HIX 1 MiB HtoD.
    auto ge = GpuEnclave::create(&machine,
                                 machine.gpu().factoryBiosDigest());
    ASSERT_TRUE(ge.isOk());
    TrustedRuntime user(&machine, ge->get(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(1 * MiB);
    ASSERT_TRUE(va.isOk());
    machine.clearTrace();
    ASSERT_TRUE(user.memcpyHtoD(*va, Bytes(1 * MiB, 1)).isOk());
    const Tick hix_time = machine.scheduleTrace().makespan;

    EXPECT_GT(hix_time, base_time);
    // But not absurdly so (pipelining bounds the crypto cost).
    EXPECT_LT(hix_time, 20 * base_time);
}

}  // namespace
}  // namespace hix::core
