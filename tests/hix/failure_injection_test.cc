/**
 * @file
 * Failure injection: resource exhaustion, invalid requests, and
 * component faults must surface as clean Status errors and must not
 * corrupt subsequent operation of the platform or other sessions.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/machine.h"

namespace hix::core
{
namespace
{

TEST(FailureInjectionTest, TinyEpcFailsEnclaveCreationCleanly)
{
    os::MachineConfig config;
    config.epcSize = 2 * mem::PageSize;  // SECS + one page only
    os::Machine machine(config);
    auto ge = GpuEnclave::create(&machine,
                                 machine.gpu().factoryBiosDigest());
    ASSERT_FALSE(ge.isOk());
    EXPECT_EQ(ge.status().code(), StatusCode::ResourceExhausted);
    // The GPU must not be left half-bound (EGCREATE never ran).
    EXPECT_FALSE(machine.hixExt().gpuBound(machine.gpu().bdf()));
}

class FailureTest : public ::testing::Test
{
  protected:
    FailureTest()
    {
        ge_result_ = GpuEnclave::create(
            &machine_, machine_.gpu().factoryBiosDigest());
        EXPECT_TRUE(ge_result_.isOk());
    }

    GpuEnclave *ge() { return ge_result_->get(); }

    os::Machine machine_;
    Result<std::unique_ptr<GpuEnclave>> ge_result_{
        errInternal("unset")};
};

TEST_F(FailureTest, VramExhaustionIsRecoverable)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());

    // Ask for more device memory than the 1 GiB heap can give.
    auto huge = user.memAlloc(4 * GiB);
    ASSERT_FALSE(huge.isOk());

    // The session is still healthy.
    auto small = user.memAlloc(4096);
    ASSERT_TRUE(small.isOk());
    ASSERT_TRUE(user.memcpyHtoD(*small, Bytes(64, 1)).isOk());
}

TEST_F(FailureTest, VramExhaustionByManyAllocations)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    std::vector<Addr> blocks;
    for (;;) {
        auto va = user.memAlloc(128 * MiB);
        if (!va.isOk())
            break;
        blocks.push_back(*va);
        ASSERT_LT(blocks.size(), 64u) << "allocator never exhausted";
    }
    EXPECT_GE(blocks.size(), 4u);
    // Free everything; a big allocation works again.
    for (Addr va : blocks)
        ASSERT_TRUE(user.memFree(va).isOk());
    EXPECT_TRUE(user.memAlloc(256 * MiB).isOk());
}

TEST_F(FailureTest, UnknownKernelLaunchFailsCleanly)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    EXPECT_FALSE(user.loadModule("no_such_kernel").isOk());
    EXPECT_FALSE(user.launchKernel(12345, {}).isOk());
    // Still usable.
    EXPECT_TRUE(user.memAlloc(4096).isOk());
}

TEST_F(FailureTest, FreeingUnknownAddressFails)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    EXPECT_FALSE(user.memFree(0xdeadbeef000).isOk());
}

TEST_F(FailureTest, UseBeforeConnectRejected)
{
    TrustedRuntime user(&machine_, ge(), "app");
    EXPECT_EQ(user.memAlloc(4096).status().code(),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(user.close().code(), StatusCode::FailedPrecondition);
}

TEST_F(FailureTest, DoubleConnectRejected)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    EXPECT_EQ(user.connect().code(), StatusCode::FailedPrecondition);
}

TEST_F(FailureTest, RequestsAfterCloseFail)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    ASSERT_TRUE(user.close().isOk());
    EXPECT_FALSE(user.memAlloc(4096).isOk());
}

TEST_F(FailureTest, ShutdownWithLiveSessions)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(user.memcpyHtoD(*va, Bytes(64, 0x55)).isOk());

    ASSERT_TRUE(ge()->shutdown().isOk());
    EXPECT_EQ(ge()->sessionCount(), 0u);

    // The user's subsequent requests fail with Unavailable.
    auto r = user.memAlloc(4096);
    EXPECT_EQ(r.status().code(), StatusCode::Unavailable);

    // The GPU returned to the OS clean: a fresh enclave can bind and
    // the old data is gone (device reset scrubbed VRAM).
    auto fresh = GpuEnclave::create(&machine_,
                                    machine_.gpu().factoryBiosDigest());
    EXPECT_TRUE(fresh.isOk()) << fresh.status().toString();
}

TEST_F(FailureTest, SecondShutdownFails)
{
    ASSERT_TRUE(ge()->shutdown().isOk());
    EXPECT_EQ(ge()->shutdown().code(), StatusCode::FailedPrecondition);
}

TEST_F(FailureTest, SessionToWrongSessionIdFails)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    crypto::SealedMessage msg;
    msg.stream = 0;
    msg.sequence = 1;
    msg.body = Bytes(32, 0);
    auto outcome = ge()->request(9999, msg, sim::InvalidOpId);
    EXPECT_EQ(outcome.status().code(), StatusCode::NotFound);
}

TEST_F(FailureTest, ZeroLengthTransferIsHarmless)
{
    TrustedRuntime user(&machine_, ge(), "app");
    ASSERT_TRUE(user.connect().isOk());
    auto va = user.memAlloc(4096);
    ASSERT_TRUE(va.isOk());
    EXPECT_TRUE(user.memcpyHtoD(*va, Bytes{}).isOk());
    auto out = user.memcpyDtoH(*va, 0);
    ASSERT_TRUE(out.isOk());
    EXPECT_TRUE(out->empty());
}

TEST_F(FailureTest, ManySessionsExhaustGracefully)
{
    // Sessions beyond the key-slot count wrap slots; churn through
    // many connect/close cycles to shake out leaks.
    for (int i = 0; i < 20; ++i) {
        TrustedRuntime user(&machine_, ge(),
                            "app" + std::to_string(i));
        ASSERT_TRUE(user.connect().isOk()) << "iteration " << i;
        auto va = user.memAlloc(8192);
        ASSERT_TRUE(va.isOk());
        ASSERT_TRUE(user.memcpyHtoD(*va, Bytes(128, 7)).isOk());
        ASSERT_TRUE(user.close().isOk());
    }
    EXPECT_EQ(ge()->sessionCount(), 0u);
}

}  // namespace
}  // namespace hix::core
