/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.h"

namespace hix::sim
{
namespace
{

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s;
    s.add(1.5);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
    EXPECT_EQ(s.count(), 3u);
    s.reset();
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(StatsTest, DistributionMoments)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.add(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
}

TEST(StatsTest, EmptyDistributionIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(StatsTest, SingleSampleHasZeroStddev)
{
    Distribution d;
    d.add(42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 42.0);
    EXPECT_DOUBLE_EQ(d.max(), 42.0);
}

TEST(StatsTest, GroupDumpContainsNames)
{
    StatGroup g("gpu");
    g.scalar("kernels") += 3;
    g.distribution("copy_bytes").add(1024);
    std::ostringstream oss;
    g.dump(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("gpu.kernels"), std::string::npos);
    EXPECT_NE(out.find("gpu.copy_bytes"), std::string::npos);
}

TEST(StatsTest, GroupReset)
{
    StatGroup g("x");
    g.scalar("a") += 5;
    g.distribution("b").add(1.0);
    g.reset();
    EXPECT_EQ(g.scalar("a").count(), 0u);
    EXPECT_EQ(g.distribution("b").count(), 0u);
}

}  // namespace
}  // namespace hix::sim
