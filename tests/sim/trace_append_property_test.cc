/**
 * @file
 * Property tests for Trace::append() remapping and traceDigest(), the
 * two primitives the sharded multi-user recorder's bit-identity
 * guarantee rests on: randomized source traces (spilled dep lists,
 * colliding label-interning orders, gpuCtx rewrites) must merge with
 * all id/label/dep invariants intact, and the digest must see through
 * representation differences while catching any semantic change.
 * Also pins the TraceRecorder observer-mutation contract (observers
 * added/removed from inside a callback, including during appends).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/trace.h"

namespace hix::sim
{
namespace
{

constexpr ResourceId cpu0{ResUnit::UserCpu, 0};

/**
 * A random trace with the shapes that exercise every append path:
 * dep lists from empty through spilled (> Op::InlineDeps), labels
 * drawn from a small pool so traces intern overlapping sets in
 * different orders, and a mix of GPU-context-tagged and untagged ops.
 */
Trace
randomTrace(Rng &rng, std::size_t n_ops,
            const std::vector<std::string> &label_pool,
            const std::vector<GpuContextId> &ctx_pool)
{
    Trace t;
    for (std::size_t i = 0; i < n_ops; ++i) {
        std::vector<OpId> deps;
        if (i > 0) {
            // Up to 5 deps: beyond InlineDeps (2) spills to the pool.
            const std::size_t want = rng.nextBelow(6);
            for (std::size_t d = 0; d < want; ++d)
                deps.push_back(static_cast<OpId>(rng.nextBelow(i)));
        }
        const std::string &label =
            label_pool[rng.nextBelow(label_pool.size())];
        const GpuContextId ctx =
            rng.nextBelow(2) == 0
                ? NoGpuContext
                : ctx_pool[rng.nextBelow(ctx_pool.size())];
        const ResourceId res{
            rng.nextBelow(2) == 0 ? ResUnit::UserCpu
                                  : ResUnit::GpuCompute,
            static_cast<std::uint16_t>(rng.nextBelow(3))};
        t.add(res, rng.nextBelow(1000), deps,
              static_cast<OpKind>(rng.nextBelow(OpKindCount)),
              rng.nextBelow(1 << 20), label, ctx);
    }
    return t;
}

std::vector<std::string>
labelPool()
{
    return {"", "h2d_encrypt", "d2h_decrypt", "submit", "kernel",
            "gdev_task_init", "chunk_h2d"};
}

TEST(TraceAppendProperty, AppendPreservesEveryOpUnderRemap)
{
    Rng rng(0x5eed0001);
    for (int iter = 0; iter < 50; ++iter) {
        const std::vector<GpuContextId> ctxs = {7, 42, 0x10000};
        Trace src = randomTrace(rng, 1 + rng.nextBelow(120),
                                labelPool(), ctxs);

        // A destination that already interned some labels in a
        // different order and holds prior ops (nonzero id offset).
        Trace dst = randomTrace(rng, 1 + rng.nextBelow(40),
                                {"d2h_decrypt", "unrelated", ""},
                                {3});
        const std::size_t dst_before = dst.size();

        Trace::AppendRemap remap;
        remap.gpuCtx = {{7, 100}, {0x10000, 0}};
        const OpId offset = dst.append(src, remap);
        ASSERT_EQ(offset, dst_before);
        ASSERT_EQ(dst.size(), dst_before + src.size());

        for (std::size_t i = 0; i < src.size(); ++i) {
            const Op &s = src.op(static_cast<OpId>(i));
            const Op &d = dst.op(static_cast<OpId>(i) + offset);
            // Identity: id shifted by exactly the offset.
            EXPECT_EQ(d.id, s.id + offset);
            // Value fields unchanged.
            EXPECT_EQ(d.resource, s.resource);
            EXPECT_EQ(d.duration, s.duration);
            EXPECT_EQ(d.bytes, s.bytes);
            EXPECT_EQ(d.kind, s.kind);
            // Context rewritten through the remap table only.
            EXPECT_EQ(d.gpuCtx, s.gpuCtx == NoGpuContext
                                    ? NoGpuContext
                                    : remap.mapCtx(s.gpuCtx));
            // Labels resolve to the same string through new ids.
            EXPECT_EQ(dst.labelOf(d), src.labelOf(s));
            // Deps (inline or spilled) shifted, order preserved.
            const auto sd = src.deps(s);
            const auto dd = dst.deps(d);
            ASSERT_EQ(dd.size(), sd.size());
            for (std::size_t k = 0; k < sd.size(); ++k)
                EXPECT_EQ(dd[k], sd[k] + offset);
        }
    }
}

TEST(TraceAppendProperty, AppendedDepsNeverReachOutsideTheirShard)
{
    // Merged multi-user traces must keep user DAGs disjoint: no
    // appended op may depend on an op of the destination prefix.
    Rng rng(0x5eed0002);
    for (int iter = 0; iter < 20; ++iter) {
        Trace a = randomTrace(rng, 1 + rng.nextBelow(60), labelPool(),
                              {1});
        Trace b = randomTrace(rng, 1 + rng.nextBelow(60), labelPool(),
                              {2});
        Trace merged;
        merged.append(a);
        const OpId off = merged.append(b);
        for (std::size_t i = off; i < merged.size(); ++i)
            for (OpId d : merged.deps(static_cast<OpId>(i)))
                EXPECT_GE(d, off);
    }
}

TEST(TraceAppendProperty, DigestIgnoresLabelInterningOrder)
{
    // Same ops, labels interned in opposite orders (different
    // LabelIds): the digest must agree, because it hashes resolved
    // strings.
    Trace a;
    a.internLabel("alpha");
    a.internLabel("beta");
    a.add(cpu0, 5, {}, OpKind::Control, 0, "beta");
    a.add(cpu0, 6, {0}, OpKind::Control, 0, "alpha");

    Trace b;
    b.internLabel("beta");
    b.internLabel("alpha");
    b.add(cpu0, 5, {}, OpKind::Control, 0, "beta");
    b.add(cpu0, 6, {0}, OpKind::Control, 0, "alpha");

    ASSERT_NE(a.op(0).label, b.op(0).label);  // representations differ
    EXPECT_EQ(traceDigest(a), traceDigest(b));
}

TEST(TraceAppendProperty, DigestIsInvariantUnderAppendRoundTrip)
{
    // Appending a trace into an empty destination (identity remap)
    // re-interns labels and re-bases spilled pools, but the digest
    // must not change.
    Rng rng(0x5eed0003);
    for (int iter = 0; iter < 30; ++iter) {
        Trace src = randomTrace(rng, 1 + rng.nextBelow(100),
                                labelPool(), {5, 9});
        Trace copy;
        copy.internLabel("unrelated_first_label");
        copy.append(src);
        EXPECT_EQ(traceDigest(src), traceDigest(copy));
    }
}

TEST(TraceAppendProperty, DigestSeesEverySemanticField)
{
    Trace base;
    base.add(cpu0, 5, {}, OpKind::Control, 10, "x", 3);
    base.add(cpu0, 6, {0}, OpKind::Control, 0, "y", NoGpuContext);
    const std::uint64_t d0 = traceDigest(base);

    {
        Trace t;  // duration changed
        t.add(cpu0, 7, {}, OpKind::Control, 10, "x", 3);
        t.add(cpu0, 6, {0}, OpKind::Control, 0, "y", NoGpuContext);
        EXPECT_NE(traceDigest(t), d0);
    }
    {
        Trace t;  // gpuCtx changed
        t.add(cpu0, 5, {}, OpKind::Control, 10, "x", 4);
        t.add(cpu0, 6, {0}, OpKind::Control, 0, "y", NoGpuContext);
        EXPECT_NE(traceDigest(t), d0);
    }
    {
        Trace t;  // dep dropped
        t.add(cpu0, 5, {}, OpKind::Control, 10, "x", 3);
        t.add(cpu0, 6, {}, OpKind::Control, 0, "y", NoGpuContext);
        EXPECT_NE(traceDigest(t), d0);
    }
    {
        Trace t;  // label changed
        t.add(cpu0, 5, {}, OpKind::Control, 10, "x", 3);
        t.add(cpu0, 6, {0}, OpKind::Control, 0, "z", NoGpuContext);
        EXPECT_NE(traceDigest(t), d0);
    }
    {
        Trace t;  // resource index changed
        t.add(ResourceId{ResUnit::UserCpu, 1}, 5, {}, OpKind::Control,
              10, "x", 3);
        t.add(cpu0, 6, {0}, OpKind::Control, 0, "y", NoGpuContext);
        EXPECT_NE(traceDigest(t), d0);
    }
}

TEST(TraceAppendProperty, AppendDoesNotFireRecorderObservers)
{
    // append() is a bulk merge of already-recorded execution, not a
    // recording event: observers watch record()/recordDetached() only.
    Trace t;
    TraceRecorder rec(&t);
    int fired = 0;
    rec.addObserver([&](const Op &, const std::string &) { ++fired; });
    rec.record(0, cpu0, 1, OpKind::Control);
    ASSERT_EQ(fired, 1);

    Trace other;
    other.add(cpu0, 2, {}, OpKind::Control, 0, "merged");
    t.append(other);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(t.size(), 2u);
}

TEST(TraceObserverContract, ObserverAddedMidNotificationFiresNextOp)
{
    Trace t;
    TraceRecorder rec(&t);
    std::vector<std::string> outer_seen, inner_seen;
    rec.addObserver([&](const Op &, const std::string &label) {
        outer_seen.push_back(label);
        if (outer_seen.size() == 1) {
            rec.addObserver(
                [&](const Op &, const std::string &inner_label) {
                    inner_seen.push_back(inner_label);
                });
        }
    });
    rec.record(0, cpu0, 1, OpKind::Control, 0, "first");
    rec.record(0, cpu0, 1, OpKind::Control, 0, "second");

    // The inner observer was registered while "first" was being
    // notified: it must not see "first", only later ops.
    ASSERT_EQ(outer_seen.size(), 2u);
    ASSERT_EQ(inner_seen.size(), 1u);
    EXPECT_EQ(inner_seen[0], "second");
}

TEST(TraceObserverContract, ObserverMayRemoveItselfMidNotification)
{
    Trace t;
    TraceRecorder rec(&t);
    int once_fired = 0, steady_fired = 0;
    int once_handle = -1;
    once_handle = rec.addObserver([&](const Op &, const std::string &) {
        ++once_fired;
        rec.removeObserver(once_handle);
    });
    rec.addObserver(
        [&](const Op &, const std::string &) { ++steady_fired; });

    rec.record(0, cpu0, 1, OpKind::Control);
    rec.record(0, cpu0, 1, OpKind::Control);

    EXPECT_EQ(once_fired, 1);
    // The steady observer still fires for both ops, including the one
    // during which its predecessor unregistered.
    EXPECT_EQ(steady_fired, 2);
}

TEST(TraceObserverContract, ObserverMayRemoveALaterObserver)
{
    Trace t;
    TraceRecorder rec(&t);
    int victim_fired = 0;
    int victim_handle = -1;
    rec.addObserver([&](const Op &, const std::string &) {
        if (victim_handle >= 0) {
            rec.removeObserver(victim_handle);
            victim_handle = -1;
        }
    });
    victim_handle = rec.addObserver(
        [&](const Op &, const std::string &) { ++victim_fired; });

    rec.record(0, cpu0, 1, OpKind::Control);
    // The first observer removed the victim before its turn in the
    // same notification round: a removed observer never fires late.
    EXPECT_EQ(victim_fired, 0);
}

TEST(TraceObserverContract, LabelResolvedEvenAfterObserverMutatesTrace)
{
    // Observers get the label by value: even if the callback grows
    // the trace (reallocating the interned-label table through code
    // it calls), the string it was handed stays valid and correct.
    Trace t;
    TraceRecorder rec(&t);
    std::vector<std::string> seen;
    rec.addObserver([&](const Op &, const std::string &label) {
        seen.push_back(label);
        if (seen.size() == 1)
            for (int i = 0; i < 64; ++i)
                t.add(cpu0, 1, {}, OpKind::Control, 0,
                      "filler" + std::to_string(i));
    });
    rec.record(0, cpu0, 1, OpKind::Control, 0, "watched");
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], "watched");
}

}  // namespace
}  // namespace hix::sim
