/**
 * @file
 * Property-based tests of the list scheduler: for randomized op DAGs
 * the schedule must respect dependencies, never overlap two ops on
 * one resource, account context switches consistently, and report a
 * makespan equal to the latest finish.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/scheduler.h"

namespace hix::sim
{
namespace
{

struct PropertyCase
{
    std::uint64_t seed;
    std::size_t ops;
    int resources;
    int contexts;  //!< 0 = no GPU ops
};

Trace
randomTrace(const PropertyCase &param)
{
    Rng rng(param.seed);
    Trace trace;
    for (std::size_t i = 0; i < param.ops; ++i) {
        ResourceId res;
        GpuContextId ctx = NoGpuContext;
        const int pick = static_cast<int>(rng.nextBelow(3));
        if (pick == 0 || param.contexts == 0) {
            res = ResourceId{ResUnit::UserCpu,
                             static_cast<std::uint16_t>(
                                 rng.nextBelow(param.resources))};
        } else if (pick == 1) {
            res = ResourceId{ResUnit::DmaHtoD, 0};
        } else {
            res = ResourceId{ResUnit::GpuCompute, 0};
            ctx = static_cast<GpuContextId>(
                rng.nextBelow(param.contexts));
        }
        // Up to 3 random backward dependencies.
        std::vector<OpId> deps;
        if (i > 0) {
            for (int d = 0; d < 3; ++d)
                if (rng.nextBelow(2) == 0)
                    deps.push_back(
                        static_cast<OpId>(rng.nextBelow(i)));
        }
        trace.add(res, 1 + rng.nextBelow(1000), deps,
                  OpKind::Control, 0, "", ctx);
    }
    return trace;
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(SchedulerPropertyTest, ScheduleInvariantsHold)
{
    const PropertyCase param = GetParam();
    Trace trace = randomTrace(param);
    SchedulerConfig config;
    config.gpuCtxSwitchTicks = 50;
    auto result = schedule(trace, config);

    // The optimized engine must agree with the reference engine on
    // every random DAG, bit for bit.
    auto reference = scheduleReference(trace, config);
    EXPECT_EQ(result.start, reference.start);
    EXPECT_EQ(result.finish, reference.finish);
    EXPECT_EQ(result.makespan, reference.makespan);
    EXPECT_EQ(result.gpuCtxSwitches, reference.gpuCtxSwitches);

    Tick max_finish = 0;
    std::uint64_t observed_switches = 0;

    // Per-resource sorted intervals.
    std::map<ResourceId, std::vector<std::pair<Tick, Tick>>> busy;
    std::map<ResourceId, std::vector<std::pair<Tick, GpuContextId>>>
        gpu_ops;

    for (const Op &op : trace.ops()) {
        const Tick start = result.start[op.id];
        const Tick finish = result.finish[op.id];
        // Duration accounted (switch cost may pad the start).
        EXPECT_EQ(finish - start, op.duration);
        max_finish = std::max(max_finish, finish);

        // Dependencies respected.
        for (OpId dep : trace.deps(op))
            EXPECT_GE(start, result.finish[dep])
                << "op " << op.id << " started before dep " << dep;

        busy[op.resource].emplace_back(start, finish);
        if (op.resource.unit == ResUnit::GpuCompute &&
            op.gpuCtx != NoGpuContext)
            gpu_ops[op.resource].emplace_back(start, op.gpuCtx);
    }

    EXPECT_EQ(result.makespan, max_finish);

    // Resource exclusivity: sort by start; no interval overlaps the
    // previous one.
    for (auto &[res, intervals] : busy) {
        std::sort(intervals.begin(), intervals.end());
        for (std::size_t i = 1; i < intervals.size(); ++i) {
            EXPECT_GE(intervals[i].first, intervals[i - 1].second)
                << "overlap on " << res.toString();
        }
    }

    // Context-switch accounting matches the executed order.
    for (auto &[res, ops] : gpu_ops) {
        std::sort(ops.begin(), ops.end());
        GpuContextId last = NoGpuContext;
        for (const auto &[start, ctx] : ops) {
            if (last != NoGpuContext && ctx != last)
                ++observed_switches;
            last = ctx;
        }
    }
    EXPECT_EQ(result.gpuCtxSwitches, observed_switches);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, SchedulerPropertyTest,
    ::testing::Values(PropertyCase{1, 50, 2, 0},
                      PropertyCase{2, 200, 3, 2},
                      PropertyCase{3, 500, 4, 4},
                      PropertyCase{4, 1000, 2, 3},
                      PropertyCase{5, 100, 1, 1},
                      PropertyCase{6, 800, 8, 8},
                      PropertyCase{7, 300, 2, 2},
                      PropertyCase{8, 64, 5, 0}),
    [](const ::testing::TestParamInfo<PropertyCase> &info) {
        return "seed" + std::to_string(info.param.seed) + "_ops" +
               std::to_string(info.param.ops);
    });

}  // namespace
}  // namespace hix::sim
