/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace hix::sim
{
namespace
{

TEST(EventQueueTest, StartsAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 30u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickFiresInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    EXPECT_EQ(q.run(), 15u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(50), 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.curTick(), 100u);
}

TEST(EventQueueTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

}  // namespace
}  // namespace hix::sim
