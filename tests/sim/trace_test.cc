/**
 * @file
 * Unit tests for the op-DAG trace and the program-order recorder:
 * id assignment, dependency storage (inline and spilled), label
 * interning, merge remapping, and observer notification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace hix::sim
{
namespace
{

constexpr ResourceId cpu0{ResUnit::UserCpu, 0};
constexpr ResourceId dma{ResUnit::DmaHtoD, 0};

TEST(TraceTest, AddAssignsSequentialIds)
{
    Trace t;
    EXPECT_EQ(t.add(cpu0, 10, {}, OpKind::Control), 0u);
    EXPECT_EQ(t.add(cpu0, 10, {0}, OpKind::Control), 1u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.lastOp(), 1u);
}

TEST(TraceTest, InvalidDepsAreDropped)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {InvalidOpId}, OpKind::Control);
    EXPECT_TRUE(t.deps(a).empty());
}

TEST(TraceTest, ForwardDependencyPanics)
{
    Trace t;
    t.add(cpu0, 10, {}, OpKind::Control);
    EXPECT_DEATH(t.add(cpu0, 10, {5}, OpKind::Control), "forward");
}

TEST(TraceTest, DepsSpillToPoolBeyondInlineCapacity)
{
    Trace t;
    OpId a = t.add(cpu0, 1, {}, OpKind::Control);
    OpId b = t.add(cpu0, 1, {}, OpKind::Control);
    OpId c = t.add(cpu0, 1, {}, OpKind::Control);
    OpId d = t.add(cpu0, 1, {a, b}, OpKind::Control);
    OpId e = t.add(cpu0, 1, {a, b, c}, OpKind::Control);

    ASSERT_EQ(t.deps(d).size(), Op::InlineDeps);
    EXPECT_EQ(t.deps(d)[0], a);
    EXPECT_EQ(t.deps(d)[1], b);

    ASSERT_EQ(t.deps(e).size(), 3u);
    EXPECT_EQ(t.deps(e)[0], a);
    EXPECT_EQ(t.deps(e)[1], b);
    EXPECT_EQ(t.deps(e)[2], c);
}

TEST(TraceTest, LabelsAreInternedPerTrace)
{
    Trace t;
    OpId a = t.add(cpu0, 1, {}, OpKind::Control, 0, "h2d_encrypt");
    OpId b = t.add(cpu0, 1, {}, OpKind::Control, 0, "h2d_encrypt");
    OpId c = t.add(cpu0, 1, {}, OpKind::Control, 0, "d2h_decrypt");
    OpId plain = t.add(cpu0, 1, {}, OpKind::Control);

    EXPECT_EQ(t.op(a).label, t.op(b).label);
    EXPECT_NE(t.op(a).label, t.op(c).label);
    EXPECT_EQ(t.op(plain).label, NoLabel);
    EXPECT_EQ(t.labelOf(t.op(a)), "h2d_encrypt");
    EXPECT_EQ(t.labelOf(t.op(c)), "d2h_decrypt");
    EXPECT_EQ(t.labelOf(t.op(plain)), "");
    // "", "h2d_encrypt", "d2h_decrypt"
    EXPECT_EQ(t.labelCount(), 3u);
}

TEST(TraceTest, ClearKeepsInternedLabels)
{
    Trace t;
    OpId a = t.add(cpu0, 1, {}, OpKind::Control, 0, "marker");
    const LabelId before = t.op(a).label;
    t.clear();
    EXPECT_TRUE(t.empty());
    OpId b = t.add(cpu0, 1, {}, OpKind::Control, 0, "marker");
    EXPECT_EQ(t.op(b).label, before);
}

TEST(TraceTest, TotalsByKind)
{
    Trace t;
    t.add(cpu0, 10, {}, OpKind::CryptoCpu, 100);
    t.add(dma, 20, {}, OpKind::Transfer, 200);
    t.add(dma, 30, {}, OpKind::Transfer, 300);
    EXPECT_EQ(t.totalDuration(OpKind::Transfer), 50u);
    EXPECT_EQ(t.totalBytes(OpKind::Transfer), 500u);
    EXPECT_EQ(t.totalDuration(OpKind::CryptoCpu), 10u);
    EXPECT_EQ(t.totalDuration(OpKind::Compute), 0u);
}

TEST(TraceTest, AppendRemapsIds)
{
    Trace a;
    a.add(cpu0, 10, {}, OpKind::Control);

    Trace b;
    OpId b0 = b.add(cpu0, 5, {}, OpKind::Control);
    b.add(dma, 7, {b0}, OpKind::Transfer);

    OpId offset = a.append(b);
    EXPECT_EQ(offset, 1u);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.deps(2)[0], 1u);
}

TEST(TraceTest, AppendRemapsSpilledDepsAndLabels)
{
    Trace a;
    a.add(cpu0, 1, {}, OpKind::Control, 0, "only_in_a");

    Trace b;
    OpId b0 = b.add(cpu0, 1, {}, OpKind::Control, 0, "shared");
    OpId b1 = b.add(cpu0, 1, {}, OpKind::Control);
    OpId b2 = b.add(cpu0, 1, {}, OpKind::Control);
    OpId b3 = b.add(dma, 1, {b0, b1, b2}, OpKind::Transfer, 0,
                    "only_in_b");

    Trace merged;
    merged.add(cpu0, 1, {}, OpKind::Control, 0, "shared");
    const OpId off = merged.append(b);
    ASSERT_EQ(merged.size(), 5u);

    // Spilled dep list rebased by the merge offset.
    const Op &m3 = merged.op(b3 + off);
    ASSERT_EQ(merged.deps(m3).size(), 3u);
    EXPECT_EQ(merged.deps(m3)[0], b0 + off);
    EXPECT_EQ(merged.deps(m3)[1], b1 + off);
    EXPECT_EQ(merged.deps(m3)[2], b2 + off);

    // Labels re-interned into the destination table: the shared label
    // collapses to one id, the new one resolves to its string.
    EXPECT_EQ(merged.op(0).label, merged.op(b0 + off).label);
    EXPECT_EQ(merged.labelOf(m3), "only_in_b");
}

TEST(TraceRecorderTest, DisabledRecorderDropsOps)
{
    TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    EXPECT_EQ(rec.record(0, cpu0, 10, OpKind::Control), InvalidOpId);
}

TEST(TraceRecorderTest, ProgramOrderChainsPerActor)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId b0 = rec.record(1, cpu0, 10, OpKind::Control);
    OpId a1 = rec.record(0, cpu0, 10, OpKind::Control);

    EXPECT_TRUE(t.deps(a0).empty());
    EXPECT_TRUE(t.deps(b0).empty());
    ASSERT_EQ(t.deps(a1).size(), 1u);
    EXPECT_EQ(t.deps(a1)[0], a0);
    EXPECT_EQ(rec.chainTail(0), a1);
    EXPECT_EQ(rec.chainTail(1), b0);
}

TEST(TraceComponentsTest, DisjointAppendedShardsStayDisjoint)
{
    // Per-user shards that never share a resource (the parallel
    // recorder's per-user traces) must map to distinct components
    // after append(), numbered in first-appearance op order.
    Trace a;
    a.add(cpu0, 10, {}, OpKind::Control);
    a.add(cpu0, 10, {0}, OpKind::Control);
    Trace b;
    const ResourceId cpu1{ResUnit::UserCpu, 1};
    b.add(cpu1, 10, {}, OpKind::Control);
    b.add(cpu1, 10, {0}, OpKind::Control);

    Trace merged;
    merged.append(a);
    merged.append(b);
    const Trace::Components comps = merged.components();
    EXPECT_EQ(comps.count, 2u);
    ASSERT_EQ(comps.opComponent.size(), 4u);
    EXPECT_EQ(comps.opComponent[0], 0u);
    EXPECT_EQ(comps.opComponent[1], 0u);
    EXPECT_EQ(comps.opComponent[2], 1u);
    EXPECT_EQ(comps.opComponent[3], 1u);
    // Per-component op counts, indexed by component id (the streaming
    // scheduler sizes its member lists from these).
    ASSERT_EQ(comps.sizes.size(), 2u);
    EXPECT_EQ(comps.sizes[0], 2u);
    EXPECT_EQ(comps.sizes[1], 2u);
}

TEST(TraceComponentsTest, CrossShardDependencyAfterMergeUnifies)
{
    // Regression pin for streaming: shards merge with disjoint
    // resources (two components), then a dependency injected *after*
    // the merge bridges them — components() must see one connected
    // component, sized to the whole trace. The streaming join relies
    // on this to catch cross-shard edges that did not exist at intake.
    Trace a;
    a.add(cpu0, 10, {}, OpKind::Control);
    a.add(cpu0, 10, {0}, OpKind::Control);
    Trace b;
    const ResourceId cpu1{ResUnit::UserCpu, 1};
    b.add(cpu1, 10, {}, OpKind::Control);
    b.add(cpu1, 10, {0}, OpKind::Control);

    Trace merged;
    merged.append(a);
    const OpId off = merged.append(b);
    ASSERT_EQ(merged.components().count, 2u);

    // Op off (shard b's first op) now also depends on op 1 (shard a).
    const OpId bridge[] = {OpId(1)};
    merged.overwriteDepsForTest(off, bridge);
    const Trace::Components comps = merged.components();
    EXPECT_EQ(comps.count, 1u);
    ASSERT_EQ(comps.sizes.size(), 1u);
    EXPECT_EQ(comps.sizes[0], merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(comps.opComponent[i], 0u);
}

TEST(TraceComponentsTest, CrossResourceDependencyMergesComponents)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {}, OpKind::Control);
    t.add(dma, 10, {a}, OpKind::Transfer);  // links cpu0 and dma
    const ResourceId cpu1{ResUnit::UserCpu, 1};
    t.add(cpu1, 10, {}, OpKind::Control);   // independent

    const Trace::Components comps = t.components();
    EXPECT_EQ(comps.count, 2u);
    EXPECT_EQ(comps.opComponent[0], comps.opComponent[1]);
    EXPECT_NE(comps.opComponent[0], comps.opComponent[2]);
}

TEST(TraceComponentsTest, EmptyTraceHasNoComponents)
{
    Trace t;
    const Trace::Components comps = t.components();
    EXPECT_EQ(comps.count, 0u);
    EXPECT_TRUE(comps.opComponent.empty());
}

TEST(TraceRecorderTest, DetachedOpsDoNotMoveChain)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId d = rec.recordDetached(dma, 20, OpKind::Transfer, {a0});
    EXPECT_EQ(rec.chainTail(0), a0);
    rec.setChainTail(0, d);
    EXPECT_EQ(rec.chainTail(0), d);
}

TEST(TraceRecorderTest, ExtraDepsAreMerged)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId b0 = rec.record(1, cpu0, 10, OpKind::Control);
    OpId a1 = rec.record(0, cpu0, 10, OpKind::Control, 0, "join",
                         NoGpuContext, {b0});
    const auto deps = t.deps(a1);
    EXPECT_EQ(deps.size(), 2u);
    EXPECT_NE(std::find(deps.begin(), deps.end(), a0), deps.end());
    EXPECT_NE(std::find(deps.begin(), deps.end(), b0), deps.end());
}

TEST(TraceRecorderTest, ObserverSeesResolvedLabel)
{
    Trace t;
    TraceRecorder rec(&t);
    std::vector<std::string> seen;
    const int handle = rec.addObserver(
        [&seen](const Op &op, const std::string &label) {
            (void)op;
            seen.push_back(label);
        });
    rec.record(0, cpu0, 10, OpKind::Control, 0, "first");
    rec.record(0, cpu0, 10, OpKind::Control);
    rec.removeObserver(handle);
    rec.record(0, cpu0, 10, OpKind::Control, 0, "after_remove");
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "first");
    EXPECT_EQ(seen[1], "");
}

}  // namespace
}  // namespace hix::sim
