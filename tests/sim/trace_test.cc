/**
 * @file
 * Unit tests for the op-DAG trace and the program-order recorder.
 */

#include <gtest/gtest.h>

#include "sim/trace.h"

namespace hix::sim
{
namespace
{

constexpr ResourceId cpu0{ResUnit::UserCpu, 0};
constexpr ResourceId dma{ResUnit::DmaHtoD, 0};

TEST(TraceTest, AddAssignsSequentialIds)
{
    Trace t;
    EXPECT_EQ(t.add(cpu0, 10, {}, OpKind::Control), 0u);
    EXPECT_EQ(t.add(cpu0, 10, {0}, OpKind::Control), 1u);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.lastOp(), 1u);
}

TEST(TraceTest, InvalidDepsAreDropped)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {InvalidOpId}, OpKind::Control);
    EXPECT_TRUE(t.op(a).deps.empty());
}

TEST(TraceTest, ForwardDependencyPanics)
{
    Trace t;
    t.add(cpu0, 10, {}, OpKind::Control);
    EXPECT_DEATH(t.add(cpu0, 10, {5}, OpKind::Control), "forward");
}

TEST(TraceTest, TotalsByKind)
{
    Trace t;
    t.add(cpu0, 10, {}, OpKind::CryptoCpu, 100);
    t.add(dma, 20, {}, OpKind::Transfer, 200);
    t.add(dma, 30, {}, OpKind::Transfer, 300);
    EXPECT_EQ(t.totalDuration(OpKind::Transfer), 50u);
    EXPECT_EQ(t.totalBytes(OpKind::Transfer), 500u);
    EXPECT_EQ(t.totalDuration(OpKind::CryptoCpu), 10u);
    EXPECT_EQ(t.totalDuration(OpKind::Compute), 0u);
}

TEST(TraceTest, AppendRemapsIds)
{
    Trace a;
    a.add(cpu0, 10, {}, OpKind::Control);

    Trace b;
    OpId b0 = b.add(cpu0, 5, {}, OpKind::Control);
    b.add(dma, 7, {b0}, OpKind::Transfer);

    OpId offset = a.append(b);
    EXPECT_EQ(offset, 1u);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.op(2).deps.at(0), 1u);
}

TEST(TraceRecorderTest, DisabledRecorderDropsOps)
{
    TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    EXPECT_EQ(rec.record(0, cpu0, 10, OpKind::Control), InvalidOpId);
}

TEST(TraceRecorderTest, ProgramOrderChainsPerActor)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId b0 = rec.record(1, cpu0, 10, OpKind::Control);
    OpId a1 = rec.record(0, cpu0, 10, OpKind::Control);

    EXPECT_TRUE(t.op(a0).deps.empty());
    EXPECT_TRUE(t.op(b0).deps.empty());
    ASSERT_EQ(t.op(a1).deps.size(), 1u);
    EXPECT_EQ(t.op(a1).deps[0], a0);
    EXPECT_EQ(rec.chainTail(0), a1);
    EXPECT_EQ(rec.chainTail(1), b0);
}

TEST(TraceRecorderTest, DetachedOpsDoNotMoveChain)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId d = rec.recordDetached(dma, 20, OpKind::Transfer, {a0});
    EXPECT_EQ(rec.chainTail(0), a0);
    rec.setChainTail(0, d);
    EXPECT_EQ(rec.chainTail(0), d);
}

TEST(TraceRecorderTest, ExtraDepsAreMerged)
{
    Trace t;
    TraceRecorder rec(&t);
    OpId a0 = rec.record(0, cpu0, 10, OpKind::Control);
    OpId b0 = rec.record(1, cpu0, 10, OpKind::Control);
    OpId a1 = rec.record(0, cpu0, 10, OpKind::Control, 0, "join",
                         NoGpuContext, {b0});
    const auto &deps = t.op(a1).deps;
    EXPECT_EQ(deps.size(), 2u);
    EXPECT_NE(std::find(deps.begin(), deps.end(), a0), deps.end());
    EXPECT_NE(std::find(deps.begin(), deps.end(), b0), deps.end());
}

}  // namespace
}  // namespace hix::sim
