/**
 * @file
 * Tests for the Chrome trace-event exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace_export.h"

namespace hix::sim
{
namespace
{

TEST(TraceExportTest, EmitsWellFormedSkeleton)
{
    Trace t;
    OpId a = t.add(ResourceId{ResUnit::UserCpu, 0}, 1000, {},
                   OpKind::CryptoCpu, 64, "encrypt");
    t.add(ResourceId{ResUnit::DmaHtoD, 0}, 2000, {a},
          OpKind::Transfer, 64, "dma", 3);
    auto schedule = hix::sim::schedule(t);

    std::ostringstream oss;
    exportChromeTrace(t, schedule, oss);
    const std::string out = oss.str();

    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("encrypt"), std::string::npos);
    EXPECT_NE(out.find("dma_htod[0]"), std::string::npos);
    EXPECT_NE(out.find("\"gpu_ctx\":3"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    int depth = 0;
    for (char c : out) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(TraceExportTest, EscapesLabels)
{
    Trace t;
    t.add(ResourceId{ResUnit::UserCpu, 0}, 10, {}, OpKind::Control, 0,
          "we\"ird\\label");
    auto schedule = hix::sim::schedule(t);
    std::ostringstream oss;
    exportChromeTrace(t, schedule, oss);
    EXPECT_NE(oss.str().find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(TraceExportTest, EmptyTrace)
{
    Trace t;
    auto schedule = hix::sim::schedule(t);
    std::ostringstream oss;
    exportChromeTrace(t, schedule, oss);
    EXPECT_EQ(oss.str(), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace hix::sim
