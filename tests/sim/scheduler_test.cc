/**
 * @file
 * Unit tests for the list scheduler: serialization on resources,
 * dependency respect, pipelining overlap, and GPU context-switch
 * accounting.
 */

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace hix::sim
{
namespace
{

constexpr ResourceId cpu0{ResUnit::UserCpu, 0};
constexpr ResourceId cpu1{ResUnit::UserCpu, 1};
constexpr ResourceId dma{ResUnit::DmaHtoD, 0};
constexpr ResourceId gpu{ResUnit::GpuCompute, 0};

TEST(SchedulerTest, EmptyTrace)
{
    Trace t;
    auto res = schedule(t);
    EXPECT_EQ(res.makespan, 0u);
}

TEST(SchedulerTest, SequentialChainAccumulates)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {}, OpKind::Control);
    OpId b = t.add(cpu0, 20, {a}, OpKind::Control);
    auto res = schedule(t);
    EXPECT_EQ(res.start[a], 0u);
    EXPECT_EQ(res.finish[a], 10u);
    EXPECT_EQ(res.start[b], 10u);
    EXPECT_EQ(res.makespan, 30u);
}

TEST(SchedulerTest, IndependentOpsOnDifferentResourcesOverlap)
{
    Trace t;
    t.add(cpu0, 100, {}, OpKind::CryptoCpu);
    t.add(cpu1, 100, {}, OpKind::CryptoCpu);
    auto res = schedule(t);
    EXPECT_EQ(res.makespan, 100u);
}

TEST(SchedulerTest, SameResourceSerializes)
{
    Trace t;
    t.add(dma, 100, {}, OpKind::Transfer);
    t.add(dma, 100, {}, OpKind::Transfer);
    auto res = schedule(t);
    EXPECT_EQ(res.makespan, 200u);
    EXPECT_EQ(res.usage.at(dma).busy, 200u);
    EXPECT_EQ(res.usage.at(dma).ops, 2u);
}

TEST(SchedulerTest, PipelinedChunksOverlapCryptoAndTransfer)
{
    // Four chunks: encrypt chunk i (cpu, 100) -> transfer chunk i
    // (dma, 50). Encryption is the bottleneck; the schedule should be
    // 4*100 + 50, not 4*(100+50).
    Trace t;
    OpId prev_enc = InvalidOpId;
    OpId last_xfer = InvalidOpId;
    for (int i = 0; i < 4; ++i) {
        std::vector<OpId> enc_deps;
        if (prev_enc != InvalidOpId)
            enc_deps.push_back(prev_enc);
        OpId enc = t.add(cpu0, 100, enc_deps, OpKind::CryptoCpu);
        last_xfer = t.add(dma, 50, {enc}, OpKind::Transfer);
        prev_enc = enc;
    }
    auto res = schedule(t);
    EXPECT_EQ(res.finishOf(last_xfer), 450u);
}

TEST(SchedulerTest, TransferBoundPipeline)
{
    // Transfer is the bottleneck: encrypt 20, transfer 100.
    Trace t;
    OpId prev_enc = InvalidOpId;
    OpId prev_xfer = InvalidOpId;
    for (int i = 0; i < 3; ++i) {
        std::vector<OpId> enc_deps;
        if (prev_enc != InvalidOpId)
            enc_deps.push_back(prev_enc);
        OpId enc = t.add(cpu0, 20, enc_deps, OpKind::CryptoCpu);
        prev_xfer = t.add(dma, 100, {enc}, OpKind::Transfer);
        prev_enc = enc;
    }
    auto res = schedule(t);
    // First transfer starts at 20; transfers then run back-to-back.
    EXPECT_EQ(res.finishOf(prev_xfer), 320u);
}

TEST(SchedulerTest, ContextSwitchChargedOnGpuComputeOnly)
{
    SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 7;

    Trace t;
    OpId a = t.add(gpu, 10, {}, OpKind::Compute, 0, "ctx0", 0);
    OpId b = t.add(gpu, 10, {a}, OpKind::Compute, 0, "ctx1", 1);
    OpId c = t.add(gpu, 10, {b}, OpKind::Compute, 0, "ctx1 again", 1);
    auto res = schedule(t, cfg);
    EXPECT_EQ(res.start[a], 0u);
    // One switch (0 -> 1) before b, none before c.
    EXPECT_EQ(res.start[b], 17u);
    EXPECT_EQ(res.start[c], 27u);
    EXPECT_EQ(res.gpuCtxSwitches, 1u);
}

TEST(SchedulerTest, PrefersResidentContextWhenBothReady)
{
    SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;

    // Two independent kernels per context, all ready at time 0.
    Trace t;
    t.add(gpu, 10, {}, OpKind::Compute, 0, "a0", 0);
    t.add(gpu, 10, {}, OpKind::Compute, 0, "b0", 1);
    t.add(gpu, 10, {}, OpKind::Compute, 0, "a1", 0);
    t.add(gpu, 10, {}, OpKind::Compute, 0, "b1", 1);
    auto res = schedule(t, cfg);
    // The engine should group per context: one switch total.
    EXPECT_EQ(res.gpuCtxSwitches, 1u);
    EXPECT_EQ(res.makespan, 90u);
}

TEST(SchedulerTest, NoSwitchChargeForNoContextOps)
{
    SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;
    Trace t;
    OpId a = t.add(gpu, 10, {}, OpKind::Compute, 0, "ctx0", 0);
    OpId b = t.add(gpu, 10, {a}, OpKind::CryptoGpu, 0, "noctx");
    auto res = schedule(t, cfg);
    EXPECT_EQ(res.start[b], 10u);
    EXPECT_EQ(res.gpuCtxSwitches, 0u);
}

TEST(SchedulerTest, KindBusyAggregates)
{
    Trace t;
    t.add(cpu0, 10, {}, OpKind::CryptoCpu);
    t.add(dma, 30, {}, OpKind::Transfer);
    t.add(dma, 20, {}, OpKind::Transfer);
    auto res = schedule(t);
    EXPECT_EQ(res.kindBusy.at(OpKind::CryptoCpu), 10u);
    EXPECT_EQ(res.kindBusy.at(OpKind::Transfer), 50u);
}

TEST(SchedulerTest, DiamondDependency)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {}, OpKind::Control);
    OpId b = t.add(cpu0, 10, {a}, OpKind::Control);
    OpId c = t.add(cpu1, 30, {a}, OpKind::Control);
    OpId d = t.add(dma, 5, {b, c}, OpKind::Transfer);
    auto res = schedule(t);
    EXPECT_EQ(res.start[d], 40u);
    EXPECT_EQ(res.makespan, 45u);
}

TEST(SchedulerTest, FermiResidentContextWinsDispatchTie)
{
    // Pins the Fermi-style tie-break both engines must honour: when
    // two GPU ops become dispatchable at the same effective time, the
    // one in the resident context wins even if the other has a lower
    // op id (earlier program order).
    SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;

    Trace t;
    OpId warm = t.add(gpu, 10, {}, OpKind::Compute, 0, "warm", 1);
    OpId other = t.add(gpu, 10, {warm}, OpKind::Compute, 0, "other", 0);
    OpId same = t.add(gpu, 10, {warm}, OpKind::Compute, 0, "same", 1);

    for (auto res : {schedule(t, cfg), scheduleReference(t, cfg)}) {
        // Context 1 is resident after `warm`; `same` (higher id) must
        // dispatch first, then `other` pays the one context switch.
        EXPECT_EQ(res.start[same], 10u);
        EXPECT_EQ(res.start[other], 70u);
        EXPECT_EQ(res.gpuCtxSwitches, 1u);
        EXPECT_EQ(res.makespan, 80u);
    }
}

TEST(SchedulerTest, FinishOfOutOfRangeIsNullopt)
{
    Trace t;
    OpId a = t.add(cpu0, 10, {}, OpKind::Control);
    auto res = schedule(t);
    EXPECT_EQ(res.finishOf(a), 10u);
    // Past-the-end probes used to read as "finished at tick 0"; they
    // must be distinguishable from a real tick now.
    EXPECT_EQ(res.finishOf(static_cast<OpId>(1)), std::nullopt);
    EXPECT_EQ(res.finishOf(InvalidOpId), std::nullopt);
}

TEST(SchedulerDeathTest, DependencyCyclePanicsInBothEngines)
{
    // The public Trace API cannot create cycles (forward deps panic
    // at add()), so a test-only mutator wires one up and both engines
    // must refuse to silently drop the unschedulable ops.
    Trace t;
    OpId a = t.add(cpu0, 10, {}, OpKind::Control);
    OpId b = t.add(cpu0, 10, {a}, OpKind::Control);
    t.add(cpu0, 10, {b}, OpKind::Control);
    const OpId back_edge[] = {b};
    t.overwriteDepsForTest(a, back_edge);
    EXPECT_DEATH(schedule(t), "dependency cycle");
    EXPECT_DEATH(scheduleReference(t), "dependency cycle");
    EXPECT_DEATH(scheduleParallel(t, {}, 4), "dependency cycle");
}

}  // namespace
}  // namespace hix::sim
