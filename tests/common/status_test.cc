/**
 * @file
 * Unit tests for Status/Result error handling.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"

namespace hix
{
namespace
{

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::Ok);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status s = errAccessFault("tlb fill denied");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::AccessFault);
    EXPECT_EQ(s.message(), "tlb fill denied");
    EXPECT_EQ(s.toString(), "ACCESS_FAULT: tlb fill denied");
}

TEST(StatusTest, AllCodesHaveNames)
{
    for (int c = 0; c <= static_cast<int>(StatusCode::Internal); ++c) {
        std::string name = statusCodeName(static_cast<StatusCode>(c));
        EXPECT_NE(name, "UNKNOWN") << "code " << c;
    }
}

TEST(StatusTest, EqualityComparesCodeOnly)
{
    EXPECT_EQ(errNotFound("a"), errNotFound("b"));
    EXPECT_FALSE(errNotFound("a") == errAccessFault("a"));
}

TEST(ResultTest, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(*r, 42);
    EXPECT_TRUE(r.status().isOk());
}

TEST(ResultTest, HoldsError)
{
    Result<int> r(errResourceExhausted("no EPC pages"));
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::ResourceExhausted);
}

TEST(ResultTest, MoveOutValue)
{
    Result<std::string> r(std::string("payload"));
    std::string v = std::move(r).value();
    EXPECT_EQ(v, "payload");
}

namespace helpers
{

Status
mightFail(bool fail)
{
    if (fail)
        return errIntegrityFailure("mac mismatch");
    return Status::ok();
}

Status
propagate(bool fail)
{
    HIX_RETURN_IF_ERROR(mightFail(fail));
    return Status::ok();
}

Result<int>
produce(bool fail)
{
    if (fail)
        return errNotFound("gone");
    return 7;
}

Status
consume(bool fail, int *out)
{
    HIX_ASSIGN_OR_RETURN(int v, produce(fail));
    *out = v;
    return Status::ok();
}

}  // namespace helpers

TEST(ResultTest, ReturnIfErrorMacro)
{
    EXPECT_TRUE(helpers::propagate(false).isOk());
    EXPECT_EQ(helpers::propagate(true).code(),
              StatusCode::IntegrityFailure);
}

TEST(ResultTest, AssignOrReturnMacro)
{
    int out = 0;
    EXPECT_TRUE(helpers::consume(false, &out).isOk());
    EXPECT_EQ(out, 7);
    EXPECT_EQ(helpers::consume(true, &out).code(), StatusCode::NotFound);
}

}  // namespace
}  // namespace hix
