/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace hix
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, FillProducesRequestedLength)
{
    Rng rng(3);
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
        Bytes b = rng.bytes(n);
        EXPECT_EQ(b.size(), n);
    }
}

TEST(RngTest, FillIsNotAllZero)
{
    Rng rng(3);
    Bytes b = rng.bytes(256);
    bool any_nonzero = false;
    for (auto x : b)
        any_nonzero |= (x != 0);
    EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace hix
