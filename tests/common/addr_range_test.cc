/**
 * @file
 * Unit tests for AddrRange interval semantics.
 */

#include <gtest/gtest.h>

#include "common/addr_range.h"

namespace hix
{
namespace
{

TEST(AddrRangeTest, DefaultIsEmpty)
{
    AddrRange r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_FALSE(r.contains(0));
}

TEST(AddrRangeTest, ContainsIsHalfOpen)
{
    AddrRange r(0x1000, 0x100);
    EXPECT_FALSE(r.contains(0xfff));
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x10ff));
    EXPECT_FALSE(r.contains(0x1100));
}

TEST(AddrRangeTest, ContainsRange)
{
    AddrRange outer(0x1000, 0x1000);
    EXPECT_TRUE(outer.containsRange(AddrRange(0x1000, 0x1000)));
    EXPECT_TRUE(outer.containsRange(AddrRange(0x1800, 0x100)));
    EXPECT_FALSE(outer.containsRange(AddrRange(0x0f00, 0x200)));
    EXPECT_FALSE(outer.containsRange(AddrRange(0x1f00, 0x200)));
    // An empty range is contained nowhere by convention.
    EXPECT_FALSE(outer.containsRange(AddrRange()));
}

TEST(AddrRangeTest, Overlaps)
{
    AddrRange a(0x1000, 0x100);
    EXPECT_TRUE(a.overlaps(AddrRange(0x10ff, 1)));
    EXPECT_FALSE(a.overlaps(AddrRange(0x1100, 0x100)));
    EXPECT_FALSE(a.overlaps(AddrRange(0xf00, 0x100)));
    EXPECT_TRUE(a.overlaps(AddrRange(0x0, 0x2000)));
}

TEST(AddrRangeTest, OffsetOf)
{
    AddrRange r(0x2000, 0x100);
    EXPECT_EQ(r.offsetOf(0x2000), 0u);
    EXPECT_EQ(r.offsetOf(0x2080), 0x80u);
}

TEST(AddrRangeTest, FromStartEndClampsInverted)
{
    AddrRange r = AddrRange::fromStartEnd(0x2000, 0x1000);
    EXPECT_TRUE(r.empty());
}

TEST(AddrRangeTest, Equality)
{
    EXPECT_EQ(AddrRange(0x1000, 0x100), AddrRange(0x1000, 0x100));
    EXPECT_FALSE(AddrRange(0x1000, 0x100) == AddrRange(0x1000, 0x200));
}

TEST(AddrRangeTest, ToStringFormatsHex)
{
    EXPECT_EQ(AddrRange(0x10, 0x10).toString(), "[0x10, 0x20)");
}

}  // namespace
}  // namespace hix
