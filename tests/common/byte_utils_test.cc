/**
 * @file
 * Unit tests for endian helpers, hex codecs, and constant-time
 * comparison.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/byte_utils.h"

namespace hix
{
namespace
{

TEST(ByteUtilsTest, LittleEndianRoundTrip32)
{
    std::uint8_t buf[4];
    storeLE32(buf, 0xdeadbeefu);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[3], 0xde);
    EXPECT_EQ(loadLE32(buf), 0xdeadbeefu);
}

TEST(ByteUtilsTest, LittleEndianRoundTrip64)
{
    std::uint8_t buf[8];
    storeLE64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
    EXPECT_EQ(loadLE64(buf), 0x0123456789abcdefull);
}

TEST(ByteUtilsTest, BigEndianRoundTrip)
{
    std::uint8_t buf[8];
    storeBE32(buf, 0xdeadbeefu);
    EXPECT_EQ(buf[0], 0xde);
    EXPECT_EQ(loadBE32(buf), 0xdeadbeefu);
    storeBE64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[7], 0xef);
    EXPECT_EQ(loadBE64(buf), 0x0123456789abcdefull);
}

TEST(ByteUtilsTest, HexRoundTrip)
{
    Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(toHex(data), "0001abff");
    EXPECT_EQ(fromHex("0001abff"), data);
    EXPECT_EQ(fromHex("0001ABFF"), data);
}

TEST(ByteUtilsTest, HexEmpty)
{
    EXPECT_EQ(toHex(Bytes{}), "");
    EXPECT_TRUE(fromHex("").empty());
}

TEST(ByteUtilsTest, XorBytes)
{
    std::uint8_t a[4] = {0xff, 0x00, 0xaa, 0x55};
    const std::uint8_t b[4] = {0x0f, 0xf0, 0xaa, 0x55};
    xorBytes(a, b, 4);
    EXPECT_EQ(a[0], 0xf0);
    EXPECT_EQ(a[1], 0xf0);
    EXPECT_EQ(a[2], 0x00);
    EXPECT_EQ(a[3], 0x00);
}

TEST(ByteUtilsTest, ConstantTimeEqual)
{
    Bytes a = fromHex("00112233445566778899aabbccddeeff");
    Bytes b = a;
    EXPECT_TRUE(constantTimeEqual(a.data(), b.data(), a.size()));
    b[15] ^= 1;
    EXPECT_FALSE(constantTimeEqual(a.data(), b.data(), a.size()));
    b = a;
    b[0] ^= 0x80;
    EXPECT_FALSE(constantTimeEqual(a.data(), b.data(), a.size()));
}

}  // namespace
}  // namespace hix
