/**
 * @file
 * Tests for the GPU kernel registry: id assignment, lookup by id and
 * name, and last-registration-wins name rebinding (module reload).
 */

#include <gtest/gtest.h>

#include "gpu/kernel_registry.h"

namespace hix::gpu
{
namespace
{

KernelFn
noopKernel()
{
    return [](const GpuMemAccessor &, const KernelArgs &) {
        return Status::ok();
    };
}

TEST(KernelRegistryTest, AssignsSequentialIds)
{
    KernelRegistry reg;
    EXPECT_EQ(reg.size(), 0u);
    const KernelId a = reg.add("vec_add", noopKernel(),
                               [](const KernelArgs &) { return Tick(1); });
    const KernelId b = reg.add("gemm", noopKernel(),
                               [](const KernelArgs &) { return Tick(2); });
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(KernelRegistryTest, FindByIdReturnsEntry)
{
    KernelRegistry reg;
    const KernelId id = reg.add(
        "gemm", noopKernel(),
        [](const KernelArgs &args) { return Tick(args.size() * 10); });
    const KernelEntry *entry = reg.find(id);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->name, "gemm");
    EXPECT_EQ(entry->cost(KernelArgs{1, 2, 3}), Tick(30));
}

TEST(KernelRegistryTest, FindUnknownIdReturnsNull)
{
    KernelRegistry reg;
    EXPECT_EQ(reg.find(0), nullptr);
    reg.add("k", noopKernel(), [](const KernelArgs &) { return Tick(0); });
    EXPECT_EQ(reg.find(1), nullptr);
    EXPECT_EQ(reg.find(0xffff'ffff), nullptr);
}

TEST(KernelRegistryTest, IdOfFindsByName)
{
    KernelRegistry reg;
    const KernelId id = reg.add(
        "bfs", noopKernel(), [](const KernelArgs &) { return Tick(5); });
    auto found = reg.idOf("bfs");
    ASSERT_TRUE(found.isOk());
    EXPECT_EQ(*found, id);
    EXPECT_EQ(reg.idOf("missing").status().code(),
              StatusCode::NotFound);
}

TEST(KernelRegistryTest, ReRegisteredNameResolvesToLatest)
{
    // Module reload: both entries remain addressable by id, but the
    // name resolves to the most recent registration.
    KernelRegistry reg;
    const KernelId v1 = reg.add(
        "gemm", noopKernel(), [](const KernelArgs &) { return Tick(1); });
    const KernelId v2 = reg.add(
        "gemm", noopKernel(), [](const KernelArgs &) { return Tick(2); });
    ASSERT_NE(v1, v2);
    auto found = reg.idOf("gemm");
    ASSERT_TRUE(found.isOk());
    EXPECT_EQ(*found, v2);
    ASSERT_NE(reg.find(v1), nullptr);
    EXPECT_EQ(reg.find(v1)->cost(KernelArgs{}), Tick(1));
    EXPECT_EQ(reg.find(v2)->cost(KernelArgs{}), Tick(2));
}

}  // namespace
}  // namespace hix::gpu
