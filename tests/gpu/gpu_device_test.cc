/**
 * @file
 * Tests for the GPU device model: command FIFO, context isolation,
 * DMA copies, kernels, in-GPU crypto, scrubbing, BIOS, and reset.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/byte_utils.h"
#include "common/units.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "gpu/gpu_device.h"
#include "mem/phys_mem.h"
#include "pcie/root_complex.h"

namespace hix::gpu
{
namespace
{

class GpuDeviceTest : public ::testing::Test
{
  protected:
    GpuDeviceTest()
        : ram_("ram", 64 * MiB),
          gpu_("gpu0", GpuGeometry{}, GpuPerfModel{},
               sim::PlatformConfig::paper()),
          rc_(AddrRange(0xe0000000, 512 * MiB), &bus_, nullptr)
    {
        EXPECT_TRUE(bus_.attach(AddrRange(0, 64 * MiB), &ram_).isOk());
        EXPECT_TRUE(rc_.attachDevice(0, &gpu_).isOk());
        EXPECT_TRUE(rc_.enumerate().isOk());
    }

    /** Push one command into the FIFO and ring the doorbell. */
    void
    submit(GpuOp op, GpuContextId ctx,
           const std::vector<std::uint64_t> &args)
    {
        pushWord(static_cast<std::uint32_t>(op));
        pushWord(ctx);
        pushWord(static_cast<std::uint32_t>(args.size()));
        for (std::uint64_t a : args) {
            pushWord(static_cast<std::uint32_t>(a));
            pushWord(static_cast<std::uint32_t>(a >> 32));
        }
        ring();
    }

    void
    pushWord(std::uint32_t w)
    {
        std::uint8_t b[4];
        storeLE32(b, w);
        ASSERT_TRUE(gpu_.mmioWrite(0, reg::CmdFifo, b, 4).isOk());
    }

    void
    ring()
    {
        std::uint8_t b[4] = {1, 0, 0, 0};
        ASSERT_TRUE(gpu_.mmioWrite(0, reg::CmdDoorbell, b, 4).isOk());
    }

    std::uint32_t
    readReg(std::uint64_t offset)
    {
        std::uint8_t b[4];
        EXPECT_TRUE(gpu_.mmioRead(0, offset, b, 4).isOk());
        return loadLE32(b);
    }

    void
    expectOk()
    {
        EXPECT_EQ(readReg(reg::CmdStatus),
                  static_cast<std::uint32_t>(CmdStatusCode::Ok))
            << gpu_.lastError();
    }

    void
    expectError()
    {
        EXPECT_EQ(readReg(reg::CmdStatus),
                  static_cast<std::uint32_t>(CmdStatusCode::Error));
    }

    mem::PhysicalBus bus_;
    mem::PhysMem ram_;
    GpuDevice gpu_;
    pcie::RootComplex rc_;
};

TEST_F(GpuDeviceTest, IdentityRegister)
{
    EXPECT_EQ(readReg(reg::Id), 0x10de1080u);
    EXPECT_EQ(readReg(reg::Status), 1u);
}

TEST_F(GpuDeviceTest, FenceUpdatesRegister)
{
    submit(GpuOp::Fence, 0, {0xdead});
    expectOk();
    EXPECT_EQ(readReg(reg::FenceValue), 0xdeadu);
}

TEST_F(GpuDeviceTest, ContextLifecycle)
{
    submit(GpuOp::CtxCreate, 7, {});
    expectOk();
    EXPECT_EQ(gpu_.contextCount(), 1u);
    submit(GpuOp::CtxCreate, 7, {});
    expectError();  // duplicate
    submit(GpuOp::CtxDestroy, 7, {});
    expectOk();
    EXPECT_EQ(gpu_.contextCount(), 0u);
}

TEST_F(GpuDeviceTest, MapAndBar1WindowAccess)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, 2 * mem::PageSize});
    expectOk();

    // Write through the BAR1 aperture at VRAM physical 0x200000.
    std::uint8_t lo[4];
    storeLE32(lo, 0x200000);
    ASSERT_TRUE(gpu_.mmioWrite(0, reg::WindowBaseLo, lo, 4).isOk());
    Bytes data = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(gpu_.mmioWrite(1, 0, data.data(), 4).isOk());

    Bytes back(4);
    ASSERT_TRUE(gpu_.debugReadVram(0x200000, back.data(), 4).isOk());
    EXPECT_EQ(back, data);
}

TEST_F(GpuDeviceTest, DmaCopyRoundTrip)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, 1 * MiB});
    expectOk();

    Bytes payload(8192);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);
    ASSERT_TRUE(ram_.writeAt(0x10000, payload.data(), payload.size())
                    .isOk());

    submit(GpuOp::CopyH2D, 1, {0x10000, 0x100000, payload.size()});
    expectOk();
    submit(GpuOp::CopyD2H, 1, {0x100000, 0x30000, payload.size()});
    expectOk();

    Bytes back(payload.size());
    ASSERT_TRUE(ram_.readAt(0x30000, back.data(), back.size()).isOk());
    EXPECT_EQ(back, payload);
    EXPECT_EQ(gpu_.stats().bytesH2D, payload.size());
    EXPECT_EQ(gpu_.stats().bytesD2H, payload.size());
}

TEST_F(GpuDeviceTest, CopyToUnmappedVaFails)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::CopyH2D, 1, {0x10000, 0x900000, 4096});
    expectError();
}

TEST_F(GpuDeviceTest, ContextIsolation)
{
    // Two contexts map different VRAM; context 2 cannot reach
    // context 1's pages through its own address space.
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    submit(GpuOp::CtxCreate, 2, {});
    submit(GpuOp::Map, 2, {0x100000, 0x300000, mem::PageSize});
    expectOk();

    Bytes secret = {0x53, 0x3c};
    ASSERT_TRUE(ram_.writeAt(0x1000, secret.data(), 2).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 2});
    expectOk();

    // Context 2 reading its own 0x100000 sees its own (zero) page.
    submit(GpuOp::CopyD2H, 2, {0x100000, 0x2000, 2});
    expectOk();
    Bytes leak(2);
    ASSERT_TRUE(ram_.readAt(0x2000, leak.data(), 2).isOk());
    EXPECT_EQ(leak[0], 0);
    EXPECT_EQ(leak[1], 0);
}

TEST_F(GpuDeviceTest, CtxDestroyScrubsVram)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    Bytes secret = {0xaa, 0xbb};
    ASSERT_TRUE(ram_.writeAt(0x1000, secret.data(), 2).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 2});
    expectOk();

    submit(GpuOp::CtxDestroy, 1, {});
    expectOk();

    // The residual-data attack (CUDA leaks): a new context mapping
    // the same VRAM page must read zeros.
    Bytes back(2);
    ASSERT_TRUE(gpu_.debugReadVram(0x200000, back.data(), 2).isOk());
    EXPECT_EQ(back[0], 0);
    EXPECT_EQ(back[1], 0);
    EXPECT_GE(gpu_.stats().scrubbedBytes, mem::PageSize);
}

TEST_F(GpuDeviceTest, ScrubCommand)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    Bytes data = {1, 2, 3, 4};
    ASSERT_TRUE(ram_.writeAt(0x1000, data.data(), 4).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 4});
    submit(GpuOp::Scrub, 1, {0x100000, mem::PageSize});
    expectOk();
    Bytes back(4);
    ASSERT_TRUE(gpu_.debugReadVram(0x200000, back.data(), 4).isOk());
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST_F(GpuDeviceTest, KernelLaunchRunsRegisteredKernel)
{
    // A kernel that adds 1 to each of n u32 elements at arg0.
    KernelId kid = gpu_.kernels().add(
        "inc",
        [](const GpuMemAccessor &mem, const KernelArgs &args) -> Status {
            for (std::uint64_t i = 0; i < args[1]; ++i) {
                auto v = mem.read32(args[0] + 4 * i);
                if (!v.isOk())
                    return v.status();
                HIX_RETURN_IF_ERROR(
                    mem.write32(args[0] + 4 * i, *v + 1));
            }
            return Status::ok();
        },
        [](const KernelArgs &args) {
            return static_cast<Tick>(args[1]);
        });

    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    Bytes init(16, 0);
    ASSERT_TRUE(ram_.writeAt(0x1000, init.data(), init.size()).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 16});
    submit(GpuOp::KernelLaunch, 1, {kid, 0x100000, 4});
    expectOk();

    submit(GpuOp::CopyD2H, 1, {0x100000, 0x2000, 16});
    Bytes out(16);
    ASSERT_TRUE(ram_.readAt(0x2000, out.data(), out.size()).isOk());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(loadLE32(out.data() + 4 * i), 1u);
    EXPECT_EQ(gpu_.stats().kernels, 1u);
}

TEST_F(GpuDeviceTest, UnknownKernelFails)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::KernelLaunch, 1, {999});
    expectError();
}

TEST_F(GpuDeviceTest, CostRecordsDrain)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    Bytes d(64, 1);
    ASSERT_TRUE(ram_.writeAt(0x1000, d.data(), d.size()).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 64});
    auto costs = gpu_.drainCosts();
    ASSERT_EQ(costs.size(), 3u);
    EXPECT_EQ(costs[2].engine, GpuEngine::CopyHtoD);
    EXPECT_EQ(costs[2].bytes, 64u);
    EXPECT_GT(costs[2].duration, 0u);
    // Drained: next drain is empty.
    EXPECT_TRUE(gpu_.drainCosts().empty());
}

TEST_F(GpuDeviceTest, InGpuCryptoRoundTrip)
{
    // Host-side OCB peer agrees a key with the GPU via two-party DH,
    // encrypts, lets the GPU decrypt, and checks the plaintext.
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, 1 * MiB});
    expectOk();

    Rng rng(1);
    auto host_pair = crypto::X25519KeyPair::generate(rng);

    // Host public key -> GPU; GPU mixes and returns g^gc, then
    // latches the shared key.
    ASSERT_TRUE(ram_.writeAt(0x1000, host_pair.publicKey.data(),
                             crypto::X25519KeySize)
                    .isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, crypto::X25519KeySize});
    submit(GpuOp::DhMix, 1, {5, 0x100000, 0x100100});
    submit(GpuOp::DhSetKey, 1, {5, 0x100000});
    expectOk();
    EXPECT_TRUE(gpu_.keySlotActive(5));

    // Fetch the GPU's mixed value = g^c mixed with host pub = g^(hc).
    submit(GpuOp::CopyD2H, 1, {0x100100, 0x2000, crypto::X25519KeySize});
    expectOk();
    crypto::X25519Key mixed;
    ASSERT_TRUE(ram_.readAt(0x2000, mixed.data(), mixed.size()).isOk());

    // Host derives the same key: X25519(host_priv, g^c)? Two-party:
    // GPU computed key = X25519(c, host_pub) = g^(hc); host computes
    // X25519(host_priv, mixed) would be g^(h*h*c) — wrong. Instead,
    // the mixed value *is* the shared secret g^(hc).
    Bytes secret(mixed.begin(), mixed.end());
    crypto::AesKey key = crypto::deriveAesKey(secret, "hix-session");
    crypto::Ocb host_ocb(key);

    // Encrypt on the host, decrypt on the GPU.
    Bytes pt(1000);
    for (std::size_t i = 0; i < pt.size(); ++i)
        pt[i] = static_cast<std::uint8_t>(i);
    Bytes ct = host_ocb.encrypt(crypto::makeNonce(3, 9), {}, pt);
    ASSERT_TRUE(ram_.writeAt(0x3000, ct.data(), ct.size()).isOk());
    submit(GpuOp::CopyH2D, 1, {0x3000, 0x110000, ct.size()});
    submit(GpuOp::OcbDecrypt, 1, {5, 0x110000, 0x120000, pt.size(), 3, 9});
    expectOk();

    submit(GpuOp::CopyD2H, 1, {0x120000, 0x4000, pt.size()});
    Bytes out(pt.size());
    ASSERT_TRUE(ram_.readAt(0x4000, out.data(), out.size()).isOk());
    EXPECT_EQ(out, pt);

    // And the reverse: GPU encrypts, host decrypts.
    submit(GpuOp::OcbEncrypt, 1, {5, 0x120000, 0x130000, pt.size(), 3, 10});
    submit(GpuOp::CopyD2H, 1,
           {0x130000, 0x5000, pt.size() + crypto::OcbTagSize});
    expectOk();
    Bytes ct2(pt.size() + crypto::OcbTagSize);
    ASSERT_TRUE(ram_.readAt(0x5000, ct2.data(), ct2.size()).isOk());
    auto back = host_ocb.decrypt(crypto::makeNonce(3, 10), {}, ct2);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, pt);
    EXPECT_EQ(gpu_.stats().cryptoKernels, 2u);
}

TEST_F(GpuDeviceTest, TamperedCiphertextFailsInGpu)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, 1 * MiB});

    Rng rng(2);
    auto host_pair = crypto::X25519KeyPair::generate(rng);
    ASSERT_TRUE(ram_.writeAt(0x1000, host_pair.publicKey.data(),
                             crypto::X25519KeySize)
                    .isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, crypto::X25519KeySize});
    submit(GpuOp::DhMix, 1, {0, 0x100000, 0x100100});
    submit(GpuOp::DhSetKey, 1, {0, 0x100000});
    submit(GpuOp::CopyD2H, 1, {0x100100, 0x2000, crypto::X25519KeySize});
    expectOk();

    crypto::X25519Key mixed;
    ASSERT_TRUE(ram_.readAt(0x2000, mixed.data(), mixed.size()).isOk());
    Bytes secret(mixed.begin(), mixed.end());
    crypto::Ocb host_ocb(crypto::deriveAesKey(secret, "hix-session"));

    Bytes pt(100, 0x41);
    Bytes ct = host_ocb.encrypt(crypto::makeNonce(1, 1), {}, pt);
    ct[10] ^= 0xff;  // the DMA attacker flips a byte in flight
    ASSERT_TRUE(ram_.writeAt(0x3000, ct.data(), ct.size()).isOk());
    submit(GpuOp::CopyH2D, 1, {0x3000, 0x110000, ct.size()});
    submit(GpuOp::OcbDecrypt, 1, {0, 0x110000, 0x120000, pt.size(), 1, 1});
    expectError();
    EXPECT_EQ(gpu_.stats().macFailures, 1u);
}

TEST_F(GpuDeviceTest, CryptoWithoutKeyFails)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    submit(GpuOp::OcbEncrypt, 1, {3, 0x100000, 0x100000, 16, 0, 1});
    expectError();
}

TEST_F(GpuDeviceTest, ResetClearsEverything)
{
    submit(GpuOp::CtxCreate, 1, {});
    submit(GpuOp::Map, 1, {0x100000, 0x200000, mem::PageSize});
    Bytes data = {7, 7};
    ASSERT_TRUE(ram_.writeAt(0x1000, data.data(), 2).isOk());
    submit(GpuOp::CopyH2D, 1, {0x1000, 0x100000, 2});
    expectOk();

    std::uint8_t one[4] = {1, 0, 0, 0};
    ASSERT_TRUE(gpu_.mmioWrite(0, reg::Reset, one, 4).isOk());
    EXPECT_EQ(gpu_.contextCount(), 0u);
    EXPECT_EQ(gpu_.stats().resets, 1u);
    Bytes back(2);
    ASSERT_TRUE(gpu_.debugReadVram(0x200000, back.data(), 2).isOk());
    EXPECT_EQ(back[0], 0);
}

TEST_F(GpuDeviceTest, BiosFlashChangesDigest)
{
    const Bytes &rom = gpu_.expansionRomImage();
    EXPECT_EQ(crypto::Sha256::digest(rom), gpu_.factoryBiosDigest());

    Bytes evil(16, 0x66);
    gpu_.flashBios(evil);
    EXPECT_NE(crypto::Sha256::digest(gpu_.expansionRomImage()),
              gpu_.factoryBiosDigest());
    EXPECT_EQ(gpu_.expansionRomImage().size(),
              gpu_.geometry().romSize);
}

TEST_F(GpuDeviceTest, Bar0RequiresAlignedAccess)
{
    std::uint8_t b[4];
    EXPECT_FALSE(gpu_.mmioRead(0, 2, b, 4).isOk());
    EXPECT_FALSE(gpu_.mmioRead(0, reg::Id, b, 2).isOk());
}

TEST_F(GpuDeviceTest, Bar1BoundsChecked)
{
    std::uint8_t b[4] = {0};
    std::uint8_t hi[4];
    storeLE32(hi, 1);  // window base = 4 GiB > VRAM
    ASSERT_TRUE(gpu_.mmioWrite(0, reg::WindowBaseHi, hi, 4).isOk());
    EXPECT_FALSE(gpu_.mmioWrite(1, 0, b, 4).isOk());
}

TEST_F(GpuDeviceTest, TruncatedCommandRejected)
{
    pushWord(static_cast<std::uint32_t>(GpuOp::Map));
    pushWord(1);
    ring();
    expectError();
}

}  // namespace
}  // namespace hix::gpu
