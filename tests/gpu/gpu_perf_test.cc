/**
 * @file
 * Tests for the GTX-580 performance envelope used by kernel cost
 * models: roofline behaviour, calibration sanity, and monotonicity.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "gpu/gpu_perf.h"

namespace hix::gpu
{
namespace
{

TEST(GpuPerfTest, MemoryBoundKernelFollowsBandwidth)
{
    GpuPerfModel perf;
    // 1 GB streamed, negligible flops.
    const Tick t = perf.kernelTicks(1e3, 1e9);
    const double sec = double(t) / double(SEC);
    const double bw = 1e9 / sec;
    EXPECT_NEAR(bw, double(perf.memBwBps) * perf.streamEfficiency,
                double(perf.memBwBps) * 0.01);
}

TEST(GpuPerfTest, ComputeBoundKernelFollowsFlops)
{
    GpuPerfModel perf;
    // 1 TFLOP, negligible bytes.
    const Tick t = perf.kernelTicks(1e12, 1e3);
    const double sec = double(t) / double(SEC);
    const double gflops = 1e12 / sec / 1e9;
    EXPECT_NEAR(gflops, perf.peakFp32Gflops * perf.denseEfficiency,
                perf.peakFp32Gflops * 0.01);
}

TEST(GpuPerfTest, RooflineTakesTheMax)
{
    GpuPerfModel perf;
    const Tick mem_only = perf.kernelTicks(0, 1e9);
    const Tick flop_only = perf.kernelTicks(1e12, 0);
    const Tick both = perf.kernelTicks(1e12, 1e9);
    EXPECT_EQ(both, std::max(mem_only, flop_only));
}

TEST(GpuPerfTest, IrregularKernelsAreSlower)
{
    GpuPerfModel perf;
    EXPECT_GT(perf.kernelTicks(1e11, 1e3, /*regular=*/false),
              perf.kernelTicks(1e11, 1e3, /*regular=*/true));
}

TEST(GpuPerfTest, IntegerRateBelowFp32)
{
    GpuPerfModel perf;
    EXPECT_GT(perf.intKernelTicks(1e11, 1e3),
              perf.kernelTicks(1e11, 1e3));
}

TEST(GpuPerfTest, MonotoneInWork)
{
    GpuPerfModel perf;
    Tick prev = 0;
    for (double work = 1e6; work <= 1e12; work *= 10) {
        const Tick t = perf.kernelTicks(work, work);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(GpuPerfTest, NonZeroFloor)
{
    GpuPerfModel perf;
    EXPECT_GE(perf.kernelTicks(0, 0), 1u);
}

TEST(GpuPerfTest, Gtx580Calibration)
{
    // The envelope matches the board in Table 3.
    GpuPerfModel perf;
    EXPECT_NEAR(double(perf.memBwBps), 192e9, 1e9);
    EXPECT_NEAR(perf.peakFp32Gflops, 1581.0, 10.0);
}

}  // namespace
}  // namespace hix::gpu
