/**
 * @file
 * Fast-path crypto engine tests: byte-identity of the T-table and
 * hardware AES engines (and the SealPool parallel chunk path) against
 * the scalar reference, the wide-block API against the single-block
 * API, and an allocation counter proving steady-state AuthChannel
 * sealing does no heap allocation.
 *
 * This file lives in its own test binary (test_fast_path) because it
 * overrides the global operator new/delete to count allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/auth_channel.h"
#include "crypto/ocb.h"
#include "crypto/seal_pool.h"

// ----- Global allocation counter ---------------------------------------

namespace
{
std::atomic<std::uint64_t> g_allocations{0};
}

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hix::crypto
{
namespace
{

AesKey
testKey()
{
    Rng rng(1234);
    AesKey key;
    rng.fill(key.data(), key.size());
    return key;
}

/** Message sizes covering empty, sub-block, block-edge, wide-loop,
 * and chunk-scale inputs (the issue's required set). */
const std::size_t kSizes[] = {0, 1, 15, 16, 17, 4096, 1024 * 1024};

// ----- Cross-engine byte identity --------------------------------------

TEST(FastPathTest, EnginesProduceIdenticalSealedBytes)
{
    const AesKey key = testKey();
    const Ocb ref(key, AesEngine::Reference);
    const Ocb ttable(key, AesEngine::TTable);
    const Ocb fast(key, AesEngine::Fast);
    Rng rng(99);

    for (std::size_t size : kSizes) {
        SCOPED_TRACE(size);
        const Bytes pt = rng.bytes(size);
        const Bytes ad = rng.bytes(size % 64);
        const OcbNonce nonce = makeNonce(7, size + 1);

        const Bytes ct_ref = ref.encrypt(nonce, ad, pt);
        const Bytes ct_ttable = ttable.encrypt(nonce, ad, pt);
        const Bytes ct_fast = fast.encrypt(nonce, ad, pt);

        // Ciphertext and tag, byte for byte.
        EXPECT_EQ(ct_ref, ct_ttable);
        EXPECT_EQ(ct_ref, ct_fast);

        // Cross-engine open: sealed by fast, opened by reference and
        // vice versa.
        auto pt_ref = ref.decrypt(nonce, ad, ct_fast);
        ASSERT_TRUE(pt_ref.isOk());
        EXPECT_EQ(*pt_ref, pt);
        auto pt_fast = fast.decrypt(nonce, ad, ct_ref);
        ASSERT_TRUE(pt_fast.isOk());
        EXPECT_EQ(*pt_fast, pt);
        auto pt_ttable = ttable.decrypt(nonce, ad, ct_ref);
        ASSERT_TRUE(pt_ttable.isOk());
        EXPECT_EQ(*pt_ttable, pt);
    }
}

TEST(FastPathTest, HwEngineUsedWhenSupported)
{
    const Aes128 fast(testKey(), AesEngine::Fast);
    const Aes128 ttable(testKey(), AesEngine::TTable);
    EXPECT_EQ(fast.usesHw(), Aes128::hwSupported());
    EXPECT_FALSE(ttable.usesHw());
}

// ----- Wide-block API vs single-block API ------------------------------

TEST(FastPathTest, EncryptBlocksMatchesSingleBlockCalls)
{
    const AesKey key = testKey();
    Rng rng(5);
    for (AesEngine engine :
         {AesEngine::Fast, AesEngine::TTable, AesEngine::Reference}) {
        const Aes128 aes(key, engine);
        for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 64u}) {
            SCOPED_TRACE(n);
            const Bytes in = rng.bytes(n * AesBlockSize);
            Bytes wide(in.size());
            aes.encryptBlocks(in.data(), wide.data(), n);
            Bytes single(in.size());
            for (std::size_t b = 0; b < n; ++b)
                aes.encryptBlock(in.data() + b * AesBlockSize,
                                 single.data() + b * AesBlockSize);
            EXPECT_EQ(wide, single);

            Bytes wide_dec(in.size());
            aes.decryptBlocks(wide.data(), wide_dec.data(), n);
            EXPECT_EQ(wide_dec, in);
        }
    }
}

TEST(FastPathTest, EncryptBlocksSupportsInPlaceOperation)
{
    const Aes128 aes(testKey());
    Rng rng(6);
    Bytes buf = rng.bytes(9 * AesBlockSize);
    const Bytes orig = buf;
    Bytes expect(buf.size());
    aes.encryptBlocks(buf.data(), expect.data(), 9);
    aes.encryptBlocks(buf.data(), buf.data(), 9);
    EXPECT_EQ(buf, expect);
    aes.decryptBlocks(buf.data(), buf.data(), 9);
    EXPECT_EQ(buf, orig);
}

// ----- SealPool parallel path vs serial path ---------------------------

TEST(FastPathTest, SealPoolChunksBitIdenticalToSerial)
{
    const AesKey key = testKey();
    const Ocb ocb(key);
    SealPool pool(4);
    Rng rng(77);

    constexpr std::size_t kChunk = 64 * 1024;
    // An uneven total so the last chunk is short.
    const std::size_t total = 5 * kChunk + 12345;
    const std::size_t nchunks = (total + kChunk - 1) / kChunk;
    const std::size_t stride = kChunk + OcbTagSize;
    const Bytes pt = rng.bytes(total);
    const std::uint32_t stream = 21;
    const std::uint64_t base = 1000;

    Bytes parallel(nchunks * stride);
    pool.sealChunks(ocb, stream, base, pt.data(), total, kChunk,
                    parallel.data());

    Bytes serial(nchunks * stride);
    for (std::size_t i = 0; i < nchunks; ++i) {
        const std::size_t off = i * kChunk;
        const std::size_t len = std::min(kChunk, total - off);
        ocb.encryptInto(makeNonce(stream, base + i), nullptr, 0,
                        pt.data() + off, len, serial.data() + i * stride,
                        serial.data() + i * stride + len);
    }
    EXPECT_EQ(parallel, serial);

    // openChunks recovers the plaintext...
    Bytes recovered(total);
    ASSERT_TRUE(pool.openChunks(ocb, stream, base, parallel.data(),
                                total, kChunk, recovered.data())
                    .isOk());
    EXPECT_EQ(recovered, pt);

    // ...and rejects a corrupted chunk.
    parallel[2 * stride + 5] ^= 0x01;
    EXPECT_FALSE(pool.openChunks(ocb, stream, base, parallel.data(),
                                 total, kChunk, recovered.data())
                     .isOk());
}

TEST(FastPathTest, SealPoolSingleThreadFallback)
{
    const Ocb ocb(testKey());
    SealPool pool(1);
    Rng rng(78);
    const Bytes pt = rng.bytes(100000);
    constexpr std::size_t kChunk = 16 * 1024;
    const std::size_t nchunks = (pt.size() + kChunk - 1) / kChunk;
    Bytes sealed(nchunks * (kChunk + OcbTagSize));
    pool.sealChunks(ocb, 3, 1, pt.data(), pt.size(), kChunk,
                    sealed.data());
    Bytes recovered(pt.size());
    ASSERT_TRUE(pool.openChunks(ocb, 3, 1, sealed.data(), pt.size(),
                                kChunk, recovered.data())
                    .isOk());
    EXPECT_EQ(recovered, pt);
}

// ----- Steady-state sealing allocates nothing --------------------------

TEST(FastPathTest, SteadyStateSealOpenDoesNotAllocate)
{
    const AesKey key = testKey();
    AuthChannel sender(key, /*send=*/1, /*recv=*/2);
    AuthChannel receiver(key, /*send=*/2, /*recv=*/1);
    Rng rng(55);
    const Bytes pt = rng.bytes(4096);

    SealedMessage msg;
    Bytes opened;
    // Warm-up: first iteration grows msg.body and the open buffer to
    // their steady-state capacity.
    sender.sealInto(pt.data(), pt.size(), nullptr, 0, &msg);
    ASSERT_TRUE(receiver.openInto(msg, nullptr, 0, &opened).isOk());
    ASSERT_EQ(opened, pt);

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 100; ++i) {
        sender.sealInto(pt.data(), pt.size(), nullptr, 0, &msg);
        ASSERT_TRUE(receiver.openInto(msg, nullptr, 0, &opened).isOk());
    }
    const std::uint64_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "steady-state sealInto/openInto "
                                "performed heap allocations";
    EXPECT_EQ(opened, pt);
}

TEST(FastPathTest, SteadyStateOcbEncryptIntoDoesNotAllocate)
{
    const Ocb ocb(testKey());
    Rng rng(56);
    const Bytes pt = rng.bytes(64 * 1024);
    Bytes out(pt.size() + OcbTagSize);
    Bytes back(pt.size());

    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 16; ++i) {
        ocb.encryptInto(makeNonce(9, i + 1), nullptr, 0, pt.data(),
                        pt.size(), out.data(), out.data() + pt.size());
        ASSERT_TRUE(ocb.decryptInto(makeNonce(9, i + 1), nullptr, 0,
                                    out.data(), pt.size(),
                                    out.data() + pt.size(), back.data())
                        .isOk());
    }
    const std::uint64_t after =
        g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_EQ(back, pt);
}

}  // namespace
}  // namespace hix::crypto
