/**
 * @file
 * AES-128 known-answer tests (FIPS 197 / NIST SP 800-38A vectors)
 * plus round-trip properties.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/byte_utils.h"
#include "common/rng.h"
#include "crypto/aes128.h"

namespace hix::crypto
{
namespace
{

AesKey
keyFromHex(const std::string &hex)
{
    Bytes b = fromHex(hex);
    AesKey k;
    std::memcpy(k.data(), b.data(), k.size());
    return k;
}

AesBlock
blockFromHex(const std::string &hex)
{
    Bytes b = fromHex(hex);
    AesBlock blk;
    std::memcpy(blk.data(), b.data(), blk.size());
    return blk;
}

std::string
blockToHex(const AesBlock &b)
{
    return toHex(b.data(), b.size());
}

TEST(Aes128Test, Fips197AppendixC)
{
    // The published vector must hold on every engine: hardware (when
    // present), T-table, and the scalar reference.
    for (AesEngine engine : {AesEngine::Fast, AesEngine::TTable,
                             AesEngine::Reference}) {
        SCOPED_TRACE(static_cast<int>(engine));
        Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"),
                   engine);
        AesBlock pt = blockFromHex("00112233445566778899aabbccddeeff");
        AesBlock ct = aes.encrypt(pt);
        EXPECT_EQ(blockToHex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        EXPECT_EQ(aes.decrypt(ct), pt);
    }
}

TEST(Aes128Test, NistSp80038aEcbVectors)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    struct KnownAnswer
    {
        const char *pt;
        const char *ct;
    };
    const KnownAnswer vectors[] = {
        {"6bc1bee22e409f96e93d7e117393172a",
         "3ad77bb40d7a3660a89ecaf32466ef97"},
        {"ae2d8a571e03ac9c9eb76fac45af8e51",
         "f5d3d58503b9699de785895a96fdbaaf"},
        {"30c81c46a35ce411e5fbc1191a0a52ef",
         "43b1cd7f598ece23881b00e3ed030688"},
        {"f69f2445df4f9b17ad2b417be66c3710",
         "7b0c785e27e8ad3f8223207104725dd4"},
    };
    for (const auto &v : vectors) {
        AesBlock ct = aes.encrypt(blockFromHex(v.pt));
        EXPECT_EQ(blockToHex(ct), v.ct);
        EXPECT_EQ(blockToHex(aes.decrypt(ct)), v.pt);
    }
}

TEST(Aes128Test, EncryptDecryptRoundTripRandom)
{
    Rng rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        AesKey key;
        rng.fill(key.data(), key.size());
        Aes128 aes(key);
        AesBlock pt;
        rng.fill(pt.data(), pt.size());
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

TEST(Aes128Test, InPlaceAliasingWorks)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    AesBlock buf = blockFromHex("00112233445566778899aabbccddeeff");
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(blockToHex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(buf.data(), buf.data());
    EXPECT_EQ(blockToHex(buf), "00112233445566778899aabbccddeeff");
}

TEST(Aes128Test, DifferentKeysGiveDifferentCiphertext)
{
    Aes128 a(keyFromHex("00000000000000000000000000000000"));
    Aes128 b(keyFromHex("00000000000000000000000000000001"));
    AesBlock pt{};
    EXPECT_NE(blockToHex(a.encrypt(pt)), blockToHex(b.encrypt(pt)));
}

}  // namespace
}  // namespace hix::crypto
