/**
 * @file
 * SealPool edge cases: empty and single-chunk transfers, chunk
 * boundaries one byte either side, serial-path bit-equivalence,
 * tamper detection, and parallelFor index coverage.
 */

#include <atomic>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/ocb.h"
#include "crypto/seal_pool.h"

namespace hix::crypto
{
namespace
{

constexpr std::size_t ChunkBytes = 4096;
constexpr std::uint32_t Stream = 7;
constexpr std::uint64_t BaseCounter = 1000;

Bytes
patternBytes(std::size_t n)
{
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 131 + 17);
    return out;
}

std::size_t
chunkCount(std::size_t pt_len)
{
    return (pt_len + ChunkBytes - 1) / ChunkBytes;
}

/** Seal then open pt_len bytes, returning the recovered plaintext. */
void
roundTrip(std::size_t pt_len)
{
    const AesKey key = deriveAesKey(Bytes(32, 0x31), "seal-pool-test");
    Ocb ocb(key);
    SealPool pool(3);

    const Bytes pt = patternBytes(pt_len);
    Bytes sealed(chunkCount(pt_len) * (ChunkBytes + OcbTagSize), 0xa5);
    pool.sealChunks(ocb, Stream, BaseCounter, pt.data(), pt.size(),
                    ChunkBytes, sealed.data());

    Bytes back(pt_len, 0);
    ASSERT_TRUE(pool.openChunks(ocb, Stream, BaseCounter, sealed.data(),
                                pt_len, ChunkBytes, back.data())
                    .isOk());
    EXPECT_EQ(back, pt);

    // Bit-identical to sealing each chunk serially with the same
    // nonce sequence (the pipeline's correctness contract).
    for (std::size_t i = 0; i < chunkCount(pt_len); ++i) {
        const std::size_t off = i * ChunkBytes;
        const std::size_t len = std::min(ChunkBytes, pt_len - off);
        const Bytes chunk(pt.begin() + off, pt.begin() + off + len);
        const Bytes serial = ocb.encrypt(
            makeNonce(Stream, BaseCounter + i), Bytes{}, chunk);
        ASSERT_EQ(serial.size(), len + OcbTagSize);
        EXPECT_EQ(0, std::memcmp(serial.data(),
                                 sealed.data() +
                                     i * (ChunkBytes + OcbTagSize),
                                 serial.size()))
            << "chunk " << i << " differs from the serial path";
    }
}

TEST(SealPoolTest, ZeroByteTransfer)
{
    const AesKey key = deriveAesKey(Bytes(32, 0x31), "seal-pool-test");
    Ocb ocb(key);
    SealPool pool(2);
    // No chunks: nothing written, open succeeds vacuously.
    Bytes guard(8, 0xcc);
    pool.sealChunks(ocb, Stream, BaseCounter, nullptr, 0, ChunkBytes,
                    guard.data());
    EXPECT_EQ(guard, Bytes(8, 0xcc));
    EXPECT_TRUE(pool.openChunks(ocb, Stream, BaseCounter, guard.data(),
                                0, ChunkBytes, nullptr)
                    .isOk());
}

TEST(SealPoolTest, SingleByte)
{
    roundTrip(1);
}

TEST(SealPoolTest, OneByteUnderChunk)
{
    roundTrip(ChunkBytes - 1);
}

TEST(SealPoolTest, ExactlyOneChunk)
{
    roundTrip(ChunkBytes);
}

TEST(SealPoolTest, OneByteOverChunk)
{
    roundTrip(ChunkBytes + 1);
}

TEST(SealPoolTest, ManyChunksWithShortTail)
{
    roundTrip(7 * ChunkBytes + 123);
}

TEST(SealPoolTest, ExactMultipleOfChunk)
{
    roundTrip(4 * ChunkBytes);
}

TEST(SealPoolTest, TamperedChunkDetected)
{
    const AesKey key = deriveAesKey(Bytes(32, 0x31), "seal-pool-test");
    Ocb ocb(key);
    SealPool pool(2);

    const std::size_t pt_len = 3 * ChunkBytes + 5;
    const Bytes pt = patternBytes(pt_len);
    Bytes sealed(chunkCount(pt_len) * (ChunkBytes + OcbTagSize));
    pool.sealChunks(ocb, Stream, BaseCounter, pt.data(), pt.size(),
                    ChunkBytes, sealed.data());

    // Flip one ciphertext bit in the second chunk.
    sealed[(ChunkBytes + OcbTagSize) + 99] ^= 0x01;
    Bytes back(pt_len);
    EXPECT_EQ(pool.openChunks(ocb, Stream, BaseCounter, sealed.data(),
                              pt_len, ChunkBytes, back.data())
                  .code(),
              StatusCode::IntegrityFailure);
}

TEST(SealPoolTest, WrongBaseCounterDetected)
{
    const AesKey key = deriveAesKey(Bytes(32, 0x31), "seal-pool-test");
    Ocb ocb(key);
    SealPool pool(2);

    const Bytes pt = patternBytes(ChunkBytes);
    Bytes sealed(ChunkBytes + OcbTagSize);
    pool.sealChunks(ocb, Stream, BaseCounter, pt.data(), pt.size(),
                    ChunkBytes, sealed.data());
    Bytes back(pt.size());
    EXPECT_EQ(pool.openChunks(ocb, Stream, BaseCounter + 1,
                              sealed.data(), pt.size(), ChunkBytes,
                              back.data())
                  .code(),
              StatusCode::IntegrityFailure);
}

TEST(SealPoolTest, ParallelForCoversEveryIndexOnce)
{
    SealPool pool(4);
    EXPECT_GE(pool.threadCount(), 1u);

    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SealPoolTest, ParallelForZeroAndTiny)
{
    SealPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(1, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 1);
}

TEST(SealPoolTest, BackToBackJobsReuseWorkers)
{
    SealPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(
            17, [&](std::size_t i) { sum.fetch_add(int(i)); });
        ASSERT_EQ(sum.load(), 136);  // 0 + 1 + ... + 16
    }
}

TEST(SealPoolTest, SharedPoolIsSingleton)
{
    EXPECT_EQ(&SealPool::shared(), &SealPool::shared());
    EXPECT_GE(SealPool::shared().threadCount(), 1u);
}

}  // namespace
}  // namespace hix::crypto
