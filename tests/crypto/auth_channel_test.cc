/**
 * @file
 * Tests for the replay-protected authenticated channel.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/auth_channel.h"

namespace hix::crypto
{
namespace
{

AesKey
testKey()
{
    Rng rng(77);
    AesKey k;
    rng.fill(k.data(), k.size());
    return k;
}

TEST(AuthChannelTest, RoundTrip)
{
    AesKey key = testKey();
    AuthChannel a(key, /*send=*/0, /*recv=*/1);
    AuthChannel b(key, /*send=*/1, /*recv=*/0);

    Bytes msg = {1, 2, 3, 4};
    auto sealed = a.seal(msg);
    auto opened = b.open(sealed);
    ASSERT_TRUE(opened.isOk());
    EXPECT_EQ(*opened, msg);
}

TEST(AuthChannelTest, BidirectionalStreamsAreIndependent)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    auto to_b = a.seal({10});
    auto to_a = b.seal({20});
    ASSERT_TRUE(b.open(to_b).isOk());
    ASSERT_TRUE(a.open(to_a).isOk());
}

TEST(AuthChannelTest, ReplayRejected)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    auto sealed = a.seal({1, 2, 3});
    ASSERT_TRUE(b.open(sealed).isOk());
    auto replay = b.open(sealed);
    EXPECT_FALSE(replay.isOk());
    EXPECT_EQ(replay.status().code(), StatusCode::ReplayDetected);
}

TEST(AuthChannelTest, OutOfOrderOlderMessageRejected)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    auto first = a.seal({1});
    auto second = a.seal({2});
    ASSERT_TRUE(b.open(second).isOk());
    EXPECT_EQ(b.open(first).status().code(), StatusCode::ReplayDetected);
}

TEST(AuthChannelTest, TamperRejected)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    auto sealed = a.seal({1, 2, 3, 4, 5});
    sealed.body[2] ^= 0xff;
    EXPECT_EQ(b.open(sealed).status().code(),
              StatusCode::IntegrityFailure);
}

TEST(AuthChannelTest, TamperDoesNotAdvanceReplayWindow)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    auto sealed = a.seal({1, 2, 3});
    auto bad = sealed;
    bad.body[0] ^= 1;
    EXPECT_FALSE(b.open(bad).isOk());
    // The genuine message must still be deliverable.
    EXPECT_TRUE(b.open(sealed).isOk());
}

TEST(AuthChannelTest, CrossStreamMessageRejected)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel c(key, 2, 0);

    auto sealed = c.seal({9});
    // `a` expects stream 1, the message is stream 2.
    EXPECT_EQ(a.open(sealed).status().code(),
              StatusCode::InvalidArgument);
}

TEST(AuthChannelTest, WrongKeyRejected)
{
    AesKey key = testKey();
    AesKey other = key;
    other[0] ^= 1;
    AuthChannel a(key, 0, 1);
    AuthChannel b(other, 1, 0);

    auto sealed = a.seal({1});
    EXPECT_EQ(b.open(sealed).status().code(),
              StatusCode::IntegrityFailure);
}

TEST(AuthChannelTest, AssociatedDataBound)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    AuthChannel b(key, 1, 0);

    Bytes ad = {'h', 'd', 'r'};
    auto sealed = a.seal({1, 2}, ad);
    EXPECT_FALSE(b.open(sealed, {'x'}).isOk());
    // Note: the failed open consumed nothing; correct AD succeeds.
    EXPECT_TRUE(b.open(sealed, ad).isOk());
}

TEST(AuthChannelTest, SequencesIncrease)
{
    AesKey key = testKey();
    AuthChannel a(key, 0, 1);
    EXPECT_EQ(a.nextSendSequence(), 1u);
    a.seal({1});
    a.seal({2});
    EXPECT_EQ(a.nextSendSequence(), 3u);
}

}  // namespace
}  // namespace hix::crypto
