/**
 * @file
 * SHA-256 known-answer tests (FIPS 180-4) and streaming-equivalence
 * properties; HMAC-SHA256 vectors from RFC 4231.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/byte_utils.h"
#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace hix::crypto
{
namespace
{

std::string
digestHex(const Sha256Digest &d)
{
    return toHex(d.data(), d.size());
}

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(
        digestHex(Sha256::digest(std::string())),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(
        digestHex(Sha256::digest(std::string("abc"))),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    EXPECT_EQ(
        digestHex(Sha256::digest(std::string(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA)
{
    Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(
        digestHex(h.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot)
{
    Rng rng(99);
    Bytes data = rng.bytes(10000);
    Sha256Digest oneshot = Sha256::digest(data);

    // Feed in awkward chunk sizes.
    Sha256 h;
    std::size_t pos = 0;
    std::size_t step = 1;
    while (pos < data.size()) {
        std::size_t take = std::min(step, data.size() - pos);
        h.update(data.data() + pos, take);
        pos += take;
        step = step * 3 + 1;
    }
    EXPECT_EQ(h.finalize(), oneshot);
}

TEST(Sha256Test, ResetAllowsReuse)
{
    Sha256 h;
    h.update(std::string("garbage"));
    h.reset();
    h.update(std::string("abc"));
    EXPECT_EQ(
        digestHex(h.finalize()),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, LengthBoundaryPadding)
{
    // 55, 56 and 64 byte messages exercise all padding branches.
    for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u}) {
        Bytes a(n, 0x41);
        Bytes b(n, 0x41);
        EXPECT_EQ(Sha256::digest(a), Sha256::digest(b));
        b[n - 1] ^= 1;
        EXPECT_NE(Sha256::digest(a), Sha256::digest(b));
    }
}

TEST(HmacSha256Test, Rfc4231Case1)
{
    Bytes key(20, 0x0b);
    Bytes data = {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
    EXPECT_EQ(
        toHex(hmacSha256(key, data).data(), Sha256DigestSize),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2)
{
    Bytes key = {'J', 'e', 'f', 'e'};
    std::string msg = "what do ya want for nothing?";
    Bytes data(msg.begin(), msg.end());
    EXPECT_EQ(
        toHex(hmacSha256(key, data).data(), Sha256DigestSize),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst)
{
    // RFC 4231 case 6: 131-byte key.
    Bytes key(131, 0xaa);
    std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
    Bytes data(msg.begin(), msg.end());
    EXPECT_EQ(
        toHex(hmacSha256(key, data).data(), Sha256DigestSize),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DeriveAesKeyTest, LabelsYieldIndependentKeys)
{
    Bytes secret = {1, 2, 3, 4, 5};
    AesKey a = deriveAesKey(secret, "user->gpu");
    AesKey b = deriveAesKey(secret, "gpu->user");
    AesKey a2 = deriveAesKey(secret, "user->gpu");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hix::crypto
