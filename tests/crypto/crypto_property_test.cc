/**
 * @file
 * Parameterized property sweeps over the crypto substrate: OCB
 * round-trip and tamper detection at every length across block
 * boundaries, SHA-256 split-invariance, X25519 algebra, and buddy
 * interactions between key derivation labels.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/ocb.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"

namespace hix::crypto
{
namespace
{

AesKey
keyFor(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey key;
    rng.fill(key.data(), key.size());
    return key;
}

class OcbLengthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(OcbLengthSweep, RoundTripEveryLength)
{
    const std::size_t len = GetParam();
    Ocb ocb(keyFor(0xabc));
    Rng rng(len * 31 + 1);
    Bytes pt = rng.bytes(len);
    Bytes ad = rng.bytes(len % 29);
    OcbNonce nonce = makeNonce(7, len + 1);

    Bytes ct = ocb.encrypt(nonce, ad, pt);
    ASSERT_EQ(ct.size(), len + OcbTagSize);
    auto back = ocb.decrypt(nonce, ad, ct);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(*back, pt);
}

TEST_P(OcbLengthSweep, EveryCiphertextBitPositionIsAuthenticated)
{
    const std::size_t len = GetParam();
    if (len == 0)
        return;  // covered by tag-tamper below
    Ocb ocb(keyFor(0xdef));
    Rng rng(len * 17 + 3);
    Bytes pt = rng.bytes(len);
    OcbNonce nonce = makeNonce(9, len + 1);
    Bytes ct = ocb.encrypt(nonce, {}, pt);

    // Flip a byte in up to 8 sampled positions incl. first/last and
    // the tag, and expect rejection each time.
    std::vector<std::size_t> positions = {0, len - 1, len,
                                          len + OcbTagSize - 1};
    for (int i = 0; i < 4; ++i)
        positions.push_back(rng.nextBelow(ct.size()));
    for (std::size_t pos : positions) {
        Bytes bad = ct;
        bad[pos] ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        auto res = ocb.decrypt(nonce, {}, bad);
        EXPECT_FALSE(res.isOk()) << "undetected flip at " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, OcbLengthSweep,
    ::testing::Values(0u, 1u, 2u, 15u, 16u, 17u, 31u, 32u, 33u, 47u,
                      48u, 63u, 64u, 65u, 127u, 128u, 129u, 255u, 256u,
                      257u, 1000u, 4096u, 5000u));

class Sha256SplitSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(Sha256SplitSweep, AnySplitMatchesOneShot)
{
    Rng rng(0x5a5a);
    Bytes data = rng.bytes(300);
    const std::size_t split = GetParam();
    ASSERT_LE(split, data.size());

    Sha256 h;
    h.update(data.data(), split);
    h.update(data.data() + split, data.size() - split);
    EXPECT_EQ(h.finalize(), Sha256::digest(data));
}

INSTANTIATE_TEST_SUITE_P(Splits, Sha256SplitSweep,
                         ::testing::Values(0u, 1u, 55u, 56u, 63u, 64u,
                                           65u, 119u, 128u, 200u,
                                           299u, 300u));

TEST(X25519PropertyTest, SharedSecretSymmetricManySeeds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        auto a = X25519KeyPair::generate(rng);
        auto b = X25519KeyPair::generate(rng);
        EXPECT_EQ(x25519Shared(a, b.publicKey),
                  x25519Shared(b, a.publicKey))
            << "seed " << seed;
    }
}

TEST(X25519PropertyTest, ThreePartyAllOrderings)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 101);
        auto a = X25519KeyPair::generate(rng);
        auto b = X25519KeyPair::generate(rng);
        auto c = X25519KeyPair::generate(rng);
        auto k1 = x25519(c.privateKey,
                         x25519(b.privateKey, a.publicKey));
        auto k2 = x25519(b.privateKey,
                         x25519(c.privateKey, a.publicKey));
        auto k3 = x25519(a.privateKey,
                         x25519(c.privateKey, b.publicKey));
        auto k4 = x25519(a.privateKey,
                         x25519(b.privateKey, c.publicKey));
        EXPECT_EQ(k1, k2);
        EXPECT_EQ(k2, k3);
        EXPECT_EQ(k3, k4);
    }
}

TEST(KeyDerivationPropertyTest, DistinctSecretsDistinctKeys)
{
    Rng rng(0x111);
    AesKey prev{};
    for (int i = 0; i < 16; ++i) {
        Bytes secret = rng.bytes(32);
        AesKey k = deriveAesKey(secret, "label");
        EXPECT_NE(k, prev);
        prev = k;
    }
}

TEST(OcbNoncePropertyTest, DistinctStreamsNeverCollide)
{
    // Same counter on two streams must give unrelated ciphertext.
    Ocb ocb(keyFor(0x77));
    Bytes pt(64, 0x00);
    for (std::uint64_t ctr = 1; ctr <= 16; ++ctr) {
        Bytes c1 = ocb.encrypt(makeNonce(1, ctr), {}, pt);
        Bytes c2 = ocb.encrypt(makeNonce(2, ctr), {}, pt);
        EXPECT_NE(c1, c2);
        // Cross-stream decryption must fail authentication.
        EXPECT_FALSE(ocb.decrypt(makeNonce(2, ctr), {}, c1).isOk());
    }
}

}  // namespace
}  // namespace hix::crypto
