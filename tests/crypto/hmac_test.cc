/**
 * @file
 * HMAC-SHA256 against the RFC 4231 test vectors (cases 1-4, 6, 7 —
 * case 5 tests truncated output, which this API does not expose), and
 * the deriveAesKey label separation on top of it.
 */

#include <string>

#include <gtest/gtest.h>

#include "crypto/hmac.h"

namespace hix::crypto
{
namespace
{

Bytes
fromHex(const std::string &hex)
{
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<std::uint8_t>(
            std::stoi(hex.substr(i, 2), nullptr, 16)));
    return out;
}

Bytes
fromString(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

void
expectHmac(const Bytes &key, const Bytes &data, const std::string &hex)
{
    const Sha256Digest mac = hmacSha256(key, data);
    const Bytes want = fromHex(hex);
    ASSERT_EQ(want.size(), mac.size());
    EXPECT_TRUE(std::equal(mac.begin(), mac.end(), want.begin()));
}

TEST(HmacSha256Test, Rfc4231Case1)
{
    expectHmac(Bytes(20, 0x0b), fromString("Hi There"),
               "b0344c61d8db38535ca8afceaf0bf12b"
               "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2)
{
    expectHmac(fromString("Jefe"),
               fromString("what do ya want for nothing?"),
               "5bdcc146bf60754e6a042426089575c7"
               "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3)
{
    expectHmac(Bytes(20, 0xaa), Bytes(50, 0xdd),
               "773ea91e36800e46854db8ebd09181a7"
               "2959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case4)
{
    expectHmac(fromHex("0102030405060708090a0b0c0d0e0f10"
                       "111213141516171819"),
               Bytes(50, 0xcd),
               "82558a389a443c0ea4cc819899f2083a"
               "85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Test, Rfc4231Case6LargerThanBlockSizeKey)
{
    expectHmac(Bytes(131, 0xaa),
               fromString("Test Using Larger Than Block-Size Key - "
                          "Hash Key First"),
               "60e431591ee0b67f0d8a26aacbf5b77f"
               "8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, Rfc4231Case7LargerThanBlockSizeKeyAndData)
{
    expectHmac(
        Bytes(131, 0xaa),
        fromString("This is a test using a larger than block-size "
                   "key and a larger than block-size data. The key "
                   "needs to be hashed before being used by the "
                   "HMAC algorithm."),
        "9b09ffa71b942fcb27635fbcd5b0e944"
        "bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256Test, PointerOverloadMatchesByteOverload)
{
    const Bytes key = fromString("key");
    const Bytes data = fromString("some data");
    const Sha256Digest a = hmacSha256(key, data);
    const Sha256Digest b = hmacSha256(key.data(), key.size(),
                                      data.data(), data.size());
    EXPECT_EQ(a, b);
}

TEST(DeriveAesKeyTest, IsTruncatedHmacOfLabel)
{
    const Bytes secret(32, 0x7e);
    const std::string label = "hix-session-h2d";
    const AesKey key = deriveAesKey(secret, label);
    const Sha256Digest mac = hmacSha256(secret, fromString(label));
    EXPECT_TRUE(std::equal(key.begin(), key.end(), mac.begin()));
}

TEST(DeriveAesKeyTest, LabelsSeparateKeys)
{
    const Bytes secret(32, 0x7e);
    EXPECT_NE(deriveAesKey(secret, "h2d"), deriveAesKey(secret, "d2h"));
    EXPECT_NE(deriveAesKey(secret, "h2d"),
              deriveAesKey(Bytes(32, 0x7f), "h2d"));
}

}  // namespace
}  // namespace hix::crypto
