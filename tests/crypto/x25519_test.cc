/**
 * @file
 * X25519 tests: RFC 7748 known-answer vectors, DH agreement
 * properties, and the three-party composition the HIX session setup
 * relies on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/byte_utils.h"
#include "common/rng.h"
#include "crypto/x25519.h"

namespace hix::crypto
{
namespace
{

X25519Key
keyFromHex(const std::string &hex)
{
    Bytes b = fromHex(hex);
    X25519Key k;
    std::memcpy(k.data(), b.data(), k.size());
    return k;
}

std::string
keyToHex(const X25519Key &k)
{
    return toHex(k.data(), k.size());
}

TEST(X25519Test, Rfc7748Vector1)
{
    X25519Key scalar = keyFromHex(
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
    X25519Key u = keyFromHex(
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
    EXPECT_EQ(
        keyToHex(x25519(scalar, u)),
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748Vector2)
{
    X25519Key scalar = keyFromHex(
        "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
    X25519Key u = keyFromHex(
        "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
    EXPECT_EQ(
        keyToHex(x25519(scalar, u)),
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Test, Rfc7748DiffieHellmanExample)
{
    // Alice and Bob keys from RFC 7748 Section 6.1.
    X25519Key alice_priv = keyFromHex(
        "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
    X25519Key bob_priv = keyFromHex(
        "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

    X25519Key alice_pub = x25519(alice_priv, x25519BasePoint());
    X25519Key bob_pub = x25519(bob_priv, x25519BasePoint());

    EXPECT_EQ(
        keyToHex(alice_pub),
        "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
    EXPECT_EQ(
        keyToHex(bob_pub),
        "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

    X25519Key k1 = x25519(alice_priv, bob_pub);
    X25519Key k2 = x25519(bob_priv, alice_pub);
    EXPECT_EQ(keyToHex(k1),
              "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
    EXPECT_EQ(k1, k2);
}

TEST(X25519Test, GeneratedPairsAgree)
{
    Rng rng(2024);
    for (int i = 0; i < 10; ++i) {
        auto a = X25519KeyPair::generate(rng);
        auto b = X25519KeyPair::generate(rng);
        EXPECT_EQ(x25519Shared(a, b.publicKey),
                  x25519Shared(b, a.publicKey));
    }
}

TEST(X25519Test, ThreePartyCompositionAgrees)
{
    // g^abc computed in all three bracketing orders, as the user
    // enclave / GPU enclave / GPU session setup does.
    Rng rng(31337);
    auto a = X25519KeyPair::generate(rng);
    auto b = X25519KeyPair::generate(rng);
    auto c = X25519KeyPair::generate(rng);

    X25519Key gab = x25519(b.privateKey, a.publicKey);
    X25519Key gac = x25519(c.privateKey, a.publicKey);
    X25519Key gbc = x25519(c.privateKey, b.publicKey);

    X25519Key k_c = x25519(c.privateKey, gab);
    X25519Key k_b = x25519(b.privateKey, gac);
    X25519Key k_a = x25519(a.privateKey, gbc);

    EXPECT_EQ(k_a, k_b);
    EXPECT_EQ(k_b, k_c);
}

TEST(X25519Test, DifferentPeersDifferentSecrets)
{
    Rng rng(5);
    auto a = X25519KeyPair::generate(rng);
    auto b = X25519KeyPair::generate(rng);
    auto c = X25519KeyPair::generate(rng);
    EXPECT_NE(x25519Shared(a, b.publicKey), x25519Shared(a, c.publicKey));
}

TEST(X25519Test, ClampingMakesLowBitsIrrelevant)
{
    Rng rng(6);
    X25519Key scalar;
    rng.fill(scalar.data(), scalar.size());
    X25519Key scalar2 = scalar;
    scalar2[0] ^= 0x07;  // clamped away
    X25519Key u = x25519BasePoint();
    EXPECT_EQ(x25519(scalar, u), x25519(scalar2, u));
}

}  // namespace
}  // namespace hix::crypto
