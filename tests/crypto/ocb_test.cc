/**
 * @file
 * OCB-AES-128 tests: RFC 7253 Appendix A known-answer vectors plus
 * round-trip, tamper-detection, and nonce-sensitivity properties.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/byte_utils.h"
#include "common/rng.h"
#include "crypto/ocb.h"

namespace hix::crypto
{
namespace
{

AesKey
rfcKey()
{
    AesKey k;
    Bytes b = fromHex("000102030405060708090a0b0c0d0e0f");
    std::memcpy(k.data(), b.data(), k.size());
    return k;
}

OcbNonce
rfcNonce(std::uint8_t last)
{
    // BBAA998877665544332211XX
    Bytes b = fromHex("bbaa99887766554433221100");
    b[11] = last;
    OcbNonce n;
    std::memcpy(n.data(), b.data(), n.size());
    return n;
}

Bytes
seq(std::size_t n)
{
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = static_cast<std::uint8_t>(i);
    return b;
}

struct RfcVector
{
    std::uint8_t nonce_last;
    std::size_t ad_len;
    std::size_t pt_len;
    const char *expected;  // ciphertext || tag, hex
};

// RFC 7253 Appendix A, AEAD_AES_128_OCB_TAGLEN128 sample results.
const RfcVector rfc_vectors[] = {
    {0x00, 0, 0, "785407bfffc8ad9edcc5520ac9111ee6"},
    {0x01, 8, 8,
     "6820b3657b6f615a5725bda0d3b4eb3a257c9af1f8f03009"},
    {0x02, 8, 0, "81017f8203f081277152fade694a0a00"},
    {0x03, 0, 8,
     "45dd69f8f5aae72414054cd1f35d82760b2cd00d2f99bfa9"},
    {0x04, 16, 16,
     "571d535b60b277188be5147170a9a22c3ad7a4ff3835b8c5701c1ccec8fc3358"},
    {0x05, 16, 0, "8cf761b6902ef764462ad86498ca6b97"},
    {0x06, 0, 16,
     "5ce88ec2e0692706a915c00aeb8b2396f40e1c743f52436bdf06d8fa1eca343d"},
    {0x07, 24, 24,
     "1ca2207308c87c010756104d8840ce1952f09673a448a122c92c62241051f57356d7f3"
     "c90bb0e07f"},
    {0x08, 24, 0, "6dc225a071fc1b9f7c69f93b0f1e10de"},
    {0x09, 0, 24,
     "221bd0de7fa6fe993eccd769460a0af2d6cded0c395b1c3ce725f32494b9f914d85c0b"
     "1eb38357ff"},
    {0x0a, 32, 32,
     "bd6f6c496201c69296c11efd138a467abd3c707924b964deaffc40319af5a48540fbba"
     "186c5553c68ad9f592a79a4240"},
    {0x0b, 32, 0, "fe80690bee8a485d11f32965bc9d2a32"},
    {0x0c, 0, 32,
     "2942bfc773bda23cabc6acfd9bfd5835bd300f0973792ef46040c53f1432bcdfb5e1dd"
     "e3bc18a5f840b52e653444d5df"},
    {0x0d, 40, 40,
     "d5ca91748410c1751ff8a2f618255b68a0a12e093ff454606e59f9c1d0ddc54b65e8628"
     "e568bad7aed07ba06a4a69483a7035490c5769e60"},
    {0x0e, 40, 0, "c5cd9d1850c141e358649994ee701b68"},
    {0x0f, 0, 40,
     "4412923493c57d5de0d700f753cce0d1d2d95060122e9f15a5ddbfc5787e50b5cc55ee5"
     "07bcb084e479ad363ac366b95a98ca5f3000b1479"},
};

TEST(OcbTest, Rfc7253KnownAnswers)
{
    // Every engine must reproduce the RFC's bytes exactly.
    for (AesEngine engine : {AesEngine::Fast, AesEngine::TTable,
                             AesEngine::Reference}) {
        SCOPED_TRACE(static_cast<int>(engine));
        Ocb ocb(rfcKey(), engine);
        for (const auto &v : rfc_vectors) {
            Bytes ad = seq(v.ad_len);
            Bytes pt = seq(v.pt_len);
            Bytes ct = ocb.encrypt(rfcNonce(v.nonce_last), ad, pt);
            EXPECT_EQ(toHex(ct), v.expected)
                << "nonce last byte 0x" << std::hex
                << int(v.nonce_last);

            auto back = ocb.decrypt(rfcNonce(v.nonce_last), ad, ct);
            ASSERT_TRUE(back.isOk());
            EXPECT_EQ(*back, pt);
        }
    }
}

TEST(OcbTest, RoundTripRandomLengths)
{
    Rng rng(555);
    AesKey key;
    rng.fill(key.data(), key.size());
    Ocb ocb(key);
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 100u,
                            255u, 256u, 1000u, 4096u}) {
        Bytes pt = rng.bytes(len);
        Bytes ad = rng.bytes(len % 37);
        OcbNonce n = makeNonce(1, len + 1);
        Bytes ct = ocb.encrypt(n, ad, pt);
        EXPECT_EQ(ct.size(), len + OcbTagSize);
        auto back = ocb.decrypt(n, ad, ct);
        ASSERT_TRUE(back.isOk()) << "len " << len;
        EXPECT_EQ(*back, pt);
    }
}

TEST(OcbTest, TamperedCiphertextFailsIntegrity)
{
    Rng rng(7);
    AesKey key;
    rng.fill(key.data(), key.size());
    Ocb ocb(key);
    Bytes pt = rng.bytes(100);
    OcbNonce n = makeNonce(0, 1);
    Bytes ct = ocb.encrypt(n, {}, pt);

    for (std::size_t pos : {0u, 50u, 99u, 100u, 115u}) {
        Bytes bad = ct;
        bad[pos] ^= 0x01;
        auto res = ocb.decrypt(n, {}, bad);
        EXPECT_FALSE(res.isOk()) << "pos " << pos;
        EXPECT_EQ(res.status().code(), StatusCode::IntegrityFailure);
    }
}

TEST(OcbTest, TamperedAdFailsIntegrity)
{
    Rng rng(8);
    AesKey key;
    rng.fill(key.data(), key.size());
    Ocb ocb(key);
    Bytes pt = rng.bytes(64);
    Bytes ad = rng.bytes(20);
    OcbNonce n = makeNonce(0, 2);
    Bytes ct = ocb.encrypt(n, ad, pt);

    Bytes bad_ad = ad;
    bad_ad[3] ^= 0x80;
    EXPECT_FALSE(ocb.decrypt(n, bad_ad, ct).isOk());
    EXPECT_TRUE(ocb.decrypt(n, ad, ct).isOk());
}

TEST(OcbTest, WrongNonceFails)
{
    Rng rng(9);
    AesKey key;
    rng.fill(key.data(), key.size());
    Ocb ocb(key);
    Bytes pt = rng.bytes(48);
    Bytes ct = ocb.encrypt(makeNonce(0, 1), {}, pt);
    EXPECT_FALSE(ocb.decrypt(makeNonce(0, 2), {}, ct).isOk());
}

TEST(OcbTest, WrongKeyFails)
{
    Rng rng(10);
    AesKey key_a, key_b;
    rng.fill(key_a.data(), key_a.size());
    rng.fill(key_b.data(), key_b.size());
    Ocb a(key_a), b(key_b);
    Bytes pt = rng.bytes(48);
    OcbNonce n = makeNonce(0, 1);
    Bytes ct = a.encrypt(n, {}, pt);
    EXPECT_FALSE(b.decrypt(n, {}, ct).isOk());
}

TEST(OcbTest, CiphertextTooShortRejected)
{
    Ocb ocb(rfcKey());
    Bytes short_ct(8, 0);
    auto res = ocb.decrypt(makeNonce(0, 1), {}, short_ct);
    EXPECT_EQ(res.status().code(), StatusCode::InvalidArgument);
}

TEST(OcbTest, DistinctNoncesGiveDistinctCiphertext)
{
    Ocb ocb(rfcKey());
    Bytes pt(32, 0xaa);
    Bytes c1 = ocb.encrypt(makeNonce(1, 1), {}, pt);
    Bytes c2 = ocb.encrypt(makeNonce(1, 2), {}, pt);
    EXPECT_NE(toHex(c1), toHex(c2));
}

TEST(OcbTest, MakeNonceLayout)
{
    OcbNonce n = makeNonce(0x01020304, 0x0506070805060708ull);
    EXPECT_EQ(toHex(n.data(), n.size()), "010203040506070805060708");
}

}  // namespace
}  // namespace hix::crypto
