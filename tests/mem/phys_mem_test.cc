/**
 * @file
 * Tests for sparse physical memory and bus routing.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

TEST(PhysMemTest, UntouchedReadsZero)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes buf(64, 0xaa);
    ASSERT_TRUE(ram.readAt(0x1000, buf.data(), buf.size()).isOk());
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(ram.touchedPages(), 0u);
}

TEST(PhysMemTest, WriteReadRoundTrip)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data = {1, 2, 3, 4, 5};
    ASSERT_TRUE(ram.writeAt(0x800, data.data(), data.size()).isOk());
    Bytes back(5);
    ASSERT_TRUE(ram.readAt(0x800, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
    EXPECT_EQ(ram.touchedPages(), 1u);
}

TEST(PhysMemTest, CrossPageAccess)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data(PageSize + 100, 0x5c);
    ASSERT_TRUE(
        ram.writeAt(PageSize - 50, data.data(), data.size()).isOk());
    Bytes back(data.size());
    ASSERT_TRUE(
        ram.readAt(PageSize - 50, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
    EXPECT_EQ(ram.touchedPages(), 3u);
}

TEST(PhysMemTest, OutOfBoundsRejected)
{
    PhysMem ram("ram", 4096);
    Bytes buf(10);
    EXPECT_FALSE(ram.readAt(4090, buf.data(), buf.size()).isOk());
    EXPECT_FALSE(ram.writeAt(4096, buf.data(), 1).isOk());
    EXPECT_TRUE(ram.readAt(4086, buf.data(), buf.size()).isOk());
}

TEST(PhysMemTest, HugeOffsetOverflowRejected)
{
    // Regression: `offset + len` used to wrap 64-bit arithmetic for
    // offsets near 2^64 and slip past the bounds check, reading or
    // writing through the sparse page store.
    PhysMem ram("ram", 1 * MiB);
    Bytes buf(16, 0x7f);
    EXPECT_FALSE(
        ram.readAt(~std::uint64_t(0) - 7, buf.data(), buf.size())
            .isOk());
    EXPECT_FALSE(ram.writeAt(~std::uint64_t(0), buf.data(), 1).isOk());
    EXPECT_FALSE(ram.zeroAt(~std::uint64_t(0) - 2, 8).isOk());
    EXPECT_EQ(ram.touchedPages(), 0u);
}

TEST(PhysMemTest, LenLargerThanMemoryRejected)
{
    PhysMem ram("ram", 4096);
    Bytes buf(8192);
    EXPECT_FALSE(ram.readAt(0, buf.data(), buf.size()).isOk());
    EXPECT_FALSE(ram.writeAt(0, buf.data(), buf.size()).isOk());
    // Edge: the full memory in one access is still fine.
    EXPECT_TRUE(ram.readAt(0, buf.data(), 4096).isOk());
}

TEST(PhysMemTest, ZeroAtScrubs)
{
    PhysMem ram("ram", 64 * KiB);
    Bytes data(1000, 0xee);
    ASSERT_TRUE(ram.writeAt(100, data.data(), data.size()).isOk());
    ASSERT_TRUE(ram.zeroAt(100, 1000).isOk());
    Bytes back(1000);
    ASSERT_TRUE(ram.readAt(100, back.data(), back.size()).isOk());
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST(PhysBusTest, RoutesByRange)
{
    PhysMem ram("ram", 1 * MiB);
    PhysMem mmio("mmio", 64 * KiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 1 * MiB), &ram).isOk());
    ASSERT_TRUE(
        bus.attach(AddrRange(0xf0000000, 64 * KiB), &mmio).isOk());

    Bytes data = {0xde, 0xad};
    ASSERT_TRUE(bus.write(0xf0000010, data.data(), data.size()).isOk());
    Bytes back(2);
    ASSERT_TRUE(mmio.readAt(0x10, back.data(), 2).isOk());
    EXPECT_EQ(back, data);

    EXPECT_EQ(bus.targetAt(0x100), &ram);
    EXPECT_EQ(bus.targetAt(0xf0000000), &mmio);
    EXPECT_EQ(bus.targetAt(0x50000000), nullptr);
}

TEST(PhysBusTest, OverlapRejected)
{
    PhysMem a("a", 1 * MiB), b("b", 1 * MiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 1 * MiB), &a).isOk());
    EXPECT_EQ(bus.attach(AddrRange(0x80000, 1 * MiB), &b).code(),
              StatusCode::AlreadyExists);
}

TEST(PhysBusTest, UnmappedAccessFails)
{
    PhysicalBus bus;
    Bytes buf(4);
    EXPECT_EQ(bus.read(0x1234, buf.data(), 4).code(),
              StatusCode::NotFound);
}

TEST(PhysBusTest, StraddlingAccessRejected)
{
    PhysMem a("a", 64 * KiB), b("b", 64 * KiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 64 * KiB), &a).isOk());
    ASSERT_TRUE(bus.attach(AddrRange(64 * KiB, 64 * KiB), &b).isOk());
    Bytes buf(8);
    EXPECT_FALSE(bus.read(64 * KiB - 4, buf.data(), 8).isOk());
}

TEST(PhysBusTest, DetachRestoresUnmapped)
{
    PhysMem a("a", 64 * KiB);
    PhysicalBus bus;
    AddrRange r(0x1000, 64 * KiB);
    ASSERT_TRUE(bus.attach(r, &a).isOk());
    ASSERT_TRUE(bus.detach(r).isOk());
    Bytes buf(4);
    EXPECT_FALSE(bus.read(0x1000, buf.data(), 4).isOk());
    EXPECT_EQ(bus.detach(r).code(), StatusCode::NotFound);
}

}  // namespace
}  // namespace hix::mem
