/**
 * @file
 * Tests for sparse physical memory and bus routing.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

TEST(PhysMemTest, UntouchedReadsZero)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes buf(64, 0xaa);
    ASSERT_TRUE(ram.readAt(0x1000, buf.data(), buf.size()).isOk());
    for (auto b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(ram.residentPages(), 0u);
}

TEST(PhysMemTest, WriteReadRoundTrip)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data = {1, 2, 3, 4, 5};
    ASSERT_TRUE(ram.writeAt(0x800, data.data(), data.size()).isOk());
    Bytes back(5);
    ASSERT_TRUE(ram.readAt(0x800, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
    EXPECT_EQ(ram.residentPages(), 1u);
}

TEST(PhysMemTest, CrossPageAccess)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data(PageSize + 100, 0x5c);
    ASSERT_TRUE(
        ram.writeAt(PageSize - 50, data.data(), data.size()).isOk());
    Bytes back(data.size());
    ASSERT_TRUE(
        ram.readAt(PageSize - 50, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
    EXPECT_EQ(ram.residentPages(), 3u);
}

TEST(PhysMemTest, OutOfBoundsRejected)
{
    PhysMem ram("ram", 4096);
    Bytes buf(10);
    EXPECT_FALSE(ram.readAt(4090, buf.data(), buf.size()).isOk());
    EXPECT_FALSE(ram.writeAt(4096, buf.data(), 1).isOk());
    EXPECT_TRUE(ram.readAt(4086, buf.data(), buf.size()).isOk());
}

TEST(PhysMemTest, HugeOffsetOverflowRejected)
{
    // Regression: `offset + len` used to wrap 64-bit arithmetic for
    // offsets near 2^64 and slip past the bounds check, reading or
    // writing through the sparse page store.
    PhysMem ram("ram", 1 * MiB);
    Bytes buf(16, 0x7f);
    EXPECT_FALSE(
        ram.readAt(~std::uint64_t(0) - 7, buf.data(), buf.size())
            .isOk());
    EXPECT_FALSE(ram.writeAt(~std::uint64_t(0), buf.data(), 1).isOk());
    EXPECT_FALSE(ram.zeroAt(~std::uint64_t(0) - 2, 8).isOk());
    EXPECT_EQ(ram.residentPages(), 0u);
}

TEST(PhysMemTest, LenLargerThanMemoryRejected)
{
    PhysMem ram("ram", 4096);
    Bytes buf(8192);
    EXPECT_FALSE(ram.readAt(0, buf.data(), buf.size()).isOk());
    EXPECT_FALSE(ram.writeAt(0, buf.data(), buf.size()).isOk());
    // Edge: the full memory in one access is still fine.
    EXPECT_TRUE(ram.readAt(0, buf.data(), 4096).isOk());
}

TEST(PhysMemTest, ZeroAtScrubs)
{
    PhysMem ram("ram", 64 * KiB);
    Bytes data(1000, 0xee);
    ASSERT_TRUE(ram.writeAt(100, data.data(), data.size()).isOk());
    ASSERT_TRUE(ram.zeroAt(100, 1000).isOk());
    Bytes back(1000);
    ASSERT_TRUE(ram.readAt(100, back.data(), back.size()).isOk());
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST(PhysMemTest, ZeroAtWholePageDropsToSparse)
{
    PhysMem ram("ram", 64 * KiB);
    Bytes data(PageSize, 0xee);
    ASSERT_TRUE(ram.writeAt(PageSize, data.data(), data.size()).isOk());
    ASSERT_TRUE(ram.writeAt(3 * PageSize + 8, data.data(), 16).isOk());
    EXPECT_EQ(ram.residentPages(), 2u);
    // Scrubbing a whole page frees it instead of memset-ing it.
    ASSERT_TRUE(ram.zeroAt(PageSize, PageSize).isOk());
    EXPECT_EQ(ram.residentPages(), 1u);
    // Partial scrub keeps the page materialised.
    ASSERT_TRUE(ram.zeroAt(3 * PageSize + 8, 16).isOk());
    EXPECT_EQ(ram.residentPages(), 1u);
    Bytes back(PageSize);
    ASSERT_TRUE(ram.readAt(PageSize, back.data(), back.size()).isOk());
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST(PhysMemTest, SnapshotForkSharesPagesWithoutCopying)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data(3 * PageSize, 0x42);
    ASSERT_TRUE(ram.writeAt(0, data.data(), data.size()).isOk());
    EXPECT_EQ(ram.residentPages(), 3u);
    EXPECT_EQ(ram.sharedPages(), 0u);

    auto snap = ram.snapshot();
    // Snapshotting freezes the pages: they are now shared.
    EXPECT_EQ(ram.residentPages(), 0u);
    EXPECT_EQ(ram.sharedPages(), 3u);

    PhysMem fork("fork", 1 * MiB);
    ASSERT_TRUE(fork.adopt(snap).isOk());
    EXPECT_EQ(fork.residentPages(), 0u);
    EXPECT_EQ(fork.sharedPages(), 3u);
    Bytes back(data.size());
    ASSERT_TRUE(fork.readAt(0, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
}

TEST(PhysMemTest, CopyOnWriteIsolatesForksAndTemplate)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes ones(PageSize, 0x11);
    ASSERT_TRUE(ram.writeAt(0, ones.data(), ones.size()).isOk());
    auto snap = ram.snapshot();

    PhysMem a("a", 1 * MiB), b("b", 1 * MiB);
    ASSERT_TRUE(a.adopt(snap).isOk());
    ASSERT_TRUE(b.adopt(snap).isOk());

    std::uint8_t poke = 0x99;
    ASSERT_TRUE(a.writeAt(5, &poke, 1).isOk());
    // a privatised one page; b and the template still see 0x11.
    EXPECT_EQ(a.residentPages(), 1u);
    EXPECT_EQ(b.residentPages(), 0u);
    std::uint8_t got = 0;
    ASSERT_TRUE(b.readAt(5, &got, 1).isOk());
    EXPECT_EQ(got, 0x11);
    ASSERT_TRUE(ram.readAt(5, &got, 1).isOk());
    EXPECT_EQ(got, 0x11);
    ASSERT_TRUE(a.readAt(5, &got, 1).isOk());
    EXPECT_EQ(got, 0x99);
    // ...and the rest of a's privatised page kept its bytes.
    ASSERT_TRUE(a.readAt(6, &got, 1).isOk());
    EXPECT_EQ(got, 0x11);
}

TEST(PhysMemTest, SoleOwnerWritesStayInPlace)
{
    PhysMem ram("ram", 1 * MiB);
    std::uint8_t v = 1;
    ASSERT_TRUE(ram.writeAt(0, &v, 1).isOk());
    {
        auto snap = ram.snapshot();
        EXPECT_EQ(ram.sharedPages(), 1u);
    }
    // Snapshot gone: refcount back to one, writes are in-place again.
    EXPECT_EQ(ram.sharedPages(), 0u);
    EXPECT_EQ(ram.residentPages(), 1u);
    const std::uint8_t *before = ram.readSpan(0, 1);
    v = 2;
    ASSERT_TRUE(ram.writeAt(0, &v, 1).isOk());
    EXPECT_EQ(ram.readSpan(0, 1), before);
}

TEST(PhysMemTest, SharedPageZeroScrubDecrefsNotCopies)
{
    PhysMem ram("ram", 1 * MiB);
    Bytes data(PageSize, 0xab);
    ASSERT_TRUE(ram.writeAt(0, data.data(), data.size()).isOk());
    auto snap = ram.snapshot();
    PhysMem fork("fork", 1 * MiB);
    ASSERT_TRUE(fork.adopt(snap).isOk());
    ASSERT_TRUE(fork.zeroAt(0, PageSize).isOk());
    EXPECT_EQ(fork.residentPages(), 0u);
    EXPECT_EQ(fork.sharedPages(), 0u);
    std::uint8_t got = 0xff;
    ASSERT_TRUE(fork.readAt(9, &got, 1).isOk());
    EXPECT_EQ(got, 0);
    // Template unaffected.
    ASSERT_TRUE(ram.readAt(9, &got, 1).isOk());
    EXPECT_EQ(got, 0xab);
}

TEST(PhysMemTest, AdoptRejectsSizeMismatch)
{
    PhysMem ram("ram", 1 * MiB);
    auto snap = ram.snapshot();
    PhysMem other("other", 2 * MiB);
    EXPECT_FALSE(other.adopt(snap).isOk());
}

TEST(PhysBusTest, RoutesByRange)
{
    PhysMem ram("ram", 1 * MiB);
    PhysMem mmio("mmio", 64 * KiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 1 * MiB), &ram).isOk());
    ASSERT_TRUE(
        bus.attach(AddrRange(0xf0000000, 64 * KiB), &mmio).isOk());

    Bytes data = {0xde, 0xad};
    ASSERT_TRUE(bus.write(0xf0000010, data.data(), data.size()).isOk());
    Bytes back(2);
    ASSERT_TRUE(mmio.readAt(0x10, back.data(), 2).isOk());
    EXPECT_EQ(back, data);

    EXPECT_EQ(bus.targetAt(0x100), &ram);
    EXPECT_EQ(bus.targetAt(0xf0000000), &mmio);
    EXPECT_EQ(bus.targetAt(0x50000000), nullptr);
}

TEST(PhysBusTest, OverlapRejected)
{
    PhysMem a("a", 1 * MiB), b("b", 1 * MiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 1 * MiB), &a).isOk());
    EXPECT_EQ(bus.attach(AddrRange(0x80000, 1 * MiB), &b).code(),
              StatusCode::AlreadyExists);
}

TEST(PhysBusTest, UnmappedAccessFails)
{
    PhysicalBus bus;
    Bytes buf(4);
    EXPECT_EQ(bus.read(0x1234, buf.data(), 4).code(),
              StatusCode::NotFound);
}

TEST(PhysBusTest, StraddlingAccessRejected)
{
    PhysMem a("a", 64 * KiB), b("b", 64 * KiB);
    PhysicalBus bus;
    ASSERT_TRUE(bus.attach(AddrRange(0, 64 * KiB), &a).isOk());
    ASSERT_TRUE(bus.attach(AddrRange(64 * KiB, 64 * KiB), &b).isOk());
    Bytes buf(8);
    EXPECT_FALSE(bus.read(64 * KiB - 4, buf.data(), 8).isOk());
}

TEST(PhysBusTest, DetachRestoresUnmapped)
{
    PhysMem a("a", 64 * KiB);
    PhysicalBus bus;
    AddrRange r(0x1000, 64 * KiB);
    ASSERT_TRUE(bus.attach(r, &a).isOk());
    ASSERT_TRUE(bus.detach(r).isOk());
    Bytes buf(4);
    EXPECT_FALSE(bus.read(0x1000, buf.data(), 4).isOk());
    EXPECT_EQ(bus.detach(r).code(), StatusCode::NotFound);
}

}  // namespace
}  // namespace hix::mem
