/**
 * @file
 * PhysicalBus routing and straddle/hole regressions: clean Status
 * errors with zero target calls on a straddling access (including the
 * length-overflow case the old end-containment check wrapped on), no
 * partial writes from single accesses, the documented mid-run partial
 * semantics of the page-chunked bulk helpers, and MRU route-cache
 * invalidation across attach/detach.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/page.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

/** Counts every access so tests can assert "zero target calls". */
class RecordingTarget : public BusTarget
{
  public:
    explicit RecordingTarget(std::uint64_t size) : size_(size) {}

    std::string targetName() const override { return "recording"; }

    Status
    readAt(std::uint64_t offset, std::uint8_t *data,
           std::size_t len) override
    {
        ++reads;
        if (len > size_ || offset > size_ - len)
            return errInvalidArgument("recording: out of bounds");
        std::fill(data, data + len, fill);
        return Status::ok();
    }

    Status
    writeAt(std::uint64_t offset, const std::uint8_t *,
            std::size_t len) override
    {
        ++writes;
        if (len > size_ || offset > size_ - len)
            return errInvalidArgument("recording: out of bounds");
        bytes_written += len;
        return Status::ok();
    }

    int reads = 0;
    int writes = 0;
    std::uint64_t bytes_written = 0;
    std::uint8_t fill = 0xA5;

  private:
    std::uint64_t size_;
};

TEST(PhysBusTest, StraddleIsCleanErrorWithZeroTargetCalls)
{
    PhysicalBus bus;
    RecordingTarget a(0x1000);
    RecordingTarget b(0x1000);
    ASSERT_TRUE(bus.attach(AddrRange(0x0, 0x1000), &a).isOk());
    ASSERT_TRUE(bus.attach(AddrRange(0x1000, 0x1000), &b).isOk());

    // Crossing from a into b: adjacent targets, so every byte is
    // mapped, but a single access still must not straddle.
    std::uint8_t buf[64] = {};
    Status rd = bus.read(0xff0, buf, sizeof(buf));
    EXPECT_EQ(rd.code(), StatusCode::InvalidArgument);
    Status wr = bus.write(0xff0, buf, sizeof(buf));
    EXPECT_EQ(wr.code(), StatusCode::InvalidArgument);
    // Neither side was touched: no partial transfer happened.
    EXPECT_EQ(a.reads + a.writes, 0);
    EXPECT_EQ(b.reads + b.writes, 0);
    EXPECT_EQ(a.bytes_written + b.bytes_written, 0u);
}

TEST(PhysBusTest, StraddleLengthOverflowRegression)
{
    // Regression: with a mapping near the top of the address space,
    // the old check `!range.contains(addr + len - 1)` wrapped for a
    // huge len — addr + len - 1 overflowed back *into* the range —
    // and forwarded the bogus length to the target. The overflow-safe
    // check must reject it before any target call.
    PhysicalBus bus;
    RecordingTarget t(0x1000);
    const Addr base = 0xFFFFFFFFFFFFE000ull;
    ASSERT_TRUE(bus.attach(AddrRange(base, 0x1000), &t).isOk());

    const Addr addr = base + 0x100;
    // Wraps to addr + len - 1 == base + 0xF: inside the range.
    const std::size_t len = static_cast<std::size_t>(0ull - 0xF0ull);
    std::uint8_t byte = 0;
    Status rd = bus.read(addr, &byte, len);
    EXPECT_EQ(rd.code(), StatusCode::InvalidArgument);
    Status wr = bus.write(addr, &byte, len);
    EXPECT_EQ(wr.code(), StatusCode::InvalidArgument);
    EXPECT_EQ(t.reads + t.writes, 0);
}

TEST(PhysBusTest, HoleReadIsNotFound)
{
    PhysicalBus bus;
    RecordingTarget t(0x1000);
    ASSERT_TRUE(bus.attach(AddrRange(0x0, 0x1000), &t).isOk());
    std::uint8_t byte = 0;
    EXPECT_EQ(bus.read(0x2000, &byte, 1).code(), StatusCode::NotFound);
    EXPECT_EQ(bus.write(0x2000, &byte, 1).code(), StatusCode::NotFound);
    // Reading up to the hole edge from inside the range straddles.
    EXPECT_EQ(bus.read(0xff0, &byte, 1).code(), StatusCode::Ok);
    std::uint8_t buf[32];
    EXPECT_EQ(bus.read(0xff0, buf, 32).code(),
              StatusCode::InvalidArgument);
}

TEST(PhysBusTest, BulkCrossesTargetsAtPageBoundaries)
{
    // readPages/writePages re-route per page, so a page-aligned
    // boundary between two targets is legal for the bulk helpers
    // even though a single read() across it is a straddle.
    PhysicalBus bus;
    PhysMem a("a", PageSize);
    PhysMem b("b", PageSize);
    ASSERT_TRUE(bus.attach(AddrRange(0, PageSize), &a).isOk());
    ASSERT_TRUE(bus.attach(AddrRange(PageSize, PageSize), &b).isOk());

    std::vector<std::uint8_t> out(2 * PageSize, 0x11);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(i * 13);
    ASSERT_TRUE(bus.writePages(0x800, out.data(), PageSize).isOk());
    std::vector<std::uint8_t> back(PageSize);
    ASSERT_TRUE(bus.readPages(0x800, back.data(), PageSize).isOk());
    EXPECT_TRUE(std::equal(back.begin(), back.end(), out.begin()));

    std::uint8_t byte = 0;
    EXPECT_EQ(bus.read(0x800, &byte, PageSize).code(),
              StatusCode::InvalidArgument);
}

TEST(PhysBusTest, BulkHoleMidRunKeepsPartialSemantics)
{
    // A hole after the first page: writePages commits the pages before
    // the hole and then faults — exactly what the per-page loop it
    // replaced did. The page before the hole must have been written.
    PhysicalBus bus;
    PhysMem a("a", PageSize);
    RecordingTarget after(PageSize);
    ASSERT_TRUE(bus.attach(AddrRange(0, PageSize), &a).isOk());
    ASSERT_TRUE(
        bus.attach(AddrRange(2 * PageSize, PageSize), &after).isOk());

    std::vector<std::uint8_t> data(2 * PageSize, 0x7e);
    Status st = bus.writePages(0x0, data.data(), data.size());
    EXPECT_EQ(st.code(), StatusCode::NotFound);
    std::uint8_t back = 0;
    ASSERT_TRUE(bus.read(PageSize - 1, &back, 1).isOk());
    EXPECT_EQ(back, 0x7e);
    // The target past the hole was never reached.
    EXPECT_EQ(after.writes, 0);

    std::vector<std::uint8_t> rd(2 * PageSize);
    EXPECT_EQ(bus.readPages(0x0, rd.data(), rd.size()).code(),
              StatusCode::NotFound);
}

TEST(PhysBusTest, RouteCacheSurvivesAttachDetach)
{
    PhysicalBus bus;
    RecordingTarget a(0x1000);
    RecordingTarget b(0x1000);
    RecordingTarget c(0x1000);
    ASSERT_TRUE(bus.attach(AddrRange(0x0, 0x1000), &a).isOk());
    ASSERT_TRUE(bus.attach(AddrRange(0x4000, 0x1000), &b).isOk());

    // Warm the MRU cache on b, then attach a mapping that sorts
    // before it: the cached index would now point at the wrong slot.
    EXPECT_EQ(bus.route(0x4800)->target, &b);
    ASSERT_TRUE(bus.attach(AddrRange(0x2000, 0x1000), &c).isOk());
    EXPECT_EQ(bus.route(0x4800)->target, &b);
    EXPECT_EQ(bus.route(0x2080)->target, &c);

    // Detach the cached mapping: the cache must not resurrect it.
    EXPECT_EQ(bus.route(0x2080)->target, &c);
    ASSERT_TRUE(bus.detach(AddrRange(0x2000, 0x1000)).isOk());
    EXPECT_EQ(bus.route(0x2080), nullptr);
    EXPECT_EQ(bus.routeReference(0x2080), nullptr);

    // route and routeReference agree across the whole map.
    for (Addr addr : {Addr(0x0), Addr(0xfff), Addr(0x1000),
                      Addr(0x3fff), Addr(0x4000), Addr(0x4fff),
                      Addr(0x5000), Addr(~0ull)}) {
        const auto *fast = bus.route(addr);
        const auto *ref = bus.routeReference(addr);
        ASSERT_EQ(fast == nullptr, ref == nullptr) << addr;
        if (fast) {
            EXPECT_EQ(fast->target, ref->target);
            EXPECT_TRUE(fast->range == ref->range);
        }
    }
}

}  // namespace
}  // namespace hix::mem
