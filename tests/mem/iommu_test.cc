/**
 * @file
 * Tests for the IOMMU model: bypass mode, translation, OS-controlled
 * mapping, and the overwrite attack primitive.
 */

#include <gtest/gtest.h>

#include "mem/iommu.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

TEST(IommuTest, DisabledMeansIdentity)
{
    Iommu iommu;
    EXPECT_FALSE(iommu.enabled());
    auto pa = iommu.translate(0x1234'5678);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x1234'5678u);
}

TEST(IommuTest, EnabledFaultsOnUnmapped)
{
    Iommu iommu;
    iommu.setEnabled(true);
    EXPECT_EQ(iommu.translate(0x1000).status().code(),
              StatusCode::AccessFault);
}

TEST(IommuTest, TranslatePreservesPageOffset)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x1000, 0x8000).isOk());
    auto pa = iommu.translate(0x1abc);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x8abcu);
}

TEST(IommuTest, MapRejectsUnaligned)
{
    Iommu iommu;
    EXPECT_EQ(iommu.map(0x1001, 0x8000).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(iommu.map(0x1000, 0x8004).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(iommu.entryCount(), 0u);
}

TEST(IommuTest, DoubleMapRejected)
{
    Iommu iommu;
    ASSERT_TRUE(iommu.map(0x1000, 0x8000).isOk());
    EXPECT_EQ(iommu.map(0x1000, 0x9000).code(),
              StatusCode::AlreadyExists);
    // The original mapping survives the rejected remap attempt.
    iommu.setEnabled(true);
    auto pa = iommu.translate(0x1000);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x8000u);
}

TEST(IommuTest, UnmapRemovesTranslation)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x2000, 0xa000).isOk());
    ASSERT_TRUE(iommu.unmap(0x2000).isOk());
    EXPECT_FALSE(iommu.translate(0x2000).isOk());
    EXPECT_EQ(iommu.unmap(0x2000).code(), StatusCode::NotFound);
}

TEST(IommuTest, OverwriteRedirectsExistingMapping)
{
    // The DMA-redirection attack primitive: no checks, any page.
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x3000, 0xb000).isOk());
    iommu.overwrite(0x3000, 0xc000);
    auto pa = iommu.translate(0x3080);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0xc080u);
    EXPECT_EQ(iommu.entryCount(), 1u);
}

TEST(IommuTest, OverwriteInstallsFreshMapping)
{
    Iommu iommu;
    iommu.setEnabled(true);
    iommu.overwrite(0x4000, 0xd000);
    auto pa = iommu.translate(0x4000);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0xd000u);
}

TEST(IommuTest, ReEnablingKeepsTable)
{
    Iommu iommu;
    ASSERT_TRUE(iommu.map(0x5000, 0xe000).isOk());
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.translate(0x5000).isOk());
    iommu.setEnabled(false);
    // Bypass again: identity, table kept for the next enable.
    auto pa = iommu.translate(0x7777);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x7777u);
    EXPECT_EQ(iommu.entryCount(), 1u);
}

}  // namespace
}  // namespace hix::mem
