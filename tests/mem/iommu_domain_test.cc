/**
 * @file
 * Per-device IOMMU protection domains: mappings live in (domain,
 * device page) keyed tables, so one device's DMA can never resolve
 * through another device's entries. Pins domain isolation for
 * map/unmap/overwrite/translate, domain-scoped IOTLB tagging (no
 * false hits across domains), and the legacy single-argument API
 * delegating to domain 0.
 */

#include <gtest/gtest.h>

#include "mem/iommu.h"
#include "mem/page.h"

namespace hix::mem
{
namespace
{

constexpr Addr DevPage = 0x4000;

TEST(IommuDomainTest, SameDevicePageIsIndependentPerDomain)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0, DevPage, 0x10000).isOk());
    ASSERT_TRUE(iommu.map(1, DevPage, 0x20000).isOk());
    ASSERT_TRUE(iommu.map(2, DevPage, 0x30000).isOk());

    EXPECT_EQ(*iommu.translate(0, DevPage + 0x10), 0x10010u);
    EXPECT_EQ(*iommu.translate(1, DevPage + 0x10), 0x20010u);
    EXPECT_EQ(*iommu.translate(2, DevPage + 0x10), 0x30010u);
    EXPECT_EQ(iommu.entryCount(), 3u);
}

TEST(IommuDomainTest, UnmappedDomainFaultsEvenWhenSiblingIsMapped)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0, DevPage, 0x10000).isOk());
    EXPECT_FALSE(iommu.translate(1, DevPage).isOk());
    // A fault in domain 1 must not have disturbed domain 0.
    EXPECT_EQ(*iommu.translate(0, DevPage), 0x10000u);
}

TEST(IommuDomainTest, UnmapIsDomainScoped)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0, DevPage, 0x10000).isOk());
    ASSERT_TRUE(iommu.map(1, DevPage, 0x20000).isOk());

    // Unmapping the page in domain 1 leaves domain 0 translating.
    ASSERT_TRUE(iommu.unmap(1, DevPage).isOk());
    EXPECT_FALSE(iommu.translate(1, DevPage).isOk());
    EXPECT_EQ(*iommu.translate(0, DevPage), 0x10000u);
    // Double-unmap in the now-empty domain reports NotFound.
    EXPECT_FALSE(iommu.unmap(1, DevPage).isOk());
}

TEST(IommuDomainTest, OverwriteRedirectsOnlyItsDomain)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0, DevPage, 0x10000).isOk());
    ASSERT_TRUE(iommu.map(1, DevPage, 0x20000).isOk());
    // Prime the IOTLB in both domains, then redirect domain 1: the
    // very next translate must see the redirect (no stale cache) and
    // domain 0 must be untouched.
    ASSERT_TRUE(iommu.translate(0, DevPage).isOk());
    ASSERT_TRUE(iommu.translate(1, DevPage).isOk());
    iommu.overwrite(1, DevPage, 0x70000);
    EXPECT_EQ(*iommu.translate(1, DevPage), 0x70000u);
    EXPECT_EQ(*iommu.translate(0, DevPage), 0x10000u);
}

TEST(IommuDomainTest, IotlbTagsIncludeTheDomain)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0, DevPage, 0x10000).isOk());
    ASSERT_TRUE(iommu.map(7, DevPage, 0x20000).isOk());

    ASSERT_TRUE(iommu.translate(0, DevPage).isOk());  // miss, fill
    const std::uint64_t hits_before = iommu.iotlbHits();
    // Same device page, different domain: must NOT hit domain 0's
    // cached entry — a false cross-domain hit would be a DMA leak.
    ASSERT_TRUE(iommu.translate(7, DevPage).isOk());
    EXPECT_EQ(iommu.iotlbHits(), hits_before);
    EXPECT_EQ(iommu.iotlbMisses(), 2u);
    // Re-translating each domain now hits its own entry.
    EXPECT_EQ(*iommu.translate(0, DevPage), 0x10000u);
    EXPECT_EQ(*iommu.translate(7, DevPage), 0x20000u);
    EXPECT_EQ(iommu.iotlbHits(), hits_before + 2);
}

TEST(IommuDomainTest, LegacyApiIsDomainZero)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(DevPage, 0x10000).isOk());
    EXPECT_EQ(*iommu.translate(0, DevPage), 0x10000u);
    EXPECT_EQ(*iommu.translate(DevPage), 0x10000u);
    ASSERT_TRUE(iommu.map(3, DevPage, 0x30000).isOk());
    iommu.overwrite(DevPage, 0x50000);
    EXPECT_EQ(*iommu.translate(DevPage), 0x50000u);
    EXPECT_EQ(*iommu.translate(3, DevPage), 0x30000u);
    ASSERT_TRUE(iommu.unmap(DevPage).isOk());
    EXPECT_FALSE(iommu.translate(DevPage).isOk());
    EXPECT_EQ(*iommu.translate(3, DevPage), 0x30000u);
}

TEST(IommuDomainTest, BypassModeIgnoresDomains)
{
    Iommu iommu;  // disabled: identity mapping for every requester
    EXPECT_EQ(*iommu.translate(0, 0x1234), 0x1234u);
    EXPECT_EQ(*iommu.translate(9, 0x1234), 0x1234u);
    EXPECT_EQ(iommu.iotlbHits() + iommu.iotlbMisses(), 0u);
}

}  // namespace
}  // namespace hix::mem
