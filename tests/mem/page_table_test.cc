/**
 * @file
 * Tests for the OS-owned page table: mapping rules, range mapping,
 * lookup semantics, and the unchecked overwrite attack primitive.
 */

#include <gtest/gtest.h>

#include "mem/page_table.h"

namespace hix::mem
{
namespace
{

TEST(PageTableTest, MapLookupRoundTrip)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x8000, PermRead | PermWrite).isOk());
    auto pte = pt.lookup(0x1000);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, 0x8000u);
    EXPECT_EQ(pte->perms, PermRead | PermWrite);
}

TEST(PageTableTest, LookupCoversWholePage)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x8000, PermRead).isOk());
    auto pte = pt.lookup(0x1fff);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, 0x8000u);
    EXPECT_FALSE(pt.lookup(0x2000).isOk());
}

TEST(PageTableTest, MapRejectsUnaligned)
{
    PageTable pt;
    EXPECT_EQ(pt.map(0x1001, 0x8000, PermRead).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(pt.map(0x1000, 0x8010, PermRead).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(pt.entryCount(), 0u);
}

TEST(PageTableTest, DoubleMapRejectedKeepsOriginal)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x8000, PermRead).isOk());
    EXPECT_EQ(pt.map(0x1000, 0x9000, PermWrite).code(),
              StatusCode::AlreadyExists);
    auto pte = pt.lookup(0x1000);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, 0x8000u);
    EXPECT_EQ(pte->perms, PermRead);
}

TEST(PageTableTest, UnmapByAnyAddressInPage)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x3000, 0xa000, PermRead).isOk());
    ASSERT_TRUE(pt.unmap(0x3abc).isOk());
    EXPECT_FALSE(pt.lookup(0x3000).isOk());
    EXPECT_EQ(pt.unmap(0x3000).code(), StatusCode::NotFound);
}

TEST(PageTableTest, MapRangeCoversEveryPage)
{
    PageTable pt;
    ASSERT_TRUE(
        pt.mapRange(0x10000, 0x80000, 3 * PageSize, PermRead).isOk());
    EXPECT_EQ(pt.entryCount(), 3u);
    for (int i = 0; i < 3; ++i) {
        auto pte = pt.lookup(0x10000 + i * PageSize);
        ASSERT_TRUE(pte.isOk());
        EXPECT_EQ(pte->paddr, 0x80000u + i * PageSize);
    }
    EXPECT_FALSE(pt.lookup(0x10000 + 3 * PageSize).isOk());
}

TEST(PageTableTest, MapRangeRoundsUpPartialPage)
{
    PageTable pt;
    ASSERT_TRUE(
        pt.mapRange(0x20000, 0x90000, PageSize + 1, PermRead).isOk());
    EXPECT_EQ(pt.entryCount(), 2u);
}

TEST(PageTableTest, MapRangeCollisionReportsAndKeepsPrefix)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x12000, 0xf0000, PermRead).isOk());
    EXPECT_EQ(pt.mapRange(0x10000, 0x80000, 4 * PageSize, PermRead)
                  .code(),
              StatusCode::AlreadyExists);
    // Pages before the collision were installed.
    EXPECT_TRUE(pt.lookup(0x10000).isOk());
    EXPECT_TRUE(pt.lookup(0x11000).isOk());
    // The colliding page keeps its original target.
    auto pte = pt.lookup(0x12000);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, 0xf0000u);
}

TEST(PageTableTest, OverwriteBypassesAllChecks)
{
    // The attacker primitive: unaligned inputs are page-truncated and
    // existing entries replaced without AlreadyExists.
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0xa000, PermRead).isOk());
    pt.overwrite(0x5678, 0xbeef, PermRead | PermWrite);
    auto pte = pt.lookup(0x5000);
    ASSERT_TRUE(pte.isOk());
    EXPECT_EQ(pte->paddr, pageBase(0xbeef));
    EXPECT_EQ(pte->perms, PermRead | PermWrite);
    EXPECT_EQ(pt.entryCount(), 1u);
}

TEST(PageTableTest, PermForMapsAccessTypes)
{
    EXPECT_EQ(permFor(AccessType::Read), PermRead);
    EXPECT_EQ(permFor(AccessType::Write), PermWrite);
    EXPECT_EQ(permFor(AccessType::Execute), PermExec);
}

}  // namespace
}  // namespace hix::mem
