/**
 * @file
 * Golden-equivalence wall for the memory-system fast path. Each suite
 * drives the production engine and its linear reference oracle with
 * one deterministic op stream and requires bit-identical observable
 * behaviour:
 *
 *  - MemGoldenTlb: the set-associative Tlb vs the TlbReference list,
 *    at several geometries (including fully-associative and 1x1).
 *  - MemGoldenMmu: mirrored bus+RAM+page-table machines, bulk
 *    coalesced read/write vs the per-page reference loop — bytes,
 *    Status codes, and hit/miss counters, including mid-span
 *    translate faults.
 *  - MemGoldenBus: binary-search + MRU-cache routing vs the linear
 *    scan under attach/detach churn.
 *  - MemGoldenIotlb: IOTLB coherence against the OS-owned table
 *    (unmap/overwrite invalidate before taking effect), counters,
 *    and O(1) flush.
 *
 * CI gates on this suite (ctest -R MemGolden); the sanitize and tsan
 * jobs run it under ASan/UBSan and TSan.
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/iommu.h"
#include "mem/mmu.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

/** SplitMix64: tiny, deterministic, no global RNG state. */
struct Rng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }
};

// ----- MemGoldenTlb ----------------------------------------------------

void
driveTlbPair(TlbBase &fast, TlbBase &ref, std::uint64_t seed,
             int iterations)
{
    Rng rng{seed};
    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t r = rng.next();
        const ProcessId pid = 1 + r % 3;
        const EnclaveId enclave =
            (r >> 8) % 3 == 0 ? InvalidEnclaveId
                              : EnclaveId(40 + (r >> 8) % 3);
        const Addr vpage = ((r >> 16) % 24) * PageSize;
        switch ((r >> 40) % 8) {
          case 0:
          case 1:
          case 2: {  // insert
            TlbEntry e{pid, enclave, vpage,
                       ((r >> 24) % 64) * PageSize, PermRead};
            fast.insert(e);
            ref.insert(e);
            break;
          }
          case 6:
            switch ((r >> 44) % 8) {
              case 0:
                fast.flushAll();
                ref.flushAll();
                break;
              case 1:
                fast.flushPid(pid);
                ref.flushPid(pid);
                break;
              default:
                fast.flushPage(pid, vpage);
                ref.flushPage(pid, vpage);
                break;
            }
            break;
          default: {  // lookup (also refreshes LRU recency)
            const TlbEntry *a = fast.lookup(pid, enclave, vpage);
            const TlbEntry *b = ref.lookup(pid, enclave, vpage);
            ASSERT_EQ(a == nullptr, b == nullptr)
                << "presence diverged at op " << i;
            if (a) {
                EXPECT_EQ(a->ppage, b->ppage) << "at op " << i;
                EXPECT_EQ(a->perms, b->perms) << "at op " << i;
            }
            break;
          }
        }
        ASSERT_EQ(fast.size(), ref.size()) << "size diverged at op " << i;
    }
}

TEST(MemGoldenTlb, EnginesAgreeAcrossGeometries)
{
    struct Shape
    {
        std::size_t capacity;
        std::size_t ways;
    };
    for (Shape s : {Shape{8, 4}, Shape{16, 2}, Shape{8, 8},
                    Shape{1, 1}, Shape{6, 4}}) {
        Tlb fast(s.capacity, s.ways);
        TlbReference ref(s.capacity, s.ways);
        ASSERT_EQ(fast.geometry().sets, ref.geometry().sets);
        ASSERT_EQ(fast.geometry().ways, ref.geometry().ways);
        driveTlbPair(fast, ref, 0x600D + s.capacity * 31 + s.ways,
                     4000);
    }
}

TEST(MemGoldenTlb, EpochFlushIsObservationallyComplete)
{
    // flushAll is an O(1) epoch bump; nothing stale may survive it,
    // across repeated flush/refill cycles (epoch reuse of slots).
    Tlb fast(8);
    TlbReference ref(8);
    for (int cycle = 0; cycle < 50; ++cycle) {
        driveTlbPair(fast, ref, 0xF1u * (cycle + 1), 200);
        fast.flushAll();
        ref.flushAll();
        ASSERT_EQ(fast.size(), 0u);
        ASSERT_EQ(ref.size(), 0u);
        for (Addr vpage = 0; vpage < 24 * PageSize; vpage += PageSize)
            for (ProcessId pid : {ProcessId(1), ProcessId(2),
                                  ProcessId(3)})
                ASSERT_EQ(fast.lookup(pid, InvalidEnclaveId, vpage),
                          nullptr);
    }
}

// ----- MemGoldenMmu ----------------------------------------------------

constexpr std::uint64_t GoldenRamSize = 1 * MiB;

/** One mirrored half: bus + RAM + per-pid page tables + MMU. */
struct Half
{
    explicit Half(TlbEngine engine)
        : ram("golden_ram", GoldenRamSize), mmu(&bus, 16, engine)
    {
        EXPECT_TRUE(
            bus.attach(AddrRange(0, GoldenRamSize), &ram).isOk());
        mmu.setPageTableProvider(
            [this](ProcessId pid) { return &tables[pid]; });
    }

    PhysicalBus bus;
    PhysMem ram;
    Mmu mmu;
    std::unordered_map<ProcessId, PageTable> tables;
};

class MemGoldenMmu : public ::testing::Test
{
  protected:
    MemGoldenMmu() : fast_(TlbEngine::Fast), ref_(TlbEngine::Reference)
    {}

    void
    mapBoth(ProcessId pid, Addr va, Addr pa, std::uint8_t perms)
    {
        ASSERT_TRUE(fast_.tables[pid].map(va, pa, perms).isOk());
        ASSERT_TRUE(ref_.tables[pid].map(va, pa, perms).isOk());
    }

    void
    expectCountersEqual(const char *where)
    {
        EXPECT_EQ(fast_.mmu.tlbHits(), ref_.mmu.tlbHits()) << where;
        EXPECT_EQ(fast_.mmu.tlbMisses(), ref_.mmu.tlbMisses()) << where;
        EXPECT_EQ(fast_.mmu.tlb().size(), ref_.mmu.tlb().size())
            << where;
    }

    Half fast_;
    Half ref_;
};

TEST_F(MemGoldenMmu, RandomizedBulkOpsMatchReferenceExactly)
{
    // Sparse VA layout with holes and varied physical placement:
    // contiguous runs, reversed pages, strided pages. Bulk spans
    // regularly cross holes mid-run, exercising the partial-fault
    // path.
    for (int i = 0; i < 48; ++i) {
        if (i % 5 == 4)
            continue;  // hole every fifth page
        const Addr va = 0x400000 + Addr(i) * PageSize;
        const Addr pa = (i % 3 == 0)
                            ? Addr(i) * PageSize
                            : (64 + (i * 7) % 128) * PageSize;
        mapBoth(1, va, pa, PermRead | PermWrite);
    }
    // A second process, partially read-only.
    for (int i = 0; i < 8; ++i)
        mapBoth(2, 0x400000 + Addr(i) * PageSize,
                (200 + i) * PageSize,
                i < 4 ? (PermRead | PermWrite) : PermRead);

    Rng rng{0x90140};
    std::vector<std::uint8_t> buf_fast(4 * PageSize);
    std::vector<std::uint8_t> buf_ref(4 * PageSize);
    for (int op = 0; op < 3000; ++op) {
        const std::uint64_t r = rng.next();
        const ExecContext ctx{static_cast<ProcessId>(1 + r % 2),
                              InvalidEnclaveId};
        const Addr addr = 0x400000 + ((r >> 8) % 50) * PageSize +
                          (r >> 16) % PageSize;
        const std::size_t len =
            1 + (r >> 32) % (3 * PageSize + PageSize / 2);
        if ((r >> 4) % 2 == 0) {
            std::fill(buf_fast.begin(), buf_fast.end(), 0xCC);
            std::fill(buf_ref.begin(), buf_ref.end(), 0xCC);
            Status a = fast_.mmu.read(ctx, addr, buf_fast.data(), len);
            Status b =
                ref_.mmu.readReference(ctx, addr, buf_ref.data(), len);
            ASSERT_EQ(a.code(), b.code()) << "read op " << op;
            ASSERT_EQ(buf_fast, buf_ref) << "read bytes op " << op;
        } else {
            for (std::size_t j = 0; j < len; ++j)
                buf_fast[j] =
                    static_cast<std::uint8_t>(r >> (j % 56));
            Status a = fast_.mmu.write(ctx, addr, buf_fast.data(), len);
            Status b = ref_.mmu.writeReference(ctx, addr,
                                               buf_fast.data(), len);
            ASSERT_EQ(a.code(), b.code()) << "write op " << op;
        }
        if (op % 97 == 0) {
            fast_.mmu.flushTlbPid(ctx.pid);
            ref_.mmu.flushTlbPid(ctx.pid);
        }
        expectCountersEqual("mid-stream");
        if (HasFatalFailure() || HasNonfatalFailure())
            FAIL() << "diverged at op " << op;
    }
    // Both RAMs hold identical contents after the full stream.
    std::vector<std::uint8_t> a(GoldenRamSize);
    std::vector<std::uint8_t> b(GoldenRamSize);
    ASSERT_TRUE(fast_.ram.readAt(0, a.data(), a.size()).isOk());
    ASSERT_TRUE(ref_.ram.readAt(0, b.data(), b.size()).isOk());
    EXPECT_TRUE(a == b) << "RAM images diverged";
}

TEST_F(MemGoldenMmu, MidSpanFaultDeliversIdenticalPrefix)
{
    // Pages 0 and 1 mapped, page 2 is a hole: a 3-page read faults on
    // the hole but must have delivered the first two pages — in both
    // engines, with identical counters.
    mapBoth(1, 0x400000, 0x10000, PermRead | PermWrite);
    mapBoth(1, 0x401000, 0x30000, PermRead | PermWrite);
    ExecContext ctx{1, InvalidEnclaveId};

    std::vector<std::uint8_t> seed(2 * PageSize);
    for (std::size_t i = 0; i < seed.size(); ++i)
        seed[i] = static_cast<std::uint8_t>(i * 31 + 7);
    ASSERT_TRUE(
        fast_.mmu.write(ctx, 0x400000, seed.data(), seed.size()).isOk());
    ASSERT_TRUE(ref_.mmu
                    .writeReference(ctx, 0x400000, seed.data(),
                                    seed.size())
                    .isOk());

    std::vector<std::uint8_t> got_fast(3 * PageSize, 0xEE);
    std::vector<std::uint8_t> got_ref(3 * PageSize, 0xEE);
    Status a =
        fast_.mmu.read(ctx, 0x400000, got_fast.data(), got_fast.size());
    Status b = ref_.mmu.readReference(ctx, 0x400000, got_ref.data(),
                                      got_ref.size());
    EXPECT_EQ(a.code(), StatusCode::NotFound);
    EXPECT_EQ(a.code(), b.code());
    EXPECT_EQ(got_fast, got_ref);
    EXPECT_TRUE(std::equal(seed.begin(), seed.end(), got_fast.begin()));
    expectCountersEqual("after mid-span fault");
}

TEST_F(MemGoldenMmu, ValidatorDenialCountsIdentically)
{
    class DenyOdd : public TlbFillValidator
    {
      public:
        Status
        validateFill(const ExecContext &, Addr, Addr ppage,
                     std::uint8_t) override
        {
            if ((ppage / PageSize) % 2 == 1)
                return errAccessFault("validator denied fill");
            return Status::ok();
        }
    };
    DenyOdd deny_fast, deny_ref;
    fast_.mmu.addValidator(&deny_fast);
    ref_.mmu.addValidator(&deny_ref);
    mapBoth(1, 0x400000, 2 * PageSize, PermRead | PermWrite);
    mapBoth(1, 0x401000, 3 * PageSize, PermRead | PermWrite);  // denied
    ExecContext ctx{1, InvalidEnclaveId};

    std::vector<std::uint8_t> buf_fast(2 * PageSize, 0x5A);
    std::vector<std::uint8_t> buf_ref(2 * PageSize, 0x5A);
    Status a =
        fast_.mmu.read(ctx, 0x400000, buf_fast.data(), buf_fast.size());
    Status b = ref_.mmu.readReference(ctx, 0x400000, buf_ref.data(),
                                      buf_ref.size());
    EXPECT_EQ(a.code(), StatusCode::AccessFault);
    EXPECT_EQ(a.code(), b.code());
    EXPECT_EQ(buf_fast, buf_ref);
    // The denied fill was not cached by either engine.
    EXPECT_EQ(fast_.mmu.tlb().size(), 1u);
    expectCountersEqual("after denial");
}

// ----- MemGoldenBus ----------------------------------------------------

TEST(MemGoldenBus, RoutingMatchesReferenceUnderChurn)
{
    PhysicalBus bus;
    std::vector<std::unique_ptr<PhysMem>> mems;
    std::vector<AddrRange> attached;
    Rng rng{0xB05};

    auto check = [&](Addr addr) {
        const auto *fast = bus.route(addr);
        const auto *ref = bus.routeReference(addr);
        ASSERT_EQ(fast == nullptr, ref == nullptr)
            << "presence at " << addr;
        if (fast) {
            EXPECT_EQ(fast->target, ref->target);
            EXPECT_TRUE(fast->range == ref->range);
        }
    };

    for (int op = 0; op < 2000; ++op) {
        const std::uint64_t r = rng.next();
        switch (r % 3) {
          case 0: {  // attach a fresh page-aligned island
            const Addr base = ((r >> 8) % 512) * PageSize;
            const std::uint64_t size = (1 + (r >> 24) % 4) * PageSize;
            auto mem = std::make_unique<PhysMem>("island", size);
            if (bus.attach(AddrRange(base, size), mem.get()).isOk()) {
                mems.push_back(std::move(mem));
                attached.push_back(AddrRange(base, size));
            }
            break;
          }
          case 1: {  // detach one island
            if (!attached.empty()) {
                const std::size_t idx = (r >> 8) % attached.size();
                ASSERT_TRUE(bus.detach(attached[idx]).isOk());
                attached.erase(attached.begin() + idx);
            }
            break;
          }
          default:  // probe: random addrs, range edges, far misses
            check((r >> 8) % (600 * PageSize));
            if (!attached.empty()) {
                const AddrRange &range =
                    attached[(r >> 16) % attached.size()];
                check(range.start());
                check(range.end() - 1);
                check(range.end());
            }
            check(~0ull);
            break;
        }
        ASSERT_EQ(bus.mappingCount(), attached.size());
        if (::testing::Test::HasFatalFailure())
            FAIL() << "diverged at op " << op;
    }
}

// ----- MemGoldenIotlb --------------------------------------------------

TEST(MemGoldenIotlb, TranslateAlwaysMirrorsTheTable)
{
    // The IOTLB may never return anything the OS-owned table would
    // not: unmap and overwrite invalidate the cached page before they
    // take effect.
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x1000, 0x80000).isOk());

    auto pa = iommu.translate(0x1234);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x80234u);
    EXPECT_EQ(iommu.iotlbMisses(), 1u);
    pa = iommu.translate(0x1008);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(iommu.iotlbHits(), 1u);

    // Redirect: the very next translate sees the new target.
    iommu.overwrite(0x1000, 0x90000);
    pa = iommu.translate(0x1004);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x90004u);
    EXPECT_EQ(iommu.iotlbMisses(), 2u) << "stale entry served";

    // Unmap: cached page must not survive as a ghost mapping.
    ASSERT_TRUE(iommu.unmap(0x1000).isOk());
    EXPECT_EQ(iommu.translate(0x1000).status().code(),
              StatusCode::AccessFault);
    EXPECT_EQ(iommu.iotlbSize(), 0u);
}

TEST(MemGoldenIotlb, RandomizedShadowDifferential)
{
    Iommu iommu;
    iommu.setEnabled(true);
    std::unordered_map<Addr, Addr> shadow;
    Rng rng{0x10D1F};
    for (int op = 0; op < 5000; ++op) {
        const std::uint64_t r = rng.next();
        const Addr dpage = ((r >> 8) % 32) * PageSize;
        const Addr ppage = ((r >> 16) % 256) * PageSize;
        switch (r % 5) {
          case 0: {
            Status st = iommu.map(dpage, ppage);
            if (shadow.count(dpage))
                ASSERT_FALSE(st.isOk());
            else {
                ASSERT_TRUE(st.isOk());
                shadow[dpage] = ppage;
            }
            break;
          }
          case 1: {
            Status st = iommu.unmap(dpage);
            ASSERT_EQ(st.isOk(), shadow.erase(dpage) > 0);
            break;
          }
          case 2:
            iommu.overwrite(dpage, ppage);
            shadow[dpage] = ppage;
            break;
          case 3:
            iommu.flushIotlb();
            ASSERT_EQ(iommu.iotlbSize(), 0u);
            break;
          default: {
            const Addr off = (r >> 48) % PageSize;
            auto pa = iommu.translate(dpage + off);
            auto it = shadow.find(dpage);
            if (it == shadow.end()) {
                ASSERT_FALSE(pa.isOk()) << "ghost mapping at op " << op;
            } else {
                ASSERT_TRUE(pa.isOk()) << "lost mapping at op " << op;
                ASSERT_EQ(*pa, it->second + off) << "at op " << op;
            }
            break;
          }
        }
        ASSERT_EQ(iommu.entryCount(), shadow.size());
        ASSERT_LE(iommu.iotlbSize(),
                  std::min<std::size_t>(64, shadow.size()));
    }
    EXPECT_GT(iommu.iotlbHits(), 0u);
    EXPECT_GT(iommu.iotlbMisses(), 0u);
}

TEST(MemGoldenIotlb, CapacityBoundAndLruRefill)
{
    Iommu iommu(4);  // 1 set x 4 ways or 2x2 — capacity 4 either way
    iommu.setEnabled(true);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(
            iommu.map(Addr(i) * PageSize, Addr(64 + i) * PageSize)
                .isOk());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(iommu.translate(Addr(i) * PageSize).isOk());
    EXPECT_EQ(iommu.iotlbMisses(), 8u);
    EXPECT_LE(iommu.iotlbSize(), 4u);
    // Every translate still returns the right answer after eviction.
    for (int i = 0; i < 8; ++i) {
        auto pa = iommu.translate(Addr(i) * PageSize + 4);
        ASSERT_TRUE(pa.isOk());
        EXPECT_EQ(*pa, Addr(64 + i) * PageSize + 4);
    }
}

TEST(MemGoldenIotlb, DisabledModeBypassesAndDoesNotCount)
{
    Iommu iommu;
    ASSERT_TRUE(iommu.map(0x1000, 0x80000).isOk());
    auto pa = iommu.translate(0x1234);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x1234u);  // identity, table ignored
    EXPECT_EQ(iommu.iotlbHits(), 0u);
    EXPECT_EQ(iommu.iotlbMisses(), 0u);
    EXPECT_EQ(iommu.iotlbSize(), 0u);
}

// ----- MemGoldenCow ----------------------------------------------------
//
// Copy-on-write snapshot/fork differential: a family of PhysMem forks
// and frozen snapshots driven by a randomized op stream, each fork
// shadowed by an eager deep-copy oracle (a dense byte vector; a
// "snapshot" of the oracle is a full copy). Whatever interleaving of
// writes, scrubs, snapshots, adopts, and fork creation the stream
// produces, every fork must read back exactly its oracle's bytes and
// every frozen snapshot must still carry the bytes it froze.

namespace
{

constexpr std::uint64_t CowPages = 32;
constexpr std::uint64_t CowSize = CowPages * PageSize;

struct CowFork
{
    std::unique_ptr<PhysMem> mem;
    std::vector<std::uint8_t> oracle;
};

struct CowSnap
{
    PhysMem::Snapshot snap;
    std::vector<std::uint8_t> oracle;
};

void
expectForkMatchesOracle(const CowFork &fork, const char *where)
{
    std::vector<std::uint8_t> page(PageSize);
    for (std::uint64_t p = 0; p < CowPages; ++p) {
        const std::uint64_t off = p * PageSize;
        ASSERT_TRUE(
            fork.mem->readAt(off, page.data(), PageSize).isOk());
        ASSERT_EQ(0, std::memcmp(page.data(), fork.oracle.data() + off,
                                 PageSize))
            << where << ": fork diverged from oracle at page " << p;
    }
}

void
driveCowStream(std::uint64_t seed, int iterations)
{
    Rng rng{seed};
    std::vector<CowFork> forks;
    forks.push_back({std::make_unique<PhysMem>("cow0", CowSize),
                     std::vector<std::uint8_t>(CowSize, 0)});
    std::vector<CowSnap> snaps;
    std::vector<std::uint8_t> buf(2 * PageSize);
    int next_fork = 1;

    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t r = rng.next();
        CowFork &f = forks[(r >> 4) % forks.size()];
        std::uint64_t off = (r >> 8) % CowSize;
        std::uint64_t len = 1 + (r >> 32) % (2 * PageSize - 1);
        if ((r >> 52) & 1) {  // page-aligned, whole pages
            off &= ~(PageSize - 1);
            len = ((len / PageSize) + 1) * PageSize;
        }
        if (off + len > CowSize)
            len = CowSize - off;
        switch (r % 8) {
          case 0:
          case 1: {  // write
            for (std::uint64_t b = 0; b < len; ++b)
                buf[b] = static_cast<std::uint8_t>((r >> (b % 8)) ^
                                                   (off + b));
            ASSERT_TRUE(
                f.mem->writeAt(off, buf.data(), len).isOk());
            std::memcpy(f.oracle.data() + off, buf.data(), len);
            break;
          }
          case 2: {  // read + compare
            ASSERT_TRUE(f.mem->readAt(off, buf.data(), len).isOk());
            ASSERT_EQ(0, std::memcmp(buf.data(),
                                     f.oracle.data() + off, len));
            break;
          }
          case 3: {  // scrub
            ASSERT_TRUE(f.mem->zeroAt(off, len).isOk());
            std::memset(f.oracle.data() + off, 0, len);
            break;
          }
          case 4: {  // freeze a snapshot
            if (snaps.size() >= 3)
                break;
            snaps.push_back({f.mem->snapshot(), f.oracle});
            // All pages became shared: nothing private remains.
            EXPECT_EQ(f.mem->residentPages(), 0u);
            break;
          }
          case 5: {  // rewind onto a snapshot
            if (snaps.empty())
                break;
            CowSnap &s = snaps[(r >> 16) % snaps.size()];
            ASSERT_TRUE(f.mem->adopt(s.snap).isOk());
            f.oracle = s.oracle;
            EXPECT_EQ(f.mem->residentPages(), 0u);
            break;
          }
          case 6: {  // sibling fork off a snapshot
            if (snaps.empty() || forks.size() >= 4)
                break;
            CowSnap &s = snaps[(r >> 16) % snaps.size()];
            CowFork fresh{std::make_unique<PhysMem>(
                              "cow" + std::to_string(next_fork++),
                              CowSize),
                          s.oracle};
            ASSERT_TRUE(fresh.mem->adopt(s.snap).isOk());
            forks.push_back(std::move(fresh));
            break;
          }
          case 7: {  // retire a snapshot or fork
            if ((r >> 16) & 1 && !snaps.empty())
                snaps.erase(snaps.begin() + ((r >> 20) % snaps.size()));
            else if (forks.size() > 1)
                forks.erase(forks.begin() + ((r >> 20) % forks.size()));
            break;
          }
        }
    }

    for (const CowFork &f : forks)
        expectForkMatchesOracle(f, "final sweep");
    // Frozen snapshots still read back the exact bytes they froze:
    // no fork write ever reached a shared page in place.
    for (const CowSnap &s : snaps) {
        CowFork probe{std::make_unique<PhysMem>("probe", CowSize),
                      s.oracle};
        ASSERT_TRUE(probe.mem->adopt(s.snap).isOk());
        expectForkMatchesOracle(probe, "snapshot probe");
    }
}

}  // namespace

TEST(MemGoldenCow, RandomizedForkStreamsMatchEagerDeepCopyOracle)
{
    for (std::uint64_t seed : {0xc0117ull, 0xfaceull, 0x5eedull})
        driveCowStream(seed, 4000);
}

TEST(MemGoldenCow, WholePageScrubDropsPagesWithoutDivergence)
{
    // Page-aligned heavy stream: biased toward the zeroAt() sparse
    // page-drop and snapshot/adopt paths rather than byte writes.
    PhysMem mem("scrub", CowSize);
    std::vector<std::uint8_t> oracle(CowSize, 0);
    Rng rng{0xd10ull};
    std::vector<std::uint8_t> page(PageSize, 0x5a);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t off = ((r >> 8) % CowPages) * PageSize;
        if (r % 3 == 0) {
            ASSERT_TRUE(mem.zeroAt(off, PageSize).isOk());
            std::memset(oracle.data() + off, 0, PageSize);
        } else {
            page.assign(PageSize,
                        static_cast<std::uint8_t>(r >> 16));
            ASSERT_TRUE(
                mem.writeAt(off, page.data(), PageSize).isOk());
            std::memcpy(oracle.data() + off, page.data(), PageSize);
        }
    }
    std::vector<std::uint8_t> got(PageSize);
    for (std::uint64_t p = 0; p < CowPages; ++p) {
        ASSERT_TRUE(
            mem.readAt(p * PageSize, got.data(), PageSize).isOk());
        ASSERT_EQ(0, std::memcmp(got.data(),
                                 oracle.data() + p * PageSize,
                                 PageSize));
    }
}

}  // namespace
}  // namespace hix::mem
