/**
 * @file
 * Tests for page tables, TLB behaviour, and the validating walker —
 * including the attack primitive (PTE overwrite) that HIX's
 * validators must catch.
 */

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/iommu.h"
#include "mem/mmu.h"
#include "mem/phys_mem.h"

namespace hix::mem
{
namespace
{

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : ram_("ram", 16 * MiB), mmu_(&bus_, 8)
    {
        EXPECT_TRUE(bus_.attach(AddrRange(0, 16 * MiB), &ram_).isOk());
        mmu_.setPageTableProvider(
            [this](ProcessId pid) -> PageTable * {
                auto it = tables_.find(pid);
                return it == tables_.end() ? nullptr : &it->second;
            });
    }

    PageTable &table(ProcessId pid) { return tables_[pid]; }

    PhysicalBus bus_;
    PhysMem ram_;
    Mmu mmu_;
    std::unordered_map<ProcessId, PageTable> tables_;
};

TEST_F(MmuTest, TranslateMappedPage)
{
    ASSERT_TRUE(
        table(1).map(0x400000, 0x10000, PermRead | PermWrite).isOk());
    ExecContext ctx{1, InvalidEnclaveId};
    auto pa = mmu_.translate(ctx, 0x400123, AccessType::Read);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x10123u);
}

TEST_F(MmuTest, UnmappedPageFaults)
{
    ExecContext ctx{1, InvalidEnclaveId};
    auto pa = mmu_.translate(ctx, 0x400000, AccessType::Read);
    EXPECT_FALSE(pa.isOk());
}

TEST_F(MmuTest, PermissionEnforced)
{
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ExecContext ctx{1, InvalidEnclaveId};
    EXPECT_TRUE(mmu_.translate(ctx, 0x400000, AccessType::Read).isOk());
    auto w = mmu_.translate(ctx, 0x400000, AccessType::Write);
    EXPECT_EQ(w.status().code(), StatusCode::AccessFault);
}

TEST_F(MmuTest, TlbHitAfterFill)
{
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ExecContext ctx{1, InvalidEnclaveId};
    ASSERT_TRUE(mmu_.translate(ctx, 0x400000, AccessType::Read).isOk());
    EXPECT_EQ(mmu_.tlb().misses(), 1u);
    ASSERT_TRUE(mmu_.translate(ctx, 0x400800, AccessType::Read).isOk());
    EXPECT_EQ(mmu_.tlb().hits(), 1u);
}

TEST_F(MmuTest, CachedTranslationSurvivesPteOverwrite)
{
    // Models real TLB semantics: changing the PTE does not change
    // already-cached translations until a flush.
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ExecContext ctx{1, InvalidEnclaveId};
    ASSERT_TRUE(mmu_.translate(ctx, 0x400000, AccessType::Read).isOk());

    table(1).overwrite(0x400000, 0x20000, PermRead);
    auto pa = mmu_.translate(ctx, 0x400000, AccessType::Read);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x10000u);

    mmu_.tlb().flushPage(1, 0x400000);
    pa = mmu_.translate(ctx, 0x400000, AccessType::Read);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x20000u);
}

TEST_F(MmuTest, SeparateProcessesDoNotShareTlbEntries)
{
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ASSERT_TRUE(table(2).map(0x400000, 0x20000, PermRead).isOk());
    auto pa1 = mmu_.translate({1, InvalidEnclaveId}, 0x400000,
                              AccessType::Read);
    auto pa2 = mmu_.translate({2, InvalidEnclaveId}, 0x400000,
                              AccessType::Read);
    ASSERT_TRUE(pa1.isOk());
    ASSERT_TRUE(pa2.isOk());
    EXPECT_EQ(*pa1, 0x10000u);
    EXPECT_EQ(*pa2, 0x20000u);
}

TEST_F(MmuTest, EnclaveModeTagsTlbSeparately)
{
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ExecContext outside{1, InvalidEnclaveId};
    ExecContext inside{1, 55};
    ASSERT_TRUE(
        mmu_.translate(outside, 0x400000, AccessType::Read).isOk());
    // Different enclave tag misses and refills.
    ASSERT_TRUE(
        mmu_.translate(inside, 0x400000, AccessType::Read).isOk());
    EXPECT_EQ(mmu_.tlb().misses(), 2u);
}

class DenyValidator : public TlbFillValidator
{
  public:
    explicit DenyValidator(Addr deny_ppage) : deny_(deny_ppage) {}

    Status
    validateFill(const ExecContext &, Addr, Addr ppage,
                 std::uint8_t) override
    {
        if (ppage == deny_)
            return errAccessFault("validator denied fill");
        ++allowed;
        return Status::ok();
    }

    int allowed = 0;

  private:
    Addr deny_;
};

TEST_F(MmuTest, ValidatorCanDenyFill)
{
    DenyValidator validator(0x20000);
    mmu_.addValidator(&validator);
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ASSERT_TRUE(table(1).map(0x401000, 0x20000, PermRead).isOk());

    ExecContext ctx{1, InvalidEnclaveId};
    EXPECT_TRUE(mmu_.translate(ctx, 0x400000, AccessType::Read).isOk());
    auto denied = mmu_.translate(ctx, 0x401000, AccessType::Read);
    EXPECT_EQ(denied.status().code(), StatusCode::AccessFault);
    EXPECT_EQ(validator.allowed, 1);
    // A denied fill must not be cached.
    EXPECT_EQ(mmu_.tlb().size(), 1u);
}

TEST_F(MmuTest, ReadWriteThroughVirtualAddresses)
{
    ASSERT_TRUE(table(1)
                    .mapRange(0x400000, 0x10000, 2 * PageSize,
                              PermRead | PermWrite)
                    .isOk());
    ExecContext ctx{1, InvalidEnclaveId};
    Bytes data(PageSize + 10, 0x3c);
    ASSERT_TRUE(
        mmu_.write(ctx, 0x400ff0, data.data(), data.size()).isOk());
    Bytes back(data.size());
    ASSERT_TRUE(
        mmu_.read(ctx, 0x400ff0, back.data(), back.size()).isOk());
    EXPECT_EQ(back, data);
}

TEST_F(MmuTest, TlbStaysAtCapacityUnderPressure)
{
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(table(1)
                        .map(0x400000 + i * PageSize,
                             0x10000 + i * PageSize, PermRead)
                        .isOk());
    }
    ExecContext ctx{1, InvalidEnclaveId};
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(mmu_.translate(ctx, 0x400000 + i * PageSize,
                                   AccessType::Read)
                        .isOk());
    }
    // Capacity is 8; two entries were evicted somewhere.
    EXPECT_EQ(mmu_.tlb().size(), 8u);
    EXPECT_EQ(mmu_.tlb().misses(), 10u);
}

TEST_F(MmuTest, TlbEvictsLeastRecentlyUsedWhenFull)
{
    // Fully associative (ways = capacity) so the victim is the
    // globally least-recently-used entry, independent of the hash.
    // Both engines must agree (they share the replacement policy).
    for (int i = 0; i < 9; ++i) {
        ASSERT_TRUE(table(1)
                        .map(0x400000 + i * PageSize,
                             0x10000 + i * PageSize, PermRead)
                        .isOk());
    }
    for (TlbEngine engine : {TlbEngine::Fast, TlbEngine::Reference}) {
        Mmu mmu(&bus_, 8, engine, /*tlb_ways=*/8);
        mmu.setPageTableProvider([this](ProcessId pid) -> PageTable * {
            auto it = tables_.find(pid);
            return it == tables_.end() ? nullptr : &it->second;
        });
        ExecContext ctx{1, InvalidEnclaveId};
        for (int i = 0; i < 8; ++i) {
            ASSERT_TRUE(mmu.translate(ctx, 0x400000 + i * PageSize,
                                      AccessType::Read)
                            .isOk());
        }
        EXPECT_EQ(mmu.tlbMisses(), 8u);
        // Touch page 0: it becomes most-recent, page 1 is now LRU.
        ASSERT_TRUE(
            mmu.translate(ctx, 0x400000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlbHits(), 1u);
        // Insert page 8 into the full TLB: evicts page 1, not page 0
        // (under FIFO the victim would have been page 0).
        ASSERT_TRUE(mmu.translate(ctx, 0x400000 + 8 * PageSize,
                                  AccessType::Read)
                        .isOk());
        EXPECT_EQ(mmu.tlb().size(), 8u);
        ASSERT_TRUE(
            mmu.translate(ctx, 0x400000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlbHits(), 2u) << "page 0 was wrongly evicted";
        ASSERT_TRUE(
            mmu.translate(ctx, 0x401000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlbMisses(), 10u) << "page 1 was not the victim";
    }
}

TEST_F(MmuTest, FlushPageIgnoresEnclaveTag)
{
    // Conservative-flush contract: one (pid, vpage) cached under three
    // different enclave tags; flushTlbPage drops all three.
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    for (TlbEngine engine : {TlbEngine::Fast, TlbEngine::Reference}) {
        Mmu mmu(&bus_, 8, engine);
        mmu.setPageTableProvider([this](ProcessId pid) -> PageTable * {
            auto it = tables_.find(pid);
            return it == tables_.end() ? nullptr : &it->second;
        });
        for (EnclaveId e : {InvalidEnclaveId, EnclaveId(55),
                            EnclaveId(77)}) {
            ASSERT_TRUE(mmu.translate({1, e}, 0x400000,
                                      AccessType::Read)
                            .isOk());
        }
        EXPECT_EQ(mmu.tlb().size(), 3u);
        mmu.flushTlbPage(1, 0x400000);
        EXPECT_EQ(mmu.tlb().size(), 0u);
    }
}

TEST_F(MmuTest, FlushPidDropsAllEnclaveEntriesOfThatPid)
{
    // Conservative-flush contract: flushPid ignores the enclave tag
    // and leaves other processes' entries alone.
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ASSERT_TRUE(table(1).map(0x401000, 0x11000, PermRead).isOk());
    ASSERT_TRUE(table(2).map(0x400000, 0x20000, PermRead).isOk());
    for (TlbEngine engine : {TlbEngine::Fast, TlbEngine::Reference}) {
        Mmu mmu(&bus_, 8, engine);
        mmu.setPageTableProvider([this](ProcessId pid) -> PageTable * {
            auto it = tables_.find(pid);
            return it == tables_.end() ? nullptr : &it->second;
        });
        ASSERT_TRUE(mmu.translate({1, InvalidEnclaveId}, 0x400000,
                                  AccessType::Read)
                        .isOk());
        ASSERT_TRUE(
            mmu.translate({1, 55}, 0x401000, AccessType::Read).isOk());
        ASSERT_TRUE(mmu.translate({2, InvalidEnclaveId}, 0x400000,
                                  AccessType::Read)
                        .isOk());
        EXPECT_EQ(mmu.tlb().size(), 3u);
        mmu.flushTlbPid(1);
        EXPECT_EQ(mmu.tlb().size(), 1u);
        // pid 2's entry survived and still hits.
        ASSERT_TRUE(mmu.translate({2, InvalidEnclaveId}, 0x400000,
                                  AccessType::Read)
                        .isOk());
        EXPECT_EQ(mmu.tlbHits(), 1u);
    }
}

TEST_F(MmuTest, CapacityOneTlbDegeneratesGracefully)
{
    // 1 set x 1 way: every distinct key evicts the previous one.
    ASSERT_TRUE(table(1).map(0x400000, 0x10000, PermRead).isOk());
    ASSERT_TRUE(table(1).map(0x401000, 0x11000, PermRead).isOk());
    for (TlbEngine engine : {TlbEngine::Fast, TlbEngine::Reference}) {
        Mmu mmu(&bus_, 1, engine);
        mmu.setPageTableProvider([this](ProcessId pid) -> PageTable * {
            auto it = tables_.find(pid);
            return it == tables_.end() ? nullptr : &it->second;
        });
        ExecContext ctx{1, InvalidEnclaveId};
        ASSERT_TRUE(
            mmu.translate(ctx, 0x400000, AccessType::Read).isOk());
        ASSERT_TRUE(
            mmu.translate(ctx, 0x400000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlbHits(), 1u);
        ASSERT_TRUE(
            mmu.translate(ctx, 0x401000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlb().size(), 1u);
        ASSERT_TRUE(
            mmu.translate(ctx, 0x400000, AccessType::Read).isOk());
        EXPECT_EQ(mmu.tlbMisses(), 3u);
        EXPECT_EQ(mmu.tlb().size(), 1u);
    }
}

TEST(IommuTest, BypassWhenDisabled)
{
    Iommu iommu;
    auto pa = iommu.translate(0x12345);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x12345u);
}

TEST(IommuTest, TranslatesWhenEnabled)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x1000, 0x80000).isOk());
    auto pa = iommu.translate(0x1234);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x80234u);
    EXPECT_EQ(iommu.translate(0x2000).status().code(),
              StatusCode::AccessFault);
}

TEST(IommuTest, OverwriteRedirects)
{
    Iommu iommu;
    iommu.setEnabled(true);
    ASSERT_TRUE(iommu.map(0x1000, 0x80000).isOk());
    iommu.overwrite(0x1000, 0x90000);
    auto pa = iommu.translate(0x1000);
    ASSERT_TRUE(pa.isOk());
    EXPECT_EQ(*pa, 0x90000u);
}

}  // namespace
}  // namespace hix::mem
