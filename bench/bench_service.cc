/**
 * @file
 * GPU-pool service bench: an open-loop session stream (seeded
 * deterministic arrivals, Rodinia app mix) served by a multi-GPU
 * pool under each placement policy, on both runtimes. Reports
 * p50/p95/p99 session latency, per-device compute utilization, and
 * queue-depth maxima per policy.
 *
 * A second row group replays closed-batch 1-device pools and must
 * reproduce bench_multiuser's ticks bit-exactly (CI gates on it):
 * the pool runtime collapses to the plain runWorkload() path when
 * there is one device and no admission waits.
 */

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "svc/service.h"

using namespace hix;
using namespace hix::svc;

namespace
{

void
openLoopRow(bench::BenchJson &json, Policy policy, bool use_hix)
{
    ServiceConfig cfg;
    cfg.devices = 4;
    cfg.policy = policy;
    cfg.useHix = use_hix;
    cfg.seed = 0x5e55;
    cfg.sessions = 1000;
    cfg.meanInterarrivalTicks = 4'000'000;
    cfg.tableCap = 64;
    cfg.appMix = {"NN", "LUD", "BFS"};
    cfg.userPopulation = 64;
    cfg.run.forkSessions = true;

    const std::string config =
        std::string("policy=") + policyName(policy) +
        " runtime=" + (use_hix ? "hix" : "gdev") +
        " devices=4 sessions=1000";
    bench::HostTimer timer;
    auto out = runService(cfg);
    if (!out.isOk()) {
        std::printf("  !! %s failed: %s\n", config.c_str(),
                    out.status().message().c_str());
        return;
    }
    auto &row = json.add(config, out->pool.run.ticks, timer.ms());
    row.metric("p50", static_cast<double>(out->p50))
        .metric("p95", static_cast<double>(out->p95))
        .metric("p99", static_cast<double>(out->p99))
        .metric("admit_queue_depth_max",
                out->plan.admitQueueDepthMax);
    for (int d = 0; d < cfg.devices; ++d) {
        const std::string suffix = "_dev" + std::to_string(d);
        row.metric("util" + suffix, out->deviceUtil[d])
            .metric("sessions" + suffix,
                    out->plan.perDeviceSessions[d])
            .metric("queue_depth_max" + suffix,
                    out->plan.queueDepthMax[d]);
    }
    std::printf(
        "%-60s p50=%llu p95=%llu p99=%llu util=[%.2f %.2f %.2f %.2f]\n",
        config.c_str(), static_cast<unsigned long long>(out->p50),
        static_cast<unsigned long long>(out->p95),
        static_cast<unsigned long long>(out->p99),
        out->deviceUtil[0], out->deviceUtil[1], out->deviceUtil[2],
        out->deviceUtil[3]);
}

/** Open-loop pool on the Volta preset: per-context compute queues,
 * DMA channels, and enclave lanes (all 8-wide), so sessions sharing
 * one device spread across private slices of every engine bank. The
 * row reports per-channel DMA utilization from the pool schedule —
 * the knob's visible effect is transfer time spreading across the
 * channel bank instead of serializing on one copy engine. */
void
voltaRow(bench::BenchJson &json, Policy policy, bool use_hix)
{
    ServiceConfig cfg;
    cfg.devices = 4;
    cfg.policy = policy;
    cfg.useHix = use_hix;
    cfg.seed = 0x5e55;
    cfg.sessions = 1000;
    cfg.meanInterarrivalTicks = 4'000'000;
    cfg.tableCap = 64;
    cfg.appMix = {"NN", "LUD", "BFS"};
    cfg.userPopulation = 64;
    cfg.run.forkSessions = true;
    cfg.run.machine.timing.gpuConcurrentContexts = 8;
    cfg.run.machine.timing.gpuDmaChannels = 8;
    cfg.run.machine.timing.gpuEnclaveLanes = 8;

    const std::string config =
        std::string("volta policy=") + policyName(policy) +
        " runtime=" + (use_hix ? "hix" : "gdev") +
        " devices=4 sessions=1000";
    bench::HostTimer timer;
    auto out = runService(cfg);
    if (!out.isOk()) {
        std::printf("  !! %s failed: %s\n", config.c_str(),
                    out.status().message().c_str());
        return;
    }
    auto &row = json.add(config, out->pool.run.ticks, timer.ms());
    row.metric("p50", static_cast<double>(out->p50))
        .metric("p95", static_cast<double>(out->p95))
        .metric("p99", static_cast<double>(out->p99))
        .metric("admit_queue_depth_max",
                out->plan.admitQueueDepthMax);
    const auto channels = cfg.run.machine.timing.gpuDmaChannels;
    for (int d = 0; d < cfg.devices; ++d) {
        const std::string suffix = "_dev" + std::to_string(d);
        row.metric("util" + suffix, out->deviceUtil[d])
            .metric("sessions" + suffix,
                    out->plan.perDeviceSessions[d]);
        int busy_channels = 0;
        for (std::uint32_t c = 0; c < channels; ++c) {
            const std::size_t i = d * channels + c;
            const std::string ch =
                suffix + "_ch" + std::to_string(c);
            row.metric("dma_h2d_util" + ch, out->dmaHtoDUtil[i])
                .metric("dma_d2h_util" + ch, out->dmaDtoHUtil[i]);
            if (out->dmaHtoDUtil[i] > 0 || out->dmaDtoHUtil[i] > 0)
                ++busy_channels;
        }
        row.metric("dma_busy_channels" + suffix, busy_channels);
    }
    std::printf(
        "%-60s p50=%llu p95=%llu p99=%llu util=[%.2f %.2f %.2f %.2f]\n",
        config.c_str(), static_cast<unsigned long long>(out->p50),
        static_cast<unsigned long long>(out->p95),
        static_cast<unsigned long long>(out->p99),
        out->deviceUtil[0], out->deviceUtil[1], out->deviceUtil[2],
        out->deviceUtil[3]);
}

/** Closed-batch 1-device pool; ticks must equal the corresponding
 * BENCH_multiuser row (the CI perf-smoke gate compares them). */
void
gateRow(bench::BenchJson &json, const std::string &app, int users,
        bool use_hix)
{
    ServiceConfig cfg;
    cfg.devices = 1;
    cfg.policy = Policy::RoundRobin;
    cfg.useHix = use_hix;
    cfg.sessions = users;
    cfg.appMix = {app};

    const std::string config =
        "gate app=" + app + " users=" + std::to_string(users) +
        " runtime=" + (use_hix ? "hix" : "gdev");
    bench::HostTimer timer;
    auto out = runService(cfg);
    if (!out.isOk()) {
        std::printf("  !! %s failed: %s\n", config.c_str(),
                    out.status().message().c_str());
        return;
    }
    json.add(config, out->pool.run.ticks, timer.ms());
    std::printf("%-60s ticks=%llu\n", config.c_str(),
                static_cast<unsigned long long>(out->pool.run.ticks));
}

}  // namespace

int
main()
{
    bench::BenchJson json("service");
    for (bool use_hix : {false, true})
        for (Policy policy : {Policy::RoundRobin, Policy::LeastLoaded,
                              Policy::Affinity})
            openLoopRow(json, policy, use_hix);
    for (bool use_hix : {false, true})
        for (Policy policy : {Policy::RoundRobin, Policy::LeastLoaded,
                              Policy::Affinity})
            voltaRow(json, policy, use_hix);
    for (const char *app : {"NN", "BP"})
        for (int users : {2, 4})
            for (bool use_hix : {false, true})
                gateRow(json, app, users, use_hix);
    json.write();
    return 0;
}
