/**
 * @file
 * Reproduces Figure 7 / Table 5: single-user execution time of the
 * nine Rodinia applications on Gdev (unprotected) and HIX, with the
 * per-application transfer volumes and the HIX overhead.
 */

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "workloads/runner.h"

using namespace hix;
using namespace hix::workloads;

int
main()
{
    std::printf(
        "Figure 7 / Table 5: Rodinia benchmarks, single user "
        "(Gdev vs HIX)\n\n");
    std::printf(
        " App  |     HtoD    |     DtoH    |  Gdev (ms) |  HIX (ms)  |"
        " overhead\n");

    const char *apps[] = {"BP", "BFS", "GS", "HS", "LUD",
                          "NW", "NN", "PF", "SRAD"};
    bench::BenchJson json("rodinia");
    double ratio_sum = 0;
    int count = 0;
    for (const char *app : apps) {
        auto factory = [app] { return makeRodinia(app); };
        bench::HostTimer base_timer;
        auto base = runBaseline(factory);
        const double base_ms = base_timer.ms();
        bench::HostTimer secure_timer;
        auto secure = runHix(factory);
        const double secure_ms = secure_timer.ms();
        if (!base.isOk() || !secure.isOk()) {
            std::printf("%-5s | FAILED: %s / %s\n", app,
                        base.status().toString().c_str(),
                        secure.status().toString().c_str());
            continue;
        }
        const auto spec = factory()->nominalTransfers();
        const double ratio =
            double(secure->ticks) / double(base->ticks);
        ratio_sum += ratio;
        ++count;
        std::printf(
            "%-5s | %8.2f MB | %8.2f MB | %10.2f | %10.2f | %+7.1f%%\n",
            app, double(spec.htodBytes) / (1 << 20),
            double(spec.dtohBytes) / (1 << 20), base->milliseconds(),
            secure->milliseconds(), (ratio - 1) * 100);
        const std::string config = std::string("app=") + app;
        json.add(config + " runtime=gdev", base->ticks, base_ms);
        json.add(config + " runtime=hix", secure->ticks, secure_ms)
            .metric("overhead_vs_gdev", ratio);
    }
    std::printf("\nAverage HIX overhead: %+.1f%%\n",
                (ratio_sum / count - 1) * 100);
    json.write();
    std::printf(
        "\nPaper reference (Section 5.3.2): 26.8%% average; BP +81.5%%, "
        "NW +70.1%%,\nPF +154%%; GS comparable; HS/LUD/NN slightly "
        "faster under HIX thanks to\nlower task-initialization "
        "overhead.\n");
    return 0;
}
