/**
 * @file
 * Microbenchmarks of the PCIe fabric model (google-benchmark, host
 * wall-clock): memory-TLP routing, config reads, and the cost of the
 * MMIO lockdown filter on the config-write path. Supports the claim
 * that the lockdown adds no data-path cost (it only filters config
 * transactions, Section 4.3.2).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench_json.h"
#include "common/units.h"
#include "mem/phys_mem.h"
#include "pcie/root_complex.h"

using namespace hix;
using namespace hix::pcie;

namespace
{

class NullDevice : public PcieDevice
{
  public:
    NullDevice() : PcieDevice("null", 0x10de, 0x1080, 0x030000)
    {
        (void)config().declareBar(0, 1 * MiB);
    }

    Status
    mmioRead(int, std::uint64_t, std::uint8_t *data,
             std::size_t len) override
    {
        std::memset(data, 0, len);
        return Status::ok();
    }

    Status
    mmioWrite(int, std::uint64_t, const std::uint8_t *,
              std::size_t) override
    {
        return Status::ok();
    }
};

struct Fabric
{
    mem::PhysicalBus bus;
    mem::PhysMem ram{"ram", 16 * MiB};
    NullDevice dev;
    RootComplex rc{AddrRange(0xe0000000, 256 * MiB), &bus, nullptr};

    Fabric()
    {
        (void)bus.attach(AddrRange(0, 16 * MiB), &ram);
        (void)rc.attachDevice(0, &dev);
        (void)rc.enumerate();
    }
};

void
BM_MemTlpRoundTrip(benchmark::State &state)
{
    Fabric fabric;
    const Addr bar = fabric.dev.config().barBase(0);
    Bytes out;
    for (auto _ : state) {
        Status st = fabric.rc.routeTlp(Tlp::memRead(bar + 0x40, 4), &out);
        benchmark::DoNotOptimize(st);
    }
}
BENCHMARK(BM_MemTlpRoundTrip);

void
BM_ConfigRead(benchmark::State &state)
{
    Fabric fabric;
    for (auto _ : state) {
        auto v = fabric.rc.configRead(fabric.dev.bdf(), cfg::VendorId);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ConfigRead);

void
BM_ConfigWriteUnlocked(benchmark::State &state)
{
    Fabric fabric;
    for (auto _ : state) {
        Status st =
            fabric.rc.configWrite(fabric.dev.bdf(), 0x40, 0x1234);
        benchmark::DoNotOptimize(st);
    }
}
BENCHMARK(BM_ConfigWriteUnlocked);

void
BM_ConfigWriteLockedBenign(benchmark::State &state)
{
    Fabric fabric;
    (void)fabric.rc.lockPath(fabric.dev.bdf());
    for (auto _ : state) {
        Status st =
            fabric.rc.configWrite(fabric.dev.bdf(), 0x40, 0x1234);
        benchmark::DoNotOptimize(st);
    }
}
BENCHMARK(BM_ConfigWriteLockedBenign);

void
BM_ConfigWriteLockedDropped(benchmark::State &state)
{
    Fabric fabric;
    (void)fabric.rc.lockPath(fabric.dev.bdf());
    for (auto _ : state) {
        Status st = fabric.rc.configWrite(fabric.dev.bdf(), cfg::Bar0,
                                          0xdead0000);
        benchmark::DoNotOptimize(st);
    }
}
BENCHMARK(BM_ConfigWriteLockedDropped);

void
BM_DmaWrite4K(benchmark::State &state)
{
    Fabric fabric;
    Bytes data(4096, 0x5a);
    for (auto _ : state) {
        Status st = fabric.rc.dmaWrite(0x1000, data.data(), data.size());
        benchmark::DoNotOptimize(st);
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DmaWrite4K);

/**
 * Quick wall-clock sweep for BENCH_pcie.json: ns/op of the hot fabric
 * paths, independent of the google-benchmark reporters.
 */
void
writeJsonSweep()
{
    bench::BenchJson json("pcie");
    auto timed = [&json](const char *path, auto &&fn) {
        bench::HostTimer timer;
        std::size_t calls = 0;
        do {
            fn();
            ++calls;
        } while (timer.ms() < 20.0);
        const double total_ms = timer.ms();
        json.add(std::string("path=") + path, 0, total_ms)
            .metric("ns_per_op", total_ms * 1e6 / double(calls));
    };

    Fabric fabric;
    const Addr bar = fabric.dev.config().barBase(0);
    Bytes out;
    timed("mem_tlp_round_trip", [&] {
        Status st =
            fabric.rc.routeTlp(Tlp::memRead(bar + 0x40, 4), &out);
        benchmark::DoNotOptimize(st);
    });
    timed("config_read", [&] {
        auto v = fabric.rc.configRead(fabric.dev.bdf(), cfg::VendorId);
        benchmark::DoNotOptimize(v);
    });
    (void)fabric.rc.lockPath(fabric.dev.bdf());
    timed("config_write_locked_benign", [&] {
        Status st =
            fabric.rc.configWrite(fabric.dev.bdf(), 0x40, 0x1234);
        benchmark::DoNotOptimize(st);
    });
    Bytes data(4096, 0x5a);
    timed("dma_write_4k", [&] {
        Status st =
            fabric.rc.dmaWrite(0x1000, data.data(), data.size());
        benchmark::DoNotOptimize(st);
    });
    json.write();
}

}  // namespace

int
main(int argc, char **argv)
{
    writeJsonSweep();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
