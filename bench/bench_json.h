/**
 * @file
 * Tiny shared machine-readable results writer for the bench binaries.
 *
 * Every bench_* binary writes BENCH_<name>.json in its working
 * directory with one row per measured configuration. The schema is
 * deliberately flat so CI trending and ad-hoc jq stay trivial:
 *
 *   {
 *     "bench": "<name>",
 *     "rows": [
 *       {"bench": "<name>", "config": "<what was run>",
 *        "ticks": <simulated ticks>, "host_ms": <wall clock>,
 *        ...optional numeric metrics...}
 *     ]
 *   }
 *
 * "ticks" is simulated time from the scheduler (0 for pure host-side
 * microbenches); "host_ms" is real wall-clock spent producing the
 * row. Reference results are checked in under bench/results/.
 */

#ifndef HIX_BENCH_BENCH_JSON_H_
#define HIX_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace hix::bench
{

/** Wall-clock stopwatch for the host_ms column. */
class HostTimer
{
    using Clock = std::chrono::steady_clock;

  public:
    HostTimer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double
    ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   Clock::now() - start_)
            .count();
    }

  private:
    Clock::time_point start_;
};

/** Collects rows and writes BENCH_<name>.json. */
class BenchJson
{
  public:
    /** One result row; metric() appends optional numeric columns.
     *  The reference returned by add() is invalidated by the next
     *  add(), so chain metric() calls immediately. */
    class Row
    {
      public:
        Row &
        metric(std::string key, double value)
        {
            metrics_.emplace_back(std::move(key), value);
            return *this;
        }

      private:
        friend class BenchJson;
        std::string config_;
        std::uint64_t ticks_ = 0;
        double host_ms_ = 0.0;
        std::vector<std::pair<std::string, double>> metrics_;
    };

    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    Row &
    add(std::string config, std::uint64_t ticks, double host_ms)
    {
        rows_.emplace_back();
        Row &row = rows_.back();
        row.config_ = std::move(config);
        row.ticks_ = ticks;
        row.host_ms_ = host_ms;
        return row;
    }

    /** Write BENCH_<name>.json to the working directory. */
    bool
    write() const
    {
        const std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "warning: could not write %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                     escaped(name_).c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row &row = rows_[i];
            std::fprintf(
                f,
                "    {\"bench\": \"%s\", \"config\": \"%s\", "
                "\"ticks\": %llu, \"host_ms\": %.3f",
                escaped(name_).c_str(), escaped(row.config_).c_str(),
                static_cast<unsigned long long>(row.ticks_),
                row.host_ms_);
            // %.12g keeps integer-valued metrics (tick counts in the
            // low billions, e.g. ticks_streaming) exact so gates can
            // compare them with ==, while still trimming float noise.
            for (const auto &[key, value] : row.metrics_)
                std::fprintf(f, ", \"%s\": %.12g",
                             escaped(key).c_str(), value);
            std::fprintf(f, "}%s\n",
                         i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    static std::string
    escaped(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (static_cast<unsigned char>(c) >= 0x20) {
                out.push_back(c);
            }
        }
        return out;
    }

    std::string name_;
    std::vector<Row> rows_;
};

}  // namespace hix::bench

#endif  // HIX_BENCH_BENCH_JSON_H_
