/**
 * @file
 * Reproduces Figure 6 / Table 4: execution time of integer matrix
 * addition and multiplication on Gdev (unprotected) and HIX, for
 * matrix sizes 2048..11264 (the GTX 580's 1.5 GiB limits the sweep,
 * footnote 1 of the paper).
 *
 * The simulation is deterministic, so a single run per point replaces
 * the paper's five-run average.
 */

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "workloads/runner.h"

using namespace hix;
using namespace hix::workloads;

namespace
{

void
runRow(std::uint32_t n, bool multiply, bench::BenchJson &json)
{
    auto factory = [n, multiply] {
        return multiply ? makeMatrixMul(n) : makeMatrixAdd(n);
    };
    const char *op = multiply ? "mul" : "add";
    bench::HostTimer base_timer;
    auto base = runBaseline(factory);
    const double base_ms = base_timer.ms();
    bench::HostTimer secure_timer;
    auto secure = runHix(factory);
    const double secure_ms = secure_timer.ms();
    if (!base.isOk() || !secure.isOk()) {
        std::printf("%9u | FAILED: %s / %s\n", n,
                    base.status().toString().c_str(),
                    secure.status().toString().c_str());
        return;
    }
    const auto spec = factory()->nominalTransfers();
    std::printf(
        "%5ux%-5u | %8.1f MB | %8.1f MB | %10.2f | %10.2f | %6.2fx\n",
        n, n, double(spec.htodBytes) / (1 << 20),
        double(spec.dtohBytes) / (1 << 20), base->milliseconds(),
        secure->milliseconds(),
        double(secure->ticks) / double(base->ticks));
    const std::string config =
        std::string(op) + " n=" + std::to_string(n);
    json.add(config + " runtime=gdev", base->ticks, base_ms);
    json.add(config + " runtime=hix", secure->ticks, secure_ms)
        .metric("overhead_vs_gdev",
                double(secure->ticks) / double(base->ticks));
}

}  // namespace

int
main()
{
    const std::uint32_t sizes[] = {2048, 4096, 8192, 11264};
    bench::BenchJson json("matrix");

    std::printf(
        "Figure 6 / Table 4: matrix microbenchmarks (Gdev vs HIX)\n");
    std::printf(
        "\n-- Integer matrix addition (A + B = C) --\n"
        "   size     |     HtoD    |     DtoH    |  Gdev (ms) |"
        "  HIX (ms)  | HIX/Gdev\n");
    for (std::uint32_t n : sizes)
        runRow(n, false, json);

    std::printf(
        "\n-- Integer matrix multiplication (A x B = C) --\n"
        "   size     |     HtoD    |     DtoH    |  Gdev (ms) |"
        "  HIX (ms)  | HIX/Gdev\n");
    for (std::uint32_t n : sizes)
        runRow(n, true, json);

    std::printf(
        "\nPaper reference: addition ~2.5x slower under HIX; "
        "multiplication overhead\nshrinks with size, down to 6.34%% "
        "at 11264x11264 (Section 5.3.1).\n");
    json.write();
    return 0;
}
