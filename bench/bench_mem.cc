/**
 * @file
 * Memory-system fast-path microbench: the substrate cost every
 * modelled access pays. Three sweeps, each fast engine vs its linear
 * reference oracle:
 *
 *  - translate throughput on a hot page set while the TLB carries
 *    multi-tenant residue (other processes' entries), the state a
 *    busy modelled machine actually runs in;
 *  - bulk virtual-address copy MB/s over working sets from 64 KiB to
 *    8 MiB (single walk per page run + borrowed spans vs the
 *    per-page translate-and-route loop);
 *  - flush-storm cost: repeated fill + flushAll cycles (epoch bump
 *    vs list teardown).
 *
 * Writes BENCH_mem.json. Acceptance (tracked in CI perf-smoke): hot
 * translate >= 10x and bulk copy >= 3x vs reference on 64 KiB+.
 */

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.h"
#include "common/units.h"
#include "mem/mmu.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"

using namespace hix;
using namespace hix::mem;

namespace
{

bench::BenchJson json("mem");

constexpr std::uint64_t RamSize = 32 * MiB;
constexpr Addr VaBase = 0x10000000;

/** Bus + RAM + per-pid page tables + one MMU of the given engine. */
struct System
{
    System(TlbEngine engine, std::size_t tlb_capacity)
        : ram("bench_ram", RamSize), mmu(&bus, tlb_capacity, engine)
    {
        if (!bus.attach(AddrRange(0, RamSize), &ram).isOk())
            std::abort();
        mmu.setPageTableProvider(
            [this](ProcessId pid) { return &tables[pid]; });
    }

    PhysicalBus bus;
    PhysMem ram;
    Mmu mmu;
    std::unordered_map<ProcessId, PageTable> tables;
};

const char *
engineName(TlbEngine engine)
{
    return engine == TlbEngine::Fast ? "fast" : "reference";
}

/**
 * Hot-set translate throughput with multi-tenant TLB residue:
 * 30 other processes keep 240 of the 256 entries occupied, the hot
 * process loops over 8 pages. Returns translates per microsecond.
 */
double
translateThroughput(TlbEngine engine)
{
    System sys(engine, 256);
    constexpr int ResiduePids = 30;
    constexpr int ResiduePages = 8;
    constexpr int HotPages = 8;
    for (int p = 0; p < ResiduePids; ++p)
        for (int i = 0; i < ResiduePages; ++i)
            (void)sys.tables[ProcessId(2 + p)].map(
                VaBase + Addr(i) * PageSize,
                Addr(64 + p * ResiduePages + i) * PageSize, PermRead);
    for (int i = 0; i < HotPages; ++i)
        (void)sys.tables[1].map(VaBase + Addr(i) * PageSize,
                                Addr(i) * PageSize, PermRead);

    // Fill the residue, then re-touch it so it is more recent than
    // nothing — the hot loop below keeps the hot set most-recent.
    for (int p = 0; p < ResiduePids; ++p) {
        ExecContext ctx{ProcessId(2 + p), InvalidEnclaveId};
        for (int i = 0; i < ResiduePages; ++i)
            (void)sys.mmu.translate(ctx, VaBase + Addr(i) * PageSize,
                                    AccessType::Read);
    }

    constexpr int Iterations = 200000;
    ExecContext hot{1, InvalidEnclaveId};
    // Warm the hot set.
    for (int i = 0; i < HotPages; ++i)
        (void)sys.mmu.translate(hot, VaBase + Addr(i) * PageSize,
                                AccessType::Read);
    const std::uint64_t misses_before = sys.mmu.tlbMisses();
    bench::HostTimer timer;
    std::uint64_t sink = 0;
    for (int it = 0; it < Iterations; ++it)
        for (int i = 0; i < HotPages; ++i) {
            auto pa = sys.mmu.translate(
                hot, VaBase + Addr(i) * PageSize + 64,
                AccessType::Read);
            sink += *pa;
        }
    const double host_ms = timer.ms();
    if (sys.mmu.tlbMisses() != misses_before)
        std::printf("  warning: hot loop missed (%s)\n",
                    engineName(engine));
    const double total = double(Iterations) * HotPages;
    const double per_us = total / (host_ms * 1000.0);
    json.add(std::string("translate hot=8 residue=240 engine=") +
                 engineName(engine),
             0, host_ms)
        .metric("translates_per_us", per_us)
        .metric("tlb_hits", double(sys.mmu.tlbHits()))
        .metric("tlb_misses", double(sys.mmu.tlbMisses()))
        .metric("checksum", double(sink & 0xffff));
    return per_us;
}

/**
 * Bulk copy MB/s over @p bytes; fast bulk path vs reference loop.
 * Runs with the same multi-tenant TLB residue as the translate sweep:
 * on an idle TLB both paths are memcpy-bound, which is not the state
 * a busy modelled machine copies in.
 */
double
bulkCopy(TlbEngine engine, std::uint64_t bytes)
{
    // Machine-default TLB capacity. Small working sets run in the
    // residue-bound regime (reference pays a long list scan per
    // translate), 1 MiB+ working sets in the thrash regime (capacity
    // misses every page); in between the reference degrades gradually
    // and the gap narrows to ~3x.
    constexpr std::size_t Capacity = 256;
    System sys(engine, Capacity);
    // As much residue as fits beside the hot set: over-filling would
    // just evict it after the first rep and measure an idle TLB.
    constexpr int ResiduePages = 8;
    const int residue_pids = static_cast<int>(
        bytes / PageSize >= Capacity
            ? 0
            : (Capacity - bytes / PageSize) / ResiduePages);
    for (int p = 0; p < residue_pids; ++p)
        for (int i = 0; i < ResiduePages; ++i)
            (void)sys.tables[ProcessId(2 + p)].map(
                VaBase + Addr(i) * PageSize,
                Addr(p * ResiduePages + i) * PageSize, PermRead);
    for (int p = 0; p < residue_pids; ++p) {
        ExecContext res{ProcessId(2 + p), InvalidEnclaveId};
        for (int i = 0; i < ResiduePages; ++i)
            (void)sys.mmu.translate(res, VaBase + Addr(i) * PageSize,
                                    AccessType::Read);
    }

    const std::uint64_t pages = bytes / PageSize;
    for (std::uint64_t i = 0; i < pages; ++i)
        (void)sys.tables[1].map(VaBase + i * PageSize,
                                MiB + i * PageSize,
                                PermRead | PermWrite);
    ExecContext ctx{1, InvalidEnclaveId};
    std::vector<std::uint8_t> buf(bytes);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 13);

    // Enough repetitions to dominate timer noise on small sets.
    const int reps =
        static_cast<int>(std::max<std::uint64_t>(4, 32 * MiB / bytes));
    bench::HostTimer timer;
    for (int r = 0; r < reps; ++r) {
        Status wr =
            engine == TlbEngine::Fast
                ? sys.mmu.write(ctx, VaBase, buf.data(), bytes)
                : sys.mmu.writeReference(ctx, VaBase, buf.data(),
                                         bytes);
        Status rd =
            engine == TlbEngine::Fast
                ? sys.mmu.read(ctx, VaBase, buf.data(), bytes)
                : sys.mmu.readReference(ctx, VaBase, buf.data(),
                                        bytes);
        if (!wr.isOk() || !rd.isOk())
            std::abort();
    }
    const double host_ms = timer.ms();
    const double mb =
        double(bytes) * 2 * reps / double(1 << 20);  // W + R
    const double mbps = mb / (host_ms / 1000.0);
    json.add("bulk_copy kib=" + std::to_string(bytes / KiB) +
                 " tlb=256 engine=" + engineName(engine),
             0, host_ms)
        .metric("mb_per_s", mbps)
        .metric("tlb_hits", double(sys.mmu.tlbHits()))
        .metric("tlb_misses", double(sys.mmu.tlbMisses()));
    return mbps;
}

/** Cost of fill-then-flushAll cycles, in cycles per millisecond. */
double
flushStorm(TlbEngine engine)
{
    System sys(engine, 256);
    constexpr int FillPages = 64;
    for (int i = 0; i < FillPages; ++i)
        (void)sys.tables[1].map(VaBase + Addr(i) * PageSize,
                                Addr(i) * PageSize, PermRead);
    ExecContext ctx{1, InvalidEnclaveId};
    constexpr int Cycles = 4000;
    bench::HostTimer timer;
    for (int c = 0; c < Cycles; ++c) {
        for (int i = 0; i < FillPages; ++i)
            (void)sys.mmu.translate(ctx, VaBase + Addr(i) * PageSize,
                                    AccessType::Read);
        sys.mmu.flushTlbAll();
    }
    const double host_ms = timer.ms();
    const double cycles_per_ms = Cycles / host_ms;
    json.add(std::string("flush_storm fill=64 engine=") +
                 engineName(engine),
             0, host_ms)
        .metric("cycles_per_ms", cycles_per_ms)
        .metric("tlb_misses", double(sys.mmu.tlbMisses()));
    return cycles_per_ms;
}

}  // namespace

int
main()
{
    std::printf("Memory-system fast path vs linear reference oracle\n\n");

    const double t_fast = translateThroughput(TlbEngine::Fast);
    const double t_ref = translateThroughput(TlbEngine::Reference);
    std::printf("hot translate (240-entry residue): "
                "%8.1f/us fast | %8.1f/us reference | %5.1fx\n",
                t_fast, t_ref, t_fast / t_ref);
    json.add("translate hot=8 residue=240 speedup", 0, 0.0)
        .metric("speedup", t_fast / t_ref);

    std::printf("\n%-12s | %12s | %12s | %7s\n", "working set",
                "fast MB/s", "ref MB/s", "speedup");
    double min_bulk_speedup = 1e9;
    for (std::uint64_t bytes : {64 * KiB, 1 * MiB, 2 * MiB, 8 * MiB}) {
        const double fast = bulkCopy(TlbEngine::Fast, bytes);
        const double ref = bulkCopy(TlbEngine::Reference, bytes);
        std::printf("%9llu KiB | %12.0f | %12.0f | %6.1fx\n",
                    static_cast<unsigned long long>(bytes / KiB), fast,
                    ref, fast / ref);
        json.add("bulk_copy kib=" + std::to_string(bytes / KiB) +
                     " speedup",
                 0, 0.0)
            .metric("speedup", fast / ref);
        if (fast / ref < min_bulk_speedup)
            min_bulk_speedup = fast / ref;
    }

    const double f_fast = flushStorm(TlbEngine::Fast);
    const double f_ref = flushStorm(TlbEngine::Reference);
    std::printf("\nflush storm (fill 64 + flushAll): "
                "%8.1f/ms fast | %8.1f/ms reference | %5.1fx\n",
                f_fast, f_ref, f_fast / f_ref);
    json.add("flush_storm fill=64 speedup", 0, 0.0)
        .metric("speedup", f_fast / f_ref);

    std::printf("\nAcceptance: hot translate %.1fx (target >= 10x), "
                "min bulk speedup %.1fx (target >= 3x)\n",
                t_fast / t_ref, min_bulk_speedup);
    json.write();
    return 0;
}
