/**
 * @file
 * Reproduces Figures 8 and 9: Rodinia execution time with two and
 * four concurrent users, on Gdev (pre-Volta MPS: all users merged
 * into one GPU context) and HIX (one isolated GPU context per user
 * enclave, per-user session keys, in-GPU cryptography). All values
 * are normalized to Gdev with one user, as in the paper.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_json.h"
#include "workloads/runner.h"

using namespace hix;
using namespace hix::workloads;

namespace
{

/** Host threads available to the recording pool (the pool sizes
 * itself to min(users, this)): the wall-clock speedup ceiling. */
unsigned
hostThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

/** One configuration recorded serially, then in parallel, then as the
 * streaming schedule-while-recording pipeline: the ticks must be
 * bit-identical all three ways (the runner's headline guarantee); the
 * host wall-clock ratios are the recording speedup and the pipeline
 * overlap the two parallel modes buy. */
struct TimedRun
{
    Result<RunOutcome> outcome = errInternal("not run");
    Result<RunOutcome> streaming = errInternal("not run");
    Result<RunOutcome> forked = errInternal("not run");
    double serialMs = 0;
    double parallelMs = 0;
    double streamingMs = 0;
    double forkedMs = 0;

    double
    speedup() const
    {
        return parallelMs > 0 ? serialMs / parallelMs : 0;
    }

    /** Session-startup speedup the copy-on-write fork path buys:
     * cold per-user boot cost over forked per-user boot cost. */
    double
    forkSpeedup() const
    {
        if (!outcome.isOk() || !forked.isOk() ||
            forked->hostBootMs <= 0)
            return 0;
        return outcome->hostBootMs / forked->hostBootMs;
    }

    /** Fraction of the two-phase record+schedule wall the streaming
     * pipeline hides by overlapping the stages (0 = none). */
    double
    overlap() const
    {
        if (!outcome.isOk())
            return 0;
        const double two_phase =
            outcome->hostRecordMs + outcome->hostScheduleMs;
        return two_phase > 0 ? 1 - streamingMs / two_phase : 0;
    }
};

TimedRun
timedRun(const std::function<std::unique_ptr<Workload>()> &factory,
         int users, bool use_hix)
{
    TimedRun run;
    RunConfig config;
    config.factory = factory;
    config.users = users;
    config.useHix = use_hix;

    config.parallelRecording = false;
    bench::HostTimer serial_timer;
    auto serial = runWorkload(config);
    run.serialMs = serial_timer.ms();

    config.parallelRecording = true;
    bench::HostTimer parallel_timer;
    run.outcome = runWorkload(config);
    run.parallelMs = parallel_timer.ms();

    config.streaming = true;
    bench::HostTimer streaming_timer;
    run.streaming = runWorkload(config);
    run.streamingMs = streaming_timer.ms();

    // Fourth leg: parallel recording with forkSessions on — every
    // user shard forks the copy-on-write template snapshot instead
    // of cold-booting a private machine. Must stay bit-identical.
    config.streaming = false;
    config.forkSessions = true;
    bench::HostTimer forked_timer;
    run.forked = runWorkload(config);
    run.forkedMs = forked_timer.ms();

    if (serial.isOk() && run.outcome.isOk() &&
        serial->ticks != run.outcome->ticks)
        std::printf("  !! serial/parallel tick mismatch: %llu vs %llu\n",
                    static_cast<unsigned long long>(serial->ticks),
                    static_cast<unsigned long long>(
                        run.outcome->ticks));
    if (run.outcome.isOk() && run.streaming.isOk() &&
        run.outcome->ticks != run.streaming->ticks)
        std::printf(
            "  !! two-phase/streaming tick mismatch: %llu vs %llu\n",
            static_cast<unsigned long long>(run.outcome->ticks),
            static_cast<unsigned long long>(run.streaming->ticks));
    if (run.outcome.isOk() && run.forked.isOk() &&
        run.outcome->ticks != run.forked->ticks)
        std::printf(
            "  !! cold/forked tick mismatch: %llu vs %llu\n",
            static_cast<unsigned long long>(run.outcome->ticks),
            static_cast<unsigned long long>(run.forked->ticks));
    return run;
}

void
runFigure(int users, bench::BenchJson &json)
{
    if (users == 2 || users == 4)
        std::printf(
            "Figure %d: Rodinia with %d concurrent users "
            "(normalized to Gdev 1 user)\n\n",
            users == 2 ? 8 : 9, users);
    else
        std::printf(
            "Scale-out beyond the paper: Rodinia with %d concurrent "
            "users (normalized to Gdev 1 user)\n\n",
            users);
    std::printf(
        " App  | Gdev 1u (ms) | Gdev %du (norm) | HIX %du (norm) |"
        " HIX/Gdev | ctx switches | rec serial ms | rec parallel ms |"
        " speedup\n",
        users, users);

    double gdev_sum = 0, hix_sum = 0, speedup_sum = 0;
    double gdev_fork_sum = 0, hix_fork_sum = 0;
    int count = 0;
    for (const char *app :
         {"BP", "BFS", "GS", "HS", "LUD", "NW", "NN", "PF", "SRAD"}) {
        auto factory = [app] { return makeRodinia(app); };
        auto one = runBaseline(factory, 1);
        TimedRun base = timedRun(factory, users, /*use_hix=*/false);
        TimedRun secure = timedRun(factory, users, /*use_hix=*/true);
        if (!one.isOk() || !base.outcome.isOk() ||
            !secure.outcome.isOk() || !base.streaming.isOk() ||
            !secure.streaming.isOk() || !base.forked.isOk() ||
            !secure.forked.isOk()) {
            std::printf("%-5s | FAILED\n", app);
            continue;
        }
        const double gdev_norm =
            double(base.outcome->ticks) / double(one->ticks);
        const double hix_norm =
            double(secure.outcome->ticks) / double(one->ticks);
        const double serial_ms = base.serialMs + secure.serialMs;
        const double parallel_ms =
            base.parallelMs + secure.parallelMs;
        gdev_sum += gdev_norm;
        hix_sum += hix_norm;
        speedup_sum += serial_ms / parallel_ms;
        gdev_fork_sum += base.forkSpeedup();
        hix_fork_sum += secure.forkSpeedup();
        ++count;
        std::printf(
            "%-5s | %12.2f | %14.2f | %13.2f | %+7.1f%% | %12llu | "
            "%13.1f | %15.1f | %6.2fx\n",
            app, one->milliseconds(), gdev_norm, hix_norm,
            (hix_norm / gdev_norm - 1) * 100,
            static_cast<unsigned long long>(
                secure.outcome->gpuCtxSwitches),
            serial_ms, parallel_ms, serial_ms / parallel_ms);
        const std::string config = std::string("app=") + app +
                                   " users=" + std::to_string(users);
        json.add(config + " runtime=gdev", base.outcome->ticks,
                 base.parallelMs)
            .metric("norm_vs_1u", gdev_norm)
            .metric("host_ms_serial", base.serialMs)
            .metric("host_ms_parallel", base.parallelMs)
            .metric("record_speedup", base.speedup())
            .metric("ticks_streaming", double(base.streaming->ticks))
            .metric("host_ms_streaming", base.streamingMs)
            .metric("stream_overlap", base.overlap())
            .metric("stream_join_ops",
                    double(base.streaming->streamStats.joinOps))
            .metric("stream_queue_depth_max",
                    double(base.streaming->streamQueueDepthMax))
            .metric("ticks_fork", double(base.forked->ticks))
            .metric("host_ms_fork", base.forkedMs)
            .metric("boot_ms", base.outcome->hostBootMs)
            .metric("boot_ms_fork", base.forked->hostBootMs)
            .metric("fork_speedup", base.forkSpeedup())
            .metric("resident_pages_per_session",
                    double(base.forked->residentPages) / users)
            .metric("resident_pages_per_session_cold",
                    double(base.outcome->residentPages) / users);
        json.add(config + " runtime=hix", secure.outcome->ticks,
                 secure.parallelMs)
            .metric("norm_vs_1u", hix_norm)
            .metric("ctx_switches",
                    double(secure.outcome->gpuCtxSwitches))
            .metric("host_ms_serial", secure.serialMs)
            .metric("host_ms_parallel", secure.parallelMs)
            .metric("record_speedup", secure.speedup())
            .metric("record_workers",
                    double(std::min<unsigned>(users, hostThreads())))
            .metric("ticks_streaming", double(secure.streaming->ticks))
            .metric("host_ms_streaming", secure.streamingMs)
            .metric("stream_overlap", secure.overlap())
            .metric("stream_join_ops",
                    double(secure.streaming->streamStats.joinOps))
            .metric("stream_queue_depth_max",
                    double(secure.streaming->streamQueueDepthMax))
            .metric("ticks_fork", double(secure.forked->ticks))
            .metric("host_ms_fork", secure.forkedMs)
            .metric("boot_ms", secure.outcome->hostBootMs)
            .metric("boot_ms_fork", secure.forked->hostBootMs)
            .metric("fork_speedup", secure.forkSpeedup())
            .metric("resident_pages_per_session",
                    double(secure.forked->residentPages) / users)
            .metric("resident_pages_per_session_cold",
                    double(secure.outcome->residentPages) / users);

        // Streaming acceptance at the 16-user preset: end-to-end wall
        // within 1.15x of the slower pipeline stage (i.e. the faster
        // stage rides almost entirely under the slower one).
        if (users == 16) {
            for (const TimedRun *run : {&base, &secure}) {
                const double bound =
                    1.15 * std::max((*run).outcome->hostRecordMs,
                                    (*run).outcome->hostScheduleMs);
                std::printf(
                    "      stream e2e %.1f ms vs 1.15*max(record "
                    "%.1f, schedule %.1f) = %.1f ms  [%s]\n",
                    (*run).streamingMs, (*run).outcome->hostRecordMs,
                    (*run).outcome->hostScheduleMs, bound,
                    (*run).streamingMs <= bound ? "ok" : "OVER");
            }
        }
    }
    std::printf(
        "\nAverage: Gdev %du %.2fx of 1u;  HIX %du %.2fx of 1u;  "
        "HIX vs Gdev parallel: %+.1f%%;  recording speedup %.2fx "
        "(%u worker(s) on %u hardware thread(s))\n",
        users, gdev_sum / count, users, hix_sum / count,
        (hix_sum / gdev_sum - 1) * 100, speedup_sum / count,
        std::min<unsigned>(users, hostThreads()), hostThreads());
    std::printf(
        "Session startup (snapshot/fork vs cold boot): Gdev %.2fx, "
        "HIX %.2fx faster per-user boot; forked sessions own 0 "
        "private pages at window-open.\n\n",
        gdev_fork_sum / count, hix_fork_sum / count);
}

}  // namespace

namespace
{

/**
 * Section 4.5 future work, implemented as an ablation: Volta-style
 * isolated simultaneous multi-context execution (per-context queues,
 * no context switches). The paper predicts this "significantly
 * reduces" HIX's multi-user degradation.
 */
void
runVoltaAblation(int users)
{
    std::printf(
        "Future-work ablation: Volta-style concurrent contexts, "
        "%d users (HIX)\n\n",
        users);
    std::printf(" App  | Fermi HIX (ms) | Volta HIX (ms) | change | "
                "ctx switches (Fermi -> Volta)\n");
    for (const char *app : {"BP", "GS", "NW", "PF"}) {
        auto factory = [app] { return makeRodinia(app); };
        RunConfig fermi;
        fermi.factory = factory;
        fermi.users = users;
        RunConfig volta = fermi;
        volta.machine.timing.gpuConcurrentContexts = 8;
        auto f = runWorkload(fermi);
        auto v = runWorkload(volta);
        if (!f.isOk() || !v.isOk()) {
            std::printf("%-5s | FAILED\n", app);
            continue;
        }
        std::printf("%-5s | %14.2f | %14.2f | %+5.1f%% | %llu -> %llu\n",
                    app, f->milliseconds(), v->milliseconds(),
                    (double(v->ticks) / double(f->ticks) - 1) * 100,
                    static_cast<unsigned long long>(f->gpuCtxSwitches),
                    static_cast<unsigned long long>(v->gpuCtxSwitches));
    }
    std::printf("\n");
}

/**
 * Volta preset as measured rows: per-context compute queues, DMA
 * channels, and HIX enclave dispatch lanes all sized so every user
 * owns a private slice of each engine bank. With no shared timing
 * resources between shards, the streaming scheduler's finish() join
 * has nothing left to reschedule — stream_join_ops must be 0 and the
 * streaming/fork ticks bit-identical to the two-phase schedule. The
 * CI perf-smoke gate asserts both on every "volta " row.
 */
void
runVoltaRows(bench::BenchJson &json)
{
    std::printf(
        "Volta preset: per-context queues/channels/lanes => join-free "
        "streaming\n\n");
    std::printf(
        " App  | users | runtime | ticks (ms) | join ops | stream "
        "identical | fork identical\n");
    for (const char *app : {"BP", "NN"}) {
        for (int users : {2, 4, 8, 16}) {
            for (bool use_hix : {false, true}) {
                auto factory = [app] { return makeRodinia(app); };
                RunConfig config;
                config.factory = factory;
                config.users = users;
                config.useHix = use_hix;
                // Power-of-two width >= users keeps each session's
                // canonical ctx on a private channel of every bank.
                const auto width = static_cast<std::uint32_t>(
                    std::max(8, users));
                config.machine.timing.gpuConcurrentContexts = width;
                config.machine.timing.gpuDmaChannels = width;
                config.machine.timing.gpuEnclaveLanes = width;
                config.parallelRecording = true;

                auto two_phase = runWorkload(config);

                config.streaming = true;
                bench::HostTimer streaming_timer;
                auto streaming = runWorkload(config);
                const double streaming_ms = streaming_timer.ms();

                config.forkSessions = true;
                auto forked = runWorkload(config);

                if (!two_phase.isOk() || !streaming.isOk() ||
                    !forked.isOk()) {
                    std::printf("%-5s | %5d | %-7s | FAILED\n", app,
                                users, use_hix ? "hix" : "gdev");
                    continue;
                }
                const bool stream_same =
                    streaming->ticks == two_phase->ticks;
                const bool fork_same =
                    forked->ticks == two_phase->ticks;
                std::printf(
                    "%-5s | %5d | %-7s | %10.2f | %8llu | %16s | %s\n",
                    app, users, use_hix ? "hix" : "gdev",
                    two_phase->milliseconds(),
                    static_cast<unsigned long long>(
                        streaming->streamStats.joinOps),
                    stream_same ? "ok" : "MISMATCH",
                    fork_same ? "ok" : "MISMATCH");
                const std::string config_name =
                    std::string("volta app=") + app +
                    " users=" + std::to_string(users) +
                    " runtime=" + (use_hix ? "hix" : "gdev");
                json.add(config_name, two_phase->ticks, streaming_ms)
                    .metric("engine_width", double(width))
                    .metric("ticks_streaming",
                            double(streaming->ticks))
                    .metric("ticks_fork", double(forked->ticks))
                    .metric("stream_join_ops",
                            double(streaming->streamStats.joinOps))
                    .metric("stream_join_ops_fork",
                            double(forked->streamStats.joinOps))
                    .metric("stream_reused_ops",
                            double(streaming->streamStats.reusedOps))
                    .metric("host_ms_streaming_volta", streaming_ms)
                    .metric("stream_queue_depth_max",
                            double(streaming->streamQueueDepthMax));
            }
        }
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    bench::BenchJson json("multiuser");
    std::printf(
        "Recording pool: min(users, %u hardware thread(s)) workers; "
        "wall-clock speedup is bounded by that width.\n\n",
        hostThreads());
    runFigure(2, json);
    runFigure(4, json);
    // Past the paper's figures: contention trends at higher tenancy.
    runFigure(8, json);
    runFigure(16, json);
    runVoltaAblation(4);
    runVoltaRows(json);
    json.write();
    std::printf(
        "Paper reference (Section 5.4): HIX parallel execution is "
        "about 45.2%% worse\nwith two users and 39.7%% worse with four "
        "users than Gdev parallel execution,\ndriven by in-GPU crypto "
        "kernels, added context switches, and small-input\ncrypto "
        "underutilization. This model reproduces the direction and "
        "the per-app\nordering; magnitudes for the compute-heavy apps "
        "sit below the paper's.\n");
    return 0;
}
