/**
 * @file
 * Extension bench: HIX-protected GPU demand paging (Section 5.6
 * future work). Sweeps the VRAM residency quota for an oversubscribed
 * managed buffer and reports the cost of the encrypted,
 * integrity-protected page traffic, against a fully resident regular
 * allocation as the baseline.
 */

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/machine.h"

using namespace hix;

namespace
{

constexpr std::uint64_t Page = 64 * KiB;
constexpr std::uint64_t Pages = 16;
constexpr int Sweeps = 3;

bench::BenchJson json("paging");

/** Simulated ms to write + re-read the buffer Sweeps times. */
double
run(std::uint32_t quota_pages, bool managed, std::uint64_t *crypto_ops)
{
    bench::HostTimer timer;
    os::Machine machine;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    if (!ge.isOk())
        return -1;
    core::TrustedRuntime user(&machine, ge->get(), "app");
    if (!user.connect().isOk())
        return -1;

    Result<Addr> va = managed
                          ? user.memAllocManaged(Pages * Page, Page,
                                                 quota_pages)
                          : user.memAlloc(Pages * Page);
    if (!va.isOk())
        return -1;

    Bytes data(Pages * Page);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);

    machine.clearTrace();
    if (!user.memcpyHtoD(*va, data).isOk())
        return -1;
    for (int s = 0; s < Sweeps; ++s) {
        auto back = user.memcpyDtoH(*va, data.size());
        if (!back.isOk() || *back != data)
            return -1;
    }
    *crypto_ops = machine.gpu().stats().cryptoKernels;
    const Tick makespan = machine.scheduleTrace().makespan;
    const std::string config =
        managed ? "managed quota=" + std::to_string(quota_pages) +
                      "/" + std::to_string(Pages)
                : "regular all-resident";
    json.add(config, makespan, timer.ms())
        .metric("crypto_kernels", double(*crypto_ops))
        .metric("tlb_hits", double(machine.mmu().tlbHits()))
        .metric("tlb_misses", double(machine.mmu().tlbMisses()))
        .metric("iotlb_hits", double(machine.iommu().iotlbHits()));
    return ticksToMs(makespan);
}

}  // namespace

int
main()
{
    std::printf(
        "HIX demand paging (Section 5.6 future work): 1 MiB managed "
        "buffer,\n%d read sweeps, VRAM residency quota sweep\n\n",
        Sweeps);
    std::printf("%-22s | %10s | %s\n", "configuration", "time (ms)",
                "in-GPU crypto kernels");

    std::uint64_t crypto = 0;
    const double resident = run(0, /*managed=*/false, &crypto);
    std::printf("%-22s | %10.2f | %llu\n", "regular (all resident)",
                resident, static_cast<unsigned long long>(crypto));

    for (std::uint32_t quota : {16u, 8u, 4u, 2u, 1u}) {
        const double t = run(quota, /*managed=*/true, &crypto);
        char label[32];
        std::snprintf(label, sizeof(label), "managed, quota %2u/%llu",
                      quota, static_cast<unsigned long long>(Pages));
        std::printf("%-22s | %10.2f | %llu\n", label, t,
                    static_cast<unsigned long long>(crypto));
    }

    std::printf(
        "\nExpected shape: at quota >= working set the managed buffer "
        "tracks the\nregular allocation (paging idle); shrinking the "
        "quota below the sweep\nworking set produces encrypted "
        "evict/page-in traffic that grows as the\nquota falls — the "
        "cost of extending HIX's guarantees to oversubscribed\nGPU "
        "memory.\n");
    json.write();
    return 0;
}
