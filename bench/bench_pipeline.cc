/**
 * @file
 * Ablations of the HIX data-path design choices (Sections 4.4.2 and
 * 5.2): single-copy vs naive double copy, pipelined vs serialized
 * chunk encryption, DMA vs programmed-I/O ciphertext movement, and a
 * pipeline chunk-size sweep. Run on the transfer-heavy PF workload
 * plus a large matrix addition.
 */

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "workloads/runner.h"

using namespace hix;
using namespace hix::workloads;

namespace
{

bench::BenchJson json("pipeline");

Tick
timeConfig(const std::function<std::unique_ptr<Workload>()> &factory,
           bool single_copy, bool pipeline, bool use_pio,
           const std::string &row_config,
           std::uint64_t chunk_bytes = 0)
{
    RunConfig config;
    config.factory = factory;
    config.singleCopy = single_copy;
    config.pipeline = pipeline;
    config.usePio = use_pio;
    if (chunk_bytes != 0)
        config.machine.timing.pipelineChunkBytes = chunk_bytes;
    bench::HostTimer timer;
    auto outcome = runWorkload(config);
    if (!outcome.isOk()) {
        std::printf("  run failed: %s\n",
                    outcome.status().toString().c_str());
        return 0;
    }
    json.add(row_config, outcome->ticks, timer.ms())
        .metric("tlb_hits", double(outcome->tlbHits))
        .metric("tlb_misses", double(outcome->tlbMisses))
        .metric("iotlb_hits", double(outcome->iotlbHits));
    return outcome->ticks;
}

void
ablate(const char *name,
       const std::function<std::unique_ptr<Workload>()> &factory)
{
    const std::string base = std::string("workload=") + name;
    const Tick full =
        timeConfig(factory, true, true, false, base + " variant=full");
    const Tick no_pipe = timeConfig(factory, true, false, false,
                                    base + " variant=no_pipeline");
    const Tick naive = timeConfig(factory, false, true, false,
                                  base + " variant=double_copy");
    const Tick pio =
        timeConfig(factory, true, true, true, base + " variant=pio");

    std::printf("%-16s | %10.2f | %10.2f (%+5.1f%%) | %10.2f (%+5.1f%%) |"
                " %10.2f (%+5.1f%%)\n",
                name, ticksToMs(full), ticksToMs(no_pipe),
                (double(no_pipe) / full - 1) * 100, ticksToMs(naive),
                (double(naive) / full - 1) * 100, ticksToMs(pio),
                (double(pio) / full - 1) * 100);
}

}  // namespace

int
main()
{
    std::printf("HIX data-path ablations (Sections 4.4.2, 5.2)\n\n");
    std::printf("%-16s | %10s | %22s | %22s | %22s\n", "workload",
                "HIX (ms)", "no pipelining", "naive double copy",
                "PIO data path");
    ablate("PF", [] { return makeRodinia("PF"); });
    ablate("NW", [] { return makeRodinia("NW"); });
    ablate("matrix_add_8192", [] { return makeMatrixAdd(8192); });

    std::printf("\nPipeline chunk-size sweep (PF, single-copy, "
                "pipelined):\n");
    std::printf("%12s | %10s\n", "chunk", "HIX (ms)");
    for (std::uint64_t chunk :
         {512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB}) {
        const Tick t = timeConfig(
            [] { return makeRodinia("PF"); }, true, true, false,
            "workload=PF chunk_kib=" + std::to_string(chunk / KiB),
            chunk);
        std::printf("%9.1f MiB | %10.2f\n",
                    double(chunk) / (1 << 20), ticksToMs(t));
    }
    std::printf(
        "\nExpected shape: pipelining and single-copy each cut the "
        "data-path cost;\nPIO is slower than DMA for bulk data; "
        "moderate chunks (2-8 MiB) win the sweep.\n");
    json.write();
    return 0;
}
