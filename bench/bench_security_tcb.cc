/**
 * @file
 * Reproduces Table 2 (TCB breakdown) and the Section 5.5 security
 * analysis as an executable attack matrix: every privileged-software
 * attack class is replayed against the unprotected baseline (where it
 * succeeds) and against HIX (where the named mechanism must block or
 * detect it). The binary exits non-zero if any HIX defense fails.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "hix/baseline_runtime.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/attacker.h"
#include "os/machine.h"

using namespace hix;

namespace
{

int failures = 0;
bench::BenchJson json("security_tcb");
bench::HostTimer row_timer;

void
row(const char *component, const char *attack, const char *mechanism,
    bool blocked, const char *baseline_note)
{
    std::printf("%-28s | %-34s | %-24s | %-8s | %s\n", component,
                attack, mechanism, blocked ? "BLOCKED" : "FAILED!",
                baseline_note);
    json.add(std::string(component) + " :: " + attack, 0,
             row_timer.ms())
        .metric("blocked", blocked ? 1.0 : 0.0);
    row_timer.reset();
    if (!blocked)
        ++failures;
}

}  // namespace

int
main()
{
    std::printf(
        "Table 2 / Section 5.5: HIX attack-surface matrix "
        "(privileged software adversary)\n\n");
    std::printf("%-28s | %-34s | %-24s | %-8s | %s\n", "TCB component",
                "Attack", "HIX mechanism", "HIX", "Unprotected baseline");
    std::printf("%s\n", std::string(140, '-').c_str());

    // ---- Baseline demonstration: plaintext recovery -------------------
    {
        os::Machine machine;
        core::BaselineRuntime victim(&machine, "victim");
        (void)victim.init();
        auto va = victim.memAlloc(4096);
        Bytes secret(64, 0x42);
        (void)victim.memcpyHtoD(*va, secret);
        os::Attacker attacker(&machine);
        auto leak = attacker.readDram(victim.hostBuffer().paddr, 64);
        const bool leaked = leak.isOk() && *leak == secret;
        std::printf("%-28s | %-34s | %-24s | %-8s | %s\n",
                    "(baseline, no HIX)", "read user data from DRAM",
                    "none", leaked ? "leaks" : "??",
                    "full plaintext recovered");
    }

    // ---- HIX platform under attack -------------------------------------
    os::Machine machine;
    auto ge = core::GpuEnclave::create(
        &machine, machine.gpu().factoryBiosDigest());
    if (!ge.isOk()) {
        std::printf("GPU enclave bring-up failed: %s\n",
                    ge.status().toString().c_str());
        return 1;
    }
    core::TrustedRuntime user(&machine, ge->get(), "victim");
    if (!user.connect().isOk())
        return 1;
    auto va = user.memAlloc(64 * KiB);
    Bytes secret(4096, 0x42);
    (void)user.memcpyHtoD(*va, secret);

    os::Attacker attacker(&machine);
    ProcessId evil = machine.os().createProcess("evil");

    // (1) Inter-enclave shared memory: inspect.
    {
        auto snoop = attacker.readDram(user.sharedRing().paddr, 4096);
        int matches = 0;
        for (int i = 0; i < 4096; ++i)
            if ((*snoop)[i] == secret[i])
                ++matches;
        row("Inter-enclave shared mem", "inspect DMA buffer in DRAM",
            "OCB-AES encryption", matches < 100,
            "plaintext visible");
    }

    // (1b) Inter-enclave shared memory: tamper (DMA integrity).
    {
        (void)attacker.tamperDram(user.sharedRing().paddr, 0xff);
        auto pushed = ge->get()->pushChunkHtoD(
            user.sessionId(), 0, 256, *va, 9999, sim::InvalidOpId);
        row("Inter-enclave shared mem", "corrupt staged ciphertext",
            "OCB-AES MAC", !pushed.isOk(), "silent corruption");
    }

    // (2) GPU enclave memory (EPC).
    {
        const sgx::Secs *secs =
            machine.sgx().secs(ge->get()->enclaveId());
        auto leak = attacker.mapAndRead(evil, secs->secs_page, 16);
        row("GPU enclave / GECS & TGMR", "map and read EPC pages",
            "SGX EPC protection", !leak.isOk(), "readable");
    }

    // (3) GPU registers via MMIO.
    {
        auto w = attacker.mapAndWrite(
            evil, machine.gpu().config().barBase(0), {1, 2, 3, 4});
        row("GPU registers (BAR0)", "map MMIO, forge GPU commands",
            "MMU (GECS/TGMR check)", !w.isOk(), "full GPU control");
    }

    // (4) GPU memory via the BAR1 aperture.
    {
        auto leak = attacker.mapAndRead(
            evil, machine.gpu().config().barBase(1), 64);
        row("GPU memory (BAR1)", "map aperture, dump VRAM",
            "MMU (GECS/TGMR check)", !leak.isOk(),
            "VRAM dump (CUDA-leaks)");
    }

    // (5) MMIO address-translation attack: remap the GPU enclave's
    // registered MMIO VA to attacker DRAM.
    {
        // 0x22000000 is the enclave's registered BAR0 VA.
        (void)attacker.remapPte(ge->get()->pid(), 0x22000000,
                                0x00200000);
        mem::ExecContext ctx{ge->get()->pid(),
                             ge->get()->enclaveId()};
        Bytes buf(4);
        Status st = machine.mmu().read(ctx, 0x22000000, buf.data(), 4);
        const bool blocked = !st.isOk();
        // Restore the genuine mapping for later rows.
        (void)attacker.remapPte(ge->get()->pid(), 0x22000000,
                                machine.gpu().config().barBase(0));
        row("MMIO address translation", "rewrite PTE to redirect MMIO",
            "TGMR check 4 (PA match)", blocked, "traffic hijacked");
    }

    // (6) PCIe routing rewrite.
    {
        Status st = attacker.rewriteConfig(machine.gpu().bdf(),
                                           pcie::cfg::Bar0, 0xdead0000);
        row("PCIe infrastructure", "rewrite BAR / bridge windows",
            "root-complex lockdown",
            st.code() == StatusCode::LockdownViolation,
            "packets rerouted");
    }

    // (7) DMA redirection through the IOMMU.
    {
        machine.iommu().setEnabled(true);
        (void)attacker.redirectDma(user.sharedRing().paddr,
                                   0x00300000);
        auto pushed = ge->get()->pushChunkHtoD(
            user.sessionId(), 0, 256, *va, 10000, sim::InvalidOpId);
        machine.iommu().setEnabled(false);
        row("DMA path", "redirect DMA via IOMMU tables",
            "OCB-AES MAC", !pushed.isOk(), "data swapped in flight");
    }

    // (8) Forged/replayed control request.
    {
        crypto::SealedMessage forged;
        forged.stream = 0;
        forged.sequence = 99999;
        forged.body = Bytes(64, 0x00);
        auto outcome = ge->get()->request(user.sessionId(), forged,
                                          sim::InvalidOpId);
        row("Request channel", "forge/replay sealed request",
            "OCB-AES + nonce", !outcome.isOk(), "commands injected");
    }

    // (9) GPU BIOS flash (fresh machine: flash happens pre-enclave).
    {
        os::Machine m2;
        os::Attacker a2(&m2);
        a2.flashGpuBios(Bytes(32, 0x66));
        auto ge2 = core::GpuEnclave::create(
            &m2, m2.gpu().factoryBiosDigest());
        row("GPU BIOS", "flash malicious VBIOS before boot",
            "enclave BIOS measurement", !ge2.isOk(),
            "persistent implant");
    }

    // (10) GPU emulation.
    {
        os::Machine m3;
        auto fresh = core::GpuEnclave::create(
            &m3, m3.gpu().factoryBiosDigest());
        Status st = m3.hixExt().egcreate((*fresh)->enclaveId() + 1,
                                         os::Attacker::emulatedGpuBdf());
        row("GPU identity", "offer software-emulated GPU",
            "root-complex enumeration", !st.isOk(),
            "keys go to fake GPU");
    }

    // (11) GPU enclave termination.
    {
        os::Machine m4;
        auto ge4 = core::GpuEnclave::create(
            &m4, m4.gpu().factoryBiosDigest());
        os::Attacker a4(&m4);
        (void)a4.killProcessAndEnclave((*ge4)->pid(),
                                       (*ge4)->enclaveId());
        auto rebind = core::GpuEnclave::create(
            &m4, m4.gpu().factoryBiosDigest());
        ProcessId evil4 = m4.os().createProcess("evil");
        auto leak =
            a4.mapAndRead(evil4, m4.gpu().config().barBase(1), 16);
        row("GPU enclave termination", "kill GPU enclave, rebind GPU",
            "GECS ownership lockout", !rebind.isOk() && !leak.isOk(),
            "GPU and data captured");
    }

    std::printf("\n%s\n",
                failures == 0
                    ? "All HIX defenses held (Table 2 reproduced)."
                    : "SOME DEFENSES FAILED");
    json.write();
    return failures == 0 ? 0 : 1;
}
