/**
 * @file
 * Host-side microbenchmarks of the from-scratch crypto substrate
 * (google-benchmark, real wall-clock): AES-128 block ops, OCB-AES-128
 * seal/open across sizes, SHA-256, HMAC, and X25519. These underpin
 * the functional data path; simulated-time crypto costs come from the
 * calibrated platform model, not from these numbers.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/ocb.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"

using namespace hix;
using namespace hix::crypto;

namespace
{

AesKey
benchKey()
{
    Rng rng(42);
    AesKey key;
    rng.fill(key.data(), key.size());
    return key;
}

void
BM_AesEncryptBlock(benchmark::State &state)
{
    Aes128 aes(benchKey());
    AesBlock block{};
    for (auto _ : state) {
        aes.encryptBlock(block.data(), block.data());
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * AesBlockSize);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_AesDecryptBlock(benchmark::State &state)
{
    Aes128 aes(benchKey());
    AesBlock block{};
    for (auto _ : state) {
        aes.decryptBlock(block.data(), block.data());
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * AesBlockSize);
}
BENCHMARK(BM_AesDecryptBlock);

void
BM_OcbEncrypt(benchmark::State &state)
{
    Ocb ocb(benchKey());
    Rng rng(7);
    Bytes pt = rng.bytes(state.range(0));
    Bytes out(pt.size() + OcbTagSize);
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        ocb.encryptInto(makeNonce(1, ++ctr), nullptr, 0, pt.data(),
                        pt.size(), out.data(),
                        out.data() + pt.size());
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OcbEncrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_OcbDecrypt(benchmark::State &state)
{
    Ocb ocb(benchKey());
    Rng rng(8);
    Bytes pt = rng.bytes(state.range(0));
    Bytes ct = ocb.encrypt(makeNonce(2, 1), {}, pt);
    Bytes out(pt.size());
    for (auto _ : state) {
        Status st = ocb.decryptInto(makeNonce(2, 1), nullptr, 0,
                                    ct.data(), pt.size(),
                                    ct.data() + pt.size(), out.data());
        benchmark::DoNotOptimize(st);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OcbDecrypt)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_Sha256(benchmark::State &state)
{
    Rng rng(9);
    Bytes data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto digest = Sha256::digest(data);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(10);
    Bytes key = rng.bytes(32);
    Bytes data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto mac = hmacSha256(key, data);
        benchmark::DoNotOptimize(mac);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void
BM_X25519(benchmark::State &state)
{
    Rng rng(11);
    auto pair = X25519KeyPair::generate(rng);
    X25519Key peer = x25519BasePoint();
    for (auto _ : state) {
        auto shared = x25519(pair.privateKey, peer);
        benchmark::DoNotOptimize(shared);
    }
}
BENCHMARK(BM_X25519);

}  // namespace

BENCHMARK_MAIN();
