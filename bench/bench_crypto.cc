/**
 * @file
 * Host-side microbenchmarks of the from-scratch crypto substrate
 * (google-benchmark, real wall-clock): AES-128 block ops, OCB-AES-128
 * seal/open across sizes and engines, SHA-256, HMAC, and X25519.
 * These underpin the functional data path; simulated-time crypto
 * costs come from the calibrated platform model, not from these
 * numbers.
 *
 * Before the google-benchmark suite runs, main() does a short
 * throughput sweep of OCB sealing (reference scalar engine, T-table
 * fast engine, and the SealPool parallel chunk path) over message
 * sizes 4 KiB .. 1 MiB, prints a MB/s table, and writes the results
 * to BENCH_crypto.json in the working directory for CI trending.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "crypto/ocb.h"
#include "crypto/seal_pool.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"

using namespace hix;
using namespace hix::crypto;

namespace
{

AesKey
benchKey()
{
    Rng rng(42);
    AesKey key;
    rng.fill(key.data(), key.size());
    return key;
}

// ----- Throughput sweep (MB/s table + BENCH_crypto.json) ---------------

struct SweepResult
{
    std::string path;
    std::size_t bytes = 0;
    double mbPerSec = 0.0;
    double hostMs = 0.0;  //!< wall clock spent measuring this row
};

/**
 * Wall-clock MB/s of fn(): best of three ~50ms windows, so a
 * scheduling hiccup on a shared host degrades one window, not the
 * reported number.
 */
template <typename Fn>
double
measureMbps(std::size_t bytes_per_call, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    // Warm-up (touches caches, spins up pool threads).
    fn();
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        const auto deadline = start + std::chrono::milliseconds(50);
        std::size_t calls = 0;
        auto now = start;
        do {
            fn();
            ++calls;
            now = Clock::now();
        } while (now < deadline);
        const double secs =
            std::chrono::duration<double>(now - start).count();
        best = std::max(
            best,
            static_cast<double>(calls * bytes_per_call) / (1e6 * secs));
    }
    return best;
}

std::vector<SweepResult>
runSweep()
{
    const AesKey key = benchKey();
    const Ocb ref(key, AesEngine::Reference);
    const Ocb ttable(key, AesEngine::TTable);
    const Ocb fast(key, AesEngine::Fast);
    SealPool &pool = SealPool::shared();
    constexpr std::size_t ChunkBytes = 64 * 1024;

    std::vector<SweepResult> results;
    Rng rng(7);
    auto timed = [&results](const char *path, std::size_t bytes,
                            auto &&fn) {
        bench::HostTimer timer;
        const double mbps =
            measureMbps(bytes, std::forward<decltype(fn)>(fn));
        results.push_back({path, bytes, mbps, timer.ms()});
    };
    for (std::size_t size : {std::size_t{4} * 1024,
                             std::size_t{64} * 1024,
                             std::size_t{256} * 1024,
                             std::size_t{1024} * 1024}) {
        const Bytes pt = rng.bytes(size);
        Bytes out(size + OcbTagSize);
        std::uint64_t ctr = 0;

        timed("ocb_seal_reference", size, [&] {
            ref.encryptInto(makeNonce(1, ++ctr), nullptr, 0,
                            pt.data(), size, out.data(),
                            out.data() + size);
        });
        timed("ocb_seal_ttable", size, [&] {
            ttable.encryptInto(makeNonce(1, ++ctr), nullptr, 0,
                               pt.data(), size, out.data(),
                               out.data() + size);
        });
        timed("ocb_seal_fast", size, [&] {
            fast.encryptInto(makeNonce(1, ++ctr), nullptr, 0,
                             pt.data(), size, out.data(),
                             out.data() + size);
        });

        const std::size_t nchunks = (size + ChunkBytes - 1) / ChunkBytes;
        Bytes chunked(nchunks * (ChunkBytes + OcbTagSize));
        timed("ocb_seal_parallel_chunks", size, [&] {
            pool.sealChunks(fast, 1, ctr + 1, pt.data(), size,
                            ChunkBytes, chunked.data());
            ctr += nchunks;
        });
    }
    return results;
}

void
reportSweep(const std::vector<SweepResult> &results)
{
    std::printf("\nOCB-AES-128 seal throughput (host wall-clock)\n");
    std::printf("fast engine: %s\n",
                Aes128::hwSupported() ? "AES-NI" : "T-table");
    std::printf("%-28s %10s %12s\n", "path", "bytes", "MB/s");
    for (const auto &r : results)
        std::printf("%-28s %10zu %12.1f\n", r.path.c_str(), r.bytes,
                    r.mbPerSec);

    // Headline ratio the issue's acceptance criterion checks.
    double ref64 = 0.0, fast64 = 0.0;
    for (const auto &r : results) {
        if (r.bytes != 64 * 1024)
            continue;
        if (r.path == "ocb_seal_reference")
            ref64 = r.mbPerSec;
        else if (r.path == "ocb_seal_fast")
            fast64 = r.mbPerSec;
    }
    if (ref64 > 0.0)
        std::printf("fast/reference speedup at 64KiB: %.1fx\n\n",
                    fast64 / ref64);

    bench::BenchJson json("crypto");
    for (const auto &r : results)
        json.add("path=" + r.path +
                     " bytes=" + std::to_string(r.bytes),
                 0, r.hostMs)
            .metric("mb_per_sec", r.mbPerSec);
    json.write();
    std::printf("\n");
}

// ----- google-benchmark suite ------------------------------------------

AesEngine
engineArg(const benchmark::State &state)
{
    switch (state.range(0)) {
      case 0:
        return AesEngine::Reference;
      case 1:
        return AesEngine::TTable;
      default:
        return AesEngine::Fast;
    }
}

const char *
engineName(AesEngine engine)
{
    switch (engine) {
      case AesEngine::Reference:
        return "reference";
      case AesEngine::TTable:
        return "ttable";
      default:
        return Aes128::hwSupported() ? "fast(aesni)" : "fast(ttable)";
    }
}

void
BM_AesEncryptBlock(benchmark::State &state)
{
    const AesEngine engine = engineArg(state);
    Aes128 aes(benchKey(), engine);
    AesBlock block{};
    for (auto _ : state) {
        aes.encryptBlock(block.data(), block.data());
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * AesBlockSize);
    state.SetLabel(engineName(engine));
}
BENCHMARK(BM_AesEncryptBlock)->Arg(0)->Arg(1)->Arg(2);

void
BM_AesDecryptBlock(benchmark::State &state)
{
    const AesEngine engine = engineArg(state);
    Aes128 aes(benchKey(), engine);
    AesBlock block{};
    for (auto _ : state) {
        aes.decryptBlock(block.data(), block.data());
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * AesBlockSize);
    state.SetLabel(engineName(engine));
}
BENCHMARK(BM_AesDecryptBlock)->Arg(0)->Arg(1)->Arg(2);

void
BM_AesEncryptBlocksWide(benchmark::State &state)
{
    Aes128 aes(benchKey());
    std::vector<std::uint8_t> buf(64 * AesBlockSize);
    for (auto _ : state) {
        aes.encryptBlocks(buf.data(), buf.data(),
                          buf.size() / AesBlockSize);
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_AesEncryptBlocksWide);

void
BM_OcbEncrypt(benchmark::State &state)
{
    const AesEngine engine = engineArg(state);
    Ocb ocb(benchKey(), engine);
    Rng rng(7);
    Bytes pt = rng.bytes(state.range(1));
    Bytes out(pt.size() + OcbTagSize);
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        ocb.encryptInto(makeNonce(1, ++ctr), nullptr, 0, pt.data(),
                        pt.size(), out.data(),
                        out.data() + pt.size());
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * state.range(1));
    state.SetLabel(engineName(engine));
}
BENCHMARK(BM_OcbEncrypt)
    ->Args({0, 1024})
    ->Args({0, 64 * 1024})
    ->Args({0, 1024 * 1024})
    ->Args({1, 64 * 1024})
    ->Args({2, 1024})
    ->Args({2, 64 * 1024})
    ->Args({2, 1024 * 1024});

void
BM_OcbDecrypt(benchmark::State &state)
{
    const AesEngine engine = engineArg(state);
    Ocb ocb(benchKey(), engine);
    Rng rng(8);
    Bytes pt = rng.bytes(state.range(1));
    Bytes ct = ocb.encrypt(makeNonce(2, 1), {}, pt);
    Bytes out(pt.size());
    for (auto _ : state) {
        Status st = ocb.decryptInto(makeNonce(2, 1), nullptr, 0,
                                    ct.data(), pt.size(),
                                    ct.data() + pt.size(), out.data());
        benchmark::DoNotOptimize(st);
    }
    state.SetBytesProcessed(state.iterations() * state.range(1));
    state.SetLabel(engineName(engine));
}
BENCHMARK(BM_OcbDecrypt)
    ->Args({0, 64 * 1024})
    ->Args({1, 64 * 1024})
    ->Args({2, 1024})
    ->Args({2, 64 * 1024})
    ->Args({2, 1024 * 1024});

void
BM_SealPoolChunks(benchmark::State &state)
{
    Ocb ocb(benchKey());
    SealPool &pool = SealPool::shared();
    Rng rng(12);
    const std::size_t size = state.range(0);
    constexpr std::size_t ChunkBytes = 64 * 1024;
    const std::size_t nchunks = (size + ChunkBytes - 1) / ChunkBytes;
    Bytes pt = rng.bytes(size);
    Bytes out(nchunks * (ChunkBytes + OcbTagSize));
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        pool.sealChunks(ocb, 1, ctr + 1, pt.data(), size, ChunkBytes,
                        out.data());
        ctr += nchunks;
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_SealPoolChunks)->Arg(256 * 1024)->Arg(1024 * 1024);

void
BM_Sha256(benchmark::State &state)
{
    Rng rng(9);
    Bytes data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto digest = Sha256::digest(data);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(64 * 1024)->Arg(1024 * 1024);

void
BM_HmacSha256(benchmark::State &state)
{
    Rng rng(10);
    Bytes key = rng.bytes(32);
    Bytes data = rng.bytes(state.range(0));
    for (auto _ : state) {
        auto mac = hmacSha256(key, data);
        benchmark::DoNotOptimize(mac);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void
BM_X25519(benchmark::State &state)
{
    Rng rng(11);
    auto pair = X25519KeyPair::generate(rng);
    X25519Key peer = x25519BasePoint();
    for (auto _ : state) {
        auto shared = x25519(pair.privateKey, peer);
        benchmark::DoNotOptimize(shared);
    }
}
BENCHMARK(BM_X25519);

}  // namespace

int
main(int argc, char **argv)
{
    reportSweep(runSweep());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
