/**
 * @file
 * Timing-scheduler benchmark: replays large op-DAG traces through the
 * O(n log n) production engine and the O(n^2)-ish reference engine,
 * reporting simulated makespan (which must match bit for bit) and
 * host wall-clock per engine.
 *
 * Shapes:
 *  - synthetic multi-user pipeline chains (the 1M-op headline preset:
 *    16 users x 128 outstanding chunk lanes of encrypt -> DMA ->
 *    kernel, the op shape the HIX chunked data path records for a
 *    large pipelined transfer);
 *  - real recorded Rodinia traces, 16 users merged across apps via
 *    Trace::append.
 *
 * Writes BENCH_sched.json (see bench_json.h). `--preset=small` keeps
 * the synthetic trace CI-sized; the default full preset runs the
 * 1M-op acceptance configuration.
 */

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "sim/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

using namespace hix;
using namespace hix::workloads;

namespace
{

/**
 * Multi-user chunked-pipeline DAG: every user owns a CPU lane set and
 * a GPU context; chunk c of lane l is encrypt (user CPU) -> transfer
 * (shared DMA) -> kernel (shared GPU compute, user's context), with
 * each stage chained to the lane's previous chunk. This reproduces
 * the wide ready-sets a merged multi-user HIX trace exposes, which is
 * exactly where the reference engine's linear ready-scan hurts.
 */
sim::Trace
makeSyntheticPipeline(int users, int lanes, std::size_t total_ops)
{
    sim::Trace trace;
    trace.reserve(total_ops);
    Rng rng(0x5ced);

    const sim::ResourceId dma{sim::ResUnit::DmaHtoD, 0};
    const sim::ResourceId gpu{sim::ResUnit::GpuCompute, 0};

    // tails[user][lane]: last op of that lane's chain.
    std::vector<std::vector<sim::OpId>> tails(
        users,
        std::vector<sim::OpId>(lanes, sim::InvalidOpId));

    std::size_t added = 0;
    for (std::size_t i = 0; added + 3 <= total_ops; ++i) {
        const int u = static_cast<int>(i % users);
        const int l = static_cast<int>((i / users) % lanes);
        const sim::ResourceId cpu{
            sim::ResUnit::UserCpu, static_cast<std::uint16_t>(u)};
        const auto ctx = static_cast<GpuContextId>(u);

        const sim::OpId tail = tails[u][l];
        const sim::OpId enc =
            trace.add(cpu, 50 + rng.nextBelow(200),
                      std::span<const sim::OpId>(
                          &tail, tail != sim::InvalidOpId ? 1 : 0),
                      sim::OpKind::CryptoCpu, 4096, "enc");
        const sim::OpId xfer =
            trace.add(dma, 20 + rng.nextBelow(80), {enc},
                      sim::OpKind::Transfer, 4096, "xfer");
        tails[u][l] =
            trace.add(gpu, 100 + rng.nextBelow(400), {xfer},
                      sim::OpKind::Compute, 0, "kernel",
                      ctx);
        added += 3;
    }
    return trace;
}

/** Record real Rodinia traces and merge them into one 16-user DAG. */
sim::Trace
makeMergedRodinia(int users_per_app,
                  sim::SchedulerConfig *cfg_out)
{
    sim::Trace merged;
    for (const char *app : {"BP", "BFS", "NW", "SRAD"}) {
        RunConfig config;
        config.factory = [app] { return makeRodinia(app); };
        config.users = users_per_app;
        config.useHix = true;
        config.keepTrace = true;
        auto outcome = runWorkload(config);
        if (!outcome.isOk() || !outcome->trace) {
            std::fprintf(stderr, "rodinia %s failed: %s\n", app,
                         outcome.status().toString().c_str());
            continue;
        }
        merged.append(*outcome->trace);
        if (cfg_out)
            *cfg_out = outcome->schedulerConfig;
    }
    return merged;
}

struct EngineTimes
{
    double fastMs = 0.0;
    double refMs = 0.0;
    Tick makespan = 0;
    bool identical = false;
};

/** Time both engines on one trace; fast engine takes best of 3. */
EngineTimes
raceEngines(const sim::Trace &trace, const sim::SchedulerConfig &cfg)
{
    EngineTimes times;

    double best = -1.0;
    sim::ScheduleResult fast;
    for (int rep = 0; rep < 3; ++rep) {
        bench::HostTimer timer;
        fast = sim::schedule(trace, cfg);
        const double ms = timer.ms();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    times.fastMs = best;

    bench::HostTimer timer;
    const sim::ScheduleResult ref = sim::scheduleReference(trace, cfg);
    times.refMs = timer.ms();

    times.makespan = fast.makespan;
    times.identical = fast.start == ref.start &&
                      fast.finish == ref.finish &&
                      fast.makespan == ref.makespan &&
                      fast.gpuCtxSwitches == ref.gpuCtxSwitches;
    return times;
}

int
runBench(bool small_preset)
{
    bench::BenchJson json("sched");
    bool all_identical = true;

    std::printf("Scheduler engine race (host wall-clock)\n\n");
    std::printf("%-44s %9s %12s %12s %9s\n", "trace", "ops",
                "fast (ms)", "reference", "speedup");

    auto report = [&](const std::string &name,
                      const sim::Trace &trace,
                      const sim::SchedulerConfig &cfg) {
        const EngineTimes times = raceEngines(trace, cfg);
        all_identical = all_identical && times.identical;
        const double speedup =
            times.fastMs > 0.0 ? times.refMs / times.fastMs : 0.0;
        std::printf("%-44s %9zu %12.1f %12.1f %8.1fx%s\n",
                    name.c_str(), trace.size(), times.fastMs,
                    times.refMs, speedup,
                    times.identical ? "" : "  MISMATCH");
        json.add(name + " engine=fast", times.makespan, times.fastMs)
            .metric("ops", static_cast<double>(trace.size()))
            .metric("speedup_vs_reference", speedup);
        json.add(name + " engine=reference", times.makespan,
                 times.refMs)
            .metric("ops", static_cast<double>(trace.size()));
        return speedup;
    };

    sim::SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;

    // Headline synthetic preset (acceptance: >= 10x at 1M ops).
    const std::size_t headline_ops =
        small_preset ? 60'000 : 1'000'000;
    const int lanes = small_preset ? 32 : 128;
    const sim::Trace headline =
        makeSyntheticPipeline(16, lanes, headline_ops);
    const double headline_speedup =
        report("synthetic_pipeline users=16 lanes=" +
                   std::to_string(lanes),
               headline, cfg);

    if (!small_preset) {
        const sim::Trace narrow =
            makeSyntheticPipeline(4, 4, 250'000);
        report("synthetic_pipeline users=4 lanes=4", narrow, cfg);
    }

    // Real recorded shapes: 16 users across four Rodinia apps.
    sim::SchedulerConfig rodinia_cfg;
    const sim::Trace rodinia =
        makeMergedRodinia(small_preset ? 4 : 16, &rodinia_cfg);
    if (rodinia.size() > 0)
        report(small_preset
                   ? "rodinia_merged users=4x4apps hix"
                   : "rodinia_merged users=16x4apps hix",
               rodinia, rodinia_cfg);

    std::printf("\nheadline speedup: %.1fx (target >= 10x at 1M "
                "ops)\n",
                headline_speedup);
    json.write();

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: engines disagree on a trace\n");
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool small_preset = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--preset=small") == 0 ||
            std::strcmp(arg, "small") == 0) {
            small_preset = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--preset=small]\n", argv[0]);
            return 2;
        }
    }
    return runBench(small_preset);
}
