/**
 * @file
 * Timing-scheduler benchmark: replays large op-DAG traces through the
 * O(n log n) production engine, the O(n^2)-ish reference engine, and
 * the parallel engine, reporting simulated makespan (which must match
 * bit for bit across all engines) and host wall-clock per engine.
 *
 * Shapes:
 *  - synthetic multi-user pipeline chains (the 1M-op headline preset:
 *    16 users x 128 outstanding chunk lanes of encrypt -> DMA ->
 *    kernel, the op shape the HIX chunked data path records for a
 *    large pipelined transfer);
 *  - real recorded Rodinia traces, 16 users merged across apps via
 *    Trace::append.
 *
 * The headline trace additionally sweeps scheduleParallel() across
 * --threads=1,2,4,8,auto; fast vs parallel-8 is measured interleaved
 * (alternating runs, min of 9) so the sched_speedup metric survives
 * noisy single-core CI hosts.
 *
 * Writes BENCH_sched.json (see bench_json.h). `--preset=small` keeps
 * the synthetic trace CI-sized but still emits the full 1M-op
 * parallel row (one run, no reference race) so CI can pin its
 * makespan; the default full preset runs the 1M-op acceptance
 * configuration end to end. `--threads=N` restricts the sweep to one
 * thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "sim/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

using namespace hix;
using namespace hix::workloads;

namespace
{

/**
 * Multi-user chunked-pipeline DAG: every user owns a CPU lane set and
 * a GPU context; chunk c of lane l is encrypt (user CPU) -> transfer
 * (shared DMA) -> kernel (shared GPU compute, user's context), with
 * each stage chained to the lane's previous chunk. This reproduces
 * the wide ready-sets a merged multi-user HIX trace exposes, which is
 * exactly where the reference engine's linear ready-scan hurts.
 */
sim::Trace
makeSyntheticPipeline(int users, int lanes, std::size_t total_ops)
{
    sim::Trace trace;
    trace.reserve(total_ops);
    Rng rng(0x5ced);

    const sim::ResourceId dma{sim::ResUnit::DmaHtoD, 0};
    const sim::ResourceId gpu{sim::ResUnit::GpuCompute, 0};

    // tails[user][lane]: last op of that lane's chain.
    std::vector<std::vector<sim::OpId>> tails(
        users,
        std::vector<sim::OpId>(lanes, sim::InvalidOpId));

    std::size_t added = 0;
    for (std::size_t i = 0; added + 3 <= total_ops; ++i) {
        const int u = static_cast<int>(i % users);
        const int l = static_cast<int>((i / users) % lanes);
        const sim::ResourceId cpu{
            sim::ResUnit::UserCpu, static_cast<std::uint16_t>(u)};
        const auto ctx = static_cast<GpuContextId>(u);

        const sim::OpId tail = tails[u][l];
        const sim::OpId enc =
            trace.add(cpu, 50 + rng.nextBelow(200),
                      std::span<const sim::OpId>(
                          &tail, tail != sim::InvalidOpId ? 1 : 0),
                      sim::OpKind::CryptoCpu, 4096, "enc");
        const sim::OpId xfer =
            trace.add(dma, 20 + rng.nextBelow(80), {enc},
                      sim::OpKind::Transfer, 4096, "xfer");
        tails[u][l] =
            trace.add(gpu, 100 + rng.nextBelow(400), {xfer},
                      sim::OpKind::Compute, 0, "kernel",
                      ctx);
        added += 3;
    }
    return trace;
}

/** Record real Rodinia traces and merge them into one 16-user DAG. */
sim::Trace
makeMergedRodinia(int users_per_app,
                  sim::SchedulerConfig *cfg_out)
{
    sim::Trace merged;
    for (const char *app : {"BP", "BFS", "NW", "SRAD"}) {
        RunConfig config;
        config.factory = [app] { return makeRodinia(app); };
        config.users = users_per_app;
        config.useHix = true;
        config.keepTrace = true;
        auto outcome = runWorkload(config);
        if (!outcome.isOk() || !outcome->trace) {
            std::fprintf(stderr, "rodinia %s failed: %s\n", app,
                         outcome.status().toString().c_str());
            continue;
        }
        merged.append(*outcome->trace);
        if (cfg_out)
            *cfg_out = outcome->schedulerConfig;
    }
    return merged;
}

/** Full-field ScheduleResult comparison (the bit-identity contract). */
bool
identicalResults(const sim::ScheduleResult &a,
                 const sim::ScheduleResult &b)
{
    bool ok = a.start == b.start && a.finish == b.finish &&
              a.makespan == b.makespan &&
              a.gpuCtxSwitches == b.gpuCtxSwitches &&
              a.kindBusy == b.kindBusy &&
              a.usage.size() == b.usage.size();
    if (!ok)
        return false;
    for (const auto &[rid, use] : a.usage) {
        auto it = b.usage.find(rid);
        if (it == b.usage.end() || it->second.busy != use.busy ||
            it->second.lastFree != use.lastFree ||
            it->second.ops != use.ops)
            return false;
    }
    return true;
}

unsigned
effectiveWorkers(unsigned threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::string
threadsLabel(unsigned threads)
{
    return threads == 0 ? std::string("auto")
                        : std::to_string(threads);
}

struct EngineTimes
{
    double fastMs = 0.0;
    double refMs = 0.0;
    double parMs = 0.0;  // threads=8, single run
    Tick makespan = 0;
    bool identical = false;
};

/** Time all three engines on one trace; fast engine takes best of 3,
 *  parallel runs once at 8 threads. */
EngineTimes
raceEngines(const sim::Trace &trace, const sim::SchedulerConfig &cfg)
{
    EngineTimes times;

    double best = -1.0;
    sim::ScheduleResult fast;
    for (int rep = 0; rep < 3; ++rep) {
        bench::HostTimer timer;
        fast = sim::schedule(trace, cfg);
        const double ms = timer.ms();
        if (best < 0.0 || ms < best)
            best = ms;
    }
    times.fastMs = best;

    bench::HostTimer timer;
    const sim::ScheduleResult ref = sim::scheduleReference(trace, cfg);
    times.refMs = timer.ms();

    bench::HostTimer par_timer;
    const sim::ScheduleResult par =
        sim::scheduleParallel(trace, cfg, 8);
    times.parMs = par_timer.ms();

    times.makespan = fast.makespan;
    times.identical =
        identicalResults(fast, ref) && identicalResults(fast, par);
    return times;
}

int
runBench(bool small_preset, int threads_arg)
{
    bench::BenchJson json("sched");
    bool all_identical = true;

    std::printf("Scheduler engine race (host wall-clock)\n\n");
    std::printf("%-52s %9s %12s %12s %12s %9s\n", "trace", "ops",
                "fast (ms)", "reference", "par8 (ms)", "speedup");

    auto report = [&](const std::string &name,
                      const sim::Trace &trace,
                      const sim::SchedulerConfig &cfg) {
        const EngineTimes times = raceEngines(trace, cfg);
        all_identical = all_identical && times.identical;
        const double speedup =
            times.fastMs > 0.0 ? times.refMs / times.fastMs : 0.0;
        std::printf("%-52s %9zu %12.1f %12.1f %12.1f %8.1fx%s\n",
                    name.c_str(), trace.size(), times.fastMs,
                    times.refMs, times.parMs, speedup,
                    times.identical ? "" : "  MISMATCH");
        json.add(name + " engine=fast", times.makespan, times.fastMs)
            .metric("ops", static_cast<double>(trace.size()))
            .metric("speedup_vs_reference", speedup);
        json.add(name + " engine=reference", times.makespan,
                 times.refMs)
            .metric("ops", static_cast<double>(trace.size()));
        json.add(name + " engine=parallel threads=8", times.makespan,
                 times.parMs)
            .metric("ops", static_cast<double>(trace.size()))
            .metric("sched_workers", 8.0);
        return speedup;
    };

    sim::SchedulerConfig cfg;
    cfg.gpuCtxSwitchTicks = 50;

    // Headline synthetic preset (acceptance: >= 10x vs reference and
    // >= 2.5x parallel-vs-fast at 1M ops).
    const std::size_t headline_ops =
        small_preset ? 60'000 : 1'000'000;
    const int lanes = small_preset ? 32 : 128;
    const std::string headline_name =
        "synthetic_pipeline users=16 lanes=" + std::to_string(lanes);
    const sim::Trace headline =
        makeSyntheticPipeline(16, lanes, headline_ops);

    // Interleave fast and parallel-8 (min of 9 each) so the
    // sched_speedup ratio is taken from the same noise regime; the
    // shared CI-class host needs the extra reps for the min to reach
    // each engine's floor.
    double fast_ms = -1.0, par8_ms = -1.0;
    sim::ScheduleResult fast, par8;
    for (int rep = 0; rep < 9; ++rep) {
        {
            bench::HostTimer timer;
            fast = sim::schedule(headline, cfg);
            const double ms = timer.ms();
            if (fast_ms < 0.0 || ms < fast_ms)
                fast_ms = ms;
        }
        {
            bench::HostTimer timer;
            par8 = sim::scheduleParallel(headline, cfg, 8);
            const double ms = timer.ms();
            if (par8_ms < 0.0 || ms < par8_ms)
                par8_ms = ms;
        }
    }
    bench::HostTimer ref_timer;
    const sim::ScheduleResult ref =
        sim::scheduleReference(headline, cfg);
    const double ref_ms = ref_timer.ms();

    const bool headline_identical =
        identicalResults(fast, ref) && identicalResults(fast, par8);
    all_identical = all_identical && headline_identical;
    const double headline_speedup =
        fast_ms > 0.0 ? ref_ms / fast_ms : 0.0;
    const double sched_speedup =
        par8_ms > 0.0 ? fast_ms / par8_ms : 0.0;
    std::printf("%-52s %9zu %12.1f %12.1f %12.1f %8.1fx%s\n",
                headline_name.c_str(), headline.size(), fast_ms,
                ref_ms, par8_ms, headline_speedup,
                headline_identical ? "" : "  MISMATCH");
    json.add(headline_name + " engine=fast", fast.makespan, fast_ms)
        .metric("ops", static_cast<double>(headline.size()))
        .metric("speedup_vs_reference", headline_speedup)
        .metric("host_ms_parallel", par8_ms)
        .metric("sched_speedup", sched_speedup)
        .metric("sched_workers", 8.0);
    json.add(headline_name + " engine=reference", fast.makespan,
             ref_ms)
        .metric("ops", static_cast<double>(headline.size()));

    // Thread sweep over the headline trace.
    const std::vector<unsigned> sweep =
        threads_arg >= 0
            ? std::vector<unsigned>{
                  static_cast<unsigned>(threads_arg)}
            : std::vector<unsigned>{1, 2, 4, 8, 0};
    for (unsigned t : sweep) {
        double best = -1.0;
        sim::ScheduleResult par;
        if (t == 8) {
            best = par8_ms;  // reuse the interleaved measurement
            par = par8;
        } else {
            for (int rep = 0; rep < 3; ++rep) {
                bench::HostTimer timer;
                par = sim::scheduleParallel(headline, cfg, t);
                const double ms = timer.ms();
                if (best < 0.0 || ms < best)
                    best = ms;
            }
        }
        const bool same = identicalResults(fast, par);
        all_identical = all_identical && same;
        std::printf("  parallel threads=%-4s %40s %12.1f ms%s\n",
                    threadsLabel(t).c_str(), "", best,
                    same ? "" : "  MISMATCH");
        json.add(headline_name +
                     " engine=parallel threads=" + threadsLabel(t),
                 par.makespan, best)
            .metric("ops", static_cast<double>(headline.size()))
            .metric("sched_workers",
                    static_cast<double>(effectiveWorkers(t)));
    }

    if (small_preset) {
        // CI pin: the full 1M-op trace through the parallel engine
        // only (the reference race would dominate CI time). Its
        // makespan must equal the recorded full-preset value.
        const sim::Trace full =
            makeSyntheticPipeline(16, 128, 1'000'000);
        bench::HostTimer timer;
        const sim::ScheduleResult par =
            sim::scheduleParallel(full, cfg, 8);
        const double ms = timer.ms();
        std::printf("%-52s %9zu %12s %12s %12.1f\n",
                    "synthetic_pipeline users=16 lanes=128 (pin)",
                    full.size(), "-", "-", ms);
        json.add("synthetic_pipeline users=16 lanes=128 "
                 "engine=parallel threads=8",
                 par.makespan, ms)
            .metric("ops", static_cast<double>(full.size()))
            .metric("sched_workers", 8.0);
    }

    if (!small_preset) {
        const sim::Trace narrow =
            makeSyntheticPipeline(4, 4, 250'000);
        report("synthetic_pipeline users=4 lanes=4", narrow, cfg);
    }

    // Real recorded shapes: 16 users across four Rodinia apps.
    sim::SchedulerConfig rodinia_cfg;
    const sim::Trace rodinia =
        makeMergedRodinia(small_preset ? 4 : 16, &rodinia_cfg);
    if (rodinia.size() > 0)
        report(small_preset
                   ? "rodinia_merged users=4x4apps hix"
                   : "rodinia_merged users=16x4apps hix",
               rodinia, rodinia_cfg);

    std::printf("\nheadline speedup: %.1fx (target >= 10x at 1M "
                "ops)\n",
                headline_speedup);
    std::printf("parallel speedup at 8 threads: %.2fx (target >= "
                "2.5x at 1M ops)\n",
                sched_speedup);
    json.write();

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: engines disagree on a trace\n");
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool small_preset = false;
    int threads_arg = -1;  // -1 = full sweep
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--preset=small") == 0 ||
            std::strcmp(arg, "small") == 0) {
            small_preset = true;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            threads_arg = std::atoi(arg + 10);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--preset=small] [--threads=N]\n",
                argv[0]);
            return 2;
        }
    }
    return runBench(small_preset, threads_arg);
}
