#include "common/addr_range.h"

#include <cstdio>

namespace hix
{

std::string
AddrRange::toString() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[0x%llx, 0x%llx)",
                  static_cast<unsigned long long>(start_),
                  static_cast<unsigned long long>(end_));
    return buf;
}

}  // namespace hix
