/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Everything in the model that needs randomness — workload inputs,
 * DH private exponents, nonces in tests — draws from an explicitly
 * seeded Rng so that simulations are reproducible run-to-run.
 */

#ifndef HIX_COMMON_RNG_H_
#define HIX_COMMON_RNG_H_

#include <cstdint>

#include "common/types.h"

namespace hix
{

/** xoshiro256** by Blackman & Vigna; small, fast, and splittable. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next 64 uniformly random bits. */
    std::uint64_t next64();

    /** Uniform in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform 32-bit value. */
    std::uint32_t
    next32()
    {
        return static_cast<std::uint32_t>(next64() >> 32);
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fill @p n bytes at @p out with random bytes. */
    void fill(std::uint8_t *out, std::size_t n);

    /** A fresh random byte vector of length @p n. */
    Bytes bytes(std::size_t n);

  private:
    std::uint64_t s_[4];
};

}  // namespace hix

#endif  // HIX_COMMON_RNG_H_
