/**
 * @file
 * Error handling for the modelled hardware/software stack.
 *
 * Security-relevant denials (access faults, MAC failures, lockdown
 * rejections) are normal, *expected* outcomes under the HIX threat
 * model, so they are reported as values rather than exceptions: every
 * fallible operation returns a Status or a Result<T>.
 */

#ifndef HIX_COMMON_STATUS_H_
#define HIX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace hix
{

/** Canonical error codes across all HIX modules. */
enum class StatusCode
{
    Ok = 0,
    /** Generic invalid argument from the caller. */
    InvalidArgument,
    /** Entity (page, device, enclave, buffer...) not found. */
    NotFound,
    /** Entity already exists / already bound. */
    AlreadyExists,
    /** Caller lacks the rights; access denied by a protection check. */
    PermissionDenied,
    /** Hardware protection fault (EPCM/TGMR/TLB validation failure). */
    AccessFault,
    /** PCIe lockdown dropped the transaction. */
    LockdownViolation,
    /** Authenticated-encryption tag mismatch. */
    IntegrityFailure,
    /** Replay detected (stale nonce). */
    ReplayDetected,
    /** Attestation / measurement mismatch. */
    AttestationFailure,
    /** Out of a modelled resource (EPC pages, VRAM, channels...). */
    ResourceExhausted,
    /** Operation invalid in the current state. */
    FailedPrecondition,
    /** Device or enclave is terminated/unavailable. */
    Unavailable,
    /** Feature intentionally not modelled. */
    Unimplemented,
    /** Internal model inconsistency. */
    Internal,
};

/** Human-readable name of a status code. */
const char *statusCodeName(StatusCode code);

/**
 * Lightweight status value: a code plus an optional message.
 * Statuses are cheap to copy and compare by code.
 */
class Status
{
  public:
    /** Construct an OK status. */
    Status() : code_(StatusCode::Ok) {}

    /** Construct a status with a code and message. */
    Status(StatusCode code, std::string msg)
        : code_(code), msg_(std::move(msg))
    {}

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return msg_; }

    /** "CODE: message" string for logs and test failures. */
    std::string toString() const;

    friend bool
    operator==(const Status &a, const Status &b)
    {
        return a.code_ == b.code_;
    }

  private:
    StatusCode code_;
    std::string msg_;
};

/** Shorthand constructors, one per error code. */
Status errInvalidArgument(std::string msg);
Status errNotFound(std::string msg);
Status errAlreadyExists(std::string msg);
Status errPermissionDenied(std::string msg);
Status errAccessFault(std::string msg);
Status errLockdownViolation(std::string msg);
Status errIntegrityFailure(std::string msg);
Status errReplayDetected(std::string msg);
Status errAttestationFailure(std::string msg);
Status errResourceExhausted(std::string msg);
Status errFailedPrecondition(std::string msg);
Status errUnavailable(std::string msg);
Status errUnimplemented(std::string msg);
Status errInternal(std::string msg);

/**
 * A value or an error status. Minimal std::expected stand-in: the
 * toolchain's C++20 library predates std::expected.
 */
template <typename T>
class Result
{
  public:
    /** Implicit from a value. */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit from a non-OK status. */
    Result(Status status) : status_(std::move(status))
    {
        if (status_.isOk())
            status_ = errInternal("Result constructed from OK status");
    }

    bool isOk() const { return value_.has_value(); }
    explicit operator bool() const { return isOk(); }

    /** The error status; OK when a value is present. */
    const Status &status() const { return status_; }

    /** Access the value; undefined if !isOk(). */
    T &value() & { return *value_; }
    const T &value() const & { return *value_; }
    T &&value() && { return std::move(*value_); }

    T &operator*() & { return *value_; }
    const T &operator*() const & { return *value_; }
    T *operator->() { return &*value_; }
    const T *operator->() const { return &*value_; }

  private:
    std::optional<T> value_;
    Status status_;
};

/** Propagate a non-OK Status from the current function. */
#define HIX_RETURN_IF_ERROR(expr) \
    do { \
        ::hix::Status hix_st_ = (expr); \
        if (!hix_st_.isOk()) \
            return hix_st_; \
    } while (0)

/** Assign a Result's value to lhs, or propagate its error status. */
#define HIX_ASSIGN_OR_RETURN(lhs, expr) \
    auto HIX_CONCAT_(hix_res_, __LINE__) = (expr); \
    if (!HIX_CONCAT_(hix_res_, __LINE__).isOk()) \
        return HIX_CONCAT_(hix_res_, __LINE__).status(); \
    lhs = std::move(HIX_CONCAT_(hix_res_, __LINE__)).value()

#define HIX_CONCAT_IMPL_(a, b) a##b
#define HIX_CONCAT_(a, b) HIX_CONCAT_IMPL_(a, b)

}  // namespace hix

#endif  // HIX_COMMON_STATUS_H_
