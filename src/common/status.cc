#include "common/status.h"

namespace hix
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::NotFound:
        return "NOT_FOUND";
      case StatusCode::AlreadyExists:
        return "ALREADY_EXISTS";
      case StatusCode::PermissionDenied:
        return "PERMISSION_DENIED";
      case StatusCode::AccessFault:
        return "ACCESS_FAULT";
      case StatusCode::LockdownViolation:
        return "LOCKDOWN_VIOLATION";
      case StatusCode::IntegrityFailure:
        return "INTEGRITY_FAILURE";
      case StatusCode::ReplayDetected:
        return "REPLAY_DETECTED";
      case StatusCode::AttestationFailure:
        return "ATTESTATION_FAILURE";
      case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
      case StatusCode::Unimplemented:
        return "UNIMPLEMENTED";
      case StatusCode::Internal:
        return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    std::string s = statusCodeName(code_);
    if (!msg_.empty()) {
        s += ": ";
        s += msg_;
    }
    return s;
}

#define HIX_DEFINE_ERR(fn, code) \
    Status fn(std::string msg) \
    { \
        return Status(StatusCode::code, std::move(msg)); \
    }

HIX_DEFINE_ERR(errInvalidArgument, InvalidArgument)
HIX_DEFINE_ERR(errNotFound, NotFound)
HIX_DEFINE_ERR(errAlreadyExists, AlreadyExists)
HIX_DEFINE_ERR(errPermissionDenied, PermissionDenied)
HIX_DEFINE_ERR(errAccessFault, AccessFault)
HIX_DEFINE_ERR(errLockdownViolation, LockdownViolation)
HIX_DEFINE_ERR(errIntegrityFailure, IntegrityFailure)
HIX_DEFINE_ERR(errReplayDetected, ReplayDetected)
HIX_DEFINE_ERR(errAttestationFailure, AttestationFailure)
HIX_DEFINE_ERR(errResourceExhausted, ResourceExhausted)
HIX_DEFINE_ERR(errFailedPrecondition, FailedPrecondition)
HIX_DEFINE_ERR(errUnavailable, Unavailable)
HIX_DEFINE_ERR(errUnimplemented, Unimplemented)
HIX_DEFINE_ERR(errInternal, Internal)

#undef HIX_DEFINE_ERR

}  // namespace hix
