/**
 * @file
 * Little/big-endian loads and stores, hex encoding, and XOR helpers
 * used by the crypto and PCIe packet code.
 */

#ifndef HIX_COMMON_BYTE_UTILS_H_
#define HIX_COMMON_BYTE_UTILS_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/types.h"

namespace hix
{

inline std::uint32_t
loadLE32(const std::uint8_t *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

inline std::uint64_t
loadLE64(const std::uint8_t *p)
{
    return std::uint64_t(loadLE32(p)) |
           (std::uint64_t(loadLE32(p + 4)) << 32);
}

inline void
storeLE32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = std::uint8_t(v);
    p[1] = std::uint8_t(v >> 8);
    p[2] = std::uint8_t(v >> 16);
    p[3] = std::uint8_t(v >> 24);
}

inline void
storeLE64(std::uint8_t *p, std::uint64_t v)
{
    storeLE32(p, std::uint32_t(v));
    storeLE32(p + 4, std::uint32_t(v >> 32));
}

inline std::uint32_t
loadBE32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

inline std::uint64_t
loadBE64(const std::uint8_t *p)
{
    return (std::uint64_t(loadBE32(p)) << 32) |
           std::uint64_t(loadBE32(p + 4));
}

inline void
storeBE32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = std::uint8_t(v >> 24);
    p[1] = std::uint8_t(v >> 16);
    p[2] = std::uint8_t(v >> 8);
    p[3] = std::uint8_t(v);
}

inline void
storeBE64(std::uint8_t *p, std::uint64_t v)
{
    storeBE32(p, std::uint32_t(v >> 32));
    storeBE32(p + 4, std::uint32_t(v));
}

/** dst ^= src over n bytes. */
inline void
xorBytes(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= src[i];
}

/** Lowercase hex string of a byte buffer. */
std::string toHex(const std::uint8_t *data, std::size_t n);
std::string toHex(const Bytes &data);

/** Parse a hex string (even length, [0-9a-fA-F]) into bytes. */
Bytes fromHex(const std::string &hex);

/**
 * Constant-time byte comparison; returns true when equal. Used for
 * MAC verification so that mismatch position does not leak via timing
 * (the modelled software stack mirrors the real implementation).
 */
bool constantTimeEqual(const std::uint8_t *a, const std::uint8_t *b,
                       std::size_t n);

}  // namespace hix

#endif  // HIX_COMMON_BYTE_UTILS_H_
