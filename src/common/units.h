/**
 * @file
 * Size and time unit helpers. Simulated time is measured in ticks of
 * one nanosecond, matching the resolution the timing model needs for
 * PCIe transactions and crypto pipelines.
 */

#ifndef HIX_COMMON_UNITS_H_
#define HIX_COMMON_UNITS_H_

#include <cstdint>

#include "common/types.h"

namespace hix
{

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/** One nanosecond, in ticks. */
inline constexpr Tick NS = 1;
/** One microsecond, in ticks. */
inline constexpr Tick US = 1000 * NS;
/** One millisecond, in ticks. */
inline constexpr Tick MS = 1000 * US;
/** One second, in ticks. */
inline constexpr Tick SEC = 1000 * MS;

/**
 * Time (in ticks) to move @p bytes through a link sustaining
 * @p bytes_per_sec. Rounds up so that nonzero work always costs at
 * least one tick.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, std::uint64_t bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec == 0)
        return 0;
    // ticks = bytes / (bytes_per_sec / SEC) = bytes * SEC / bytes_per_sec
    const auto num = static_cast<unsigned __int128>(bytes) * SEC;
    auto t = static_cast<Tick>(num / bytes_per_sec);
    return t == 0 ? 1 : t;
}

/** Convert ticks to fractional milliseconds (for reports). */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(MS);
}

/** Convert ticks to fractional seconds (for reports). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(SEC);
}

}  // namespace hix

#endif  // HIX_COMMON_UNITS_H_
