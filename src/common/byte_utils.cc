#include "common/byte_utils.h"

#include "common/logging.h"

namespace hix
{

namespace
{

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

}  // namespace

std::string
toHex(const std::uint8_t *data, std::size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

std::string
toHex(const Bytes &data)
{
    return toHex(data.data(), data.size());
}

Bytes
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        hix_panic("fromHex: odd-length hex string");
    Bytes out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        int hi = hexNibble(hex[2 * i]);
        int lo = hexNibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            hix_panic("fromHex: invalid hex character");
        out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    return out;
}

bool
constantTimeEqual(const std::uint8_t *a, const std::uint8_t *b,
                  std::size_t n)
{
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < n; ++i)
        diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

}  // namespace hix
