/**
 * @file
 * Logging and fatal-error helpers, in the spirit of gem5's
 * base/logging.hh: panic() for internal model bugs, fatal() for user
 * configuration errors, warn()/inform() for status messages.
 */

#ifndef HIX_COMMON_LOGGING_H_
#define HIX_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hix
{

/** Verbosity levels for the global logger. */
enum class LogLevel
{
    Quiet = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Process-global log verbosity; defaults to Warn. */
LogLevel logLevel();

/** Set the process-global log verbosity. */
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

}  // namespace detail

/** Abort: something happened that indicates a bug in the model. */
#define hix_panic(...) \
    ::hix::detail::panicImpl(__FILE__, __LINE__, \
                             ::hix::detail::format(__VA_ARGS__))

/** Exit: the simulation cannot continue due to a user/config error. */
#define hix_fatal(...) \
    ::hix::detail::fatalImpl(__FILE__, __LINE__, \
                             ::hix::detail::format(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define hix_warn(...) \
    ::hix::detail::logImpl(::hix::LogLevel::Warn, \
                           ::hix::detail::format(__VA_ARGS__))

/** Informational status message. */
#define hix_inform(...) \
    ::hix::detail::logImpl(::hix::LogLevel::Inform, \
                           ::hix::detail::format(__VA_ARGS__))

/** High-volume debug message. */
#define hix_debug(...) \
    ::hix::detail::logImpl(::hix::LogLevel::Debug, \
                           ::hix::detail::format(__VA_ARGS__))

}  // namespace hix

#endif  // HIX_COMMON_LOGGING_H_
