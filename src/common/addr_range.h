/**
 * @file
 * Half-open physical/virtual address range [start, end).
 */

#ifndef HIX_COMMON_ADDR_RANGE_H_
#define HIX_COMMON_ADDR_RANGE_H_

#include <algorithm>
#include <string>

#include "common/types.h"

namespace hix
{

/**
 * A half-open address range [start, end). Used for MMIO windows, BAR
 * apertures, EPC regions, and DMA buffers.
 */
class AddrRange
{
  public:
    /** An empty range at address zero. */
    AddrRange() : start_(0), end_(0) {}

    /** Range [start, start + size). */
    AddrRange(Addr start, std::uint64_t size)
        : start_(start), end_(start + size)
    {}

    static AddrRange
    fromStartEnd(Addr start, Addr end)
    {
        AddrRange r;
        r.start_ = start;
        r.end_ = std::max(start, end);
        return r;
    }

    Addr start() const { return start_; }
    /** One past the last byte. */
    Addr end() const { return end_; }
    std::uint64_t size() const { return end_ - start_; }
    bool empty() const { return end_ == start_; }

    bool
    contains(Addr a) const
    {
        return a >= start_ && a < end_;
    }

    /** True when the whole of @p other lies inside this range. */
    bool
    containsRange(const AddrRange &other) const
    {
        return !other.empty() && other.start_ >= start_ &&
               other.end_ <= end_;
    }

    bool
    overlaps(const AddrRange &other) const
    {
        return start_ < other.end_ && other.start_ < end_;
    }

    /** Byte offset of @p a from the start; caller ensures contains(). */
    std::uint64_t
    offsetOf(Addr a) const
    {
        return a - start_;
    }

    std::string toString() const;

    friend bool
    operator==(const AddrRange &a, const AddrRange &b)
    {
        return a.start_ == b.start_ && a.end_ == b.end_;
    }

  private:
    Addr start_;
    Addr end_;
};

}  // namespace hix

#endif  // HIX_COMMON_ADDR_RANGE_H_
