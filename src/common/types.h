/**
 * @file
 * Fundamental scalar types shared by every HIX module.
 */

#ifndef HIX_COMMON_TYPES_H_
#define HIX_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hix
{

/** Physical or virtual address in the modelled machine. */
using Addr = std::uint64_t;

/** Simulated time, in ticks. One tick is one nanosecond. */
using Tick = std::uint64_t;

/** The largest representable tick; used as "never". */
inline constexpr Tick MaxTick = ~Tick(0);

/** Raw byte storage used throughout the data path. */
using Bytes = std::vector<std::uint8_t>;

/** Identifier of a modelled process (OS-level). */
using ProcessId = std::uint32_t;

/** Identifier of an SGX enclave instance. */
using EnclaveId = std::uint64_t;

/** Invalid/unassigned enclave id. */
inline constexpr EnclaveId InvalidEnclaveId = 0;

/** Identifier of a GPU hardware context (channel group). */
using GpuContextId = std::uint32_t;

}  // namespace hix

#endif  // HIX_COMMON_TYPES_H_
