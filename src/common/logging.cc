#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace hix
{

namespace
{
std::atomic<LogLevel> global_level{LogLevel::Warn};
}  // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    if (level > logLevel())
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn";
        break;
      case LogLevel::Inform:
        tag = "info";
        break;
      case LogLevel::Debug:
        tag = "debug";
        break;
      default:
        tag = "log";
        break;
    }
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

}  // namespace detail
}  // namespace hix
