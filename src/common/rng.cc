#include "common/rng.h"

namespace hix
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // Avoid the all-zero state, which xoshiro cannot leave.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

void
Rng::fill(std::uint8_t *out, std::size_t n)
{
    std::size_t i = 0;
    while (i + 8 <= n) {
        std::uint64_t r = next64();
        for (int b = 0; b < 8; ++b)
            out[i++] = static_cast<std::uint8_t>(r >> (8 * b));
    }
    if (i < n) {
        std::uint64_t r = next64();
        while (i < n) {
            out[i++] = static_cast<std::uint8_t>(r);
            r >>= 8;
        }
    }
}

Bytes
Rng::bytes(std::size_t n)
{
    Bytes out(n);
    fill(out.data(), n);
    return out;
}

}  // namespace hix
