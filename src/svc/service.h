/**
 * @file
 * GPU-pool service runtime: admission, placement, and dispatch of an
 * open-loop session stream over the machine's multi-GPU pool.
 *
 * The service is split into a pure planning stage and an execution
 * stage. planService() turns a seeded arrival process plus per-app
 * demand estimates into a placement plan — admission FIFO against a
 * bounded session table, then one of three pluggable placement
 * policies binds each admitted session to a device. runService()
 * probes the demand estimates with solo runs, plans, and hands the
 * placed sessions to workloads::runSessionPool() for recording and
 * scheduling, then reduces the schedule to p50/p95/p99 session
 * latency and per-device utilization. Everything is deterministic:
 * same ServiceConfig (seed included) => same plan, same digest, same
 * percentiles, at any host thread count.
 */

#ifndef HIX_SVC_SERVICE_H_
#define HIX_SVC_SERVICE_H_

#include <string>
#include <vector>

#include "workloads/runner.h"

namespace hix::svc
{

/** How admitted sessions are bound to pool devices. */
enum class Policy
{
    /** Device = session index mod pool size. Stateless. */
    RoundRobin,
    /** Least outstanding estimated work at admission; ties go to the
     *  lowest device index. */
    LeastLoaded,
    /** A returning user lands on the device that served it last;
     *  first contact places least-loaded. */
    Affinity,
};

const char *policyName(Policy policy);

/** One service run: the arrival process and the pool it feeds. */
struct ServiceConfig
{
    /** GPUs in the pool (machine.gpuCount is overridden to this). */
    int devices = 1;
    Policy policy = Policy::RoundRobin;
    /** true = one HIX GPU enclave per device; false = one baseline
     *  MPS context pool per device. */
    bool useHix = true;
    /** Seeds arrivals, app draws, and user draws. */
    std::uint64_t seed = 1;
    /** Sessions in the arrival stream. */
    int sessions = 1;
    /**
     * Mean inter-arrival gap of the open-loop arrival process
     * (uniform on [1, 2*mean] ticks). 0 = closed batch: every
     * session arrives at tick 0 and records no admission wait op, so
     * a 1-device closed batch is bit-identical to runWorkload().
     */
    Tick meanInterarrivalTicks = 0;
    /**
     * Bounded session table: at most this many sessions admitted at
     * once; arrivals beyond it queue FIFO until an estimated
     * completion frees a slot. 0 = unbounded.
     */
    int tableCap = 0;
    /** Rodinia app mix; each session draws uniformly from it. */
    std::vector<std::string> appMix = {"NN"};
    /**
     * Distinct users issuing the sessions (drawn uniformly). 0 gives
     * every session its own user — affinity then degenerates to
     * least-loaded.
     */
    int userPopulation = 0;
    /** Runner knobs (factory, users, useHix, gpuCount overridden). */
    workloads::RunConfig run;
};

/** Where one session of the stream ended up. */
struct SessionPlan
{
    int user = 0;
    int appIndex = 0;  //!< index into ServiceConfig::appMix
    Tick arrival = 0;
    Tick admit = 0;  //!< >= arrival; admission-queue wait when bounded
    int device = 0;
};

/** planService() output: the placement plus queueing statistics. */
struct ServicePlan
{
    std::vector<SessionPlan> sessions;
    std::vector<int> perDeviceSessions;
    /** Max simultaneous sessions waiting on each device's dispatch
     *  queue (admitted but before their estimated service start). */
    std::vector<int> queueDepthMax;
    /** Max simultaneous arrivals waiting for a session-table slot. */
    int admitQueueDepthMax = 0;
};

/**
 * Pure planning stage: no machine, no recording — a queueing model
 * over @p demandTicks (estimated solo run time per appMix entry,
 * same length as appMix). Deterministic in the config alone, so the
 * policy property suite can drive it with synthetic demands.
 */
Result<ServicePlan> planService(const ServiceConfig &config,
                                const std::vector<Tick> &demandTicks);

/** runService() result. */
struct ServiceOutcome
{
    ServicePlan plan;
    workloads::PoolOutcome pool;
    /** Per-session finish - arrival, in session order. */
    std::vector<Tick> latency;
    Tick p50 = 0;
    Tick p95 = 0;
    Tick p99 = 0;
    /** Per-device GPU compute utilization: busy fraction of the
     *  device's compute queues over the schedule makespan. */
    std::vector<double> deviceUtil;
    /**
     * Per-DMA-channel utilization, one entry per (device, channel) in
     * device-blocked order: entry d * gpuDmaChannels + c is channel c
     * of device d's busy fraction over the makespan. With
     * gpuDmaChannels == 1 this is the per-device copy-engine
     * utilization.
     */
    std::vector<double> dmaHtoDUtil;
    std::vector<double> dmaDtoHUtil;
    /** Probed solo demand per appMix entry. */
    std::vector<Tick> demandTicks;
};

/**
 * Execute the full service: probe per-app demands with solo runs,
 * plan admission + placement, record and schedule the placed pool,
 * and reduce to latency percentiles and per-device utilization.
 */
Result<ServiceOutcome> runService(const ServiceConfig &config);

/** Nearest-rank percentile of an unsorted sample (pct in 1..100). */
Tick percentileTick(std::vector<Tick> sample, int pct);

/**
 * Per-device GPU compute busy fraction of @p schedule: device d's
 * compute-queue busy ticks over queues * makespan. All per-device GPU
 * engine banks are device-blocked by index: queue q of device d is
 * GpuCompute index d * gpuConcurrentContexts + q, DMA channel c of
 * device d is DmaHtoD/DmaDtoH index d * gpuDmaChannels + c, and
 * enclave lane l of device d is GpuEnclaveCpu index
 * d * gpuEnclaveLanes + l (see driver::engineResource /
 * sim::deviceBlockedResourceIndex).
 */
std::vector<double> deviceUtilization(
    const sim::ScheduleResult &schedule,
    const os::MachineConfig &machine, int devices);

/**
 * Per-channel busy fraction of one DMA copy direction (@p unit must
 * be DmaHtoD or DmaDtoH): a vector of devices * gpuDmaChannels
 * entries in device-blocked order, each a channel's busy ticks over
 * the makespan.
 */
std::vector<double> dmaChannelUtilization(
    const sim::ScheduleResult &schedule,
    const os::MachineConfig &machine, int devices, sim::ResUnit unit);

}  // namespace hix::svc

#endif  // HIX_SVC_SERVICE_H_
