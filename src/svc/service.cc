#include "svc/service.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>

#include "common/rng.h"
#include "workloads/workload.h"

namespace hix::svc
{

namespace
{

/** Max simultaneous waiters given (enter, leave) intervals; a leave
 * at tick t frees its slot before an enter at t occupies one. */
int
maxOverlap(std::vector<std::pair<Tick, int>> events)
{
    std::sort(events.begin(), events.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first < b.first
                                            : a.second < b.second;
              });
    int depth = 0;
    int peak = 0;
    for (const auto &[tick, delta] : events) {
        depth += delta;
        peak = std::max(peak, depth);
    }
    return peak;
}

}  // namespace

const char *
policyName(Policy policy)
{
    switch (policy) {
    case Policy::RoundRobin:
        return "round_robin";
    case Policy::LeastLoaded:
        return "least_loaded";
    case Policy::Affinity:
        return "affinity";
    }
    return "unknown";
}

Result<ServicePlan>
planService(const ServiceConfig &config,
            const std::vector<Tick> &demandTicks)
{
    ServicePlan plan;
    if (config.sessions <= 0)
        return plan;  // zero-session stream: empty plan, any pool
    if (config.devices <= 0)
        return errInvalidArgument("pool has no devices");
    if (config.appMix.empty())
        return errInvalidArgument("empty app mix");
    if (demandTicks.size() != config.appMix.size())
        return errInvalidArgument(
            "demand estimates do not match the app mix");

    const int n = config.sessions;
    const int devices = config.devices;
    Rng rng(config.seed);

    // Arrival process: open loop, uniform gaps on [1, 2*mean]; a
    // closed batch (mean 0) arrives all at tick 0. App and user are
    // drawn per session from the same stream, so the plan is a pure
    // function of the seed.
    plan.sessions.resize(n);
    Tick clock = 0;
    for (int i = 0; i < n; ++i) {
        SessionPlan &s = plan.sessions[i];
        if (config.meanInterarrivalTicks > 0) {
            clock += 1 + rng.nextBelow(2 * config.meanInterarrivalTicks);
            s.arrival = clock;
        }
        s.appIndex =
            static_cast<int>(rng.nextBelow(config.appMix.size()));
        s.user = config.userPopulation > 0
                     ? static_cast<int>(
                           rng.nextBelow(config.userPopulation))
                     : i;
    }

    // Admission FIFO against the bounded session table, then
    // placement. The queueing model estimates each device's backlog
    // with freeAt[d]: sessions on a device serve in admission order,
    // so session start = max(admit, freeAt) and completion = start +
    // demand. The estimates feed table-slot recycling (bounded
    // table), the least-loaded metric, and the dispatch-queue depth
    // statistic; the real schedule is computed later by the timing
    // engine from the recorded trace.
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        active;  // estimated completions of admitted sessions
    std::vector<Tick> freeAt(devices, 0);
    std::unordered_map<int, int> userDevice;  // affinity memory
    std::vector<std::pair<Tick, int>> admitWait;
    std::vector<std::vector<std::pair<Tick, int>>> dispatchWait(
        devices);
    plan.perDeviceSessions.assign(devices, 0);

    auto leastLoaded = [&](Tick admit) {
        int best = 0;
        Tick bestBacklog = 0;
        for (int d = 0; d < devices; ++d) {
            const Tick backlog =
                freeAt[d] > admit ? freeAt[d] - admit : 0;
            if (d == 0 || backlog < bestBacklog) {
                best = d;
                bestBacklog = backlog;
            }
        }
        return best;
    };

    for (int i = 0; i < n; ++i) {
        SessionPlan &s = plan.sessions[i];
        s.admit = s.arrival;
        if (config.tableCap > 0) {
            while (!active.empty() && active.top() <= s.arrival)
                active.pop();
            while (static_cast<int>(active.size()) >=
                   config.tableCap) {
                s.admit = std::max(s.admit, active.top());
                active.pop();
            }
        }
        switch (config.policy) {
        case Policy::RoundRobin:
            s.device = i % devices;
            break;
        case Policy::LeastLoaded:
            s.device = leastLoaded(s.admit);
            break;
        case Policy::Affinity: {
            auto it = userDevice.find(s.user);
            s.device = it != userDevice.end()
                           ? it->second
                           : leastLoaded(s.admit);
            userDevice.emplace(s.user, s.device);
            break;
        }
        }
        const Tick demand = demandTicks[s.appIndex];
        const Tick start = std::max(s.admit, freeAt[s.device]);
        freeAt[s.device] = start + demand;
        if (config.tableCap > 0)
            active.push(freeAt[s.device]);
        plan.perDeviceSessions[s.device]++;
        if (s.admit > s.arrival) {
            admitWait.emplace_back(s.arrival, +1);
            admitWait.emplace_back(s.admit, -1);
        }
        dispatchWait[s.device].emplace_back(s.admit, +1);
        dispatchWait[s.device].emplace_back(start, -1);
    }

    plan.admitQueueDepthMax = maxOverlap(std::move(admitWait));
    plan.queueDepthMax.resize(devices);
    for (int d = 0; d < devices; ++d)
        plan.queueDepthMax[d] =
            maxOverlap(std::move(dispatchWait[d]));
    return plan;
}

Tick
percentileTick(std::vector<Tick> sample, int pct)
{
    if (sample.empty())
        return 0;
    std::sort(sample.begin(), sample.end());
    const std::size_t rank =
        (sample.size() * static_cast<std::size_t>(pct) + 99) / 100;
    return sample[rank == 0 ? 0 : rank - 1];
}

std::vector<double>
deviceUtilization(const sim::ScheduleResult &schedule,
                  const os::MachineConfig &machine, int devices)
{
    const std::uint32_t queues = std::max<std::uint32_t>(
        1, machine.timing.gpuConcurrentContexts);
    std::vector<double> util(std::max(devices, 0), 0.0);
    if (schedule.makespan == 0)
        return util;
    for (const auto &[res, usage] : schedule.usage) {
        if (res.unit != sim::ResUnit::GpuCompute)
            continue;
        const int device = static_cast<int>(res.index / queues);
        if (device < devices)
            util[device] += static_cast<double>(usage.busy);
    }
    for (double &u : util)
        u /= static_cast<double>(queues) *
             static_cast<double>(schedule.makespan);
    return util;
}

std::vector<double>
dmaChannelUtilization(const sim::ScheduleResult &schedule,
                      const os::MachineConfig &machine, int devices,
                      sim::ResUnit unit)
{
    const std::uint32_t channels = std::max<std::uint32_t>(
        1, machine.timing.gpuDmaChannels);
    std::vector<double> util(
        static_cast<std::size_t>(std::max(devices, 0)) * channels,
        0.0);
    if (schedule.makespan == 0)
        return util;
    for (const auto &[res, usage] : schedule.usage) {
        if (res.unit != unit)
            continue;
        if (res.index < util.size())
            util[res.index] += static_cast<double>(usage.busy) /
                               static_cast<double>(schedule.makespan);
    }
    return util;
}

Result<ServiceOutcome>
runService(const ServiceConfig &config)
{
    if (config.sessions <= 0)
        return errInvalidArgument("no sessions to serve");
    if (config.devices <= 0)
        return errInvalidArgument("pool has no devices");
    for (const auto &app : config.appMix)
        if (!workloads::makeRodinia(app))
            return errInvalidArgument("unknown app in mix: " + app);

    ServiceOutcome out;

    // Demand probe: one solo run per app in the mix, on a 1-GPU
    // machine with the stream's runtime. The estimate only steers
    // admission and placement; the pool's actual timing comes from
    // the recorded trace.
    out.demandTicks.reserve(config.appMix.size());
    for (const auto &app : config.appMix) {
        workloads::RunConfig probe = config.run;
        probe.factory = [app] { return workloads::makeRodinia(app); };
        probe.users = 1;
        probe.useHix = config.useHix;
        probe.machine.gpuCount = 1;
        probe.forkSessions = false;
        probe.streaming = false;
        probe.keepTrace = false;
        probe.traceJsonPath.clear();
        auto solo = workloads::runWorkload(probe);
        if (!solo.isOk())
            return solo.status();
        out.demandTicks.push_back(solo->ticks);
    }

    auto plan = planService(config, out.demandTicks);
    if (!plan.isOk())
        return plan.status();
    out.plan = std::move(*plan);

    std::vector<workloads::PoolSession> sessions;
    sessions.reserve(out.plan.sessions.size());
    for (const SessionPlan &s : out.plan.sessions) {
        workloads::PoolSession ps;
        ps.device = s.device;
        ps.admitTick = s.admit;
        ps.appId = s.appIndex;
        const std::string app = config.appMix[s.appIndex];
        ps.factory = [app] { return workloads::makeRodinia(app); };
        sessions.push_back(std::move(ps));
    }

    workloads::RunConfig rc = config.run;
    rc.useHix = config.useHix;
    rc.machine.gpuCount = config.devices;
    rc.factory = [app = config.appMix.front()] {
        return workloads::makeRodinia(app);
    };
    auto pool = workloads::runSessionPool(rc, sessions);
    if (!pool.isOk())
        return pool.status();
    out.pool = std::move(*pool);

    out.latency.reserve(out.plan.sessions.size());
    for (std::size_t i = 0; i < out.plan.sessions.size(); ++i)
        out.latency.push_back(out.pool.sessionFinish[i] -
                              out.plan.sessions[i].arrival);
    out.p50 = percentileTick(out.latency, 50);
    out.p95 = percentileTick(out.latency, 95);
    out.p99 = percentileTick(out.latency, 99);
    out.deviceUtil = deviceUtilization(out.pool.run.schedule,
                                       rc.machine, config.devices);
    out.dmaHtoDUtil =
        dmaChannelUtilization(out.pool.run.schedule, rc.machine,
                              config.devices, sim::ResUnit::DmaHtoD);
    out.dmaDtoHUtil =
        dmaChannelUtilization(out.pool.run.schedule, rc.machine,
                              config.devices, sim::ResUnit::DmaDtoH);
    return out;
}

}  // namespace hix::svc
