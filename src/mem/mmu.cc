#include "mem/mmu.h"

#include <algorithm>

#include "common/logging.h"

namespace hix::mem
{

const TlbEntry *
Tlb::lookup(ProcessId pid, EnclaveId enclave, Addr vpage) const
{
    for (const TlbEntry &e : entries_) {
        if (e.pid == pid && e.enclave == enclave && e.vpage == vpage)
            return &e;
    }
    return nullptr;
}

void
Tlb::insert(const TlbEntry &entry)
{
    if (entries_.size() >= capacity_)
        entries_.pop_front();
    entries_.push_back(entry);
}

void
Tlb::flushAll()
{
    entries_.clear();
}

void
Tlb::flushPid(ProcessId pid)
{
    entries_.remove_if(
        [pid](const TlbEntry &e) { return e.pid == pid; });
}

void
Tlb::flushPage(ProcessId pid, Addr vpage)
{
    entries_.remove_if([pid, vpage](const TlbEntry &e) {
        return e.pid == pid && e.vpage == vpage;
    });
}

Mmu::Mmu(PhysicalBus *bus, std::size_t tlb_capacity)
    : bus_(bus), tlb_(tlb_capacity)
{
}

void
Mmu::setPageTableProvider(PageTableProvider provider)
{
    provider_ = std::move(provider);
}

void
Mmu::addValidator(TlbFillValidator *validator)
{
    validators_.push_back(validator);
}

Result<Addr>
Mmu::translate(const ExecContext &ctx, Addr vaddr, AccessType access)
{
    const Addr vpage = pageBase(vaddr);
    const std::uint8_t need = permFor(access);

    if (const TlbEntry *hit = tlb_.lookup(ctx.pid, ctx.enclave, vpage)) {
        tlb_.countHit();
        if ((hit->perms & need) == 0)
            return errAccessFault("permission denied (TLB)");
        return hit->ppage + pageOffset(vaddr);
    }
    tlb_.countMiss();

    if (!provider_)
        return errInternal("MMU has no page table provider");
    PageTable *pt = provider_(ctx.pid);
    if (!pt)
        return errNotFound("no page table for process");

    auto pte = pt->lookup(vaddr);
    if (!pte.isOk())
        return pte.status();
    if ((pte->perms & need) == 0)
        return errAccessFault("permission denied (PTE)");

    // The hardware walker validates the fill before caching it; this
    // is where EPCM and TGMR enforcement happens.
    for (TlbFillValidator *v : validators_) {
        Status st = v->validateFill(ctx, vpage, pte->paddr, pte->perms);
        if (!st.isOk())
            return st;
    }

    tlb_.insert(TlbEntry{ctx.pid, ctx.enclave, vpage, pte->paddr,
                         pte->perms});
    return pte->paddr + pageOffset(vaddr);
}

Status
Mmu::read(const ExecContext &ctx, Addr vaddr, std::uint8_t *data,
          std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(vaddr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        auto pa = translate(ctx, vaddr, AccessType::Read);
        if (!pa.isOk())
            return pa.status();
        HIX_RETURN_IF_ERROR(bus_->read(*pa, data, take));
        data += take;
        vaddr += take;
        len -= take;
    }
    return Status::ok();
}

Status
Mmu::write(const ExecContext &ctx, Addr vaddr, const std::uint8_t *data,
           std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(vaddr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        auto pa = translate(ctx, vaddr, AccessType::Write);
        if (!pa.isOk())
            return pa.status();
        HIX_RETURN_IF_ERROR(bus_->write(*pa, data, take));
        data += take;
        vaddr += take;
        len -= take;
    }
    return Status::ok();
}

}  // namespace hix::mem
