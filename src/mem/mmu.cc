#include "mem/mmu.h"

#include <algorithm>

#include "common/logging.h"

namespace hix::mem
{

TlbGeometry
TlbGeometry::forCapacity(std::size_t capacity, std::size_t ways_hint)
{
    capacity = std::max<std::size_t>(1, capacity);
    ways_hint = std::min(std::max<std::size_t>(1, ways_hint), capacity);
    const std::size_t target = std::max<std::size_t>(1, capacity / ways_hint);
    std::size_t sets = 1;
    while (sets * 2 <= target)
        sets *= 2;
    return TlbGeometry{sets, capacity / sets};
}

Tlb::Tlb(std::size_t capacity, std::size_t ways_hint)
    : TlbBase(TlbGeometry::forCapacity(capacity, ways_hint)),
      slots_(geom_.slotCount())
{
}

const TlbEntry *
Tlb::lookup(ProcessId pid, EnclaveId enclave, Addr vpage) const
{
    Slot *base = &slots_[geom_.setIndex(pid, vpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        Slot &s = base[w];
        if (s.epoch == epoch_ && s.entry.vpage == vpage &&
            s.entry.pid == pid && s.entry.enclave == enclave) {
            s.stamp = ++tick_;
            return &s.entry;
        }
    }
    return nullptr;
}

void
Tlb::insert(const TlbEntry &entry)
{
    Slot *base = &slots_[geom_.setIndex(entry.pid, entry.vpage) *
                         geom_.ways];
    Slot *free_slot = nullptr;
    Slot *victim = nullptr;
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        Slot &s = base[w];
        if (s.epoch != epoch_) {
            if (!free_slot)
                free_slot = &s;
            continue;
        }
        if (s.entry.vpage == entry.vpage && s.entry.pid == entry.pid &&
            s.entry.enclave == entry.enclave) {
            s.entry = entry;
            s.stamp = ++tick_;
            return;
        }
        if (!victim || s.stamp < victim->stamp)
            victim = &s;
    }
    Slot *dst = free_slot ? free_slot : victim;
    if (free_slot) {
        ++live_;
        dst->epoch = epoch_;
    }
    dst->entry = entry;
    dst->stamp = ++tick_;
}

void
Tlb::flushAll()
{
    ++epoch_;
    live_ = 0;
}

void
Tlb::flushPid(ProcessId pid)
{
    for (Slot &s : slots_) {
        if (s.epoch == epoch_ && s.entry.pid == pid) {
            s.epoch = 0;
            --live_;
        }
    }
}

void
Tlb::flushPage(ProcessId pid, Addr vpage)
{
    // The set index ignores the enclave tag, so every entry the
    // conservative flush must drop lives in this one set.
    Slot *base = &slots_[geom_.setIndex(pid, vpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        Slot &s = base[w];
        if (s.epoch == epoch_ && s.entry.pid == pid &&
            s.entry.vpage == vpage) {
            s.epoch = 0;
            --live_;
        }
    }
}

TlbReference::TlbReference(std::size_t capacity, std::size_t ways_hint)
    : TlbBase(TlbGeometry::forCapacity(capacity, ways_hint))
{
}

const TlbEntry *
TlbReference::lookup(ProcessId pid, EnclaveId enclave, Addr vpage) const
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->pid == pid && it->enclave == enclave &&
            it->vpage == vpage) {
            // Splice to the back: list order is touch recency.
            entries_.splice(entries_.end(), entries_, it);
            return &entries_.back();
        }
    }
    return nullptr;
}

void
TlbReference::insert(const TlbEntry &entry)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->pid == entry.pid && it->enclave == entry.enclave &&
            it->vpage == entry.vpage) {
            entries_.erase(it);
            entries_.push_back(entry);
            return;
        }
    }
    const std::size_t set = geom_.setIndex(entry.pid, entry.vpage);
    std::size_t in_set = 0;
    for (const TlbEntry &e : entries_)
        if (geom_.setIndex(e.pid, e.vpage) == set)
            ++in_set;
    if (in_set >= geom_.ways) {
        // Front-most entry of the set = its least recently touched.
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (geom_.setIndex(it->pid, it->vpage) == set) {
                entries_.erase(it);
                break;
            }
        }
    }
    entries_.push_back(entry);
}

void
TlbReference::flushAll()
{
    entries_.clear();
}

void
TlbReference::flushPid(ProcessId pid)
{
    entries_.remove_if(
        [pid](const TlbEntry &e) { return e.pid == pid; });
}

void
TlbReference::flushPage(ProcessId pid, Addr vpage)
{
    entries_.remove_if([pid, vpage](const TlbEntry &e) {
        return e.pid == pid && e.vpage == vpage;
    });
}

namespace
{

std::unique_ptr<TlbBase>
makeTlb(TlbEngine engine, std::size_t capacity, std::size_t ways)
{
    if (engine == TlbEngine::Reference)
        return std::make_unique<TlbReference>(capacity, ways);
    return std::make_unique<Tlb>(capacity, ways);
}

}  // namespace

Mmu::Mmu(PhysicalBus *bus, std::size_t tlb_capacity, TlbEngine engine,
         std::size_t tlb_ways)
    : bus_(bus),
      engine_(engine),
      tlb_(makeTlb(engine, tlb_capacity, tlb_ways))
{
}

void
Mmu::setPageTableProvider(PageTableProvider provider)
{
    provider_ = std::move(provider);
}

void
Mmu::addValidator(TlbFillValidator *validator)
{
    validators_.push_back(validator);
}

Result<Addr>
Mmu::translate(const ExecContext &ctx, Addr vaddr, AccessType access)
{
    const Addr vpage = pageBase(vaddr);
    const std::uint8_t need = permFor(access);

    if (const TlbEntry *hit = tlb_->lookup(ctx.pid, ctx.enclave, vpage)) {
        tlb_->countHit();
        if ((hit->perms & need) == 0)
            return errAccessFault("permission denied (TLB)");
        return hit->ppage + pageOffset(vaddr);
    }
    tlb_->countMiss();

    if (!provider_)
        return errInternal("MMU has no page table provider");
    PageTable *pt = provider_(ctx.pid);
    if (!pt)
        return errNotFound("no page table for process");

    auto pte = pt->lookup(vaddr);
    if (!pte.isOk())
        return pte.status();
    if ((pte->perms & need) == 0)
        return errAccessFault("permission denied (PTE)");

    // The hardware walker validates the fill before caching it; this
    // is where EPCM and TGMR enforcement happens.
    for (TlbFillValidator *v : validators_) {
        Status st = v->validateFill(ctx, vpage, pte->paddr, pte->perms);
        if (!st.isOk())
            return st;
    }

    tlb_->insert(TlbEntry{ctx.pid, ctx.enclave, vpage, pte->paddr,
                          pte->perms});
    return pte->paddr + pageOffset(vaddr);
}

Status
Mmu::read(const ExecContext &ctx, Addr vaddr, std::uint8_t *data,
          std::size_t len)
{
    if (len == 0)
        return Status::ok();
    auto first = translate(ctx, vaddr, AccessType::Read);
    if (!first.isOk())
        return first.status();
    Addr run_pa = *first;
    std::uint64_t run_len =
        std::min<std::uint64_t>(PageSize - pageOffset(vaddr), len);
    std::uint64_t covered = run_len;
    while (covered < len) {
        auto pa = translate(ctx, vaddr + covered, AccessType::Read);
        if (!pa.isOk()) {
            // Flush the pending run before reporting the fault so the
            // delivered bytes match the per-page reference loop; an
            // earlier bus error outranks the later translate fault.
            Status st = bus_->readPages(run_pa, data, run_len);
            return st.isOk() ? pa.status() : st;
        }
        const std::uint64_t take =
            std::min<std::uint64_t>(PageSize, len - covered);
        if (*pa == run_pa + run_len) {
            run_len += take;
        } else {
            HIX_RETURN_IF_ERROR(bus_->readPages(run_pa, data, run_len));
            data += run_len;
            run_pa = *pa;
            run_len = take;
        }
        covered += take;
    }
    return bus_->readPages(run_pa, data, run_len);
}

Status
Mmu::write(const ExecContext &ctx, Addr vaddr, const std::uint8_t *data,
           std::size_t len)
{
    if (len == 0)
        return Status::ok();
    auto first = translate(ctx, vaddr, AccessType::Write);
    if (!first.isOk())
        return first.status();
    Addr run_pa = *first;
    std::uint64_t run_len =
        std::min<std::uint64_t>(PageSize - pageOffset(vaddr), len);
    std::uint64_t covered = run_len;
    while (covered < len) {
        auto pa = translate(ctx, vaddr + covered, AccessType::Write);
        if (!pa.isOk()) {
            Status st = bus_->writePages(run_pa, data, run_len);
            return st.isOk() ? pa.status() : st;
        }
        const std::uint64_t take =
            std::min<std::uint64_t>(PageSize, len - covered);
        if (*pa == run_pa + run_len) {
            run_len += take;
        } else {
            HIX_RETURN_IF_ERROR(bus_->writePages(run_pa, data, run_len));
            data += run_len;
            run_pa = *pa;
            run_len = take;
        }
        covered += take;
    }
    return bus_->writePages(run_pa, data, run_len);
}

Status
Mmu::readReference(const ExecContext &ctx, Addr vaddr, std::uint8_t *data,
                   std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(vaddr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        auto pa = translate(ctx, vaddr, AccessType::Read);
        if (!pa.isOk())
            return pa.status();
        HIX_RETURN_IF_ERROR(bus_->read(*pa, data, take));
        data += take;
        vaddr += take;
        len -= take;
    }
    return Status::ok();
}

Status
Mmu::writeReference(const ExecContext &ctx, Addr vaddr,
                    const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(vaddr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        auto pa = translate(ctx, vaddr, AccessType::Write);
        if (!pa.isOk())
            return pa.status();
        HIX_RETURN_IF_ERROR(bus_->write(*pa, data, take));
        data += take;
        vaddr += take;
        len -= take;
    }
    return Status::ok();
}

}  // namespace hix::mem
