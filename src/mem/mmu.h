/**
 * @file
 * MMU with TLB and a validating hardware page-table walker.
 *
 * This is HIX's central protection point (Section 4.3.1 of the
 * paper): on a TLB miss the walker fetches the OS-owned PTE, then
 * passes the proposed fill to registered validators *before* the
 * entry may enter the TLB. The SGX model registers a validator that
 * enforces EPCM rules for enclave pages and the four GECS/TGMR checks
 * for GPU MMIO pages. A denied fill is an access fault; the OS can
 * corrupt its page tables freely but can never make the hardware
 * honour a forged mapping.
 *
 * Two TLB engines implement one replacement policy (set-associative,
 * LRU within a set):
 *
 *  - Tlb: open-addressed slot array — O(ways) lookup/insert, O(1)
 *    epoch-based flushAll. The production engine.
 *  - TlbReference: the original linear std::list, kept as the golden
 *    oracle (same pattern as the scalar crypto engine and
 *    scheduleReference). Its global-recency list order restricted to
 *    one set is exactly within-set LRU, so both engines make
 *    bit-identical hit/miss/eviction decisions.
 *
 * Conservative-flush contract: entries are keyed (pid, enclave,
 * vpage), but flushPid/flushPage deliberately ignore the enclave tag
 * and drop every matching (pid[, vpage]) entry regardless of which
 * enclave filled it. Flushing is a pure availability operation —
 * over-flushing can never admit a stale mapping, while under-flushing
 * could — so the shootdown paths (EREMOVE, TGMR/GECS updates,
 * teardown) stay conservative. Pinned by the MemGolden flush-contract
 * tests.
 */

#ifndef HIX_MEM_MMU_H_
#define HIX_MEM_MMU_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/page.h"
#include "mem/page_table.h"
#include "mem/phys_bus.h"

namespace hix::mem
{

/**
 * Who is performing an access: the process, and the enclave it is
 * currently executing in (InvalidEnclaveId when outside any enclave).
 */
struct ExecContext
{
    ProcessId pid = 0;
    EnclaveId enclave = InvalidEnclaveId;
};

/** A cached translation. */
struct TlbEntry
{
    ProcessId pid = 0;
    EnclaveId enclave = InvalidEnclaveId;
    Addr vpage = 0;
    Addr ppage = 0;
    std::uint8_t perms = PermNone;
};

/**
 * Hook consulted by the page-table walker before a TLB fill. All
 * registered validators must accept the fill.
 */
class TlbFillValidator
{
  public:
    virtual ~TlbFillValidator() = default;

    /**
     * Validate a proposed fill: @p ctx performs an access to
     * @p vpage mapping to @p ppage. Return OK to allow.
     */
    virtual Status validateFill(const ExecContext &ctx, Addr vpage,
                                Addr ppage, std::uint8_t perms) = 0;
};

/** Which TLB engine an Mmu (or Iommu) uses. */
enum class TlbEngine
{
    Fast,       ///< Set-associative slot array (production).
    Reference,  ///< Linear list golden oracle.
};

/**
 * Set/way shape shared by both engines. The set index hashes
 * (pid, vpage) only — never the enclave tag — so flushPage(pid,
 * vpage), which ignores the enclave, needs to probe exactly one set.
 */
struct TlbGeometry
{
    std::size_t sets = 1;
    std::size_t ways = 1;

    /** Default associativity when the caller gives only a capacity. */
    static constexpr std::size_t DefaultWays = 4;

    /**
     * Shape for @p capacity entries: sets is the largest power of two
     * not above capacity / ways_hint, ways the quotient. Effective
     * capacity sets * ways rounds down for capacities not divisible
     * by the set count (never below max(1, capacity - sets + 1)).
     */
    static TlbGeometry forCapacity(std::size_t capacity,
                                   std::size_t ways_hint = DefaultWays);

    std::size_t
    setIndex(ProcessId pid, Addr vpage) const
    {
        std::uint64_t h =
            (vpage / PageSize) ^ (static_cast<std::uint64_t>(pid) << 1);
        h *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing constant
        return static_cast<std::size_t>((h >> 40) & (sets - 1));
    }

    std::size_t slotCount() const { return sets * ways; }
};

/**
 * Common TLB interface plus the hit/miss counters, which live here so
 * both engines count identically.
 */
class TlbBase
{
  public:
    explicit TlbBase(TlbGeometry geom) : geom_(geom) {}
    virtual ~TlbBase() = default;

    /**
     * Find an entry for (pid, enclave, vpage). A hit refreshes the
     * entry's LRU recency; the returned pointer is valid until the
     * next mutating call.
     */
    virtual const TlbEntry *lookup(ProcessId pid, EnclaveId enclave,
                                   Addr vpage) const = 0;

    /** Insert an entry, evicting within-set LRU when the set is full. */
    virtual void insert(const TlbEntry &entry) = 0;

    virtual void flushAll() = 0;
    /** Drop every entry of @p pid (enclave tag ignored — see above). */
    virtual void flushPid(ProcessId pid) = 0;
    /** Drop every (pid, vpage) entry (enclave tag ignored). */
    virtual void flushPage(ProcessId pid, Addr vpage) = 0;

    /** Live (valid) entry count. */
    virtual std::size_t size() const = 0;

    /** Deep copy (same engine, entries, recency, and counters) — the
     * machine snapshot/fork path uses this to capture TLB state. */
    virtual std::unique_ptr<TlbBase> clone() const = 0;

    const TlbGeometry &geometry() const { return geom_; }
    std::size_t capacity() const { return geom_.slotCount(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Count a hit/miss (called by the MMU). */
    void countHit() const { ++hits_; }
    void countMiss() const { ++misses_; }

  protected:
    TlbGeometry geom_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

/**
 * Production TLB: open-addressed set-associative slot array. A slot
 * is valid iff its epoch matches the TLB's current epoch, which makes
 * flushAll an O(1) epoch bump. LRU within a set uses a global touch
 * tick stamped on every hit and insert.
 */
class Tlb : public TlbBase
{
  public:
    explicit Tlb(std::size_t capacity,
                 std::size_t ways_hint = TlbGeometry::DefaultWays);

    const TlbEntry *lookup(ProcessId pid, EnclaveId enclave,
                           Addr vpage) const override;
    void insert(const TlbEntry &entry) override;
    void flushAll() override;
    void flushPid(ProcessId pid) override;
    void flushPage(ProcessId pid, Addr vpage) override;
    std::size_t size() const override { return live_; }
    std::unique_ptr<TlbBase> clone() const override
    {
        return std::make_unique<Tlb>(*this);
    }

    /** Current flush epoch (for tests). */
    std::uint64_t epoch() const { return epoch_; }

  private:
    struct Slot
    {
        TlbEntry entry;
        std::uint64_t epoch = 0;  // 0 = never filled; stale = flushed
        std::uint64_t stamp = 0;  // LRU recency
    };

    // lookup() is logically const but refreshes LRU recency.
    mutable std::vector<Slot> slots_;
    mutable std::uint64_t tick_ = 0;
    std::uint64_t epoch_ = 1;
    std::size_t live_ = 0;
};

/**
 * Golden-oracle TLB: linear list in global touch-recency order (back
 * = most recent). Restricted to one set, that order is within-set
 * recency, so evicting the front-most entry of a full set picks the
 * same victim as the fast engine's min-stamp slot.
 */
class TlbReference : public TlbBase
{
  public:
    explicit TlbReference(
        std::size_t capacity,
        std::size_t ways_hint = TlbGeometry::DefaultWays);

    const TlbEntry *lookup(ProcessId pid, EnclaveId enclave,
                           Addr vpage) const override;
    void insert(const TlbEntry &entry) override;
    void flushAll() override;
    void flushPid(ProcessId pid) override;
    void flushPage(ProcessId pid, Addr vpage) override;
    std::size_t size() const override { return entries_.size(); }
    std::unique_ptr<TlbBase> clone() const override
    {
        return std::make_unique<TlbReference>(*this);
    }

  private:
    // lookup() splices a hit to the back (recency refresh).
    mutable std::list<TlbEntry> entries_;
};

/**
 * The CPU MMU: translates virtual accesses, walking the current
 * process's page table on TLB misses and enforcing validator checks
 * on every fill. Also provides virtual-address read/write helpers
 * that route the resulting physical access over the bus.
 *
 * read/write walk once per page, coalesce physically contiguous page
 * runs, and route each run over the bus once (readPages/writePages).
 * readReference/writeReference keep the original translate-then-route
 * per-page loop as the differential oracle. Both deliver identical
 * bytes and Status codes; the only permitted divergence is that when
 * a bulk call fails at the *bus* layer, the fast path may already
 * have translated (and counted) pages beyond the faulting one inside
 * that same call — translate-level faults (no PTE, permissions,
 * validator denial) are counted identically.
 */
class Mmu
{
  public:
    /** Provider of the (OS-owned) page table for a process. */
    using PageTableProvider = std::function<PageTable *(ProcessId)>;

    Mmu(PhysicalBus *bus, std::size_t tlb_capacity = 64,
        TlbEngine engine = TlbEngine::Fast,
        std::size_t tlb_ways = TlbGeometry::DefaultWays);

    void setPageTableProvider(PageTableProvider provider);

    /** Register a fill validator; all must pass. */
    void addValidator(TlbFillValidator *validator);

    /**
     * Translate @p vaddr for @p ctx. Returns the physical address or
     * an AccessFault/NotFound status.
     */
    Result<Addr> translate(const ExecContext &ctx, Addr vaddr,
                           AccessType access);

    /** Virtual-address read: single walk per page, coalesced runs. */
    Status read(const ExecContext &ctx, Addr vaddr, std::uint8_t *data,
                std::size_t len);

    /** Virtual-address write counterpart of read(). */
    Status write(const ExecContext &ctx, Addr vaddr,
                 const std::uint8_t *data, std::size_t len);

    /** Original per-page read loop — the differential oracle. */
    Status readReference(const ExecContext &ctx, Addr vaddr,
                         std::uint8_t *data, std::size_t len);

    /** Original per-page write loop — the differential oracle. */
    Status writeReference(const ExecContext &ctx, Addr vaddr,
                          const std::uint8_t *data, std::size_t len);

    /** TLB shootdown helpers (see the conservative-flush contract). */
    void flushTlbAll() { tlb_->flushAll(); }
    void flushTlbPid(ProcessId pid) { tlb_->flushPid(pid); }
    void flushTlbPage(ProcessId pid, Addr vpage)
    {
        tlb_->flushPage(pid, vpage);
    }

    std::uint64_t tlbHits() const { return tlb_->hits(); }
    std::uint64_t tlbMisses() const { return tlb_->misses(); }

    TlbBase &tlb() { return *tlb_; }
    const TlbBase &tlb() const { return *tlb_; }

    /** Replace the TLB wholesale (machine fork restores a cloned
     * TLB so a forked machine's translation cache matches the
     * template's exactly). */
    void adoptTlb(std::unique_ptr<TlbBase> tlb) { tlb_ = std::move(tlb); }
    TlbEngine engine() const { return engine_; }
    PhysicalBus *bus() { return bus_; }

  private:
    PhysicalBus *bus_;
    TlbEngine engine_;
    std::unique_ptr<TlbBase> tlb_;
    PageTableProvider provider_;
    std::vector<TlbFillValidator *> validators_;
};

}  // namespace hix::mem

#endif  // HIX_MEM_MMU_H_
