/**
 * @file
 * MMU with TLB and a validating hardware page-table walker.
 *
 * This is HIX's central protection point (Section 4.3.1 of the
 * paper): on a TLB miss the walker fetches the OS-owned PTE, then
 * passes the proposed fill to registered validators *before* the
 * entry may enter the TLB. The SGX model registers a validator that
 * enforces EPCM rules for enclave pages and the four GECS/TGMR checks
 * for GPU MMIO pages. A denied fill is an access fault; the OS can
 * corrupt its page tables freely but can never make the hardware
 * honour a forged mapping.
 */

#ifndef HIX_MEM_MMU_H_
#define HIX_MEM_MMU_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/page_table.h"
#include "mem/phys_bus.h"

namespace hix::mem
{

/**
 * Who is performing an access: the process, and the enclave it is
 * currently executing in (InvalidEnclaveId when outside any enclave).
 */
struct ExecContext
{
    ProcessId pid = 0;
    EnclaveId enclave = InvalidEnclaveId;
};

/** A cached translation. */
struct TlbEntry
{
    ProcessId pid = 0;
    EnclaveId enclave = InvalidEnclaveId;
    Addr vpage = 0;
    Addr ppage = 0;
    std::uint8_t perms = PermNone;
};

/**
 * Hook consulted by the page-table walker before a TLB fill. All
 * registered validators must accept the fill.
 */
class TlbFillValidator
{
  public:
    virtual ~TlbFillValidator() = default;

    /**
     * Validate a proposed fill: @p ctx performs an access to
     * @p vpage mapping to @p ppage. Return OK to allow.
     */
    virtual Status validateFill(const ExecContext &ctx, Addr vpage,
                                Addr ppage, std::uint8_t perms) = 0;
};

/** Fully associative TLB with FIFO replacement. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity) : capacity_(capacity) {}

    /** Find an entry for (pid, enclave, vpage). */
    const TlbEntry *lookup(ProcessId pid, EnclaveId enclave,
                           Addr vpage) const;

    /** Insert an entry, evicting the oldest when full. */
    void insert(const TlbEntry &entry);

    void flushAll();
    void flushPid(ProcessId pid);
    void flushPage(ProcessId pid, Addr vpage);

    std::size_t size() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Count a hit/miss (called by the MMU). */
    void countHit() { ++hits_; }
    void countMiss() { ++misses_; }

  private:
    std::size_t capacity_;
    std::list<TlbEntry> entries_;  // front = oldest
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * The CPU MMU: translates virtual accesses, walking the current
 * process's page table on TLB misses and enforcing validator checks
 * on every fill. Also provides virtual-address read/write helpers
 * that route the resulting physical access over the bus.
 */
class Mmu
{
  public:
    /** Provider of the (OS-owned) page table for a process. */
    using PageTableProvider = std::function<PageTable *(ProcessId)>;

    Mmu(PhysicalBus *bus, std::size_t tlb_capacity = 64);

    void setPageTableProvider(PageTableProvider provider);

    /** Register a fill validator; all must pass. */
    void addValidator(TlbFillValidator *validator);

    /**
     * Translate @p vaddr for @p ctx. Returns the physical address or
     * an AccessFault/NotFound status.
     */
    Result<Addr> translate(const ExecContext &ctx, Addr vaddr,
                           AccessType access);

    /** Virtual-address read through translation and the bus. */
    Status read(const ExecContext &ctx, Addr vaddr, std::uint8_t *data,
                std::size_t len);

    /** Virtual-address write through translation and the bus. */
    Status write(const ExecContext &ctx, Addr vaddr,
                 const std::uint8_t *data, std::size_t len);

    Tlb &tlb() { return tlb_; }
    PhysicalBus *bus() { return bus_; }

  private:
    PhysicalBus *bus_;
    Tlb tlb_;
    PageTableProvider provider_;
    std::vector<TlbFillValidator *> validators_;
};

}  // namespace hix::mem

#endif  // HIX_MEM_MMU_H_
