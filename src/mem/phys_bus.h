/**
 * @file
 * Physical address space routing.
 *
 * The modelled machine has one flat physical address map (Figure 2 of
 * the paper): DRAM plus one or more MMIO windows claimed by PCIe
 * devices. BusTargets register their ranges with the PhysicalBus,
 * which routes physical reads/writes by address — the hardware role
 * split between the CPU's system agent and the PCIe root complex.
 */

#ifndef HIX_MEM_PHYS_BUS_H_
#define HIX_MEM_PHYS_BUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/addr_range.h"
#include "common/status.h"
#include "common/types.h"

namespace hix::mem
{

/** Anything that claims a physical address range. */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Name for diagnostics. */
    virtual std::string targetName() const = 0;

    /** Read @p len bytes at @p offset within the claimed range. */
    virtual Status readAt(std::uint64_t offset, std::uint8_t *data,
                          std::size_t len) = 0;

    /** Write @p len bytes at @p offset within the claimed range. */
    virtual Status writeAt(std::uint64_t offset,
                           const std::uint8_t *data, std::size_t len) = 0;
};

/**
 * Routes physical accesses to the registered target whose range
 * contains the address. Accesses must not straddle targets.
 */
class PhysicalBus
{
  public:
    /** Claim @p range for @p target; ranges must not overlap. */
    Status attach(const AddrRange &range, BusTarget *target);

    /** Release a previously claimed range. */
    Status detach(const AddrRange &range);

    /** Route a physical read. */
    Status read(Addr addr, std::uint8_t *data, std::size_t len);

    /** Route a physical write. */
    Status write(Addr addr, const std::uint8_t *data, std::size_t len);

    /** The target claiming @p addr, or nullptr. */
    BusTarget *targetAt(Addr addr) const;

    /** The range claimed by the target covering @p addr. */
    Result<AddrRange> rangeAt(Addr addr) const;

  private:
    struct Mapping
    {
        AddrRange range;
        BusTarget *target;
    };

    const Mapping *findMapping(Addr addr) const;

    std::vector<Mapping> mappings_;
};

}  // namespace hix::mem

#endif  // HIX_MEM_PHYS_BUS_H_
