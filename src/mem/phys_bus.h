/**
 * @file
 * Physical address space routing.
 *
 * The modelled machine has one flat physical address map (Figure 2 of
 * the paper): DRAM plus one or more MMIO windows claimed by PCIe
 * devices. BusTargets register their ranges with the PhysicalBus,
 * which routes physical reads/writes by address — the hardware role
 * split between the CPU's system agent and the PCIe root complex.
 *
 * Routing is the innermost loop of every modelled memory access, so
 * the bus keeps its mappings sorted by start address and routes with
 * a binary search plus a one-entry most-recently-used cache. The
 * original linear scan survives as routeReference(), the golden
 * oracle the differential tests compare against.
 */

#ifndef HIX_MEM_PHYS_BUS_H_
#define HIX_MEM_PHYS_BUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/addr_range.h"
#include "common/status.h"
#include "common/types.h"

namespace hix::mem
{

/** Anything that claims a physical address range. */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Name for diagnostics. */
    virtual std::string targetName() const = 0;

    /** Read @p len bytes at @p offset within the claimed range. */
    virtual Status readAt(std::uint64_t offset, std::uint8_t *data,
                          std::size_t len) = 0;

    /** Write @p len bytes at @p offset within the claimed range. */
    virtual Status writeAt(std::uint64_t offset,
                           const std::uint8_t *data, std::size_t len) = 0;

    /**
     * Borrowed read-only view of [offset, offset + len), or nullptr
     * when the target cannot lend one (side-effecting MMIO, or the
     * range crosses an internal storage boundary). The pointer is
     * valid until the next mutating call on the target. Callers must
     * fall back to readAt() on nullptr.
     */
    virtual const std::uint8_t *
    readSpan(std::uint64_t offset, std::size_t len)
    {
        (void)offset;
        (void)len;
        return nullptr;
    }

    /**
     * Borrowed writable view of [offset, offset + len), or nullptr
     * (same contract as readSpan). Callers must fall back to
     * writeAt() on nullptr.
     */
    virtual std::uint8_t *
    writeSpan(std::uint64_t offset, std::size_t len)
    {
        (void)offset;
        (void)len;
        return nullptr;
    }
};

/**
 * Routes physical accesses to the registered target whose range
 * contains the address. Single accesses (read/write) must not
 * straddle targets; the page-chunked bulk helpers (readPages/
 * writePages) re-route per page and so may legally cross target
 * boundaries at page edges, exactly like the per-page loops they
 * replace.
 */
class PhysicalBus
{
  public:
    /** A claimed range and its owner. */
    struct Mapping
    {
        AddrRange range;
        BusTarget *target;
    };

    /** Claim @p range for @p target; ranges must not overlap. */
    Status attach(const AddrRange &range, BusTarget *target);

    /** Release a previously claimed range. */
    Status detach(const AddrRange &range);

    /** Route a physical read. */
    Status read(Addr addr, std::uint8_t *data, std::size_t len);

    /** Route a physical write. */
    Status write(Addr addr, const std::uint8_t *data, std::size_t len);

    /**
     * Bulk read that re-routes at every page boundary, using borrowed
     * spans when the target lends them. Byte- and Status-identical to
     * a per-page read() loop: on a mid-run fault nothing past the
     * faulting page has been read.
     */
    Status readPages(Addr addr, std::uint8_t *data, std::size_t len);

    /** Bulk write counterpart of readPages(). */
    Status writePages(Addr addr, const std::uint8_t *data,
                      std::size_t len);

    /**
     * Binary-search route with a one-entry MRU cache. Returns the
     * mapping containing @p addr, or nullptr. The pointer is
     * invalidated by attach/detach.
     */
    const Mapping *route(Addr addr) const;

    /** Linear-scan golden oracle for route(). */
    const Mapping *routeReference(Addr addr) const;

    /** The target claiming @p addr, or nullptr. */
    BusTarget *targetAt(Addr addr) const;

    /** The range claimed by the target covering @p addr. */
    Result<AddrRange> rangeAt(Addr addr) const;

    /** Number of attached mappings. */
    std::size_t mappingCount() const { return mappings_.size(); }

  private:
    std::vector<Mapping> mappings_;  // sorted by range.start()
    // One-entry MRU route cache: index into mappings_, or >= size()
    // when invalid. Mutable so route() stays usable from const
    // accessors; invalidated by attach/detach.
    mutable std::size_t last_route_ = ~std::size_t(0);
};

}  // namespace hix::mem

#endif  // HIX_MEM_PHYS_BUS_H_
