#include "mem/page_table.h"

namespace hix::mem
{

Status
PageTable::map(Addr vaddr, Addr paddr, std::uint8_t perms)
{
    if (!pageAligned(vaddr) || !pageAligned(paddr))
        return errInvalidArgument("map: unaligned address");
    auto [it, inserted] = entries_.emplace(vaddr, Pte{paddr, perms});
    if (!inserted)
        return errAlreadyExists("va page already mapped");
    return Status::ok();
}

Status
PageTable::mapRange(Addr vaddr, Addr paddr, std::uint64_t size,
                    std::uint8_t perms)
{
    if (!pageAligned(vaddr) || !pageAligned(paddr))
        return errInvalidArgument("mapRange: unaligned address");
    for (std::uint64_t off = 0; off < size; off += PageSize)
        HIX_RETURN_IF_ERROR(map(vaddr + off, paddr + off, perms));
    return Status::ok();
}

Status
PageTable::unmap(Addr vaddr)
{
    if (entries_.erase(pageBase(vaddr)) == 0)
        return errNotFound("va page not mapped");
    return Status::ok();
}

Result<Pte>
PageTable::lookup(Addr vaddr) const
{
    auto it = entries_.find(pageBase(vaddr));
    if (it == entries_.end())
        return errNotFound("page fault: va not mapped");
    return it->second;
}

void
PageTable::overwrite(Addr vaddr, Addr paddr, std::uint8_t perms)
{
    entries_[pageBase(vaddr)] = Pte{pageBase(paddr), perms};
}

}  // namespace hix::mem
