/**
 * @file
 * IOMMU model: translates device-visible DMA addresses to physical
 * addresses. Its table is OS-owned — under the HIX threat model the
 * adversary can redirect any DMA (Section 4.3.3), which is why HIX
 * protects DMA payloads with authenticated encryption instead of
 * trusting this unit.
 *
 * Translations are grouped into protection domains, one per
 * requesting device (the root complex assigns domain = root-port
 * index). A device's DMA can only ever resolve through its own
 * domain's table, so a multi-GPU pool gets per-device DMA isolation:
 * device k addressing a page mapped only for device j faults. The
 * single-GPU setups all use the default domain 0 and behave exactly
 * as the single-domain model did.
 *
 * Translation is cached in a set-associative IOTLB (same geometry
 * engine as the CPU TLB), tagged by (domain, device page). Caching
 * cannot change what the adversary can do: fills mirror the OS-owned
 * table verbatim, and every table mutation (unmap/overwrite)
 * invalidates the cached page before it takes effect, so a translate
 * always returns exactly what the table would. Negative results
 * (faults) are never cached.
 */

#ifndef HIX_MEM_IOMMU_H_
#define HIX_MEM_IOMMU_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "mem/mmu.h"
#include "mem/page.h"
#include "mem/phys_mem.h"

namespace hix::mem
{

/** IOMMU protection-domain id (root-port index of the requester). */
using IommuDomain = std::uint16_t;

/**
 * A multi-domain IOMMU. When disabled (bypass mode), device
 * addresses pass through untranslated (and the IOTLB is not
 * consulted or counted).
 */
class Iommu
{
  public:
    explicit Iommu(std::size_t iotlb_capacity = 64);

    /** Enable/disable translation; disabled = identity mapping. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Map a device page to a physical page (OS-controlled). */
    Status map(Addr device_addr, Addr phys_addr)
    {
        return map(0, device_addr, phys_addr);
    }
    Status map(IommuDomain domain, Addr device_addr, Addr phys_addr);

    /** Remove a device page mapping. */
    Status unmap(Addr device_addr) { return unmap(0, device_addr); }
    Status unmap(IommuDomain domain, Addr device_addr);

    /**
     * Rewrite a mapping without checks — the attacker primitive for
     * DMA redirection. Invalidates the cached page first, so the
     * redirect is visible to the very next translate (the attack
     * model must not be weakened by caching).
     */
    void overwrite(Addr device_addr, Addr phys_addr)
    {
        overwrite(0, device_addr, phys_addr);
    }
    void overwrite(IommuDomain domain, Addr device_addr, Addr phys_addr);

    /** Translate a device address; faults when unmapped. */
    Result<Addr> translate(Addr device_addr) const
    {
        return translate(0, device_addr);
    }
    Result<Addr> translate(IommuDomain domain, Addr device_addr) const;

    std::size_t entryCount() const { return table_.size(); }

    std::uint64_t iotlbHits() const { return iotlb_hits_; }
    std::uint64_t iotlbMisses() const { return iotlb_misses_; }
    /** Live IOTLB entries (for tests). */
    std::size_t iotlbSize() const { return live_; }

    /** Drop the whole IOTLB (platform reset / tests); O(1). */
    void flushIotlb();

  private:
    /** Table key: domain in the high bits, page base in the low.
     * Physical address space tops out far below 2^48, so the tag
     * never collides with page bits. */
    static std::uint64_t keyFor(IommuDomain domain, Addr dpage)
    {
        return (static_cast<std::uint64_t>(domain) << 48) | dpage;
    }

    struct IoSlot
    {
        std::uint64_t key = 0;    // keyFor(domain, dpage)
        Addr ppage = 0;
        std::uint64_t epoch = 0;  // 0 = invalid
        std::uint64_t stamp = 0;  // LRU recency
    };

    void invalidatePage(IommuDomain domain, Addr dpage);

    bool enabled_ = false;
    // (domain, device page) -> phys page
    std::unordered_map<std::uint64_t, Addr> table_;

    // IOTLB state; translate() is const, so the cache is mutable.
    TlbGeometry geom_;
    mutable std::vector<IoSlot> slots_;
    mutable std::uint64_t tick_ = 0;
    std::uint64_t epoch_ = 1;
    mutable std::size_t live_ = 0;
    mutable std::uint64_t iotlb_hits_ = 0;
    mutable std::uint64_t iotlb_misses_ = 0;
};

}  // namespace hix::mem

#endif  // HIX_MEM_IOMMU_H_
