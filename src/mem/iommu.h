/**
 * @file
 * IOMMU model: translates device-visible DMA addresses to physical
 * addresses. Its table is OS-owned — under the HIX threat model the
 * adversary can redirect any DMA (Section 4.3.3), which is why HIX
 * protects DMA payloads with authenticated encryption instead of
 * trusting this unit.
 */

#ifndef HIX_MEM_IOMMU_H_
#define HIX_MEM_IOMMU_H_

#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "mem/phys_mem.h"

namespace hix::mem
{

/**
 * A single-domain IOMMU. When disabled (bypass mode), device
 * addresses pass through untranslated.
 */
class Iommu
{
  public:
    /** Enable/disable translation; disabled = identity mapping. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Map a device page to a physical page (OS-controlled). */
    Status map(Addr device_addr, Addr phys_addr);

    /** Remove a device page mapping. */
    Status unmap(Addr device_addr);

    /**
     * Rewrite a mapping without checks — the attacker primitive for
     * DMA redirection.
     */
    void overwrite(Addr device_addr, Addr phys_addr);

    /** Translate a device address; faults when unmapped. */
    Result<Addr> translate(Addr device_addr) const;

    std::size_t entryCount() const { return table_.size(); }

  private:
    bool enabled_ = false;
    std::unordered_map<Addr, Addr> table_;  // device page -> phys page
};

}  // namespace hix::mem

#endif  // HIX_MEM_IOMMU_H_
