/**
 * @file
 * Sparse DRAM model: page-granular backing store allocated on first
 * touch, so a modelled machine with gigabytes of RAM costs only what
 * the workload actually touches.
 */

#ifndef HIX_MEM_PHYS_MEM_H_
#define HIX_MEM_PHYS_MEM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/addr_range.h"
#include "common/types.h"
#include "mem/page.h"
#include "mem/phys_bus.h"

namespace hix::mem
{

/**
 * Sparse physical memory of a given size. Reads of untouched pages
 * return zeros.
 */
class PhysMem : public BusTarget
{
  public:
    /** DRAM of @p size bytes named @p name. */
    PhysMem(std::string name, std::uint64_t size);

    std::string targetName() const override { return name_; }
    std::uint64_t size() const { return size_; }

    Status readAt(std::uint64_t offset, std::uint8_t *data,
                  std::size_t len) override;
    Status writeAt(std::uint64_t offset, const std::uint8_t *data,
                   std::size_t len) override;

    /**
     * Borrowed span within one backing page; untouched pages lend a
     * shared all-zero page (no materialisation on reads). Returns
     * nullptr when the request crosses a page boundary or is out of
     * bounds — callers fall back to readAt().
     */
    const std::uint8_t *readSpan(std::uint64_t offset,
                                 std::size_t len) override;

    /** Writable span within one backing page (materialises it). */
    std::uint8_t *writeSpan(std::uint64_t offset,
                            std::size_t len) override;

    /** Zero-fill a byte range (used for scrubbing). */
    Status zeroAt(std::uint64_t offset, std::uint64_t len);

    /** Number of pages actually materialised (for tests). */
    std::size_t touchedPages() const { return pages_.size(); }

  private:
    std::uint8_t *pageFor(std::uint64_t offset, bool create);

    std::string name_;
    std::uint64_t size_;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        pages_;
};

}  // namespace hix::mem

#endif  // HIX_MEM_PHYS_MEM_H_
