/**
 * @file
 * Sparse DRAM model: page-granular backing store allocated on first
 * touch, so a modelled machine with gigabytes of RAM costs only what
 * the workload actually touches.
 *
 * Pages are refcounted (`std::shared_ptr`) so a memory image can be
 * snapshotted and forked in O(pages-touched) without copying a byte:
 * `snapshot()` captures the current page map, `adopt()` installs a
 * snapshot's map into another PhysMem, and both sides copy-on-first-
 * write. The invariant that makes this safe — including for
 * concurrent forks off one snapshot — is that a page with more than
 * one owner is immutable: every write path goes through `mutPage()`,
 * which clones a shared page into private storage before returning a
 * mutable pointer. A page whose `use_count()` is 1 is owned by this
 * instance alone (nobody else holds a reference to copy from), so
 * in-place writes are race-free; shared_ptr refcounts are atomic, so
 * many threads may adopt the same snapshot concurrently.
 */

#ifndef HIX_MEM_PHYS_MEM_H_
#define HIX_MEM_PHYS_MEM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/addr_range.h"
#include "common/types.h"
#include "mem/page.h"
#include "mem/phys_bus.h"

namespace hix::mem
{

/**
 * Sparse physical memory of a given size. Reads of untouched pages
 * return zeros.
 */
class PhysMem : public BusTarget
{
  public:
    /**
     * A point-in-time image of the memory: the page map with every
     * backing page's refcount bumped. Holding a Snapshot freezes
     * those pages (owners copy-on-write instead of mutating them), so
     * it stays valid after the source PhysMem is destroyed and may be
     * adopted by any number of forks, concurrently.
     */
    struct Snapshot
    {
        std::uint64_t size = 0;
        std::unordered_map<std::uint64_t,
                           std::shared_ptr<std::uint8_t[]>>
            pages;
    };

    /** DRAM of @p size bytes named @p name. */
    PhysMem(std::string name, std::uint64_t size);

    std::string targetName() const override { return name_; }
    std::uint64_t size() const { return size_; }

    Status readAt(std::uint64_t offset, std::uint8_t *data,
                  std::size_t len) override;
    Status writeAt(std::uint64_t offset, const std::uint8_t *data,
                   std::size_t len) override;

    /**
     * Borrowed span within one backing page; untouched pages lend a
     * shared all-zero page (no materialisation on reads). Returns
     * nullptr when the request crosses a page boundary or is out of
     * bounds — callers fall back to readAt(). Reads of shared
     * (snapshotted) pages stay zero-copy.
     */
    const std::uint8_t *readSpan(std::uint64_t offset,
                                 std::size_t len) override;

    /** Writable span within one backing page (materialises it, and
     * clones it first if the page is shared with a snapshot). */
    std::uint8_t *writeSpan(std::uint64_t offset,
                            std::size_t len) override;

    /**
     * Zero-fill a byte range (used for scrubbing). Whole-page spans
     * drop the page back to sparse (decrefing a shared backing page)
     * instead of materialising a private zero copy.
     */
    Status zeroAt(std::uint64_t offset, std::uint64_t len);

    /** Capture the current page map without copying page contents. */
    Snapshot snapshot() const;

    /**
     * Replace this memory's contents with @p snap (sizes must match).
     * O(pages in the snapshot); no page bytes are copied until a
     * write actually lands on a shared page.
     */
    Status adopt(const Snapshot &snap);

    /** Pages whose backing store is owned by this instance alone —
     * the memory attributable to it beyond any shared snapshot. */
    std::size_t residentPages() const;

    /** Pages whose backing store is shared with a snapshot or a
     * sibling fork (refcount > 1; zero marginal cost per fork). */
    std::size_t sharedPages() const;

  private:
    /** Read path: existing page or nullptr, never materialises. */
    const std::uint8_t *peekPage(std::uint64_t offset) const;

    /**
     * Write path: materialises the page and returns a uniquely-owned
     * mutable pointer, cloning a shared page first. When
     * @p overwrite_all is true the caller promises to overwrite the
     * whole page, so a shared page's old bytes are not copied.
     */
    std::uint8_t *mutPage(std::uint64_t offset, bool overwrite_all);

    std::string name_;
    std::uint64_t size_;
    std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>>
        pages_;
};

}  // namespace hix::mem

#endif  // HIX_MEM_PHYS_MEM_H_
