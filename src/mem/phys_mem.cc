#include "mem/phys_mem.h"

#include <cstring>

namespace hix::mem
{

PhysMem::PhysMem(std::string name, std::uint64_t size)
    : name_(std::move(name)), size_(size)
{
}

std::uint8_t *
PhysMem::pageFor(std::uint64_t offset, bool create)
{
    const std::uint64_t page = offset / PageSize;
    auto it = pages_.find(page);
    if (it != pages_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto storage = std::make_unique<std::uint8_t[]>(PageSize);
    std::memset(storage.get(), 0, PageSize);
    std::uint8_t *raw = storage.get();
    pages_.emplace(page, std::move(storage));
    return raw;
}

Status
PhysMem::readAt(std::uint64_t offset, std::uint8_t *data, std::size_t len)
{
    // Overflow-safe bound check: offset + len must not wrap.
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("read beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        const std::uint8_t *page = pageFor(offset, false);
        if (page)
            std::memcpy(data, page + pageOffset(offset), take);
        else
            std::memset(data, 0, take);
        data += take;
        offset += take;
        len -= take;
    }
    return Status::ok();
}

Status
PhysMem::writeAt(std::uint64_t offset, const std::uint8_t *data,
                 std::size_t len)
{
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("write beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        std::uint8_t *page = pageFor(offset, true);
        std::memcpy(page + pageOffset(offset), data, take);
        data += take;
        offset += take;
        len -= take;
    }
    return Status::ok();
}

const std::uint8_t *
PhysMem::readSpan(std::uint64_t offset, std::size_t len)
{
    // Shared zero page lent for reads of untouched pages; writes
    // never see it because writeSpan materialises first.
    static const std::uint8_t zero_page[PageSize] = {};
    if (len > size_ || offset > size_ - len)
        return nullptr;
    if (len > PageSize - pageOffset(offset))
        return nullptr;
    const std::uint8_t *page = pageFor(offset, false);
    if (!page)
        return zero_page + pageOffset(offset);
    return page + pageOffset(offset);
}

std::uint8_t *
PhysMem::writeSpan(std::uint64_t offset, std::size_t len)
{
    if (len > size_ || offset > size_ - len)
        return nullptr;
    if (len > PageSize - pageOffset(offset))
        return nullptr;
    return pageFor(offset, true) + pageOffset(offset);
}

Status
PhysMem::zeroAt(std::uint64_t offset, std::uint64_t len)
{
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("zero beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::uint64_t take = std::min<std::uint64_t>(in_page, len);
        std::uint8_t *page = pageFor(offset, false);
        if (page)
            std::memset(page + pageOffset(offset), 0, take);
        offset += take;
        len -= take;
    }
    return Status::ok();
}

}  // namespace hix::mem
