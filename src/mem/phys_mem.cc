#include "mem/phys_mem.h"

#include <cstring>

namespace hix::mem
{

PhysMem::PhysMem(std::string name, std::uint64_t size)
    : name_(std::move(name)), size_(size)
{
}

const std::uint8_t *
PhysMem::peekPage(std::uint64_t offset) const
{
    auto it = pages_.find(offset / PageSize);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t *
PhysMem::mutPage(std::uint64_t offset, bool overwrite_all)
{
    const std::uint64_t page = offset / PageSize;
    auto it = pages_.find(page);
    if (it != pages_.end() && it->second.use_count() == 1)
        return it->second.get();
    // Absent, or shared with a snapshot/fork: build a private copy.
    // use_count() == 1 is decisive: nobody else holds a reference, so
    // nobody can be copying from (or bumping) this page concurrently.
    auto storage = std::shared_ptr<std::uint8_t[]>(
        new std::uint8_t[PageSize]);
    if (!overwrite_all) {
        if (it != pages_.end())
            std::memcpy(storage.get(), it->second.get(), PageSize);
        else
            std::memset(storage.get(), 0, PageSize);
    }
    std::uint8_t *raw = storage.get();
    if (it != pages_.end())
        it->second = std::move(storage);
    else
        pages_.emplace(page, std::move(storage));
    return raw;
}

Status
PhysMem::readAt(std::uint64_t offset, std::uint8_t *data, std::size_t len)
{
    // Overflow-safe bound check: offset + len must not wrap.
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("read beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        const std::uint8_t *page = peekPage(offset);
        if (page)
            std::memcpy(data, page + pageOffset(offset), take);
        else
            std::memset(data, 0, take);
        data += take;
        offset += take;
        len -= take;
    }
    return Status::ok();
}

Status
PhysMem::writeAt(std::uint64_t offset, const std::uint8_t *data,
                 std::size_t len)
{
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("write beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        std::uint8_t *page =
            mutPage(offset, /*overwrite_all=*/take == PageSize);
        std::memcpy(page + pageOffset(offset), data, take);
        data += take;
        offset += take;
        len -= take;
    }
    return Status::ok();
}

const std::uint8_t *
PhysMem::readSpan(std::uint64_t offset, std::size_t len)
{
    // Shared zero page lent for reads of untouched pages; writes
    // never see it because writeSpan materialises first.
    static const std::uint8_t zero_page[PageSize] = {};
    if (len > size_ || offset > size_ - len)
        return nullptr;
    if (len > PageSize - pageOffset(offset))
        return nullptr;
    const std::uint8_t *page = peekPage(offset);
    if (!page)
        return zero_page + pageOffset(offset);
    return page + pageOffset(offset);
}

std::uint8_t *
PhysMem::writeSpan(std::uint64_t offset, std::size_t len)
{
    if (len > size_ || offset > size_ - len)
        return nullptr;
    if (len > PageSize - pageOffset(offset))
        return nullptr;
    return mutPage(offset, /*overwrite_all=*/false) +
           pageOffset(offset);
}

Status
PhysMem::zeroAt(std::uint64_t offset, std::uint64_t len)
{
    if (len > size_ || offset > size_ - len)
        return errInvalidArgument("zero beyond " + name_ + " size");
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(offset);
        const std::uint64_t take = std::min<std::uint64_t>(in_page, len);
        if (take == PageSize) {
            // Whole page: drop back to sparse (zero reads for free,
            // and a shared backing page is decrefed, not copied).
            pages_.erase(offset / PageSize);
        } else if (peekPage(offset)) {
            std::memset(mutPage(offset, false) + pageOffset(offset), 0,
                        take);
        }
        offset += take;
        len -= take;
    }
    return Status::ok();
}

PhysMem::Snapshot
PhysMem::snapshot() const
{
    Snapshot snap;
    snap.size = size_;
    snap.pages = pages_;  // shared_ptr copies: refcount bump only
    return snap;
}

Status
PhysMem::adopt(const Snapshot &snap)
{
    if (snap.size != size_)
        return errInvalidArgument("snapshot size mismatch for " +
                                  name_);
    pages_ = snap.pages;
    return Status::ok();
}

std::size_t
PhysMem::residentPages() const
{
    std::size_t n = 0;
    for (const auto &[page, storage] : pages_)
        n += storage.use_count() == 1;
    return n;
}

std::size_t
PhysMem::sharedPages() const
{
    std::size_t n = 0;
    for (const auto &[page, storage] : pages_)
        n += storage.use_count() > 1;
    return n;
}

}  // namespace hix::mem
