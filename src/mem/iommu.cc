#include "mem/iommu.h"

namespace hix::mem
{

Status
Iommu::map(Addr device_addr, Addr phys_addr)
{
    if (!pageAligned(device_addr) || !pageAligned(phys_addr))
        return errInvalidArgument("IOMMU map: unaligned address");
    auto [it, inserted] = table_.emplace(device_addr, phys_addr);
    if (!inserted)
        return errAlreadyExists("device page already mapped");
    return Status::ok();
}

Status
Iommu::unmap(Addr device_addr)
{
    if (table_.erase(pageBase(device_addr)) == 0)
        return errNotFound("device page not mapped");
    return Status::ok();
}

void
Iommu::overwrite(Addr device_addr, Addr phys_addr)
{
    table_[pageBase(device_addr)] = pageBase(phys_addr);
}

Result<Addr>
Iommu::translate(Addr device_addr) const
{
    if (!enabled_)
        return device_addr;
    auto it = table_.find(pageBase(device_addr));
    if (it == table_.end())
        return errAccessFault("IOMMU fault: device page not mapped");
    return it->second + pageOffset(device_addr);
}

}  // namespace hix::mem
