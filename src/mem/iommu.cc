#include "mem/iommu.h"

namespace hix::mem
{

Iommu::Iommu(std::size_t iotlb_capacity)
    : geom_(TlbGeometry::forCapacity(iotlb_capacity)),
      slots_(geom_.slotCount())
{
}

Status
Iommu::map(Addr device_addr, Addr phys_addr)
{
    if (!pageAligned(device_addr) || !pageAligned(phys_addr))
        return errInvalidArgument("IOMMU map: unaligned address");
    auto [it, inserted] = table_.emplace(device_addr, phys_addr);
    if (!inserted)
        return errAlreadyExists("device page already mapped");
    // No IOTLB action needed: misses are never cached, so an absent
    // page cannot have a stale cached translation.
    return Status::ok();
}

Status
Iommu::unmap(Addr device_addr)
{
    const Addr dpage = pageBase(device_addr);
    if (table_.erase(dpage) == 0)
        return errNotFound("device page not mapped");
    invalidatePage(dpage);
    return Status::ok();
}

void
Iommu::overwrite(Addr device_addr, Addr phys_addr)
{
    const Addr dpage = pageBase(device_addr);
    invalidatePage(dpage);
    table_[dpage] = pageBase(phys_addr);
}

void
Iommu::invalidatePage(Addr dpage)
{
    IoSlot *base = &slots_[geom_.setIndex(0, dpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch == epoch_ && s.dpage == dpage) {
            s.epoch = 0;
            --live_;
        }
    }
}

void
Iommu::flushIotlb()
{
    ++epoch_;
    live_ = 0;
}

Result<Addr>
Iommu::translate(Addr device_addr) const
{
    if (!enabled_)
        return device_addr;
    const Addr dpage = pageBase(device_addr);
    IoSlot *base = &slots_[geom_.setIndex(0, dpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch == epoch_ && s.dpage == dpage) {
            s.stamp = ++tick_;
            ++iotlb_hits_;
            return s.ppage + pageOffset(device_addr);
        }
    }
    ++iotlb_misses_;
    auto it = table_.find(dpage);
    if (it == table_.end())
        return errAccessFault("IOMMU fault: device page not mapped");
    // Fill: prefer an invalid slot, else evict within-set LRU.
    IoSlot *free_slot = nullptr;
    IoSlot *victim = nullptr;
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch != epoch_) {
            if (!free_slot)
                free_slot = &s;
        } else if (!victim || s.stamp < victim->stamp) {
            victim = &s;
        }
    }
    IoSlot *dst = free_slot ? free_slot : victim;
    if (free_slot) {
        ++live_;
        dst->epoch = epoch_;
    }
    dst->dpage = dpage;
    dst->ppage = it->second;
    dst->stamp = ++tick_;
    return it->second + pageOffset(device_addr);
}

}  // namespace hix::mem
