#include "mem/iommu.h"

namespace hix::mem
{

Iommu::Iommu(std::size_t iotlb_capacity)
    : geom_(TlbGeometry::forCapacity(iotlb_capacity)),
      slots_(geom_.slotCount())
{
}

Status
Iommu::map(IommuDomain domain, Addr device_addr, Addr phys_addr)
{
    if (!pageAligned(device_addr) || !pageAligned(phys_addr))
        return errInvalidArgument("IOMMU map: unaligned address");
    auto [it, inserted] =
        table_.emplace(keyFor(domain, device_addr), phys_addr);
    if (!inserted)
        return errAlreadyExists("device page already mapped");
    // No IOTLB action needed: misses are never cached, so an absent
    // page cannot have a stale cached translation.
    return Status::ok();
}

Status
Iommu::unmap(IommuDomain domain, Addr device_addr)
{
    const Addr dpage = pageBase(device_addr);
    if (table_.erase(keyFor(domain, dpage)) == 0)
        return errNotFound("device page not mapped");
    invalidatePage(domain, dpage);
    return Status::ok();
}

void
Iommu::overwrite(IommuDomain domain, Addr device_addr, Addr phys_addr)
{
    const Addr dpage = pageBase(device_addr);
    invalidatePage(domain, dpage);
    table_[keyFor(domain, dpage)] = pageBase(phys_addr);
}

void
Iommu::invalidatePage(IommuDomain domain, Addr dpage)
{
    const std::uint64_t key = keyFor(domain, dpage);
    IoSlot *base = &slots_[geom_.setIndex(domain, dpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch == epoch_ && s.key == key) {
            s.epoch = 0;
            --live_;
        }
    }
}

void
Iommu::flushIotlb()
{
    ++epoch_;
    live_ = 0;
}

Result<Addr>
Iommu::translate(IommuDomain domain, Addr device_addr) const
{
    if (!enabled_)
        return device_addr;
    const Addr dpage = pageBase(device_addr);
    const std::uint64_t key = keyFor(domain, dpage);
    IoSlot *base = &slots_[geom_.setIndex(domain, dpage) * geom_.ways];
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch == epoch_ && s.key == key) {
            s.stamp = ++tick_;
            ++iotlb_hits_;
            return s.ppage + pageOffset(device_addr);
        }
    }
    ++iotlb_misses_;
    auto it = table_.find(key);
    if (it == table_.end())
        return errAccessFault("IOMMU fault: device page not mapped");
    // Fill: prefer an invalid slot, else evict within-set LRU.
    IoSlot *free_slot = nullptr;
    IoSlot *victim = nullptr;
    for (std::size_t w = 0; w < geom_.ways; ++w) {
        IoSlot &s = base[w];
        if (s.epoch != epoch_) {
            if (!free_slot)
                free_slot = &s;
        } else if (!victim || s.stamp < victim->stamp) {
            victim = &s;
        }
    }
    IoSlot *dst = free_slot ? free_slot : victim;
    if (free_slot) {
        ++live_;
        dst->epoch = epoch_;
    }
    dst->key = key;
    dst->ppage = it->second;
    dst->stamp = ++tick_;
    return it->second + pageOffset(device_addr);
}

}  // namespace hix::mem
