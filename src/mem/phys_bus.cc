#include "mem/phys_bus.h"

#include <algorithm>
#include <cstring>

#include "mem/page.h"

namespace hix::mem
{

Status
PhysicalBus::attach(const AddrRange &range, BusTarget *target)
{
    if (range.empty() || target == nullptr)
        return errInvalidArgument("empty range or null target");
    for (const Mapping &m : mappings_) {
        if (m.range.overlaps(range)) {
            return errAlreadyExists("range " + range.toString() +
                                    " overlaps " + m.range.toString() +
                                    " owned by " + m.target->targetName());
        }
    }
    auto pos = std::lower_bound(
        mappings_.begin(), mappings_.end(), range.start(),
        [](const Mapping &m, Addr start) {
            return m.range.start() < start;
        });
    mappings_.insert(pos, Mapping{range, target});
    last_route_ = ~std::size_t(0);
    return Status::ok();
}

Status
PhysicalBus::detach(const AddrRange &range)
{
    auto it = std::find_if(mappings_.begin(), mappings_.end(),
                           [&](const Mapping &m) {
                               return m.range == range;
                           });
    if (it == mappings_.end())
        return errNotFound("no mapping for " + range.toString());
    mappings_.erase(it);
    last_route_ = ~std::size_t(0);
    return Status::ok();
}

const PhysicalBus::Mapping *
PhysicalBus::route(Addr addr) const
{
    if (last_route_ < mappings_.size() &&
        mappings_[last_route_].range.contains(addr))
        return &mappings_[last_route_];
    // First mapping starting after addr; the candidate is the one
    // before it (mappings are sorted and disjoint).
    auto it = std::upper_bound(mappings_.begin(), mappings_.end(), addr,
                               [](Addr a, const Mapping &m) {
                                   return a < m.range.start();
                               });
    if (it == mappings_.begin())
        return nullptr;
    --it;
    if (!it->range.contains(addr))
        return nullptr;
    last_route_ = static_cast<std::size_t>(it - mappings_.begin());
    return &*it;
}

const PhysicalBus::Mapping *
PhysicalBus::routeReference(Addr addr) const
{
    for (const Mapping &m : mappings_)
        if (m.range.contains(addr))
            return &m;
    return nullptr;
}

Status
PhysicalBus::read(Addr addr, std::uint8_t *data, std::size_t len)
{
    const Mapping *m = route(addr);
    if (!m)
        return errNotFound("physical read from unmapped address");
    // Overflow-safe straddle check: addr is inside the range, so
    // range.end() - addr never wraps (unlike addr + len - 1).
    if (len > m->range.end() - addr)
        return errInvalidArgument("read straddles bus targets");
    return m->target->readAt(m->range.offsetOf(addr), data, len);
}

Status
PhysicalBus::write(Addr addr, const std::uint8_t *data, std::size_t len)
{
    const Mapping *m = route(addr);
    if (!m)
        return errNotFound("physical write to unmapped address");
    if (len > m->range.end() - addr)
        return errInvalidArgument("write straddles bus targets");
    return m->target->writeAt(m->range.offsetOf(addr), data, len);
}

Status
PhysicalBus::readPages(Addr addr, std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(addr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        const Mapping *m = route(addr);
        if (!m)
            return errNotFound("physical read from unmapped address");
        if (take > m->range.end() - addr)
            return errInvalidArgument("read straddles bus targets");
        const std::uint64_t off = m->range.offsetOf(addr);
        if (const std::uint8_t *span = m->target->readSpan(off, take))
            std::memcpy(data, span, take);
        else
            HIX_RETURN_IF_ERROR(m->target->readAt(off, data, take));
        data += take;
        addr += take;
        len -= take;
    }
    return Status::ok();
}

Status
PhysicalBus::writePages(Addr addr, const std::uint8_t *data,
                        std::size_t len)
{
    while (len > 0) {
        const std::uint64_t in_page = PageSize - pageOffset(addr);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        const Mapping *m = route(addr);
        if (!m)
            return errNotFound("physical write to unmapped address");
        if (take > m->range.end() - addr)
            return errInvalidArgument("write straddles bus targets");
        const std::uint64_t off = m->range.offsetOf(addr);
        if (std::uint8_t *span = m->target->writeSpan(off, take))
            std::memcpy(span, data, take);
        else
            HIX_RETURN_IF_ERROR(m->target->writeAt(off, data, take));
        data += take;
        addr += take;
        len -= take;
    }
    return Status::ok();
}

BusTarget *
PhysicalBus::targetAt(Addr addr) const
{
    const Mapping *m = route(addr);
    return m ? m->target : nullptr;
}

Result<AddrRange>
PhysicalBus::rangeAt(Addr addr) const
{
    const Mapping *m = route(addr);
    if (!m)
        return errNotFound("no target at address");
    return m->range;
}

}  // namespace hix::mem
