#include "mem/phys_bus.h"

#include <algorithm>

namespace hix::mem
{

Status
PhysicalBus::attach(const AddrRange &range, BusTarget *target)
{
    if (range.empty() || target == nullptr)
        return errInvalidArgument("empty range or null target");
    for (const Mapping &m : mappings_) {
        if (m.range.overlaps(range)) {
            return errAlreadyExists("range " + range.toString() +
                                    " overlaps " + m.range.toString() +
                                    " owned by " + m.target->targetName());
        }
    }
    mappings_.push_back(Mapping{range, target});
    return Status::ok();
}

Status
PhysicalBus::detach(const AddrRange &range)
{
    auto it = std::find_if(mappings_.begin(), mappings_.end(),
                           [&](const Mapping &m) {
                               return m.range == range;
                           });
    if (it == mappings_.end())
        return errNotFound("no mapping for " + range.toString());
    mappings_.erase(it);
    return Status::ok();
}

const PhysicalBus::Mapping *
PhysicalBus::findMapping(Addr addr) const
{
    for (const Mapping &m : mappings_)
        if (m.range.contains(addr))
            return &m;
    return nullptr;
}

Status
PhysicalBus::read(Addr addr, std::uint8_t *data, std::size_t len)
{
    const Mapping *m = findMapping(addr);
    if (!m)
        return errNotFound("physical read from unmapped address");
    if (len > 0 && !m->range.contains(addr + len - 1))
        return errInvalidArgument("read straddles bus targets");
    return m->target->readAt(m->range.offsetOf(addr), data, len);
}

Status
PhysicalBus::write(Addr addr, const std::uint8_t *data, std::size_t len)
{
    const Mapping *m = findMapping(addr);
    if (!m)
        return errNotFound("physical write to unmapped address");
    if (len > 0 && !m->range.contains(addr + len - 1))
        return errInvalidArgument("write straddles bus targets");
    return m->target->writeAt(m->range.offsetOf(addr), data, len);
}

BusTarget *
PhysicalBus::targetAt(Addr addr) const
{
    const Mapping *m = findMapping(addr);
    return m ? m->target : nullptr;
}

Result<AddrRange>
PhysicalBus::rangeAt(Addr addr) const
{
    const Mapping *m = findMapping(addr);
    if (!m)
        return errNotFound("no target at address");
    return m->range;
}

}  // namespace hix::mem
