/**
 * @file
 * Page geometry of the modelled machine. Split out of phys_mem.h so
 * the bus layer can chunk accesses at page granularity without
 * depending on the DRAM model.
 */

#ifndef HIX_MEM_PAGE_H_
#define HIX_MEM_PAGE_H_

#include <cstdint>

#include "common/types.h"

namespace hix::mem
{

/** Page size of the modelled machine (4 KiB, x86-64 base pages). */
inline constexpr std::uint64_t PageSize = 4096;

/** Page-align an address downwards. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~(PageSize - 1);
}

/** Offset of an address within its page. */
constexpr std::uint64_t
pageOffset(Addr a)
{
    return a & (PageSize - 1);
}

/** True when @p a is page-aligned. */
constexpr bool
pageAligned(Addr a)
{
    return pageOffset(a) == 0;
}

}  // namespace hix::mem

#endif  // HIX_MEM_PAGE_H_
