/**
 * @file
 * Per-process page table. The table itself is OS-owned state — under
 * the HIX threat model the adversary may rewrite any entry at any
 * time; security comes from the hardware page-table walker's
 * validation (mmu.h), never from trusting this structure.
 */

#ifndef HIX_MEM_PAGE_TABLE_H_
#define HIX_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "mem/phys_mem.h"

namespace hix::mem
{

/** Page permissions bitmask. */
enum Perm : std::uint8_t
{
    PermNone = 0,
    PermRead = 1 << 0,
    PermWrite = 1 << 1,
    PermExec = 1 << 2,
};

/** Kind of access being performed, checked against Perm. */
enum class AccessType
{
    Read,
    Write,
    Execute,
};

/** Permission bit required by an access type. */
constexpr Perm
permFor(AccessType t)
{
    switch (t) {
      case AccessType::Read:
        return PermRead;
      case AccessType::Write:
        return PermWrite;
      case AccessType::Execute:
        return PermExec;
    }
    return PermNone;
}

/** One page-table entry. */
struct Pte
{
    Addr paddr = 0;  //!< physical page base
    std::uint8_t perms = PermNone;
};

/**
 * A flat VA->PA page map for one process address space.
 */
class PageTable
{
  public:
    /** Map the page of @p vaddr to the page of @p paddr. */
    Status map(Addr vaddr, Addr paddr, std::uint8_t perms);

    /** Map a contiguous region of @p size bytes. */
    Status mapRange(Addr vaddr, Addr paddr, std::uint64_t size,
                    std::uint8_t perms);

    /** Remove the mapping of @p vaddr's page. */
    Status unmap(Addr vaddr);

    /** Look up the PTE covering @p vaddr. */
    Result<Pte> lookup(Addr vaddr) const;

    /**
     * Overwrite an existing PTE without any checks. This is the
     * attacker primitive: privileged software can point any virtual
     * page anywhere.
     */
    void overwrite(Addr vaddr, Addr paddr, std::uint8_t perms);

    std::size_t entryCount() const { return entries_.size(); }

  private:
    std::unordered_map<Addr, Pte> entries_;  // keyed by VA page base
};

}  // namespace hix::mem

#endif  // HIX_MEM_PAGE_TABLE_H_
