/**
 * @file
 * SHA-256 (FIPS 180-4), used for enclave measurement (MRENCLAVE-style
 * digests), GPU BIOS attestation, and HMAC-based key derivation.
 */

#ifndef HIX_CRYPTO_SHA256_H_
#define HIX_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace hix::crypto
{

/** Digest size in bytes. */
inline constexpr std::size_t Sha256DigestSize = 32;

/** A SHA-256 digest. */
using Sha256Digest = std::array<std::uint8_t, Sha256DigestSize>;

/** Streaming SHA-256. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart the hash. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    void
    update(const Bytes &data)
    {
        update(data.data(), data.size());
    }

    void
    update(const std::string &s)
    {
        update(reinterpret_cast<const std::uint8_t *>(s.data()),
               s.size());
    }

    /** Finish and return the digest; the object needs reset() after. */
    Sha256Digest finalize();

    /** One-shot helper. */
    static Sha256Digest digest(const std::uint8_t *data, std::size_t len);
    static Sha256Digest digest(const Bytes &data);
    static Sha256Digest digest(const std::string &s);

  private:
    void processBlock(const std::uint8_t block[64]);

    std::uint32_t h_[8];
    std::uint8_t buf_[64];
    std::size_t buf_len_;
    std::uint64_t total_len_;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_SHA256_H_
