#include "crypto/ocb.h"

#include <cstring>

#include "common/byte_utils.h"
#include "common/logging.h"

namespace hix::crypto
{

namespace
{

/** How many blocks the wide seal/open loops process per iteration.
 * Eight matches the AES-NI engine's pipelined batch width; the
 * T-table engine consumes the same batch four blocks at a time. */
constexpr std::size_t WideBlocks = 8;

/** GF(2^128) doubling per RFC 7253 Section 2. */
AesBlock
gfDouble(const AesBlock &s)
{
    AesBlock out;
    std::uint8_t carry = s[0] >> 7;
    for (int i = 0; i < 15; ++i)
        out[i] = static_cast<std::uint8_t>((s[i] << 1) | (s[i + 1] >> 7));
    out[15] = static_cast<std::uint8_t>(s[15] << 1);
    if (carry)
        out[15] ^= 0x87;
    return out;
}

/** Number of trailing zeros of a positive block index. */
std::size_t
ntz(std::uint64_t i)
{
    std::size_t n = 0;
    while ((i & 1) == 0) {
        ++n;
        i >>= 1;
    }
    return n;
}

void
xorBlock(AesBlock &dst, const std::uint8_t *src)
{
    for (std::size_t i = 0; i < AesBlockSize; ++i)
        dst[i] ^= src[i];
}

/** dst = a ^ b over one AES block of raw bytes. */
void
xorBlockInto(std::uint8_t *dst, const std::uint8_t *a,
             const std::uint8_t *b)
{
    for (std::size_t i = 0; i < AesBlockSize; ++i)
        dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

}  // namespace

OcbNonce
makeNonce(std::uint32_t stream, std::uint64_t counter)
{
    OcbNonce n{};
    storeBE32(n.data(), stream);
    storeBE64(n.data() + 4, counter);
    return n;
}

Ocb::Ocb(const AesKey &key, AesEngine engine) : cipher_(key, engine)
{
    AesBlock zero{};
    l_star_ = cipher_.encrypt(zero);
    l_dollar_ = gfDouble(l_star_);
    l_[0] = gfDouble(l_dollar_);
    for (std::size_t i = 1; i < NumLValues; ++i)
        l_[i] = gfDouble(l_[i - 1]);
}

AesBlock
Ocb::hashAd(const std::uint8_t *ad, std::size_t ad_len) const
{
    AesBlock sum{};
    AesBlock offset{};
    std::uint64_t i = 1;
    while (ad_len >= AesBlockSize) {
        xorBlock(offset, lValue(ntz(i)).data());
        AesBlock tmp = offset;
        xorBlock(tmp, ad);
        tmp = cipher_.encrypt(tmp);
        xorBlock(sum, tmp.data());
        ad += AesBlockSize;
        ad_len -= AesBlockSize;
        ++i;
    }
    if (ad_len > 0) {
        xorBlock(offset, l_star_.data());
        AesBlock padded{};
        std::memcpy(padded.data(), ad, ad_len);
        padded[ad_len] = 0x80;
        xorBlock(padded, offset.data());
        padded = cipher_.encrypt(padded);
        xorBlock(sum, padded.data());
    }
    return sum;
}

AesBlock
Ocb::initialOffset(const OcbNonce &nonce) const
{
    // Nonce = num2str(TAGLEN mod 128, 7) || zeros || 1 || N.
    // TAGLEN = 128, so the leading 7 bits are zero.
    AesBlock full{};
    full[15 - OcbNonceSize] |= 0x01;
    std::memcpy(full.data() + 16 - OcbNonceSize, nonce.data(),
                OcbNonceSize);

    const int bottom = full[15] & 0x3f;
    AesBlock ktop_in = full;
    ktop_in[15] = static_cast<std::uint8_t>(ktop_in[15] & 0xc0);
    AesBlock ktop = cipher_.encrypt(ktop_in);

    // Stretch = Ktop || (Ktop[1..64] xor Ktop[9..72]) (bits).
    std::uint8_t stretch[24];
    std::memcpy(stretch, ktop.data(), 16);
    for (int i = 0; i < 8; ++i)
        stretch[16 + i] = static_cast<std::uint8_t>(ktop[i] ^ ktop[i + 1]);

    // Offset_0 = Stretch[1+bottom .. 128+bottom] (bit indices).
    AesBlock offset;
    const int byte_shift = bottom / 8;
    const int bit_shift = bottom % 8;
    for (int i = 0; i < 16; ++i) {
        if (bit_shift == 0) {
            offset[i] = stretch[i + byte_shift];
        } else {
            offset[i] = static_cast<std::uint8_t>(
                (stretch[i + byte_shift] << bit_shift) |
                (stretch[i + byte_shift + 1] >> (8 - bit_shift)));
        }
    }
    return offset;
}

void
Ocb::encryptInto(const OcbNonce &nonce, const std::uint8_t *ad,
                 std::size_t ad_len, const std::uint8_t *pt,
                 std::size_t pt_len, std::uint8_t *out,
                 std::uint8_t *tag_out) const
{
    AesBlock offset = initialOffset(nonce);
    AesBlock checksum{};
    std::uint64_t i = 1;

    std::size_t remaining = pt_len;

    // Wide path: stride four blocks per iteration. The per-block
    // offsets form a strictly sequential xor chain, but they are
    // cheap; the AES calls — the real cost — are batched so the
    // T-table engine overlaps four independent lookup chains.
    while (remaining >= WideBlocks * AesBlockSize) {
        AesBlock offs[WideBlocks];
        std::uint8_t buf[WideBlocks * AesBlockSize];
        for (std::size_t j = 0; j < WideBlocks; ++j) {
            xorBlock(offset, lValue(ntz(i + j)).data());
            offs[j] = offset;
            xorBlockInto(buf + j * AesBlockSize, pt + j * AesBlockSize,
                         offset.data());
            xorBlock(checksum, pt + j * AesBlockSize);
        }
        cipher_.encryptBlocks(buf, buf, WideBlocks);
        for (std::size_t j = 0; j < WideBlocks; ++j)
            xorBlockInto(out + j * AesBlockSize, buf + j * AesBlockSize,
                         offs[j].data());
        pt += WideBlocks * AesBlockSize;
        out += WideBlocks * AesBlockSize;
        remaining -= WideBlocks * AesBlockSize;
        i += WideBlocks;
    }

    while (remaining >= AesBlockSize) {
        xorBlock(offset, lValue(ntz(i)).data());
        AesBlock tmp = offset;
        xorBlock(tmp, pt);
        tmp = cipher_.encrypt(tmp);
        xorBlock(tmp, offset.data());
        std::memcpy(out, tmp.data(), AesBlockSize);
        xorBlock(checksum, pt);
        pt += AesBlockSize;
        out += AesBlockSize;
        remaining -= AesBlockSize;
        ++i;
    }
    if (remaining > 0) {
        xorBlock(offset, l_star_.data());
        AesBlock pad = cipher_.encrypt(offset);
        for (std::size_t j = 0; j < remaining; ++j)
            out[j] = static_cast<std::uint8_t>(pt[j] ^ pad[j]);
        AesBlock padded{};
        std::memcpy(padded.data(), pt, remaining);
        padded[remaining] = 0x80;
        xorBlock(checksum, padded.data());
    }

    AesBlock tag = checksum;
    xorBlock(tag, offset.data());
    xorBlock(tag, l_dollar_.data());
    tag = cipher_.encrypt(tag);
    AesBlock ad_hash = hashAd(ad, ad_len);
    xorBlock(tag, ad_hash.data());
    std::memcpy(tag_out, tag.data(), OcbTagSize);
}

Bytes
Ocb::encrypt(const OcbNonce &nonce, const Bytes &ad,
             const Bytes &plaintext) const
{
    Bytes out(plaintext.size() + OcbTagSize);
    encryptInto(nonce, ad.data(), ad.size(), plaintext.data(),
                plaintext.size(), out.data(),
                out.data() + plaintext.size());
    return out;
}

Status
Ocb::decryptInto(const OcbNonce &nonce, const std::uint8_t *ad,
                 std::size_t ad_len, const std::uint8_t *ct,
                 std::size_t ct_len, const std::uint8_t *tag,
                 std::uint8_t *out) const
{
    AesBlock offset = initialOffset(nonce);
    AesBlock checksum{};
    std::uint64_t i = 1;

    std::size_t remaining = ct_len;
    std::uint8_t *out_cursor = out;

    while (remaining >= WideBlocks * AesBlockSize) {
        AesBlock offs[WideBlocks];
        std::uint8_t buf[WideBlocks * AesBlockSize];
        for (std::size_t j = 0; j < WideBlocks; ++j) {
            xorBlock(offset, lValue(ntz(i + j)).data());
            offs[j] = offset;
            xorBlockInto(buf + j * AesBlockSize, ct + j * AesBlockSize,
                         offset.data());
        }
        cipher_.decryptBlocks(buf, buf, WideBlocks);
        for (std::size_t j = 0; j < WideBlocks; ++j) {
            xorBlockInto(out_cursor + j * AesBlockSize,
                         buf + j * AesBlockSize, offs[j].data());
            xorBlock(checksum, out_cursor + j * AesBlockSize);
        }
        ct += WideBlocks * AesBlockSize;
        out_cursor += WideBlocks * AesBlockSize;
        remaining -= WideBlocks * AesBlockSize;
        i += WideBlocks;
    }

    while (remaining >= AesBlockSize) {
        xorBlock(offset, lValue(ntz(i)).data());
        AesBlock tmp = offset;
        xorBlock(tmp, ct);
        tmp = cipher_.decrypt(tmp);
        xorBlock(tmp, offset.data());
        std::memcpy(out_cursor, tmp.data(), AesBlockSize);
        xorBlock(checksum, out_cursor);
        ct += AesBlockSize;
        out_cursor += AesBlockSize;
        remaining -= AesBlockSize;
        ++i;
    }
    if (remaining > 0) {
        xorBlock(offset, l_star_.data());
        AesBlock pad = cipher_.encrypt(offset);
        for (std::size_t j = 0; j < remaining; ++j)
            out_cursor[j] = static_cast<std::uint8_t>(ct[j] ^ pad[j]);
        AesBlock padded{};
        std::memcpy(padded.data(), out_cursor, remaining);
        padded[remaining] = 0x80;
        xorBlock(checksum, padded.data());
    }

    AesBlock expected = checksum;
    xorBlock(expected, offset.data());
    xorBlock(expected, l_dollar_.data());
    expected = cipher_.encrypt(expected);
    AesBlock ad_hash = hashAd(ad, ad_len);
    xorBlock(expected, ad_hash.data());

    if (!constantTimeEqual(expected.data(), tag, OcbTagSize)) {
        // Leave no plaintext behind on failure. Guard the empty case:
        // memset on a null out pointer is UB even with length 0.
        if (ct_len > 0)
            std::memset(out, 0, ct_len);
        return errIntegrityFailure("OCB tag mismatch");
    }
    return Status::ok();
}

Result<Bytes>
Ocb::decrypt(const OcbNonce &nonce, const Bytes &ad,
             const Bytes &ciphertext_and_tag) const
{
    if (ciphertext_and_tag.size() < OcbTagSize)
        return errInvalidArgument("ciphertext shorter than tag");
    const std::size_t ct_len = ciphertext_and_tag.size() - OcbTagSize;
    Bytes out(ct_len);
    Status st = decryptInto(nonce, ad.data(), ad.size(),
                            ciphertext_and_tag.data(), ct_len,
                            ciphertext_and_tag.data() + ct_len,
                            out.data());
    if (!st.isOk())
        return st;
    return out;
}

}  // namespace hix::crypto
