/**
 * @file
 * AES-128 block cipher (FIPS 197), implemented from scratch.
 *
 * This is the primitive under the OCB authenticated encryption used
 * on every HIX data path (Section 5.2 of the paper uses
 * OCB-AES-128). Three engines share one interface:
 *
 *  - AesEngine::Fast (default): the best path the host supports.
 *    Uses AES-NI (runtime-detected, per-function target attributes,
 *    so no global -maes build flag) when available, else the T-table
 *    path. This is the production host path.
 *  - AesEngine::TTable: precomputed 4x256 u32 T-tables for both
 *    directions, built once at static initialization from the
 *    derived S-box, plus a multi-block API that processes four
 *    blocks per inner loop. Portable fast path; forced here so
 *    tests can exercise it even on AES-NI hosts.
 *  - AesEngine::Reference: the original byte-wise scalar cipher
 *    (per-byte SubBytes, xtime MixColumns), kept as the correctness
 *    oracle the fast paths are byte-compared against in tests.
 *
 * All three produce identical bytes (AES is deterministic), so the
 * engine choice is invisible to peers and recorded traces.
 *
 * Host speed only: simulated-time crypto costs come from the
 * platform timing model, not from host wall-clock.
 */

#ifndef HIX_CRYPTO_AES128_H_
#define HIX_CRYPTO_AES128_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace hix::crypto
{

/** AES block size in bytes. */
inline constexpr std::size_t AesBlockSize = 16;

/** AES-128 key size in bytes. */
inline constexpr std::size_t AesKeySize = 16;

/** A single 16-byte AES block. */
using AesBlock = std::array<std::uint8_t, AesBlockSize>;

/** A 16-byte AES-128 key. */
using AesKey = std::array<std::uint8_t, AesKeySize>;

/** Which block-cipher implementation backs an Aes128 instance. */
enum class AesEngine
{
    /** Best available: AES-NI when the CPU has it, else T-tables. */
    Fast,
    /** T-table implementation with the wide-block fast path. */
    TTable,
    /** Byte-wise scalar implementation (correctness oracle). */
    Reference,
};

/**
 * AES-128 with precomputed round keys for both directions.
 */
class Aes128
{
  public:
    /** Expand @p key into encryption and decryption key schedules. */
    explicit Aes128(const AesKey &key,
                    AesEngine engine = AesEngine::Fast);

    /** Engine selected at construction. */
    AesEngine engine() const { return engine_; }

    /** True when this host's CPU offers AES instructions. */
    static bool hwSupported();

    /** True when this instance actually runs on AES hardware. */
    bool usesHw() const { return use_hw_; }

    /** Encrypt one 16-byte block: @p out may alias @p in. */
    void encryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /** Decrypt one 16-byte block: @p out may alias @p in. */
    void decryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /**
     * Encrypt @p n contiguous 16-byte blocks. The fast engines batch
     * blocks per inner loop (eight with AES-NI, four with T-tables)
     * so independent blocks pipeline; @p out may alias @p in.
     */
    void encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t n) const;

    /** Decrypt @p n contiguous 16-byte blocks; @p out may alias @p in. */
    void decryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t n) const;

    /** Convenience: encrypt an AesBlock value. */
    AesBlock
    encrypt(const AesBlock &in) const
    {
        AesBlock out;
        encryptBlock(in.data(), out.data());
        return out;
    }

    /** Convenience: decrypt an AesBlock value. */
    AesBlock
    decrypt(const AesBlock &in) const
    {
        AesBlock out;
        decryptBlock(in.data(), out.data());
        return out;
    }

  private:
    static constexpr int NumRounds = 10;

    void encryptBlockFast(const std::uint8_t *in,
                          std::uint8_t *out) const;
    void decryptBlockFast(const std::uint8_t *in,
                          std::uint8_t *out) const;
    void encryptBlocks4(const std::uint8_t *in, std::uint8_t *out) const;
    void decryptBlocks4(const std::uint8_t *in, std::uint8_t *out) const;
    void encryptBlockRef(const std::uint8_t *in,
                         std::uint8_t *out) const;
    void decryptBlockRef(const std::uint8_t *in,
                         std::uint8_t *out) const;

    /** Round keys as 4 words per round, 11 rounds. */
    std::array<std::uint32_t, 4 * (NumRounds + 1)> enc_keys_;
    /**
     * Equivalent-inverse-cipher round keys (InvMixColumns applied to
     * the middle rounds, order reversed) — used by the T-table and
     * AES-NI decryptors.
     */
    std::array<std::uint32_t, 4 * (NumRounds + 1)> dec_keys_;
    /**
     * The same schedules serialized big-endian per word, i.e. the
     * natural in-memory byte order AES instructions consume — kept
     * as plain bytes so this header needs no SIMD includes.
     */
    alignas(16) std::array<std::uint8_t, 16 * (NumRounds + 1)>
        enc_rk_bytes_;
    alignas(16) std::array<std::uint8_t, 16 * (NumRounds + 1)>
        dec_rk_bytes_;
    AesEngine engine_;
    bool use_hw_ = false;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_AES128_H_
