/**
 * @file
 * AES-128 block cipher (FIPS 197), implemented from scratch.
 *
 * This is the primitive under the OCB authenticated encryption used
 * on every HIX data path (Section 5.2 of the paper uses
 * OCB-AES-128). The implementation favours clarity over raw host
 * speed: simulated-time costs come from the platform timing model,
 * not from host wall-clock.
 */

#ifndef HIX_CRYPTO_AES128_H_
#define HIX_CRYPTO_AES128_H_

#include <array>
#include <cstdint>

#include "common/types.h"

namespace hix::crypto
{

/** AES block size in bytes. */
inline constexpr std::size_t AesBlockSize = 16;

/** AES-128 key size in bytes. */
inline constexpr std::size_t AesKeySize = 16;

/** A single 16-byte AES block. */
using AesBlock = std::array<std::uint8_t, AesBlockSize>;

/** A 16-byte AES-128 key. */
using AesKey = std::array<std::uint8_t, AesKeySize>;

/**
 * AES-128 with precomputed round keys for both directions.
 */
class Aes128
{
  public:
    /** Expand @p key into encryption and decryption key schedules. */
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block: @p out may alias @p in. */
    void encryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /** Decrypt one 16-byte block: @p out may alias @p in. */
    void decryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /** Convenience: encrypt an AesBlock value. */
    AesBlock
    encrypt(const AesBlock &in) const
    {
        AesBlock out;
        encryptBlock(in.data(), out.data());
        return out;
    }

    /** Convenience: decrypt an AesBlock value. */
    AesBlock
    decrypt(const AesBlock &in) const
    {
        AesBlock out;
        decryptBlock(in.data(), out.data());
        return out;
    }

  private:
    static constexpr int NumRounds = 10;
    /** Round keys as 4 words per round, 11 rounds. */
    std::array<std::uint32_t, 4 * (NumRounds + 1)> enc_keys_;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_AES128_H_
