/**
 * @file
 * OCB authenticated encryption (RFC 7253) over AES-128 with 128-bit
 * tags — the AEAD_AES_128_OCB_TAGLEN128 ciphersuite the paper uses
 * for all inter-enclave and DMA data protection (Section 5.2).
 *
 * The encryptInto/decryptInto paths are allocation-free: the L-table
 * is fully precomputed at construction and the bulk loops run four
 * AES blocks at a time through Aes128::encryptBlocks, so sealing a
 * message costs |M|/16 + O(1) AES calls and zero heap allocations.
 */

#ifndef HIX_CRYPTO_OCB_H_
#define HIX_CRYPTO_OCB_H_

#include <array>
#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "crypto/aes128.h"

namespace hix::crypto
{

/** OCB tag length in bytes (TAGLEN128). */
inline constexpr std::size_t OcbTagSize = 16;

/** Nonce length in bytes; RFC 7253 allows up to 15, we use 12. */
inline constexpr std::size_t OcbNonceSize = 12;

/** A 96-bit OCB nonce. */
using OcbNonce = std::array<std::uint8_t, OcbNonceSize>;

/** Build a nonce from a 32-bit stream id and 64-bit counter. */
OcbNonce makeNonce(std::uint32_t stream, std::uint64_t counter);

/**
 * OCB-AES-128 encryptor/decryptor bound to one key. The L-table is
 * precomputed at construction; each message costs |M|/16 + O(1) AES
 * calls.
 */
class Ocb
{
  public:
    explicit Ocb(const AesKey &key, AesEngine engine = AesEngine::Fast);

    /** Engine the underlying block cipher runs on. */
    AesEngine engine() const { return cipher_.engine(); }

    /**
     * Encrypt @p plaintext with associated data @p ad.
     * @return ciphertext || 16-byte tag.
     */
    Bytes encrypt(const OcbNonce &nonce, const Bytes &ad,
                  const Bytes &plaintext) const;

    /**
     * Raw-pointer variant: writes pt_len ciphertext bytes to @p out
     * and the tag to @p tag_out. Performs no heap allocation.
     */
    void encryptInto(const OcbNonce &nonce, const std::uint8_t *ad,
                     std::size_t ad_len, const std::uint8_t *pt,
                     std::size_t pt_len, std::uint8_t *out,
                     std::uint8_t *tag_out) const;

    /**
     * Decrypt and verify ciphertext || tag produced by encrypt().
     * @return the plaintext, or IntegrityFailure on tag mismatch.
     */
    Result<Bytes> decrypt(const OcbNonce &nonce, const Bytes &ad,
                          const Bytes &ciphertext_and_tag) const;

    /**
     * Raw-pointer variant: decrypts ct_len bytes into @p out and
     * verifies @p tag (constant-time compare). Performs no heap
     * allocation.
     */
    Status decryptInto(const OcbNonce &nonce, const std::uint8_t *ad,
                       std::size_t ad_len, const std::uint8_t *ct,
                       std::size_t ct_len, const std::uint8_t *tag,
                       std::uint8_t *out) const;

  private:
    /** L_0 .. L_63: enough for messages up to 2^64 blocks. */
    static constexpr std::size_t NumLValues = 64;

    AesBlock hashAd(const std::uint8_t *ad, std::size_t ad_len) const;
    AesBlock initialOffset(const OcbNonce &nonce) const;
    const AesBlock &
    lValue(std::size_t i) const
    {
        return l_[i];
    }

    Aes128 cipher_;
    AesBlock l_star_;
    AesBlock l_dollar_;
    /** Fully precomputed at construction — no per-message growth. */
    std::array<AesBlock, NumLValues> l_;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_OCB_H_
