/**
 * @file
 * HMAC-SHA256 (RFC 2104) and the HKDF-style key derivation the HIX
 * session setup uses to turn a Diffie-Hellman shared secret into
 * per-direction OCB keys.
 */

#ifndef HIX_CRYPTO_HMAC_H_
#define HIX_CRYPTO_HMAC_H_

#include <string>

#include "common/types.h"
#include "crypto/aes128.h"
#include "crypto/sha256.h"

namespace hix::crypto
{

/** HMAC-SHA256 of @p data under @p key. */
Sha256Digest hmacSha256(const Bytes &key, const Bytes &data);

/** HMAC-SHA256 accepting raw pointers. */
Sha256Digest hmacSha256(const std::uint8_t *key, std::size_t key_len,
                        const std::uint8_t *data, std::size_t data_len);

/**
 * Derive a 128-bit AES key from a shared secret and a textual label
 * (HKDF-expand style: HMAC(secret, label) truncated to 16 bytes).
 * Different labels yield independent keys from one DH secret.
 */
AesKey deriveAesKey(const Bytes &secret, const std::string &label);

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_HMAC_H_
