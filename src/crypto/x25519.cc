#include "crypto/x25519.h"

#include <cstring>

namespace hix::crypto
{

namespace
{

/**
 * Field element of GF(2^255 - 19) in five 51-bit limbs. All routines
 * keep limbs comfortably below 2^52 at rest so 128-bit products never
 * overflow.
 */
struct Fe
{
    std::uint64_t v[5];
};

constexpr std::uint64_t Mask51 = (1ull << 51) - 1;

Fe
feFromBytes(const std::uint8_t s[32])
{
    auto load64 = [&](int i) {
        std::uint64_t r = 0;
        for (int b = 7; b >= 0; --b)
            r = (r << 8) | s[i + b];
        return r;
    };
    Fe h;
    h.v[0] = load64(0) & Mask51;
    h.v[1] = (load64(6) >> 3) & Mask51;
    h.v[2] = (load64(12) >> 6) & Mask51;
    h.v[3] = (load64(19) >> 1) & Mask51;
    h.v[4] = (load64(24) >> 12) & Mask51;
    return h;
}

void
feToBytes(std::uint8_t s[32], const Fe &f)
{
    // Fully reduce mod p.
    std::uint64_t t[5];
    for (int i = 0; i < 5; ++i)
        t[i] = f.v[i];

    for (int pass = 0; pass < 3; ++pass) {
        t[1] += t[0] >> 51;
        t[0] &= Mask51;
        t[2] += t[1] >> 51;
        t[1] &= Mask51;
        t[3] += t[2] >> 51;
        t[2] &= Mask51;
        t[4] += t[3] >> 51;
        t[3] &= Mask51;
        t[0] += 19 * (t[4] >> 51);
        t[4] &= Mask51;
    }

    // Now 0 <= t < 2p; subtract p if needed via add 19 trick.
    std::uint64_t u[5];
    u[0] = t[0] + 19;
    u[1] = t[1] + (u[0] >> 51);
    u[0] &= Mask51;
    u[2] = t[2] + (u[1] >> 51);
    u[1] &= Mask51;
    u[3] = t[3] + (u[2] >> 51);
    u[2] &= Mask51;
    u[4] = t[4] + (u[3] >> 51);
    u[3] &= Mask51;
    // If u[4] overflowed 51 bits, t >= p; use t - p = u mod 2^255.
    const std::uint64_t carry = u[4] >> 51;
    u[4] &= Mask51;
    std::uint64_t mask = carry ? ~0ull : 0ull;
    std::uint64_t r[5];
    for (int i = 0; i < 5; ++i)
        r[i] = (u[i] & mask) | (t[i] & ~mask);

    std::uint8_t out[32] = {0};
    std::uint64_t acc = 0;
    int acc_bits = 0;
    int idx = 0;
    for (int limb = 0; limb < 5; ++limb) {
        acc |= r[limb] << acc_bits;
        acc_bits += 51;
        while (acc_bits >= 8 && idx < 32) {
            out[idx++] = static_cast<std::uint8_t>(acc);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if (idx < 32)
        out[idx] = static_cast<std::uint8_t>(acc);
    std::memcpy(s, out, 32);
}

Fe
feAdd(const Fe &a, const Fe &b)
{
    Fe r;
    for (int i = 0; i < 5; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
}

Fe
feSub(const Fe &a, const Fe &b)
{
    // a + 2p - b keeps limbs positive.
    Fe r;
    r.v[0] = a.v[0] + 0xfffffffffffdaull - b.v[0];
    r.v[1] = a.v[1] + 0xffffffffffffeull - b.v[1];
    r.v[2] = a.v[2] + 0xffffffffffffeull - b.v[2];
    r.v[3] = a.v[3] + 0xffffffffffffeull - b.v[3];
    r.v[4] = a.v[4] + 0xffffffffffffeull - b.v[4];
    return r;
}

Fe
feCarry(const Fe &a)
{
    Fe r = a;
    r.v[1] += r.v[0] >> 51;
    r.v[0] &= Mask51;
    r.v[2] += r.v[1] >> 51;
    r.v[1] &= Mask51;
    r.v[3] += r.v[2] >> 51;
    r.v[2] &= Mask51;
    r.v[4] += r.v[3] >> 51;
    r.v[3] &= Mask51;
    r.v[0] += 19 * (r.v[4] >> 51);
    r.v[4] &= Mask51;
    r.v[1] += r.v[0] >> 51;
    r.v[0] &= Mask51;
    return r;
}

Fe
feMul(const Fe &a, const Fe &b)
{
    using U128 = unsigned __int128;
    const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2],
                        a3 = a.v[3], a4 = a.v[4];
    const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2],
                        b3 = b.v[3], b4 = b.v[4];
    const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19,
                        b3_19 = b3 * 19, b4_19 = b4 * 19;

    U128 t0 = (U128)a0 * b0 + (U128)a1 * b4_19 + (U128)a2 * b3_19 +
              (U128)a3 * b2_19 + (U128)a4 * b1_19;
    U128 t1 = (U128)a0 * b1 + (U128)a1 * b0 + (U128)a2 * b4_19 +
              (U128)a3 * b3_19 + (U128)a4 * b2_19;
    U128 t2 = (U128)a0 * b2 + (U128)a1 * b1 + (U128)a2 * b0 +
              (U128)a3 * b4_19 + (U128)a4 * b3_19;
    U128 t3 = (U128)a0 * b3 + (U128)a1 * b2 + (U128)a2 * b1 +
              (U128)a3 * b0 + (U128)a4 * b4_19;
    U128 t4 = (U128)a0 * b4 + (U128)a1 * b3 + (U128)a2 * b2 +
              (U128)a3 * b1 + (U128)a4 * b0;

    Fe r;
    std::uint64_t c;
    r.v[0] = (std::uint64_t)t0 & Mask51;
    c = (std::uint64_t)(t0 >> 51);
    t1 += c;
    r.v[1] = (std::uint64_t)t1 & Mask51;
    c = (std::uint64_t)(t1 >> 51);
    t2 += c;
    r.v[2] = (std::uint64_t)t2 & Mask51;
    c = (std::uint64_t)(t2 >> 51);
    t3 += c;
    r.v[3] = (std::uint64_t)t3 & Mask51;
    c = (std::uint64_t)(t3 >> 51);
    t4 += c;
    r.v[4] = (std::uint64_t)t4 & Mask51;
    c = (std::uint64_t)(t4 >> 51);
    r.v[0] += c * 19;
    r.v[1] += r.v[0] >> 51;
    r.v[0] &= Mask51;
    return r;
}

Fe
feSquare(const Fe &a)
{
    return feMul(a, a);
}

Fe
feMul121665(const Fe &a)
{
    using U128 = unsigned __int128;
    Fe r;
    U128 t[5];
    for (int i = 0; i < 5; ++i)
        t[i] = (U128)a.v[i] * 121665;
    std::uint64_t c = 0;
    for (int i = 0; i < 5; ++i) {
        t[i] += c;
        r.v[i] = (std::uint64_t)t[i] & Mask51;
        c = (std::uint64_t)(t[i] >> 51);
    }
    r.v[0] += c * 19;
    r.v[1] += r.v[0] >> 51;
    r.v[0] &= Mask51;
    return r;
}

/** x^(p-2): exponent bits are all ones except bits 2 and 4. */
Fe
feInvert(const Fe &x)
{
    Fe z = x;
    bool started = false;
    Fe acc{};
    for (int bit = 254; bit >= 0; --bit) {
        if (started)
            acc = feSquare(acc);
        const bool set = !(bit == 2 || bit == 4);
        if (set) {
            if (started)
                acc = feMul(acc, z);
            else {
                acc = z;
                started = true;
            }
        }
    }
    return acc;
}

void
feCswap(std::uint64_t swap, Fe &a, Fe &b)
{
    const std::uint64_t mask = ~(swap - 1);  // swap ? ~0 : 0
    for (int i = 0; i < 5; ++i) {
        std::uint64_t t = mask & (a.v[i] ^ b.v[i]);
        a.v[i] ^= t;
        b.v[i] ^= t;
    }
}

}  // namespace

X25519Key
x25519BasePoint()
{
    X25519Key base{};
    base[0] = 9;
    return base;
}

X25519Key
x25519(const X25519Key &scalar, const X25519Key &u)
{
    std::uint8_t k[32];
    std::memcpy(k, scalar.data(), 32);
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;

    std::uint8_t u_bytes[32];
    std::memcpy(u_bytes, u.data(), 32);
    u_bytes[31] &= 127;  // mask the unused top bit per RFC 7748

    const Fe x1 = feFromBytes(u_bytes);
    Fe x2{{1, 0, 0, 0, 0}};
    Fe z2{{0, 0, 0, 0, 0}};
    Fe x3 = x1;
    Fe z3{{1, 0, 0, 0, 0}};
    std::uint64_t swap = 0;

    for (int t = 254; t >= 0; --t) {
        const std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        feCswap(swap, x2, x3);
        feCswap(swap, z2, z3);
        swap = k_t;

        Fe a = feCarry(feAdd(x2, z2));
        Fe aa = feSquare(a);
        Fe b = feCarry(feSub(x2, z2));
        Fe bb = feSquare(b);
        Fe e = feCarry(feSub(aa, bb));
        Fe c = feCarry(feAdd(x3, z3));
        Fe d = feCarry(feSub(x3, z3));
        Fe da = feMul(d, a);
        Fe cb = feMul(c, b);
        x3 = feSquare(feCarry(feAdd(da, cb)));
        z3 = feMul(x1, feSquare(feCarry(feSub(da, cb))));
        x2 = feMul(aa, bb);
        z2 = feMul(e, feCarry(feAdd(aa, feMul121665(e))));
    }
    feCswap(swap, x2, x3);
    feCswap(swap, z2, z3);

    Fe out = feMul(x2, feInvert(z2));
    X25519Key result;
    feToBytes(result.data(), out);
    return result;
}

X25519KeyPair
X25519KeyPair::generate(Rng &rng)
{
    X25519KeyPair pair;
    rng.fill(pair.privateKey.data(), pair.privateKey.size());
    pair.publicKey = x25519(pair.privateKey, x25519BasePoint());
    return pair;
}

X25519Key
x25519Shared(const X25519KeyPair &mine, const X25519Key &peer_public)
{
    return x25519(mine.privateKey, peer_public);
}

}  // namespace hix::crypto
