/**
 * @file
 * A small worker pool that seals/opens the pipelined data-path chunks
 * of one transfer in parallel host threads.
 *
 * The paper's Section 5.2 pipeline overlaps chunk encryption with the
 * DMA of the previous chunk in *simulated* time; this pool mirrors
 * that overlap in host wall-clock. Each chunk gets a deterministic
 * nonce (stream, base_counter + index), exactly the nonces the serial
 * loop would have used, so the produced ciphertexts and tags are
 * bit-identical to the serial path — parallelism is invisible to the
 * receiver and to any recorded trace.
 *
 * Host speed only: simulated-time costs still come from the platform
 * timing model.
 */

#ifndef HIX_CRYPTO_SEAL_POOL_H_
#define HIX_CRYPTO_SEAL_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "crypto/ocb.h"

namespace hix::crypto
{

/**
 * Persistent worker threads executing parallel-for style jobs. One
 * transfer's chunks are independent (distinct nonces, disjoint
 * buffers), so they spread across workers with no synchronization
 * beyond the job barrier.
 */
class SealPool
{
  public:
    /**
     * @param num_threads worker count; 0 picks a default from
     *        std::thread::hardware_concurrency (capped at 8).
     */
    explicit SealPool(std::size_t num_threads = 0);
    ~SealPool();

    SealPool(const SealPool &) = delete;
    SealPool &operator=(const SealPool &) = delete;

    /** Worker count (>= 1). */
    std::size_t threadCount() const { return worker_count_ + 1; }

    /**
     * Process-wide shared pool, created on first use. All transfers
     * share it; jobs from one transfer run back-to-back.
     */
    static SealPool &shared();

    /**
     * Run fn(0) .. fn(n-1) across the workers and the calling thread;
     * returns when all indices completed.
     *
     * Safe to call from several threads concurrently (the sharded
     * multi-user recorder runs one transfer per recording thread):
     * callers serialize on an internal mutex, so jobs run one at a
     * time but each still spreads over all workers. Results do not
     * depend on the caller arrival order — every job's outputs are a
     * pure function of its own inputs.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Seal @p pt_len bytes as ceil(pt_len / chunk_bytes) OCB messages.
     * Chunk i covers pt[i*chunk_bytes ...) (the last chunk may be
     * short) and is sealed with nonce (stream, base_counter + i) into
     * out + i*(chunk_bytes + OcbTagSize) as ciphertext || tag.
     * Bit-identical to sealing the chunks serially.
     */
    void sealChunks(const Ocb &ocb, std::uint32_t stream,
                    std::uint64_t base_counter, const std::uint8_t *pt,
                    std::size_t pt_len, std::size_t chunk_bytes,
                    std::uint8_t *out);

    /**
     * Inverse of sealChunks: opens chunked ciphertext || tag records
     * laid out as sealChunks produces them, writing pt_len plaintext
     * bytes to @p out. Returns the first chunk's failure (by index
     * order) if any tag check fails.
     */
    Status openChunks(const Ocb &ocb, std::uint32_t stream,
                      std::uint64_t base_counter, const std::uint8_t *ct,
                      std::size_t pt_len, std::size_t chunk_bytes,
                      std::uint8_t *out);

  private:
    void workerLoop(std::size_t worker_id);

    /** Serializes whole parallelFor jobs: the single job slot below
     * can only describe one job at a time, so concurrent callers take
     * turns. Always acquired before (and released after) mutex_. */
    std::mutex caller_mutex_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Number of spawned workers (threadCount() - 1). Fixed before the
     * first worker starts: workers must never read threads_.size(),
     * which the constructor is still growing while early workers run
     * (a data race TSan catches). */
    std::size_t worker_count_ = 0;
    std::vector<std::thread> threads_;

    // Current job state, all guarded by mutex_. Workers take static
    // index slices (i ≡ worker_id mod threadCount), so there is no
    // shared claim state to race on.
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t job_size_ = 0;
    std::size_t finished_workers_ = 0;
    std::uint64_t job_generation_ = 0;
    bool stop_ = false;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_SEAL_POOL_H_
