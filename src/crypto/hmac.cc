#include "crypto/hmac.h"

#include <cstring>

namespace hix::crypto
{

Sha256Digest
hmacSha256(const std::uint8_t *key, std::size_t key_len,
           const std::uint8_t *data, std::size_t data_len)
{
    constexpr std::size_t BlockSize = 64;
    std::uint8_t key_block[BlockSize] = {0};

    if (key_len > BlockSize) {
        Sha256Digest kd = Sha256::digest(key, key_len);
        std::memcpy(key_block, kd.data(), kd.size());
    } else {
        std::memcpy(key_block, key, key_len);
    }

    std::uint8_t ipad[BlockSize];
    std::uint8_t opad[BlockSize];
    for (std::size_t i = 0; i < BlockSize; ++i) {
        ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, BlockSize);
    inner.update(data, data_len);
    Sha256Digest inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(opad, BlockSize);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finalize();
}

Sha256Digest
hmacSha256(const Bytes &key, const Bytes &data)
{
    return hmacSha256(key.data(), key.size(), data.data(), data.size());
}

AesKey
deriveAesKey(const Bytes &secret, const std::string &label)
{
    Bytes info(label.begin(), label.end());
    Sha256Digest prk = hmacSha256(secret, info);
    AesKey key;
    std::memcpy(key.data(), prk.data(), key.size());
    return key;
}

}  // namespace hix::crypto
