/**
 * @file
 * X25519 Diffie-Hellman function (RFC 7748), implemented from
 * scratch over GF(2^255 - 19).
 *
 * The paper specifies Diffie-Hellman key exchange among the user
 * enclave, the GPU enclave, and the GPU (Section 4.4.1) without
 * fixing a group; this reproduction uses Curve25519 scalar
 * multiplication, whose outputs compose so the exchange extends to
 * three parties in two rounds (g^a -> g^ab -> g^abc).
 */

#ifndef HIX_CRYPTO_X25519_H_
#define HIX_CRYPTO_X25519_H_

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace hix::crypto
{

/** X25519 scalar / point encoding size. */
inline constexpr std::size_t X25519KeySize = 32;

/** A 32-byte X25519 scalar or u-coordinate. */
using X25519Key = std::array<std::uint8_t, X25519KeySize>;

/** The base point u = 9. */
X25519Key x25519BasePoint();

/**
 * Scalar multiplication: X25519(k, u). The scalar is clamped per
 * RFC 7748 before use.
 */
X25519Key x25519(const X25519Key &scalar, const X25519Key &u);

/** A private/public X25519 key pair. */
struct X25519KeyPair
{
    X25519Key privateKey;
    X25519Key publicKey;

    /** Generate from the given deterministic RNG. */
    static X25519KeyPair generate(Rng &rng);
};

/** Shared secret: X25519(my private, peer public). */
X25519Key x25519Shared(const X25519KeyPair &mine,
                       const X25519Key &peer_public);

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_X25519_H_
