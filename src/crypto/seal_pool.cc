#include "crypto/seal_pool.h"

#include <algorithm>

namespace hix::crypto
{

namespace
{

std::size_t
defaultThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 8);
}

}  // namespace

SealPool::SealPool(std::size_t num_threads)
{
    const std::size_t total =
        num_threads == 0 ? defaultThreads() : num_threads;
    // The calling thread works too, so spawn one fewer. worker_count_
    // must be final before the first emplace: workers read it for
    // their stride while the constructor is still growing threads_.
    worker_count_ = total > 0 ? total - 1 : 0;
    threads_.reserve(worker_count_);
    for (std::size_t t = 0; t < worker_count_; ++t)
        threads_.emplace_back([this, t] { workerLoop(t); });
}

SealPool::~SealPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &th : threads_)
        th.join();
}

SealPool &
SealPool::shared()
{
    static SealPool pool;
    return pool;
}

void
SealPool::workerLoop(std::size_t worker_id)
{
    const std::size_t stride = worker_count_ + 1;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        wake_.wait(lk, [&] { return stop_ || job_generation_ != seen; });
        if (stop_)
            return;
        seen = job_generation_;
        const auto *job = job_;
        const std::size_t n = job_size_;
        lk.unlock();
        // Static slice: chunks are near-equal cost, so index striding
        // balances without a shared claim counter.
        for (std::size_t i = worker_id; i < n; i += stride)
            (*job)(i);
        lk.lock();
        ++finished_workers_;
        done_.notify_all();
    }
}

void
SealPool::parallelFor(std::size_t n,
                      const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (worker_count_ == 0 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // One job at a time: the job slot is single-entry, and concurrent
    // callers (per-user recording threads) must not overwrite it.
    std::lock_guard<std::mutex> job_turn(caller_mutex_);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_ = &fn;
        job_size_ = n;
        finished_workers_ = 0;
        ++job_generation_;
    }
    wake_.notify_all();
    // The calling thread takes the last slice.
    const std::size_t stride = worker_count_ + 1;
    for (std::size_t i = worker_count_; i < n; i += stride)
        fn(i);
    std::unique_lock<std::mutex> lk(mutex_);
    done_.wait(lk, [&] { return finished_workers_ == worker_count_; });
    job_ = nullptr;
}

void
SealPool::sealChunks(const Ocb &ocb, std::uint32_t stream,
                     std::uint64_t base_counter, const std::uint8_t *pt,
                     std::size_t pt_len, std::size_t chunk_bytes,
                     std::uint8_t *out)
{
    if (pt_len == 0 || chunk_bytes == 0)
        return;
    const std::size_t nchunks = (pt_len + chunk_bytes - 1) / chunk_bytes;
    const std::size_t out_stride = chunk_bytes + OcbTagSize;
    parallelFor(nchunks, [&](std::size_t i) {
        const std::size_t off = i * chunk_bytes;
        const std::size_t len = std::min(chunk_bytes, pt_len - off);
        std::uint8_t *dst = out + i * out_stride;
        ocb.encryptInto(makeNonce(stream, base_counter + i), nullptr, 0,
                        pt + off, len, dst, dst + len);
    });
}

Status
SealPool::openChunks(const Ocb &ocb, std::uint32_t stream,
                     std::uint64_t base_counter, const std::uint8_t *ct,
                     std::size_t pt_len, std::size_t chunk_bytes,
                     std::uint8_t *out)
{
    if (pt_len == 0 || chunk_bytes == 0)
        return Status::ok();
    const std::size_t nchunks = (pt_len + chunk_bytes - 1) / chunk_bytes;
    const std::size_t ct_stride = chunk_bytes + OcbTagSize;
    std::vector<Status> results(nchunks);
    parallelFor(nchunks, [&](std::size_t i) {
        const std::size_t off = i * chunk_bytes;
        const std::size_t len = std::min(chunk_bytes, pt_len - off);
        const std::uint8_t *src = ct + i * ct_stride;
        results[i] = ocb.decryptInto(makeNonce(stream, base_counter + i),
                                     nullptr, 0, src, len, src + len,
                                     out + off);
    });
    for (const Status &st : results)
        if (!st.isOk())
            return st;
    return Status::ok();
}

}  // namespace hix::crypto
