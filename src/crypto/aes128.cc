#include "crypto/aes128.h"

#include <cstring>

#include "common/byte_utils.h"

// AES-NI path: compiled whenever the compiler supports per-function
// target attributes (GCC/Clang on x86-64); selected at run time via
// cpuid so the binary still runs on hosts without the extension.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HIX_AES_HW 1
#include <immintrin.h>
#endif

namespace hix::crypto
{

namespace
{

std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

/**
 * The S-box and its inverse are derived at startup from the GF(2^8)
 * definition in FIPS 197 (multiplicative inverse followed by the
 * affine transform) rather than pasted as literal tables; this makes
 * the construction self-checking. The four encrypt (Te) and four
 * decrypt (Td) T-tables — SubBytes, ShiftRows, and MixColumns fused
 * into one 32-bit lookup per state byte — are then built from the
 * S-box, so the fast path inherits the same provenance.
 */
struct AesTables
{
    std::uint8_t sbox[256];
    std::uint8_t inv[256];
    std::uint32_t te[4][256];
    std::uint32_t td[4][256];

    AesTables()
    {
        // Build log/antilog tables over GF(2^8) with generator 3.
        std::uint8_t pow[256];
        std::uint8_t log[256] = {0};
        std::uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            pow[i] = x;
            log[x] = static_cast<std::uint8_t>(i);
            // multiply x by 3 = x ^ (x * 2)
            std::uint8_t x2 = static_cast<std::uint8_t>(
                (x << 1) ^ ((x & 0x80) ? 0x1b : 0));
            x ^= x2;
        }
        pow[255] = pow[0];

        for (int i = 0; i < 256; ++i) {
            std::uint8_t inv_i =
                i == 0 ? 0 : pow[255 - log[static_cast<std::uint8_t>(i)]];
            // Affine transform: b ^= rot(b,1)^rot(b,2)^rot(b,3)^rot(b,4)
            // ^ 0x63, with rot = left-rotate.
            std::uint8_t b = inv_i;
            std::uint8_t res = 0x63;
            for (int r = 0; r < 5; ++r) {
                res ^= b;
                b = static_cast<std::uint8_t>((b << 1) | (b >> 7));
            }
            sbox[i] = res;
            inv[res] = static_cast<std::uint8_t>(i);
        }

        for (int i = 0; i < 256; ++i) {
            const std::uint8_t s = sbox[i];
            const std::uint8_t s2 = xtime(s);
            const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
            // Te0 holds the MixColumns column [02 01 01 03]·S[x] for a
            // row-0 byte; Te1..Te3 are byte rotations for rows 1..3.
            std::uint32_t w = (std::uint32_t(s2) << 24) |
                              (std::uint32_t(s) << 16) |
                              (std::uint32_t(s) << 8) | std::uint32_t(s3);
            for (int t = 0; t < 4; ++t) {
                te[t][i] = w;
                w = (w >> 8) | (w << 24);
            }

            const std::uint8_t is = inv[i];
            std::uint32_t v = (std::uint32_t(gmul(is, 14)) << 24) |
                              (std::uint32_t(gmul(is, 9)) << 16) |
                              (std::uint32_t(gmul(is, 13)) << 8) |
                              std::uint32_t(gmul(is, 11));
            for (int t = 0; t < 4; ++t) {
                td[t][i] = v;
                v = (v >> 8) | (v << 24);
            }
        }
    }
};

const AesTables tables;

std::uint32_t
subWord(std::uint32_t w)
{
    return (std::uint32_t(tables.sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(tables.sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(tables.sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(tables.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

/** InvMixColumns on one big-endian column word (key-schedule only). */
std::uint32_t
invMixWord(std::uint32_t w)
{
    const std::uint8_t a0 = static_cast<std::uint8_t>(w >> 24);
    const std::uint8_t a1 = static_cast<std::uint8_t>(w >> 16);
    const std::uint8_t a2 = static_cast<std::uint8_t>(w >> 8);
    const std::uint8_t a3 = static_cast<std::uint8_t>(w);
    return (std::uint32_t(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                          gmul(a3, 9))
            << 24) |
           (std::uint32_t(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                          gmul(a3, 13))
            << 16) |
           (std::uint32_t(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                          gmul(a3, 11))
            << 8) |
           std::uint32_t(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                         gmul(a3, 14));
}

// ----- Reference (scalar) round functions ------------------------------

void
addRoundKey(std::uint8_t state[16], const std::uint32_t *rk)
{
    for (int c = 0; c < 4; ++c) {
        std::uint32_t w = rk[c];
        state[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
        state[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
        state[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
        state[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
}

void
subBytes(std::uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = tables.sbox[state[i]];
}

void
invSubBytes(std::uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = tables.inv[state[i]];
}

void
shiftRows(std::uint8_t s[16])
{
    // State is column-major: s[4*c + r]. Row r rotates left by r.
    std::uint8_t t;
    // row 1
    t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // row 2
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // row 3 (rotate left by 3 == right by 1)
    t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

void
invShiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // row 1 rotates right by 1
    t = s[13];
    s[13] = s[9];
    s[9] = s[5];
    s[5] = s[1];
    s[1] = t;
    // row 2
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // row 3 rotates right by 3 == left by 1
    t = s[3];
    s[3] = s[7];
    s[7] = s[11];
    s[11] = s[15];
    s[15] = t;
}

void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^
                                           a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                           a2 ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                           xtime(a3) ^ a3);
        col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                           xtime(a3));
    }
}

void
invMixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

// ----- AES-NI engine ---------------------------------------------------

#ifdef HIX_AES_HW

/**
 * Encrypt @p n blocks with AES instructions, eight blocks per
 * iteration so the ~4-cycle AESENC latency is hidden by independent
 * chains. Round keys arrive as the 176 serialized schedule bytes.
 */
__attribute__((target("aes,sse2"))) void
hwEncryptBlocks(const std::uint8_t *rk_bytes, const std::uint8_t *in,
                std::uint8_t *out, std::size_t n)
{
    __m128i rk[11];
    for (int r = 0; r <= 10; ++r)
        rk[r] = _mm_load_si128(
            reinterpret_cast<const __m128i *>(rk_bytes + 16 * r));
    while (n >= 8) {
        __m128i s[8];
        for (int b = 0; b < 8; ++b)
            s[b] = _mm_xor_si128(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(in + 16 * b)),
                rk[0]);
        for (int r = 1; r < 10; ++r)
            for (int b = 0; b < 8; ++b)
                s[b] = _mm_aesenc_si128(s[b], rk[r]);
        for (int b = 0; b < 8; ++b)
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * b),
                             _mm_aesenclast_si128(s[b], rk[10]));
        in += 8 * AesBlockSize;
        out += 8 * AesBlockSize;
        n -= 8;
    }
    for (; n > 0; --n) {
        __m128i s = _mm_xor_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(in)),
            rk[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm_aesenc_si128(s, rk[r]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                         _mm_aesenclast_si128(s, rk[10]));
        in += AesBlockSize;
        out += AesBlockSize;
    }
}

/**
 * Decrypt with AESDEC. The serialized schedule is the
 * equivalent-inverse-cipher one (middle rounds already through
 * InvMixColumns), which is exactly the form AESDEC consumes.
 */
__attribute__((target("aes,sse2"))) void
hwDecryptBlocks(const std::uint8_t *rk_bytes, const std::uint8_t *in,
                std::uint8_t *out, std::size_t n)
{
    __m128i rk[11];
    for (int r = 0; r <= 10; ++r)
        rk[r] = _mm_load_si128(
            reinterpret_cast<const __m128i *>(rk_bytes + 16 * r));
    while (n >= 8) {
        __m128i s[8];
        for (int b = 0; b < 8; ++b)
            s[b] = _mm_xor_si128(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(in + 16 * b)),
                rk[0]);
        for (int r = 1; r < 10; ++r)
            for (int b = 0; b < 8; ++b)
                s[b] = _mm_aesdec_si128(s[b], rk[r]);
        for (int b = 0; b < 8; ++b)
            _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * b),
                             _mm_aesdeclast_si128(s[b], rk[10]));
        in += 8 * AesBlockSize;
        out += 8 * AesBlockSize;
        n -= 8;
    }
    for (; n > 0; --n) {
        __m128i s = _mm_xor_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(in)),
            rk[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm_aesdec_si128(s, rk[r]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                         _mm_aesdeclast_si128(s, rk[10]));
        in += AesBlockSize;
        out += AesBlockSize;
    }
}

#endif  // HIX_AES_HW

}  // namespace

bool
Aes128::hwSupported()
{
#ifdef HIX_AES_HW
    return __builtin_cpu_supports("aes") != 0;
#else
    return false;
#endif
}

Aes128::Aes128(const AesKey &key, AesEngine engine) : engine_(engine)
{
    // FIPS 197 key expansion for Nk = 4, Nr = 10.
    for (int i = 0; i < 4; ++i) {
        enc_keys_[i] = (std::uint32_t(key[4 * i]) << 24) |
                       (std::uint32_t(key[4 * i + 1]) << 16) |
                       (std::uint32_t(key[4 * i + 2]) << 8) |
                       std::uint32_t(key[4 * i + 3]);
    }
    std::uint32_t rcon = 0x01000000;
    for (int i = 4; i < 4 * (NumRounds + 1); ++i) {
        std::uint32_t temp = enc_keys_[i - 1];
        if (i % 4 == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            rcon = std::uint32_t(xtime(std::uint8_t(rcon >> 24))) << 24;
        }
        enc_keys_[i] = enc_keys_[i - 4] ^ temp;
    }

    // Equivalent inverse cipher: reverse the round order and push the
    // InvMixColumns through the middle round keys so decryption can
    // use T-tables in the same shape as encryption.
    for (int round = 0; round <= NumRounds; ++round) {
        for (int c = 0; c < 4; ++c) {
            std::uint32_t w = enc_keys_[4 * (NumRounds - round) + c];
            if (round != 0 && round != NumRounds)
                w = invMixWord(w);
            dec_keys_[4 * round + c] = w;
        }
    }

    // Serialize both schedules into the byte order AES instructions
    // consume; harmless (and unused) on non-AES-NI hosts.
    for (int i = 0; i < 4 * (NumRounds + 1); ++i) {
        storeBE32(enc_rk_bytes_.data() + 4 * i, enc_keys_[i]);
        storeBE32(dec_rk_bytes_.data() + 4 * i, dec_keys_[i]);
    }
    use_hw_ = engine_ == AesEngine::Fast && hwSupported();
}

// ----- Fast (T-table) engine -------------------------------------------

#define HIX_AES_ENC_ROUND(d0, d1, d2, d3, s0, s1, s2, s3, rk)            \
    do {                                                                 \
        d0 = tables.te[0][(s0) >> 24] ^                                  \
             tables.te[1][((s1) >> 16) & 0xff] ^                         \
             tables.te[2][((s2) >> 8) & 0xff] ^                          \
             tables.te[3][(s3) & 0xff] ^ (rk)[0];                        \
        d1 = tables.te[0][(s1) >> 24] ^                                  \
             tables.te[1][((s2) >> 16) & 0xff] ^                         \
             tables.te[2][((s3) >> 8) & 0xff] ^                          \
             tables.te[3][(s0) & 0xff] ^ (rk)[1];                        \
        d2 = tables.te[0][(s2) >> 24] ^                                  \
             tables.te[1][((s3) >> 16) & 0xff] ^                         \
             tables.te[2][((s0) >> 8) & 0xff] ^                          \
             tables.te[3][(s1) & 0xff] ^ (rk)[2];                        \
        d3 = tables.te[0][(s3) >> 24] ^                                  \
             tables.te[1][((s0) >> 16) & 0xff] ^                         \
             tables.te[2][((s1) >> 8) & 0xff] ^                          \
             tables.te[3][(s2) & 0xff] ^ (rk)[3];                        \
    } while (0)

#define HIX_AES_DEC_ROUND(d0, d1, d2, d3, s0, s1, s2, s3, rk)            \
    do {                                                                 \
        d0 = tables.td[0][(s0) >> 24] ^                                  \
             tables.td[1][((s3) >> 16) & 0xff] ^                         \
             tables.td[2][((s2) >> 8) & 0xff] ^                          \
             tables.td[3][(s1) & 0xff] ^ (rk)[0];                        \
        d1 = tables.td[0][(s1) >> 24] ^                                  \
             tables.td[1][((s0) >> 16) & 0xff] ^                         \
             tables.td[2][((s3) >> 8) & 0xff] ^                          \
             tables.td[3][(s2) & 0xff] ^ (rk)[1];                        \
        d2 = tables.td[0][(s2) >> 24] ^                                  \
             tables.td[1][((s1) >> 16) & 0xff] ^                         \
             tables.td[2][((s0) >> 8) & 0xff] ^                          \
             tables.td[3][(s3) & 0xff] ^ (rk)[2];                        \
        d3 = tables.td[0][(s3) >> 24] ^                                  \
             tables.td[1][((s2) >> 16) & 0xff] ^                         \
             tables.td[2][((s1) >> 8) & 0xff] ^                          \
             tables.td[3][(s0) & 0xff] ^ (rk)[3];                        \
    } while (0)

void
Aes128::encryptBlockFast(const std::uint8_t *in, std::uint8_t *out) const
{
    const std::uint32_t *rk = enc_keys_.data();
    std::uint32_t s0 = loadBE32(in) ^ rk[0];
    std::uint32_t s1 = loadBE32(in + 4) ^ rk[1];
    std::uint32_t s2 = loadBE32(in + 8) ^ rk[2];
    std::uint32_t s3 = loadBE32(in + 12) ^ rk[3];
    std::uint32_t t0, t1, t2, t3;
    for (int round = 1; round < NumRounds; ++round) {
        HIX_AES_ENC_ROUND(t0, t1, t2, t3, s0, s1, s2, s3,
                          rk + 4 * round);
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }
    const std::uint32_t *lk = rk + 4 * NumRounds;
    const auto *sb = tables.sbox;
    std::uint32_t o0 = (std::uint32_t(sb[s0 >> 24]) << 24) |
                       (std::uint32_t(sb[(s1 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s2 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s3 & 0xff]);
    std::uint32_t o1 = (std::uint32_t(sb[s1 >> 24]) << 24) |
                       (std::uint32_t(sb[(s2 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s3 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s0 & 0xff]);
    std::uint32_t o2 = (std::uint32_t(sb[s2 >> 24]) << 24) |
                       (std::uint32_t(sb[(s3 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s0 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s1 & 0xff]);
    std::uint32_t o3 = (std::uint32_t(sb[s3 >> 24]) << 24) |
                       (std::uint32_t(sb[(s0 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s1 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s2 & 0xff]);
    storeBE32(out, o0 ^ lk[0]);
    storeBE32(out + 4, o1 ^ lk[1]);
    storeBE32(out + 8, o2 ^ lk[2]);
    storeBE32(out + 12, o3 ^ lk[3]);
}

void
Aes128::decryptBlockFast(const std::uint8_t *in, std::uint8_t *out) const
{
    const std::uint32_t *rk = dec_keys_.data();
    std::uint32_t s0 = loadBE32(in) ^ rk[0];
    std::uint32_t s1 = loadBE32(in + 4) ^ rk[1];
    std::uint32_t s2 = loadBE32(in + 8) ^ rk[2];
    std::uint32_t s3 = loadBE32(in + 12) ^ rk[3];
    std::uint32_t t0, t1, t2, t3;
    for (int round = 1; round < NumRounds; ++round) {
        HIX_AES_DEC_ROUND(t0, t1, t2, t3, s0, s1, s2, s3,
                          rk + 4 * round);
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }
    const std::uint32_t *lk = rk + 4 * NumRounds;
    const auto *is = tables.inv;
    std::uint32_t o0 = (std::uint32_t(is[s0 >> 24]) << 24) |
                       (std::uint32_t(is[(s3 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(s2 >> 8) & 0xff]) << 8) |
                       std::uint32_t(is[s1 & 0xff]);
    std::uint32_t o1 = (std::uint32_t(is[s1 >> 24]) << 24) |
                       (std::uint32_t(is[(s0 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(s3 >> 8) & 0xff]) << 8) |
                       std::uint32_t(is[s2 & 0xff]);
    std::uint32_t o2 = (std::uint32_t(is[s2 >> 24]) << 24) |
                       (std::uint32_t(is[(s1 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(s0 >> 8) & 0xff]) << 8) |
                       std::uint32_t(is[s3 & 0xff]);
    std::uint32_t o3 = (std::uint32_t(is[s3 >> 24]) << 24) |
                       (std::uint32_t(is[(s2 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(is[(s1 >> 8) & 0xff]) << 8) |
                       std::uint32_t(is[s0 & 0xff]);
    storeBE32(out, o0 ^ lk[0]);
    storeBE32(out + 4, o1 ^ lk[1]);
    storeBE32(out + 8, o2 ^ lk[2]);
    storeBE32(out + 12, o3 ^ lk[3]);
}

void
Aes128::encryptBlocks4(const std::uint8_t *in, std::uint8_t *out) const
{
    // Four independent states interleaved so the four T-table lookup
    // chains overlap instead of serializing on one block's
    // round-to-round dependency.
    const std::uint32_t *rk = enc_keys_.data();
    std::uint32_t s[16], t[16];
    for (int b = 0; b < 4; ++b)
        for (int w = 0; w < 4; ++w)
            s[4 * b + w] = loadBE32(in + 16 * b + 4 * w) ^ rk[w];
    for (int round = 1; round < NumRounds; ++round) {
        const std::uint32_t *k = rk + 4 * round;
        for (int b = 0; b < 4; ++b)
            HIX_AES_ENC_ROUND(t[4 * b + 0], t[4 * b + 1], t[4 * b + 2],
                              t[4 * b + 3], s[4 * b + 0], s[4 * b + 1],
                              s[4 * b + 2], s[4 * b + 3], k);
        std::memcpy(s, t, sizeof(s));
    }
    const std::uint32_t *lk = rk + 4 * NumRounds;
    const auto *sb = tables.sbox;
    for (int b = 0; b < 4; ++b) {
        const std::uint32_t s0 = s[4 * b], s1 = s[4 * b + 1],
                            s2 = s[4 * b + 2], s3 = s[4 * b + 3];
        storeBE32(out + 16 * b,
                  ((std::uint32_t(sb[s0 >> 24]) << 24) |
                   (std::uint32_t(sb[(s1 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(sb[(s2 >> 8) & 0xff]) << 8) |
                   std::uint32_t(sb[s3 & 0xff])) ^
                      lk[0]);
        storeBE32(out + 16 * b + 4,
                  ((std::uint32_t(sb[s1 >> 24]) << 24) |
                   (std::uint32_t(sb[(s2 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(sb[(s3 >> 8) & 0xff]) << 8) |
                   std::uint32_t(sb[s0 & 0xff])) ^
                      lk[1]);
        storeBE32(out + 16 * b + 8,
                  ((std::uint32_t(sb[s2 >> 24]) << 24) |
                   (std::uint32_t(sb[(s3 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(sb[(s0 >> 8) & 0xff]) << 8) |
                   std::uint32_t(sb[s1 & 0xff])) ^
                      lk[2]);
        storeBE32(out + 16 * b + 12,
                  ((std::uint32_t(sb[s3 >> 24]) << 24) |
                   (std::uint32_t(sb[(s0 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(sb[(s1 >> 8) & 0xff]) << 8) |
                   std::uint32_t(sb[s2 & 0xff])) ^
                      lk[3]);
    }
}

void
Aes128::decryptBlocks4(const std::uint8_t *in, std::uint8_t *out) const
{
    const std::uint32_t *rk = dec_keys_.data();
    std::uint32_t s[16], t[16];
    for (int b = 0; b < 4; ++b)
        for (int w = 0; w < 4; ++w)
            s[4 * b + w] = loadBE32(in + 16 * b + 4 * w) ^ rk[w];
    for (int round = 1; round < NumRounds; ++round) {
        const std::uint32_t *k = rk + 4 * round;
        for (int b = 0; b < 4; ++b)
            HIX_AES_DEC_ROUND(t[4 * b + 0], t[4 * b + 1], t[4 * b + 2],
                              t[4 * b + 3], s[4 * b + 0], s[4 * b + 1],
                              s[4 * b + 2], s[4 * b + 3], k);
        std::memcpy(s, t, sizeof(s));
    }
    const std::uint32_t *lk = rk + 4 * NumRounds;
    const auto *is = tables.inv;
    for (int b = 0; b < 4; ++b) {
        const std::uint32_t s0 = s[4 * b], s1 = s[4 * b + 1],
                            s2 = s[4 * b + 2], s3 = s[4 * b + 3];
        storeBE32(out + 16 * b,
                  ((std::uint32_t(is[s0 >> 24]) << 24) |
                   (std::uint32_t(is[(s3 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(is[(s2 >> 8) & 0xff]) << 8) |
                   std::uint32_t(is[s1 & 0xff])) ^
                      lk[0]);
        storeBE32(out + 16 * b + 4,
                  ((std::uint32_t(is[s1 >> 24]) << 24) |
                   (std::uint32_t(is[(s0 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(is[(s3 >> 8) & 0xff]) << 8) |
                   std::uint32_t(is[s2 & 0xff])) ^
                      lk[1]);
        storeBE32(out + 16 * b + 8,
                  ((std::uint32_t(is[s2 >> 24]) << 24) |
                   (std::uint32_t(is[(s1 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(is[(s0 >> 8) & 0xff]) << 8) |
                   std::uint32_t(is[s3 & 0xff])) ^
                      lk[2]);
        storeBE32(out + 16 * b + 12,
                  ((std::uint32_t(is[s3 >> 24]) << 24) |
                   (std::uint32_t(is[(s2 >> 16) & 0xff]) << 16) |
                   (std::uint32_t(is[(s1 >> 8) & 0xff]) << 8) |
                   std::uint32_t(is[s0 & 0xff])) ^
                      lk[3]);
    }
}

// ----- Reference (scalar) engine ---------------------------------------

void
Aes128::encryptBlockRef(const std::uint8_t *in, std::uint8_t *out) const
{
    std::uint8_t state[16];
    std::memcpy(state, in, 16);

    addRoundKey(state, &enc_keys_[0]);
    for (int round = 1; round < NumRounds; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, &enc_keys_[4 * round]);
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, &enc_keys_[4 * NumRounds]);

    std::memcpy(out, state, 16);
}

void
Aes128::decryptBlockRef(const std::uint8_t *in, std::uint8_t *out) const
{
    std::uint8_t state[16];
    std::memcpy(state, in, 16);

    addRoundKey(state, &enc_keys_[4 * NumRounds]);
    for (int round = NumRounds - 1; round >= 1; --round) {
        invShiftRows(state);
        invSubBytes(state);
        addRoundKey(state, &enc_keys_[4 * round]);
        invMixColumns(state);
    }
    invShiftRows(state);
    invSubBytes(state);
    addRoundKey(state, &enc_keys_[0]);

    std::memcpy(out, state, 16);
}

// ----- Public dispatch -------------------------------------------------

void
Aes128::encryptBlock(const std::uint8_t *in, std::uint8_t *out) const
{
#ifdef HIX_AES_HW
    if (use_hw_) {
        hwEncryptBlocks(enc_rk_bytes_.data(), in, out, 1);
        return;
    }
#endif
    if (engine_ == AesEngine::Reference)
        encryptBlockRef(in, out);
    else
        encryptBlockFast(in, out);
}

void
Aes128::decryptBlock(const std::uint8_t *in, std::uint8_t *out) const
{
#ifdef HIX_AES_HW
    if (use_hw_) {
        hwDecryptBlocks(dec_rk_bytes_.data(), in, out, 1);
        return;
    }
#endif
    if (engine_ == AesEngine::Reference)
        decryptBlockRef(in, out);
    else
        decryptBlockFast(in, out);
}

void
Aes128::encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                      std::size_t n) const
{
#ifdef HIX_AES_HW
    if (use_hw_) {
        hwEncryptBlocks(enc_rk_bytes_.data(), in, out, n);
        return;
    }
#endif
    if (engine_ != AesEngine::Reference) {
        while (n >= 4) {
            encryptBlocks4(in, out);
            in += 4 * AesBlockSize;
            out += 4 * AesBlockSize;
            n -= 4;
        }
    }
    for (; n > 0; --n) {
        encryptBlock(in, out);
        in += AesBlockSize;
        out += AesBlockSize;
    }
}

void
Aes128::decryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                      std::size_t n) const
{
#ifdef HIX_AES_HW
    if (use_hw_) {
        hwDecryptBlocks(dec_rk_bytes_.data(), in, out, n);
        return;
    }
#endif
    if (engine_ != AesEngine::Reference) {
        while (n >= 4) {
            decryptBlocks4(in, out);
            in += 4 * AesBlockSize;
            out += 4 * AesBlockSize;
            n -= 4;
        }
    }
    for (; n > 0; --n) {
        decryptBlock(in, out);
        in += AesBlockSize;
        out += AesBlockSize;
    }
}

}  // namespace hix::crypto
