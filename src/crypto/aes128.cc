#include "crypto/aes128.h"

#include <cstring>

namespace hix::crypto
{

namespace
{

/**
 * The S-box and its inverse are derived at startup from the GF(2^8)
 * definition in FIPS 197 (multiplicative inverse followed by the
 * affine transform) rather than pasted as literal tables; this makes
 * the construction self-checking.
 */
struct SboxTables
{
    std::uint8_t sbox[256];
    std::uint8_t inv[256];

    SboxTables()
    {
        // Build log/antilog tables over GF(2^8) with generator 3.
        std::uint8_t pow[256];
        std::uint8_t log[256] = {0};
        std::uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            pow[i] = x;
            log[x] = static_cast<std::uint8_t>(i);
            // multiply x by 3 = x ^ (x * 2)
            std::uint8_t x2 = static_cast<std::uint8_t>(
                (x << 1) ^ ((x & 0x80) ? 0x1b : 0));
            x ^= x2;
        }
        pow[255] = pow[0];

        for (int i = 0; i < 256; ++i) {
            std::uint8_t inv_i =
                i == 0 ? 0 : pow[255 - log[static_cast<std::uint8_t>(i)]];
            // Affine transform: b ^= rot(b,1)^rot(b,2)^rot(b,3)^rot(b,4)
            // ^ 0x63, with rot = left-rotate.
            std::uint8_t b = inv_i;
            std::uint8_t res = 0x63;
            for (int r = 0; r < 5; ++r) {
                res ^= b;
                b = static_cast<std::uint8_t>((b << 1) | (b >> 7));
            }
            sbox[i] = res;
            inv[res] = static_cast<std::uint8_t>(i);
        }
    }
};

const SboxTables tables;

std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

std::uint32_t
subWord(std::uint32_t w)
{
    return (std::uint32_t(tables.sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(tables.sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(tables.sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(tables.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

void
addRoundKey(std::uint8_t state[16], const std::uint32_t *rk)
{
    for (int c = 0; c < 4; ++c) {
        std::uint32_t w = rk[c];
        state[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
        state[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
        state[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
        state[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
}

void
subBytes(std::uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = tables.sbox[state[i]];
}

void
invSubBytes(std::uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = tables.inv[state[i]];
}

void
shiftRows(std::uint8_t s[16])
{
    // State is column-major: s[4*c + r]. Row r rotates left by r.
    std::uint8_t t;
    // row 1
    t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // row 2
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // row 3 (rotate left by 3 == right by 1)
    t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

void
invShiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // row 1 rotates right by 1
    t = s[13];
    s[13] = s[9];
    s[9] = s[5];
    s[5] = s[1];
    s[1] = t;
    // row 2
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // row 3 rotates right by 3 == left by 1
    t = s[3];
    s[3] = s[7];
    s[7] = s[11];
    s[11] = s[15];
    s[15] = t;
}

void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^
                                           a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                           a2 ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                           xtime(a3) ^ a3);
        col[3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                           xtime(a3));
    }
}

void
invMixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

}  // namespace

Aes128::Aes128(const AesKey &key)
{
    // FIPS 197 key expansion for Nk = 4, Nr = 10.
    for (int i = 0; i < 4; ++i) {
        enc_keys_[i] = (std::uint32_t(key[4 * i]) << 24) |
                       (std::uint32_t(key[4 * i + 1]) << 16) |
                       (std::uint32_t(key[4 * i + 2]) << 8) |
                       std::uint32_t(key[4 * i + 3]);
    }
    std::uint32_t rcon = 0x01000000;
    for (int i = 4; i < 4 * (NumRounds + 1); ++i) {
        std::uint32_t temp = enc_keys_[i - 1];
        if (i % 4 == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            rcon = std::uint32_t(xtime(std::uint8_t(rcon >> 24))) << 24;
        }
        enc_keys_[i] = enc_keys_[i - 4] ^ temp;
    }
}

void
Aes128::encryptBlock(const std::uint8_t *in, std::uint8_t *out) const
{
    std::uint8_t state[16];
    std::memcpy(state, in, 16);

    addRoundKey(state, &enc_keys_[0]);
    for (int round = 1; round < NumRounds; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, &enc_keys_[4 * round]);
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, &enc_keys_[4 * NumRounds]);

    std::memcpy(out, state, 16);
}

void
Aes128::decryptBlock(const std::uint8_t *in, std::uint8_t *out) const
{
    std::uint8_t state[16];
    std::memcpy(state, in, 16);

    addRoundKey(state, &enc_keys_[4 * NumRounds]);
    for (int round = NumRounds - 1; round >= 1; --round) {
        invShiftRows(state);
        invSubBytes(state);
        addRoundKey(state, &enc_keys_[4 * round]);
        invMixColumns(state);
    }
    invShiftRows(state);
    invSubBytes(state);
    addRoundKey(state, &enc_keys_[0]);

    std::memcpy(out, state, 16);
}

}  // namespace hix::crypto
