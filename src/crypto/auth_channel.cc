#include "crypto/auth_channel.h"

namespace hix::crypto
{

AuthChannel::AuthChannel(const AesKey &key, std::uint32_t send_stream,
                         std::uint32_t recv_stream)
    : ocb_(key), send_stream_(send_stream), recv_stream_(recv_stream)
{
}

SealedMessage
AuthChannel::seal(const Bytes &plaintext, const Bytes &ad)
{
    SealedMessage msg;
    sealInto(plaintext.data(), plaintext.size(), ad.data(), ad.size(),
             &msg);
    return msg;
}

void
AuthChannel::sealInto(const std::uint8_t *pt, std::size_t pt_len,
                      const std::uint8_t *ad, std::size_t ad_len,
                      SealedMessage *msg)
{
    msg->stream = send_stream_;
    msg->sequence = send_seq_++;
    msg->body.resize(pt_len + OcbTagSize);
    ocb_.encryptInto(makeNonce(msg->stream, msg->sequence), ad, ad_len,
                     pt, pt_len, msg->body.data(),
                     msg->body.data() + pt_len);
}

Result<Bytes>
AuthChannel::open(const SealedMessage &msg, const Bytes &ad)
{
    Bytes out;
    Status st = openInto(msg, ad.data(), ad.size(), &out);
    if (!st.isOk())
        return st;
    return out;
}

Status
AuthChannel::openInto(const SealedMessage &msg, const std::uint8_t *ad,
                      std::size_t ad_len, Bytes *plaintext_out)
{
    if (msg.stream != recv_stream_)
        return errInvalidArgument("message from unexpected stream");
    if (msg.sequence <= recv_seq_)
        return errReplayDetected("stale sequence number");
    if (msg.body.size() < OcbTagSize)
        return errInvalidArgument("ciphertext shorter than tag");
    const std::size_t ct_len = msg.body.size() - OcbTagSize;
    plaintext_out->resize(ct_len);
    Status st = ocb_.decryptInto(
        makeNonce(msg.stream, msg.sequence), ad, ad_len,
        msg.body.data(), ct_len, msg.body.data() + ct_len,
        plaintext_out->data());
    if (!st.isOk())
        return st;
    recv_seq_ = msg.sequence;
    return Status::ok();
}

}  // namespace hix::crypto
