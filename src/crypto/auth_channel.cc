#include "crypto/auth_channel.h"

namespace hix::crypto
{

AuthChannel::AuthChannel(const AesKey &key, std::uint32_t send_stream,
                         std::uint32_t recv_stream)
    : ocb_(key), send_stream_(send_stream), recv_stream_(recv_stream)
{
}

SealedMessage
AuthChannel::seal(const Bytes &plaintext, const Bytes &ad)
{
    SealedMessage msg;
    msg.stream = send_stream_;
    msg.sequence = send_seq_++;
    msg.body =
        ocb_.encrypt(makeNonce(msg.stream, msg.sequence), ad, plaintext);
    return msg;
}

Result<Bytes>
AuthChannel::open(const SealedMessage &msg, const Bytes &ad)
{
    if (msg.stream != recv_stream_)
        return errInvalidArgument("message from unexpected stream");
    if (msg.sequence <= recv_seq_)
        return errReplayDetected("stale sequence number");
    auto plain = ocb_.decrypt(makeNonce(msg.stream, msg.sequence), ad,
                              msg.body);
    if (!plain.isOk())
        return plain.status();
    recv_seq_ = msg.sequence;
    return plain;
}

}  // namespace hix::crypto
