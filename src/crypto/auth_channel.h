/**
 * @file
 * Authenticated, replay-protected message sealing.
 *
 * One AuthChannel endpoint seals (or opens) messages with OCB-AES-128
 * under a session key, using an incrementing nonce per direction — the
 * scheme Section 5.5 of the paper describes for inter-enclave
 * communication ("an incrementing nonce is also used to ensure
 * freshness of the encryption messages and to prevent replay
 * attacks").
 */

#ifndef HIX_CRYPTO_AUTH_CHANNEL_H_
#define HIX_CRYPTO_AUTH_CHANNEL_H_

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "crypto/ocb.h"

namespace hix::crypto
{

/** A sealed message as it appears on untrusted shared memory. */
struct SealedMessage
{
    /** Stream id (sender direction), bound into the nonce. */
    std::uint32_t stream = 0;
    /** Monotonic per-stream sequence number, bound into the nonce. */
    std::uint64_t sequence = 0;
    /** ciphertext || 16-byte tag. */
    Bytes body;
};

/**
 * One endpoint of a bidirectional authenticated channel.
 *
 * Both endpoints construct an AuthChannel from the same key; the
 * @p send_stream / @p recv_stream ids must mirror each other so the
 * two directions never share a nonce.
 */
class AuthChannel
{
  public:
    AuthChannel(const AesKey &key, std::uint32_t send_stream,
                std::uint32_t recv_stream);

    /** Seal @p plaintext with optional associated data @p ad. */
    SealedMessage seal(const Bytes &plaintext, const Bytes &ad = {});

    /**
     * Zero-allocation seal: writes stream/sequence and ciphertext ||
     * tag into @p msg, reusing msg->body's capacity. Once @p msg has
     * been warmed up to the largest message size, steady-state
     * sealing performs no heap allocation.
     */
    void sealInto(const std::uint8_t *pt, std::size_t pt_len,
                  const std::uint8_t *ad, std::size_t ad_len,
                  SealedMessage *msg);

    /**
     * Verify and decrypt a sealed message.
     *
     * Rejects tag mismatches (IntegrityFailure), wrong-stream
     * messages (InvalidArgument), and any sequence number at or below
     * the last accepted one (ReplayDetected).
     */
    Result<Bytes> open(const SealedMessage &msg, const Bytes &ad = {});

    /**
     * Zero-allocation open: decrypts into @p plaintext_out (resized
     * in place, so a warmed-up buffer is reused without allocating).
     * Same rejection rules as open().
     */
    Status openInto(const SealedMessage &msg, const std::uint8_t *ad,
                    std::size_t ad_len, Bytes *plaintext_out);

    /** Sequence number the next seal() will use. */
    std::uint64_t nextSendSequence() const { return send_seq_; }

    /** Highest sequence number accepted so far (0 = none). */
    std::uint64_t lastAcceptedSequence() const { return recv_seq_; }

  private:
    Ocb ocb_;
    std::uint32_t send_stream_;
    std::uint32_t recv_stream_;
    std::uint64_t send_seq_ = 1;
    std::uint64_t recv_seq_ = 0;
};

}  // namespace hix::crypto

#endif  // HIX_CRYPTO_AUTH_CHANNEL_H_
