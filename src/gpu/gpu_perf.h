/**
 * @file
 * GPU performance envelope, calibrated to the NVIDIA GeForce GTX 580
 * the paper evaluates on (Table 3): Fermi GF110, 512 CUDA cores at
 * 1544 MHz shader clock, 192.4 GB/s GDDR5, 1.5 GiB device memory.
 * Workload cost models combine these constants.
 */

#ifndef HIX_GPU_GPU_PERF_H_
#define HIX_GPU_GPU_PERF_H_

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "common/units.h"

namespace hix::gpu
{

/** Static performance constants of the modelled GPU. */
struct GpuPerfModel
{
    /** Device memory bandwidth (GDDR5, 384-bit @ 4008 MT/s). */
    std::uint64_t memBwBps = 192ull * 1000 * 1000 * 1000;
    /** Peak FP32 rate: 512 cores * 2 ops * 1.544 GHz ~ 1581 GFLOP/s. */
    double peakFp32Gflops = 1581.0;
    /** Sustained fraction of peak for well-tuned dense kernels. */
    double denseEfficiency = 0.65;
    /** Sustained fraction of peak for irregular/branchy kernels. */
    double irregularEfficiency = 0.15;
    /** Integer throughput relative to FP32 (Fermi: ~1/2 for IMAD). */
    double intRate = 0.5;

    /** Effective bandwidth fraction for streaming kernels. */
    double streamEfficiency = 0.80;

    /**
     * Time for a kernel that performs @p flops arithmetic operations
     * and moves @p bytes through device memory; the slower of the
     * compute and memory phases dominates (roofline).
     */
    Tick
    kernelTicks(double flops, double bytes, bool regular = true) const
    {
        const double eff =
            regular ? denseEfficiency : irregularEfficiency;
        const double compute_sec =
            flops / (peakFp32Gflops * 1e9 * eff);
        const double mem_sec =
            bytes /
            (static_cast<double>(memBwBps) * streamEfficiency);
        const double sec = std::max(compute_sec, mem_sec);
        return static_cast<Tick>(sec * static_cast<double>(SEC)) + 1;
    }

    /** Same for integer-dominated kernels. */
    Tick
    intKernelTicks(double iops, double bytes, bool regular = true) const
    {
        return kernelTicks(iops / intRate, bytes, regular);
    }
};

}  // namespace hix::gpu

#endif  // HIX_GPU_GPU_PERF_H_
