#include "gpu/kernel_registry.h"

namespace hix::gpu
{

KernelId
KernelRegistry::add(std::string name, KernelFn fn, KernelCostFn cost)
{
    const KernelId id = static_cast<KernelId>(entries_.size());
    by_name_[name] = id;
    entries_.push_back(
        KernelEntry{std::move(name), std::move(fn), std::move(cost)});
    return id;
}

const KernelEntry *
KernelRegistry::find(KernelId id) const
{
    if (id >= entries_.size())
        return nullptr;
    return &entries_[id];
}

Result<KernelId>
KernelRegistry::idOf(const std::string &name) const
{
    auto it = by_name_.find(name);
    if (it == by_name_.end())
        return errNotFound("no kernel named " + name);
    return it->second;
}

}  // namespace hix::gpu
