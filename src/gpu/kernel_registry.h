/**
 * @file
 * GPU compute-kernel registry: maps a kernel id (what a CUDA module
 * load produces in Gdev) to a functional implementation plus a cost
 * model. Workloads register their kernels here; the compute engine
 * executes the function and charges the model's time.
 */

#ifndef HIX_GPU_KERNEL_REGISTRY_H_
#define HIX_GPU_KERNEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gpu/gpu_context.h"

namespace hix::gpu
{

/** Id assigned to a registered kernel. */
using KernelId = std::uint32_t;

/** Kernel launch arguments: plain 64-bit values (addresses/scalars). */
using KernelArgs = std::vector<std::uint64_t>;

/** Functional body: touches device memory through the accessor. */
using KernelFn =
    std::function<Status(const GpuMemAccessor &, const KernelArgs &)>;

/** Cost model: simulated execution time for the given arguments. */
using KernelCostFn = std::function<Tick(const KernelArgs &)>;

/** A registered kernel. */
struct KernelEntry
{
    std::string name;
    KernelFn fn;
    KernelCostFn cost;
};

/** The registry. One per GPU device. */
class KernelRegistry
{
  public:
    /** Register a kernel; returns its id. */
    KernelId add(std::string name, KernelFn fn, KernelCostFn cost);

    /** Find by id. */
    const KernelEntry *find(KernelId id) const;

    /** Find id by name (driver module loading). */
    Result<KernelId> idOf(const std::string &name) const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<KernelEntry> entries_;
    std::unordered_map<std::string, KernelId> by_name_;
};

}  // namespace hix::gpu

#endif  // HIX_GPU_KERNEL_REGISTRY_H_
