#include "gpu/gpu_context.h"

#include <cstring>

namespace hix::gpu
{

Status
GpuContext::map(Addr gpu_va, Addr vram_pa, std::uint64_t bytes)
{
    if (!mem::pageAligned(gpu_va) || !mem::pageAligned(vram_pa))
        return errInvalidArgument("GPU map: unaligned address");
    const std::uint64_t npages =
        (bytes + mem::PageSize - 1) / mem::PageSize;
    for (std::uint64_t i = 0; i < npages; ++i) {
        Addr va = gpu_va + i * mem::PageSize;
        if (pages_.count(va))
            return errAlreadyExists("GPU va page already mapped");
    }
    for (std::uint64_t i = 0; i < npages; ++i)
        pages_[gpu_va + i * mem::PageSize] = vram_pa + i * mem::PageSize;
    return Status::ok();
}

Status
GpuContext::unmap(Addr gpu_va, std::uint64_t bytes)
{
    const std::uint64_t npages =
        (bytes + mem::PageSize - 1) / mem::PageSize;
    for (std::uint64_t i = 0; i < npages; ++i) {
        if (pages_.erase(gpu_va + i * mem::PageSize) == 0)
            return errNotFound("GPU va page not mapped");
    }
    return Status::ok();
}

Result<Addr>
GpuContext::translate(Addr gpu_va) const
{
    auto it = pages_.find(mem::pageBase(gpu_va));
    if (it == pages_.end())
        return errAccessFault("GPU page fault in context " +
                              std::to_string(id_));
    return it->second + mem::pageOffset(gpu_va);
}

std::vector<Addr>
GpuContext::mappedVramPages() const
{
    std::vector<Addr> out;
    out.reserve(pages_.size());
    for (const auto &[va, pa] : pages_)
        out.push_back(pa);
    return out;
}

Status
GpuMemAccessor::read(Addr gpu_va, std::uint8_t *data,
                     std::size_t len) const
{
    while (len > 0) {
        auto pa = ctx_->translate(gpu_va);
        if (!pa.isOk())
            return pa.status();
        const std::uint64_t in_page =
            mem::PageSize - mem::pageOffset(gpu_va);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        HIX_RETURN_IF_ERROR(vram_->readAt(*pa, data, take));
        data += take;
        gpu_va += take;
        len -= take;
    }
    return Status::ok();
}

Status
GpuMemAccessor::write(Addr gpu_va, const std::uint8_t *data,
                      std::size_t len) const
{
    while (len > 0) {
        auto pa = ctx_->translate(gpu_va);
        if (!pa.isOk())
            return pa.status();
        const std::uint64_t in_page =
            mem::PageSize - mem::pageOffset(gpu_va);
        const std::size_t take = std::min<std::uint64_t>(in_page, len);
        HIX_RETURN_IF_ERROR(vram_->writeAt(*pa, data, take));
        data += take;
        gpu_va += take;
        len -= take;
    }
    return Status::ok();
}

Result<std::uint32_t>
GpuMemAccessor::read32(Addr gpu_va) const
{
    std::uint8_t b[4];
    HIX_RETURN_IF_ERROR(read(gpu_va, b, 4));
    std::uint32_t v;
    std::memcpy(&v, b, 4);
    return v;
}

Status
GpuMemAccessor::write32(Addr gpu_va, std::uint32_t value) const
{
    std::uint8_t b[4];
    std::memcpy(b, &value, 4);
    return write(gpu_va, b, 4);
}

Result<float>
GpuMemAccessor::readF32(Addr gpu_va) const
{
    std::uint8_t b[4];
    HIX_RETURN_IF_ERROR(read(gpu_va, b, 4));
    float v;
    std::memcpy(&v, b, 4);
    return v;
}

Status
GpuMemAccessor::writeF32(Addr gpu_va, float value) const
{
    std::uint8_t b[4];
    std::memcpy(b, &value, 4);
    return write(gpu_va, b, 4);
}

Result<Bytes>
GpuMemAccessor::readBytes(Addr gpu_va, std::size_t len) const
{
    Bytes out(len);
    HIX_RETURN_IF_ERROR(read(gpu_va, out.data(), len));
    return out;
}

Status
GpuMemAccessor::writeBytes(Addr gpu_va, const Bytes &data) const
{
    return write(gpu_va, data.data(), data.size());
}

}  // namespace hix::gpu
