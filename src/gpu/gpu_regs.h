/**
 * @file
 * MMIO register layout (BAR0) and command opcodes of the modelled
 * GPU. Software controls the GPU exactly as Section 2.3 of the paper
 * describes: it writes commands into a command FIFO through MMIO and
 * rings a doorbell; bulk data moves by DMA or through the BAR1
 * device-memory aperture.
 */

#ifndef HIX_GPU_GPU_REGS_H_
#define HIX_GPU_GPU_REGS_H_

#include <cstdint>

namespace hix::gpu
{

/** BAR0 register offsets. */
namespace reg
{
/** Read-only identity register: 0x10DE1080. */
inline constexpr std::uint64_t Id = 0x0000;
/** Device status: bit 0 = ready. */
inline constexpr std::uint64_t Status = 0x0004;
/** Write-only software reset: any write resets the device. */
inline constexpr std::uint64_t Reset = 0x0008;
/** Command FIFO: 32-bit word stream, appended in order. */
inline constexpr std::uint64_t CmdFifo = 0x0100;
/** Doorbell: a write executes all queued commands. */
inline constexpr std::uint64_t CmdDoorbell = 0x0104;
/** Last batch status: 0 = ok, 1 = busy, 2 = error. */
inline constexpr std::uint64_t CmdStatus = 0x0108;
/** Fence value written by the most recent Fence command. */
inline constexpr std::uint64_t FenceValue = 0x010c;
/** BAR1 aperture window base into device memory (lo/hi pair). */
inline constexpr std::uint64_t WindowBaseLo = 0x0110;
inline constexpr std::uint64_t WindowBaseHi = 0x0114;
}  // namespace reg

/** Command batch status codes (reg::CmdStatus). */
enum class CmdStatusCode : std::uint32_t
{
    Ok = 0,
    Busy = 1,
    Error = 2,
};

/** Command opcodes. */
enum class GpuOp : std::uint32_t
{
    Nop = 0,
    /** CtxCreate {ctx}. */
    CtxCreate = 1,
    /** CtxDestroy {ctx}: unmaps and scrubs everything it touched. */
    CtxDestroy = 2,
    /** Map {gpu_va, vram_pa, bytes}: install context PTEs. */
    Map = 3,
    /** Unmap {gpu_va, bytes}. */
    Unmap = 4,
    /** Scrub {gpu_va, bytes}: zero-fill device memory. */
    Scrub = 5,
    /** CopyH2D {host_addr, dst_gpu_va, bytes}: DMA from host. */
    CopyH2D = 6,
    /** CopyD2H {src_gpu_va, host_addr, bytes}: DMA to host. */
    CopyD2H = 7,
    /** KernelLaunch {kernel_id, argc, argv...}. */
    KernelLaunch = 8,
    /** Fence {value}: publish value in reg::FenceValue. */
    Fence = 9,
    /** DhMix {slot, in_gpu_va, out_gpu_va}: out = X25519(priv, in). */
    DhMix = 10,
    /** DhSetKey {slot, in_gpu_va}: derive and latch the session key. */
    DhSetKey = 11,
    /** OcbEncrypt {slot, src_gpu_va, dst_gpu_va, pt_bytes, stream, ctr}. */
    OcbEncrypt = 12,
    /** OcbDecrypt {slot, src_gpu_va, dst_gpu_va, pt_bytes, stream, ctr}. */
    OcbDecrypt = 13,
    /** DhClearKey {slot}: drop a session key slot. */
    DhClearKey = 14,
};

/** Engines commands execute on (for timing attribution). */
enum class GpuEngine : std::uint8_t
{
    Control,   //!< command processor bookkeeping
    CopyHtoD,  //!< host-to-device copy engine
    CopyDtoH,  //!< device-to-host copy engine
    Compute,   //!< SM array
};

}  // namespace hix::gpu

#endif  // HIX_GPU_GPU_REGS_H_
