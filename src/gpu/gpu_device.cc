#include "gpu/gpu_device.h"

#include <cstring>
#include <mutex>

#include "common/byte_utils.h"
#include "common/logging.h"
#include "crypto/hmac.h"
#include "pcie/root_complex.h"

namespace hix::gpu
{

namespace
{

/** Control-plane command handling cost (decode + state update). */
constexpr Tick ControlCost = 2 * US;
/** Fence publication cost. */
constexpr Tick FenceCost = 500 * NS;
/** One X25519 scalar multiplication on the GPU. */
constexpr Tick DhOpCost = 80 * US;
/** Full device reset (state machine + memory controller). */
constexpr Tick ResetCost = 5 * MS;

/** Copy-engine staging granularity (bounds dma_scratch_ growth). */
constexpr std::uint64_t DmaChunkBytes = 256 * KiB;

/**
 * The factory BIOS depends only on the ROM size (deterministic body,
 * seed-independent), so generating + hashing it once per geometry
 * takes the 64 KiB pattern loop and SHA-256 out of every machine
 * construction; the image itself is shared (the ROM is immutable
 * once flashed), so constructing a device is a refcount bump, not a
 * 64 KiB copy. Mutex-guarded: machines are built on concurrent
 * recording threads.
 */
struct BiosImage
{
    std::shared_ptr<const Bytes> image;
    crypto::Sha256Digest digest{};
};

std::mutex &
biosCacheMutex()
{
    static std::mutex mu;
    return mu;
}

std::map<std::uint64_t, BiosImage> &
biosCache()
{
    static std::map<std::uint64_t, BiosImage> cache;
    return cache;
}

}  // namespace

GpuDevice::GpuDevice(std::string name, const GpuGeometry &geometry,
                     const GpuPerfModel &perf,
                     const sim::PlatformConfig &timing,
                     std::uint64_t seed)
    : PcieDevice(std::move(name), 0x10de, 0x1080, 0x030000),
      geometry_(geometry),
      perf_(perf),
      timing_(timing),
      rng_(seed),
      vram_("vram", geometry.vramSize),
      key_slots_(geometry.numKeySlots)
{
    if (!config().declareBar(0, geometry_.bar0Size).isOk() ||
        !config().declareBar(1, geometry_.bar1Size).isOk() ||
        !config().declareExpansionRom(geometry_.romSize).isOk())
        hix_panic("GpuDevice: bad geometry");
    std::lock_guard<std::mutex> lock(biosCacheMutex());
    auto it = biosCache().find(geometry_.romSize);
    if (it == biosCache().end()) {
        BiosImage entry;
        entry.image =
            std::make_shared<const Bytes>(makeFactoryBios());
        entry.digest = crypto::Sha256::digest(*entry.image);
        it = biosCache().emplace(geometry_.romSize, std::move(entry))
                 .first;
    }
    factory_bios_digest_ = it->second.digest;
    setExpansionRomImage(it->second.image);
}

Bytes
GpuDevice::makeFactoryBios() const
{
    Bytes bios(geometry_.romSize, 0);
    bios[0] = 0x55;
    bios[1] = 0xaa;
    static const char sig[] = "HIX-MODEL-GF110-VBIOS-70.10.17.00";
    std::memcpy(bios.data() + 4, sig, sizeof(sig));
    // Deterministic body pattern standing in for init scripts.
    for (std::size_t i = 64; i < bios.size() - 4; ++i)
        bios[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
    // Trailing additive checksum.
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < bios.size() - 4; ++i)
        sum += bios[i];
    storeLE32(bios.data() + bios.size() - 4, sum);
    return bios;
}

void
GpuDevice::flashBios(Bytes image)
{
    image.resize(geometry_.romSize, 0);
    setExpansionRomImage(std::move(image));
}

void
GpuDevice::record(GpuOp op, GpuEngine engine, GpuContextId ctx,
                  Tick duration, std::uint64_t bytes)
{
    costs_.push_back(CostRecord{op, engine, ctx, duration, bytes});
}

std::vector<CostRecord>
GpuDevice::drainCosts()
{
    std::vector<CostRecord> out;
    out.swap(costs_);
    return out;
}

Status
GpuDevice::debugReadVram(Addr pa, std::uint8_t *data, std::size_t len)
{
    return vram_.readAt(pa, data, len);
}

bool
GpuDevice::keySlotActive(std::uint32_t slot) const
{
    return slot < key_slots_.size() && key_slots_[slot].key.has_value();
}

void
GpuDevice::reset()
{
    for (auto &[id, ctx] : contexts_) {
        for (Addr page : ctx.mappedVramPages()) {
            (void)vram_.zeroAt(page, mem::PageSize);
            stats_.scrubbedBytes += mem::PageSize;
        }
    }
    contexts_.clear();
    key_slots_.clear();
    key_slots_.resize(geometry_.numKeySlots);
    fifo_.clear();
    cmd_status_ = static_cast<std::uint32_t>(CmdStatusCode::Ok);
    fence_value_ = 0;
    window_base_ = 0;
    last_error_.clear();
    ++stats_.resets;
    record(GpuOp::Nop, GpuEngine::Control, ~GpuContextId(0), ResetCost,
           0);
}

GpuDevice::State
GpuDevice::captureState() const
{
    State s;
    s.vram = vram_.snapshot();
    s.contexts = contexts_;
    s.kernels = kernels_;
    s.keySlots.reserve(key_slots_.size());
    for (const auto &slot : key_slots_)
        s.keySlots.push_back({slot.pair, slot.have_pair, slot.key});
    s.fifo = fifo_;
    s.cmdStatus = cmd_status_;
    s.fenceValue = fence_value_;
    s.windowBase = window_base_;
    s.rng = rng_;
    s.stats = stats_;
    s.lastError = last_error_;
    s.config = config();
    s.rom = sharedExpansionRomImage();
    return s;
}

void
GpuDevice::restoreState(const State &state)
{
    if (!vram_.adopt(state.vram).isOk())
        hix_panic("GpuDevice: VRAM snapshot size mismatch");
    contexts_ = state.contexts;
    kernels_ = state.kernels;
    key_slots_.clear();
    key_slots_.resize(state.keySlots.size());
    for (std::size_t i = 0; i < state.keySlots.size(); ++i) {
        KeySlot &slot = key_slots_[i];
        slot.pair = state.keySlots[i].pair;
        slot.have_pair = state.keySlots[i].have_pair;
        slot.key = state.keySlots[i].key;
        if (slot.key)
            slot.ocb = std::make_unique<crypto::Ocb>(*slot.key);
    }
    fifo_ = state.fifo;
    cmd_status_ = state.cmdStatus;
    fence_value_ = state.fenceValue;
    window_base_ = state.windowBase;
    rng_ = state.rng;
    stats_ = state.stats;
    last_error_ = state.lastError;
    config() = state.config;
    setExpansionRomImage(state.rom);
    costs_.clear();
}

Result<GpuContext *>
GpuDevice::contextOf(std::uint64_t id)
{
    auto it = contexts_.find(static_cast<GpuContextId>(id));
    if (it == contexts_.end())
        return errNotFound("no GPU context " + std::to_string(id));
    return &it->second;
}

Status
GpuDevice::mmioRead(int bar, std::uint64_t offset, std::uint8_t *data,
                    std::size_t len)
{
    if (bar == 1) {
        // Device-memory aperture.
        if (window_base_ + offset + len > geometry_.vramSize)
            return errInvalidArgument("BAR1 window beyond VRAM");
        return vram_.readAt(window_base_ + offset, data, len);
    }
    if (bar != 0)
        return errInvalidArgument("unknown BAR");
    if (len != 4 || offset % 4 != 0)
        return errInvalidArgument("BAR0 requires 32-bit access");

    std::uint32_t value = 0;
    switch (offset) {
      case reg::Id:
        value = 0x10de1080;
        break;
      case reg::Status:
        value = 1;
        break;
      case reg::CmdStatus:
        value = cmd_status_;
        break;
      case reg::FenceValue:
        value = fence_value_;
        break;
      case reg::WindowBaseLo:
        value = static_cast<std::uint32_t>(window_base_);
        break;
      case reg::WindowBaseHi:
        value = static_cast<std::uint32_t>(window_base_ >> 32);
        break;
      default:
        value = 0;
        break;
    }
    storeLE32(data, value);
    return Status::ok();
}

Status
GpuDevice::mmioWrite(int bar, std::uint64_t offset,
                     const std::uint8_t *data, std::size_t len)
{
    if (bar == 1) {
        if (window_base_ + offset + len > geometry_.vramSize)
            return errInvalidArgument("BAR1 window beyond VRAM");
        return vram_.writeAt(window_base_ + offset, data, len);
    }
    if (bar != 0)
        return errInvalidArgument("unknown BAR");
    if (len % 4 != 0 || offset % 4 != 0)
        return errInvalidArgument("BAR0 requires 32-bit access");

    for (std::size_t i = 0; i < len; i += 4) {
        const std::uint32_t value = loadLE32(data + i);
        const std::uint64_t reg_off = offset + i;
        switch (reg_off) {
          case reg::CmdFifo:
            fifo_.push_back(value);
            break;
          case reg::CmdDoorbell:
            runDoorbell();
            break;
          case reg::Reset:
            reset();
            break;
          case reg::WindowBaseLo:
            window_base_ =
                (window_base_ & ~Addr(0xffffffff)) | value;
            break;
          case reg::WindowBaseHi:
            window_base_ = (window_base_ & Addr(0xffffffff)) |
                           (static_cast<Addr>(value) << 32);
            break;
          default:
            // Posted write to an unimplemented register: ignored.
            break;
        }
    }
    return Status::ok();
}

void
GpuDevice::runDoorbell()
{
    cmd_status_ = static_cast<std::uint32_t>(CmdStatusCode::Busy);
    std::vector<std::uint32_t> words;
    words.swap(fifo_);

    // Reassemble 64-bit argument words.
    std::vector<std::uint64_t> stream;
    stream.reserve(words.size());
    for (std::uint32_t w : words)
        stream.push_back(w);

    std::size_t cursor = 0;
    while (cursor < stream.size()) {
        Status st = execCommand(stream, cursor);
        if (!st.isOk()) {
            cmd_status_ =
                static_cast<std::uint32_t>(CmdStatusCode::Error);
            last_error_ = st.toString();
            return;
        }
    }
    cmd_status_ = static_cast<std::uint32_t>(CmdStatusCode::Ok);
    last_error_.clear();
}

Status
GpuDevice::execCommand(const std::vector<std::uint64_t> &words,
                       std::size_t &cursor)
{
    if (words.size() - cursor < 3)
        return errInvalidArgument("truncated command header");
    const GpuOp op = static_cast<GpuOp>(words[cursor]);
    const GpuContextId ctx_id =
        static_cast<GpuContextId>(words[cursor + 1]);
    const std::uint64_t nargs = words[cursor + 2];
    cursor += 3;
    if (nargs > 64 || words.size() - cursor < 2 * nargs)
        return errInvalidArgument("truncated command arguments");

    KernelArgs args(nargs);
    for (std::uint64_t i = 0; i < nargs; ++i) {
        args[i] = words[cursor + 2 * i] |
                  (words[cursor + 2 * i + 1] << 32);
    }
    cursor += 2 * nargs;
    ++stats_.commands;

    switch (op) {
      case GpuOp::Nop:
        record(op, GpuEngine::Control, ctx_id, ControlCost, 0);
        return Status::ok();

      case GpuOp::CtxCreate: {
        if (contexts_.count(ctx_id))
            return errAlreadyExists("GPU context exists");
        contexts_.emplace(ctx_id, GpuContext(ctx_id));
        record(op, GpuEngine::Control, ctx_id, ControlCost, 0);
        return Status::ok();
      }

      case GpuOp::CtxDestroy: {
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        std::uint64_t scrubbed = 0;
        for (Addr page : (*ctx)->mappedVramPages()) {
            HIX_RETURN_IF_ERROR(vram_.zeroAt(page, mem::PageSize));
            scrubbed += mem::PageSize;
        }
        stats_.scrubbedBytes += scrubbed;
        contexts_.erase(ctx_id);
        record(op, GpuEngine::Compute, ctx_id,
               ControlCost +
                   transferTicks(scrubbed, timing_.gpuScrubBps),
               scrubbed);
        return Status::ok();
      }

      case GpuOp::Map: {
        if (args.size() != 3)
            return errInvalidArgument("Map needs 3 args");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        if (args[1] + args[2] > geometry_.vramSize)
            return errInvalidArgument("Map beyond VRAM");
        HIX_RETURN_IF_ERROR((*ctx)->map(args[0], args[1], args[2]));
        record(op, GpuEngine::Control, ctx_id, ControlCost, 0);
        return Status::ok();
      }

      case GpuOp::Unmap: {
        if (args.size() != 2)
            return errInvalidArgument("Unmap needs 2 args");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        HIX_RETURN_IF_ERROR((*ctx)->unmap(args[0], args[1]));
        record(op, GpuEngine::Control, ctx_id, ControlCost, 0);
        return Status::ok();
      }

      case GpuOp::Scrub: {
        if (args.size() != 2)
            return errInvalidArgument("Scrub needs 2 args");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        GpuMemAccessor mem(*ctx, &vram_);
        Bytes zeros(std::min<std::uint64_t>(args[1], 64 * KiB), 0);
        std::uint64_t remaining = args[1];
        Addr va = args[0];
        while (remaining > 0) {
            const std::size_t take =
                std::min<std::uint64_t>(zeros.size(), remaining);
            HIX_RETURN_IF_ERROR(mem.write(va, zeros.data(), take));
            va += take;
            remaining -= take;
        }
        stats_.scrubbedBytes += args[1];
        record(op, GpuEngine::Compute, ctx_id,
               transferTicks(args[1], timing_.gpuScrubBps), args[1]);
        return Status::ok();
      }

      case GpuOp::CopyH2D: {
        if (args.size() != 3)
            return errInvalidArgument("CopyH2D needs 3 args");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        if (!rootComplex())
            return errUnavailable("GPU has no DMA path");
        // Stream through the bounded staging buffer: one DMA-in plus
        // one VRAM write per chunk, never a transfer-sized alloc.
        if (dma_scratch_.size() < std::min<std::uint64_t>(args[2],
                                                          DmaChunkBytes))
            dma_scratch_.resize(
                std::min<std::uint64_t>(args[2], DmaChunkBytes));
        GpuMemAccessor mem(*ctx, &vram_);
        std::uint64_t done = 0;
        while (done < args[2]) {
            const std::size_t chunk = static_cast<std::size_t>(
                std::min<std::uint64_t>(DmaChunkBytes, args[2] - done));
            HIX_RETURN_IF_ERROR(rootComplex()->dmaRead(
                bdf(), args[0] + done, dma_scratch_.data(), chunk));
            HIX_RETURN_IF_ERROR(
                mem.write(args[1] + done, dma_scratch_.data(), chunk));
            done += chunk;
        }
        ++stats_.copiesH2D;
        stats_.bytesH2D += args[2];
        record(op, GpuEngine::CopyHtoD, ctx_id,
               timing_.dmaSetupLatency +
                   transferTicks(args[2], timing_.dmaHtoDBps),
               args[2]);
        return Status::ok();
      }

      case GpuOp::CopyD2H: {
        if (args.size() != 3)
            return errInvalidArgument("CopyD2H needs 3 args");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        if (!rootComplex())
            return errUnavailable("GPU has no DMA path");
        if (dma_scratch_.size() < std::min<std::uint64_t>(args[2],
                                                          DmaChunkBytes))
            dma_scratch_.resize(
                std::min<std::uint64_t>(args[2], DmaChunkBytes));
        GpuMemAccessor mem(*ctx, &vram_);
        std::uint64_t done = 0;
        while (done < args[2]) {
            const std::size_t chunk = static_cast<std::size_t>(
                std::min<std::uint64_t>(DmaChunkBytes, args[2] - done));
            HIX_RETURN_IF_ERROR(
                mem.read(args[0] + done, dma_scratch_.data(), chunk));
            HIX_RETURN_IF_ERROR(rootComplex()->dmaWrite(
                bdf(), args[1] + done, dma_scratch_.data(), chunk));
            done += chunk;
        }
        ++stats_.copiesD2H;
        stats_.bytesD2H += args[2];
        record(op, GpuEngine::CopyDtoH, ctx_id,
               timing_.dmaSetupLatency +
                   transferTicks(args[2], timing_.dmaDtoHBps),
               args[2]);
        return Status::ok();
      }

      case GpuOp::KernelLaunch: {
        if (args.empty())
            return errInvalidArgument("KernelLaunch needs a kernel id");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        const KernelEntry *kernel =
            kernels_.find(static_cast<KernelId>(args[0]));
        if (!kernel)
            return errNotFound("unknown kernel id");
        KernelArgs kargs(args.begin() + 1, args.end());
        GpuMemAccessor mem(*ctx, &vram_);
        HIX_RETURN_IF_ERROR(kernel->fn(mem, kargs));
        ++stats_.kernels;
        record(op, GpuEngine::Compute, ctx_id,
               timing_.gpuKernelLaunch + kernel->cost(kargs), 0);
        return Status::ok();
      }

      case GpuOp::Fence: {
        if (args.size() != 1)
            return errInvalidArgument("Fence needs 1 arg");
        fence_value_ = static_cast<std::uint32_t>(args[0]);
        record(op, GpuEngine::Control, ctx_id, FenceCost, 0);
        return Status::ok();
      }

      case GpuOp::DhMix: {
        if (args.size() != 3)
            return errInvalidArgument("DhMix needs 3 args");
        if (args[0] >= key_slots_.size())
            return errInvalidArgument("bad key slot");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        KeySlot &slot = key_slots_[args[0]];
        if (!slot.have_pair) {
            slot.pair = crypto::X25519KeyPair::generate(rng_);
            slot.have_pair = true;
        }
        GpuMemAccessor mem(*ctx, &vram_);
        auto in = mem.readBytes(args[1], crypto::X25519KeySize);
        if (!in.isOk())
            return in.status();
        crypto::X25519Key peer;
        std::memcpy(peer.data(), in->data(), peer.size());
        crypto::X25519Key out =
            crypto::x25519(slot.pair.privateKey, peer);
        HIX_RETURN_IF_ERROR(
            mem.write(args[2], out.data(), out.size()));
        record(op, GpuEngine::Compute, ctx_id, DhOpCost, 0);
        return Status::ok();
      }

      case GpuOp::DhSetKey: {
        if (args.size() != 2)
            return errInvalidArgument("DhSetKey needs 2 args");
        if (args[0] >= key_slots_.size())
            return errInvalidArgument("bad key slot");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        KeySlot &slot = key_slots_[args[0]];
        if (!slot.have_pair) {
            slot.pair = crypto::X25519KeyPair::generate(rng_);
            slot.have_pair = true;
        }
        GpuMemAccessor mem(*ctx, &vram_);
        auto in = mem.readBytes(args[1], crypto::X25519KeySize);
        if (!in.isOk())
            return in.status();
        crypto::X25519Key peer;
        std::memcpy(peer.data(), in->data(), peer.size());
        crypto::X25519Key shared =
            crypto::x25519(slot.pair.privateKey, peer);
        Bytes secret(shared.begin(), shared.end());
        slot.key = crypto::deriveAesKey(secret, "hix-session");
        slot.ocb = std::make_unique<crypto::Ocb>(*slot.key);
        record(op, GpuEngine::Compute, ctx_id, DhOpCost, 0);
        return Status::ok();
      }

      case GpuOp::DhClearKey: {
        if (args.size() != 1 || args[0] >= key_slots_.size())
            return errInvalidArgument("bad key slot");
        key_slots_[args[0]] = KeySlot{};
        record(op, GpuEngine::Control, ctx_id, ControlCost, 0);
        return Status::ok();
      }

      case GpuOp::OcbEncrypt:
      case GpuOp::OcbDecrypt: {
        if (args.size() != 6)
            return errInvalidArgument("OCB command needs 6 args");
        if (args[0] >= key_slots_.size())
            return errInvalidArgument("bad key slot");
        KeySlot &slot = key_slots_[args[0]];
        if (!slot.ocb)
            return errFailedPrecondition("key slot has no session key");
        auto ctx = contextOf(ctx_id);
        if (!ctx.isOk())
            return ctx.status();
        GpuMemAccessor mem(*ctx, &vram_);

        const std::uint64_t pt_len = args[3];
        const crypto::OcbNonce nonce = crypto::makeNonce(
            static_cast<std::uint32_t>(args[4]), args[5]);

        // Reused scratch keeps the crypto "kernel" allocation-free
        // in steady state (the paging path runs it per page).
        if (op == GpuOp::OcbEncrypt) {
            crypto_in_.resize(pt_len);
            crypto_out_.resize(pt_len + crypto::OcbTagSize);
            HIX_RETURN_IF_ERROR(
                mem.read(args[1], crypto_in_.data(), pt_len));
            slot.ocb->encryptInto(nonce, nullptr, 0, crypto_in_.data(),
                                  pt_len, crypto_out_.data(),
                                  crypto_out_.data() + pt_len);
            HIX_RETURN_IF_ERROR(mem.write(args[2], crypto_out_.data(),
                                          crypto_out_.size()));
        } else {
            crypto_in_.resize(pt_len + crypto::OcbTagSize);
            crypto_out_.resize(pt_len);
            HIX_RETURN_IF_ERROR(mem.read(args[1], crypto_in_.data(),
                                         crypto_in_.size()));
            Status ok = slot.ocb->decryptInto(
                nonce, nullptr, 0, crypto_in_.data(), pt_len,
                crypto_in_.data() + pt_len, crypto_out_.data());
            if (!ok.isOk()) {
                ++stats_.macFailures;
                return ok;
            }
            HIX_RETURN_IF_ERROR(
                mem.write(args[2], crypto_out_.data(), pt_len));
        }
        ++stats_.cryptoKernels;
        record(op, GpuEngine::Compute, ctx_id,
               timing_.gpuKernelLaunch +
                   transferTicks(pt_len, timing_.gpuOcbBps),
               pt_len);
        return Status::ok();
      }
    }
    return errInvalidArgument("unknown opcode");
}

}  // namespace hix::gpu
