/**
 * @file
 * The GPU device model: a Fermi-class (GTX 580) PCIe endpoint with
 * 1.5 GiB device memory, a command FIFO driven through BAR0 MMIO, a
 * BAR1 device-memory aperture, two DMA copy engines, a compute engine
 * with registered kernels, per-context address spaces, built-in
 * Diffie-Hellman and OCB engines (HIX's in-GPU crypto kernels,
 * Section 4.4.2), a flashable GPU BIOS in the expansion ROM, and
 * memory scrubbing.
 *
 * The device is functional-first: commands execute eagerly and move
 * real bytes. Timing is exposed through CostRecords that the driver
 * drains into the platform trace; the record stream is the model's
 * timing oracle, not an architectural register.
 */

#ifndef HIX_GPU_GPU_DEVICE_H_
#define HIX_GPU_GPU_DEVICE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "crypto/ocb.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "gpu/gpu_context.h"
#include "gpu/gpu_perf.h"
#include "gpu/gpu_regs.h"
#include "gpu/kernel_registry.h"
#include "mem/phys_mem.h"
#include "pcie/device.h"
#include "sim/platform_config.h"

namespace hix::gpu
{

/** Timing record for one executed command. */
struct CostRecord
{
    GpuOp op = GpuOp::Nop;
    GpuEngine engine = GpuEngine::Control;
    GpuContextId ctx = ~GpuContextId(0);
    Tick duration = 0;
    std::uint64_t bytes = 0;
};

/** Geometry of the modelled board. */
struct GpuGeometry
{
    std::uint64_t vramSize = 1536 * MiB;      //!< GTX 580: 1.5 GiB
    std::uint64_t bar0Size = 16 * MiB;        //!< register space
    std::uint64_t bar1Size = 256 * MiB;       //!< VRAM aperture
    std::uint64_t romSize = 64 * KiB;         //!< GPU BIOS
    std::uint32_t numKeySlots = 64;           //!< session key slots
};

/** Counters for tests and benches. */
struct GpuDeviceStats
{
    std::uint64_t commands = 0;
    std::uint64_t kernels = 0;
    std::uint64_t copiesH2D = 0;
    std::uint64_t copiesD2H = 0;
    std::uint64_t bytesH2D = 0;
    std::uint64_t bytesD2H = 0;
    std::uint64_t cryptoKernels = 0;
    std::uint64_t macFailures = 0;
    std::uint64_t scrubbedBytes = 0;
    std::uint64_t resets = 0;
};

/**
 * The GPU. BAR0 = registers + command FIFO; BAR1 = movable window
 * into device memory.
 */
class GpuDevice : public pcie::PcieDevice
{
  public:
    GpuDevice(std::string name, const GpuGeometry &geometry,
              const GpuPerfModel &perf,
              const sim::PlatformConfig &timing,
              std::uint64_t seed = 0xc0ffee);

    // ----- PcieDevice -----------------------------------------------------
    Status mmioRead(int bar, std::uint64_t offset, std::uint8_t *data,
                    std::size_t len) override;
    Status mmioWrite(int bar, std::uint64_t offset,
                     const std::uint8_t *data, std::size_t len) override;

    // ----- Host-visible helpers ------------------------------------------
    /** The kernel registry (populated by workload setup code). */
    KernelRegistry &kernels() { return kernels_; }

    const GpuGeometry &geometry() const { return geometry_; }
    const GpuPerfModel &perf() const { return perf_; }
    const GpuDeviceStats &stats() const { return stats_; }

    /**
     * Drain the cost records of commands executed since the last
     * drain (timing oracle for the driver layer).
     */
    std::vector<CostRecord> drainCosts();

    /** Error message of the last failed command batch, if any. */
    const std::string &lastError() const { return last_error_; }

    /**
     * Replace the GPU BIOS image (attacker primitive: a privileged
     * adversary can flash the ROM before the GPU enclave starts).
     */
    void flashBios(Bytes image);

    /** SHA-256 of the current (genuine) factory BIOS. */
    const crypto::Sha256Digest &factoryBiosDigest() const
    {
        return factory_bios_digest_;
    }

    /**
     * Full device reset: destroy contexts, clear key slots, scrub
     * all touched VRAM. Also triggered by a write to reg::Reset.
     */
    void reset();

    /** Direct VRAM peek for tests (not reachable by modelled SW). */
    Status debugReadVram(Addr pa, std::uint8_t *data, std::size_t len);

    /**
     * Value snapshot of all mutable device state for machine
     * snapshot/fork: VRAM as a CoW page-map snapshot (no byte copy),
     * contexts, kernel registry, key-slot key material (the OCB
     * engine is re-derived from the key on restore), FIFO/register
     * state, RNG position, config space and ROM image, and counters.
     */
    struct State
    {
        mem::PhysMem::Snapshot vram;
        std::map<GpuContextId, GpuContext> contexts;
        KernelRegistry kernels;
        struct KeySlotState
        {
            crypto::X25519KeyPair pair;
            bool have_pair = false;
            std::optional<crypto::AesKey> key;
        };
        std::vector<KeySlotState> keySlots;
        std::vector<std::uint32_t> fifo;
        std::uint32_t cmdStatus = 0;
        std::uint32_t fenceValue = 0;
        Addr windowBase = 0;
        Rng rng{0};
        GpuDeviceStats stats;
        std::string lastError;
        pcie::ConfigSpace config{pcie::HeaderType::Endpoint, 0, 0, 0};
        std::shared_ptr<const Bytes> rom;
    };
    State captureState() const;
    void restoreState(const State &state);

    /** Number of live contexts. */
    std::size_t contextCount() const { return contexts_.size(); }

    /** True when key slot @p slot currently holds a session key. */
    bool keySlotActive(std::uint32_t slot) const;

    /** VRAM pages privately materialised by this device instance. */
    std::size_t vramResidentPages() const
    {
        return vram_.residentPages();
    }
    /** VRAM pages shared with a machine snapshot (CoW, not copied). */
    std::size_t vramSharedPages() const { return vram_.sharedPages(); }

  private:
    struct KeySlot
    {
        crypto::X25519KeyPair pair;
        bool have_pair = false;
        std::optional<crypto::AesKey> key;
        std::unique_ptr<crypto::Ocb> ocb;
    };

    /** Execute all queued FIFO words as commands. */
    void runDoorbell();
    Status execCommand(const std::vector<std::uint64_t> &words,
                       std::size_t &cursor);
    Result<GpuContext *> contextOf(std::uint64_t id);
    void record(GpuOp op, GpuEngine engine, GpuContextId ctx,
                Tick duration, std::uint64_t bytes);
    Bytes makeFactoryBios() const;

    GpuGeometry geometry_;
    GpuPerfModel perf_;
    sim::PlatformConfig timing_;
    Rng rng_;

    mem::PhysMem vram_;
    std::map<GpuContextId, GpuContext> contexts_;
    KernelRegistry kernels_;
    std::vector<KeySlot> key_slots_;

    // Register state.
    std::vector<std::uint32_t> fifo_;
    std::uint32_t cmd_status_ = 0;
    std::uint32_t fence_value_ = 0;
    Addr window_base_ = 0;

    /** Reused OCB command scratch (steady state allocates nothing). */
    Bytes crypto_in_;
    Bytes crypto_out_;

    /**
     * Reused copy-engine staging buffer: H2D/D2H stream through it in
     * bounded chunks instead of allocating a transfer-sized buffer
     * per command (grow-once, steady state allocates nothing).
     */
    Bytes dma_scratch_;

    std::vector<CostRecord> costs_;
    GpuDeviceStats stats_;
    std::string last_error_;
    crypto::Sha256Digest factory_bios_digest_{};
};

}  // namespace hix::gpu

#endif  // HIX_GPU_GPU_DEVICE_H_
