/**
 * @file
 * Per-context GPU address spaces. Unlike pre-Volta MPS (which merges
 * all clients into one context, Section 4.5 of the paper), HIX gives
 * every user enclave its own GPU context; the context page table is
 * what isolates one user's device memory from another's.
 */

#ifndef HIX_GPU_GPU_CONTEXT_H_
#define HIX_GPU_GPU_CONTEXT_H_

#include <map>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "mem/phys_mem.h"

namespace hix::gpu
{

/**
 * One GPU context: a GPU-virtual to VRAM-physical page map.
 */
class GpuContext
{
  public:
    explicit GpuContext(GpuContextId id) : id_(id) {}

    GpuContextId id() const { return id_; }

    /** Map @p bytes starting at page-aligned addresses. */
    Status map(Addr gpu_va, Addr vram_pa, std::uint64_t bytes);

    /** Unmap @p bytes starting at @p gpu_va. */
    Status unmap(Addr gpu_va, std::uint64_t bytes);

    /** Translate one GPU-virtual address. */
    Result<Addr> translate(Addr gpu_va) const;

    /** All VRAM pages currently mapped (for teardown scrubbing). */
    std::vector<Addr> mappedVramPages() const;

    std::size_t pageCount() const { return pages_.size(); }

  private:
    GpuContextId id_;
    std::unordered_map<Addr, Addr> pages_;  // gpu va page -> vram page
};

/**
 * Accessor for context-translated device memory; kernels use this to
 * touch VRAM so that all their traffic respects context isolation.
 */
class GpuMemAccessor
{
  public:
    GpuMemAccessor(const GpuContext *ctx, mem::PhysMem *vram)
        : ctx_(ctx), vram_(vram)
    {}

    Status read(Addr gpu_va, std::uint8_t *data, std::size_t len) const;
    Status write(Addr gpu_va, const std::uint8_t *data,
                 std::size_t len) const;

    /** Typed helpers for kernel implementations. */
    Result<std::uint32_t> read32(Addr gpu_va) const;
    Status write32(Addr gpu_va, std::uint32_t value) const;
    Result<float> readF32(Addr gpu_va) const;
    Status writeF32(Addr gpu_va, float value) const;

    /** Bulk vector helpers. */
    Result<Bytes> readBytes(Addr gpu_va, std::size_t len) const;
    Status writeBytes(Addr gpu_va, const Bytes &data) const;

  private:
    const GpuContext *ctx_;
    mem::PhysMem *vram_;
};

}  // namespace hix::gpu

#endif  // HIX_GPU_GPU_CONTEXT_H_
