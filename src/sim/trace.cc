#include "sim/trace.h"

#include "common/logging.h"

namespace hix::sim
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Compute:
        return "compute";
      case OpKind::CryptoCpu:
        return "crypto_cpu";
      case OpKind::CryptoGpu:
        return "crypto_gpu";
      case OpKind::Transfer:
        return "transfer";
      case OpKind::Control:
        return "control";
      case OpKind::Init:
        return "init";
    }
    return "unknown";
}

Trace::Trace()
{
    labels_.emplace_back();  // LabelId 0 == ""
    label_ids_.emplace(std::string(), NoLabel);
}

LabelId
Trace::internLabel(std::string_view label)
{
    if (label.empty())
        return NoLabel;
    auto it = label_ids_.find(label);
    if (it != label_ids_.end())
        return it->second;
    const LabelId id = static_cast<LabelId>(labels_.size());
    labels_.emplace_back(label);
    label_ids_.emplace(labels_.back(), id);
    return id;
}

std::uint32_t
Trace::storeDeps(Op &op, std::span<const OpId> deps, OpId chain_dep)
{
    // Validate and count first; only spill once the true count is
    // known. Duplicates are kept (the scheduler tolerates them and the
    // recorder has always allowed extra_deps to repeat the chain tail).
    std::uint32_t count = 0;
    auto check = [&](OpId d) {
        if (d == InvalidOpId)
            return false;
        if (d >= op.id)
            hix_panic("Trace: forward dependency ", d, " from op ",
                      op.id);
        return true;
    };
    for (OpId d : deps)
        if (check(d))
            ++count;
    const bool has_chain = check(chain_dep);
    if (has_chain)
        ++count;
    op.depCount = count;
    if (count <= Op::InlineDeps) {
        std::uint32_t i = 0;
        for (OpId d : deps)
            if (d != InvalidOpId)
                op.inlineDeps[i++] = d;
        if (has_chain)
            op.inlineDeps[i++] = chain_dep;
        return count;
    }
    op.depPoolOffset = static_cast<std::uint32_t>(dep_pool_.size());
    dep_pool_.reserve(dep_pool_.size() + count);
    for (OpId d : deps)
        if (d != InvalidOpId)
            dep_pool_.push_back(d);
    if (has_chain)
        dep_pool_.push_back(chain_dep);
    return count;
}

OpId
Trace::add(ResourceId resource, Tick duration, std::span<const OpId> deps,
           OpKind kind, std::uint64_t bytes, std::string_view label,
           GpuContextId gpu_ctx, OpId chain_dep)
{
    Op op;
    op.id = static_cast<OpId>(ops_.size());
    op.resource = resource;
    op.duration = duration;
    storeDeps(op, deps, chain_dep);
    op.kind = kind;
    op.bytes = bytes;
    op.label = internLabel(label);
    op.gpuCtx = gpu_ctx;
    ops_.push_back(op);
    return op.id;
}

Tick
Trace::totalDuration(OpKind kind) const
{
    Tick total = 0;
    for (const Op &op : ops_)
        if (op.kind == kind)
            total += op.duration;
    return total;
}

std::uint64_t
Trace::totalBytes(OpKind kind) const
{
    std::uint64_t total = 0;
    for (const Op &op : ops_)
        if (op.kind == kind)
            total += op.bytes;
    return total;
}

void
Trace::reserve(std::size_t ops)
{
    ops_.reserve(ops);
}

OpId
Trace::append(const Trace &other, const AppendRemap &remap)
{
    const OpId offset = static_cast<OpId>(ops_.size());
    ops_.reserve(ops_.size() + other.ops_.size());
    dep_pool_.reserve(dep_pool_.size() + other.dep_pool_.size());

    // Label ids differ between traces; build the remap once instead of
    // re-hashing per op.
    std::vector<LabelId> label_map(other.labels_.size(), NoLabel);
    for (std::size_t i = 0; i < other.labels_.size(); ++i)
        label_map[i] = internLabel(other.labels_[i]);

    for (const Op &src : other.ops_) {
        Op op = src;
        op.id += offset;
        op.label = label_map[src.label < label_map.size() ? src.label
                                                          : 0];
        if (op.gpuCtx != NoGpuContext)
            op.gpuCtx = remap.mapCtx(op.gpuCtx);
        if (op.depCount <= Op::InlineDeps) {
            for (std::uint32_t i = 0; i < op.depCount; ++i)
                op.inlineDeps[i] += offset;
        } else {
            const std::uint32_t new_off =
                static_cast<std::uint32_t>(dep_pool_.size());
            for (OpId d : other.deps(src))
                dep_pool_.push_back(d + offset);
            op.depPoolOffset = new_off;
        }
        ops_.push_back(op);
    }
    return offset;
}

namespace
{

inline void
fnv1a(std::uint64_t &h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
}

template <typename T>
inline void
fnv1aValue(std::uint64_t &h, T value)
{
    fnv1a(h, &value, sizeof(value));
}

}  // namespace

std::uint64_t
traceDigest(const Trace &trace)
{
    // FNV-1a 64 over a canonical per-op encoding. Labels hash by their
    // resolved string bytes (not the LabelId), so two traces that
    // interned the same labels in different orders still digest equal;
    // dependency lists hash by value, so inline-vs-spilled storage is
    // invisible. This is exactly the "bit-identical" contract of the
    // parallel recorder: same ops, same deps, same label text.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    fnv1aValue(h, static_cast<std::uint64_t>(trace.size()));
    for (const Op &op : trace.ops()) {
        fnv1aValue(h, static_cast<std::uint8_t>(op.resource.unit));
        fnv1aValue(h, op.resource.index);
        fnv1aValue(h, op.duration);
        fnv1aValue(h, op.bytes);
        fnv1aValue(h, op.gpuCtx);
        fnv1aValue(h, static_cast<std::uint8_t>(op.kind));
        const std::string &label = trace.labelOf(op);
        fnv1aValue(h, static_cast<std::uint32_t>(label.size()));
        fnv1a(h, label.data(), label.size());
        const auto deps = trace.deps(op);
        fnv1aValue(h, static_cast<std::uint32_t>(deps.size()));
        for (OpId d : deps)
            fnv1aValue(h, d);
    }
    return h;
}

Trace::Components
Trace::components() const
{
    Components out;
    const std::size_t n = ops_.size();
    out.opComponent.assign(n, 0);
    if (n == 0)
        return out;

    // Union-find over distinct resources; ops inherit the component
    // of their resource, dependency edges union the two resources.
    std::unordered_map<ResourceId, std::uint32_t, ResourceIdHash>
        res_index;
    std::vector<std::uint32_t> res_of(n);
    std::vector<std::uint32_t> parent;
    {
        ResourceId cached_res{};
        std::uint32_t cached_idx = ~0u;
        for (const Op &op : ops_) {
            if (cached_idx == ~0u || !(op.resource == cached_res)) {
                auto [it, inserted] = res_index.try_emplace(
                    op.resource,
                    static_cast<std::uint32_t>(parent.size()));
                if (inserted)
                    parent.push_back(it->second);
                cached_res = op.resource;
                cached_idx = it->second;
            }
            res_of[op.id] = cached_idx;
        }
    }

    auto find = [&](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];  // path halving
            x = parent[x];
        }
        return x;
    };

    for (const Op &op : ops_) {
        const std::uint32_t a = find(res_of[op.id]);
        for (OpId d : deps(op)) {
            const std::uint32_t b = find(res_of[d]);
            if (a != b)
                parent[b] = a;
        }
    }

    // Dense component ids in first-appearance op order.
    std::vector<std::uint32_t> dense(parent.size(), ~0u);
    for (const Op &op : ops_) {
        const std::uint32_t root = find(res_of[op.id]);
        if (dense[root] == ~0u) {
            dense[root] = out.count++;
            out.sizes.push_back(0);
        }
        out.opComponent[op.id] = dense[root];
        ++out.sizes[dense[root]];
    }
    return out;
}

void
Trace::overwriteDepsForTest(OpId id, std::span<const OpId> deps)
{
    Op &op = ops_[id];
    op.depCount = static_cast<std::uint32_t>(deps.size());
    if (op.depCount <= Op::InlineDeps) {
        std::uint32_t i = 0;
        for (OpId d : deps)
            op.inlineDeps[i++] = d;
        return;
    }
    op.depPoolOffset = static_cast<std::uint32_t>(dep_pool_.size());
    dep_pool_.insert(dep_pool_.end(), deps.begin(), deps.end());
}

OpId
TraceRecorder::record(std::uint32_t actor, ResourceId resource,
                      Tick duration, OpKind kind, std::uint64_t bytes,
                      std::string_view label, GpuContextId gpu_ctx,
                      std::span<const OpId> extra_deps)
{
    if (!trace_)
        return InvalidOpId;
    if (actor >= chain_tails_.size())
        chain_tails_.resize(actor + 1, InvalidOpId);
    OpId id = trace_->add(resource, duration, extra_deps, kind, bytes,
                          label, gpu_ctx, chain_tails_[actor]);
    chain_tails_[actor] = id;
    notify(id);
    return id;
}

OpId
TraceRecorder::recordDetached(ResourceId resource, Tick duration,
                              OpKind kind, std::span<const OpId> deps,
                              std::uint64_t bytes, std::string_view label,
                              GpuContextId gpu_ctx)
{
    if (!trace_)
        return InvalidOpId;
    OpId id =
        trace_->add(resource, duration, deps, kind, bytes, label, gpu_ctx);
    notify(id);
    return id;
}

int
TraceRecorder::addObserver(OpObserver observer)
{
    const int handle = next_observer_++;
    observers_.emplace_back(handle, std::move(observer));
    return handle;
}

void
TraceRecorder::removeObserver(int handle)
{
    std::erase_if(observers_,
                  [handle](const auto &e) { return e.first == handle; });
}

void
TraceRecorder::notify(OpId id)
{
    if (observers_.empty())
        return;
    // Copy the op and resolve its label: an observer may append further
    // ops (through code it calls), which can reallocate the trace's op
    // and label storage.
    const Op op = trace_->op(id);
    const std::string label = trace_->labelOf(op);
    // Walk observers in handle order instead of by vector position: an
    // observer may call addObserver/removeObserver on this recorder
    // (same-thread mutation is part of the contract), which shifts or
    // reallocates the vector. Handles are issued monotonically and the
    // vector stays handle-sorted, so "next handle after the last one
    // fired" is a stable cursor. Observers added during this
    // notification (handle >= first_new) first fire for the next op;
    // removed observers that have not fired yet are skipped.
    const int first_new = next_observer_;
    int last_fired = -1;
    for (;;) {
        std::size_t idx = observers_.size();
        for (std::size_t i = 0; i < observers_.size(); ++i) {
            if (observers_[i].first > last_fired) {
                idx = i;
                break;
            }
        }
        if (idx == observers_.size() ||
            observers_[idx].first >= first_new)
            break;
        last_fired = observers_[idx].first;
        // Copy so an observer that removes itself stays alive for the
        // duration of its own invocation.
        OpObserver fn = observers_[idx].second;
        fn(op, label);
    }
}

OpId
TraceRecorder::chainTail(std::uint32_t actor) const
{
    if (actor >= chain_tails_.size())
        return InvalidOpId;
    return chain_tails_[actor];
}

void
TraceRecorder::setChainTail(std::uint32_t actor, OpId op)
{
    if (!trace_)
        return;
    if (actor >= chain_tails_.size())
        chain_tails_.resize(actor + 1, InvalidOpId);
    chain_tails_[actor] = op;
}

}  // namespace hix::sim
