#include "sim/trace.h"

#include "common/logging.h"

namespace hix::sim
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Compute:
        return "compute";
      case OpKind::CryptoCpu:
        return "crypto_cpu";
      case OpKind::CryptoGpu:
        return "crypto_gpu";
      case OpKind::Transfer:
        return "transfer";
      case OpKind::Control:
        return "control";
      case OpKind::Init:
        return "init";
    }
    return "unknown";
}

OpId
Trace::add(ResourceId resource, Tick duration, std::vector<OpId> deps,
           OpKind kind, std::uint64_t bytes, std::string label,
           GpuContextId gpu_ctx)
{
    Op op;
    op.id = static_cast<OpId>(ops_.size());
    op.resource = resource;
    op.duration = duration;
    for (OpId d : deps) {
        if (d == InvalidOpId)
            continue;
        if (d >= op.id)
            hix_panic("Trace: forward dependency ", d, " from op ", op.id);
        op.deps.push_back(d);
    }
    op.kind = kind;
    op.bytes = bytes;
    op.label = std::move(label);
    op.gpuCtx = gpu_ctx;
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

Tick
Trace::totalDuration(OpKind kind) const
{
    Tick total = 0;
    for (const Op &op : ops_)
        if (op.kind == kind)
            total += op.duration;
    return total;
}

std::uint64_t
Trace::totalBytes(OpKind kind) const
{
    std::uint64_t total = 0;
    for (const Op &op : ops_)
        if (op.kind == kind)
            total += op.bytes;
    return total;
}

OpId
Trace::append(const Trace &other)
{
    const OpId offset = static_cast<OpId>(ops_.size());
    for (const Op &src : other.ops_) {
        Op op = src;
        op.id += offset;
        for (OpId &d : op.deps)
            d += offset;
        ops_.push_back(std::move(op));
    }
    return offset;
}

OpId
TraceRecorder::record(std::uint32_t actor, ResourceId resource,
                      Tick duration, OpKind kind, std::uint64_t bytes,
                      std::string label, GpuContextId gpu_ctx,
                      std::vector<OpId> extra_deps)
{
    if (!trace_)
        return InvalidOpId;
    if (actor >= chain_tails_.size())
        chain_tails_.resize(actor + 1, InvalidOpId);
    std::vector<OpId> deps = std::move(extra_deps);
    if (chain_tails_[actor] != InvalidOpId)
        deps.push_back(chain_tails_[actor]);
    OpId id = trace_->add(resource, duration, std::move(deps), kind,
                          bytes, std::move(label), gpu_ctx);
    chain_tails_[actor] = id;
    notify(id);
    return id;
}

OpId
TraceRecorder::recordDetached(ResourceId resource, Tick duration,
                              OpKind kind, std::vector<OpId> deps,
                              std::uint64_t bytes, std::string label,
                              GpuContextId gpu_ctx)
{
    if (!trace_)
        return InvalidOpId;
    OpId id = trace_->add(resource, duration, std::move(deps), kind,
                          bytes, std::move(label), gpu_ctx);
    notify(id);
    return id;
}

int
TraceRecorder::addObserver(OpObserver observer)
{
    const int handle = next_observer_++;
    observers_.emplace_back(handle, std::move(observer));
    return handle;
}

void
TraceRecorder::removeObserver(int handle)
{
    std::erase_if(observers_,
                  [handle](const auto &e) { return e.first == handle; });
}

void
TraceRecorder::notify(OpId id)
{
    if (observers_.empty())
        return;
    // Copy the op: an observer may append further ops (through code it
    // calls), which can reallocate the trace's storage.
    const Op op = trace_->op(id);
    for (const auto &[handle, observer] : observers_)
        observer(op);
}

OpId
TraceRecorder::chainTail(std::uint32_t actor) const
{
    if (actor >= chain_tails_.size())
        return InvalidOpId;
    return chain_tails_[actor];
}

void
TraceRecorder::setChainTail(std::uint32_t actor, OpId op)
{
    if (!trace_)
        return;
    if (actor >= chain_tails_.size())
        chain_tails_.resize(actor + 1, InvalidOpId);
    chain_tails_[actor] = op;
}

}  // namespace hix::sim
