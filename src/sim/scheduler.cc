#include "sim/scheduler.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <functional>
#include <queue>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace hix::sim
{

namespace
{

struct ResState
{
    Tick freeAt = 0;
    GpuContextId lastCtx = NoGpuContext;
};

}  // namespace

ScheduleResult
scheduleReference(const Trace &trace, const SchedulerConfig &config)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    if (n == 0)
        return res;

    std::vector<std::uint32_t> pending_deps(n, 0);
    std::vector<std::vector<OpId>> dependents(n);
    std::vector<Tick> ready_time(n, 0);
    for (const Op &op : ops) {
        pending_deps[op.id] = op.depCount;
        for (OpId d : trace.deps(op))
            dependents[d].push_back(op.id);
    }

    std::vector<OpId> ready;
    ready.reserve(64);
    for (const Op &op : ops)
        if (pending_deps[op.id] == 0)
            ready.push_back(op.id);

    std::unordered_map<ResourceId, ResState, ResourceIdHash> rstate;
    std::size_t scheduled = 0;

    while (!ready.empty()) {
        // Pick the ready op with the smallest dispatch time, i.e.
        // max(ready, engine free) *before* any switch penalty: real
        // hardware switches away the moment the resident context has
        // nothing pending — it cannot wait for work that will arrive
        // a few microseconds later. The resident context only wins
        // ties (the Fermi policy: run the current context while it
        // has pending requests).
        std::size_t best_idx = 0;
        Tick best_eff = MaxTick;
        bool best_resident = false;
        for (std::size_t i = 0; i < ready.size(); ++i) {
            const Op &op = ops[ready[i]];
            const ResState &rs = rstate[op.resource];
            const Tick eff = std::max(ready_time[op.id], rs.freeAt);
            const bool resident =
                op.resource.unit != ResUnit::GpuCompute ||
                op.gpuCtx == NoGpuContext ||
                rs.lastCtx == NoGpuContext || rs.lastCtx == op.gpuCtx;
            const bool better =
                eff < best_eff ||
                (eff == best_eff &&
                 ((resident && !best_resident) ||
                  (resident == best_resident &&
                   ready[i] < ready[best_idx])));
            if (better) {
                best_eff = eff;
                best_idx = i;
                best_resident = resident;
            }
        }

        const OpId id = ready[best_idx];
        ready.erase(ready.begin() + best_idx);
        const Op &op = ops[id];
        ResState &rs = rstate[op.resource];

        Tick start = std::max(ready_time[id], rs.freeAt);
        if (op.resource.unit == ResUnit::GpuCompute &&
            op.gpuCtx != NoGpuContext) {
            if (rs.lastCtx != NoGpuContext && rs.lastCtx != op.gpuCtx) {
                start += config.gpuCtxSwitchTicks;
                ++res.gpuCtxSwitches;
            }
            rs.lastCtx = op.gpuCtx;
        }

        const Tick finish = start + op.duration;
        res.start[id] = start;
        res.finish[id] = finish;
        rs.freeAt = finish;
        res.makespan = std::max(res.makespan, finish);

        ResourceUsage &use = res.usage[op.resource];
        use.busy += op.duration;
        use.lastFree = std::max(use.lastFree, finish);
        ++use.ops;
        res.kindBusy[op.kind] += op.duration;

        for (OpId dep_id : dependents[id]) {
            ready_time[dep_id] = std::max(ready_time[dep_id], finish);
            if (--pending_deps[dep_id] == 0)
                ready.push_back(dep_id);
        }
        ++scheduled;
    }

    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");
    return res;
}

// ---------------------------------------------------------------------------
// O(n log n) engine.
//
// The reference scan above is the specification: on every iteration
// it commits the ready op minimising the key
//
//     (eff = max(ready_time, freeAt), !resident, op id)
//
// lexicographically. The fast engine reproduces that exact total
// order with per-resource pending queues and a global heap that holds
// ONE versioned candidate per resource:
//
//  - Ops waiting on a resource split into a `future` min-heap (keyed
//    by ready_time, for ops whose ready_time exceeds the resource's
//    freeAt) and a backlog (ready_time <= freeAt, so every backlog op
//    ties at eff == freeAt). The backlog keeps a min-id heap of all
//    ops plus, on GPU compute engines, one min-id heap per context so
//    the resident-context winner is an O(1) peek.
//  - A resource's candidate is its key-minimal pending op: the
//    backlog winner at eff == freeAt if the backlog is non-empty,
//    else the minimal-ready_time future op (ties broken resident
//    first, then min id).
//  - Whenever an event changes a resource's state (an op commits on
//    it, bumping freeAt/lastCtx, or a newly-ready op arrives), the
//    resource's version counter is bumped and a fresh candidate is
//    pushed; stale heap entries are discarded on pop. Committed ops
//    are lazily purged from the pending heaps via a done[] flag.
//
// Since resource state is immutable between the refresh that pushed a
// candidate and the pop that commits it, every pop of a current-
// version entry commits exactly the op the reference scan would pick,
// so the two engines produce bit-identical schedules (golden tests
// enforce this).
// ---------------------------------------------------------------------------

namespace
{

using IdHeap =
    std::priority_queue<OpId, std::vector<OpId>, std::greater<OpId>>;

struct FutureEnt
{
    Tick rt;
    OpId id;
};

struct FutureGreater
{
    bool
    operator()(const FutureEnt &a, const FutureEnt &b) const
    {
        return a.rt != b.rt ? a.rt > b.rt : a.id > b.id;
    }
};

using FutureHeap =
    std::priority_queue<FutureEnt, std::vector<FutureEnt>, FutureGreater>;

/** One candidate in the global heap; stale when version mismatches. */
struct HeapEnt
{
    Tick eff;
    OpId id;
    std::uint32_t res;
    std::uint64_t version;
    bool notResident;
};

struct HeapGreater
{
    bool
    operator()(const HeapEnt &a, const HeapEnt &b) const
    {
        if (a.eff != b.eff)
            return a.eff > b.eff;
        if (a.notResident != b.notResident)
            return a.notResident && !b.notResident;
        return a.id > b.id;
    }
};

struct ResSched
{
    Tick freeAt = 0;
    GpuContextId lastCtx = NoGpuContext;
    bool isGpu = false;
    std::uint64_t version = 0;
    FutureHeap future;
    IdHeap backlog;
    /** GPU engines only: backlog split per context (ctx-less ops
     *  bucket under NoGpuContext, they are always resident). */
    std::unordered_map<GpuContextId, IdHeap> byCtx;
};

}  // namespace

ScheduleResult
schedule(const Trace &trace, const SchedulerConfig &config)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    if (n == 0)
        return res;

    // Dense resource table: hash each distinct ResourceId once, then
    // the hot loop runs on small integer indices only.
    std::unordered_map<ResourceId, std::uint32_t, ResourceIdHash>
        res_index;
    std::vector<ResourceId> resources;
    std::vector<std::uint32_t> res_of(n);
    for (const Op &op : ops) {
        auto [it, inserted] = res_index.try_emplace(
            op.resource, static_cast<std::uint32_t>(resources.size()));
        if (inserted)
            resources.push_back(op.resource);
        res_of[op.id] = it->second;
    }
    const std::size_t nres = resources.size();

    // Dependents as CSR; duplicates kept (each occurrence counts one
    // pending slot, exactly as the reference builds them).
    std::vector<std::uint32_t> pending(n);
    std::vector<std::uint32_t> dep_off(n + 1, 0);
    std::size_t edges = 0;
    for (const Op &op : ops) {
        pending[op.id] = op.depCount;
        edges += op.depCount;
        for (OpId d : trace.deps(op))
            ++dep_off[d + 1];
    }
    for (std::size_t i = 0; i < n; ++i)
        dep_off[i + 1] += dep_off[i];
    std::vector<OpId> dependents(edges);
    {
        std::vector<std::uint32_t> cursor(dep_off.begin(),
                                          dep_off.end() - 1);
        for (const Op &op : ops)
            for (OpId d : trace.deps(op))
                dependents[cursor[d]++] = op.id;
    }

    std::vector<Tick> ready_time(n, 0);
    std::vector<char> done(n, 0);

    std::vector<ResSched> rs(nres);
    for (std::size_t r = 0; r < nres; ++r)
        rs[r].isGpu = resources[r].unit == ResUnit::GpuCompute;

    std::priority_queue<HeapEnt, std::vector<HeapEnt>, HeapGreater>
        gheap;
    std::vector<FutureEnt> tie_buf;

    auto purgeIds = [&](IdHeap &h) {
        while (!h.empty() && done[h.top()])
            h.pop();
    };
    auto purgeFuture = [&](FutureHeap &h) {
        while (!h.empty() && done[h.top().id])
            h.pop();
    };

    auto pushPending = [&](std::uint32_t ridx, OpId id) {
        ResSched &r = rs[ridx];
        if (ready_time[id] > r.freeAt) {
            r.future.push({ready_time[id], id});
        } else {
            r.backlog.push(id);
            if (r.isGpu)
                r.byCtx[ops[id].gpuCtx].push(id);
        }
    };

    // Recompute resource ridx's candidate and push it with a fresh
    // version; called after every event that touches the resource.
    auto refresh = [&](std::uint32_t ridx) {
        ResSched &r = rs[ridx];
        ++r.version;

        // Future ops whose ready_time the resource has caught up with
        // become backlog (they now tie at eff == freeAt).
        purgeFuture(r.future);
        while (!r.future.empty() && r.future.top().rt <= r.freeAt) {
            const OpId id = r.future.top().id;
            r.future.pop();
            r.backlog.push(id);
            if (r.isGpu)
                r.byCtx[ops[id].gpuCtx].push(id);
            purgeFuture(r.future);
        }

        purgeIds(r.backlog);
        if (!r.backlog.empty()) {
            bool resident = true;
            OpId best = InvalidOpId;
            if (!r.isGpu || r.lastCtx == NoGpuContext) {
                best = r.backlog.top();
            } else {
                for (GpuContextId key : {r.lastCtx, NoGpuContext}) {
                    auto it = r.byCtx.find(key);
                    if (it == r.byCtx.end())
                        continue;
                    purgeIds(it->second);
                    if (!it->second.empty())
                        best = std::min(best, it->second.top());
                }
                if (best == InvalidOpId) {
                    best = r.backlog.top();
                    resident = false;
                }
            }
            gheap.push({r.freeAt, best, ridx, r.version, !resident});
            return;
        }

        if (r.future.empty())
            return;
        // All candidates tie at eff == minimal ready_time; resident
        // ops win, then min id. The tied group is tiny in practice
        // (distinct dep finish times), so pop-and-push-back is cheap.
        const Tick rt_min = r.future.top().rt;
        tie_buf.clear();
        OpId best = InvalidOpId;
        bool best_res = false;
        while (!r.future.empty() && r.future.top().rt == rt_min) {
            const FutureEnt e = r.future.top();
            r.future.pop();
            if (done[e.id])
                continue;
            tie_buf.push_back(e);
            const Op &op = ops[e.id];
            const bool resident = !r.isGpu ||
                                  op.gpuCtx == NoGpuContext ||
                                  r.lastCtx == NoGpuContext ||
                                  r.lastCtx == op.gpuCtx;
            if (best == InvalidOpId || (resident && !best_res) ||
                (resident == best_res && e.id < best)) {
                best = e.id;
                best_res = resident;
            }
        }
        for (const FutureEnt &e : tie_buf)
            r.future.push(e);
        gheap.push({rt_min, best, ridx, r.version, !best_res});
    };

    // Dedup buffer so one commit refreshes each touched resource once.
    std::vector<char> touched(nres, 0);
    std::vector<std::uint32_t> touched_list;
    touched_list.reserve(8);
    auto touch = [&](std::uint32_t ridx) {
        if (!touched[ridx]) {
            touched[ridx] = 1;
            touched_list.push_back(ridx);
        }
    };
    auto refreshTouched = [&] {
        for (std::uint32_t ridx : touched_list) {
            touched[ridx] = 0;
            refresh(ridx);
        }
        touched_list.clear();
    };

    for (const Op &op : ops) {
        if (pending[op.id] == 0) {
            pushPending(res_of[op.id], op.id);
            touch(res_of[op.id]);
        }
    }
    refreshTouched();

    // Usage accumulates in dense arrays; the result's std::maps are
    // filled once at the end.
    std::vector<Tick> busy(nres, 0), last_free(nres, 0);
    std::vector<std::uint64_t> op_count(nres, 0);
    Tick kind_busy[OpKindCount] = {};
    bool kind_seen[OpKindCount] = {};

    std::size_t scheduled = 0;
    while (!gheap.empty()) {
        const HeapEnt e = gheap.top();
        gheap.pop();
        ResSched &r = rs[e.res];
        if (e.version != r.version)
            continue;
        const Op &op = ops[e.id];

        Tick start = std::max(ready_time[e.id], r.freeAt);
        if (r.isGpu && op.gpuCtx != NoGpuContext) {
            if (r.lastCtx != NoGpuContext && r.lastCtx != op.gpuCtx) {
                start += config.gpuCtxSwitchTicks;
                ++res.gpuCtxSwitches;
            }
            r.lastCtx = op.gpuCtx;
        }

        const Tick finish = start + op.duration;
        res.start[e.id] = start;
        res.finish[e.id] = finish;
        r.freeAt = finish;
        res.makespan = std::max(res.makespan, finish);

        busy[e.res] += op.duration;
        last_free[e.res] = std::max(last_free[e.res], finish);
        ++op_count[e.res];
        const auto k = static_cast<std::size_t>(op.kind);
        kind_busy[k] += op.duration;
        kind_seen[k] = true;

        done[e.id] = 1;
        ++scheduled;
        touch(e.res);

        for (std::uint32_t i = dep_off[e.id]; i < dep_off[e.id + 1];
             ++i) {
            const OpId dep = dependents[i];
            ready_time[dep] = std::max(ready_time[dep], finish);
            if (--pending[dep] == 0) {
                pushPending(res_of[dep], dep);
                touch(res_of[dep]);
            }
        }
        refreshTouched();
    }

    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");

    for (std::size_t r = 0; r < nres; ++r) {
        ResourceUsage &use = res.usage[resources[r]];
        use.busy = busy[r];
        use.lastFree = last_free[r];
        use.ops = op_count[r];
    }
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (kind_seen[k])
            res.kindBusy[static_cast<OpKind>(k)] = kind_busy[k];
    return res;
}

// ---------------------------------------------------------------------------
// scheduleParallel: component / window worker pool over a cache-lean
// core.
//
// The engine is built from three bit-identical pieces:
//
//  1. A cache-lean serial core. All per-op state lives in one 24-byte
//     record (HotOp); the per-resource candidate is a cache that a
//     single arrival merges into in O(1) (it is exactly the
//     candLess-min refresh() would compute), and a full refresh only
//     runs after a commit on that resource, because lastCtx/freeAt —
//     the only inputs that can invalidate other entries' candidates —
//     change only then. The op's start time is written back into the
//     dead ready slot at commit; finish = start + dur is recomputed in
//     the final unzip, so the commit loop touches no side arrays.
//
//  2. Component fan-out. Resources linked by a dependency edge are
//     unioned; ops on resources in different components never
//     interact (per-resource state is only mutated by that resource's
//     commits, and cross-resource influence travels only along
//     dependency edges), so each component is an independent
//     scheduling problem. Components run on a worker pool, largest
//     first, writing disjoint slices of the shared start/finish
//     arrays; per-component stats merge in component-id order.
//
//  3. A window-synchronized engine for a single shared component. Let
//     L be the minimum duration over ops that have a dependent on
//     another resource. Within a window [T0, T0 + L), every commit
//     starts at or after T0, so any cross-resource arrival it
//     produces lands at or after T0 + L — the *next* window. Each
//     resource can therefore commit everything with effective time
//     below T0 + L without consulting the others; cross arrivals are
//     exchanged through per-thread-pair outboxes at a barrier, applied
//     by the owning thread (max-ready and pending-decrement are
//     commutative, and the pending counter reaches zero only on the
//     final edge, so the push sees the fully-resolved ready time), and
//     the next T0 is the reduced minimum candidate. Serial tie-breaks
//     never reach across a window boundary (strictly smaller eff
//     always wins), so per-resource commit sequences — and hence every
//     output field — are bit-identical to schedule().
//
// Traces whose shape exceeds the packed-field limits of HotOp (2^32
// durations, 2^16 deps per op, 2^16 resources or GPU contexts) fall
// back to schedule() wholesale.
// ---------------------------------------------------------------------------

// Named (not anonymous) so StreamingScheduler::Impl — an externally
// visible type — can hold these without -Wsubobject-linkage noise;
// the namespace is still private to this translation unit in
// practice (nothing declares it elsewhere).
namespace par
{

struct HotOp
{
    Tick ready = 0;             // dep high-water; start after commit
    std::uint32_t dur = 0;
    std::uint32_t depOff = 0;   // dependents CSR begin
    std::uint16_t pending = 0;  // deps not yet committed
    std::uint16_t ctx = 0;      // dense gpu ctx (0 == none)
    std::uint16_t res = 0;      // dense resource (component-local)
    std::uint8_t kind = 0;
    std::uint8_t pad = 0;
};
static_assert(sizeof(HotOp) == 24);

/** Min-id queue tuned for the commit loop's near-sorted arrival
 *  order: ascending pushes append to a FIFO (O(1) push AND pop);
 *  the rare out-of-order id falls into a small binary heap. */
struct IdHeap
{
    std::vector<OpId> fifo;  // ascending run; live ids at [head, end)
    std::size_t head = 0;
    std::vector<OpId> ovf;   // min-heap of out-of-order arrivals
    bool
    empty() const
    {
        return head == fifo.size() && ovf.empty();
    }
    OpId
    top() const
    {
        if (head == fifo.size())
            return ovf[0];
        if (ovf.empty() || fifo[head] < ovf[0])
            return fifo[head];
        return ovf[0];
    }
    void
    push(OpId x)
    {
        if (head == fifo.size()) {
            fifo.clear();
            head = 0;
            fifo.push_back(x);
        } else if (x >= fifo.back()) {
            fifo.push_back(x);
        } else {
            ovf.push_back(x);
            std::push_heap(ovf.begin(), ovf.end(),
                           std::greater<OpId>{});
        }
    }
    void
    pop()
    {
        if (head != fifo.size() &&
            (ovf.empty() || fifo[head] < ovf[0])) {
            ++head;
            // Amortized compaction keeps the dead prefix bounded.
            if (head >= 4096 && head * 2 >= fifo.size()) {
                fifo.erase(fifo.begin(),
                           fifo.begin() +
                               static_cast<std::ptrdiff_t>(head));
                head = 0;
            }
        } else {
            std::pop_heap(ovf.begin(), ovf.end(),
                          std::greater<OpId>{});
            ovf.pop_back();
        }
    }
};

struct FutEnt
{
    Tick rt;
    OpId id;
};
struct FutGreater
{
    bool
    operator()(const FutEnt &a, const FutEnt &b) const
    {
        return a.rt != b.rt ? a.rt > b.rt : a.id > b.id;
    }
};
/** Min-(rt, id) queue with the same near-sorted-FIFO shape as IdHeap:
 *  producer finishes arrive in commit order, so per-resource pushes
 *  are (almost) nondecreasing and the common path is O(1). */
struct FutHeap
{
    std::vector<FutEnt> fifo;  // nondecreasing (rt, id) run
    std::size_t head = 0;
    std::vector<FutEnt> ovf;   // min-heap of out-of-order arrivals
    bool
    empty() const
    {
        return head == fifo.size() && ovf.empty();
    }
    const FutEnt &
    top() const
    {
        if (head == fifo.size())
            return ovf[0];
        if (ovf.empty() || !FutGreater{}(fifo[head], ovf[0]))
            return fifo[head];
        return ovf[0];
    }
    void
    push(FutEnt x)
    {
        if (head == fifo.size()) {
            fifo.clear();
            head = 0;
            fifo.push_back(x);
        } else if (!FutGreater{}(fifo.back(), x)) {
            fifo.push_back(x);
        } else {
            ovf.push_back(x);
            std::push_heap(ovf.begin(), ovf.end(), FutGreater{});
        }
    }
    void
    pop()
    {
        if (head != fifo.size() &&
            (ovf.empty() || !FutGreater{}(fifo[head], ovf[0]))) {
            ++head;
            if (head >= 4096 && head * 2 >= fifo.size()) {
                fifo.erase(fifo.begin(),
                           fifo.begin() +
                               static_cast<std::ptrdiff_t>(head));
                head = 0;
            }
        } else {
            std::pop_heap(ovf.begin(), ovf.end(), FutGreater{});
            ovf.pop_back();
        }
    }
    /** Remove the entry with op id @p id (the GPU residency tie-break
     *  can commit a non-minimal future entry). */
    void
    erase(OpId id)
    {
        for (std::size_t i = head; i < fifo.size(); ++i) {
            if (fifo[i].id == id) {
                fifo.erase(fifo.begin() +
                           static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
        for (std::size_t i = 0; i < ovf.size(); ++i) {
            if (ovf[i].id == id) {
                ovf[i] = ovf.back();
                ovf.pop_back();
                std::make_heap(ovf.begin(), ovf.end(), FutGreater{});
                return;
            }
        }
    }
};

struct Cand
{
    Tick eff = MaxTick;
    OpId id = InvalidOpId;
    std::uint8_t notResident = 0;
    std::uint8_t src = 0;  // 1 = backlog, 2 = future
};

inline bool
candLess(const Cand &a, const Cand &b)
{
    if (a.eff != b.eff)
        return a.eff < b.eff;
    if (a.notResident != b.notResident)
        return a.notResident < b.notResident;
    return a.id < b.id;
}

struct Res
{
    Tick freeAt = 0;
    std::uint32_t lastCtx = 0;  // dense; 0 == none
    bool isGpu = false;
    std::uint32_t backlogCount = 0;
    FutHeap future;
    IdHeap backlog;
    std::vector<IdHeap> byCtx;
};

/** Per-resource queues + candidate cache over a HotOp array. */
struct SchedState
{
    const HotOp *hot = nullptr;
    std::vector<Res> rs;
    std::vector<Cand> cand;
};

inline void
pushArrival(SchedState &s, std::uint32_t ridx, OpId id, Tick rt)
{
    Res &r = s.rs[ridx];
    Cand e;
    if (rt > r.freeAt) {
        r.future.push({rt, id});
        e = {rt, id, 0, 2};
    } else {
        ++r.backlogCount;
        if (r.isGpu)
            r.byCtx[s.hot[id].ctx].push(id);
        else
            r.backlog.push(id);
        e = {r.freeAt, id, 0, 1};
    }
    if (r.isGpu) {
        const std::uint32_t ctx = s.hot[id].ctx;
        e.notResident = ctx != 0 && r.lastCtx != 0 && r.lastCtx != ctx;
    }
    // refreshRes() computes the candLess-min over per-entry candidates
    // {max(rt, freeAt), notResident, id}; a single arrival therefore
    // merges in O(1).
    if (candLess(e, s.cand[ridx]))
        s.cand[ridx] = e;
}

inline void
refreshRes(SchedState &s, std::uint32_t ridx, std::vector<FutEnt> &tie_buf)
{
    Res &r = s.rs[ridx];
    while (!r.future.empty() && r.future.top().rt <= r.freeAt) {
        const OpId id = r.future.top().id;
        r.future.pop();
        ++r.backlogCount;
        if (r.isGpu)
            r.byCtx[s.hot[id].ctx].push(id);
        else
            r.backlog.push(id);
    }
    Cand c;
    if (r.backlogCount > 0) {
        if (!r.isGpu) {
            c = {r.freeAt, r.backlog.top(), 0, 1};
        } else if (r.lastCtx == 0) {
            OpId best = InvalidOpId;
            for (const IdHeap &h : r.byCtx)
                if (!h.empty())
                    best = std::min(best, h.top());
            c = {r.freeAt, best, 0, 1};
        } else {
            OpId best = InvalidOpId;
            const IdHeap &rh = r.byCtx[r.lastCtx];
            if (!rh.empty())
                best = rh.top();
            const IdHeap &nh = r.byCtx[0];
            if (!nh.empty())
                best = std::min(best, nh.top());
            if (best != InvalidOpId) {
                c = {r.freeAt, best, 0, 1};
            } else {
                for (const IdHeap &h : r.byCtx)
                    if (!h.empty())
                        best = std::min(best, h.top());
                c = {r.freeAt, best, 1, 1};
            }
        }
    } else if (!r.future.empty()) {
        if (!r.isGpu) {
            c = {r.future.top().rt, r.future.top().id, 0, 2};
        } else {
            // Earliest-ready tie group may mix resident and foreign
            // contexts; pop the group to rank it, then push it back.
            const Tick rt_min = r.future.top().rt;
            tie_buf.clear();
            OpId best = InvalidOpId;
            bool best_res = false;
            while (!r.future.empty() && r.future.top().rt == rt_min) {
                const FutEnt e = r.future.top();
                r.future.pop();
                tie_buf.push_back(e);
                const bool resident = s.hot[e.id].ctx == 0 ||
                                      r.lastCtx == 0 ||
                                      r.lastCtx == s.hot[e.id].ctx;
                if (best == InvalidOpId || (resident && !best_res) ||
                    (resident == best_res && e.id < best)) {
                    best = e.id;
                    best_res = resident;
                }
            }
            for (const FutEnt &e : tie_buf)
                r.future.push(e);
            c = {rt_min, best,
                 static_cast<std::uint8_t>(best_res ? 0 : 1), 2};
        }
    }
    s.cand[ridx] = c;
}

/** Remove candidate @p c (resource @p ridx's current pick) from its
 *  queue. */
inline void
popCand(SchedState &s, std::uint32_t ridx, const Cand &c)
{
    Res &r = s.rs[ridx];
    if (c.src == 1) {
        --r.backlogCount;
        if (r.isGpu)
            r.byCtx[s.hot[c.id].ctx].pop();
        else
            r.backlog.pop();
    } else if (r.future.top().id == c.id) {
        r.future.pop();
    } else {
        // Non-top future commit (GPU residency tie-break may pick a
        // non-minimal entry).
        r.future.erase(c.id);
    }
}

/**
 * One pass over the trace computing everything every parallel path
 * needs: dense resource/context indices, per-resource busy totals,
 * the cross-resource lookahead (min duration over ops with a
 * dependent on another resource), resource-connected components, and
 * the lean-core eligibility gates.
 */
struct Prepared
{
    bool leanOk = true;
    std::uint32_t nres = 0;
    std::uint32_t nctx = 0;
    Tick crossLookahead = MaxTick;  // MaxTick: no cross edges at all
    Tick maxResBusy = 0;
    std::uint32_t compCount = 0;
    std::size_t edges = 0;
    std::vector<ResourceId> resources;      // dense id -> ResourceId
    std::vector<std::uint8_t> gpuRes;       // dense id -> is GpuCompute
    std::vector<std::uint32_t> resOf;       // op -> dense resource
    std::vector<std::uint16_t> ctxOf;       // op -> dense ctx (0 = none)
    std::vector<std::uint32_t> compOfRes;   // dense resource -> component
    std::vector<std::uint32_t> depStart;    // dependents CSR offsets (n+1)
};

/**
 * Tiny open-addressed 32-bit-key -> dense-index map. prepare() looks
 * up a resource and a context per op, so the table must stay in L1 —
 * unordered_map's per-node indirection costs more than the rest of
 * the per-op work combined on merged multi-user traces. A new key is
 * assigned the next dense index (== size() before the call), so the
 * caller detects insertion by comparing the returned value against
 * its own count. Values are bounded (<= 0x10000 by the lean gates),
 * so an all-ones slot can never be a live entry.
 */
class FlatIndex
{
public:
    FlatIndex() { slots_.assign(64, kEmpty); }

    std::uint32_t
    indexOf(std::uint32_t key)
    {
        std::uint32_t mask =
            static_cast<std::uint32_t>(slots_.size()) - 1;
        std::uint32_t i = (key * 0x9e3779b1u) & mask;
        while (slots_[i] != kEmpty) {
            if (static_cast<std::uint32_t>(slots_[i] >> 32) == key)
                return static_cast<std::uint32_t>(slots_[i]);
            i = (i + 1) & mask;
        }
        const std::uint32_t val = count_++;
        slots_[i] = (std::uint64_t(key) << 32) | val;
        if (2 * count_ > slots_.size())
            grow();
        return val;
    }

    std::uint32_t size() const { return count_; }

private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t(0);

    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kEmpty);
        const std::uint32_t mask =
            static_cast<std::uint32_t>(slots_.size()) - 1;
        for (std::uint64_t s : old) {
            if (s == kEmpty)
                continue;
            std::uint32_t i =
                (static_cast<std::uint32_t>(s >> 32) * 0x9e3779b1u) &
                mask;
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask;
            slots_[i] = s;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::uint32_t count_ = 0;
};

/** ResourceIdHash is injective (unit << 16 | index fits 24 bits), so
 *  it doubles as the packed FlatIndex key. */
inline std::uint32_t
packRes(ResourceId r)
{
    return (static_cast<std::uint32_t>(r.unit) << 16) | r.index;
}

Prepared
prepare(const Trace &trace, std::vector<HotOp> *hot)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();
    Prepared p;
    p.resOf.resize(n);
    p.ctxOf.resize(n);
    p.depStart.assign(n + 1, 0);
    if (hot)
        hot->assign(n + 1, HotOp{});  // whole-trace records, same pass

    FlatIndex res_index;
    FlatIndex ctx_index;
    ctx_index.indexOf(NoGpuContext);  // dense ctx 0 == none
    std::vector<std::uint32_t> parent;  // union-find over resources
    std::vector<Tick> res_busy;

    auto find = [&](std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];  // path halving
            x = parent[x];
        }
        return x;
    };

    ResourceId rk{};
    std::uint32_t rv = ~0u;
    GpuContextId xk = NoGpuContext;
    std::uint32_t xv = 0;
    for (const Op &op : ops) {
        if (rv == ~0u || !(op.resource == rk)) {
            rv = res_index.indexOf(packRes(op.resource));
            if (rv == p.resources.size()) {  // first appearance
                p.resources.push_back(op.resource);
                p.gpuRes.push_back(op.resource.unit ==
                                   ResUnit::GpuCompute);
                parent.push_back(rv);
                res_busy.push_back(0);
            }
            rk = op.resource;
        }
        p.resOf[op.id] = rv;
        if (op.gpuCtx != xk) {
            xv = ctx_index.indexOf(op.gpuCtx);
            xk = op.gpuCtx;
        }
        if (op.duration > 0xffffffffULL || op.depCount > 0xffff ||
            p.resources.size() > 0x10000 || ctx_index.size() > 0x10000) {
            p.leanOk = false;  // caller falls back to schedule()
            return p;
        }
        p.ctxOf[op.id] = static_cast<std::uint16_t>(xv);
        res_busy[rv] += op.duration;
        p.edges += op.depCount;
        if (hot) {
            HotOp &h = (*hot)[op.id];
            h.res = static_cast<std::uint16_t>(rv);
            h.ctx = static_cast<std::uint16_t>(xv);
            h.dur = static_cast<std::uint32_t>(op.duration);
            h.kind = static_cast<std::uint8_t>(op.kind);
            h.pending = static_cast<std::uint16_t>(op.depCount);
        }
        const std::uint32_t a = find(rv);
        if (hot) {
            // Producer res and dur share one HotOp cache line (filled
            // earlier in this pass — deps point backwards), where
            // resOf[d] + ops[d].duration would touch two.
            const HotOp *hs = hot->data();
            for (OpId d : trace.deps(op)) {
                ++p.depStart[d + 1];
                const HotOp &hd = hs[d];
                if (hd.res == rv)
                    continue;
                if (hd.dur < p.crossLookahead)
                    p.crossLookahead = hd.dur;
                const std::uint32_t b = find(hd.res);
                if (b != a)
                    parent[b] = a;  // a stays a root
            }
        } else {
            for (OpId d : trace.deps(op)) {
                ++p.depStart[d + 1];
                const std::uint32_t rb = p.resOf[d];
                if (rb == rv)
                    continue;
                const Tick ddur = ops[d].duration;
                if (ddur < p.crossLookahead)
                    p.crossLookahead = ddur;
                const std::uint32_t b = find(rb);
                if (b != a)
                    parent[b] = a;  // a stays a root
            }
        }
    }

    p.nres = static_cast<std::uint32_t>(p.resources.size());
    p.nctx = static_cast<std::uint32_t>(ctx_index.size());
    for (Tick b : res_busy)
        if (b > p.maxResBusy)
            p.maxResBusy = b;
    for (std::size_t i = 0; i < n; ++i)
        p.depStart[i + 1] += p.depStart[i];

    // Dense component ids in first-appearance op order (matches
    // Trace::components()).
    std::vector<std::uint32_t> dense(p.nres, ~0u);
    for (const Op &op : ops) {
        const std::uint32_t root = find(p.resOf[op.id]);
        if (dense[root] == ~0u)
            dense[root] = p.compCount++;
    }
    p.compOfRes.resize(p.nres);
    for (std::uint32_t r = 0; r < p.nres; ++r)
        p.compOfRes[r] = dense[find(r)];
    return p;
}

/** Finish the whole-trace hot array prepare() started (depOff
 *  offsets, including the sentinel in the extra record) and fill the
 *  dependents CSR. Consumes prep.depStart as the scatter cursor (the
 *  offsets live on in hot[].depOff). */
void
finishHotWhole(const Trace &trace, Prepared &prep,
               std::vector<HotOp> &hot, std::vector<OpId> &dependents)
{
    const std::size_t n = trace.size();
    for (std::size_t i = 0; i <= n; ++i)
        hot[i].depOff = prep.depStart[i];
    dependents.resize(prep.edges);
    for (const Op &op : trace.ops())
        for (OpId d : trace.deps(op))
            dependents[prep.depStart[d]++] = op.id;
}

/**
 * Same, for one component's member list (ascending global op ids).
 * Dependents carry component-local ids; @p local_of is a shared
 * n-sized scratch written at disjoint indices (every op belongs to
 * exactly one component). @p res_local_map must be nres-sized and all
 * ~0u on entry; the caller resets the entries listed in
 * @p resources_local (global dense resource ids, first-appearance
 * order) afterwards.
 */
void
buildHotSubset(const Trace &trace, const Prepared &prep,
               std::span<const OpId> members, std::uint32_t *local_of,
               std::vector<std::uint32_t> &res_local_map,
               std::vector<std::uint32_t> &resources_local,
               std::vector<HotOp> &hot, std::vector<OpId> &dependents)
{
    const std::size_t m = members.size();
    hot.assign(m + 1, HotOp{});
    resources_local.clear();
    std::vector<std::uint32_t> dep_count(m + 1, 0);
    std::size_t edges = 0;
    for (std::size_t l = 0; l < m; ++l) {
        const OpId g = members[l];
        local_of[g] = static_cast<std::uint32_t>(l);
        const Op &op = trace.op(g);
        const std::uint32_t gr = prep.resOf[g];
        std::uint32_t lr = res_local_map[gr];
        if (lr == ~0u) {
            lr = static_cast<std::uint32_t>(resources_local.size());
            res_local_map[gr] = lr;
            resources_local.push_back(gr);
        }
        HotOp &h = hot[l];
        h.res = static_cast<std::uint16_t>(lr);
        h.ctx = prep.ctxOf[g];
        h.dur = static_cast<std::uint32_t>(op.duration);
        h.kind = static_cast<std::uint8_t>(op.kind);
        h.pending = static_cast<std::uint16_t>(op.depCount);
        edges += op.depCount;
        // Deps precede the op and share its component, so their local
        // ids are already assigned.
        for (OpId d : trace.deps(op))
            ++dep_count[local_of[d] + 1];
    }
    for (std::size_t i = 0; i < m; ++i)
        dep_count[i + 1] += dep_count[i];
    dependents.resize(edges);
    std::vector<std::uint32_t> cursor(dep_count.begin(),
                                      dep_count.end() - 1);
    for (std::size_t l = 0; l < m; ++l)
        for (OpId d : trace.deps(trace.op(members[l])))
            dependents[cursor[local_of[d]]++] = static_cast<OpId>(l);
    for (std::size_t i = 0; i <= m; ++i)
        hot[i].depOff = dep_count[i];
}

/** Accumulated output of one lean-core run (local resource ids). */
struct LeanOut
{
    std::uint64_t ctxSwitches = 0;
    std::size_t scheduled = 0;
    std::vector<Tick> busy, lastFree;
    std::vector<std::uint64_t> opCount;
    Tick kindBusy[OpKindCount] = {};
    bool kindSeen[OpKindCount] = {};
};

/**
 * The serial lean core: commits every schedulable op, leaving each
 * op's start time in hot[i].ready. @p is_gpu is indexed by local
 * dense resource id.
 */
void
runLeanLoop(std::vector<HotOp> &hot, const std::vector<OpId> &dependents,
            const std::vector<std::uint8_t> &is_gpu, std::size_t nctx,
            Tick switch_cost, LeanOut &out)
{
    const std::size_t m = hot.size() - 1;
    const std::size_t nres = is_gpu.size();
    SchedState s;
    s.hot = hot.data();
    s.rs.resize(nres);
    s.cand.resize(nres);
    for (std::size_t r = 0; r < nres; ++r) {
        s.rs[r].isGpu = is_gpu[r] != 0;
        if (s.rs[r].isGpu)
            s.rs[r].byCtx.resize(nctx);
    }
    out.busy.assign(nres, 0);
    out.lastFree.assign(nres, 0);
    out.opCount.assign(nres, 0);

    std::vector<FutEnt> tie_buf;
    for (std::size_t i = 0; i < m; ++i)
        if (hot[i].pending == 0)
            pushArrival(s, hot[i].res, static_cast<OpId>(i),
                        hot[i].ready);
    for (std::size_t r = 0; r < nres; ++r)
        refreshRes(s, static_cast<std::uint32_t>(r), tie_buf);

    for (;;) {
        // Linear argmin over per-resource candidates. Empty slots
        // carry eff == MaxTick so candLess screens them without a
        // separate validity branch; all-empty leaves an invalid pick.
        std::uint32_t ridx = 0;
        for (std::uint32_t r2 = 1; r2 < nres; ++r2)
            if (candLess(s.cand[r2], s.cand[ridx]))
                ridx = r2;
        if (s.cand[ridx].id == InvalidOpId)
            break;

        const Cand c = s.cand[ridx];
        const OpId id = c.id;
        Res &r = s.rs[ridx];
        HotOp &h = hot[id];
        popCand(s, ridx, c);

        Tick start = std::max(h.ready, r.freeAt);
        if (r.isGpu && h.ctx != 0) {
            if (r.lastCtx != 0 && r.lastCtx != h.ctx) {
                start += switch_cost;
                ++out.ctxSwitches;
            }
            r.lastCtx = h.ctx;
        }

        // Commit order correlates with op-id order in steady state;
        // pull the records ~64 commits ahead into cache with write
        // intent.
        __builtin_prefetch(
            &hot[std::min<std::size_t>(std::size_t(id) + 64, m - 1)],
            1);

        const Tick finish = start + h.dur;
        r.freeAt = finish;
        out.busy[ridx] += h.dur;
        if (finish > out.lastFree[ridx])
            out.lastFree[ridx] = finish;
        ++out.opCount[ridx];
        out.kindBusy[h.kind] += h.dur;
        out.kindSeen[h.kind] = true;
        ++out.scheduled;

        const std::uint32_t dep_end = (&h)[1].depOff;
        for (std::uint32_t e = h.depOff; e < dep_end; ++e) {
            const OpId dep = dependents[e];
            HotOp &hd = hot[dep];
            if (finish > hd.ready)
                hd.ready = finish;
            if (--hd.pending == 0)
                pushArrival(s, hd.res, dep, hd.ready);
        }
        h.ready = start;  // slot is dead; start lives here now
        refreshRes(s, ridx, tie_buf);
    }
}

/** Whole-trace serial lean path (also the threads==1 path). */
ScheduleResult
runLeanWhole(const Trace &trace, const SchedulerConfig &config,
             Prepared &prep, std::vector<HotOp> &hot)
{
    const std::size_t n = trace.size();
    ScheduleResult res;

    std::vector<OpId> dependents;
    finishHotWhole(trace, prep, hot, dependents);

    LeanOut out;
    runLeanLoop(hot, dependents, prep.gpuRes, prep.nctx,
                config.gpuCtxSwitchTicks, out);
    if (out.scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ",
                  out.scheduled, " of ", n, " ops");

    res.gpuCtxSwitches = out.ctxSwitches;
    // push_back, not assign-then-overwrite: at 1M ops the redundant
    // zero pass is measurable.
    res.start.reserve(n);
    res.finish.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        res.start.push_back(hot[i].ready);
        res.finish.push_back(hot[i].ready + hot[i].dur);
    }
    for (std::uint32_t r = 0; r < prep.nres; ++r) {
        ResourceUsage &use = res.usage[prep.resources[r]];
        use.busy = out.busy[r];
        use.lastFree = out.lastFree[r];
        use.ops = out.opCount[r];
        if (out.lastFree[r] > res.makespan)
            res.makespan = out.lastFree[r];
    }
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (out.kindSeen[k])
            res.kindBusy[static_cast<OpKind>(k)] = out.kindBusy[k];
    return res;
}

/**
 * Schedule each member list on a worker pool, largest list first.
 * Every list must be an ascending, dependency- and resource-closed
 * set of op ids (a resource-connected component or a union of them).
 * Start/finish land in @p res (pre-sized to the trace); per-list
 * stats land in @p outs / @p comp_resources (pre-sized to the list
 * count), which the caller merges deterministically.
 */
void
runCompLists(const Trace &trace, const SchedulerConfig &config,
             const Prepared &prep, unsigned threads,
             const std::vector<std::vector<OpId>> &members,
             ScheduleResult &res, std::vector<LeanOut> &outs,
             std::vector<std::vector<std::uint32_t>> &comp_resources)
{
    const auto nc = static_cast<std::uint32_t>(members.size());
    if (nc == 0)
        return;

    // Claim largest lists first so the pool drains evenly.
    std::vector<std::uint32_t> order(nc);
    for (std::uint32_t c = 0; c < nc; ++c)
        order[c] = c;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return members[a].size() != members[b].size()
                             ? members[a].size() > members[b].size()
                             : a < b;
              });

    std::vector<std::uint32_t> local_of(trace.size());
    std::atomic<std::uint32_t> next{0};

    auto workerFn = [&]() {
        std::vector<std::uint32_t> res_local_map(prep.nres, ~0u);
        std::vector<HotOp> hot;
        std::vector<OpId> dependents;
        std::vector<std::uint8_t> is_gpu;
        for (;;) {
            const std::uint32_t k =
                next.fetch_add(1, std::memory_order_relaxed);
            if (k >= nc)
                break;
            const std::uint32_t comp = order[k];
            const auto &mem = members[comp];
            buildHotSubset(trace, prep, mem, local_of.data(),
                           res_local_map, comp_resources[comp], hot,
                           dependents);
            is_gpu.clear();
            for (std::uint32_t gr : comp_resources[comp])
                is_gpu.push_back(prep.gpuRes[gr]);
            runLeanLoop(hot, dependents, is_gpu, prep.nctx,
                        config.gpuCtxSwitchTicks, outs[comp]);
            // Disjoint slices of the shared start/finish arrays.
            for (std::size_t l = 0; l < mem.size(); ++l) {
                res.start[mem[l]] = hot[l].ready;
                res.finish[mem[l]] = hot[l].ready + hot[l].dur;
            }
            for (std::uint32_t gr : comp_resources[comp])
                res_local_map[gr] = ~0u;
        }
    };

    const unsigned workers = std::max<unsigned>(
        1, std::min<unsigned>(threads, nc));
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(workerFn);
    workerFn();
    for (std::thread &t : pool)
        t.join();
}

/** Fan resource-connected components out across a worker pool. */
ScheduleResult
runComponents(const Trace &trace, const SchedulerConfig &config,
              const Prepared &prep, unsigned threads)
{
    const std::size_t n = trace.size();
    const std::uint32_t nc = prep.compCount;

    std::vector<std::uint32_t> sizes(nc, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++sizes[prep.compOfRes[prep.resOf[i]]];
    std::vector<std::vector<OpId>> members(nc);
    for (std::uint32_t c = 0; c < nc; ++c)
        members[c].reserve(sizes[c]);
    for (std::size_t i = 0; i < n; ++i)
        members[prep.compOfRes[prep.resOf[i]]].push_back(
            static_cast<OpId>(i));

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);

    std::vector<LeanOut> outs(nc);
    std::vector<std::vector<std::uint32_t>> comp_resources(nc);
    runCompLists(trace, config, prep, threads, members, res, outs,
                 comp_resources);

    // Deterministic merge in component-id order.
    std::size_t scheduled = 0;
    for (const LeanOut &o : outs)
        scheduled += o.scheduled;
    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");
    Tick kind_busy[OpKindCount] = {};
    bool kind_seen[OpKindCount] = {};
    for (std::uint32_t c = 0; c < nc; ++c) {
        const LeanOut &o = outs[c];
        res.gpuCtxSwitches += o.ctxSwitches;
        for (std::size_t lr = 0; lr < comp_resources[c].size(); ++lr) {
            ResourceUsage &use =
                res.usage[prep.resources[comp_resources[c][lr]]];
            use.busy = o.busy[lr];
            use.lastFree = o.lastFree[lr];
            use.ops = o.opCount[lr];
            if (o.lastFree[lr] > res.makespan)
                res.makespan = o.lastFree[lr];
        }
        for (std::size_t k = 0; k < OpKindCount; ++k) {
            kind_busy[k] += o.kindBusy[k];
            kind_seen[k] = kind_seen[k] || o.kindSeen[k];
        }
    }
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (kind_seen[k])
            res.kindBusy[static_cast<OpKind>(k)] = kind_busy[k];
    return res;
}

/** Window-synchronized multi-thread engine for one shared
 *  component. */
ScheduleResult
runWindowed(const Trace &trace, const SchedulerConfig &config,
            Prepared &prep, unsigned threads,
            std::vector<HotOp> &hot)
{
    const std::size_t n = trace.size();
    const Tick window_len = prep.crossLookahead;  // >= 1 by the gate
    const unsigned T = std::min<unsigned>(threads, prep.nres);
    const Tick switch_cost = config.gpuCtxSwitchTicks;

    std::vector<OpId> dependents;
    finishHotWhole(trace, prep, hot, dependents);

    SchedState s;
    s.hot = hot.data();
    s.rs.resize(prep.nres);
    s.cand.resize(prep.nres);
    for (std::uint32_t r = 0; r < prep.nres; ++r) {
        s.rs[r].isGpu = prep.gpuRes[r] != 0;
        if (s.rs[r].isGpu)
            s.rs[r].byCtx.resize(prep.nctx);
    }

    // Static resource ownership; all per-resource state (queues,
    // candidate, hot records of ops on that resource, accounting) is
    // touched only by the owner thread.
    std::vector<std::vector<std::uint32_t>> owned(T);
    for (std::uint32_t r = 0; r < prep.nres; ++r)
        owned[r % T].push_back(r);

    std::vector<Tick> busy(prep.nres, 0), last_free(prep.nres, 0);
    std::vector<std::uint64_t> op_count(prep.nres, 0),
        switches(prep.nres, 0);
    std::vector<Tick> kind_busy(std::size_t(prep.nres) * OpKindCount, 0);
    std::vector<std::uint8_t> kind_seen(
        std::size_t(prep.nres) * OpKindCount, 0);

    // Seed sources and the first window start single-threaded.
    {
        std::vector<FutEnt> seed_tie;
        for (std::size_t i = 0; i < n; ++i)
            if (hot[i].pending == 0)
                pushArrival(s, hot[i].res, static_cast<OpId>(i),
                            hot[i].ready);
        for (std::uint32_t r = 0; r < prep.nres; ++r)
            refreshRes(s, r, seed_tie);
    }
    Tick window_start = MaxTick;
    for (std::uint32_t r = 0; r < prep.nres; ++r)
        if (s.cand[r].eff < window_start)
            window_start = s.cand[r].eff;
    bool stop = false, cycle = false;
    std::size_t total_scheduled = 0;
    if (window_start == MaxTick) {
        stop = true;
        cycle = n != 0;
    }

    struct alignas(64) Slot
    {
        Tick localMin = MaxTick;
        std::size_t scheduled = 0;  // cumulative
    };
    std::vector<Slot> slots(T);
    // outbox[src * T + dst]: cross-resource arrivals produced by
    // thread src for resources owned by dst this window. Written only
    // by src in the commit phase, drained only by dst in the apply
    // phase; the two phases are barrier-separated.
    std::vector<std::vector<std::pair<OpId, Tick>>> outbox(
        std::size_t(T) * T);

    auto onWindowDone = [&]() noexcept {
        total_scheduled = 0;
        Tick t0 = MaxTick;
        for (const Slot &sl : slots) {
            total_scheduled += sl.scheduled;
            if (sl.localMin < t0)
                t0 = sl.localMin;
        }
        if (total_scheduled == n)
            stop = true;
        else if (t0 == MaxTick) {
            stop = true;  // candidates exhausted with ops left
            cycle = true;
        } else
            window_start = t0;
    };
    // Two barriers, not one: a std::barrier runs its completion at
    // EVERY phase, and the mid-window sync (outboxes written -> safe
    // to drain) must not run the reduction while localMin values are
    // still stale from the previous window.
    std::barrier<> bar_mid(T);
    std::barrier bar(T, onWindowDone);

    auto workerFn = [&](unsigned me) {
        std::vector<FutEnt> tie_buf;
        const auto &mine = owned[me];
        Slot &slot = slots[me];
        while (!stop) {
            const Tick wend = window_start + window_len;
            for (std::uint32_t ridx : mine) {
                while (s.cand[ridx].id != InvalidOpId &&
                       s.cand[ridx].eff < wend) {
                    const Cand c = s.cand[ridx];
                    const OpId id = c.id;
                    Res &r = s.rs[ridx];
                    HotOp &h = hot[id];
                    popCand(s, ridx, c);

                    Tick start = std::max(h.ready, r.freeAt);
                    if (r.isGpu && h.ctx != 0) {
                        if (r.lastCtx != 0 && r.lastCtx != h.ctx) {
                            start += switch_cost;
                            ++switches[ridx];
                        }
                        r.lastCtx = h.ctx;
                    }
                    const Tick finish = start + h.dur;
                    r.freeAt = finish;
                    busy[ridx] += h.dur;
                    if (finish > last_free[ridx])
                        last_free[ridx] = finish;
                    ++op_count[ridx];
                    kind_busy[std::size_t(ridx) * OpKindCount +
                              h.kind] += h.dur;
                    kind_seen[std::size_t(ridx) * OpKindCount +
                              h.kind] = 1;
                    ++slot.scheduled;

                    const std::uint32_t dep_end = (&h)[1].depOff;
                    for (std::uint32_t e = h.depOff; e < dep_end;
                         ++e) {
                        const OpId dep = dependents[e];
                        const std::uint32_t tr = hot[dep].res;
                        if (tr == ridx) {
                            // Same resource: apply in-order now.
                            HotOp &hd = hot[dep];
                            if (finish > hd.ready)
                                hd.ready = finish;
                            if (--hd.pending == 0)
                                pushArrival(s, tr, dep, hd.ready);
                        } else {
                            // Cross resource: finish >= wend (the op
                            // has a cross dependent, so dur >=
                            // window_len); hand to the owner.
                            outbox[std::size_t(me) * T + tr % T]
                                .emplace_back(dep, finish);
                        }
                    }
                    h.ready = start;
                    refreshRes(s, ridx, tie_buf);
                }
            }
            bar_mid.arrive_and_wait();  // all outboxes complete
            for (unsigned src = 0; src < T; ++src) {
                auto &in = outbox[std::size_t(src) * T + me];
                for (const auto &[dep, fin] : in) {
                    HotOp &hd = hot[dep];
                    if (fin > hd.ready)
                        hd.ready = fin;
                    if (--hd.pending == 0)
                        pushArrival(s, hd.res, dep, hd.ready);
                }
                in.clear();
            }
            Tick lmin = MaxTick;
            for (std::uint32_t ridx : mine)
                if (s.cand[ridx].eff < lmin)
                    lmin = s.cand[ridx].eff;
            slot.localMin = lmin;
            bar.arrive_and_wait();  // reduce: next T0, or stop
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(T - 1);
    for (unsigned w = 1; w < T; ++w)
        pool.emplace_back(workerFn, w);
    workerFn(0);
    for (std::thread &t : pool)
        t.join();

    if (cycle) {
        std::size_t done = 0;
        for (const Slot &sl : slots)
            done += sl.scheduled;
        hix_panic("scheduler: dependency cycle, scheduled ", done,
                  " of ", n, " ops");
    }

    ScheduleResult res;
    res.start.reserve(n);
    res.finish.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        res.start.push_back(hot[i].ready);
        res.finish.push_back(hot[i].ready + hot[i].dur);
    }
    Tick kb[OpKindCount] = {};
    bool ks[OpKindCount] = {};
    for (std::uint32_t r = 0; r < prep.nres; ++r) {
        ResourceUsage &use = res.usage[prep.resources[r]];
        use.busy = busy[r];
        use.lastFree = last_free[r];
        use.ops = op_count[r];
        if (last_free[r] > res.makespan)
            res.makespan = last_free[r];
        res.gpuCtxSwitches += switches[r];
        for (std::size_t k = 0; k < OpKindCount; ++k) {
            kb[k] += kind_busy[std::size_t(r) * OpKindCount + k];
            ks[k] = ks[k] ||
                    kind_seen[std::size_t(r) * OpKindCount + k] != 0;
        }
    }
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (ks[k])
            res.kindBusy[static_cast<OpKind>(k)] = kb[k];
    return res;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

bool
windowEligible(const Prepared &prep, std::size_t n, unsigned threads)
{
    if (threads < 2 || prep.nres < 2)
        return false;
    const Tick lookahead = prep.crossLookahead;
    // lookahead == 0: a zero-duration op feeds another resource, so a
    // window could observe a same-tick cross arrival — unsound.
    // lookahead == MaxTick: no cross edges (then compCount > 1 and the
    // component path applies anyway).
    if (lookahead == 0 || lookahead == MaxTick)
        return false;
    // ~maxResBusy / lookahead windows, two pool-wide barriers each;
    // only profitable when each window carries a fat batch of ops.
    return prep.maxResBusy / lookahead <= n / 64;
}

}  // namespace par

ScheduleResult
scheduleParallel(const Trace &trace, const SchedulerConfig &config,
                 unsigned threads)
{
    const std::size_t n = trace.size();
    if (n == 0)
        return schedule(trace, config);
    const unsigned t = par::resolveThreads(threads);
    std::vector<par::HotOp> hot;
    par::Prepared prep = par::prepare(trace, &hot);
    if (!prep.leanOk)
        return schedule(trace, config);
    if (t > 1 && prep.compCount > 1)
        return par::runComponents(trace, config, prep, t);
    if (par::windowEligible(prep, n, t))
        return par::runWindowed(trace, config, prep, t, hot);
    return par::runLeanWhole(trace, config, prep, hot);
}

ScheduleResult
scheduleParallel(const Trace &trace, const SchedulerConfig &config)
{
    return scheduleParallel(trace, config, config.threads);
}

ScheduleResult
scheduleWith(SchedulerEngine engine, const Trace &trace,
             const SchedulerConfig &config)
{
    switch (engine) {
      case SchedulerEngine::Reference:
        return scheduleReference(trace, config);
      case SchedulerEngine::Parallel:
        return scheduleParallel(trace, config);
      case SchedulerEngine::Fast:
        break;
    }
    return schedule(trace, config);
}

// ---------------------------------------------------------------------------
// StreamingScheduler: shard intake + merge-once join.
//
// Correctness rests on two facts the existing engines already pin:
//
//  1. Scheduling a resource-connected component in isolation is
//     bit-identical to the whole-trace schedule restricted to that
//     component (runComponents' premise, enforced by the
//     SchedulerParallel golden wall). A shard component whose
//     resources appear in no other shard is a component of the final
//     merged trace, so its intake-time schedule — computed on the
//     shard trace with component-local op ids (ascending in merged-id
//     order, since append() preserves order), component-local dense
//     resource ids (injective relabels are invisible to the lean
//     core), and post-remap GPU context ids densified with 0 == none
//     (exactly what prepare() would assign) — already IS its slice of
//     the final result.
//
//  2. Every ScheduleResult aggregate is a per-component disjoint
//     union (start/finish, usage keys) or a commutative fold
//     (makespan max, kindBusy and gpuCtxSwitches sums), so folding
//     surviving intake results with the join's (re)scheduled groups
//     in any order reproduces the two-phase fields bit for bit.
//
// The intake tracks resource ownership across shards with a
// union-find over shard components: a shard component that shares a
// resource with an earlier shard is never speculatively scheduled
// (on the Fermi preset every user shares the DMA engines and the
// single compute context, so shard 0 is the only eager winner and
// the join reschedules everything — the overlap win there is the
// incremental merge plus recording/scheduling pipelining, not result
// reuse), and a later shard touching a scheduled component's
// resource invalidates the stored result at the join.
// ---------------------------------------------------------------------------

/** One shard component accepted by the streaming intake. Named
 *  linkage for the same -Wsubobject-linkage reason as par above. */
struct EarlyComp
{
    std::vector<OpId> members;          // merged-trace op ids, ascending
    std::vector<ResourceId> resources;  // first-appearance order
    par::LeanOut out;
    std::vector<Tick> start;            // per member (same index)
    std::vector<std::uint32_t> dur;     // per member
    bool scheduled = false;             // intake result present
};

struct StreamingScheduler::Impl
{
    SchedulerConfig config;
    unsigned threads = 0;
    Trace merged;
    bool finished = false;
    /** Incremental mirror of prepare()'s lean-core gates; when any
     *  trips, finish() discards intake results and falls back to
     *  schedule() on the merged trace — identical either way. */
    bool leanOk = true;

    std::vector<EarlyComp> comps;
    std::vector<std::uint32_t> parent;  // union-find over comps
    std::unordered_map<ResourceId, std::uint32_t, ResourceIdHash>
        resOwner;  // resource -> first comp that used it
    std::unordered_set<GpuContextId> ctxSeen;  // post-remap, incl. none
    StreamingStats stats;

    std::uint32_t
    find(std::uint32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];  // path halving
            x = parent[x];
        }
        return x;
    }

    void
    unite(std::uint32_t a, std::uint32_t b)
    {
        const std::uint32_t ra = find(a);
        const std::uint32_t rb = find(b);
        if (ra != rb)
            parent[rb] = ra;
    }

    void scheduleIntake(const Trace &shard,
                        const Trace::AppendRemap &remap, OpId offset,
                        const std::unordered_map<ResourceId,
                                                 std::uint32_t,
                                                 ResourceIdHash> &local_res,
                        EarlyComp &ec,
                        std::vector<std::uint32_t> &local_of);
};

/**
 * Run the lean core over one shard component straight from the shard
 * trace (the merged trace's Op array is still growing, but this
 * component's slice of it is final). Mirrors buildHotSubset() +
 * runLeanLoop() on the merged trace: local ids ascend in merged-id
 * order, dense resources come from the intake registration pass, and
 * contexts are remapped before densifying so 0 == none is preserved.
 */
void
StreamingScheduler::Impl::scheduleIntake(
    const Trace &shard, const Trace::AppendRemap &remap, OpId offset,
    const std::unordered_map<ResourceId, std::uint32_t,
                             ResourceIdHash> &local_res,
    EarlyComp &ec, std::vector<std::uint32_t> &local_of)
{
    const std::size_t m = ec.members.size();
    std::vector<par::HotOp> hot(m + 1);
    par::FlatIndex ctx_index;
    ctx_index.indexOf(NoGpuContext);  // dense ctx 0 == none

    std::vector<std::uint32_t> dep_count(m + 1, 0);
    std::size_t edges = 0;
    for (std::size_t l = 0; l < m; ++l) {
        const OpId sl = ec.members[l] - offset;
        local_of[sl] = static_cast<std::uint32_t>(l);
        const Op &op = shard.op(sl);
        GpuContextId ctx = op.gpuCtx;
        if (ctx != NoGpuContext)
            ctx = remap.mapCtx(ctx);
        par::HotOp &h = hot[l];
        h.res = static_cast<std::uint16_t>(local_res.at(op.resource));
        h.ctx = static_cast<std::uint16_t>(ctx_index.indexOf(ctx));
        h.dur = static_cast<std::uint32_t>(op.duration);
        h.kind = static_cast<std::uint8_t>(op.kind);
        h.pending = static_cast<std::uint16_t>(op.depCount);
        edges += op.depCount;
        // Deps precede the op and stay inside the component.
        for (OpId d : shard.deps(op))
            ++dep_count[local_of[d] + 1];
    }
    for (std::size_t i = 0; i < m; ++i)
        dep_count[i + 1] += dep_count[i];
    std::vector<OpId> dependents(edges);
    std::vector<std::uint32_t> cursor(dep_count.begin(),
                                      dep_count.end() - 1);
    for (std::size_t l = 0; l < m; ++l)
        for (OpId d : shard.deps(shard.op(ec.members[l] - offset)))
            dependents[cursor[local_of[d]]++] = static_cast<OpId>(l);
    for (std::size_t i = 0; i <= m; ++i)
        hot[i].depOff = dep_count[i];

    std::vector<std::uint8_t> is_gpu;
    is_gpu.reserve(ec.resources.size());
    for (const ResourceId &r : ec.resources)
        is_gpu.push_back(r.unit == ResUnit::GpuCompute);

    par::runLeanLoop(hot, dependents, is_gpu, ctx_index.size(),
                     config.gpuCtxSwitchTicks, ec.out);
    if (ec.out.scheduled != m)
        return;  // cycle inside the shard; the join detects and panics
    ec.start.resize(m);
    ec.dur.resize(m);
    for (std::size_t l = 0; l < m; ++l) {
        ec.start[l] = hot[l].ready;
        ec.dur[l] = hot[l].dur;
    }
    ec.scheduled = true;
}

StreamingScheduler::StreamingScheduler(const SchedulerConfig &config,
                                       unsigned threads)
    : impl_(std::make_unique<Impl>())
{
    impl_->config = config;
    impl_->threads = threads != 0 ? threads : config.threads;
    impl_->ctxSeen.insert(NoGpuContext);  // prepare() seeds dense 0
}

StreamingScheduler::~StreamingScheduler() = default;

void
StreamingScheduler::addShard(const Trace &shard,
                             const Trace::AppendRemap &remap)
{
    Impl &im = *impl_;
    if (im.finished)
        hix_panic("StreamingScheduler: addShard after finish");
    ++im.stats.shards;
    const OpId offset = im.merged.append(shard, remap);

    // Incremental lean-core gates, mirroring prepare().
    for (const Op &op : shard.ops()) {
        if (op.duration > 0xffffffffULL || op.depCount > 0xffff)
            im.leanOk = false;
        GpuContextId ctx = op.gpuCtx;
        if (ctx != NoGpuContext)
            ctx = remap.mapCtx(ctx);
        im.ctxSeen.insert(ctx);
    }

    const Trace::Components sc = shard.components();
    const auto base = static_cast<std::uint32_t>(im.comps.size());
    im.comps.resize(base + sc.count);
    for (std::uint32_t c = 0; c < sc.count; ++c) {
        im.parent.push_back(base + c);
        im.comps[base + c].members.reserve(sc.sizes[c]);
    }
    for (const Op &op : shard.ops())
        im.comps[base + sc.opComponent[op.id]].members.push_back(
            op.id + offset);

    // Register this shard's resources; one owned by an earlier shard
    // links the two components — neither side's intake result can
    // survive the join.
    std::unordered_map<ResourceId, std::uint32_t, ResourceIdHash>
        local_res;  // resource -> component-local dense index
    std::vector<char> shared(sc.count, 0);
    for (const Op &op : shard.ops()) {
        const std::uint32_t c = sc.opComponent[op.id];
        EarlyComp &ec = im.comps[base + c];
        auto [it, inserted] = local_res.try_emplace(
            op.resource,
            static_cast<std::uint32_t>(ec.resources.size()));
        if (!inserted)
            continue;
        ec.resources.push_back(op.resource);
        auto [owner, fresh] =
            im.resOwner.try_emplace(op.resource, base + c);
        if (!fresh) {
            im.unite(owner->second, base + c);
            shared[c] = 1;
        }
    }
    if (im.resOwner.size() > 0x10000 || im.ctxSeen.size() > 0x10000)
        im.leanOk = false;
    if (!im.leanOk)
        return;

    // Speculatively schedule the components still private to this
    // shard while later users are recording.
    std::vector<std::uint32_t> local_of(shard.size());
    for (std::uint32_t c = 0; c < sc.count; ++c) {
        if (shared[c])
            continue;
        EarlyComp &ec = im.comps[base + c];
        im.scheduleIntake(shard, remap, offset, local_res, ec,
                          local_of);
        if (ec.scheduled)
            ++im.stats.earlyComps;
    }
}

ScheduleResult
StreamingScheduler::finish()
{
    Impl &im = *impl_;
    if (im.finished)
        hix_panic("StreamingScheduler: finish called twice");
    im.finished = true;
    const std::size_t n = im.merged.size();
    if (n == 0 || !im.leanOk)
        return schedule(im.merged, im.config);

    const auto nc = static_cast<std::uint32_t>(im.comps.size());
    std::vector<std::uint32_t> group_size(nc, 0);
    for (std::uint32_t c = 0; c < nc; ++c)
        ++group_size[im.find(c)];
    bool any_valid = false;
    std::vector<char> valid(nc, 0);
    for (std::uint32_t c = 0; c < nc; ++c) {
        valid[c] =
            im.comps[c].scheduled && group_size[im.find(c)] == 1;
        any_valid = any_valid || valid[c] != 0;
    }
    if (!any_valid) {
        // Nothing survived — one cross-shard group (the Fermi preset:
        // all users share the DMA engines and compute context). The
        // whole merged trace takes the parallel engine's normal
        // dispatch, windowed path included.
        im.stats.joinOps = n;
        return scheduleParallel(im.merged, im.config, im.threads);
    }

    par::Prepared prep = par::prepare(im.merged, nullptr);
    if (!prep.leanOk)
        return schedule(im.merged, im.config);  // gates re-trip: safe

    // Concatenate each dirty group's member lists. Components of one
    // shard can join the same group through different resources of a
    // later shard, and their ids interleave — sort to restore the
    // ascending order buildHotSubset() requires.
    std::vector<std::uint32_t> group_list(nc, ~0u);
    std::vector<std::vector<OpId>> dirty;
    for (std::uint32_t c = 0; c < nc; ++c) {
        if (valid[c])
            continue;
        const std::uint32_t root = im.find(c);
        if (group_list[root] == ~0u) {
            group_list[root] =
                static_cast<std::uint32_t>(dirty.size());
            dirty.emplace_back();
        }
        auto &list = dirty[group_list[root]];
        list.insert(list.end(), im.comps[c].members.begin(),
                    im.comps[c].members.end());
    }
    for (auto &list : dirty)
        std::sort(list.begin(), list.end());

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    std::vector<par::LeanOut> outs(dirty.size());
    std::vector<std::vector<std::uint32_t>> dirty_res(dirty.size());
    par::runCompLists(im.merged, im.config, prep,
                      par::resolveThreads(im.threads), dirty, res,
                      outs, dirty_res);

    // Merge once: rescheduled groups first, then surviving intake
    // results. Usage keys are disjoint by construction; the folds are
    // commutative, so this order is just for readability.
    std::size_t scheduled = 0;
    Tick kind_busy[OpKindCount] = {};
    bool kind_seen[OpKindCount] = {};
    for (std::size_t g = 0; g < dirty.size(); ++g) {
        const par::LeanOut &o = outs[g];
        scheduled += o.scheduled;
        res.gpuCtxSwitches += o.ctxSwitches;
        for (std::size_t lr = 0; lr < dirty_res[g].size(); ++lr) {
            ResourceUsage &use =
                res.usage[prep.resources[dirty_res[g][lr]]];
            use.busy = o.busy[lr];
            use.lastFree = o.lastFree[lr];
            use.ops = o.opCount[lr];
            if (o.lastFree[lr] > res.makespan)
                res.makespan = o.lastFree[lr];
        }
        for (std::size_t k = 0; k < OpKindCount; ++k) {
            kind_busy[k] += o.kindBusy[k];
            kind_seen[k] = kind_seen[k] || o.kindSeen[k];
        }
        im.stats.joinOps += dirty[g].size();
    }
    for (std::uint32_t c = 0; c < nc; ++c) {
        if (!valid[c])
            continue;
        const EarlyComp &ec = im.comps[c];
        const par::LeanOut &o = ec.out;
        scheduled += o.scheduled;
        res.gpuCtxSwitches += o.ctxSwitches;
        for (std::size_t l = 0; l < ec.members.size(); ++l) {
            res.start[ec.members[l]] = ec.start[l];
            res.finish[ec.members[l]] = ec.start[l] + ec.dur[l];
        }
        for (std::size_t lr = 0; lr < ec.resources.size(); ++lr) {
            ResourceUsage &use = res.usage[ec.resources[lr]];
            use.busy = o.busy[lr];
            use.lastFree = o.lastFree[lr];
            use.ops = o.opCount[lr];
            if (o.lastFree[lr] > res.makespan)
                res.makespan = o.lastFree[lr];
        }
        for (std::size_t k = 0; k < OpKindCount; ++k) {
            kind_busy[k] += o.kindBusy[k];
            kind_seen[k] = kind_seen[k] || o.kindSeen[k];
        }
        ++im.stats.reusedComps;
        im.stats.reusedOps += ec.members.size();
    }
    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (kind_seen[k])
            res.kindBusy[static_cast<OpKind>(k)] = kind_busy[k];
    return res;
}

const Trace &
StreamingScheduler::merged() const
{
    return impl_->merged;
}

Trace
StreamingScheduler::takeMerged()
{
    return std::move(impl_->merged);
}

const StreamingStats &
StreamingScheduler::stats() const
{
    return impl_->stats;
}

}  // namespace hix::sim
