#include "sim/scheduler.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>

#include "common/logging.h"

namespace hix::sim
{

namespace
{

struct ResState
{
    Tick freeAt = 0;
    GpuContextId lastCtx = NoGpuContext;
};

}  // namespace

ScheduleResult
scheduleReference(const Trace &trace, const SchedulerConfig &config)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    if (n == 0)
        return res;

    std::vector<std::uint32_t> pending_deps(n, 0);
    std::vector<std::vector<OpId>> dependents(n);
    std::vector<Tick> ready_time(n, 0);
    for (const Op &op : ops) {
        pending_deps[op.id] = op.depCount;
        for (OpId d : trace.deps(op))
            dependents[d].push_back(op.id);
    }

    std::vector<OpId> ready;
    ready.reserve(64);
    for (const Op &op : ops)
        if (pending_deps[op.id] == 0)
            ready.push_back(op.id);

    std::unordered_map<ResourceId, ResState, ResourceIdHash> rstate;
    std::size_t scheduled = 0;

    while (!ready.empty()) {
        // Pick the ready op with the smallest dispatch time, i.e.
        // max(ready, engine free) *before* any switch penalty: real
        // hardware switches away the moment the resident context has
        // nothing pending — it cannot wait for work that will arrive
        // a few microseconds later. The resident context only wins
        // ties (the Fermi policy: run the current context while it
        // has pending requests).
        std::size_t best_idx = 0;
        Tick best_eff = MaxTick;
        bool best_resident = false;
        for (std::size_t i = 0; i < ready.size(); ++i) {
            const Op &op = ops[ready[i]];
            const ResState &rs = rstate[op.resource];
            const Tick eff = std::max(ready_time[op.id], rs.freeAt);
            const bool resident =
                op.resource.unit != ResUnit::GpuCompute ||
                op.gpuCtx == NoGpuContext ||
                rs.lastCtx == NoGpuContext || rs.lastCtx == op.gpuCtx;
            const bool better =
                eff < best_eff ||
                (eff == best_eff &&
                 ((resident && !best_resident) ||
                  (resident == best_resident &&
                   ready[i] < ready[best_idx])));
            if (better) {
                best_eff = eff;
                best_idx = i;
                best_resident = resident;
            }
        }

        const OpId id = ready[best_idx];
        ready.erase(ready.begin() + best_idx);
        const Op &op = ops[id];
        ResState &rs = rstate[op.resource];

        Tick start = std::max(ready_time[id], rs.freeAt);
        if (op.resource.unit == ResUnit::GpuCompute &&
            op.gpuCtx != NoGpuContext) {
            if (rs.lastCtx != NoGpuContext && rs.lastCtx != op.gpuCtx) {
                start += config.gpuCtxSwitchTicks;
                ++res.gpuCtxSwitches;
            }
            rs.lastCtx = op.gpuCtx;
        }

        const Tick finish = start + op.duration;
        res.start[id] = start;
        res.finish[id] = finish;
        rs.freeAt = finish;
        res.makespan = std::max(res.makespan, finish);

        ResourceUsage &use = res.usage[op.resource];
        use.busy += op.duration;
        use.lastFree = std::max(use.lastFree, finish);
        ++use.ops;
        res.kindBusy[op.kind] += op.duration;

        for (OpId dep_id : dependents[id]) {
            ready_time[dep_id] = std::max(ready_time[dep_id], finish);
            if (--pending_deps[dep_id] == 0)
                ready.push_back(dep_id);
        }
        ++scheduled;
    }

    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");
    return res;
}

// ---------------------------------------------------------------------------
// O(n log n) engine.
//
// The reference scan above is the specification: on every iteration
// it commits the ready op minimising the key
//
//     (eff = max(ready_time, freeAt), !resident, op id)
//
// lexicographically. The fast engine reproduces that exact total
// order with per-resource pending queues and a global heap that holds
// ONE versioned candidate per resource:
//
//  - Ops waiting on a resource split into a `future` min-heap (keyed
//    by ready_time, for ops whose ready_time exceeds the resource's
//    freeAt) and a backlog (ready_time <= freeAt, so every backlog op
//    ties at eff == freeAt). The backlog keeps a min-id heap of all
//    ops plus, on GPU compute engines, one min-id heap per context so
//    the resident-context winner is an O(1) peek.
//  - A resource's candidate is its key-minimal pending op: the
//    backlog winner at eff == freeAt if the backlog is non-empty,
//    else the minimal-ready_time future op (ties broken resident
//    first, then min id).
//  - Whenever an event changes a resource's state (an op commits on
//    it, bumping freeAt/lastCtx, or a newly-ready op arrives), the
//    resource's version counter is bumped and a fresh candidate is
//    pushed; stale heap entries are discarded on pop. Committed ops
//    are lazily purged from the pending heaps via a done[] flag.
//
// Since resource state is immutable between the refresh that pushed a
// candidate and the pop that commits it, every pop of a current-
// version entry commits exactly the op the reference scan would pick,
// so the two engines produce bit-identical schedules (golden tests
// enforce this).
// ---------------------------------------------------------------------------

namespace
{

using IdHeap =
    std::priority_queue<OpId, std::vector<OpId>, std::greater<OpId>>;

struct FutureEnt
{
    Tick rt;
    OpId id;
};

struct FutureGreater
{
    bool
    operator()(const FutureEnt &a, const FutureEnt &b) const
    {
        return a.rt != b.rt ? a.rt > b.rt : a.id > b.id;
    }
};

using FutureHeap =
    std::priority_queue<FutureEnt, std::vector<FutureEnt>, FutureGreater>;

/** One candidate in the global heap; stale when version mismatches. */
struct HeapEnt
{
    Tick eff;
    OpId id;
    std::uint32_t res;
    std::uint64_t version;
    bool notResident;
};

struct HeapGreater
{
    bool
    operator()(const HeapEnt &a, const HeapEnt &b) const
    {
        if (a.eff != b.eff)
            return a.eff > b.eff;
        if (a.notResident != b.notResident)
            return a.notResident && !b.notResident;
        return a.id > b.id;
    }
};

struct ResSched
{
    Tick freeAt = 0;
    GpuContextId lastCtx = NoGpuContext;
    bool isGpu = false;
    std::uint64_t version = 0;
    FutureHeap future;
    IdHeap backlog;
    /** GPU engines only: backlog split per context (ctx-less ops
     *  bucket under NoGpuContext, they are always resident). */
    std::unordered_map<GpuContextId, IdHeap> byCtx;
};

}  // namespace

ScheduleResult
schedule(const Trace &trace, const SchedulerConfig &config)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    if (n == 0)
        return res;

    // Dense resource table: hash each distinct ResourceId once, then
    // the hot loop runs on small integer indices only.
    std::unordered_map<ResourceId, std::uint32_t, ResourceIdHash>
        res_index;
    std::vector<ResourceId> resources;
    std::vector<std::uint32_t> res_of(n);
    for (const Op &op : ops) {
        auto [it, inserted] = res_index.try_emplace(
            op.resource, static_cast<std::uint32_t>(resources.size()));
        if (inserted)
            resources.push_back(op.resource);
        res_of[op.id] = it->second;
    }
    const std::size_t nres = resources.size();

    // Dependents as CSR; duplicates kept (each occurrence counts one
    // pending slot, exactly as the reference builds them).
    std::vector<std::uint32_t> pending(n);
    std::vector<std::uint32_t> dep_off(n + 1, 0);
    std::size_t edges = 0;
    for (const Op &op : ops) {
        pending[op.id] = op.depCount;
        edges += op.depCount;
        for (OpId d : trace.deps(op))
            ++dep_off[d + 1];
    }
    for (std::size_t i = 0; i < n; ++i)
        dep_off[i + 1] += dep_off[i];
    std::vector<OpId> dependents(edges);
    {
        std::vector<std::uint32_t> cursor(dep_off.begin(),
                                          dep_off.end() - 1);
        for (const Op &op : ops)
            for (OpId d : trace.deps(op))
                dependents[cursor[d]++] = op.id;
    }

    std::vector<Tick> ready_time(n, 0);
    std::vector<char> done(n, 0);

    std::vector<ResSched> rs(nres);
    for (std::size_t r = 0; r < nres; ++r)
        rs[r].isGpu = resources[r].unit == ResUnit::GpuCompute;

    std::priority_queue<HeapEnt, std::vector<HeapEnt>, HeapGreater>
        gheap;
    std::vector<FutureEnt> tie_buf;

    auto purgeIds = [&](IdHeap &h) {
        while (!h.empty() && done[h.top()])
            h.pop();
    };
    auto purgeFuture = [&](FutureHeap &h) {
        while (!h.empty() && done[h.top().id])
            h.pop();
    };

    auto pushPending = [&](std::uint32_t ridx, OpId id) {
        ResSched &r = rs[ridx];
        if (ready_time[id] > r.freeAt) {
            r.future.push({ready_time[id], id});
        } else {
            r.backlog.push(id);
            if (r.isGpu)
                r.byCtx[ops[id].gpuCtx].push(id);
        }
    };

    // Recompute resource ridx's candidate and push it with a fresh
    // version; called after every event that touches the resource.
    auto refresh = [&](std::uint32_t ridx) {
        ResSched &r = rs[ridx];
        ++r.version;

        // Future ops whose ready_time the resource has caught up with
        // become backlog (they now tie at eff == freeAt).
        purgeFuture(r.future);
        while (!r.future.empty() && r.future.top().rt <= r.freeAt) {
            const OpId id = r.future.top().id;
            r.future.pop();
            r.backlog.push(id);
            if (r.isGpu)
                r.byCtx[ops[id].gpuCtx].push(id);
            purgeFuture(r.future);
        }

        purgeIds(r.backlog);
        if (!r.backlog.empty()) {
            bool resident = true;
            OpId best = InvalidOpId;
            if (!r.isGpu || r.lastCtx == NoGpuContext) {
                best = r.backlog.top();
            } else {
                for (GpuContextId key : {r.lastCtx, NoGpuContext}) {
                    auto it = r.byCtx.find(key);
                    if (it == r.byCtx.end())
                        continue;
                    purgeIds(it->second);
                    if (!it->second.empty())
                        best = std::min(best, it->second.top());
                }
                if (best == InvalidOpId) {
                    best = r.backlog.top();
                    resident = false;
                }
            }
            gheap.push({r.freeAt, best, ridx, r.version, !resident});
            return;
        }

        if (r.future.empty())
            return;
        // All candidates tie at eff == minimal ready_time; resident
        // ops win, then min id. The tied group is tiny in practice
        // (distinct dep finish times), so pop-and-push-back is cheap.
        const Tick rt_min = r.future.top().rt;
        tie_buf.clear();
        OpId best = InvalidOpId;
        bool best_res = false;
        while (!r.future.empty() && r.future.top().rt == rt_min) {
            const FutureEnt e = r.future.top();
            r.future.pop();
            if (done[e.id])
                continue;
            tie_buf.push_back(e);
            const Op &op = ops[e.id];
            const bool resident = !r.isGpu ||
                                  op.gpuCtx == NoGpuContext ||
                                  r.lastCtx == NoGpuContext ||
                                  r.lastCtx == op.gpuCtx;
            if (best == InvalidOpId || (resident && !best_res) ||
                (resident == best_res && e.id < best)) {
                best = e.id;
                best_res = resident;
            }
        }
        for (const FutureEnt &e : tie_buf)
            r.future.push(e);
        gheap.push({rt_min, best, ridx, r.version, !best_res});
    };

    // Dedup buffer so one commit refreshes each touched resource once.
    std::vector<char> touched(nres, 0);
    std::vector<std::uint32_t> touched_list;
    touched_list.reserve(8);
    auto touch = [&](std::uint32_t ridx) {
        if (!touched[ridx]) {
            touched[ridx] = 1;
            touched_list.push_back(ridx);
        }
    };
    auto refreshTouched = [&] {
        for (std::uint32_t ridx : touched_list) {
            touched[ridx] = 0;
            refresh(ridx);
        }
        touched_list.clear();
    };

    for (const Op &op : ops) {
        if (pending[op.id] == 0) {
            pushPending(res_of[op.id], op.id);
            touch(res_of[op.id]);
        }
    }
    refreshTouched();

    // Usage accumulates in dense arrays; the result's std::maps are
    // filled once at the end.
    std::vector<Tick> busy(nres, 0), last_free(nres, 0);
    std::vector<std::uint64_t> op_count(nres, 0);
    Tick kind_busy[OpKindCount] = {};
    bool kind_seen[OpKindCount] = {};

    std::size_t scheduled = 0;
    while (!gheap.empty()) {
        const HeapEnt e = gheap.top();
        gheap.pop();
        ResSched &r = rs[e.res];
        if (e.version != r.version)
            continue;
        const Op &op = ops[e.id];

        Tick start = std::max(ready_time[e.id], r.freeAt);
        if (r.isGpu && op.gpuCtx != NoGpuContext) {
            if (r.lastCtx != NoGpuContext && r.lastCtx != op.gpuCtx) {
                start += config.gpuCtxSwitchTicks;
                ++res.gpuCtxSwitches;
            }
            r.lastCtx = op.gpuCtx;
        }

        const Tick finish = start + op.duration;
        res.start[e.id] = start;
        res.finish[e.id] = finish;
        r.freeAt = finish;
        res.makespan = std::max(res.makespan, finish);

        busy[e.res] += op.duration;
        last_free[e.res] = std::max(last_free[e.res], finish);
        ++op_count[e.res];
        const auto k = static_cast<std::size_t>(op.kind);
        kind_busy[k] += op.duration;
        kind_seen[k] = true;

        done[e.id] = 1;
        ++scheduled;
        touch(e.res);

        for (std::uint32_t i = dep_off[e.id]; i < dep_off[e.id + 1];
             ++i) {
            const OpId dep = dependents[i];
            ready_time[dep] = std::max(ready_time[dep], finish);
            if (--pending[dep] == 0) {
                pushPending(res_of[dep], dep);
                touch(res_of[dep]);
            }
        }
        refreshTouched();
    }

    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");

    for (std::size_t r = 0; r < nres; ++r) {
        ResourceUsage &use = res.usage[resources[r]];
        use.busy = busy[r];
        use.lastFree = last_free[r];
        use.ops = op_count[r];
    }
    for (std::size_t k = 0; k < OpKindCount; ++k)
        if (kind_seen[k])
            res.kindBusy[static_cast<OpKind>(k)] = kind_busy[k];
    return res;
}

}  // namespace hix::sim
