#include "sim/scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace hix::sim
{

namespace
{

struct ResState
{
    Tick freeAt = 0;
    GpuContextId lastCtx = NoGpuContext;
};

}  // namespace

ScheduleResult
schedule(const Trace &trace, const SchedulerConfig &config)
{
    const auto &ops = trace.ops();
    const std::size_t n = ops.size();

    ScheduleResult res;
    res.start.assign(n, 0);
    res.finish.assign(n, 0);
    if (n == 0)
        return res;

    std::vector<std::uint32_t> pending_deps(n, 0);
    std::vector<std::vector<OpId>> dependents(n);
    std::vector<Tick> ready_time(n, 0);
    for (const Op &op : ops) {
        pending_deps[op.id] = static_cast<std::uint32_t>(op.deps.size());
        for (OpId d : op.deps)
            dependents[d].push_back(op.id);
    }

    std::vector<OpId> ready;
    ready.reserve(64);
    for (const Op &op : ops)
        if (pending_deps[op.id] == 0)
            ready.push_back(op.id);

    std::unordered_map<ResourceId, ResState, ResourceIdHash> rstate;
    std::size_t scheduled = 0;

    while (!ready.empty()) {
        // Pick the ready op with the smallest dispatch time, i.e.
        // max(ready, engine free) *before* any switch penalty: real
        // hardware switches away the moment the resident context has
        // nothing pending — it cannot wait for work that will arrive
        // a few microseconds later. The resident context only wins
        // ties (the Fermi policy: run the current context while it
        // has pending requests).
        std::size_t best_idx = 0;
        Tick best_eff = MaxTick;
        bool best_resident = false;
        for (std::size_t i = 0; i < ready.size(); ++i) {
            const Op &op = ops[ready[i]];
            const ResState &rs = rstate[op.resource];
            const Tick eff = std::max(ready_time[op.id], rs.freeAt);
            const bool resident =
                op.resource.unit != ResUnit::GpuCompute ||
                op.gpuCtx == NoGpuContext ||
                rs.lastCtx == NoGpuContext || rs.lastCtx == op.gpuCtx;
            const bool better =
                eff < best_eff ||
                (eff == best_eff &&
                 (resident && !best_resident ||
                  (resident == best_resident &&
                   ready[i] < ready[best_idx])));
            if (better) {
                best_eff = eff;
                best_idx = i;
                best_resident = resident;
            }
        }

        const OpId id = ready[best_idx];
        ready.erase(ready.begin() + best_idx);
        const Op &op = ops[id];
        ResState &rs = rstate[op.resource];

        Tick start = std::max(ready_time[id], rs.freeAt);
        if (op.resource.unit == ResUnit::GpuCompute &&
            op.gpuCtx != NoGpuContext) {
            if (rs.lastCtx != NoGpuContext && rs.lastCtx != op.gpuCtx) {
                start += config.gpuCtxSwitchTicks;
                ++res.gpuCtxSwitches;
            }
            rs.lastCtx = op.gpuCtx;
        }

        const Tick finish = start + op.duration;
        res.start[id] = start;
        res.finish[id] = finish;
        rs.freeAt = finish;
        res.makespan = std::max(res.makespan, finish);

        ResourceUsage &use = res.usage[op.resource];
        use.busy += op.duration;
        use.lastFree = std::max(use.lastFree, finish);
        ++use.ops;
        res.kindBusy[op.kind] += op.duration;

        for (OpId dep_id : dependents[id]) {
            ready_time[dep_id] = std::max(ready_time[dep_id], finish);
            if (--pending_deps[dep_id] == 0)
                ready.push_back(dep_id);
        }
        ++scheduled;
    }

    if (scheduled != n)
        hix_panic("scheduler: dependency cycle, scheduled ", scheduled,
                  " of ", n, " ops");
    return res;
}

}  // namespace hix::sim
