/**
 * @file
 * Export a scheduled trace as Chrome trace-event JSON
 * (chrome://tracing, Perfetto): one row per modelled resource, one
 * slice per op. Lets users see the pipelining and context-switch
 * behaviour behind every number in EXPERIMENTS.md.
 */

#ifndef HIX_SIM_TRACE_EXPORT_H_
#define HIX_SIM_TRACE_EXPORT_H_

#include <ostream>
#include <string>

#include "sim/scheduler.h"
#include "sim/trace.h"

namespace hix::sim
{

/**
 * Write @p trace with its @p schedule as trace-event JSON to @p os.
 * Durations are emitted in microseconds (the format's native unit);
 * sub-microsecond ops are clamped to a minimum visible width.
 */
void exportChromeTrace(const Trace &trace,
                       const ScheduleResult &schedule, std::ostream &os);

}  // namespace hix::sim

#endif  // HIX_SIM_TRACE_EXPORT_H_
