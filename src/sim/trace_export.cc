#include "sim/trace_export.h"

#include <map>

namespace hix::sim
{

namespace
{

/** Minimal JSON string escaping for op labels. */
std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

void
exportChromeTrace(const Trace &trace, const ScheduleResult &schedule,
                  std::ostream &os)
{
    // Stable tid per resource.
    std::map<ResourceId, int> tids;
    for (const Op &op : trace.ops())
        tids.emplace(op.resource, 0);
    int next_tid = 1;
    for (auto &[res, tid] : tids)
        tid = next_tid++;

    os << "{\"traceEvents\":[";
    bool first = true;

    // Thread-name metadata.
    for (const auto &[res, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << res.toString() << "\"}}";
    }

    for (const Op &op : trace.ops()) {
        const double start_us =
            static_cast<double>(schedule.start[op.id]) / 1000.0;
        double dur_us =
            static_cast<double>(op.duration) / 1000.0;
        if (dur_us < 0.05)
            dur_us = 0.05;  // keep ops visible
        const std::string &label = trace.labelOf(op);
        os << ",{\"name\":\""
           << escaped(label.empty() ? opKindName(op.kind) : label)
           << "\",\"cat\":\"" << opKindName(op.kind)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << tids[op.resource] << ",\"ts\":" << start_us
           << ",\"dur\":" << dur_us << ",\"args\":{\"op\":" << op.id
           << ",\"bytes\":" << op.bytes;
        if (op.gpuCtx != NoGpuContext)
            os << ",\"gpu_ctx\":" << op.gpuCtx;
        os << "}}";
    }
    os << "]}";
}

}  // namespace hix::sim
