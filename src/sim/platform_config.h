/**
 * @file
 * Calibrated timing parameters for the modelled platform.
 *
 * The numbers target the paper's testbed envelope (Table 3): an Intel
 * Core i7-6700 with SGX driving an NVIDIA GeForce GTX 580 over PCIe
 * 2.0 x16, running the Gdev open-source CUDA stack. Absolute values
 * are calibrated so that the *shape* of the evaluation (who wins, by
 * what factor, where crossovers fall) reproduces Figures 6-9; see
 * EXPERIMENTS.md for paper-vs-measured numbers.
 */

#ifndef HIX_SIM_PLATFORM_CONFIG_H_
#define HIX_SIM_PLATFORM_CONFIG_H_

#include <cstdint>

#include "common/types.h"
#include "common/units.h"

namespace hix::sim
{

/** All tunable timing/behaviour knobs of the modelled platform. */
struct PlatformConfig
{
    // ----- PCIe / data movement -------------------------------------
    /** DMA bandwidth host-to-device (PCIe 2.0 x16 effective). */
    std::uint64_t dmaHtoDBps = 5200ull * 1000 * 1000;
    /** DMA bandwidth device-to-host. */
    std::uint64_t dmaDtoHBps = 5000ull * 1000 * 1000;
    /** Programmed-I/O (MMIO window) copy bandwidth. */
    std::uint64_t mmioPioBps = 800ull * 1000 * 1000;
    /** Latency of a single MMIO register read (PCIe round trip). */
    Tick mmioReadLatency = 1 * US;
    /** Latency of a single posted MMIO register write. */
    Tick mmioWriteLatency = 250 * NS;
    /** Fixed cost to start a DMA transfer (descriptor + doorbell). */
    Tick dmaSetupLatency = 4 * US;

    // ----- Cryptography ----------------------------------------------
    /** OCB-AES-128 throughput of enclave CPU code (SGX-SSL, AES-NI). */
    std::uint64_t cpuOcbBps = 1700ull * 1000 * 1000;
    /**
     * Effective throughput of the in-GPU OCB kernel on pipeline-chunk
     * inputs (a few MiB per launch underutilizes the SM array, so
     * this sits well below memory bandwidth — the paper's
     * "resource underutilization for small data cryptography").
     */
    std::uint64_t gpuOcbBps = 12ull * 1000 * 1000 * 1000;
    /** Plain memcpy bandwidth of the CPU (for the naive double copy). */
    std::uint64_t cpuMemcpyBps = 8ull * 1000 * 1000 * 1000;

    // ----- GPU --------------------------------------------------------
    /** Fixed cost of launching any GPU kernel (driver + HW). */
    Tick gpuKernelLaunch = 8 * US;
    /**
     * GPU context switch cost: Fermi full state swap plus the
     * shared/global-memory cleansing the HIX runtime performs so a
     * context switch cannot leak data (Section 4.5).
     */
    Tick gpuCtxSwitch = 120 * US;
    /** GPU device-memory scrub bandwidth (used on free/teardown). */
    std::uint64_t gpuScrubBps = 96ull * 1000 * 1000 * 1000;
    /**
     * Number of concurrently schedulable GPU contexts. 1 models the
     * paper's Fermi platform (one resident context, switches between
     * clients). >1 models the Volta-style isolated simultaneous
     * execution the paper's Section 4.5 anticipates as future work:
     * each context gets its own execution queue and context switching
     * disappears.
     */
    std::uint32_t gpuConcurrentContexts = 1;
    /**
     * Number of per-context DMA channels per copy-engine direction.
     * 1 models the Fermi platform (one global copy engine per
     * direction, every context serializes on it — bit-identical to
     * the model before this knob existed). >1 models Volta-style
     * per-context protected DMA channels: context c of device d lands
     * on channel d * gpuDmaChannels + c % gpuDmaChannels, exactly the
     * device-blocked layout the compute queues use, so concurrent
     * contexts stop contending on copies (and the streaming
     * scheduler's shard-private intake results survive the join).
     * Must be a power of two so the canonical context-id blocks
     * (DeviceCtxStride, ShardMgmtCtx) stay congruent at record time.
     */
    std::uint32_t gpuDmaChannels = 1;
    /**
     * Number of modelled GPU-enclave dispatch lanes (logical CPU
     * workers) per device. 1 reproduces the paper's single
     * GPU-enclave thread: every session's control/IPC work serializes
     * on one GpuEnclaveCpu resource. >1 hashes sessions across lanes
     * (session context c of device d dispatches on lane
     * d * gpuEnclaveLanes + c % gpuEnclaveLanes) and moves the DH
     * handshake onto the session's own context, so sessions bound to
     * the same device stop serializing on enclave dispatch. Power of
     * two, like gpuDmaChannels.
     */
    std::uint32_t gpuEnclaveLanes = 1;

    // ----- Software stack ---------------------------------------------
    /** One inter-enclave message-queue hop (enqueue+wakeup+dequeue). */
    Tick ipcMessageLatency = 3 * US;
    /** Per-request handling inside the GPU enclave (decode, checks). */
    Tick gpuEnclaveDispatch = 2 * US;
    /**
     * Baseline Gdev per-task init: context creation plus loading the
     * cubin module from the file system, which dominates small-app
     * runtime in the original Gdev evaluation.
     */
    Tick gdevTaskInit = 15 * MS;
    /**
     * HIX per-task init as seen by a user: the GPU enclave holds the
     * device open and its modules warm, so per-task setup is cheaper
     * than baseline Gdev (the paper's Section 5.3.2 observation that
     * HS/LUD/NN run slightly faster under HIX).
     */
    Tick hixTaskInit = 1200 * US;
    /** One-time local attestation + Diffie-Hellman session setup. */
    Tick sessionSetup = 1500 * US;

    // ----- HIX data path ------------------------------------------------
    /** Chunk size for the pipelined encrypt/transfer data path. */
    std::uint64_t pipelineChunkBytes = 4 * MiB;
    /** Overlap encryption of chunk n+1 with transfer of chunk n. */
    bool pipelineEnabled = true;
    /**
     * Use the single-copy path (Section 4.4.2): GPU DMAs ciphertext
     * straight out of inter-enclave shared memory and decrypts
     * in-GPU. When false, the naive double-copy path is modelled
     * (GPU enclave decrypts, re-encrypts, copies again).
     */
    bool singleCopy = true;

    /** Defaults tuned for the paper's platform. */
    static const PlatformConfig &paper();
};

}  // namespace hix::sim

#endif  // HIX_SIM_PLATFORM_CONFIG_H_
