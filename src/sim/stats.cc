#include "sim/stats.h"

#include <iomanip>

namespace hix::sim
{

void
Distribution::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    sum_sq_ += v * v;
    ++count_;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0;
    const double m = mean();
    const double var = sum_sq_ / count_ - m * m;
    return var > 0 ? std::sqrt(var) : 0;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    sum_sq_ = 0;
    min_ = 0;
    max_ = 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, s] : scalars_) {
        os << name_ << '.' << name << ' ' << s.sum() << " (count "
           << s.count() << ")\n";
    }
    for (const auto &[name, d] : dists_) {
        os << name_ << '.' << name << " mean " << d.mean() << " min "
           << d.min() << " max " << d.max() << " stddev " << d.stddev()
           << " (count " << d.count() << ")\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, s] : scalars_)
        s.reset();
    for (auto &[name, d] : dists_)
        d.reset();
}

}  // namespace hix::sim
