/**
 * @file
 * Timed-operation DAG recorded during functional execution.
 *
 * The platform separates functional execution from timing (the gem5
 * approach). As a workload runs through the software stack, every
 * timed hardware action — an MMIO doorbell, a DMA chunk transfer, a
 * CPU encryption pass, a GPU kernel — is appended to a Trace as an Op
 * with an explicit dependency list. The Scheduler (scheduler.h) then
 * computes start/completion times with resource arbitration. Explicit
 * dependencies are what let the HIX chunked data path express its
 * encrypt/transfer pipelining (Section 5.2 of the paper).
 *
 * The trace is allocation-lean so multi-million-op recordings (16+
 * concurrent users, 4 KiB pipeline chunks) stay cheap: op labels are
 * interned into a per-trace string table and ops carry a 32-bit
 * LabelId; dependency lists of up to two entries (the common case —
 * program-order chain plus one pipeline dependency) live inline in
 * the Op, longer lists spill into one shared pool owned by the Trace.
 */

#ifndef HIX_SIM_TRACE_H_
#define HIX_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"

namespace hix::sim
{

/** Index of an op within its Trace. */
using OpId = std::uint32_t;

/** Sentinel for "no op". */
inline constexpr OpId InvalidOpId = std::numeric_limits<OpId>::max();

/** GPU context tag for ops that do not run on the GPU. */
inline constexpr GpuContextId NoGpuContext = ~GpuContextId(0);

/** Interned op-label handle; resolve with Trace::labelOf(). */
using LabelId = std::uint32_t;

/** LabelId of the empty label (always interned as id 0). */
inline constexpr LabelId NoLabel = 0;

/** Broad op categories for per-category stats breakdowns. */
enum class OpKind : std::uint8_t
{
    Compute,     //!< GPU application kernel
    CryptoCpu,   //!< CPU-side (enclave) encryption/decryption
    CryptoGpu,   //!< in-GPU crypto kernel
    Transfer,    //!< DMA or MMIO data movement
    Control,     //!< doorbells, IPC messages, driver bookkeeping
    Init,        //!< one-time setup (task init, attestation, ...)
};

/** Number of OpKind values (for dense per-kind tables). */
inline constexpr std::size_t OpKindCount = 6;

const char *opKindName(OpKind kind);

/**
 * One timed hardware action. Plain value type with no heap-owning
 * members: the label is an interned id and dependency lists longer
 * than InlineDeps live in the owning Trace's shared pool, so resolve
 * both through the Trace (labelOf() / deps()).
 */
struct Op
{
    /** Dependencies stored inline before spilling to the pool. */
    static constexpr std::uint32_t InlineDeps = 2;

    OpId id = InvalidOpId;
    /** Resource the op occupies exclusively while running. */
    ResourceId resource;
    /** Service time on the resource, in ticks. */
    Tick duration = 0;
    /** Payload size, for bandwidth stats; zero when not applicable. */
    std::uint64_t bytes = 0;
    /** GPU context (for context-switch accounting), or NoGpuContext. */
    GpuContextId gpuCtx = NoGpuContext;
    /** Interned label; Trace::labelOf() resolves it for dumps. */
    LabelId label = NoLabel;
    /** Number of prerequisite ops. */
    std::uint32_t depCount = 0;
    /** First InlineDeps prerequisites (valid when depCount <= InlineDeps). */
    OpId inlineDeps[InlineDeps] = {InvalidOpId, InvalidOpId};
    /** Offset into the trace's dep pool (valid when depCount > InlineDeps). */
    std::uint32_t depPoolOffset = 0;
    OpKind kind = OpKind::Control;
};

/**
 * An append-only op DAG. Traces from several users can be merged for
 * multi-user scheduling; op ids, spilled dependency lists, and label
 * ids are rewritten during the merge.
 */
class Trace
{
  public:
    Trace();

    /**
     * Append an op. @p deps lists prerequisite op ids within this
     * trace; InvalidOpId entries are dropped. @p chain_dep, when
     * valid, is appended after @p deps (the recorder's program-order
     * chain tail) without materialising a combined list.
     *
     * @return the new op's id.
     */
    OpId add(ResourceId resource, Tick duration,
             std::span<const OpId> deps, OpKind kind,
             std::uint64_t bytes = 0, std::string_view label = {},
             GpuContextId gpu_ctx = NoGpuContext,
             OpId chain_dep = InvalidOpId);

    /** Braced-list convenience: t.add(r, 10, {a, b}, kind). */
    OpId
    add(ResourceId resource, Tick duration,
        std::initializer_list<OpId> deps, OpKind kind,
        std::uint64_t bytes = 0, std::string_view label = {},
        GpuContextId gpu_ctx = NoGpuContext)
    {
        return add(resource, duration,
                   std::span<const OpId>(deps.begin(), deps.size()),
                   kind, bytes, label, gpu_ctx);
    }

    const std::vector<Op> &ops() const { return ops_; }
    const Op &op(OpId id) const { return ops_[id]; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Prerequisites of @p op (inline or pooled storage). */
    std::span<const OpId>
    deps(const Op &op) const
    {
        if (op.depCount <= Op::InlineDeps)
            return {op.inlineDeps, op.depCount};
        return {dep_pool_.data() + op.depPoolOffset, op.depCount};
    }

    /** Prerequisites of the op with id @p id. */
    std::span<const OpId> deps(OpId id) const { return deps(ops_[id]); }

    /** The interned string behind a LabelId ("" for NoLabel). */
    const std::string &
    labelOf(LabelId label) const
    {
        return labels_[label < labels_.size() ? label : 0];
    }

    /** Label of @p op. */
    const std::string &labelOf(const Op &op) const
    {
        return labelOf(op.label);
    }

    /** Intern @p label (idempotent); "" always maps to NoLabel. */
    LabelId internLabel(std::string_view label);

    /** Number of distinct interned labels (incl. the empty label). */
    std::size_t labelCount() const { return labels_.size(); }

    /** Id of the most recently added op, or InvalidOpId when empty. */
    OpId
    lastOp() const
    {
        return ops_.empty() ? InvalidOpId
                            : static_cast<OpId>(ops_.size() - 1);
    }

    /** Total duration of ops of a given kind (no overlap analysis). */
    Tick totalDuration(OpKind kind) const;

    /** Total bytes attached to ops of a given kind. */
    std::uint64_t totalBytes(OpKind kind) const;

    /** Pre-size op storage for a known recording (multi-user merge). */
    void reserve(std::size_t ops);

    /** Remove all ops (interned labels are kept: ids stay stable for
     *  the common record/clear/record cycle between runs). */
    void
    clear()
    {
        ops_.clear();
        dep_pool_.clear();
    }

    /**
     * Rewrites applied to ops while they are appended by
     * append(other, remap). Used by the sharded multi-user recorder:
     * each user records on a private machine whose GPU context ids
     * are shard-local, and the merge rewrites them to canonical
     * per-user ids so the merged trace is deterministic regardless
     * of shard construction order or threading.
     */
    struct AppendRemap
    {
        /**
         * Exact-match gpuCtx rewrites (old -> new). Ops whose context
         * appears in no entry — including NoGpuContext — keep their
         * recorded value. Kept as a flat list: real remaps have a
         * handful of contexts per shard.
         */
        std::vector<std::pair<GpuContextId, GpuContextId>> gpuCtx;

        GpuContextId
        mapCtx(GpuContextId ctx) const
        {
            for (const auto &[from, to] : gpuCtx)
                if (from == ctx)
                    return to;
            return ctx;
        }
    };

    /**
     * Append all ops of @p other, remapping op ids, spilled dep
     * lists, and label ids; returns the id offset applied to the
     * appended ops.
     *
     * Recorder observers attached to a TraceRecorder targeting this
     * trace do NOT fire for appended ops: append() is a bulk merge of
     * already-recorded execution, not a recording-time event.
     */
    OpId append(const Trace &other) { return append(other, AppendRemap{}); }

    /** append() with per-op rewrites (see AppendRemap). */
    OpId append(const Trace &other, const AppendRemap &remap);

    /**
     * Resource-connected components of this trace.
     *
     * Two ops are connected when one depends on the other or when
     * they occupy the same resource; components are the transitive
     * closure. Ops in different components never interact under the
     * greedy list scheduler — they share no resource and no
     * dependency path — so each component is an independent
     * scheduling sub-problem (scheduleParallel() fans components out
     * across worker threads). Per-user shards merged via append()
     * land in disjoint components exactly when their resource sets
     * are disjoint.
     */
    struct Components
    {
        /** Number of components. */
        std::uint32_t count = 0;
        /**
         * Component of each op (indexed by OpId). Component ids are
         * dense and assigned in first-appearance op order, so the
         * partition is deterministic for a given trace.
         */
        std::vector<std::uint32_t> opComponent;
        /** Ops per component (indexed by component id). The streaming
         *  scheduler sizes its per-component member lists from this. */
        std::vector<std::uint32_t> sizes;
    };

    /** Compute the resource-connected components (one pass). */
    Components components() const;

    /**
     * Test-only: overwrite an op's dependency list without the
     * forward-reference check, so scheduler cycle-detection paths can
     * be exercised. Never call from modelled software.
     */
    void overwriteDepsForTest(OpId id, std::span<const OpId> deps);

  private:
    struct LabelHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::uint32_t storeDeps(Op &op, std::span<const OpId> deps,
                            OpId chain_dep);

    std::vector<Op> ops_;
    /** Spilled dependency lists (> Op::InlineDeps entries). */
    std::vector<OpId> dep_pool_;
    /** Interned label strings; index == LabelId, [0] == "". */
    std::vector<std::string> labels_;
    /** Reverse lookup; heterogeneous find avoids per-record allocs. */
    std::unordered_map<std::string, LabelId, LabelHash,
                       std::equal_to<>>
        label_ids_;
};

/**
 * Order-insensitive content digest of a trace: FNV-1a 64 over each
 * op's resource, duration, bytes, gpuCtx, kind, resolved label string,
 * and dependency list. Label *ids* and inline-vs-spilled dep storage
 * do not enter the hash, so two traces recorded through different
 * interning orders digest equal iff they describe the same op DAG.
 * This is the equality witness for the parallel-recording guarantee.
 */
std::uint64_t traceDigest(const Trace &trace);

/**
 * Scoped recorder handle: components take a TraceRecorder so they can
 * run with recording disabled (pure functional mode) at zero cost.
 *
 * The recorder also maintains one "program order" chain per actor: by
 * default each recorded op depends on the previous op recorded for
 * the same actor, which models straight-line software. Data-path code
 * that pipelines passes explicit dependency lists instead.
 *
 * Thread contract: a recorder (and the trace it targets) is owned by
 * exactly one recording thread. The sharded multi-user runner gives
 * every user a private machine/recorder, so recording never crosses
 * threads. Observers consequently fire synchronously on the recording
 * thread of their own shard, with the op's label already resolved;
 * addObserver/removeObserver must be called from that same thread
 * (before the run starts, or from inside an observer). Calling them
 * from another thread while recording is a data race by contract —
 * it is not locked, and the TSan CI job enforces that no such call
 * exists in the tree.
 */
class TraceRecorder
{
  public:
    /**
     * Observer fired after an op is appended to the trace. This is
     * the security harness's phase hook: functional execution calls
     * record() at precise points of the modelled software (per
     * transfer chunk, per kernel launch), so an observer can
     * interleave an action — e.g. a privileged attack — exactly
     * between two chunks of a running transfer. @p label is the op's
     * resolved label, stable across trace mutation by the observer.
     */
    using OpObserver =
        std::function<void(const Op &, const std::string &label)>;

    /** A recorder that drops everything. */
    TraceRecorder() = default;

    /** A recorder appending to @p trace. */
    explicit TraceRecorder(Trace *trace) : trace_(trace) {}

    bool enabled() const { return trace_ != nullptr; }
    Trace *trace() { return trace_; }

    /**
     * Register an observer; returns a handle for removeObserver.
     * Observers must not record ops themselves (no re-entrancy).
     * Recording-thread only (see class comment). An observer added
     * from inside an observer callback first fires for the *next*
     * recorded op, not the one being notified.
     */
    int addObserver(OpObserver observer);

    /**
     * Remove an observer by the handle addObserver returned.
     * Recording-thread only. Removing from inside an observer
     * callback is safe, including self-removal; a removed observer
     * that has not fired for the current op is skipped.
     */
    void removeObserver(int handle);

    /**
     * Record an op that follows program order for @p actor: it
     * depends on the actor's previous op plus @p extra_deps, and
     * becomes the actor's new chain tail.
     *
     * @return the op id, or InvalidOpId when recording is disabled.
     */
    OpId record(std::uint32_t actor, ResourceId resource, Tick duration,
                OpKind kind, std::uint64_t bytes = 0,
                std::string_view label = {},
                GpuContextId gpu_ctx = NoGpuContext,
                std::span<const OpId> extra_deps = {});

    /** Braced-list convenience for @p extra_deps. */
    OpId
    record(std::uint32_t actor, ResourceId resource, Tick duration,
           OpKind kind, std::uint64_t bytes, std::string_view label,
           GpuContextId gpu_ctx, std::initializer_list<OpId> extra_deps)
    {
        return record(actor, resource, duration, kind, bytes, label,
                      gpu_ctx,
                      std::span<const OpId>(extra_deps.begin(),
                                            extra_deps.size()));
    }

    /**
     * Record an op with fully explicit dependencies; does not touch
     * any actor chain. Used by pipelined copies.
     */
    OpId recordDetached(ResourceId resource, Tick duration, OpKind kind,
                        std::span<const OpId> deps,
                        std::uint64_t bytes = 0,
                        std::string_view label = {},
                        GpuContextId gpu_ctx = NoGpuContext);

    /** Braced-list convenience for @p deps. */
    OpId
    recordDetached(ResourceId resource, Tick duration, OpKind kind,
                   std::initializer_list<OpId> deps,
                   std::uint64_t bytes = 0, std::string_view label = {},
                   GpuContextId gpu_ctx = NoGpuContext)
    {
        return recordDetached(
            resource, duration, kind,
            std::span<const OpId>(deps.begin(), deps.size()), bytes,
            label, gpu_ctx);
    }

    /**
     * Reset to the just-constructed state while keeping the chain
     * vector's capacity. Semantically identical to reassigning a
     * fresh TraceRecorder(trace()); Machine::clearTrace() uses this
     * between benchmark repetitions so neither the trace nor the
     * recorder reallocates in steady state.
     */
    void
    reset()
    {
        chain_tails_.clear();
        observers_.clear();
        next_observer_ = 0;
    }

    /** The tail op of @p actor's program-order chain. */
    OpId chainTail(std::uint32_t actor) const;

    /**
     * Make @p op the new tail of @p actor's chain (joins a pipelined
     * region back into program order).
     */
    void setChainTail(std::uint32_t actor, OpId op);

  private:
    void notify(OpId id);

    Trace *trace_ = nullptr;
    std::vector<OpId> chain_tails_;
    /** (handle, observer); removal keeps other handles stable. */
    std::vector<std::pair<int, OpObserver>> observers_;
    int next_observer_ = 0;
};

}  // namespace hix::sim

#endif  // HIX_SIM_TRACE_H_
