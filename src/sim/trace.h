/**
 * @file
 * Timed-operation DAG recorded during functional execution.
 *
 * The platform separates functional execution from timing (the gem5
 * approach). As a workload runs through the software stack, every
 * timed hardware action — an MMIO doorbell, a DMA chunk transfer, a
 * CPU encryption pass, a GPU kernel — is appended to a Trace as an Op
 * with an explicit dependency list. The Scheduler (scheduler.h) then
 * computes start/completion times with resource arbitration. Explicit
 * dependencies are what let the HIX chunked data path express its
 * encrypt/transfer pipelining (Section 5.2 of the paper).
 */

#ifndef HIX_SIM_TRACE_H_
#define HIX_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"

namespace hix::sim
{

/** Index of an op within its Trace. */
using OpId = std::uint32_t;

/** Sentinel for "no op". */
inline constexpr OpId InvalidOpId = std::numeric_limits<OpId>::max();

/** GPU context tag for ops that do not run on the GPU. */
inline constexpr GpuContextId NoGpuContext = ~GpuContextId(0);

/** Broad op categories for per-category stats breakdowns. */
enum class OpKind : std::uint8_t
{
    Compute,     //!< GPU application kernel
    CryptoCpu,   //!< CPU-side (enclave) encryption/decryption
    CryptoGpu,   //!< in-GPU crypto kernel
    Transfer,    //!< DMA or MMIO data movement
    Control,     //!< doorbells, IPC messages, driver bookkeeping
    Init,        //!< one-time setup (task init, attestation, ...)
};

const char *opKindName(OpKind kind);

/** One timed hardware action. */
struct Op
{
    OpId id = InvalidOpId;
    /** Resource the op occupies exclusively while running. */
    ResourceId resource;
    /** Service time on the resource, in ticks. */
    Tick duration = 0;
    /** Ops that must complete before this op may start. */
    std::vector<OpId> deps;
    /** GPU context (for context-switch accounting), or NoGpuContext. */
    GpuContextId gpuCtx = NoGpuContext;
    OpKind kind = OpKind::Control;
    /** Payload size, for bandwidth stats; zero when not applicable. */
    std::uint64_t bytes = 0;
    /** Short human-readable label for dumps. */
    std::string label;
};

/**
 * An append-only op DAG. Traces from several users can be merged for
 * multi-user scheduling; op ids are rewritten during the merge.
 */
class Trace
{
  public:
    /**
     * Append an op. @p deps lists prerequisite op ids within this
     * trace.
     *
     * @return the new op's id.
     */
    OpId add(ResourceId resource, Tick duration, std::vector<OpId> deps,
             OpKind kind, std::uint64_t bytes = 0, std::string label = {},
             GpuContextId gpu_ctx = NoGpuContext);

    const std::vector<Op> &ops() const { return ops_; }
    const Op &op(OpId id) const { return ops_[id]; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }

    /** Id of the most recently added op, or InvalidOpId when empty. */
    OpId
    lastOp() const
    {
        return ops_.empty() ? InvalidOpId
                            : static_cast<OpId>(ops_.size() - 1);
    }

    /** Total duration of ops of a given kind (no overlap analysis). */
    Tick totalDuration(OpKind kind) const;

    /** Total bytes attached to ops of a given kind. */
    std::uint64_t totalBytes(OpKind kind) const;

    /** Remove all ops. */
    void clear() { ops_.clear(); }

    /**
     * Append all ops of @p other, remapping ids; returns the id
     * offset applied to the appended ops.
     */
    OpId append(const Trace &other);

  private:
    std::vector<Op> ops_;
};

/**
 * Scoped recorder handle: components take a TraceRecorder so they can
 * run with recording disabled (pure functional mode) at zero cost.
 *
 * The recorder also maintains one "program order" chain per actor: by
 * default each recorded op depends on the previous op recorded for
 * the same actor, which models straight-line software. Data-path code
 * that pipelines passes explicit dependency lists instead.
 */
class TraceRecorder
{
  public:
    /**
     * Observer fired after an op is appended to the trace. This is
     * the security harness's phase hook: functional execution calls
     * record() at precise points of the modelled software (per
     * transfer chunk, per kernel launch), so an observer can
     * interleave an action — e.g. a privileged attack — exactly
     * between two chunks of a running transfer.
     */
    using OpObserver = std::function<void(const Op &)>;

    /** A recorder that drops everything. */
    TraceRecorder() = default;

    /** A recorder appending to @p trace. */
    explicit TraceRecorder(Trace *trace) : trace_(trace) {}

    bool enabled() const { return trace_ != nullptr; }
    Trace *trace() { return trace_; }

    /**
     * Register an observer; returns a handle for removeObserver.
     * Observers must not record ops themselves (no re-entrancy).
     */
    int addObserver(OpObserver observer);

    /** Remove an observer by the handle addObserver returned. */
    void removeObserver(int handle);

    /**
     * Record an op that follows program order for @p actor: it
     * depends on the actor's previous op plus @p extra_deps, and
     * becomes the actor's new chain tail.
     *
     * @return the op id, or InvalidOpId when recording is disabled.
     */
    OpId record(std::uint32_t actor, ResourceId resource, Tick duration,
                OpKind kind, std::uint64_t bytes = 0,
                std::string label = {},
                GpuContextId gpu_ctx = NoGpuContext,
                std::vector<OpId> extra_deps = {});

    /**
     * Record an op with fully explicit dependencies; does not touch
     * any actor chain. Used by pipelined copies.
     */
    OpId recordDetached(ResourceId resource, Tick duration, OpKind kind,
                        std::vector<OpId> deps, std::uint64_t bytes = 0,
                        std::string label = {},
                        GpuContextId gpu_ctx = NoGpuContext);

    /** The tail op of @p actor's program-order chain. */
    OpId chainTail(std::uint32_t actor) const;

    /**
     * Make @p op the new tail of @p actor's chain (joins a pipelined
     * region back into program order).
     */
    void setChainTail(std::uint32_t actor, OpId op);

  private:
    void notify(OpId id);

    Trace *trace_ = nullptr;
    std::vector<OpId> chain_tails_;
    /** (handle, observer); removal keeps other handles stable. */
    std::vector<std::pair<int, OpObserver>> observers_;
    int next_observer_ = 0;
};

}  // namespace hix::sim

#endif  // HIX_SIM_TRACE_H_
