/**
 * @file
 * Greedy list scheduler for op-DAG traces.
 *
 * Given a Trace (possibly merged from several users), the scheduler
 * computes start/finish times under two constraints: an op starts
 * only after all its dependencies finish, and each resource serves
 * one op at a time. GPU-side ops carry a GPU context id; when the GPU
 * compute engine switches context the configured switch cost (plus
 * optional scrub time) is charged, modelling Section 4.5 of the
 * paper. An op whose context differs from the engine's current one
 * has the switch penalty folded into its effective start time, so the
 * engine keeps serving the resident context while it has pending
 * work — the Fermi policy the paper describes.
 *
 * Two engines compute the same schedule:
 *
 *  - schedule() is the production O(n log n) engine: per-resource
 *    pending queues feed a global priority queue holding one
 *    versioned candidate per resource, keyed by (effective dispatch
 *    time, resident-context tie-break, op id).
 *  - scheduleReference() is the original O(n · ready) scan, kept as
 *    the executable specification; the golden-equivalence tests
 *    assert the two produce bit-identical results.
 */

#ifndef HIX_SIM_SCHEDULER_H_
#define HIX_SIM_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"
#include "sim/trace.h"

namespace hix::sim
{

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** GPU context-switch cost on the compute engine, in ticks. */
    Tick gpuCtxSwitchTicks = 0;
};

/** Per-resource utilisation summary. */
struct ResourceUsage
{
    Tick busy = 0;      //!< total service time
    Tick lastFree = 0;  //!< when the resource goes idle for good
    std::uint64_t ops = 0;
};

/** Output of a scheduling run. */
struct ScheduleResult
{
    /** Completion time of the last op. */
    Tick makespan = 0;
    /** Start time per op (indexed by OpId). */
    std::vector<Tick> start;
    /** Finish time per op (indexed by OpId). */
    std::vector<Tick> finish;
    /** Utilisation per resource. */
    std::map<ResourceId, ResourceUsage> usage;
    /** Busy time per op kind (sum of durations as scheduled). */
    std::map<OpKind, Tick> kindBusy;
    /** Number of GPU context switches charged. */
    std::uint64_t gpuCtxSwitches = 0;

    /** Finish time of a specific op (for per-phase measurements). */
    Tick
    finishOf(OpId id) const
    {
        return id < finish.size() ? finish[id] : 0;
    }
};

/** Compute a schedule for @p trace (O(n log n) engine). */
ScheduleResult schedule(const Trace &trace,
                        const SchedulerConfig &config = {});

/**
 * The original quadratic engine, kept as the executable
 * specification of the scheduling policy. schedule() must produce a
 * bit-identical ScheduleResult; tests/sim/scheduler_golden_test.cc
 * enforces this on recorded workload traces.
 */
ScheduleResult scheduleReference(const Trace &trace,
                                 const SchedulerConfig &config = {});

}  // namespace hix::sim

#endif  // HIX_SIM_SCHEDULER_H_
