/**
 * @file
 * Greedy list scheduler for op-DAG traces.
 *
 * Given a Trace (possibly merged from several users), the scheduler
 * computes start/finish times under two constraints: an op starts
 * only after all its dependencies finish, and each resource serves
 * one op at a time. GPU-side ops carry a GPU context id; when the GPU
 * compute engine switches context the configured switch cost (plus
 * optional scrub time) is charged, modelling Section 4.5 of the
 * paper. An op whose context differs from the engine's current one
 * has the switch penalty folded into its effective start time, so the
 * engine keeps serving the resident context while it has pending
 * work — the Fermi policy the paper describes.
 *
 * Three engines compute the same schedule:
 *
 *  - schedule() is the production O(n log n) engine: per-resource
 *    pending queues feed a global priority queue holding one
 *    versioned candidate per resource, keyed by (effective dispatch
 *    time, resident-context tie-break, op id).
 *  - scheduleReference() is the original O(n · ready) scan, kept as
 *    the executable specification; the golden-equivalence tests
 *    assert the two produce bit-identical results.
 *  - scheduleParallel() partitions the trace by resource-connected
 *    component and schedules components on a worker pool; a single
 *    shared component runs either the window-synchronized
 *    multi-thread engine (when the trace's cross-resource lookahead
 *    makes windows cheap) or a cache-lean serial core. All paths are
 *    bit-identical to schedule() (see DESIGN.md "Parallel timing
 *    engine").
 */

#ifndef HIX_SIM_SCHEDULER_H_
#define HIX_SIM_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"
#include "sim/trace.h"

namespace hix::sim
{

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** GPU context-switch cost on the compute engine, in ticks. */
    Tick gpuCtxSwitchTicks = 0;
    /**
     * Worker threads for scheduleParallel(): 0 (the default) sizes
     * the pool to the hardware thread count. The thread count never
     * changes the result — every path is bit-identical to
     * schedule() — only host wall-clock.
     */
    unsigned threads = 0;
};

/** Which scheduling engine scores a run (all bit-identical). */
enum class SchedulerEngine : std::uint8_t
{
    Fast,       //!< schedule(): serial O(n log n) production engine
    Reference,  //!< scheduleReference(): executable specification
    Parallel,   //!< scheduleParallel(): component/window worker pool
};

/** Per-resource utilisation summary. */
struct ResourceUsage
{
    Tick busy = 0;      //!< total service time
    Tick lastFree = 0;  //!< when the resource goes idle for good
    std::uint64_t ops = 0;
};

/** Output of a scheduling run. */
struct ScheduleResult
{
    /** Completion time of the last op. */
    Tick makespan = 0;
    /** Start time per op (indexed by OpId). */
    std::vector<Tick> start;
    /** Finish time per op (indexed by OpId). */
    std::vector<Tick> finish;
    /** Utilisation per resource. */
    std::map<ResourceId, ResourceUsage> usage;
    /** Busy time per op kind (sum of durations as scheduled). */
    std::map<OpKind, Tick> kindBusy;
    /** Number of GPU context switches charged. */
    std::uint64_t gpuCtxSwitches = 0;

    /**
     * Finish time of a specific op (for per-phase measurements).
     * Returns std::nullopt for an op id outside the schedule instead
     * of a silent 0, which reads like "finished at tick 0" and has
     * masked off-by-one probe bugs in benches.
     */
    std::optional<Tick>
    finishOf(OpId id) const
    {
        if (id < finish.size())
            return finish[id];
        return std::nullopt;
    }
};

/** Compute a schedule for @p trace (O(n log n) engine). */
ScheduleResult schedule(const Trace &trace,
                        const SchedulerConfig &config = {});

/**
 * The original quadratic engine, kept as the executable
 * specification of the scheduling policy. schedule() must produce a
 * bit-identical ScheduleResult; tests/sim/scheduler_golden_test.cc
 * enforces this on recorded workload traces.
 */
ScheduleResult scheduleReference(const Trace &trace,
                                 const SchedulerConfig &config = {});

/**
 * Parallel engine: bit-identical to schedule() at every thread
 * count.
 *
 * Resource-connected components (Trace::components()) are
 * independent sub-problems and fan out across a bounded worker pool,
 * largest component first. A trace that is one shared component runs
 * the window-synchronized multi-thread engine when its cross-resource
 * dependency lookahead makes synchronization windows cheap enough to
 * pay for their barriers, and a cache-lean serial core otherwise
 * (that core is also what each component worker runs). Traces whose
 * shape exceeds the lean core's packed-field limits fall back to
 * schedule() — still bit-identical, never wrong.
 */
ScheduleResult scheduleParallel(const Trace &trace,
                                const SchedulerConfig &config = {});

/** scheduleParallel() with an explicit worker count (overrides
 *  SchedulerConfig::threads; 0 = hardware concurrency). */
ScheduleResult scheduleParallel(const Trace &trace,
                                const SchedulerConfig &config,
                                unsigned threads);

/** Dispatch on a SchedulerEngine knob (runner / machine configs). */
ScheduleResult scheduleWith(SchedulerEngine engine, const Trace &trace,
                            const SchedulerConfig &config = {});

/** Work counters of one StreamingScheduler run (filled by finish()). */
struct StreamingStats
{
    std::uint64_t shards = 0;      //!< addShard() calls accepted
    std::uint64_t earlyComps = 0;  //!< components scheduled at intake
    std::uint64_t reusedComps = 0; //!< intake results that survived the join
    std::uint64_t reusedOps = 0;   //!< ops covered by surviving results
    std::uint64_t joinOps = 0;     //!< ops (re)scheduled at the join
};

/**
 * Streaming front-end to scheduleParallel(): accepts completed
 * per-user shards incrementally while later shards are still being
 * recorded, and produces a ScheduleResult bit-identical to scheduling
 * the merged trace with any of the three engines.
 *
 * addShard() must be called in merge order (user-index order for the
 * multi-user runner) because merged op ids are append-order dependent;
 * the runner's consumer holds out-of-order shard completions in a
 * reorder buffer. Each call appends the shard into the merged trace
 * and eagerly schedules every shard component whose resources have not
 * been seen in an earlier shard on the cache-lean serial core — those
 * are exactly the components that cannot be perturbed by *earlier*
 * work. A later shard that touches one of the component's resources
 * invalidates the speculative result.
 *
 * finish() pays the cross-shard merge exactly once: components whose
 * resource set stayed private to one shard keep their intake results
 * verbatim; everything else — the groups connected across shards by a
 * shared resource (on the Fermi preset the DMA engines and the single
 * compute engine tie all users together) — is (re)scheduled via the
 * parallel engine's component fan-out, and per-component stats merge
 * exactly as scheduleParallel() merges them. The streaming golden wall
 * (tests/workloads/streaming_record_schedule_test.cc) enforces
 * bit-identity on every ScheduleResult field at every thread count.
 */
class StreamingScheduler
{
  public:
    /** @p threads overrides config.threads for the join (0 = hardware
     *  concurrency), matching scheduleParallel()'s two-arg form. */
    explicit StreamingScheduler(const SchedulerConfig &config = {},
                                unsigned threads = 0);
    ~StreamingScheduler();

    StreamingScheduler(const StreamingScheduler &) = delete;
    StreamingScheduler &operator=(const StreamingScheduler &) = delete;

    /** Append the next shard in merge order and eagerly schedule its
     *  still-private components. Must not be called after finish(). */
    void addShard(const Trace &shard,
                  const Trace::AppendRemap &remap = {});

    /** Final join: (re)schedule every cross-shard component group,
     *  fold in surviving intake results, and merge stats once. */
    ScheduleResult finish();

    /** The incrementally merged trace (stable after finish()). */
    const Trace &merged() const;

    /** Move the merged trace out (for RunConfig::keepTrace). */
    Trace takeMerged();

    /** Intake/join work counters (complete after finish()). */
    const StreamingStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace hix::sim

#endif  // HIX_SIM_SCHEDULER_H_
