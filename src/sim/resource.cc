#include "sim/resource.h"

namespace hix::sim
{

const char *
resUnitName(ResUnit unit)
{
    switch (unit) {
      case ResUnit::UserCpu:
        return "user_cpu";
      case ResUnit::GpuEnclaveCpu:
        return "gpu_enclave_cpu";
      case ResUnit::DmaHtoD:
        return "dma_htod";
      case ResUnit::DmaDtoH:
        return "dma_dtoh";
      case ResUnit::GpuCompute:
        return "gpu_compute";
      case ResUnit::PcieMmio:
        return "pcie_mmio";
    }
    return "unknown";
}

std::string
ResourceId::toString() const
{
    return std::string(resUnitName(unit)) + "[" +
           std::to_string(index) + "]";
}

}  // namespace hix::sim
