#include "sim/resource.h"

#include "common/logging.h"

namespace hix::sim
{

std::uint16_t
deviceBlockedResourceIndex(std::uint32_t device, std::uint32_t perDevice,
                           std::uint64_t ctx)
{
    if (perDevice == 0)
        perDevice = 1;
    const std::uint64_t index =
        static_cast<std::uint64_t>(device) * perDevice + ctx % perDevice;
    if (index > 0xFFFF)
        hix_panic("device-blocked resource index overflows uint16_t: ",
                  "device=", device, " perDevice=", perDevice,
                  " ctx=", ctx, " -> ", index);
    return static_cast<std::uint16_t>(index);
}

const char *
resUnitName(ResUnit unit)
{
    switch (unit) {
      case ResUnit::UserCpu:
        return "user_cpu";
      case ResUnit::GpuEnclaveCpu:
        return "gpu_enclave_cpu";
      case ResUnit::DmaHtoD:
        return "dma_htod";
      case ResUnit::DmaDtoH:
        return "dma_dtoh";
      case ResUnit::GpuCompute:
        return "gpu_compute";
      case ResUnit::PcieMmio:
        return "pcie_mmio";
    }
    return "unknown";
}

std::string
ResourceId::toString() const
{
    return std::string(resUnitName(unit)) + "[" +
           std::to_string(index) + "]";
}

}  // namespace hix::sim
