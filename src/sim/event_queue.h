/**
 * @file
 * Minimal deterministic discrete-event queue.
 *
 * Components that need explicit event-driven behaviour (the GPU
 * command processor tests, failure-injection tests) schedule
 * callbacks here. Most of the timing model instead uses the op-DAG
 * Trace/Scheduler pair (see trace.h), which is better suited to the
 * pipelined data-path analysis the HIX evaluation needs.
 */

#ifndef HIX_SIM_EVENT_QUEUE_H_
#define HIX_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace hix::sim
{

/**
 * A deterministic event queue: events at the same tick fire in
 * insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** Schedule @p cb to fire at absolute tick @p when (>= curTick). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to fire @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(cur_tick_ + delta, std::move(cb));
    }

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Run until the queue drains; returns the final tick. */
    Tick run();

    /**
     * Run events with tick <= @p limit; time stops at the later of
     * the last fired event and @p limit.
     */
    Tick runUntil(Tick limit);

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace hix::sim

#endif  // HIX_SIM_EVENT_QUEUE_H_
