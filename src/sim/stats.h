/**
 * @file
 * Lightweight statistics: named scalars and distributions grouped
 * under a StatGroup, dumpable as aligned text. Modelled after gem5's
 * stats package, reduced to what the HIX evaluation needs.
 */

#ifndef HIX_SIM_STATS_H_
#define HIX_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace hix::sim
{

/** A running scalar statistic (count/sum). */
class Scalar
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        ++count_;
    }

    Scalar &
    operator+=(double v)
    {
        add(v);
        return *this;
    }

    Scalar &
    operator++()
    {
        add(1.0);
        return *this;
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
    }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/** A running distribution: min/max/mean/stddev. */
class Distribution
{
  public:
    void add(double v);

    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0; }
    double max() const { return count_ ? max_ : 0; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double stddev() const;

    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double sum_sq_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * A flat registry of named stats. Components create scalars and
 * distributions by name; dump() prints them sorted.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a scalar. */
    Scalar &scalar(const std::string &name) { return scalars_[name]; }

    /** Get-or-create a distribution. */
    Distribution &
    distribution(const std::string &name)
    {
        return dists_[name];
    }

    const std::string &name() const { return name_; }

    /** Print all stats, one per line, "<group>.<name> value". */
    void dump(std::ostream &os) const;

    void reset();

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
};

}  // namespace hix::sim

#endif  // HIX_SIM_STATS_H_
