/**
 * @file
 * Resource identifiers for the timing model.
 *
 * A resource is an exclusive hardware unit that ops serialize on: a
 * CPU hardware thread, a GPU DMA (copy) engine, the GPU compute
 * engine, or the MMIO/PIO path. GPU-side resources additionally track
 * which GPU context last used them so the scheduler can charge
 * context-switch costs (Section 4.5 of the paper).
 */

#ifndef HIX_SIM_RESOURCE_H_
#define HIX_SIM_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace hix::sim
{

/** The kinds of exclusive units in the modelled platform. */
enum class ResUnit : std::uint8_t
{
    /** A CPU hardware thread running a user process/enclave. */
    UserCpu,
    /** The CPU hardware thread running the GPU enclave. */
    GpuEnclaveCpu,
    /** GPU copy engine, host-to-device direction. */
    DmaHtoD,
    /** GPU copy engine, device-to-host direction. */
    DmaDtoH,
    /** The GPU compute engine (SM array as one unit, like Fermi). */
    GpuCompute,
    /** Programmed-I/O path over PCIe (MMIO data window). */
    PcieMmio,
};

/** Name of a resource unit, for stats and trace dumps. */
const char *resUnitName(ResUnit unit);

/**
 * A concrete resource instance: unit kind plus index (e.g. UserCpu 0,
 * UserCpu 1 for two concurrent users).
 */
struct ResourceId
{
    ResUnit unit = ResUnit::UserCpu;
    std::uint16_t index = 0;

    friend bool
    operator==(const ResourceId &a, const ResourceId &b)
    {
        return a.unit == b.unit && a.index == b.index;
    }

    friend bool
    operator<(const ResourceId &a, const ResourceId &b)
    {
        if (a.unit != b.unit)
            return a.unit < b.unit;
        return a.index < b.index;
    }

    std::string toString() const;
};

/**
 * Device-blocked per-context resource index:
 * `device * perDevice + ctx % perDevice`. This is the canonical layout
 * for every per-device engine bank (compute queues, DMA channels,
 * enclave lanes): device d owns the contiguous index block
 * [d * perDevice, (d + 1) * perDevice). Computed in 64-bit and checked
 * against the uint16_t ResourceId::index range — panics instead of
 * silently wrapping on large pools.
 */
std::uint16_t deviceBlockedResourceIndex(std::uint32_t device,
                                         std::uint32_t perDevice,
                                         std::uint64_t ctx);

struct ResourceIdHash
{
    std::size_t
    operator()(const ResourceId &r) const
    {
        return (static_cast<std::size_t>(r.unit) << 16) ^ r.index;
    }
};

}  // namespace hix::sim

#endif  // HIX_SIM_RESOURCE_H_
