#include "sim/event_queue.h"

#include "common/logging.h"

namespace hix::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < cur_tick_)
        hix_panic("EventQueue: scheduling in the past (", when, " < ",
                  cur_tick_, ")");
    events_.push(Event{when, next_seq_++, std::move(cb)});
}

Tick
EventQueue::run()
{
    return runUntil(MaxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events_.empty() && events_.top().when <= limit) {
        // Copy out before pop: the callback may schedule new events.
        Event ev = events_.top();
        events_.pop();
        cur_tick_ = ev.when;
        ev.cb();
    }
    if (limit != MaxTick && cur_tick_ < limit)
        cur_tick_ = limit;
    return cur_tick_;
}

}  // namespace hix::sim
