#include "sim/platform_config.h"

namespace hix::sim
{

const PlatformConfig &
PlatformConfig::paper()
{
    static const PlatformConfig config{};
    return config;
}

}  // namespace hix::sim
