/**
 * @file
 * Built-in fuzz targets for the deterministic runner: protocol
 * parsing, AuthChannel seal/open framing, and MMU/IOMMU/PhysMem
 * mapping state, each validated against a shadow model.
 */

#ifndef HIX_TESTING_FUZZ_TARGETS_H_
#define HIX_TESTING_FUZZ_TARGETS_H_

#include "testing/fuzz.h"

namespace hix::harness
{

/** Protocol encode/decode roundtrip + mutation robustness. */
FuzzTarget protocolFuzzTarget();

/** AuthChannel framing: delivery, tamper, replay, stream mixups. */
FuzzTarget authChannelFuzzTarget();

/** PageTable + IOMMU + PhysMem state vs a shadow model. */
FuzzTarget mappingStateFuzzTarget();

/**
 * Memory-system fast-path differential: two mirrored machines (bus +
 * RAM + page tables + validating MMU) driven by one op stream, one
 * with the set-associative TLB and coalesced bulk copies, the other
 * with the linear TlbReference and the per-page reference loop.
 * Bytes, Status codes, translations, TLB sizes, and hit/miss
 * counters must stay identical; bus routing is additionally checked
 * against routeReference().
 */
FuzzTarget memorySystemFuzzTarget();

/**
 * Copy-on-write snapshot/fork differential: a family of PhysMem
 * forks and frozen snapshots driven by one op stream (writes, reads,
 * whole-page scrubs, snapshot, adopt, fork creation/destruction),
 * each fork shadowed by an eager deep-copy oracle. Every read must
 * match the oracle byte-for-byte, adopting a snapshot must leave the
 * fork with zero privately-owned pages, and no write may ever leak
 * into a sibling fork or a frozen snapshot.
 */
FuzzTarget cowForkFuzzTarget();

/**
 * Multi-GPU routing: a 2-4 GPU PCIe fabric with per-device IOMMU
 * protection domains, driven against a per-device ownership shadow
 * model. DMA issued under device k's requester identity must resolve
 * only through domain k's table and only into k's RAM partition;
 * BAR apertures never overlap; a BAR1 write reaches exactly its
 * device's VRAM; final RAM equals the shadow byte-for-byte.
 */
FuzzTarget multiGpuRoutingFuzzTarget();

}  // namespace hix::harness

#endif  // HIX_TESTING_FUZZ_TARGETS_H_
