/**
 * @file
 * Built-in fuzz targets for the deterministic runner: protocol
 * parsing, AuthChannel seal/open framing, and MMU/IOMMU/PhysMem
 * mapping state, each validated against a shadow model.
 */

#ifndef HIX_TESTING_FUZZ_TARGETS_H_
#define HIX_TESTING_FUZZ_TARGETS_H_

#include "testing/fuzz.h"

namespace hix::harness
{

/** Protocol encode/decode roundtrip + mutation robustness. */
FuzzTarget protocolFuzzTarget();

/** AuthChannel framing: delivery, tamper, replay, stream mixups. */
FuzzTarget authChannelFuzzTarget();

/** PageTable + IOMMU + PhysMem state vs a shadow model. */
FuzzTarget mappingStateFuzzTarget();

}  // namespace hix::harness

#endif  // HIX_TESTING_FUZZ_TARGETS_H_
