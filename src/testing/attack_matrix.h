/**
 * @file
 * Table-driven security conformance matrix (paper Section 5.5).
 *
 * Each cell is one privileged attack primitive, launched against one
 * runtime (unprotected baseline or HIX) at one lifecycle phase, with
 * an expected outcome: baseline cells must *demonstrate* the breach
 * (plaintext leak, silent corruption, hijack), HIX cells must show
 * the specific wall that stops it (denial, MAC-failure detection,
 * lockout, scrubbing). Running the matrix produces a pass/fail per
 * cell and a markdown report artifact, making the paper's attack
 * table an executable, regression-checked specification.
 *
 * Adding a cell is one AttackMatrix::add() call with a closure; see
 * registerBuiltinCells() in builtin_cells.cc.
 */

#ifndef HIX_TESTING_ATTACK_MATRIX_H_
#define HIX_TESTING_ATTACK_MATRIX_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "testing/scenario.h"

namespace hix::harness
{

/** What the attack achieved (or ran into). */
enum class Outcome
{
    // Breaches — what the baseline cells demonstrate.
    PlaintextLeak,     //!< attacker recovered victim plaintext
    SilentCorruption,  //!< victim data corrupted, nothing noticed
    MappingHijack,     //!< forged translation honoured by hardware
    AttackAllowed,     //!< privileged action succeeded unchecked

    // Walls — what the HIX cells assert.
    CiphertextOnly,    //!< attacker sees only OCB ciphertext
    Denied,            //!< hardware refused the access outright
    Detected,          //!< cryptographic check caught the tamper
    LockedOut,         //!< GPU unusable until cold boot
    Scrubbed,          //!< residual data cleansed before release
};

const char *outcomeName(Outcome outcome);

/** True for the outcomes that represent a successful breach. */
bool outcomeIsBreach(Outcome outcome);

/** What one executed cell observed. */
struct CellResult
{
    Outcome outcome = Outcome::AttackAllowed;
    /** Free-form evidence, e.g. "4091/4096 bytes recovered". */
    std::string detail;
};

/** One matrix cell: attack x runtime x phase with its expectation. */
struct AttackCell
{
    /** Row key, e.g. "dram-snoop-h2d". */
    std::string attack;
    /** os::Attacker primitive(s) the cell exercises. */
    std::string primitive;
    RuntimeKind runtime = RuntimeKind::Baseline;
    Phase phase = Phase::PreLaunch;
    Outcome expected = Outcome::AttackAllowed;
    /** Pointer into the paper, e.g. "S5.5 direct-access attacks". */
    std::string paperRef;
    /** Execute the cell; errors mean the cell could not run. */
    std::function<Result<CellResult>()> run;
};

/** Result of executing one cell. */
struct CellRun
{
    bool pass = false;
    /** Set when the cell harness itself failed (not an outcome). */
    std::string error;
    CellResult observed;
};

/**
 * The registry + runner. Cells execute independently (each builds
 * its own machine), so one misbehaving cell cannot poison another.
 */
class AttackMatrix
{
  public:
    void add(AttackCell cell);

    std::size_t size() const { return cells_.size(); }
    const std::vector<AttackCell> &cells() const { return cells_; }

    /**
     * Run every cell; returns the number of failing cells. Per-cell
     * progress goes to @p progress when non-null.
     */
    int runAll(std::ostream *progress = nullptr);

    /** Per-cell results, parallel to cells(); empty before runAll. */
    const std::vector<CellRun> &results() const { return results_; }

    /** Render the executed matrix as a markdown report. */
    std::string toMarkdown() const;

    /** Write toMarkdown() to @p path. */
    Status writeMarkdown(const std::string &path) const;

  private:
    std::vector<AttackCell> cells_;
    std::vector<CellRun> results_;
};

/** Install the built-in Section 5.5 cell set (>= 20 cells). */
void registerBuiltinCells(AttackMatrix &matrix);

}  // namespace hix::harness

#endif  // HIX_TESTING_ATTACK_MATRIX_H_
