/**
 * @file
 * Reusable victim scenario for the security conformance harness.
 *
 * A VictimScenario stands up one complete GPU workload — machine,
 * runtime (unprotected baseline or HIX trusted runtime), a secret
 * buffer, an upload / kernel / download lifecycle — and exposes the
 * precise interleaving points an attack cell needs: every lifecycle
 * step is an explicit call, and onOp() arms a phase hook that fires
 * the attack between two recorded ops of a running transfer (e.g.
 * between chunk 2 and chunk 3 of an HtoD copy), using the
 * sim::TraceRecorder observer added for exactly this purpose.
 *
 * The scenario forces a small pipeline chunk (4 KiB) so a 16 KiB
 * secret moves as four chunks, giving mid-transfer attacks real
 * chunk boundaries to strike at.
 */

#ifndef HIX_TESTING_SCENARIO_H_
#define HIX_TESTING_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hix/baseline_runtime.h"
#include "hix/gpu_enclave.h"
#include "hix/trusted_runtime.h"
#include "os/attacker.h"
#include "os/machine.h"

namespace hix::harness
{

/** Which runtime the victim uses: the attack matrix's column pair. */
enum class RuntimeKind
{
    Baseline,  //!< stock Gdev stack, no protection
    Hix,       //!< GPU enclave + trusted runtime
};

/** When the attack strikes relative to the victim's lifecycle. */
enum class Phase
{
    PreLaunch,     //!< after session/data setup, before the kernel
    MidTransfer,   //!< between two chunks of a running copy
    MidKernel,     //!< while the job occupies the GPU
    PostTeardown,  //!< after the victim released its resources
};

const char *runtimeKindName(RuntimeKind kind);
const char *phaseName(Phase phase);

/** Scenario construction knobs. */
struct ScenarioOptions
{
    RuntimeKind runtime = RuntimeKind::Baseline;
    /** Enable the IOMMU and identity-map the victim's DMA pages
     *  (required by the DMA-redirection cells). */
    bool iommu = false;
    /** Secret payload size; four pipeline chunks by default. */
    std::size_t secretBytes = 16 * 1024;
    /** Seed for the secret contents (deterministic per cell). */
    std::uint64_t seed = 0x5ec2e7;
    /** GPUs in the machine's pool (pool cells place the victim and
     *  the attacker's probes on same vs different devices). */
    int gpuCount = 1;
    /** Which pool device hosts the victim's session. */
    int victimDevice = 0;
};

/**
 * One victim workload plus the privileged attacker bound to the same
 * machine. Attack cells drive the lifecycle step by step and observe
 * what the attacker could read, corrupt, or deny.
 */
class VictimScenario
{
  public:
    explicit VictimScenario(const ScenarioOptions &options = {});
    ~VictimScenario();

    VictimScenario(const VictimScenario &) = delete;
    VictimScenario &operator=(const VictimScenario &) = delete;

    // ----- Lifecycle steps (call in order) -----------------------------
    /** Stand up the runtime; for HIX: boot GPU enclave + connect. */
    Status setup();

    /** Upload the secret (chunked HtoD copy). */
    Status upload();

    /** Launch the registered no-op kernel over the buffer. */
    Status launchKernel();

    /** Download the buffer (chunked DtoH copy). */
    Result<Bytes> download();

    /** Free the buffer and close the runtime/session. */
    Status teardown();

    // ----- Phase hooks ---------------------------------------------------
    /**
     * Run @p attack when the @p occurrence-th op labelled @p label is
     * recorded (1-based). Hooks fire between the functional effects
     * of consecutive data-path steps, which is what "the attacker
     * strikes mid-transfer" means in a functional-first model.
     */
    void onOp(const std::string &label, int occurrence,
              std::function<void()> attack);

    /** Transfer-chunk op label of this runtime's HtoD data path. */
    const char *htodChunkLabel() const;

    /** Transfer-chunk op label of this runtime's DtoH data path. */
    const char *dtohChunkLabel() const;

    // ----- Accessors ------------------------------------------------------
    os::Machine &machine() { return *machine_; }
    os::Attacker &attacker() { return attacker_; }
    const ScenarioOptions &options() const { return options_; }
    const Bytes &secret() const { return secret_; }
    std::uint64_t chunkBytes() const { return chunk_bytes_; }
    Addr gpuVa() const { return gpu_va_; }

    /** Physical address of the victim's DRAM staging area: the pinned
     *  host buffer (baseline) or the shared ring (HIX). */
    Addr stagingPaddr() const;

    /** VA of the staging area in the victim process. */
    Addr stagingVaddr() const;

    ProcessId victimPid() const;
    EnclaveId victimEnclaveId() const;

    core::BaselineRuntime *baseline() { return baseline_.get(); }
    core::TrustedRuntime *trusted() { return trusted_.get(); }
    core::GpuEnclave *gpuEnclave() { return ge_.get(); }

    /** Device-physical address of the victim's VRAM buffer
     *  (baseline only: HIX hides the allocation inside the enclave). */
    Result<Addr> vramPaddr();

    /** Host-physical address of the BAR1 VRAM aperture of pool
     *  @p device (default: the victim's device). */
    Addr bar1Base(int device = -1);

    /** Create a process for the attacker to map things into. */
    ProcessId makeEvilProcess();

    /** Allocate DRAM frames filled with @p fill for DMA redirection. */
    Result<Addr> evilFrame(std::uint64_t size, std::uint8_t fill);

    /** Scan a pool GPU's VRAM for @p needle (test oracle, not
     *  modelled software); returns true when found. @p device
     *  defaults to the victim's device. */
    bool vramContains(const Bytes &needle, std::uint64_t scan_bytes,
                      int device = -1);

    // ----- Observation helpers -------------------------------------------
    /** Fraction of positions where @p a and @p b agree. */
    static double matchRatio(const Bytes &a, const Bytes &b);

    /** Best matchRatio of @p observed against any aligned
     *  @p chunk-sized window of @p reference. */
    static double bestChunkMatch(const Bytes &observed,
                                 const Bytes &reference,
                                 std::uint64_t chunk);

  private:
    struct Hook
    {
        std::string label;
        int remaining = 0;
        bool fired = false;
        std::function<void()> fn;
    };

    void ensureObserver();
    void dispatch(const sim::Op &op, const std::string &label);
    Status enableIommuIdentity(Addr paddr, std::uint64_t size);
    gpu::GpuDevice &victimGpu();

    ScenarioOptions options_;
    std::unique_ptr<os::Machine> machine_;
    os::Attacker attacker_;
    Bytes secret_;
    std::uint64_t chunk_bytes_ = 4096;

    std::unique_ptr<core::BaselineRuntime> baseline_;
    std::unique_ptr<core::GpuEnclave> ge_;
    std::unique_ptr<core::TrustedRuntime> trusted_;
    Addr gpu_va_ = 0;

    std::vector<Hook> hooks_;
    int observer_handle_ = -1;
    bool in_hook_ = false;
};

}  // namespace hix::harness

#endif  // HIX_TESTING_SCENARIO_H_
