#include "testing/fuzz.h"

#include "common/rng.h"

namespace hix::harness
{

namespace
{

/** splitmix64 finalizer: cheap, well-mixed combine step. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return h;
}

}  // namespace

void
FuzzRunner::add(FuzzTarget target)
{
    targets_.push_back(std::move(target));
}

std::vector<std::uint64_t>
FuzzRunner::traceFor(const FuzzTarget &target,
                     std::uint64_t iteration) const
{
    // Independent stream per (seed, target, iteration): re-seeding
    // from a mixed value keeps traces stable when the budget or the
    // target list changes.
    std::uint64_t s = mix(seed_, iteration + 1);
    for (char c : target.name)
        s = mix(s, static_cast<std::uint64_t>(c));
    Rng rng(s);
    const std::size_t span = target.maxOps - target.minOps + 1;
    const std::size_t n =
        target.minOps + static_cast<std::size_t>(rng.nextBelow(span));
    std::vector<std::uint64_t> ops(n);
    for (std::uint64_t &op : ops)
        op = rng.next64();
    return ops;
}

FuzzVerdict
FuzzRunner::runTarget(const FuzzTarget &target) const
{
    FuzzVerdict verdict;
    verdict.target = target.name;
    verdict.seed = seed_;
    for (std::uint64_t iter = 0; iter < iterations_; ++iter) {
        std::vector<std::uint64_t> ops = traceFor(target, iter);
        Status st = target.run(ops);
        for (std::uint64_t op : ops)
            verdict.digest = mix(verdict.digest, op);
        verdict.digest = mix(
            verdict.digest, static_cast<std::uint64_t>(st.code()));
        ++verdict.iterations;
        if (!st.isOk()) {
            verdict.failed = true;
            verdict.failingIteration = iter;
            verdict.message = st.toString();
            verdict.trace = shrink(target, std::move(ops));
            // Re-run the shrunk trace for the final message.
            Status final_st = target.run(verdict.trace);
            if (!final_st.isOk())
                verdict.message = final_st.toString();
            return verdict;
        }
    }
    return verdict;
}

std::vector<std::uint64_t>
FuzzRunner::shrink(const FuzzTarget &target,
                   std::vector<std::uint64_t> failing) const
{
    // Greedy delta debugging: repeatedly try to excise spans of
    // halving length; keep any excision that still fails.
    for (std::size_t span = failing.size() / 2; span >= 1;
         span = span / 2) {
        bool removed = true;
        while (removed) {
            removed = false;
            for (std::size_t start = 0;
                 start + span <= failing.size();) {
                std::vector<std::uint64_t> candidate;
                candidate.reserve(failing.size() - span);
                candidate.insert(candidate.end(), failing.begin(),
                                 failing.begin() + start);
                candidate.insert(candidate.end(),
                                 failing.begin() + start + span,
                                 failing.end());
                if (!target.run(candidate).isOk()) {
                    failing = std::move(candidate);
                    removed = true;
                } else {
                    start += span;
                }
            }
        }
        if (span == 1)
            break;
    }
    return failing;
}

std::vector<FuzzVerdict>
FuzzRunner::runAll(std::ostream *progress) const
{
    std::vector<FuzzVerdict> verdicts;
    verdicts.reserve(targets_.size());
    for (const FuzzTarget &target : targets_) {
        FuzzVerdict v = runTarget(target);
        if (progress) {
            *progress << (v.failed ? "  FAIL " : "  ok   ")
                      << v.target << ": " << v.iterations
                      << " iteration(s), digest 0x" << std::hex
                      << v.digest << std::dec;
            if (v.failed)
                *progress << " — " << v.message << " (trace of "
                          << v.trace.size() << " op(s) at iteration "
                          << v.failingIteration << ")";
            *progress << "\n";
        }
        verdicts.push_back(std::move(v));
    }
    return verdicts;
}

}  // namespace hix::harness
