#include "testing/fuzz_targets.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "crypto/auth_channel.h"
#include "crypto/hmac.h"
#include "gpu/gpu_device.h"
#include "hix/protocol.h"
#include "mem/iommu.h"
#include "mem/mmu.h"
#include "mem/page_table.h"
#include "mem/phys_bus.h"
#include "mem/phys_mem.h"
#include "pcie/root_complex.h"

namespace hix::harness
{

namespace
{

std::string
hexWord(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

// ----- protocol --------------------------------------------------------

Status
runProtocol(const std::vector<std::uint64_t> &ops)
{
    std::size_t i = 0;
    auto next = [&]() -> std::uint64_t {
        return i < ops.size() ? ops[i++] : 0;
    };

    // Build a structured request from the op stream and round-trip.
    core::Request req;
    req.type = static_cast<core::ReqType>(1 + next() % 9);
    const std::size_t nargs = next() % 6;
    for (std::size_t a = 0; a < nargs; ++a)
        req.args.push_back(next());
    const std::size_t blob_len = next() % 24;
    for (std::size_t b = 0; b < blob_len; ++b)
        req.blob.push_back(static_cast<std::uint8_t>(next()));

    Bytes wire = core::encodeRequest(req);
    auto decoded = core::decodeRequest(wire);
    if (!decoded.isOk())
        return errInternal("request roundtrip decode failed: " +
                           decoded.status().toString());
    if (decoded->type != req.type || decoded->args != req.args ||
        decoded->blob != req.blob)
        return errInternal("request roundtrip mismatch");

    // Same for a response.
    core::Response resp;
    resp.code = static_cast<std::uint32_t>(next() % 16);
    const std::size_t nvals = next() % 5;
    for (std::size_t v = 0; v < nvals; ++v)
        resp.vals.push_back(next());
    Bytes rwire = core::encodeResponse(resp);
    auto rdec = core::decodeResponse(rwire);
    if (!rdec.isOk())
        return errInternal("response roundtrip decode failed: " +
                           rdec.status().toString());
    if (rdec->code != resp.code || rdec->vals != resp.vals)
        return errInternal("response roundtrip mismatch");

    // Mutation: decode must stay total (return a status, never
    // crash or over-read), and anything it accepts must re-encode
    // canonically.
    Bytes mutated = wire;
    mutated[next() % mutated.size()] ^=
        static_cast<std::uint8_t>(next() | 1);
    auto mdec = core::decodeRequest(mutated);
    if (mdec.isOk()) {
        auto canon = core::decodeRequest(core::encodeRequest(*mdec));
        if (!canon.isOk() || canon->type != mdec->type ||
            canon->args != mdec->args || canon->blob != mdec->blob)
            return errInternal("accepted mutation is not canonical");
    }

    // Truncation and garbage extension must be rejected or handled.
    Bytes truncated(
        wire.begin(),
        wire.begin() +
            static_cast<std::ptrdiff_t>(next() % wire.size()));
    if (core::decodeRequest(truncated).isOk() &&
        truncated.size() != wire.size())
        return errInternal("truncated request accepted");
    Bytes extended = wire;
    extended.push_back(static_cast<std::uint8_t>(next()));
    if (core::decodeRequest(extended).isOk())
        return errInternal("over-long request accepted");
    return Status::ok();
}

// ----- auth channel ----------------------------------------------------

Status
runAuthChannel(const std::vector<std::uint64_t> &ops)
{
    const crypto::AesKey key =
        crypto::deriveAesKey(Bytes(32, 0x5A), "fuzz-channel");
    crypto::AuthChannel sender(key, 1, 2);
    crypto::AuthChannel receiver(key, 2, 1);

    struct InFlight
    {
        crypto::SealedMessage msg;
        Bytes plaintext;
    };
    std::deque<InFlight> inflight;
    std::uint64_t sent = 0;

    for (std::uint64_t op : ops) {
        switch (op % 5) {
          case 0: {  // seal a fresh message
            const std::size_t len = (op >> 8) % 64;
            Bytes pt(len);
            for (std::size_t j = 0; j < len; ++j)
                pt[j] = static_cast<std::uint8_t>(op >> (j % 56));
            crypto::SealedMessage msg = sender.seal(pt);
            ++sent;
            if (msg.sequence != sent)
                return errInternal("send sequence not monotonic");
            inflight.push_back(InFlight{std::move(msg), std::move(pt)});
            break;
          }
          case 1: {  // in-order delivery must succeed exactly once
            if (inflight.empty())
                break;
            InFlight m = std::move(inflight.front());
            inflight.pop_front();
            auto pt = receiver.open(m.msg);
            if (!pt.isOk())
                return errInternal("in-order open rejected: " +
                                   pt.status().toString());
            if (*pt != m.plaintext)
                return errInternal("opened plaintext mismatch");
            if (receiver.lastAcceptedSequence() != m.msg.sequence)
                return errInternal("receiver sequence not advanced");
            break;
          }
          case 2: {  // tampered copy must be rejected, original kept
            if (inflight.empty())
                break;
            crypto::SealedMessage copy = inflight.front().msg;
            const std::size_t bit = (op >> 16) % (copy.body.size() * 8);
            copy.body[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
            auto pt = receiver.open(copy);
            if (pt.isOk())
                return errInternal("tampered message accepted");
            if (pt.status().code() != StatusCode::IntegrityFailure)
                return errInternal(
                    "tamper misclassified: " + pt.status().toString());
            break;
          }
          case 3: {  // wrong-stream copy must be rejected
            if (inflight.empty())
                break;
            crypto::SealedMessage copy = inflight.front().msg;
            copy.stream ^= 0x10;
            auto pt = receiver.open(copy);
            if (pt.isOk())
                return errInternal("wrong-stream message accepted");
            if (pt.status().code() != StatusCode::InvalidArgument)
                return errInternal("wrong stream misclassified: " +
                                   pt.status().toString());
            break;
          }
          case 4: {  // skip-ahead delivery, then replay it
            if (inflight.empty())
                break;
            InFlight m = std::move(inflight.back());
            inflight.clear();  // older messages become stale
            auto pt = receiver.open(m.msg);
            if (!pt.isOk())
                return errInternal("skip-ahead open rejected: " +
                                   pt.status().toString());
            if (*pt != m.plaintext)
                return errInternal("skip-ahead plaintext mismatch");
            auto replay = receiver.open(m.msg);
            if (replay.isOk())
                return errInternal("replayed message accepted");
            if (replay.status().code() != StatusCode::ReplayDetected)
                return errInternal("replay misclassified: " +
                                   replay.status().toString());
            break;
          }
        }
    }
    return Status::ok();
}

// ----- mapping state ---------------------------------------------------

constexpr std::uint64_t FuzzRamSize = 1 * 1024 * 1024;

/** Small address pool + occasional adversarial extremes. */
Addr
pickAddr(std::uint64_t op, unsigned shift)
{
    const std::uint64_t sel = (op >> shift) & 0xff;
    if ((sel & 0x0f) == 0x0f)  // extreme: near the top of the space
        return (~std::uint64_t(0) << 12) + (sel >> 4);
    if ((sel & 0x0f) == 0x0e)  // unaligned
        return (sel % 16) * mem::PageSize + 1 + (sel >> 4);
    return (sel % 16) * mem::PageSize;
}

Status
runMappingState(const std::vector<std::uint64_t> &ops)
{
    mem::PageTable pt;
    std::unordered_map<Addr, mem::Pte> pt_shadow;
    mem::Iommu iommu;
    iommu.setEnabled(true);
    std::unordered_map<Addr, Addr> io_shadow;
    mem::PhysMem ram("fuzz_ram", FuzzRamSize);
    std::unordered_map<std::uint64_t, std::uint8_t> ram_shadow;

    for (std::uint64_t op : ops) {
        const Addr va = pickAddr(op, 8);
        const Addr pa = pickAddr(op, 16);
        const std::uint8_t perms =
            static_cast<std::uint8_t>(1 + (op >> 24) % 7);
        switch (op % 8) {
          case 0: {
            Status st = pt.map(va, pa, perms);
            const bool aligned =
                mem::pageAligned(va) && mem::pageAligned(pa);
            const bool fresh = pt_shadow.find(va) == pt_shadow.end();
            if (st.isOk() != (aligned && fresh))
                return errInternal("pt.map verdict mismatch at va " +
                                   hexWord(va));
            if (st.isOk())
                pt_shadow[va] = mem::Pte{pa, perms};
            break;
          }
          case 1: {
            Status st = pt.unmap(va);
            const bool present =
                pt_shadow.erase(mem::pageBase(va)) > 0;
            if (st.isOk() != present)
                return errInternal("pt.unmap verdict mismatch at " +
                                   hexWord(va));
            break;
          }
          case 2: {
            auto pte = pt.lookup(va);
            auto it = pt_shadow.find(mem::pageBase(va));
            if (pte.isOk() != (it != pt_shadow.end()))
                return errInternal("pt.lookup presence mismatch at " +
                                   hexWord(va));
            if (pte.isOk() && (pte->paddr != it->second.paddr ||
                               pte->perms != it->second.perms))
                return errInternal("pt.lookup PTE mismatch at " +
                                   hexWord(va));
            break;
          }
          case 3: {
            pt.overwrite(va, pa, perms);
            pt_shadow[mem::pageBase(va)] =
                mem::Pte{mem::pageBase(pa), perms};
            break;
          }
          case 4: {
            Status st = iommu.map(va, pa);
            const bool aligned =
                mem::pageAligned(va) && mem::pageAligned(pa);
            const bool fresh = io_shadow.find(va) == io_shadow.end();
            if (st.isOk() != (aligned && fresh))
                return errInternal("iommu.map verdict mismatch at " +
                                   hexWord(va));
            if (st.isOk())
                io_shadow[va] = pa;
            break;
          }
          case 5: {
            iommu.overwrite(va, pa);
            io_shadow[mem::pageBase(va)] = mem::pageBase(pa);
            break;
          }
          case 6: {
            auto xlat = iommu.translate(va);
            auto it = io_shadow.find(mem::pageBase(va));
            if (xlat.isOk() != (it != io_shadow.end()))
                return errInternal(
                    "iommu.translate presence mismatch at " +
                    hexWord(va));
            if (xlat.isOk() &&
                *xlat != it->second + mem::pageOffset(va))
                return errInternal(
                    "iommu.translate address mismatch at " +
                    hexWord(va));
            break;
          }
          case 7: {
            // PhysMem bounds property: an access is legal iff it
            // fits entirely inside the memory — including when
            // offset + len would wrap 64-bit arithmetic.
            std::uint64_t offset = (op >> 8) % (2 * FuzzRamSize);
            if (((op >> 4) & 0xf) == 0xf)
                offset = ~std::uint64_t(0) - ((op >> 32) & 0xff);
            const std::size_t len = 1 + ((op >> 3) % 8);
            const bool legal = len <= FuzzRamSize &&
                               offset <= FuzzRamSize - len;
            std::uint8_t buf[8];
            if (op & 0x100000000ull) {
                for (std::size_t j = 0; j < len; ++j)
                    buf[j] = static_cast<std::uint8_t>(op >> j);
                Status st = ram.writeAt(offset, buf, len);
                if (st.isOk() != legal)
                    return errInternal(
                        "PhysMem write bounds verdict mismatch at "
                        "offset " +
                        hexWord(offset));
                if (st.isOk())
                    for (std::size_t j = 0; j < len; ++j)
                        ram_shadow[offset + j] = buf[j];
            } else {
                Status st = ram.readAt(offset, buf, len);
                if (st.isOk() != legal)
                    return errInternal(
                        "PhysMem read bounds verdict mismatch at "
                        "offset " +
                        hexWord(offset));
                if (st.isOk()) {
                    for (std::size_t j = 0; j < len; ++j) {
                        auto it = ram_shadow.find(offset + j);
                        const std::uint8_t want =
                            it == ram_shadow.end() ? 0 : it->second;
                        if (buf[j] != want)
                            return errInternal(
                                "PhysMem readback mismatch at "
                                "offset " +
                                hexWord(offset + j));
                    }
                }
            }
            break;
          }
        }
    }
    return Status::ok();
}

// ----- memory-system differential --------------------------------------

/**
 * One half of the mirrored pair. Physical layout: RAM at [0, 1MiB)
 * plus two page-aligned islands, so bulk runs can cross target
 * boundaries at page edges without ever straddling one mid-page
 * (bus-level faults would let the fast path legally run ahead on
 * translate counting; translate-level faults are the interesting
 * differential surface and stay exactly comparable).
 */
struct MemSystem
{
    explicit MemSystem(mem::TlbEngine engine)
        : ram("diff_ram", FuzzRamSize),
          hi("diff_hi", 16 * mem::PageSize),
          mmu(&bus, 16, engine)
    {
        (void)bus.attach(AddrRange(0, FuzzRamSize), &ram);
        (void)bus.attach(AddrRange(HiBase, 16 * mem::PageSize), &hi);
        mmu.setPageTableProvider([this](ProcessId pid) {
            return &tables[pid];
        });
    }

    static constexpr Addr HiBase = 4 * 1024 * 1024;

    mem::PhysicalBus bus;
    mem::PhysMem ram;
    mem::PhysMem hi;
    mem::Mmu mmu;
    std::unordered_map<ProcessId, mem::PageTable> tables;
};

/** Denies fills onto one physical page — identical on both halves. */
class DenyPpageValidator : public mem::TlbFillValidator
{
  public:
    explicit DenyPpageValidator(Addr deny) : deny_(deny) {}

    Status
    validateFill(const mem::ExecContext &, Addr, Addr ppage,
                 std::uint8_t) override
    {
        if (ppage == deny_)
            return errAccessFault("validator denied fill");
        return Status::ok();
    }

  private:
    Addr deny_;
};

Status
runMemorySystem(const std::vector<std::uint64_t> &ops)
{
    MemSystem fast(mem::TlbEngine::Fast);
    MemSystem ref(mem::TlbEngine::Reference);
    const Addr denied_ppage = 7 * mem::PageSize;
    DenyPpageValidator deny_fast(denied_ppage);
    DenyPpageValidator deny_ref(denied_ppage);
    fast.mmu.addValidator(&deny_fast);
    ref.mmu.addValidator(&deny_ref);

    auto checkCounters = [&](const char *where) -> Status {
        if (fast.mmu.tlbHits() != ref.mmu.tlbHits() ||
            fast.mmu.tlbMisses() != ref.mmu.tlbMisses())
            return errInternal(std::string("TLB hit/miss divergence ") +
                               where);
        if (fast.mmu.tlb().size() != ref.mmu.tlb().size())
            return errInternal(std::string("TLB size divergence ") +
                               where);
        return Status::ok();
    };

    // Virtual pages 0..31 at 0x400000; physical pages constrained to
    // the attached targets (RAM pages 0..255 or the hi island).
    auto pickVa = [](std::uint64_t op, unsigned shift) -> Addr {
        return 0x400000 + ((op >> shift) % 32) * mem::PageSize;
    };
    auto pickPa = [](std::uint64_t op, unsigned shift) -> Addr {
        const std::uint64_t sel = (op >> shift) & 0xff;
        if ((sel & 0x7) == 0x7)
            return MemSystem::HiBase + (sel % 16) * mem::PageSize;
        return (sel % 200) * mem::PageSize;
    };

    std::vector<std::uint8_t> buf_fast(3 * mem::PageSize + 64);
    std::vector<std::uint8_t> buf_ref(buf_fast.size());

    for (std::uint64_t op : ops) {
        const mem::ExecContext ctx{
            static_cast<ProcessId>(1 + (op >> 40) % 2),
            ((op >> 44) % 3 == 0) ? InvalidEnclaveId
                                  : EnclaveId(50 + (op >> 44) % 3)};
        const Addr va = pickVa(op, 8);
        const Addr pa = pickPa(op, 16);
        const std::uint8_t perms =
            static_cast<std::uint8_t>(1 + (op >> 24) % 7);
        switch (op % 8) {
          case 0: {
            Status a = fast.tables[ctx.pid].map(va, pa, perms);
            Status b = ref.tables[ctx.pid].map(va, pa, perms);
            if (a.code() != b.code())
                return errInternal("pt.map divergence at " + hexWord(va));
            break;
          }
          case 1: {
            Status a = fast.tables[ctx.pid].unmap(va);
            Status b = ref.tables[ctx.pid].unmap(va);
            if (a.code() != b.code())
                return errInternal("pt.unmap divergence at " +
                                   hexWord(va));
            break;
          }
          case 2: {
            // Raw PTE overwrite with NO flush: both TLBs must serve
            // the same stale translation until a shootdown.
            fast.tables[ctx.pid].overwrite(va, pa, perms);
            ref.tables[ctx.pid].overwrite(va, pa, perms);
            break;
          }
          case 3: {
            const auto access = (op >> 28) % 2 == 0
                                    ? mem::AccessType::Read
                                    : mem::AccessType::Write;
            auto a = fast.mmu.translate(ctx, va + (op >> 52) % 64,
                                        access);
            auto b = ref.mmu.translate(ctx, va + (op >> 52) % 64,
                                       access);
            if (a.isOk() != b.isOk())
                return errInternal("translate verdict divergence at " +
                                   hexWord(va));
            if (a.isOk() && *a != *b)
                return errInternal("translate address divergence at " +
                                   hexWord(va));
            if (!a.isOk() && a.status().code() != b.status().code())
                return errInternal("translate code divergence at " +
                                   hexWord(va));
            HIX_RETURN_IF_ERROR(checkCounters("after translate"));
            break;
          }
          case 4: {  // bulk read vs per-page reference loop
            const std::size_t len =
                1 + (op >> 32) % (3 * mem::PageSize);
            const Addr addr = va + (op >> 52) % 64;
            std::fill(buf_fast.begin(), buf_fast.end(), 0xAA);
            std::fill(buf_ref.begin(), buf_ref.end(), 0xAA);
            Status a = fast.mmu.read(ctx, addr, buf_fast.data(), len);
            Status b =
                ref.mmu.readReference(ctx, addr, buf_ref.data(), len);
            if (a.code() != b.code())
                return errInternal("bulk read code divergence at " +
                                   hexWord(addr));
            if (buf_fast != buf_ref)
                return errInternal("bulk read byte divergence at " +
                                   hexWord(addr));
            HIX_RETURN_IF_ERROR(checkCounters("after bulk read"));
            break;
          }
          case 5: {  // bulk write vs per-page reference loop
            const std::size_t len =
                1 + (op >> 32) % (3 * mem::PageSize);
            const Addr addr = va + (op >> 52) % 64;
            for (std::size_t j = 0; j < len; ++j)
                buf_fast[j] = static_cast<std::uint8_t>(op >> (j % 56));
            Status a = fast.mmu.write(ctx, addr, buf_fast.data(), len);
            Status b =
                ref.mmu.writeReference(ctx, addr, buf_fast.data(), len);
            if (a.code() != b.code())
                return errInternal("bulk write code divergence at " +
                                   hexWord(addr));
            HIX_RETURN_IF_ERROR(checkCounters("after bulk write"));
            break;
          }
          case 6: {  // shootdowns, all three shapes
            switch ((op >> 36) % 3) {
              case 0:
                fast.mmu.flushTlbPage(ctx.pid, va);
                ref.mmu.flushTlbPage(ctx.pid, va);
                break;
              case 1:
                fast.mmu.flushTlbPid(ctx.pid);
                ref.mmu.flushTlbPid(ctx.pid);
                break;
              default:
                fast.mmu.flushTlbAll();
                ref.mmu.flushTlbAll();
                break;
            }
            HIX_RETURN_IF_ERROR(checkCounters("after flush"));
            break;
          }
          case 7: {  // bus routing differential, holes included
            const Addr addr = (op >> 8) % (8 * 1024 * 1024);
            const auto *a = fast.bus.route(addr);
            const auto *b = fast.bus.routeReference(addr);
            if ((a == nullptr) != (b == nullptr))
                return errInternal("bus route presence divergence at " +
                                   hexWord(addr));
            if (a && (!(a->range == b->range) || a->target != b->target))
                return errInternal("bus route mapping divergence at " +
                                   hexWord(addr));
            break;
          }
        }
    }

    // Final sweep: every mapped virtual page must read back the same
    // bytes through both paths.
    for (ProcessId pid : {ProcessId(1), ProcessId(2)}) {
        const mem::ExecContext ctx{pid, InvalidEnclaveId};
        for (int page = 0; page < 32; ++page) {
            const Addr addr = 0x400000 + Addr(page) * mem::PageSize;
            Status a = fast.mmu.read(ctx, addr, buf_fast.data(),
                                     mem::PageSize);
            Status b = ref.mmu.readReference(ctx, addr, buf_ref.data(),
                                             mem::PageSize);
            if (a.code() != b.code())
                return errInternal("final sweep code divergence at " +
                                   hexWord(addr));
            if (a.isOk() &&
                !std::equal(buf_fast.begin(),
                            buf_fast.begin() + mem::PageSize,
                            buf_ref.begin()))
                return errInternal("final sweep byte divergence at " +
                                   hexWord(addr));
        }
    }
    return checkCounters("at end");
}

// ----- cow_fork --------------------------------------------------------

Status
runCowFork(const std::vector<std::uint64_t> &ops)
{
    constexpr std::uint64_t Pages = 48;
    constexpr std::uint64_t Size = Pages * mem::PageSize;
    constexpr std::size_t MaxForks = 4;
    constexpr std::size_t MaxSnaps = 3;

    /** A CoW fork and its eagerly-copied shadow. */
    struct ForkPair
    {
        std::unique_ptr<mem::PhysMem> mem;
        std::vector<std::uint8_t> oracle;
    };
    /** A frozen snapshot and the full byte image it must preserve. */
    struct SnapPair
    {
        mem::PhysMem::Snapshot snap;
        std::vector<std::uint8_t> oracle;
    };

    std::vector<ForkPair> forks;
    forks.push_back({std::make_unique<mem::PhysMem>("cow0", Size),
                     std::vector<std::uint8_t>(Size, 0)});
    std::vector<SnapPair> snaps;
    int next_fork = 1;

    // Spans up to three pages; bit 50 selects page-aligned whole-page
    // spans so zeroAt() exercises the sparse page-drop path.
    auto span = [&](std::uint64_t op) {
        std::uint64_t off = (op >> 8) % Size;
        std::uint64_t len = 1 + (op >> 28) % (3 * mem::PageSize);
        if ((op >> 50) & 1) {
            off &= ~(mem::PageSize - 1);
            len = ((len / mem::PageSize) + 1) * mem::PageSize;
        }
        if (off + len > Size)
            len = Size - off;
        return std::pair<std::uint64_t, std::uint64_t>(off, len);
    };

    // Unaligned spans top out just under three pages; the page-align
    // branch rounds up to at most four whole pages.
    std::vector<std::uint8_t> buf(4 * mem::PageSize);

    for (std::uint64_t op : ops) {
        ForkPair &f = forks[(op >> 4) % forks.size()];
        const auto [off, len] = span(op);
        switch (op % 8) {
          case 0:
          case 1: {  // write a patterned span
            for (std::uint64_t i = 0; i < len; ++i)
                buf[i] = static_cast<std::uint8_t>(
                    (op >> (i % 8)) ^ (off + i));
            Status st = f.mem->writeAt(off, buf.data(), len);
            if (!st.isOk())
                return errInternal("cow write failed at " +
                                   hexWord(off));
            std::memcpy(f.oracle.data() + off, buf.data(), len);
            break;
          }
          case 2: {  // read and compare against the shadow
            Status st = f.mem->readAt(off, buf.data(), len);
            if (!st.isOk())
                return errInternal("cow read failed at " +
                                   hexWord(off));
            if (std::memcmp(buf.data(), f.oracle.data() + off, len) !=
                0)
                return errInternal("cow read divergence at " +
                                   hexWord(off));
            break;
          }
          case 3: {  // scrub (whole-page spans drop back to sparse)
            Status st = f.mem->zeroAt(off, len);
            if (!st.isOk())
                return errInternal("cow zero failed at " +
                                   hexWord(off));
            std::memset(f.oracle.data() + off, 0, len);
            break;
          }
          case 4: {  // freeze a snapshot (deep-copying the shadow)
            if (snaps.size() >= MaxSnaps)
                break;
            snaps.push_back({f.mem->snapshot(), f.oracle});
            // Every page is now shared with the snapshot: the fork
            // owns nothing privately until its next write.
            if (f.mem->residentPages() != 0)
                return errInternal(
                    "pages still private after snapshot");
            break;
          }
          case 5: {  // rewind a fork onto a snapshot
            if (snaps.empty())
                break;
            SnapPair &s = snaps[(op >> 16) % snaps.size()];
            Status st = f.mem->adopt(s.snap);
            if (!st.isOk())
                return errInternal("adopt failed");
            f.oracle = s.oracle;
            if (f.mem->residentPages() != 0)
                return errInternal("pages private right after adopt");
            break;
          }
          case 6: {  // stand up a sibling fork from a snapshot
            if (snaps.empty() || forks.size() >= MaxForks)
                break;
            SnapPair &s = snaps[(op >> 16) % snaps.size()];
            ForkPair fresh{
                std::make_unique<mem::PhysMem>(
                    "cow" + std::to_string(next_fork++), Size),
                s.oracle};
            Status st = fresh.mem->adopt(s.snap);
            if (!st.isOk())
                return errInternal("fork adopt failed");
            forks.push_back(std::move(fresh));
            break;
          }
          case 7: {  // retire a snapshot or a sibling fork
            if ((op >> 16) & 1 && !snaps.empty())
                snaps.erase(snaps.begin() +
                            ((op >> 20) % snaps.size()));
            else if (forks.size() > 1)
                forks.erase(forks.begin() +
                            ((op >> 20) % forks.size()));
            break;
          }
        }
    }

    // Final sweep: every fork still matches its shadow exactly, and
    // every frozen snapshot still reads back the bytes it froze (no
    // fork write ever leaked into shared pages).
    for (ForkPair &f : forks) {
        for (std::uint64_t page = 0; page < Pages; ++page) {
            const std::uint64_t off = page * mem::PageSize;
            Status st =
                f.mem->readAt(off, buf.data(), mem::PageSize);
            if (!st.isOk())
                return errInternal("final fork read failed");
            if (std::memcmp(buf.data(), f.oracle.data() + off,
                            mem::PageSize) != 0)
                return errInternal("final fork divergence at " +
                                   hexWord(off));
        }
    }
    for (SnapPair &s : snaps) {
        mem::PhysMem probe("probe", Size);
        Status st = probe.adopt(s.snap);
        if (!st.isOk())
            return errInternal("final snapshot adopt failed");
        for (std::uint64_t page = 0; page < Pages; ++page) {
            const std::uint64_t off = page * mem::PageSize;
            if (!probe.readAt(off, buf.data(), mem::PageSize).isOk())
                return errInternal("final snapshot read failed");
            if (std::memcmp(buf.data(), s.oracle.data() + off,
                            mem::PageSize) != 0)
                return errInternal("snapshot bytes mutated at " +
                                   hexWord(off));
        }
    }
    return Status::ok();
}

// ----- multi-GPU routing ----------------------------------------------

/**
 * A 2-4 GPU PCIe fabric driven against a per-device ownership shadow
 * model: the OS maps each device's DMA pages only into that device's
 * own RAM partition, then the stream interleaves IOMMU map/unmap,
 * DMA reads/writes issued under each device's requester identity,
 * BAR1 VRAM pokes, and raw translate probes. Properties: map/unmap/
 * translate/DMA fault verdicts match the shadow table exactly
 * (per-domain isolation — device k never resolves through device j's
 * mappings), BAR apertures never overlap, a BAR1 write lands in its
 * device's VRAM and no other's, and at the end RAM equals the shadow
 * byte-for-byte (no DMA ever strayed outside its owner's pages).
 */
Status
runMultiGpuRouting(const std::vector<std::uint64_t> &ops)
{
    std::size_t i = 0;
    auto next = [&]() -> std::uint64_t {
        return i < ops.size() ? ops[i++] : 0;
    };

    constexpr std::uint64_t RamSize = 1 * MiB;
    constexpr std::uint64_t RamPages = RamSize / mem::PageSize;
    constexpr std::uint64_t DevPages = 16;
    const int devices = 2 + static_cast<int>(next() % 3);

    mem::PhysicalBus ram_bus;
    mem::PhysMem ram("ram", RamSize);
    if (!ram_bus.attach(AddrRange(0, RamSize), &ram).isOk())
        return errInternal("RAM attach failed");
    mem::Iommu iommu;
    iommu.setEnabled(true);
    pcie::RootComplex rc(AddrRange(0xe0000000, 256 * MiB), &ram_bus,
                         &iommu);

    gpu::GpuGeometry geom;
    geom.vramSize = 4 * MiB;
    geom.bar0Size = 1 * MiB;
    geom.bar1Size = 1 * MiB;
    std::vector<std::unique_ptr<gpu::GpuDevice>> gpus;
    for (int d = 0; d < devices; ++d) {
        gpus.push_back(std::make_unique<gpu::GpuDevice>(
            "fuzz-gpu-" + std::to_string(d), geom,
            gpu::GpuPerfModel{}, sim::PlatformConfig::paper(),
            0xf022 + d));
        if (!rc.attachDevice(d, gpus.back().get()).isOk())
            return errInternal("GPU attach failed");
    }
    if (!rc.enumerate().isOk())
        return errInternal("enumeration failed");

    std::vector<Addr> bar1(devices);
    std::vector<std::vector<AddrRange>> bars(devices);
    for (int d = 0; d < devices; ++d) {
        auto ranges = rc.deviceBarRanges(gpus[d]->bdf());
        if (!ranges.isOk() || ranges->size() < 2)
            return errInternal("GPU missing BARs after enumeration");
        bars[d] = *ranges;
        bar1[d] = bars[d][1].start();
        if (rc.dmaDomainOf(gpus[d]->bdf()) !=
            static_cast<mem::IommuDomain>(d))
            return errInternal("requester domain != root-port index");
        for (int other = 0; other < d; ++other)
            for (const AddrRange &a : bars[d])
                for (const AddrRange &b : bars[other])
                    if (a.overlaps(b))
                        return errInternal(
                            "BAR windows of two devices overlap");
    }

    std::vector<std::uint8_t> shadow_ram(RamSize, 0);
    std::vector<std::unordered_map<Addr, Addr>> shadow_map(devices);
    std::vector<std::unordered_map<std::uint64_t, std::uint8_t>>
        shadow_vram(devices);

    while (i < ops.size()) {
        const std::uint64_t op = next();
        const int k = static_cast<int>((op >> 8) % devices);
        const Addr dpage = ((op >> 16) % DevPages) * mem::PageSize;
        switch (op % 6) {
          case 0: {  // OS maps a domain-k page into k's RAM partition
            const std::uint64_t own =
                ((op >> 24) % (RamPages / devices)) * devices + k;
            const bool present = shadow_map[k].count(dpage) != 0;
            const Status st =
                iommu.map(static_cast<mem::IommuDomain>(k), dpage,
                          own * mem::PageSize);
            if (st.isOk() == present)
                return errInternal("map verdict diverged at " +
                                   hexWord(dpage));
            if (!present)
                shadow_map[k][dpage] = own * mem::PageSize;
            break;
          }
          case 1: {
            const bool present = shadow_map[k].count(dpage) != 0;
            const Status st = iommu.unmap(
                static_cast<mem::IommuDomain>(k), dpage);
            if (st.isOk() != present)
                return errInternal("unmap verdict diverged at " +
                                   hexWord(dpage));
            shadow_map[k].erase(dpage);
            break;
          }
          case 2:
          case 3: {  // DMA under device k's requester identity
            const std::uint64_t off = (op >> 24) % (mem::PageSize - 8);
            const std::size_t len = 1 + (op >> 56) % 8;
            const auto it = shadow_map[k].find(dpage);
            const bool mapped = it != shadow_map[k].end();
            std::uint8_t buf[8] = {};
            if (op % 6 == 2) {
                for (std::size_t b = 0; b < len; ++b)
                    buf[b] = static_cast<std::uint8_t>(op >> (8 * b)) ^
                             0x5a;
                const Status st = rc.dmaWrite(gpus[k]->bdf(),
                                              dpage + off, buf, len);
                if (st.isOk() != mapped)
                    return errInternal(
                        "DMA write fault verdict diverged at " +
                        hexWord(dpage + off));
                if (mapped)
                    std::memcpy(shadow_ram.data() + it->second + off,
                                buf, len);
            } else {
                const Status st = rc.dmaRead(gpus[k]->bdf(),
                                             dpage + off, buf, len);
                if (st.isOk() != mapped)
                    return errInternal(
                        "DMA read fault verdict diverged at " +
                        hexWord(dpage + off));
                if (mapped &&
                    std::memcmp(buf, shadow_ram.data() + it->second + off,
                                len) != 0)
                    return errInternal("DMA read bytes diverged at " +
                                       hexWord(dpage + off));
            }
            break;
          }
          case 4: {  // CPU pokes device k's VRAM through BAR1
            const std::uint64_t off = (op >> 16) % (geom.bar1Size - 8);
            const std::size_t len = 1 + (op >> 56) % 8;
            Bytes data(len);
            for (std::size_t b = 0; b < len; ++b)
                data[b] = static_cast<std::uint8_t>(op >> (8 * b)) ^
                          0xa5;
            if (!rc.routeTlp(pcie::Tlp::memWrite(bar1[k] + off, data))
                     .isOk())
                return errInternal("BAR1 write unroutable");
            for (std::size_t b = 0; b < len; ++b)
                shadow_vram[k][off + b] = data[b];
            // The write must be visible on device k and only there.
            for (int d = 0; d < devices; ++d) {
                std::uint8_t got[8];
                if (!gpus[d]->debugReadVram(off, got, len).isOk())
                    return errInternal("VRAM peek failed");
                for (std::size_t b = 0; b < len; ++b) {
                    const auto sv = shadow_vram[d].find(off + b);
                    const std::uint8_t want =
                        sv == shadow_vram[d].end() ? 0 : sv->second;
                    if (got[b] != want)
                        return errInternal(
                            d == k ? "BAR1 write lost on its device"
                                   : "BAR1 write leaked into another "
                                     "device's VRAM");
                }
            }
            break;
          }
          case 5: {  // raw translate probe
            const auto want = shadow_map[k].find(dpage);
            const auto got = iommu.translate(
                static_cast<mem::IommuDomain>(k), dpage);
            if (got.isOk() != (want != shadow_map[k].end()))
                return errInternal(
                    "translate fault verdict diverged at " +
                    hexWord(dpage));
            if (got.isOk() && *got != want->second)
                return errInternal("translate crossed domains: " +
                                   hexWord(*got));
            break;
          }
        }
    }

    // No DMA ever strayed: RAM equals the shadow byte-for-byte.
    std::vector<std::uint8_t> final_ram(RamSize);
    if (!ram.readAt(0, final_ram.data(), RamSize).isOk())
        return errInternal("final RAM read failed");
    if (final_ram != shadow_ram) {
        for (std::uint64_t b = 0; b < RamSize; ++b)
            if (final_ram[b] != shadow_ram[b])
                return errInternal("RAM diverged from shadow at " +
                                   hexWord(b));
    }
    return Status::ok();
}

}  // namespace

FuzzTarget
protocolFuzzTarget()
{
    return FuzzTarget{"protocol", 8, 48, runProtocol};
}

FuzzTarget
authChannelFuzzTarget()
{
    return FuzzTarget{"auth_channel", 1, 32, runAuthChannel};
}

FuzzTarget
mappingStateFuzzTarget()
{
    return FuzzTarget{"mapping_state", 1, 64, runMappingState};
}

FuzzTarget
memorySystemFuzzTarget()
{
    return FuzzTarget{"memory_system", 1, 64, runMemorySystem};
}

FuzzTarget
cowForkFuzzTarget()
{
    return FuzzTarget{"cow_fork", 1, 64, runCowFork};
}

FuzzTarget
multiGpuRoutingFuzzTarget()
{
    return FuzzTarget{"multi_gpu_routing", 1, 64, runMultiGpuRouting};
}

void
registerBuiltinFuzzTargets(FuzzRunner &runner)
{
    runner.add(protocolFuzzTarget());
    runner.add(authChannelFuzzTarget());
    runner.add(mappingStateFuzzTarget());
    runner.add(memorySystemFuzzTarget());
    runner.add(cowForkFuzzTarget());
    runner.add(multiGpuRoutingFuzzTarget());
}

}  // namespace hix::harness
