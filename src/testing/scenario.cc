#include "testing/scenario.h"

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "mem/phys_mem.h"

namespace hix::harness
{

const char *
runtimeKindName(RuntimeKind kind)
{
    switch (kind) {
      case RuntimeKind::Baseline:
        return "baseline";
      case RuntimeKind::Hix:
        return "hix";
    }
    return "unknown";
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::PreLaunch:
        return "pre-launch";
      case Phase::MidTransfer:
        return "mid-transfer";
      case Phase::MidKernel:
        return "mid-kernel";
      case Phase::PostTeardown:
        return "post-teardown";
    }
    return "unknown";
}

VictimScenario::VictimScenario(const ScenarioOptions &options)
    : options_(options), attacker_(nullptr)
{
    os::MachineConfig cfg;
    // Four chunks for the default 16 KiB secret: mid-transfer attacks
    // need several chunk boundaries to strike between.
    cfg.timing.pipelineChunkBytes = chunk_bytes_;
    cfg.gpuCount = std::max(1, options_.gpuCount);
    machine_ = std::make_unique<os::Machine>(cfg);
    attacker_ = os::Attacker(machine_.get());

    Rng rng(options_.seed);
    secret_ = rng.bytes(options_.secretBytes);

    for (int d = 0; d < cfg.gpuCount; ++d)
        machine_->gpuAt(d).kernels().add(
            "sec_noop",
            [](const gpu::GpuMemAccessor &, const gpu::KernelArgs &) {
                return Status::ok();
            },
            [](const gpu::KernelArgs &) { return Tick(10000); });
}

gpu::GpuDevice &
VictimScenario::victimGpu()
{
    return machine_->gpuAt(options_.victimDevice);
}

VictimScenario::~VictimScenario()
{
    if (observer_handle_ >= 0)
        machine_->recorder().removeObserver(observer_handle_);
}

Status
VictimScenario::setup()
{
    if (options_.runtime == RuntimeKind::Baseline) {
        baseline_ = std::make_unique<core::BaselineRuntime>(
            machine_.get(), "victim", 1, 0, nullptr, 0,
            options_.victimDevice);
        HIX_RETURN_IF_ERROR(baseline_->init());
        HIX_ASSIGN_OR_RETURN(gpu_va_,
                             baseline_->memAlloc(secret_.size()));
        if (options_.iommu) {
            // Warm the pinned staging buffer before turning the IOMMU
            // on, then identity-map it so the victim's DMA works
            // until the attacker rewrites the table.
            HIX_RETURN_IF_ERROR(
                baseline_->memcpyHtoD(gpu_va_, Bytes(secret_.size())));
            HIX_RETURN_IF_ERROR(
                enableIommuIdentity(baseline_->hostBuffer().paddr,
                                    baseline_->hostBuffer().size));
        }
        return Status::ok();
    }

    auto ge = core::GpuEnclave::create(
        machine_.get(), victimGpu().factoryBiosDigest(),
        core::HixConfig{}, options_.victimDevice);
    if (!ge.isOk())
        return ge.status();
    ge_ = std::move(*ge);
    trusted_ = std::make_unique<core::TrustedRuntime>(
        machine_.get(), ge_.get(), "victim");
    HIX_RETURN_IF_ERROR(trusted_->connect());
    HIX_ASSIGN_OR_RETURN(gpu_va_, trusted_->memAlloc(secret_.size()));
    if (options_.iommu)
        HIX_RETURN_IF_ERROR(enableIommuIdentity(
            trusted_->sharedRing().paddr, trusted_->sharedRing().size));
    return Status::ok();
}

Status
VictimScenario::enableIommuIdentity(Addr paddr, std::uint64_t size)
{
    machine_->iommu().setEnabled(true);
    // The victim's DMA resolves through its own device's protection
    // domain (the requester's root-port index).
    const mem::IommuDomain domain =
        machine_->rootComplex().dmaDomainOf(victimGpu().bdf());
    for (Addr page = mem::pageBase(paddr); page < paddr + size;
         page += mem::PageSize)
        machine_->iommu().overwrite(domain, page, page);
    return Status::ok();
}

Status
VictimScenario::upload()
{
    if (baseline_) {
        // The runtime stages one pinned buffer per call; split the
        // copy so the trace carries one staging op per chunk.
        for (std::uint64_t off = 0; off < secret_.size();
             off += chunk_bytes_) {
            const std::uint64_t len = std::min<std::uint64_t>(
                chunk_bytes_, secret_.size() - off);
            Bytes chunk(secret_.begin() + off,
                        secret_.begin() + off + len);
            HIX_RETURN_IF_ERROR(
                baseline_->memcpyHtoD(gpu_va_ + off, chunk));
        }
        return Status::ok();
    }
    return trusted_->memcpyHtoD(gpu_va_, secret_);
}

Status
VictimScenario::launchKernel()
{
    if (baseline_) {
        HIX_ASSIGN_OR_RETURN(gpu::KernelId kid,
                             baseline_->loadModule("sec_noop"));
        return baseline_->launchKernel(kid, {gpu_va_, 0});
    }
    HIX_ASSIGN_OR_RETURN(gpu::KernelId kid,
                         trusted_->loadModule("sec_noop"));
    return trusted_->launchKernel(kid, {gpu_va_, 0});
}

Result<Bytes>
VictimScenario::download()
{
    if (baseline_) {
        Bytes out;
        out.reserve(secret_.size());
        for (std::uint64_t off = 0; off < secret_.size();
             off += chunk_bytes_) {
            const std::uint64_t len = std::min<std::uint64_t>(
                chunk_bytes_, secret_.size() - off);
            HIX_ASSIGN_OR_RETURN(Bytes chunk,
                                 baseline_->memcpyDtoH(gpu_va_ + off,
                                                       len));
            out.insert(out.end(), chunk.begin(), chunk.end());
        }
        return out;
    }
    return trusted_->memcpyDtoH(gpu_va_, secret_.size());
}

Status
VictimScenario::teardown()
{
    Status first = Status::ok();
    auto keep = [&first](const Status &st) {
        if (first.isOk() && !st.isOk())
            first = st;
    };
    if (baseline_) {
        keep(baseline_->memFree(gpu_va_));
        keep(baseline_->close());
    } else if (trusted_) {
        keep(trusted_->memFree(gpu_va_));
        keep(trusted_->close());
    }
    return first;
}

void
VictimScenario::onOp(const std::string &label, int occurrence,
                     std::function<void()> attack)
{
    ensureObserver();
    hooks_.push_back(Hook{label, occurrence, false, std::move(attack)});
}

const char *
VictimScenario::htodChunkLabel() const
{
    return baseline_ || options_.runtime == RuntimeKind::Baseline
               ? "h2d_stage"
               : "h2d_encrypt";
}

const char *
VictimScenario::dtohChunkLabel() const
{
    return baseline_ || options_.runtime == RuntimeKind::Baseline
               ? "d2h_drain"
               : "d2h_decrypt";
}

void
VictimScenario::ensureObserver()
{
    if (observer_handle_ >= 0)
        return;
    observer_handle_ = machine_->recorder().addObserver(
        [this](const sim::Op &op, const std::string &label) {
            dispatch(op, label);
        });
}

void
VictimScenario::dispatch(const sim::Op &op, const std::string &label)
{
    // Attacks may drive more modelled software (which records ops);
    // those must not re-trigger hooks.
    if (in_hook_)
        return;
    (void)op;
    for (Hook &hook : hooks_) {
        if (hook.fired || hook.label != label)
            continue;
        if (--hook.remaining > 0)
            continue;
        hook.fired = true;
        in_hook_ = true;
        hook.fn();
        in_hook_ = false;
    }
}

Addr
VictimScenario::stagingPaddr() const
{
    return baseline_ ? baseline_->hostBuffer().paddr
                     : trusted_->sharedRing().paddr;
}

Addr
VictimScenario::stagingVaddr() const
{
    return baseline_ ? baseline_->hostBuffer().vaddr
                     : trusted_->sharedRing().vaddr;
}

ProcessId
VictimScenario::victimPid() const
{
    return baseline_ ? baseline_->pid() : trusted_->pid();
}

EnclaveId
VictimScenario::victimEnclaveId() const
{
    return trusted_ ? trusted_->enclaveId() : InvalidEnclaveId;
}

Result<Addr>
VictimScenario::vramPaddr()
{
    if (!baseline_)
        return errUnavailable(
            "HIX hides VRAM placement inside the enclave");
    return baseline_->gdev().vramAddrOf(baseline_->gpuContext(),
                                        gpu_va_);
}

Addr
VictimScenario::bar1Base(int device)
{
    if (device < 0)
        device = options_.victimDevice;
    return machine_->gpuAt(device).config().barBase(1);
}

ProcessId
VictimScenario::makeEvilProcess()
{
    return machine_->os().createProcess("evil");
}

Result<Addr>
VictimScenario::evilFrame(std::uint64_t size, std::uint8_t fill)
{
    HIX_ASSIGN_OR_RETURN(Addr frame,
                         machine_->os().allocFrames(size));
    Bytes junk(size, fill);
    HIX_RETURN_IF_ERROR(
        machine_->ram().writeAt(frame, junk.data(), junk.size()));
    return frame;
}

bool
VictimScenario::vramContains(const Bytes &needle,
                             std::uint64_t scan_bytes, int device)
{
    if (needle.empty())
        return false;
    if (device < 0)
        device = options_.victimDevice;
    Bytes region(scan_bytes);
    if (!machine_->gpuAt(device)
             .debugReadVram(0, region.data(), region.size())
             .isOk())
        return false;
    return std::search(region.begin(), region.end(),
                       std::boyer_moore_horspool_searcher(
                           needle.begin(), needle.end())) !=
           region.end();
}

double
VictimScenario::matchRatio(const Bytes &a, const Bytes &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    if (n == 0)
        return 0.0;
    std::size_t matches = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] == b[i])
            ++matches;
    return static_cast<double>(matches) / static_cast<double>(n);
}

double
VictimScenario::bestChunkMatch(const Bytes &observed,
                               const Bytes &reference,
                               std::uint64_t chunk)
{
    double best = 0.0;
    for (std::uint64_t off = 0; off < reference.size(); off += chunk) {
        const std::uint64_t len =
            std::min<std::uint64_t>(chunk, reference.size() - off);
        Bytes window(reference.begin() + off,
                     reference.begin() + off + len);
        best = std::max(best, matchRatio(observed, window));
    }
    return best;
}

}  // namespace hix::harness
